// Package core is the high-level façade of the radqec library: it wires
// together the surface-code builders, the hardware transpiler, the
// radiation fault model, the parallel injection engine and the MWPM
// decoder behind a small API suitable for applications.
//
// A typical session builds a Simulator for a code on a topology and
// queries logical error rates under radiation strikes:
//
//	sim, _ := core.NewSimulator(core.Options{
//	    Code:     core.CodeSpec{Family: core.FamilyRepetition, DZ: 5},
//	    Topology: "mesh",
//	})
//	res := sim.Strike(2)         // full time+space evolution, root qubit 2
//	fmt.Println(res.Overall())   // logical error rate
package core

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/circuit"
	"radqec/internal/frame"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/stats"
)

// Code family names for CodeSpec.
const (
	FamilyRepetition = "repetition"
	FamilyXXZZ       = "xxzz"
)

// Engine names for Options.Engine.
const (
	// EngineAuto (the default) picks the bit-parallel batched frame
	// engine for every campaign: the universal frame engine is exact for
	// the full Clifford set under depolarizing noise and for radiation
	// resets on Z-eigenstate sites, and carries only the documented
	// collapsed-branch approximation for resets on superposed XXZZ
	// sites. EngineTableau remains the exact oracle for those.
	EngineAuto = "auto"
	// EngineTableau forces the stabilizer tableau: exact for every
	// circuit and fault, O(gates·n) per shot.
	EngineTableau = "tableau"
	// EngineFrame forces the scalar Pauli-frame engine: O(gates) per
	// shot, approximate only for radiation resets on superposed sites.
	EngineFrame = "frame"
	// EngineBatch forces the bit-parallel frame engine: 64 shots per
	// uint64 word, same validity domain as EngineFrame.
	EngineBatch = "batch"
)

// Engines lists the recognised Options.Engine values.
func Engines() []string {
	return []string{EngineAuto, EngineTableau, EngineFrame, EngineBatch}
}

// Decoder names for Options.Decoder.
const (
	// DecoderMWPM decodes with blossom minimum-weight perfect matching
	// (the paper's decoder and the default).
	DecoderMWPM = "mwpm"
	// DecoderUF decodes with the almost-linear union-find decoder.
	DecoderUF = "uf"
)

// Decoders lists the recognised Options.Decoder values.
func Decoders() []string { return []string{DecoderMWPM, DecoderUF} }

// ResolveDecoder maps a decoder name onto a code's scalar and
// tile-parallel decode functions; both views decode lane-for-lane
// identically. Empty means DecoderMWPM. Unknown names are an error —
// the single decoder-selection policy shared by the core façade, the
// experiment sweeps and the CLI.
func ResolveDecoder(name string, code *qec.Code) (func(bits []int) int, frame.TileDecodeFunc, error) {
	switch name {
	case "", DecoderMWPM:
		return code.Decode, code.DecodeTile, nil
	case DecoderUF:
		return code.DecodeUnionFind, code.DecodeUnionFindTile, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown decoder %q (want one of %v)", name, Decoders())
	}
}

// Engine width names for Options.Width and the -engine-width flag.
const (
	// WidthAuto (the default) picks the widest tile whose frame state
	// fits the cache budget — in practice 512 lanes for every code in
	// the repo; see AutoWidth.
	WidthAuto = "auto"
	// Width64, Width256 and Width512 force the engine width in lanes
	// (1, 4 and 8 uint64 words per tile). Width is pure mechanism:
	// every width produces byte-identical tables.
	Width64  = "64"
	Width256 = "256"
	Width512 = "512"
)

// Widths lists the recognised engine width names.
func Widths() []string { return []string{WidthAuto, Width64, Width256, Width512} }

// ResolveEngineWidth maps a width name onto lanes: "" and WidthAuto
// return 0 (resolve per circuit via AutoWidth), explicit names return
// their lane count. Unknown names are an error naming the valid set —
// the single width-validation policy shared by the CLI flags, the
// daemon's request validation and the experiment sweeps.
func ResolveEngineWidth(name string) (int, error) {
	switch name {
	case "", WidthAuto:
		return 0, nil
	case Width64:
		return 64, nil
	case Width256:
		return 256, nil
	case Width512:
		return 512, nil
	default:
		return 0, fmt.Errorf("core: unknown engine width %q (want one of %v)", name, Widths())
	}
}

// autoWidthBudget is the per-tile cache budget AutoWidth fits the frame
// state into: two bit-planes plus the packed record, all words of the
// tile, must sit comfortably in L2 next to the decoder's scratch.
const autoWidthBudget = 128 << 10

// AutoWidth picks the widest supported engine width whose tile state
// (x/z bit-planes plus packed record) fits the cache budget, and
// reports the heuristic's rationale for the telemetry route signal.
// Every code family in the repo fits at 512 lanes; only circuits with
// thousands of qubits step down.
func AutoWidth(circ *circuit.Circuit) (lanes int, reason string) {
	perWord := (2*circ.NumQubits + circ.NumClbits) * 8
	widths := frame.TileWidths()
	for i := len(widths) - 1; i >= 0; i-- {
		lanes = widths[i]
		if perWord*(lanes/64) <= autoWidthBudget || i == 0 {
			break
		}
	}
	return lanes, fmt.Sprintf(
		"auto: widest tile fitting cache: %d lanes (%d state bytes per lane-word, %d KiB budget)",
		lanes, perWord, autoWidthBudget>>10)
}

// ResolveWidthRoute resolves a width name against a circuit: explicit
// widths resolve to themselves, "" and WidthAuto run the AutoWidth
// heuristic. The reason string feeds the campaign route signal.
func ResolveWidthRoute(name string, circ *circuit.Circuit) (lanes int, reason string, err error) {
	lanes, err = ResolveEngineWidth(name)
	if err != nil {
		return 0, "", err
	}
	if lanes == 0 {
		lanes, reason = AutoWidth(circ)
		return lanes, reason, nil
	}
	return lanes, fmt.Sprintf("explicit width request: %d lanes", lanes), nil
}

// CodeSpec selects a surface code, its distance tuple and its memory
// depth.
type CodeSpec struct {
	// Family is FamilyRepetition or FamilyXXZZ.
	Family string
	// DZ is the bit-flip protection distance; DX the phase-flip one.
	// The repetition family ignores DX (it is fixed to 1).
	DZ, DX int
	// Rounds is the number of stabilization rounds (0 means the paper's
	// 2; anything >= 2 opens the multi-round memory workload, decoded
	// over the space-time detector-error model).
	Rounds int
}

// Options configures a Simulator.
type Options struct {
	// Code selects the surface code.
	Code CodeSpec
	// Topology names the architecture graph (see arch.Names); it is
	// sized automatically to fit the code.
	Topology string
	// PhysicalErrorRate is the intrinsic depolarizing rate p
	// (default 0.01, the paper's setting).
	PhysicalErrorRate float64
	// TemporalSamples is ns, the step resolution of the fault's decay
	// (default 10).
	TemporalSamples int
	// Shots per estimated rate (default 2000).
	Shots int
	// Seed drives every campaign deterministically.
	Seed uint64
	// Workers caps shot parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the simulation engine (EngineAuto, EngineTableau,
	// EngineFrame or EngineBatch); empty means EngineAuto.
	Engine string
	// Decoder selects the syndrome decoder (DecoderMWPM or DecoderUF);
	// empty means DecoderMWPM.
	Decoder string
	// Width selects the batched engine's width (WidthAuto, Width64,
	// Width256 or Width512); empty means WidthAuto. Only the batched
	// engine consumes it; width never changes results.
	Width string
}

func (o Options) withDefaults() Options {
	if o.PhysicalErrorRate == 0 {
		o.PhysicalErrorRate = 0.01
	}
	if o.TemporalSamples <= 0 {
		o.TemporalSamples = noise.DefaultSamples
	}
	if o.Shots <= 0 {
		o.Shots = 2000
	}
	if o.Topology == "" {
		o.Topology = "mesh"
	}
	if o.Engine == "" {
		o.Engine = EngineAuto
	}
	return o
}

// Result is the outcome of one estimated point.
type Result struct {
	// Shots and Errors are raw campaign counts.
	Shots, Errors int
}

// Rate returns the logical error rate.
func (r Result) Rate() float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Shots)
}

// CI returns the Wilson 95% confidence interval of the rate.
func (r Result) CI() (lo, hi float64) { return stats.WilsonCI(r.Errors, r.Shots) }

// EvolutionResult holds per-temporal-sample rates of a strike.
type EvolutionResult struct {
	// Samples[k] is the result at temporal sample k (sample 0 is the
	// moment of impact, root probability 100%).
	Samples []Result
}

// Overall returns the mean logical error rate over the evolution.
func (e EvolutionResult) Overall() float64 {
	return stats.Mean(e.rates())
}

// Median returns the median rate over the evolution (the per-node metric
// of the paper's Figure 8).
func (e EvolutionResult) Median() float64 {
	return stats.Median(e.rates())
}

func (e EvolutionResult) rates() []float64 {
	out := make([]float64, len(e.Samples))
	for i, s := range e.Samples {
		out[i] = s.Rate()
	}
	return out
}

// Simulator estimates post-decoding logical error rates for one code on
// one hardware topology.
type Simulator struct {
	opts Options
	code *qec.Code
	tr   *arch.Transpiled
	dist [][]int
	// decode and decodeTile are the scalar and tile-parallel views of
	// the configured decoder, resolved once at construction; width is
	// the engine width in lanes resolved against the routed circuit.
	decode     func(bits []int) int
	decodeTile frame.TileDecodeFunc
	width      int
}

// NewSimulator builds the code, transpiles it onto the topology and
// prepares the distance oracle for fault spreading.
func NewSimulator(opts Options) (*Simulator, error) {
	opts = opts.withDefaults()
	var (
		code *qec.Code
		err  error
	)
	rounds := opts.Code.Rounds
	if rounds == 0 {
		rounds = 2
	}
	switch opts.Code.Family {
	case FamilyRepetition:
		code, err = qec.NewRepetitionRounds(opts.Code.DZ, rounds)
	case FamilyXXZZ:
		code, err = qec.NewXXZZRounds(opts.Code.DZ, opts.Code.DX, rounds)
	default:
		return nil, fmt.Errorf("core: unknown code family %q", opts.Code.Family)
	}
	if err != nil {
		return nil, err
	}
	if _, err := ResolveEngine(opts.Engine); err != nil {
		return nil, err
	}
	decode, decodeTile, err := ResolveDecoder(opts.Decoder, code)
	if err != nil {
		return nil, err
	}
	topo, err := arch.ByName(opts.Topology, code.NumQubits())
	if err != nil {
		return nil, err
	}
	tr, err := arch.Transpile(code.Circ, topo)
	if err != nil {
		return nil, err
	}
	width, _, err := ResolveWidthRoute(opts.Width, tr.Circuit)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		opts:       opts,
		code:       code,
		tr:         tr,
		dist:       topo.Graph.AllPairsShortestPaths(),
		decode:     decode,
		decodeTile: decodeTile,
		width:      width,
	}, nil
}

// Code returns the underlying code instance.
func (s *Simulator) Code() *qec.Code { return s.code }

// Transpiled returns the routed circuit and layout.
func (s *Simulator) Transpiled() *arch.Transpiled { return s.tr }

// NumPhysicalQubits returns the size of the device.
func (s *Simulator) NumPhysicalQubits() int { return s.tr.Circuit.NumQubits }

// UsedQubits returns the physical qubits hosting circuit activity — the
// meaningful strike roots.
func (s *Simulator) UsedQubits() []int { return s.tr.Used() }

// EngineRunner executes the shot range [start, start+n) of one
// campaign and reports its counts; ranges partition to exactly one
// contiguous run (the determinism contract of every engine).
type EngineRunner func(start, n int) (shots, errors int)

// NewEngineRunner builds the campaign of a resolved engine name and
// returns its range runner — the single construction point shared by
// the core façade and the experiment sweeps. decode and decodeTile are
// the scalar and tile-parallel views of the same decoder; the batched
// engine prefers decodeTile and falls back to unpacking lanes through
// decode. width is the batched engine's lane width (0 picks AutoWidth);
// seed doubles as the frame engines' reference seed.
func NewEngineRunner(engine string, circ *circuit.Circuit, dep noise.Depolarizing,
	ev *noise.RadiationEvent, seed uint64, expected int,
	decode func(bits []int) int, decodeTile frame.TileDecodeFunc, width, workers int) EngineRunner {
	switch engine {
	case EngineBatch:
		if decodeTile == nil {
			decodeTile = frame.LaneDecodeTile(decode, circ.NumClbits)
		}
		if width == 0 {
			width, _ = AutoWidth(circ)
		}
		camp := &frame.BatchCampaign{
			Sim:        frame.NewBatch(circ, dep, ev, seed),
			DecodeTile: decodeTile,
			Expected:   expected,
			Workers:    workers,
			Width:      width,
		}
		return func(start, n int) (int, int) {
			r := camp.RunFrom(seed, start, n)
			return r.Shots, r.Errors
		}
	case EngineFrame:
		camp := &frame.Campaign{
			Sim:      frame.New(circ, dep, ev, seed),
			Decode:   decode,
			Expected: expected,
			Workers:  workers,
		}
		return func(start, n int) (int, int) {
			r := camp.RunFrom(seed, start, n)
			return r.Shots, r.Errors
		}
	case EngineTableau:
		camp := &inject.Campaign{
			Exec:     inject.NewExecutor(circ, dep, ev),
			Decode:   decode,
			Expected: expected,
			Workers:  workers,
		}
		return func(start, n int) (int, int) {
			r := camp.RunFrom(seed, start, n)
			return r.Shots, r.Errors
		}
	default:
		// "auto"/"" must go through ResolveEngine first; a silent
		// tableau fallback here would forfeit auto-selection unnoticed.
		panic(fmt.Sprintf("core: NewEngineRunner requires a resolved engine, got %q", engine))
	}
}

// EngineRoute records one engine-resolution decision: the requested
// name, the engine that will actually run, and the policy signal that
// justified the route — plus, for the batched engine, the resolved
// lane width and the width heuristic's rationale. The telemetry layer
// carries it per campaign so the daemon's signals stream and the CLI's
// -stats report can explain why a campaign ran where it did.
type EngineRoute struct {
	Requested, Resolved, Reason string
	// Width is the resolved engine width in lanes (0 when the resolved
	// engine is not the batched one or the width is not yet bound to a
	// circuit); WidthReason is the width decision's rationale.
	Width       int
	WidthReason string
}

// ResolveEngineRoute maps a configured engine name onto the engine that
// will actually run, with the routing rationale: explicit names resolve
// to themselves, "" and EngineAuto pick EngineBatch — the universal
// frame engine covers the full Clifford set, so every campaign in the
// repo rides the bit-parallel fast path by default, with EngineTableau
// kept as the explicit oracle. Unknown names are an error. This is the
// single auto-selection policy shared by the core façade and the
// experiment sweeps.
func ResolveEngineRoute(engine string) (EngineRoute, error) {
	switch engine {
	case EngineTableau, EngineFrame, EngineBatch:
		return EngineRoute{
			Requested: engine,
			Resolved:  engine,
			Reason:    "explicit engine request",
		}, nil
	case "", EngineAuto:
		return EngineRoute{
			Requested: EngineAuto,
			Resolved:  EngineBatch,
			Reason:    "auto: universal frame engine covers the full Clifford set; 64-shot bit-parallel path",
		}, nil
	default:
		return EngineRoute{}, fmt.Errorf("core: unknown engine %q (want one of %v)", engine, Engines())
	}
}

// ResolveEngine is ResolveEngineRoute without the rationale.
func ResolveEngine(engine string) (string, error) {
	r, err := ResolveEngineRoute(engine)
	return r.Resolved, err
}

// engine resolves the configured engine for this simulator; the name
// was validated in NewSimulator.
func (s *Simulator) engine() string {
	eng, _ := ResolveEngine(s.opts.Engine)
	return eng
}

// runWith executes one fixed-shot campaign on the resolved engine.
func (s *Simulator) runWith(ev *noise.RadiationEvent, seed uint64,
	decode func([]int) int, decodeTile frame.TileDecodeFunc) Result {
	run := NewEngineRunner(s.engine(), s.tr.Circuit,
		noise.NewDepolarizing(s.opts.PhysicalErrorRate), ev, seed,
		s.code.ExpectedLogical(), decode, decodeTile, s.width, s.opts.Workers)
	shots, errors := run(0, s.opts.Shots)
	return Result{Shots: shots, Errors: errors}
}

func (s *Simulator) run(ev *noise.RadiationEvent, seed uint64) Result {
	return s.runWith(ev, seed, s.decode, s.decodeTile)
}

// Clean estimates the logical error rate with intrinsic noise only.
func (s *Simulator) Clean() Result {
	return s.run(noise.NoRadiation(s.NumPhysicalQubits()), s.opts.Seed)
}

// Strike simulates a full radiation event rooted at the given physical
// qubit: the fault spreads spatially with S(d) and decays over the ns
// temporal samples of T̂(t).
func (s *Simulator) Strike(root int) EvolutionResult {
	return s.strike(root, true)
}

// StrikeNoSpread is Strike with the spatial expansion removed — the
// erasure configuration of the paper's Figures 6 and 7.
func (s *Simulator) StrikeNoSpread(root int) EvolutionResult {
	return s.strike(root, false)
}

func (s *Simulator) strike(root int, spread bool) EvolutionResult {
	if root < 0 || root >= s.NumPhysicalQubits() {
		panic(fmt.Sprintf("core: strike root %d out of range", root))
	}
	samples := noise.TemporalSamples(s.opts.TemporalSamples)
	out := EvolutionResult{Samples: make([]Result, len(samples))}
	for k, rootProb := range samples {
		ev := noise.NewRadiationEvent(s.dist[root], rootProb, spread)
		out.Samples[k] = s.run(ev, s.opts.Seed+uint64(k)*7919)
	}
	return out
}

// StrikeAtImpact estimates the rate at the moment of impact only
// (temporal sample 0, root probability 100%).
func (s *Simulator) StrikeAtImpact(root int, spread bool) Result {
	ev := noise.NewRadiationEvent(s.dist[root], 1.0, spread)
	return s.run(ev, s.opts.Seed)
}

// Erase resets every listed physical qubit with probability one after
// each gate — the correlated "hypernode" fault of Figure 7.
func (s *Simulator) Erase(members []int) Result {
	probs := make([]float64, s.NumPhysicalQubits())
	for _, q := range members {
		if q < 0 || q >= len(probs) {
			panic(fmt.Sprintf("core: erase target %d out of range", q))
		}
		probs[q] = 1
	}
	return s.run(&noise.RadiationEvent{Probs: probs}, s.opts.Seed)
}

// RawReadoutStrike estimates the error of the uncorrected ancilla
// readout under a full-impact strike, for decoder-vs-raw comparisons.
func (s *Simulator) RawReadoutStrike(root int, spread bool) Result {
	ev := noise.NewRadiationEvent(s.dist[root], 1.0, spread)
	return s.runWith(ev, s.opts.Seed, s.code.RawLogical, s.code.RawLogicalTile)
}
