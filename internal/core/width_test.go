package core

import (
	"strings"
	"testing"

	"radqec/internal/circuit"
)

func TestResolveEngineWidth(t *testing.T) {
	for name, want := range map[string]int{
		"":        0,
		WidthAuto: 0,
		Width64:   64,
		Width256:  256,
		Width512:  512,
	} {
		got, err := ResolveEngineWidth(name)
		if err != nil {
			t.Errorf("ResolveEngineWidth(%q): %v", name, err)
		} else if got != want {
			t.Errorf("ResolveEngineWidth(%q) = %d, want %d", name, got, want)
		}
	}
	_, err := ResolveEngineWidth("128")
	if err == nil {
		t.Fatal("unknown width accepted")
	}
	// The error must name the valid set: it is the message both CLI
	// flags and the daemon's request validation surface.
	for _, name := range Widths() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("width error %q does not name %q", err, name)
		}
	}
}

// TestAutoWidthStepsDown: the heuristic picks the widest tile whose
// frame state fits the cache budget — 512 lanes for every code in the
// repo, stepping down only for circuits with thousands of qubits.
func TestAutoWidthStepsDown(t *testing.T) {
	for _, tc := range []struct {
		qubits, clbits, want int
	}{
		{30, 40, 512},   // every repo code family lands here
		{1500, 0, 256},  // 8-word tile over budget, 4-word fits
		{6000, 0, 64},   // only the single-word tile fits
		{100000, 0, 64}, // nothing fits: floor at the narrowest width
	} {
		lanes, reason := AutoWidth(circuit.New(tc.qubits, tc.clbits))
		if lanes != tc.want {
			t.Errorf("AutoWidth(%d qubits, %d clbits) = %d lanes, want %d",
				tc.qubits, tc.clbits, lanes, tc.want)
		}
		if !strings.Contains(reason, "auto") {
			t.Errorf("auto reason %q does not name the heuristic", reason)
		}
	}
}

func TestResolveWidthRoute(t *testing.T) {
	circ := circuit.New(30, 40)
	lanes, reason, err := ResolveWidthRoute(Width256, circ)
	if err != nil || lanes != 256 || !strings.Contains(reason, "explicit") {
		t.Fatalf("explicit route = (%d, %q, %v)", lanes, reason, err)
	}
	lanes, reason, err = ResolveWidthRoute(WidthAuto, circ)
	if err != nil || lanes != 512 || !strings.Contains(reason, "auto") {
		t.Fatalf("auto route = (%d, %q, %v)", lanes, reason, err)
	}
	if _, _, err := ResolveWidthRoute("wide", circ); err == nil {
		t.Fatal("unknown width accepted")
	}
}
