package core

import (
	"testing"
)

func quickSim(t *testing.T, spec CodeSpec, topo string) *Simulator {
	t.Helper()
	sim, err := NewSimulator(Options{
		Code:            spec,
		Topology:        topo,
		Shots:           200,
		Seed:            7,
		TemporalSamples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewSimulatorRejectsUnknownFamily(t *testing.T) {
	if _, err := NewSimulator(Options{Code: CodeSpec{Family: "steane"}}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestNewSimulatorRejectsBadDistance(t *testing.T) {
	if _, err := NewSimulator(Options{Code: CodeSpec{Family: FamilyRepetition, DZ: 4}}); err == nil {
		t.Fatal("even distance accepted")
	}
}

func TestNewSimulatorRejectsBadTopology(t *testing.T) {
	if _, err := NewSimulator(Options{
		Code:     CodeSpec{Family: FamilyRepetition, DZ: 5},
		Topology: "moebius",
	}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestCleanRunIsErrorFree(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyRepetition, DZ: 5}, "mesh")
	sim.opts.PhysicalErrorRate = 1e-12
	res := sim.Clean()
	if res.Errors != 0 {
		t.Fatalf("clean run produced %d errors", res.Errors)
	}
	if res.Shots != 200 {
		t.Fatalf("shots = %d", res.Shots)
	}
}

func TestStrikeDegrades(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3}, "mesh")
	ev := sim.Strike(sim.UsedQubits()[0])
	if len(ev.Samples) != 4 {
		t.Fatalf("samples = %d", len(ev.Samples))
	}
	if ev.Samples[0].Rate() == 0 {
		t.Fatal("impact sample shows no degradation")
	}
	// Impact must be at least as bad as the decayed tail.
	if ev.Samples[0].Rate() < ev.Samples[len(ev.Samples)-1].Rate() {
		t.Fatal("fault did not decay over time")
	}
	if ev.Overall() < ev.Samples[len(ev.Samples)-1].Rate() {
		t.Fatal("overall rate below tail rate")
	}
	if ev.Median() < 0 || ev.Median() > 1 {
		t.Fatal("median out of range")
	}
}

func TestStrikeNoSpreadIsMilder(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3}, "mesh")
	root := sim.UsedQubits()[0]
	spread := sim.StrikeAtImpact(root, true)
	erase := sim.StrikeAtImpact(root, false)
	if spread.Rate() < erase.Rate() {
		t.Fatalf("spreading strike (%.3f) milder than erasure (%.3f)", spread.Rate(), erase.Rate())
	}
}

func TestEraseMajorityFails(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyRepetition, DZ: 5}, "mesh")
	res := sim.Erase(sim.UsedQubits())
	if res.Rate() < 0.5 {
		t.Fatalf("full-chip erasure rate = %.3f", res.Rate())
	}
}

func TestErasePanicsOutOfRange(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyRepetition, DZ: 3}, "mesh")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.Erase([]int{9999})
}

func TestStrikePanicsOutOfRange(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyRepetition, DZ: 3}, "mesh")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.Strike(-1)
}

func TestResultCI(t *testing.T) {
	r := Result{Shots: 100, Errors: 50}
	lo, hi := r.CI()
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("CI [%v,%v]", lo, hi)
	}
	if r.Rate() != 0.5 {
		t.Fatalf("rate = %v", r.Rate())
	}
	empty := Result{}
	if empty.Rate() != 0 {
		t.Fatal("empty rate nonzero")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		sim := quickSim(t, CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3}, "mesh")
		return sim.StrikeAtImpact(2, true)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("campaigns not deterministic: %+v vs %+v", a, b)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	mk := func(workers int) Result {
		sim, err := NewSimulator(Options{
			Code:     CodeSpec{Family: FamilyRepetition, DZ: 5},
			Topology: "mesh",
			Shots:    300,
			Seed:     21,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.StrikeAtImpact(2, true)
	}
	if a, b := mk(1), mk(8); a != b {
		t.Fatalf("worker count changed results: %+v vs %+v", a, b)
	}
}

func TestRawReadoutStrike(t *testing.T) {
	sim := quickSim(t, CodeSpec{Family: FamilyRepetition, DZ: 5}, "mesh")
	res := sim.RawReadoutStrike(sim.UsedQubits()[0], true)
	if res.Shots != 200 {
		t.Fatalf("shots = %d", res.Shots)
	}
}

func TestSimulatorOnIBMDevices(t *testing.T) {
	for _, topo := range []string{"cairo", "almaden", "brooklyn", "cambridge", "johannesburg"} {
		sim := quickSim(t, CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3}, topo)
		if got := sim.NumPhysicalQubits(); got < 18 {
			t.Fatalf("%s: %d physical qubits", topo, got)
		}
		res := sim.StrikeAtImpact(sim.UsedQubits()[0], true)
		if res.Shots == 0 {
			t.Fatalf("%s: no shots ran", topo)
		}
	}
}

func TestResolveEngineUniversalAuto(t *testing.T) {
	// Auto (and empty) resolve to the batched engine for every circuit;
	// explicit names resolve to themselves; unknown names error.
	for _, name := range []string{"", EngineAuto} {
		if eng, err := ResolveEngine(name); err != nil || eng != EngineBatch {
			t.Fatalf("ResolveEngine(%q) = %q, %v", name, eng, err)
		}
	}
	for _, name := range []string{EngineTableau, EngineFrame, EngineBatch} {
		if eng, err := ResolveEngine(name); err != nil || eng != name {
			t.Fatalf("ResolveEngine(%q) = %q, %v", name, eng, err)
		}
	}
	if _, err := ResolveEngine("qutrit"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestNewSimulatorRejectsUnknownEngineAndDecoder(t *testing.T) {
	base := Options{Code: CodeSpec{Family: FamilyRepetition, DZ: 5}}
	bad := base
	bad.Engine = "warp"
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("unknown engine accepted")
	}
	bad = base
	bad.Decoder = "psychic"
	if _, err := NewSimulator(bad); err == nil {
		t.Fatal("unknown decoder accepted")
	}
}

func TestDecoderSelection(t *testing.T) {
	// Both decoders run the same XXZZ campaign through the batched
	// engine; rates may differ (union-find is suboptimal) but both must
	// produce full campaigns, and MWPM must be at least as accurate.
	rate := func(decoder string) Result {
		sim, err := NewSimulator(Options{
			Code:              CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3},
			Topology:          "mesh",
			Shots:             2000,
			Seed:              7,
			Decoder:           decoder,
			PhysicalErrorRate: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Clean()
	}
	mwpm := rate(DecoderMWPM)
	uf := rate(DecoderUF)
	if mwpm.Shots != 2000 || uf.Shots != 2000 {
		t.Fatalf("incomplete campaigns: mwpm %+v uf %+v", mwpm, uf)
	}
	if mwpm.Errors == 0 || uf.Errors == 0 {
		t.Fatalf("no errors at p=0.05: mwpm %+v uf %+v", mwpm, uf)
	}
	if mwpm.Rate() > uf.Rate()+0.03 {
		t.Fatalf("MWPM (%.4f) should not be worse than union-find (%.4f)", mwpm.Rate(), uf.Rate())
	}
}

func TestSimulatorRounds(t *testing.T) {
	// Rounds flows from the spec into the built code, and multi-round
	// campaigns run end-to-end on every engine/decoder combination over
	// the space-time detector-error model.
	for _, engine := range []string{EngineBatch, EngineFrame, EngineTableau} {
		for _, decoder := range []string{DecoderMWPM, DecoderUF} {
			sim, err := NewSimulator(Options{
				Code:     CodeSpec{Family: FamilyRepetition, DZ: 5, Rounds: 5},
				Topology: "mesh",
				Shots:    256,
				Seed:     3,
				Engine:   engine,
				Decoder:  decoder,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sim.Code().Rounds != 5 {
				t.Fatalf("code built with %d rounds, want 5", sim.Code().Rounds)
			}
			res := sim.Clean()
			if res.Shots != 256 {
				t.Fatalf("%s/%s: incomplete campaign %+v", engine, decoder, res)
			}
			if res.Rate() > 0.2 {
				t.Fatalf("%s/%s: 5-round clean campaign at default p errs %.2f", engine, decoder, res.Rate())
			}
		}
	}
	if _, err := NewSimulator(Options{
		Code:     CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3, Rounds: 1},
		Topology: "mesh",
	}); err == nil {
		t.Fatal("1-round spec accepted")
	}
}

func TestSimulatorRoundsDefault(t *testing.T) {
	sim, err := NewSimulator(Options{
		Code:     CodeSpec{Family: FamilyXXZZ, DZ: 3, DX: 3},
		Topology: "mesh",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Code().Rounds != 2 {
		t.Fatalf("default rounds = %d, want the paper's 2", sim.Code().Rounds)
	}
}
