package qec

import (
	"testing"

	"radqec/internal/rng"
)

// unitW returns the common mechanism weight of a unit-prior model
// (every edge shares it by construction).
func unitW(t *testing.T, c *Code) int64 {
	t.Helper()
	m := c.DEM()
	w := m.Edges[0].W
	for _, e := range m.Edges {
		if e.W != w {
			t.Fatalf("unit prior produced unequal weights: %d vs %d", e.W, w)
		}
	}
	return w
}

func TestDEMRepetitionGeometry(t *testing.T) {
	c := mustRep(t, 5)
	m := c.DEM()
	w := unitW(t, c)
	if m.NumStabs != 4 || m.Layers != 3 {
		t.Fatalf("detector grid = %dx%d", m.NumStabs, m.Layers)
	}
	// Chain distances at equal layers: |i - j| mechanisms.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := i - j
			if want < 0 {
				want = -want
			}
			if got := m.Dist(i, 0, j, 0); got != int64(want)*w {
				t.Fatalf("Dist(%d,0,%d,0) = %d, want %d", i, j, got, int64(want)*w)
			}
		}
	}
	// Time-separated detectors add one time mechanism per layer.
	if got := m.Dist(0, 0, 2, 2); got != 4*w {
		t.Fatalf("Dist(0,0,2,2) = %d, want %d", got, 4*w)
	}
	// Boundary distances: min(i+1, d-1-i) hops through end data qubits.
	wantB := []int{1, 2, 2, 1}
	for i, want := range wantB {
		if got := m.BoundaryDist(i); got != int64(want)*w {
			t.Fatalf("BoundaryDist(%d) = %d, want %d", i, got, int64(want)*w)
		}
	}
}

func TestDEMPathFlipSets(t *testing.T) {
	c := mustRep(t, 5)
	m := c.DEM()
	// Chain stab 0 -> stab 2 crosses data qubits 1 and 2.
	flips := m.PathFlips(0, 2)
	if len(flips) != 2 {
		t.Fatalf("PathFlips(0,2) = %v", flips)
	}
	seen := map[int]bool{}
	for _, d := range flips {
		seen[d] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("path 0->2 flips %v, want data 1 and 2", flips)
	}
	// Boundary path from stab 0 flips data 0 (the left end).
	if f := m.BoundaryFlips(0); len(f) != 1 || f[0] != 0 {
		t.Fatalf("BoundaryFlips(0) = %v", f)
	}
	// Boundary path from stab 3 flips data 4 (the right end).
	if f := m.BoundaryFlips(3); len(f) != 1 || f[0] != 4 {
		t.Fatalf("BoundaryFlips(3) = %v", f)
	}
}

func TestDEMXXZZConnected(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	m := c.DEM()
	if m.NumStabs != 4 {
		t.Fatalf("numStabs = %d", m.NumStabs)
	}
	for i := 0; i < m.NumStabs; i++ {
		if m.BoundaryDist(i) < 1 {
			t.Fatalf("stab %d boundary distance %d", i, m.BoundaryDist(i))
		}
		for j := 0; j < m.NumStabs; j++ {
			if i != j && m.Dist(i, 0, j, 0) < 1 {
				t.Fatalf("Dist(%d,0,%d,0) = %d", i, j, m.Dist(i, 0, j, 0))
			}
		}
	}
}

func TestDEMFlipSetsMatchDistances(t *testing.T) {
	// The flip set realising a unit-prior shortest spatial chain must
	// contain exactly dist/w data qubits; same for boundary paths.
	for _, c := range []*Code{mustRep(t, 15), mustXXZZ(t, 3, 5), mustXXZZ(t, 5, 3)} {
		m := c.DEM()
		w := unitW(t, c)
		for i := 0; i < m.NumStabs; i++ {
			for j := 0; j < m.NumStabs; j++ {
				if i == j || m.Dist(i, 0, j, 0) < 0 {
					continue
				}
				if got := int64(len(m.PathFlips(i, j))) * w; got != m.Dist(i, 0, j, 0) {
					t.Fatalf("%s: |PathFlips(%d,%d)|·w = %d, dist = %d",
						c.Name, i, j, got, m.Dist(i, 0, j, 0))
				}
			}
			if bd := m.BoundaryDist(i); bd > 0 {
				if got := int64(len(m.BoundaryFlips(i))) * w; got != bd {
					t.Fatalf("%s: |BoundaryFlips(%d)|·w = %d, bdist = %d",
						c.Name, i, got, bd)
				}
			}
		}
	}
}

func TestWeightedPriorMatchesUnitPriorWhenRatesEqual(t *testing.T) {
	// A prior assigning the same probability to every mechanism must
	// decode every record exactly like the unit prior: the weights all
	// scale by one constant, which blossom matching is invariant under.
	ref := mustXXZZ(t, 3, 3)
	weighted := mustXXZZ(t, 3, 3)
	pr := weighted.NoisePrior(0.01)
	q := pr.DataFlip[0]
	for i := range pr.DataFlip {
		pr.DataFlip[i] = q
	}
	for i := range pr.MeasFlip {
		pr.MeasFlip[i] = q
	}
	if err := weighted.SetPrior(pr); err != nil {
		t.Fatal(err)
	}
	src := rng.New(17)
	for w := 0; w < 4; w++ {
		rec := randomRecord(t, ref, src)
		for lane := uint(0); lane < 64; lane++ {
			bits := unpackLane(rec, lane)
			if ref.Decode(bits) != weighted.Decode(bits) {
				t.Fatalf("word %d lane %d: equal-rate weighted decode differs from unit decode", w, lane)
			}
			if ref.DecodeUnionFind(bits) != weighted.DecodeUnionFind(bits) {
				t.Fatalf("word %d lane %d: equal-rate weighted UF decode differs", w, lane)
			}
		}
	}
}

func TestNoisePriorChangesWeights(t *testing.T) {
	// The circuit-derived prior is genuinely heterogeneous on XXZZ
	// (boundary data qubits see fewer stabilizers than bulk ones), and
	// decoding with it must still produce valid bits batch-for-scalar.
	c := mustXXZZ(t, 3, 5)
	if err := c.SetPrior(c.NoisePrior(0.01)); err != nil {
		t.Fatal(err)
	}
	m := c.DEM()
	minW, maxW := m.Edges[0].W, m.Edges[0].W
	for _, e := range m.Edges {
		if e.W < minW {
			minW = e.W
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	if minW == maxW {
		t.Fatal("NoisePrior produced a flat weight profile on xxzz-(3,5)")
	}
	checkDecodeBatchMatches(t, c, 2, 23)
	checkUnionFindBatchMatches(t, c, 2, 29)
}

func TestSetPriorResetsMemos(t *testing.T) {
	c := mustRep(t, 5)
	checkDecodeBatchMatches(t, c, 2, 5)
	if c.batchMemoEntries() == 0 {
		t.Fatal("memo never populated")
	}
	if err := c.SetPrior(c.NoisePrior(0.02)); err != nil {
		t.Fatal(err)
	}
	if c.batchMemoEntries() != 0 {
		t.Fatal("SetPrior kept stale memo entries")
	}
	checkDecodeBatchMatches(t, c, 2, 6)
}

func TestDetectionEventsOnCleanRecord(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	bits := cleanRun(t, c, 3)
	if defects := c.detectionEvents(bits); len(defects) != 0 {
		t.Fatalf("clean record produced defects: %v", defects)
	}
}

func TestDetectionEventsLayering(t *testing.T) {
	c := mustRep(t, 5)
	base := cleanRun(t, c, 3)
	// A flip in round 0 only -> defects at layers 0 (appearance) and 1
	// (disappearance) for that stabilizer.
	bits := append([]int(nil), base...)
	bits[c.C0.Start+2] ^= 1
	defects := c.detectionEvents(bits)
	if len(defects) != 2 {
		t.Fatalf("defects = %v", defects)
	}
	for _, d := range defects {
		if d.stab != 2 {
			t.Fatalf("wrong stabilizer: %v", defects)
		}
	}
	if !((defects[0].round == 0 && defects[1].round == 1) ||
		(defects[0].round == 1 && defects[1].round == 0)) {
		t.Fatalf("wrong layers: %v", defects)
	}
	// A final-readout flip on data 2 -> defects at layer 2 on stabs 1,2.
	bits = append([]int(nil), base...)
	bits[c.DataRead.Start+2] ^= 1
	defects = c.detectionEvents(bits)
	if len(defects) != 2 {
		t.Fatalf("readout defects = %v", defects)
	}
	for _, d := range defects {
		if d.round != 2 || (d.stab != 1 && d.stab != 2) {
			t.Fatalf("readout defect misplaced: %v", defects)
		}
	}
}

func TestMatchDefectsEmpty(t *testing.T) {
	c := mustRep(t, 5)
	flips := c.matchDefects(nil)
	for d, f := range flips {
		if f {
			t.Fatalf("no-defect correction flipped data %d", d)
		}
	}
}
