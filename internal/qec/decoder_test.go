package qec

import "testing"

func TestDecodeGraphRepetitionGeometry(t *testing.T) {
	c := mustRep(t, 5)
	g := c.zGraph
	if g.numStabs != 4 {
		t.Fatalf("numStabs = %d", g.numStabs)
	}
	// Chain distances: |i - j|.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := i - j
			if want < 0 {
				want = -want
			}
			if g.dist[i][j] != want {
				t.Fatalf("dist[%d][%d] = %d, want %d", i, j, g.dist[i][j], want)
			}
		}
	}
	// Boundary distances: min(i+1, d-1-i) hops through end data qubits.
	wantB := []int{1, 2, 2, 1}
	for i, w := range wantB {
		if g.bdist[i] != w {
			t.Fatalf("bdist[%d] = %d, want %d", i, g.bdist[i], w)
		}
	}
}

func TestDecodeGraphPathFlipSets(t *testing.T) {
	c := mustRep(t, 5)
	g := c.zGraph
	// Chain stab 0 -> stab 2 crosses data qubits 1 and 2.
	flips := g.pathData[0][2]
	if len(flips) != 2 {
		t.Fatalf("pathData[0][2] = %v", flips)
	}
	seen := map[int]bool{}
	for _, d := range flips {
		seen[d] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("path 0->2 flips %v, want data 1 and 2", flips)
	}
	// Boundary path from stab 0 flips data 0 (the left end).
	if len(g.bpathData[0]) != 1 || g.bpathData[0][0] != 0 {
		t.Fatalf("bpathData[0] = %v", g.bpathData[0])
	}
	// Boundary path from stab 3 flips data 4 (the right end).
	if len(g.bpathData[3]) != 1 || g.bpathData[3][0] != 4 {
		t.Fatalf("bpathData[3] = %v", g.bpathData[3])
	}
}

func TestDecodeGraphXXZZConnected(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	g := c.zGraph
	if g.numStabs != 4 {
		t.Fatalf("numStabs = %d", g.numStabs)
	}
	for i := 0; i < g.numStabs; i++ {
		if g.bdist[i] < 1 {
			t.Fatalf("stab %d boundary distance %d", i, g.bdist[i])
		}
		for j := 0; j < g.numStabs; j++ {
			if i != j && g.dist[i][j] < 1 {
				t.Fatalf("dist[%d][%d] = %d", i, j, g.dist[i][j])
			}
		}
	}
}

func TestDecodeGraphFlipSetsMatchDistances(t *testing.T) {
	// The flip set realising a shortest path must contain exactly
	// dist data qubits; same for boundary paths.
	for _, c := range []*Code{mustRep(t, 15), mustXXZZ(t, 3, 5), mustXXZZ(t, 5, 3)} {
		g := c.zGraph
		for i := 0; i < g.numStabs; i++ {
			for j := 0; j < g.numStabs; j++ {
				if i == j || g.dist[i][j] < 0 {
					continue
				}
				if got := len(g.pathData[i][j]); got != g.dist[i][j] {
					t.Fatalf("%s: |pathData[%d][%d]| = %d, dist = %d",
						c.Name, i, j, got, g.dist[i][j])
				}
			}
			if g.bdist[i] > 0 {
				if got := len(g.bpathData[i]); got != g.bdist[i] {
					t.Fatalf("%s: |bpathData[%d]| = %d, bdist = %d",
						c.Name, i, got, g.bdist[i])
				}
			}
		}
	}
}

func TestDetectionEventsOnCleanRecord(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	bits := cleanRun(t, c, 3)
	if defects := c.detectionEvents(bits); len(defects) != 0 {
		t.Fatalf("clean record produced defects: %v", defects)
	}
}

func TestDetectionEventsLayering(t *testing.T) {
	c := mustRep(t, 5)
	base := cleanRun(t, c, 3)
	// A flip in round 0 only -> defects at layers 0 (appearance) and 1
	// (disappearance) for that stabilizer.
	bits := append([]int(nil), base...)
	bits[c.C0.Start+2] ^= 1
	defects := c.detectionEvents(bits)
	if len(defects) != 2 {
		t.Fatalf("defects = %v", defects)
	}
	for _, d := range defects {
		if d.stab != 2 {
			t.Fatalf("wrong stabilizer: %v", defects)
		}
	}
	if !((defects[0].round == 0 && defects[1].round == 1) ||
		(defects[0].round == 1 && defects[1].round == 0)) {
		t.Fatalf("wrong layers: %v", defects)
	}
	// A final-readout flip on data 2 -> defects at layer 2 on stabs 1,2.
	bits = append([]int(nil), base...)
	bits[c.DataRead.Start+2] ^= 1
	defects = c.detectionEvents(bits)
	if len(defects) != 2 {
		t.Fatalf("readout defects = %v", defects)
	}
	for _, d := range defects {
		if d.round != 2 || (d.stab != 1 && d.stab != 2) {
			t.Fatalf("readout defect misplaced: %v", defects)
		}
	}
}

func TestMatchDefectsEmpty(t *testing.T) {
	c := mustRep(t, 5)
	flips := c.matchDefects(nil)
	for d, f := range flips {
		if f {
			t.Fatalf("no-defect correction flipped data %d", d)
		}
	}
}
