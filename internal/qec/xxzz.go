package qec

import (
	"fmt"

	"radqec/internal/circuit"
)

// NewXXZZ builds the distance-(dZ, dX) XXZZ rotated surface code
// (Figure 1 of the paper): a dZ x dX grid of data qubits, plaquette
// stabilizers on a checkerboard with weight-2 boundary stabilizers, and
// one raw-readout ancilla, for 2*dZ*dX qubits total.
//
// dZ is the bit-flip protection distance (minimum weight of an
// undetectable X chain) and dX the phase-flip distance. Both must be odd
// and their product at least 3.
//
// Construction: interior cells of the (dZ-1) x (dX-1) dual grid
// alternate Z- and X-plaquettes; the left/right boundaries carry the
// weight-2 Z stabilizers and the top/bottom boundaries the weight-2 X
// stabilizers. Logical Z runs horizontally along row 0 (weight dX);
// logical X vertically along column 0 (weight dZ). The total stabilizer
// count is always dZ*dX - 1; the Z/X split matches qtcodes exactly for
// square codes and preserves the distances for rectangular ones (see
// DESIGN.md).
func NewXXZZ(dZ, dX int) (*Code, error) {
	return NewXXZZRounds(dZ, dX, 2)
}

// NewXXZZRounds is NewXXZZ with an explicit number of stabilization
// rounds (>= 2); the transversal logical X is applied between the first
// and second round.
func NewXXZZRounds(dZ, dX, rounds int) (*Code, error) {
	if dZ < 1 || dX < 1 || dZ%2 == 0 || dX%2 == 0 {
		return nil, fmt.Errorf("qec: XXZZ distances must be odd and positive, got (%d,%d)", dZ, dX)
	}
	if dZ*dX < 3 {
		return nil, fmt.Errorf("qec: XXZZ code needs at least 3 data qubits, got %d", dZ*dX)
	}
	if rounds < 2 {
		return nil, fmt.Errorf("qec: at least 2 stabilization rounds required, got %d", rounds)
	}
	rows, cols := dZ, dX
	dataAt := func(r, col int) int { return r*cols + col }

	var zStabs, xStabs [][]int
	// Interior plaquettes: cell (r, c) covers data corners
	// (r-1..r) x (c-1..c) for r in 1..rows-1, c in 1..cols-1.
	for r := 1; r < rows; r++ {
		for col := 1; col < cols; col++ {
			corners := []int{
				dataAt(r-1, col-1), dataAt(r-1, col),
				dataAt(r, col-1), dataAt(r, col),
			}
			if (r+col)%2 == 0 {
				zStabs = append(zStabs, corners)
			} else {
				xStabs = append(xStabs, corners)
			}
		}
	}
	// Left/right boundary Z stabilizers: vertical data pairs. The parity
	// choice interleaves them with the interior checkerboard so every
	// adjacent vertical pair on each side is covered exactly once.
	for r := 1; r < rows; r++ {
		if r%2 == 0 { // left edge, cell (r, 0)
			zStabs = append(zStabs, []int{dataAt(r-1, 0), dataAt(r, 0)})
		} else { // right edge, cell (r, cols)
			zStabs = append(zStabs, []int{dataAt(r-1, cols-1), dataAt(r, cols-1)})
		}
	}
	// Top/bottom boundary X stabilizers: horizontal data pairs.
	for col := 1; col < cols; col++ {
		if col%2 == 1 { // top edge, cell (0, col)
			xStabs = append(xStabs, []int{dataAt(0, col-1), dataAt(0, col)})
		} else { // bottom edge, cell (rows, col)
			xStabs = append(xStabs, []int{dataAt(rows-1, col-1), dataAt(rows-1, col)})
		}
	}

	c := &Code{
		Name:   fmt.Sprintf("xxzz-(%d,%d)", dZ, dX),
		DZ:     dZ,
		DX:     dX,
		Rounds: rounds,
	}
	circ := circuit.New(0, 0)
	n := rows * cols
	c.Data = circ.AddQReg("data", n)
	c.MZ = circ.AddQReg("mz", len(zStabs))
	c.MX = circ.AddQReg("mx", len(xStabs))
	c.Anc = circ.AddQReg("ancilla", 1)
	nStabs := len(zStabs) + len(xStabs)
	for r := 0; r < rounds; r++ {
		c.CRounds = append(c.CRounds, circ.AddCReg(fmt.Sprintf("c%d", r), nStabs))
	}
	c.C0, c.C1 = c.CRounds[0], c.CRounds[1]
	c.DataRead = circ.AddCReg("dataread", n)
	c.AncRead = circ.AddCReg("readout", 1)
	c.Circ = circ
	c.zStabData = zStabs
	c.xStabData = xStabs

	// Logical Z: row 0; logical X: column 0.
	for col := 0; col < cols; col++ {
		c.logicalZ = append(c.logicalZ, dataAt(0, col))
	}
	var logicalX []int
	for r := 0; r < rows; r++ {
		logicalX = append(logicalX, dataAt(r, 0))
	}
	c.finishCircuit(logicalX)
	return c, nil
}

// XXZZDistances lists the (dZ, dX) pairs evaluated in the paper's
// Figure 6b.
func XXZZDistances() [][2]int {
	return [][2]int{{1, 3}, {3, 1}, {3, 3}, {3, 5}, {5, 3}}
}
