package qec

import (
	"radqec/internal/matching"
)

// decodeGraph is the pre-computed matching geometry of the bit-flip
// (Z-stabilizer) syndrome lattice: spatial distances between
// stabilizers, their distances to the open boundary, and the data-qubit
// flip sets realising those shortest paths.
type decodeGraph struct {
	numStabs int
	// dist[i][j] is the spatial distance (number of data qubits on a
	// minimal error chain) between Z stabilizers i and j.
	dist [][]int
	// bdist[i] is the distance from stabilizer i to the nearest open
	// boundary.
	bdist []int
	// pathData[i][j] lists the register-local data qubits flipped by a
	// minimal chain between stabilizers i and j.
	pathData [][][]int
	// bpathData[i] is the flip set of a minimal chain from stabilizer i
	// to the boundary.
	bpathData [][]int
}

// buildDecodeGraph derives the matching geometry from the stabilizer
// supports. Two stabilizers are adjacent when they share a data qubit
// (chain weight one); a data qubit covered by exactly one stabilizer
// links that stabilizer to the open boundary.
func buildDecodeGraph(stabData [][]int, numData int) *decodeGraph {
	n := len(stabData)
	g := &decodeGraph{
		numStabs:  n,
		dist:      make([][]int, n),
		bdist:     make([]int, n),
		pathData:  make([][][]int, n),
		bpathData: make([][]int, n),
	}
	// owner[d] lists stabilizers covering data qubit d.
	owner := make([][]int, numData)
	for s, datas := range stabData {
		for _, d := range datas {
			owner[d] = append(owner[d], s)
		}
	}
	// Adjacency with the data qubit labelling each edge. Node n is the
	// boundary.
	type edge struct{ to, via int }
	adj := make([][]edge, n+1)
	for d, ss := range owner {
		switch len(ss) {
		case 1:
			adj[ss[0]] = append(adj[ss[0]], edge{n, d})
			adj[n] = append(adj[n], edge{ss[0], d})
		case 2:
			adj[ss[0]] = append(adj[ss[0]], edge{ss[1], d})
			adj[ss[1]] = append(adj[ss[1]], edge{ss[0], d})
		}
	}
	// BFS from every stabilizer over stabilizer nodes only (the
	// boundary never shortcuts a stabilizer-to-stabilizer chain: a chain
	// through the boundary is expressed as two boundary matches by the
	// matcher instead).
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		prev := make([]int, n)
		prevVia := make([]int, n)
		for i := range dist {
			dist[i] = -1
			prev[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if e.to == n || dist[e.to] != -1 {
					continue
				}
				dist[e.to] = dist[u] + 1
				prev[e.to] = u
				prevVia[e.to] = e.via
				queue = append(queue, e.to)
			}
		}
		g.dist[src] = dist
		g.pathData[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if dist[dst] <= 0 {
				continue
			}
			var flips []int
			for v := dst; v != src; v = prev[v] {
				flips = append(flips, prevVia[v])
			}
			g.pathData[src][dst] = flips
		}
	}
	// BFS from the boundary for boundary distances and flip sets.
	{
		dist := make([]int, n+1)
		prev := make([]int, n+1)
		prevVia := make([]int, n+1)
		for i := range dist {
			dist[i] = -1
			prev[i] = -1
		}
		dist[n] = 0
		queue := []int{n}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if dist[e.to] != -1 {
					continue
				}
				dist[e.to] = dist[u] + 1
				prev[e.to] = u
				prevVia[e.to] = e.via
				queue = append(queue, e.to)
			}
		}
		for s := 0; s < n; s++ {
			g.bdist[s] = dist[s]
			if dist[s] > 0 {
				var flips []int
				for v := s; v != n; v = prev[v] {
					flips = append(flips, prevVia[v])
				}
				g.bpathData[s] = flips
			}
		}
	}
	return g
}

// defect is one detection event in the space-time syndrome history.
type defect struct {
	stab  int // Z stabilizer index
	round int // detection round: 0, 1 or 2
}

// Decode runs the MWPM decoder over a shot's classical record and
// returns the corrected logical value (0 or 1). The record layout is the
// one produced by the code builders: C0 and C1 hold the two syndrome
// rounds, DataRead the final per-data-qubit measurements.
func (c *Code) Decode(bits []int) int {
	defects := c.detectionEvents(bits)
	flips := c.matchDefects(defects)
	return c.logicalValue(bits, flips)
}

// DecodeGreedy is the ablation decoder: identical detection events and
// correction model, but greedy matching instead of blossom.
func (c *Code) DecodeGreedy(bits []int) int {
	defects := c.detectionEvents(bits)
	flips := c.matchDefectsWith(defects, func(n int, edges []matching.Edge) ([][2]int, error) {
		return matching.GreedyPerfectMatching(n, edges)
	})
	return c.logicalValue(bits, flips)
}

// detectionEvents derives the Z-graph space-time detection events from a
// shot record: round 0 versus the expected all-zero syndrome, the
// differences between consecutive rounds, and the last-round/final
// difference where the final syndrome is recomputed from the data
// readout parities. With R rounds this yields R+1 detection layers.
func (c *Code) detectionEvents(bits []int) []defect {
	var defects []defect
	for s, datas := range c.zStabData {
		prev := 0
		for r, creg := range c.CRounds {
			cur := bits[creg.Start+s]
			if prev^cur != 0 {
				defects = append(defects, defect{s, r})
			}
			prev = cur
		}
		final := 0
		for _, d := range datas {
			final ^= bits[c.DataRead.Start+d]
		}
		if prev^final != 0 {
			defects = append(defects, defect{s, len(c.CRounds)})
		}
	}
	return defects
}

// matchDefects pairs the detection events with blossom MWPM and returns
// the resulting data-qubit flip multiset as a parity mask.
func (c *Code) matchDefects(defects []defect) []bool {
	return c.matchDefectsWith(defects, matching.MinWeightPerfectMatching)
}

func (c *Code) matchDefectsWith(defects []defect, match func(int, []matching.Edge) ([][2]int, error)) []bool {
	flips := make([]bool, c.Data.Size)
	nd := len(defects)
	if nd == 0 {
		return flips
	}
	g := c.zGraph
	// Nodes 0..nd-1 are defects; nd..2nd-1 their private boundary
	// images. Boundary images interconnect at zero cost so unused ones
	// pair among themselves.
	var edges []matching.Edge
	for i := 0; i < nd; i++ {
		for j := i + 1; j < nd; j++ {
			ds := g.dist[defects[i].stab][defects[j].stab]
			if ds < 0 {
				continue
			}
			dt := defects[i].round - defects[j].round
			if dt < 0 {
				dt = -dt
			}
			edges = append(edges, matching.Edge{I: i, J: j, W: int64(ds + dt)})
		}
		if bd := g.bdist[defects[i].stab]; bd >= 0 {
			edges = append(edges, matching.Edge{I: i, J: nd + i, W: int64(bd)})
		}
		for j := i + 1; j < nd; j++ {
			edges = append(edges, matching.Edge{I: nd + i, J: nd + j, W: 0})
		}
	}
	pairs, err := match(2*nd, edges)
	if err != nil {
		// No perfect matching means the syndrome is undecodable (cannot
		// happen on connected decode graphs); fail open with no
		// correction rather than crash a campaign.
		return flips
	}
	for _, p := range pairs {
		i, j := p[0], p[1]
		switch {
		case i < nd && j < nd:
			for _, d := range g.pathData[defects[i].stab][defects[j].stab] {
				flips[d] = !flips[d]
			}
		case i < nd && j >= nd:
			for _, d := range g.bpathData[defects[i].stab] {
				flips[d] = !flips[d]
			}
		}
	}
	return flips
}

// logicalValue applies the correction mask to the data readout and
// returns the parity of the logical Z support.
func (c *Code) logicalValue(bits []int, flips []bool) int {
	v := 0
	for _, d := range c.logicalZ {
		b := bits[c.DataRead.Start+d]
		if flips[d] {
			b ^= 1
		}
		v ^= b
	}
	return v
}
