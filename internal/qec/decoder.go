package qec

import (
	"fmt"
	"math"

	"radqec/internal/dem"
	"radqec/internal/matching"
)

// DEM returns the code's compiled detector-error model, building it on
// first use (with the unit prior unless SetPrior installed another one).
// Safe for concurrent use by campaign workers; the compiled model is
// shared by every decoder view of the code.
func (c *Code) DEM() *dem.Model {
	if m := c.dm.Load(); m != nil {
		return m
	}
	c.demMu.Lock()
	defer c.demMu.Unlock()
	if m := c.dm.Load(); m != nil {
		return m
	}
	m, err := dem.Compile(dem.Spec{
		Stabs:   c.zStabData,
		NumData: c.Data.Size,
		Rounds:  c.Rounds,
		Prior:   c.prior,
	})
	if err != nil {
		// Spec fields come from a successfully-built code; a compile
		// failure is a programmer error, like the probability guards in
		// package noise.
		panic(fmt.Sprintf("qec: DEM compile failed for %s: %v", c.Name, err))
	}
	c.dm.Store(m)
	return m
}

// SetPrior recompiles the code's detector-error model against the given
// noise prior (see dem.Prior; the zero value restores the unit prior)
// and resets the batch syndrome memos, which cache decoder outputs of
// the previous model. Call it before campaigns start; it is not
// synchronised against in-flight decodes.
func (c *Code) SetPrior(pr dem.Prior) error {
	c.demMu.Lock()
	defer c.demMu.Unlock()
	m, err := dem.Compile(dem.Spec{
		Stabs:   c.zStabData,
		NumData: c.Data.Size,
		Rounds:  c.Rounds,
		Prior:   pr,
	})
	if err != nil {
		return err
	}
	c.prior = pr
	c.dm.Store(m)
	c.mwpmMemo = newParityMemo()
	c.ufMemo = newParityMemo()
	return nil
}

// NoisePrior derives a detector-error-model prior from a uniform
// depolarizing rate p by counting the error sites feeding each
// mechanism: a data qubit accumulates one depolarizing site per
// stabilizer touching it per round (each with X-component probability
// 2p/3), and a stabilizer's measurement chain accumulates one site per
// support qubit plus the measure and reset ops. Independent sites
// XOR-combine as q = (1 - prod(1-2q_i))/2.
func (c *Code) NoisePrior(p float64) dem.Prior {
	site := 2 * p / 3 // X-component probability of one depolarizing site
	combine := func(sites int) float64 {
		return (1 - math.Pow(1-2*site, float64(sites))) / 2
	}
	pr := dem.Prior{
		DataFlip: make([]float64, c.Data.Size),
		MeasFlip: make([]float64, len(c.zStabData)),
	}
	touches := make([]int, c.Data.Size)
	for _, datas := range c.zStabData {
		for _, d := range datas {
			touches[d]++
		}
	}
	for _, datas := range c.xStabData {
		for _, d := range datas {
			touches[d]++
		}
	}
	for d, n := range touches {
		if n < 1 {
			n = 1
		}
		pr.DataFlip[d] = combine(n)
	}
	for s, datas := range c.zStabData {
		pr.MeasFlip[s] = combine(len(datas) + 2)
	}
	return pr
}

// defect is one detection event in the space-time syndrome history.
type defect struct {
	stab  int // Z stabilizer index
	round int // detection layer: 0 .. Rounds
}

// Decode runs the MWPM decoder over a shot's classical record and
// returns the corrected logical value (0 or 1). The record layout is the
// one produced by the code builders: CRounds hold the syndrome rounds,
// DataRead the final per-data-qubit measurements. Matching runs on the
// compiled detector-error model: edge weights are the cached space-time
// shortest-path weights between detection events (log-likelihood
// weighted; all equal under the default unit prior), and corrections
// are the flattened flip sets of the matched chains.
func (c *Code) Decode(bits []int) int {
	defects := c.detectionEvents(bits)
	flips := c.matchDefects(defects)
	return c.logicalValue(bits, flips)
}

// DecodeGreedy is the ablation decoder: identical detection events and
// correction model, but greedy matching instead of blossom.
func (c *Code) DecodeGreedy(bits []int) int {
	defects := c.detectionEvents(bits)
	flips := c.matchDefectsWith(defects, matching.GreedyPerfectMatching)
	return c.logicalValue(bits, flips)
}

// detectionEvents derives the Z-graph space-time detection events from a
// shot record: round 0 versus the expected all-zero syndrome, the
// differences between consecutive rounds, and the last-round/final
// difference where the final syndrome is recomputed from the data
// readout parities. With R rounds this yields R+1 detection layers.
func (c *Code) detectionEvents(bits []int) []defect {
	var defects []defect
	for s, datas := range c.zStabData {
		prev := 0
		for r, creg := range c.CRounds {
			cur := bits[creg.Start+s]
			if prev^cur != 0 {
				defects = append(defects, defect{s, r})
			}
			prev = cur
		}
		final := 0
		for _, d := range datas {
			final ^= bits[c.DataRead.Start+d]
		}
		if prev^final != 0 {
			defects = append(defects, defect{s, len(c.CRounds)})
		}
	}
	return defects
}

// matchDefects pairs the detection events with blossom MWPM and returns
// the resulting data-qubit flip multiset as a parity mask.
func (c *Code) matchDefects(defects []defect) []bool {
	return c.matchDefectsWith(defects, matching.MinWeightPerfectMatching)
}

func (c *Code) matchDefectsWith(defects []defect, match func(int, []matching.Edge) ([][2]int, error)) []bool {
	flips := make([]bool, c.Data.Size)
	nd := len(defects)
	if nd == 0 {
		return flips
	}
	m := c.DEM()
	// Nodes 0..nd-1 are defects; nd..2nd-1 their private boundary
	// images. Boundary images interconnect at zero cost so unused ones
	// pair among themselves.
	var edges []matching.Edge
	for i := 0; i < nd; i++ {
		for j := i + 1; j < nd; j++ {
			w := m.Dist(defects[i].stab, defects[i].round, defects[j].stab, defects[j].round)
			if w < 0 {
				continue
			}
			edges = append(edges, matching.Edge{I: i, J: j, W: w})
		}
		if bw := m.BoundaryDist(defects[i].stab); bw >= 0 {
			edges = append(edges, matching.Edge{I: i, J: nd + i, W: bw})
		}
		for j := i + 1; j < nd; j++ {
			edges = append(edges, matching.Edge{I: nd + i, J: nd + j, W: 0})
		}
	}
	pairs, err := match(2*nd, edges)
	if err != nil {
		// No perfect matching means the syndrome is undecodable (cannot
		// happen on connected decode graphs); fail open with no
		// correction rather than crash a campaign.
		return flips
	}
	for _, p := range pairs {
		i, j := p[0], p[1]
		switch {
		case i < nd && j < nd:
			for _, d := range m.PathFlips(defects[i].stab, defects[j].stab) {
				flips[d] = !flips[d]
			}
		case i < nd && j >= nd:
			for _, d := range m.BoundaryFlips(defects[i].stab) {
				flips[d] = !flips[d]
			}
		}
	}
	return flips
}

// logicalValue applies the correction mask to the data readout and
// returns the parity of the logical Z support.
func (c *Code) logicalValue(bits []int, flips []bool) int {
	v := 0
	for _, d := range c.logicalZ {
		b := bits[c.DataRead.Start+d]
		if flips[d] {
			b ^= 1
		}
		v ^= b
	}
	return v
}
