package qec

import (
	"testing"

	"radqec/internal/rng"
)

// randomRecord fills a packed 64-lane record with uniform random bits —
// far denser syndromes than any physical campaign, which stresses the
// slow path and the memo.
func randomRecord(t *testing.T, c *Code, src *rng.Source) []uint64 {
	t.Helper()
	rec := make([]uint64, c.Circ.NumClbits)
	for i := range rec {
		rec[i] = src.Uint64()
	}
	return rec
}

// unpackLane extracts one lane's scalar record.
func unpackLane(rec []uint64, lane uint) []int {
	bits := make([]int, len(rec))
	for i, w := range rec {
		bits[i] = int(w>>lane) & 1
	}
	return bits
}

func checkDecodeBatchMatches(t *testing.T, c *Code, words int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	for w := 0; w < words; w++ {
		rec := randomRecord(t, c, src)
		got := c.DecodeBatch(rec, ^uint64(0))
		for lane := uint(0); lane < 64; lane++ {
			want := c.Decode(unpackLane(rec, lane))
			if int((got>>lane)&1) != want {
				t.Fatalf("word %d lane %d: DecodeBatch %d, Decode %d", w, lane, (got>>lane)&1, want)
			}
		}
	}
}

func TestDecodeBatchMatchesDecodeRepetition(t *testing.T) {
	c, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	checkDecodeBatchMatches(t, c, 6, 11)
	if c.batchMemoEntries() == 0 {
		t.Fatal("dense random syndromes never populated the memo")
	}
	// A second pass over fresh random records decodes through the warm
	// memo; equality must still hold lane for lane.
	checkDecodeBatchMatches(t, c, 6, 12)
}

func TestDecodeBatchMatchesDecodeXXZZ(t *testing.T) {
	c, err := NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkDecodeBatchMatches(t, c, 4, 21)
}

func TestDecodeBatchMatchesDecodeManyRounds(t *testing.T) {
	// 14 stabilizers x 7 layers = 98 defect bits: beyond the old 64-bit
	// memo key but inside the 128-bit one, so memory-depth campaigns out
	// to stabs·(rounds+1) <= 128 still ride the syndrome cache.
	c, err := NewRepetitionRounds(15, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkDecodeBatchMatches(t, c, 2, 31)
	if c.batchMemoEntries() == 0 {
		t.Fatal("98-bit defect patterns never populated the 128-bit memo")
	}
}

func TestDecodeBatchMatchesDecodeUncacheableRounds(t *testing.T) {
	// 14 stabilizers x 10 layers = 140 defect bits: too wide even for
	// the 128-bit key, exercising the uncached fallback.
	c, err := NewRepetitionRounds(15, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkDecodeBatchMatches(t, c, 1, 37)
	if c.batchMemoEntries() != 0 {
		t.Fatal("uncacheable code populated the memo")
	}
}

func TestUnionFindBatchMatchesScalarManyRounds(t *testing.T) {
	// Multi-round lane equality for the union-find twin, through the
	// 128-bit memo (5-round rep-9: 8 stabs x 6 layers = 48 bits) and
	// past it (uncached xxzz case below is covered by the MWPM test's
	// shared core).
	c, err := NewRepetitionRounds(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkUnionFindBatchMatches(t, c, 2, 41)
	x, err := NewXXZZRounds(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkUnionFindBatchMatches(t, x, 2, 43)
}

func TestDecodeBatchZeroSyndromeFastPath(t *testing.T) {
	// A fault-free record (all-zero syndromes, data readout = logical
	// |1>) must decode to all-ones without consulting the matcher.
	c, err := NewRepetition(7)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]uint64, c.Circ.NumClbits)
	for d := 0; d < c.Data.Size; d++ {
		rec[c.DataRead.Start+d] = ^uint64(0)
	}
	before := c.batchMemoEntries()
	if got := c.DecodeBatch(rec, ^uint64(0)); got != ^uint64(0) {
		t.Fatalf("clean record decoded to %x", got)
	}
	if c.batchMemoEntries() != before {
		t.Fatal("fast path touched the memo")
	}
}

func TestDecodeBatchRespectsLiveMask(t *testing.T) {
	// Dead lanes must not cost matcher work: a record whose only
	// non-zero syndrome sits in a dead lane takes the fast path.
	c, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]uint64, c.Circ.NumClbits)
	rec[c.C0.Start] = 1 << 63 // defect in lane 63 only
	live := uint64(1)<<63 - 1 // lanes 0..62
	got := c.DecodeBatch(rec, live)
	for lane := uint(0); lane < 63; lane++ {
		want := c.Decode(unpackLane(rec, lane))
		if int((got>>lane)&1) != want {
			t.Fatalf("live lane %d wrong", lane)
		}
	}
}

func TestRawLogicalBatch(t *testing.T) {
	c, err := NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]uint64, c.Circ.NumClbits)
	rec[c.AncRead.Start] = 0xdeadbeef
	if got := c.RawLogicalBatch(rec, ^uint64(0)); got != 0xdeadbeef {
		t.Fatalf("RawLogicalBatch = %x", got)
	}
}

func BenchmarkDecodeBatchSparse(b *testing.B) {
	c, err := NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]uint64, c.Circ.NumClbits)
	for d := 0; d < c.Data.Size; d++ {
		rec[c.DataRead.Start+d] = ^uint64(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeBatch(rec, ^uint64(0))
	}
}

func BenchmarkDecodeBatchDense(b *testing.B) {
	c, err := NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(7)
	rec := make([]uint64, c.Circ.NumClbits)
	for i := range rec {
		rec[i] = src.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeBatch(rec, ^uint64(0))
	}
}

func checkUnionFindBatchMatches(t *testing.T, c *Code, words int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	for w := 0; w < words; w++ {
		rec := randomRecord(t, c, src)
		got := c.DecodeUnionFindBatch(rec, ^uint64(0))
		for lane := uint(0); lane < 64; lane++ {
			want := c.DecodeUnionFind(unpackLane(rec, lane))
			if int((got>>lane)&1) != want {
				t.Fatalf("word %d lane %d: DecodeUnionFindBatch %d, DecodeUnionFind %d",
					w, lane, (got>>lane)&1, want)
			}
		}
	}
}

func TestDecodeUnionFindBatchMatchesScalarRepetition(t *testing.T) {
	c, err := NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	checkUnionFindBatchMatches(t, c, 4, 11)
	if c.ufMemoEntries() == 0 {
		t.Fatal("dense random syndromes never populated the union-find memo")
	}
	// A second pass decodes through the warm memo; equality must hold.
	checkUnionFindBatchMatches(t, c, 4, 12)
}

func TestDecodeUnionFindBatchMatchesScalarXXZZ(t *testing.T) {
	c, err := NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkUnionFindBatchMatches(t, c, 3, 21)
}

func TestDecoderMemosAreIndependent(t *testing.T) {
	// MWPM and union-find disagree on some syndromes; sharing a memo
	// would silently cross-contaminate them. Decode the same records
	// with both and re-verify each against its scalar twin.
	c, err := NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	for w := 0; w < 3; w++ {
		rec := randomRecord(t, c, src)
		mwpm := c.DecodeBatch(rec, ^uint64(0))
		uf := c.DecodeUnionFindBatch(rec, ^uint64(0))
		for lane := uint(0); lane < 64; lane++ {
			bits := unpackLane(rec, lane)
			if int((mwpm>>lane)&1) != c.Decode(bits) {
				t.Fatalf("word %d lane %d: MWPM memo contaminated", w, lane)
			}
			if int((uf>>lane)&1) != c.DecodeUnionFind(bits) {
				t.Fatalf("word %d lane %d: union-find memo contaminated", w, lane)
			}
		}
	}
}

func BenchmarkDecodeBatchSpacetime(b *testing.B) {
	// Multi-round decoding over the space-time DEM: rep-9 at rounds=9
	// (the canonical rounds=d memory point) under moderately dense
	// random syndromes, through the 128-bit memo.
	c, err := NewRepetitionRounds(9, 9)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(13)
	rec := make([]uint64, c.Circ.NumClbits)
	for i := range rec {
		rec[i] = src.Uint64() & src.Uint64() & src.Uint64() // ~12.5% bit density
	}
	c.DEM() // compile outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeBatch(rec, ^uint64(0))
	}
}

func BenchmarkDecodeUnionFindBatchSpacetime(b *testing.B) {
	c, err := NewRepetitionRounds(9, 9)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(13)
	rec := make([]uint64, c.Circ.NumClbits)
	for i := range rec {
		rec[i] = src.Uint64() & src.Uint64() & src.Uint64()
	}
	c.DEM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeUnionFindBatch(rec, ^uint64(0))
	}
}

func BenchmarkDEMCompile(b *testing.B) {
	// One-time compile cost of a deep-memory model (amortised across a
	// whole campaign in practice; benched so it stays one-time-sized).
	for i := 0; i < b.N; i++ {
		c, err := NewRepetitionRounds(15, 15)
		if err != nil {
			b.Fatal(err)
		}
		c.DEM()
	}
}
