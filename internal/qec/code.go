// Package qec builds the two surface-code families of the paper — the
// bit-flip repetition code and the XXZZ rotated surface code — as
// explicit quantum circuits (Figures 1 and 2), and decodes their
// measurement records with minimum-weight perfect matching over the
// space-time syndrome graph, mirroring the qtcodes + networkx pipeline
// of the original study.
//
// Every code follows the paper's experiment protocol (Section IV-C):
// all data qubits start in |0>, one stabilization round is measured, a
// transversal logical X is applied, a second round is measured, and the
// data qubits are read out (plus a one-bit raw ancilla readout of the
// logical operator). The expected decoded output is logical |1>; a
// decoder output of |0> counts as a logical error.
package qec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"radqec/internal/circuit"
	"radqec/internal/dem"
)

// Code is a decodable QEC circuit instance.
type Code struct {
	// Name identifies the code and distance, e.g. "rep-(5,1)".
	Name string
	// DZ and DX are the code distance tuple (dZ, dX).
	DZ, DX int
	// Circ is the full encoded circuit.
	Circ *circuit.Circuit

	// Rounds is the number of stabilization rounds (the paper uses 2:
	// one before and one after the logical operation).
	Rounds int
	// Quantum registers (some may be empty for degenerate distances).
	Data, MZ, MX, Anc circuit.Register
	// Classical registers: C0 and C1 are the first two syndrome rounds
	// (always present), CRounds lists every round register in order,
	// DataRead the per-data readout and AncRead the raw one-bit ancilla
	// readout.
	C0, C1, DataRead, AncRead circuit.Register
	CRounds                   []circuit.Register

	// zStabData[s] lists the data qubit indices (register-local) whose
	// Z-parity stabilizer s checks.
	zStabData [][]int
	// xStabData[s] is the same for X stabilizers.
	xStabData [][]int
	// logicalZ lists register-local data indices supporting the logical
	// Z operator; the decoded logical value is their corrected parity.
	logicalZ []int
	// dm is the lazily-compiled detector-error model every decoder view
	// (MWPM/union-find, scalar/batch) runs against; demMu guards the
	// compile so concurrent campaign workers share one build. prior is
	// the noise prior the model was (or will be) compiled with; its zero
	// value is the unit prior. See DEM and SetPrior.
	dm    atomic.Pointer[dem.Model]
	demMu sync.Mutex
	prior dem.Prior

	// mwpmMemo and ufMemo cache, per space-time defect pattern (packed
	// into a 128-bit key), the parity of the decoder's correction on the
	// logical support — the only way the correction enters the decoded
	// value. Each decoder owns its memo (their corrections differ); both
	// are shared by every campaign decoding this code, and SetPrior
	// replaces them (cached parities belong to the compiled model). See
	// DecodeBatch and DecodeUnionFindBatch.
	mwpmMemo *parityMemo
	ufMemo   *parityMemo
}

// NumQubits returns the total number of physical qubits in the circuit.
func (c *Code) NumQubits() int { return c.Circ.NumQubits }

// ZStabilizers returns the data-qubit support (register-local indices)
// of each Z-type stabilizer.
func (c *Code) ZStabilizers() [][]int { return c.zStabData }

// XStabilizers returns the data-qubit support of each X-type stabilizer.
func (c *Code) XStabilizers() [][]int { return c.xStabData }

// LogicalZSupport returns the data qubits whose corrected parity is the
// decoded logical value.
func (c *Code) LogicalZSupport() []int { return c.logicalZ }

// NumZStabs returns the number of Z-type (bit-flip detecting) stabilizers.
func (c *Code) NumZStabs() int { return len(c.zStabData) }

// NumXStabs returns the number of X-type (phase-flip detecting) stabilizers.
func (c *Code) NumXStabs() int { return len(c.xStabData) }

// ExpectedLogical is the decoded output in the absence of faults.
func (c *Code) ExpectedLogical() int { return 1 }

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("%s [%dq: %d data, %d mz, %d mx, %d anc]",
		c.Name, c.NumQubits(), c.Data.Size, c.MZ.Size, c.MX.Size, c.Anc.Size)
}

// stabRound appends one full stabilization round, measuring Z stabilizers
// then X stabilizers into the classical register c0, and resetting the
// measure qubits for reuse. Z stabilizer s occupies clbit c0.Start+s; X
// stabilizer s occupies c0.Start+len(zStabData)+s.
func (c *Code) stabRound(creg circuit.Register) {
	circ := c.Circ
	for s, datas := range c.zStabData {
		m := c.MZ.Start + s
		for _, d := range datas {
			circ.CNOT(c.Data.Start+d, m)
		}
		circ.Measure(m, creg.Start+s)
		circ.Reset(m)
	}
	for s, datas := range c.xStabData {
		m := c.MX.Start + s
		circ.H(m)
		for _, d := range datas {
			circ.CNOT(m, c.Data.Start+d)
		}
		circ.H(m)
		circ.Measure(m, creg.Start+len(c.zStabData)+s)
		circ.Reset(m)
	}
}

// finishCircuit appends the logical X, the remaining stabilization
// rounds, and the readout blocks shared by every code family.
// logicalXSupport lists register-local data indices receiving the
// transversal X, which is applied between the first and second round
// exactly as in the paper's protocol.
func (c *Code) finishCircuit(logicalXSupport []int) {
	c.mwpmMemo = newParityMemo()
	c.ufMemo = newParityMemo()
	circ := c.Circ
	c.stabRound(c.CRounds[0])
	circ.Barrier()
	for _, d := range logicalXSupport {
		circ.X(c.Data.Start + d)
	}
	circ.Barrier()
	for r := 1; r < c.Rounds; r++ {
		c.stabRound(c.CRounds[r])
		circ.Barrier()
	}
	// Individual data readout feeding the decoder's final syndrome. It
	// comes straight after the second round so the decoder's record is
	// not exposed to the routing overhead of the raw-readout fan-in
	// below (measurements need no SWAPs; the CNOT fan-in does).
	for d := 0; d < c.Data.Size; d++ {
		circ.Measure(c.Data.Start+d, c.DataRead.Start+d)
	}
	// Raw ancilla readout: parity of the logical Z support, as in the
	// readout blocks of Figures 1 and 2. Measurement collapse makes the
	// parity it accumulates consistent with the data record.
	anc := c.Anc.Start
	for _, d := range c.logicalZ {
		circ.CNOT(c.Data.Start+d, anc)
	}
	circ.Measure(anc, c.AncRead.Start)
}

// RawLogical returns the uncorrected ancilla readout bit of a shot.
func (c *Code) RawLogical(bits []int) int {
	return bits[c.AncRead.Start]
}
