package qec

import (
	mathbits "math/bits"
	"sync"
)

// DecodeBatch is the word-parallel counterpart of Decode: rec is a
// bit-packed classical record where rec[c] holds classical bit c of 64
// concurrent shots ("lanes"), and the result word holds the decoded
// logical value of each lane. Only lanes set in live are decoded; dead
// lanes of the result carry the uncorrected logical parity.
//
// Three tiers keep the decoder off the hot path:
//
//  1. Detection events are extracted word-parallel — one XOR chain per
//     Z stabilizer over the packed syndrome rounds plus the recomputed
//     final syndrome — and lanes whose space-time syndrome is entirely
//     zero exit early: with no defects MWPM matches nothing and the
//     decoded value is the uncorrected data-readout parity, already
//     computed for all 64 lanes with a handful of XORs.
//  2. Triggered lanes exploit that the correction only enters the
//     logical value through the parity of the matched flip set on the
//     logical support, a pure function of the defect pattern. When the
//     pattern fits in 128 bits (the whole 2-round family and memory
//     campaigns out to stabs·(rounds+1) <= 128) the blossom result is
//     memoised in a lock-free, allocation-free open-addressed table,
//     so repeated syndromes — the norm under a localised strike — cost
//     a probe instead of a matching.
//  3. Only novel syndromes run the scalar blossom matcher over the
//     compiled detector-error model, reusing the already-extracted
//     defect words instead of re-deriving events from scalar bits.
//
// Lane l of the result always equals Decode of lane l's unpacked record
// (the memo stores Decode's own matching, so even tie-broken matchings
// agree bit for bit).
func (c *Code) DecodeBatch(rec []uint64, live uint64) uint64 {
	var liveT, outT [1]uint64
	liveT[0] = live
	c.DecodeTile(rec, 1, liveT[:], outT[:])
	return outT[0]
}

// DecodeUnionFindBatch is the word-parallel counterpart of
// DecodeUnionFind: identical detection-event extraction, fast path and
// memoisation as DecodeBatch, with the union-find grower/peeler in
// place of the blossom matcher on novel syndromes. Lane l of the result
// always equals DecodeUnionFind of lane l's unpacked record.
func (c *Code) DecodeUnionFindBatch(rec []uint64, live uint64) uint64 {
	var liveT, outT [1]uint64
	liveT[0] = live
	c.DecodeUnionFindTile(rec, 1, liveT[:], outT[:])
	return outT[0]
}

// DecodeTile is DecodeBatch over a w-word tile consumed in one call,
// with no per-word re-slicing: rec[c·w+k] holds classical bit c of tile
// word k (64·w lanes total), live[k] masks word k's live lanes, and
// out[k] receives word k's decoded logical word. All three tiers of
// DecodeBatch run tile-wide; the steady state allocates nothing (the
// extraction scratch is pooled, the syndrome memo is allocation-free).
// Word k of out always equals DecodeBatch of word k's re-sliced record.
func (c *Code) DecodeTile(rec []uint64, w int, live, out []uint64) {
	c.decodeTile(rec, w, live, out, c.mwpmMemo, func(defects []defect) uint64 {
		return c.flipParity(c.matchDefects(defects))
	})
}

// DecodeUnionFindTile is DecodeUnionFindBatch over a w-word tile; see
// DecodeTile for the tile layout.
func (c *Code) DecodeUnionFindTile(rec []uint64, w int, live, out []uint64) {
	m := c.DEM()
	c.decodeTile(rec, w, live, out, c.ufMemo, func(defects []defect) uint64 {
		return c.flipParity(ufDecode(m, defects, c.Data.Size))
	})
}

// flipParity folds a correction mask onto the logical support.
func (c *Code) flipParity(flips []bool) uint64 {
	var p uint64
	for _, d := range c.logicalZ {
		if flips[d] {
			p ^= 1
		}
	}
	return p
}

// DetectionEventWords extracts the word-parallel detection events of a
// packed record into dst (length NumZStabs·(Rounds+1), grown when
// needed): dst[s·layers+r] holds the layer-r detection bit of Z
// stabilizer s for all 64 lanes — round 0 XORed against the expected
// all-zero syndrome, consecutive rounds XOR-differenced, and the last
// round against the syndrome recomputed from the packed data readout.
// The second return value ORs every detection word (zero means no lane
// saw any defect). This is the extraction tier DecodeBatch runs; it is
// exported so diagnostics and tests can observe detection events
// without decoding.
func (c *Code) DetectionEventWords(rec []uint64, dst []uint64) ([]uint64, uint64) {
	layers := len(c.CRounds) + 1
	nz := len(c.zStabData)
	if cap(dst) < nz*layers {
		dst = make([]uint64, nz*layers)
	}
	dst = dst[:nz*layers]
	var anyT [1]uint64
	c.detectionEventTile(rec, 1, dst, anyT[:])
	return dst, anyT[0]
}

// detectionEventTile fills dst[(s·layers+r)·w+k] with the layer-r
// detection word of Z stabilizer s for tile word k, and ORs word k's
// detection words into anyw[k].
func (c *Code) detectionEventTile(rec []uint64, w int, dst, anyw []uint64) {
	layers := len(c.CRounds) + 1
	for s, datas := range c.zStabData {
		row := s * layers
		for k := 0; k < w; k++ {
			prev := uint64(0)
			a := anyw[k]
			for r, creg := range c.CRounds {
				cur := rec[(creg.Start+s)*w+k]
				d := prev ^ cur
				dst[(row+r)*w+k] = d
				a |= d
				prev = cur
			}
			final := uint64(0)
			for _, dq := range datas {
				final ^= rec[(c.DataRead.Start+dq)*w+k]
			}
			d := prev ^ final
			dst[(row+layers-1)*w+k] = d
			anyw[k] = a | d
		}
	}
}

// frontSize sizes decodeBuf's direct-mapped front cache (a power of
// two). 256 entries cover the working set of repeated syndromes under a
// localised strike while keeping the arrays L1-resident (8 KiB).
const frontSize = 256

// decodeBuf is the pooled scratch of one decodeTile call: the extracted
// detection-event tile, the per-word defect accumulator masks, and the
// defect list handed to the matcher. One pool serves every code — the
// slices grow to the largest tile decoded and are reused verbatim.
//
// The front arrays are a goroutine-private direct-mapped cache in front
// of the shared parityMemo: while a buf is checked out its owner probes
// and fills them with plain loads and stores, so the hot repeated
// syndromes of a steady campaign skip the memo's atomic probe entirely.
// Entries are tagged with the memo generation they came from
// (frontGen[i] == 0 means empty), so a buf that migrates between codes,
// decoders or SetPrior epochs mismatches instead of aliasing.
type decodeBuf struct {
	events  []uint64
	anyw    []uint64
	defects []defect

	frontGen [frontSize]uint64
	frontK0  [frontSize]uint64
	frontK1  [frontSize]uint64
	frontVal [frontSize]uint64
}

var decodeBufPool = sync.Pool{New: func() any { return new(decodeBuf) }}

// grow returns b.events and b.anyw sized for an n-word event tile over
// w tile words, zeroing anyw (events are fully overwritten).
func (b *decodeBuf) grow(n, w int) (events, anyw []uint64) {
	if cap(b.events) < n {
		b.events = make([]uint64, n)
	}
	if cap(b.anyw) < w {
		b.anyw = make([]uint64, w)
	}
	b.events = b.events[:n]
	b.anyw = b.anyw[:w]
	for k := range b.anyw {
		b.anyw[k] = 0
	}
	return b.events, b.anyw
}

// decodeTile is the decoder-agnostic tile-parallel core shared by
// DecodeTile and DecodeUnionFindTile: tiered extraction + memoisation
// around a flip-parity oracle evaluated only on novel defect patterns.
func (c *Code) decodeTile(rec []uint64, w int, live, out []uint64, memo *parityMemo,
	parityOf func(defects []defect) uint64) {
	layers := len(c.CRounds) + 1
	nz := len(c.zStabData)
	// Uncorrected logical parity of every lane: the fast-path answer.
	for k := 0; k < w; k++ {
		out[k] = 0
	}
	for _, d := range c.logicalZ {
		base := (c.DataRead.Start + d) * w
		for k := 0; k < w; k++ {
			out[k] ^= rec[base+k]
		}
	}
	if nz == 0 {
		return
	}
	buf := decodeBufPool.Get().(*decodeBuf)
	defectWords, anyw := buf.grow(nz*layers*w, w)
	c.detectionEventTile(rec, w, defectWords, anyw)
	// Key width is fixed per code: up to 64 detector bits fill only the
	// low key word (the 2-round hot path), up to 128 both words of the
	// key that keeps memory-depth campaigns cached.
	nbits := nz * layers
	cacheable := nbits <= 128
	defects := buf.defects
	for k := 0; k < w; k++ {
		slow := anyw[k] & live[k]
		for m := slow; m != 0; m &= m - 1 {
			lane := uint(mathbits.TrailingZeros64(m))
			mask := uint64(1) << lane
			var k0, k1, h uint64
			fi := 0
			if cacheable {
				for i := 0; i < nbits; i++ {
					bit := (defectWords[i*w+k] >> lane) & 1
					if i < 64 {
						k0 |= bit << uint(i)
					} else {
						k1 |= bit << uint(i-64)
					}
				}
				h = memoHash(k0, k1)
				fi = int(h & (frontSize - 1))
				if buf.frontGen[fi] == memo.gen && buf.frontK0[fi] == k0 && buf.frontK1[fi] == k1 {
					out[k] ^= buf.frontVal[fi] << lane
					continue
				}
				if v, ok := memo.load(h, k0, k1); ok {
					buf.frontGen[fi], buf.frontK0[fi], buf.frontK1[fi], buf.frontVal[fi] = memo.gen, k0, k1, v
					out[k] ^= v << lane
					continue
				}
			}
			// Defects in detectionEvents order (stabilizer-major, layer
			// minor) so the correction — and therefore the decoded value —
			// is bit-identical to the scalar decoder on the unpacked
			// record.
			defects = defects[:0]
			for s := 0; s < nz; s++ {
				for r := 0; r < layers; r++ {
					if defectWords[(s*layers+r)*w+k]&mask != 0 {
						defects = append(defects, defect{s, r})
					}
				}
			}
			flipParity := parityOf(defects)
			if cacheable {
				memo.store(h, k0, k1, flipParity)
				buf.frontGen[fi], buf.frontK0[fi], buf.frontK1[fi], buf.frontVal[fi] = memo.gen, k0, k1, flipParity
			}
			out[k] ^= flipParity << lane
		}
	}
	buf.defects = defects
	decodeBufPool.Put(buf)
}

// RawLogicalBatch is the word-parallel RawLogical: the packed
// uncorrected ancilla readout of all 64 lanes.
func (c *Code) RawLogicalBatch(rec []uint64, live uint64) uint64 {
	return rec[c.AncRead.Start]
}

// RawLogicalTile is RawLogicalBatch over a w-word tile; see DecodeTile
// for the tile layout.
func (c *Code) RawLogicalTile(rec []uint64, w int, live, out []uint64) {
	copy(out[:w], rec[c.AncRead.Start*w:c.AncRead.Start*w+w])
}

// batchMemoEntries reports the current MWPM syndrome-memo population
// (test hook).
func (c *Code) batchMemoEntries() int64 { return c.mwpmMemo.size.Load() }

// ufMemoEntries reports the union-find syndrome-memo population (test
// hook).
func (c *Code) ufMemoEntries() int64 { return c.ufMemo.size.Load() }
