package qec

import (
	mathbits "math/bits"
)

// batchCacheCap bounds the per-code syndrome memos so adversarial
// workloads (huge codes under saturating faults) cannot grow them
// without bound; beyond the cap lanes fall back to decoding directly.
const batchCacheCap = 1 << 16

// memoKey packs a space-time defect pattern of up to 128 detector bits.
type memoKey [2]uint64

// DecodeBatch is the word-parallel counterpart of Decode: rec is a
// bit-packed classical record where rec[c] holds classical bit c of 64
// concurrent shots ("lanes"), and the result word holds the decoded
// logical value of each lane. Only lanes set in live are decoded; dead
// lanes of the result carry the uncorrected logical parity.
//
// Three tiers keep the decoder off the hot path:
//
//  1. Detection events are extracted word-parallel — one XOR chain per
//     Z stabilizer over the packed syndrome rounds plus the recomputed
//     final syndrome — and lanes whose space-time syndrome is entirely
//     zero exit early: with no defects MWPM matches nothing and the
//     decoded value is the uncorrected data-readout parity, already
//     computed for all 64 lanes with a handful of XORs.
//  2. Triggered lanes exploit that the correction only enters the
//     logical value through the parity of the matched flip set on the
//     logical support, a pure function of the defect pattern. When the
//     pattern fits in 128 bits (the whole 2-round family and memory
//     campaigns out to stabs·(rounds+1) <= 128) the blossom result is
//     memoised per syndrome in a lock-free map, so repeated syndromes —
//     the norm under a localised strike — cost a lookup instead of a
//     matching.
//  3. Only novel syndromes run the scalar blossom matcher over the
//     compiled detector-error model, reusing the already-extracted
//     defect words instead of re-deriving events from scalar bits.
//
// Lane l of the result always equals Decode of lane l's unpacked record
// (the memo stores Decode's own matching, so even tie-broken matchings
// agree bit for bit).
func (c *Code) DecodeBatch(rec []uint64, live uint64) uint64 {
	return c.decodeBatch(rec, live, c.mwpmMemo, func(defects []defect) uint64 {
		return c.flipParity(c.matchDefects(defects))
	})
}

// DecodeUnionFindBatch is the word-parallel counterpart of
// DecodeUnionFind: identical detection-event extraction, fast path and
// memoisation as DecodeBatch, with the union-find grower/peeler in
// place of the blossom matcher on novel syndromes. Lane l of the result
// always equals DecodeUnionFind of lane l's unpacked record.
func (c *Code) DecodeUnionFindBatch(rec []uint64, live uint64) uint64 {
	m := c.DEM()
	return c.decodeBatch(rec, live, c.ufMemo, func(defects []defect) uint64 {
		return c.flipParity(ufDecode(m, defects, c.Data.Size))
	})
}

// flipParity folds a correction mask onto the logical support.
func (c *Code) flipParity(flips []bool) uint64 {
	var p uint64
	for _, d := range c.logicalZ {
		if flips[d] {
			p ^= 1
		}
	}
	return p
}

// DetectionEventWords extracts the word-parallel detection events of a
// packed record into dst (length NumZStabs·(Rounds+1), grown when
// needed): dst[s·layers+r] holds the layer-r detection bit of Z
// stabilizer s for all 64 lanes — round 0 XORed against the expected
// all-zero syndrome, consecutive rounds XOR-differenced, and the last
// round against the syndrome recomputed from the packed data readout.
// The second return value ORs every detection word (zero means no lane
// saw any defect). This is the extraction tier DecodeBatch runs; it is
// exported so diagnostics and tests can observe detection events
// without decoding.
func (c *Code) DetectionEventWords(rec []uint64, dst []uint64) ([]uint64, uint64) {
	layers := len(c.CRounds) + 1
	nz := len(c.zStabData)
	if cap(dst) < nz*layers {
		dst = make([]uint64, nz*layers)
	}
	dst = dst[:nz*layers]
	var any uint64
	for s, datas := range c.zStabData {
		prev := uint64(0)
		for r, creg := range c.CRounds {
			cur := rec[creg.Start+s]
			d := prev ^ cur
			dst[s*layers+r] = d
			any |= d
			prev = cur
		}
		final := uint64(0)
		for _, dq := range datas {
			final ^= rec[c.DataRead.Start+dq]
		}
		d := prev ^ final
		dst[s*layers+layers-1] = d
		any |= d
	}
	return dst, any
}

// decodeBatch is the decoder-agnostic word-parallel core shared by
// DecodeBatch and DecodeUnionFindBatch: tiered extraction + memoisation
// around a flip-parity oracle evaluated only on novel defect patterns.
func (c *Code) decodeBatch(rec []uint64, live uint64, memo *batchMemo,
	parityOf func(defects []defect) uint64) uint64 {
	layers := len(c.CRounds) + 1
	nz := len(c.zStabData)
	// Uncorrected logical parity of every lane: the fast-path answer.
	var logical uint64
	for _, d := range c.logicalZ {
		logical ^= rec[c.DataRead.Start+d]
	}
	if nz == 0 {
		return logical
	}
	// Word-parallel detection events, mirroring detectionEvents exactly.
	defectWords, anyDefect := c.DetectionEventWords(rec, nil)
	slow := anyDefect & live
	if slow == 0 {
		return logical
	}
	// Key width is fixed per code, so the two key shapes never mix in
	// one memo: up to 64 detector bits use a bare uint64 (the cheaper
	// boxing and hash on the 2-round hot path), up to 128 the two-word
	// key that keeps memory-depth campaigns cached.
	nbits := nz * layers
	cache64 := nbits <= 64
	cache128 := !cache64 && nbits <= 128
	cacheable := cache64 || cache128
	var defects []defect
	for m := slow; m != 0; m &= m - 1 {
		lane := uint(mathbits.TrailingZeros64(m))
		mask := uint64(1) << lane
		var key any
		if cache64 {
			var k uint64
			for i, w := range defectWords {
				k |= ((w >> lane) & 1) << uint(i)
			}
			key = k
		} else if cache128 {
			var k memoKey
			for i, w := range defectWords {
				k[i>>6] |= ((w >> lane) & 1) << uint(i&63)
			}
			key = k
		}
		if cacheable {
			if v, ok := memo.m.Load(key); ok {
				logical ^= v.(uint64) << lane
				continue
			}
		}
		// Defects in detectionEvents order (stabilizer-major, layer
		// minor) so the correction — and therefore the decoded value —
		// is bit-identical to the scalar decoder on the unpacked record.
		defects = defects[:0]
		for s := 0; s < nz; s++ {
			for r := 0; r < layers; r++ {
				if defectWords[s*layers+r]&mask != 0 {
					defects = append(defects, defect{s, r})
				}
			}
		}
		flipParity := parityOf(defects)
		// Reserve a slot before inserting so the map can never exceed
		// the cap even when workers race past it; the reservation is
		// released when it loses (cap hit, or another worker stored the
		// same key first).
		if cacheable {
			if memo.size.Add(1) <= batchCacheCap {
				if _, loaded := memo.m.LoadOrStore(key, flipParity); loaded {
					memo.size.Add(-1)
				}
			} else {
				memo.size.Add(-1)
			}
		}
		logical ^= flipParity << lane
	}
	return logical
}

// RawLogicalBatch is the word-parallel RawLogical: the packed
// uncorrected ancilla readout of all 64 lanes.
func (c *Code) RawLogicalBatch(rec []uint64, live uint64) uint64 {
	return rec[c.AncRead.Start]
}

// batchMemoEntries reports the current MWPM syndrome-memo population
// (test hook).
func (c *Code) batchMemoEntries() int64 { return c.mwpmMemo.size.Load() }

// ufMemoEntries reports the union-find syndrome-memo population (test
// hook).
func (c *Code) ufMemoEntries() int64 { return c.ufMemo.size.Load() }
