package qec

import "sync/atomic"

// The syndrome memo used to be a sync.Map keyed by boxed uint64/[2]uint64
// values, which cost one interface allocation and a runtime hash per
// decoded lane — the dominant term of the batch-decode hot path once
// detection-event extraction went word-parallel. parityMemo replaces it
// with a fixed-size open-addressed table of 128-bit keys that is
// allocation-free on both lookup and insert.
const (
	// memoSlotBits sizes the table; with the 3/4 load cap below the
	// entry capacity stays close to the old batchCacheCap while linear
	// probes stay short.
	memoSlotBits = 15
	memoSlots    = 1 << memoSlotBits
	// memoProbeCap bounds a probe sequence; a key that cannot find a
	// home within it is simply not cached (the decode still runs, it
	// just is not memoised), mirroring the old cap fallback.
	memoProbeCap = 32
	// memoEntryCap is the insert cap: beyond it adversarial workloads
	// (huge codes under saturating faults) fall back to decoding
	// directly instead of growing the table's effective load factor.
	memoEntryCap = memoSlots * 3 / 4
)

// memoSlot is one table entry. state moves 0 (empty) -> 1 (writing) ->
// 2 (ready) and never backwards; the key and parity fields are written
// only between the 0->1 claim and the release store of 2, so a reader
// that acquire-loads state 2 observes them fully written and immutable.
type memoSlot struct {
	state  atomic.Uint32
	parity uint32
	k0, k1 uint64
}

// parityMemo is a bounded lock-free syndrome-to-flip-parity cache. The
// table is allocated lazily on first insert, so the many Code values
// tests construct but never batch-decode cost four words, not a
// megabyte.
type parityMemo struct {
	slots atomic.Pointer[[memoSlots]memoSlot]
	size  atomic.Int64
	// gen is this memo's process-unique identity, tagged onto front-cache
	// entries (see decodeBuf) so an entry can never outlive or alias its
	// memo — not even across a SetPrior swap or a recycled allocation.
	gen uint64
}

// memoGen feeds newParityMemo's identities; it starts handing out at 1
// so the zero generation never matches a memo.
var memoGen atomic.Uint64

// newParityMemo builds an empty memo with a fresh identity.
func newParityMemo() *parityMemo {
	return &parityMemo{gen: memoGen.Add(1)}
}

// memoHash mixes a 128-bit defect pattern into a table index
// (SplitMix64 finaliser over the folded words).
func memoHash(k0, k1 uint64) uint64 {
	x := k0 ^ (k1 * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// load returns the cached flip parity of the defect pattern (k0, k1).
// h must be memoHash(k0, k1); callers share one hash across the front
// cache, the probe and the insert.
func (m *parityMemo) load(h, k0, k1 uint64) (uint64, bool) {
	t := m.slots.Load()
	if t == nil {
		return 0, false
	}
	for i := uint64(0); i < memoProbeCap; i++ {
		s := &t[(h+i)&(memoSlots-1)]
		switch s.state.Load() {
		case 0:
			// An insert claims the first empty slot of its probe
			// sequence, so an empty slot proves the key is absent.
			return 0, false
		case 2:
			if s.k0 == k0 && s.k1 == k1 {
				return uint64(s.parity), true
			}
		}
		// state 1 (mid-write) or a different key: keep probing.
	}
	return 0, false
}

// store caches the flip parity of the defect pattern (k0, k1). Losing a
// claim race, hitting the entry cap or exhausting the probe budget just
// skips the insert — correctness never depends on a store landing. h
// must be memoHash(k0, k1).
func (m *parityMemo) store(h, k0, k1, parity uint64) {
	if m.size.Load() >= memoEntryCap {
		return
	}
	t := m.slots.Load()
	if t == nil {
		fresh := new([memoSlots]memoSlot)
		if !m.slots.CompareAndSwap(nil, fresh) {
			fresh = nil // lost the race; use the winner's table
		}
		t = m.slots.Load()
	}
	for i := uint64(0); i < memoProbeCap; i++ {
		s := &t[(h+i)&(memoSlots-1)]
		st := s.state.Load()
		if st == 2 {
			if s.k0 == k0 && s.k1 == k1 {
				return // already cached
			}
			continue
		}
		if st == 0 && s.state.CompareAndSwap(0, 1) {
			s.k0, s.k1 = k0, k1
			s.parity = uint32(parity)
			s.state.Store(2)
			m.size.Add(1)
			return
		}
		// Claim lost or a writer is mid-flight: treat as occupied. Two
		// racing writers of the same key may land it in two slots; both
		// carry the same parity (a pure function of the key), so
		// duplicates are benign.
	}
}
