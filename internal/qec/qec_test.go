package qec

import (
	"testing"
	"testing/quick"

	"radqec/internal/circuit"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

func mustRep(t testing.TB, d int) *Code {
	t.Helper()
	c, err := NewRepetition(d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustXXZZ(t testing.TB, dZ, dX int) *Code {
	t.Helper()
	c, err := NewXXZZ(dZ, dX)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// cleanRun executes the code's circuit without any noise and returns the
// classical record.
func cleanRun(t testing.TB, c *Code, seed uint64) []int {
	t.Helper()
	ex := inject.NewExecutor(c.Circ, noise.Depolarizing{}, nil)
	return ex.Run(rng.New(seed))
}

func TestRepetitionSizes(t *testing.T) {
	for _, d := range RepetitionDistances() {
		c := mustRep(t, d)
		if got := c.NumQubits(); got != 2*d {
			t.Fatalf("rep-%d: %d qubits, want %d", d, got, 2*d)
		}
		if c.NumZStabs() != d-1 || c.NumXStabs() != 0 {
			t.Fatalf("rep-%d: %d Z / %d X stabs", d, c.NumZStabs(), c.NumXStabs())
		}
		if c.Data.Size != d || c.MZ.Size != d-1 || c.Anc.Size != 1 {
			t.Fatalf("rep-%d register sizes wrong", d)
		}
	}
}

func TestRepetitionRejectsBadDistance(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, -3} {
		if _, err := NewRepetition(d); err == nil {
			t.Fatalf("NewRepetition(%d) accepted", d)
		}
	}
}

func TestXXZZSizes(t *testing.T) {
	cases := []struct {
		dZ, dX, wantZ, wantX int
	}{
		{3, 3, 4, 4},
		{3, 5, 6, 8},
		{5, 3, 8, 6},
		{1, 3, 0, 2},
		{3, 1, 2, 0},
		{5, 5, 12, 12},
	}
	for _, cse := range cases {
		c := mustXXZZ(t, cse.dZ, cse.dX)
		if got := c.NumQubits(); got != 2*cse.dZ*cse.dX {
			t.Fatalf("xxzz-(%d,%d): %d qubits, want %d", cse.dZ, cse.dX, got, 2*cse.dZ*cse.dX)
		}
		if c.NumZStabs() != cse.wantZ || c.NumXStabs() != cse.wantX {
			t.Fatalf("xxzz-(%d,%d): %d Z / %d X stabs, want %d / %d",
				cse.dZ, cse.dX, c.NumZStabs(), c.NumXStabs(), cse.wantZ, cse.wantX)
		}
		if c.NumZStabs()+c.NumXStabs() != cse.dZ*cse.dX-1 {
			t.Fatalf("xxzz-(%d,%d): stabilizer count != n-1", cse.dZ, cse.dX)
		}
	}
}

func TestXXZZRejectsBadDistances(t *testing.T) {
	for _, d := range [][2]int{{2, 3}, {3, 2}, {0, 3}, {1, 1}, {-3, 3}} {
		if _, err := NewXXZZ(d[0], d[1]); err == nil {
			t.Fatalf("NewXXZZ(%d,%d) accepted", d[0], d[1])
		}
	}
}

func overlap(a, b []int) int {
	m := make(map[int]bool, len(a))
	for _, v := range a {
		m[v] = true
	}
	n := 0
	for _, v := range b {
		if m[v] {
			n++
		}
	}
	return n
}

func TestStabilizerAlgebra(t *testing.T) {
	codes := []*Code{
		mustRep(t, 5), mustRep(t, 15),
		mustXXZZ(t, 3, 3), mustXXZZ(t, 3, 5), mustXXZZ(t, 5, 3), mustXXZZ(t, 5, 5),
		mustXXZZ(t, 1, 3), mustXXZZ(t, 3, 1),
	}
	for _, c := range codes {
		// Z and X stabilizers must commute: even overlap.
		for zi, z := range c.ZStabilizers() {
			for xi, x := range c.XStabilizers() {
				if overlap(z, x)%2 != 0 {
					t.Fatalf("%s: Z stab %d and X stab %d anticommute", c.Name, zi, xi)
				}
			}
		}
		// Logical Z must commute with every X stabilizer.
		for xi, x := range c.XStabilizers() {
			if overlap(c.LogicalZSupport(), x)%2 != 0 {
				t.Fatalf("%s: logical Z anticommutes with X stab %d", c.Name, xi)
			}
		}
		// Every data qubit sits in at most two Z stabilizers (the
		// matching decode-graph assumption).
		count := make(map[int]int)
		for _, z := range c.ZStabilizers() {
			for _, d := range z {
				count[d]++
			}
		}
		for d, n := range count {
			if n > 2 {
				t.Fatalf("%s: data %d in %d Z stabilizers", c.Name, d, n)
			}
		}
	}
}

func TestLogicalXCommutesWithZStabs(t *testing.T) {
	// The transversal X applied mid-circuit must not trip any Z
	// stabilizer: round 1 and round 2 syndromes agree without noise.
	codes := []*Code{mustRep(t, 7), mustXXZZ(t, 3, 3), mustXXZZ(t, 5, 3), mustXXZZ(t, 3, 5)}
	for _, c := range codes {
		bits := cleanRun(t, c, 11)
		for s := 0; s < c.NumZStabs(); s++ {
			if bits[c.C0.Start+s] != 0 || bits[c.C1.Start+s] != 0 {
				t.Fatalf("%s: Z syndrome fired without noise (stab %d)", c.Name, s)
			}
		}
	}
}

func TestCleanDecodeIsLogicalOne(t *testing.T) {
	codes := []*Code{
		mustRep(t, 3), mustRep(t, 5), mustRep(t, 15),
		mustXXZZ(t, 3, 3), mustXXZZ(t, 1, 3), mustXXZZ(t, 3, 1),
		mustXXZZ(t, 3, 5), mustXXZZ(t, 5, 3),
	}
	for _, c := range codes {
		for seed := uint64(0); seed < 25; seed++ {
			bits := cleanRun(t, c, seed)
			if got := c.Decode(bits); got != 1 {
				t.Fatalf("%s seed %d: decoded %d, want 1", c.Name, seed, got)
			}
			if got := c.RawLogical(bits); got != 1 {
				t.Fatalf("%s seed %d: raw readout %d, want 1", c.Name, seed, got)
			}
		}
	}
}

func TestDecodeCorrectsReadoutErrors(t *testing.T) {
	// Flipping up to floor((d-1)/2) final data readout bits must be
	// corrected by the matching decoder.
	c := mustRep(t, 7)
	base := cleanRun(t, c, 3)
	flipSets := [][]int{{0}, {3}, {6}, {0, 3}, {2, 5}, {1, 4, 6}}
	for _, flips := range flipSets {
		bits := append([]int(nil), base...)
		for _, d := range flips {
			bits[c.DataRead.Start+d] ^= 1
		}
		if got := c.Decode(bits); got != 1 {
			t.Fatalf("flips %v: decoded %d, want 1", flips, got)
		}
	}
}

func TestDecodeCorrectsXXZZReadoutError(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	for d := 0; d < c.Data.Size; d++ {
		bits := cleanRun(t, c, 5)
		bits[c.DataRead.Start+d] ^= 1
		if got := c.Decode(bits); got != 1 {
			t.Fatalf("single readout flip on data %d uncorrected (got %d)", d, got)
		}
	}
}

func TestDecodeUncorrectableMajorityFlip(t *testing.T) {
	// Flipping a majority of the data bits crosses the logical boundary:
	// the decoder must output 0.
	c := mustRep(t, 5)
	bits := cleanRun(t, c, 7)
	for d := 0; d < 5; d++ {
		bits[c.DataRead.Start+d] ^= 1
	}
	if got := c.Decode(bits); got != 0 {
		t.Fatalf("all-flip decoded %d, want logical error (0)", got)
	}
}

func TestDecodeCorrectsEarlyDataError(t *testing.T) {
	// An X error injected before the first stabilization round trips
	// round-0 syndromes; a single one must always be corrected.
	for _, mk := range []func() *Code{
		func() *Code { return mustRep(t, 5) },
		func() *Code { return mustXXZZ(t, 3, 3) },
	} {
		c := mk()
		for d := 0; d < c.Data.Size; d++ {
			// Prepend an X on data qubit d to a clone of the circuit.
			circ := circuit.New(c.Circ.NumQubits, c.Circ.NumClbits)
			circ.X(c.Data.Start + d)
			circ.Append(c.Circ)
			ex := inject.NewExecutor(circ, noise.Depolarizing{}, nil)
			for seed := uint64(0); seed < 5; seed++ {
				bits := ex.Run(rng.New(seed))
				if got := c.Decode(bits); got != 1 {
					t.Fatalf("%s: early X on data %d uncorrected (seed %d)", c.Name, d, seed)
				}
			}
		}
	}
}

func TestDecodeCorrectsMidCircuitError(t *testing.T) {
	// A single X error between the two stabilization rounds is detected
	// by the round-1/round-2 difference and must be corrected.
	c := mustXXZZ(t, 3, 3)
	base := c.Circ
	// Find the first barrier (after round 1) and inject there.
	insertAt := -1
	for i, op := range base.Ops {
		if op.Kind == circuit.KindBarrier {
			insertAt = i
			break
		}
	}
	if insertAt == -1 {
		t.Fatal("no barrier found")
	}
	for d := 0; d < c.Data.Size; d++ {
		circ := circuit.New(base.NumQubits, base.NumClbits)
		for i, op := range base.Ops {
			cp := op
			cp.Qubits = append([]int(nil), op.Qubits...)
			circ.Ops = append(circ.Ops, cp)
			if i == insertAt {
				circ.X(c.Data.Start + d)
			}
		}
		ex := inject.NewExecutor(circ, noise.Depolarizing{}, nil)
		bits := ex.Run(rng.New(9))
		if got := c.Decode(bits); got != 1 {
			t.Fatalf("mid-circuit X on data %d uncorrected (got %d)", d, got)
		}
	}
}

func TestDecodeDeterministic(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	ev := noise.NewRadiationEvent(distancesFromData(c, 2), 1.0, true)
	ex := inject.NewExecutor(c.Circ, noise.NewDepolarizing(0.01), ev)
	bits := ex.Run(rng.New(42))
	first := c.Decode(bits)
	for i := 0; i < 10; i++ {
		if got := c.Decode(bits); got != first {
			t.Fatal("Decode not deterministic")
		}
	}
}

// distancesFromData builds a fake per-qubit distance table with the root
// at the given qubit index and unit steps along the index line; good
// enough for executor-level tests.
func distancesFromData(c *Code, root int) []int {
	dist := make([]int, c.NumQubits())
	for q := range dist {
		d := q - root
		if d < 0 {
			d = -d
		}
		dist[q] = d
	}
	return dist
}

func TestRadiationDegradesDecoding(t *testing.T) {
	// A full-strength strike must cause logical errors at a meaningful
	// rate; without it the rate is zero.
	c := mustRep(t, 5)
	ev := noise.NewRadiationEvent(distancesFromData(c, 2), 1.0, true)
	clean := inject.Campaign{
		Exec:     inject.NewExecutor(c.Circ, noise.Depolarizing{}, nil),
		Decode:   c.Decode,
		Expected: 1,
	}
	if r := clean.Run(1, 300); r.Errors != 0 {
		t.Fatalf("clean campaign produced %d errors", r.Errors)
	}
	hot := inject.Campaign{
		Exec:     inject.NewExecutor(c.Circ, noise.Depolarizing{}, ev),
		Decode:   c.Decode,
		Expected: 1,
	}
	if r := hot.Run(1, 300); r.Errors == 0 {
		t.Fatal("radiated campaign produced no logical errors")
	}
}

func TestDecodePropertyRandomReadoutNoise(t *testing.T) {
	// Whatever garbage the readout contains, Decode must return 0 or 1
	// and never panic.
	c := mustXXZZ(t, 3, 3)
	base := cleanRun(t, c, 1)
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		bits := append([]int(nil), base...)
		for i := range bits {
			if src.Bool(0.3) {
				bits[i] ^= 1
			}
		}
		v := c.Decode(bits)
		return v == 0 || v == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDecoderAgreesOnSimpleErrors(t *testing.T) {
	c := mustRep(t, 7)
	base := cleanRun(t, c, 2)
	for d := 0; d < 7; d++ {
		bits := append([]int(nil), base...)
		bits[c.DataRead.Start+d] ^= 1
		if got := c.DecodeGreedy(bits); got != 1 {
			t.Fatalf("greedy decoder failed on single flip at %d", d)
		}
	}
}

func TestCodeString(t *testing.T) {
	c := mustRep(t, 5)
	if got := c.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestXXZZDistancesList(t *testing.T) {
	if len(XXZZDistances()) != 5 {
		t.Fatal("Figure 6b distance list changed")
	}
}

func TestCircuitUsesAllQubits(t *testing.T) {
	// Every qubit (data, measure, ancilla) must appear in the circuit —
	// otherwise the radiation fault surface would be understated.
	for _, c := range []*Code{mustRep(t, 5), mustXXZZ(t, 3, 3)} {
		touched := make([]bool, c.NumQubits())
		for _, op := range c.Circ.Ops {
			for _, q := range op.Qubits {
				touched[q] = true
			}
		}
		for q, ok := range touched {
			if !ok {
				t.Fatalf("%s: qubit %d never used", c.Name, q)
			}
		}
	}
}
