package qec

import (
	"fmt"

	"radqec/internal/circuit"
)

// NewRepetition builds the distance-(d,1) bit-flip protected repetition
// code (Figure 2 of the paper): d data qubits entangled into a GHZ-style
// chain, d-1 Z-parity stabilizers measured by dedicated qubits, and one
// ancilla performing the raw logical readout, for 2d qubits total.
//
// d must be odd and at least 3. Two stabilization rounds are measured,
// as in the paper; use NewRepetitionRounds for more.
func NewRepetition(d int) (*Code, error) {
	return NewRepetitionRounds(d, 2)
}

// NewRepetitionRounds is NewRepetition with an explicit number of
// stabilization rounds (>= 2); the transversal logical X is applied
// between the first and second round.
func NewRepetitionRounds(d, rounds int) (*Code, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("qec: repetition distance must be odd and >= 3, got %d", d)
	}
	if rounds < 2 {
		return nil, fmt.Errorf("qec: at least 2 stabilization rounds required, got %d", rounds)
	}
	c := &Code{
		Name:   fmt.Sprintf("rep-(%d,1)", d),
		DZ:     d,
		DX:     1,
		Rounds: rounds,
	}
	circ := circuit.New(0, 0)
	c.Data = circ.AddQReg("data", d)
	c.MZ = circ.AddQReg("mz", d-1)
	c.MX = circ.AddQReg("mx", 0)
	c.Anc = circ.AddQReg("ancilla", 1)
	for r := 0; r < rounds; r++ {
		c.CRounds = append(c.CRounds, circ.AddCReg(fmt.Sprintf("c%d", r), d-1))
	}
	c.C0, c.C1 = c.CRounds[0], c.CRounds[1]
	c.DataRead = circ.AddCReg("dataread", d)
	c.AncRead = circ.AddCReg("readout", 1)
	c.Circ = circ

	// Stabilizer s checks the Z-parity of adjacent data qubits s, s+1.
	c.zStabData = make([][]int, d-1)
	for s := 0; s < d-1; s++ {
		c.zStabData[s] = []int{s, s + 1}
	}
	// Logical Z is the total data parity (equal to single-qubit Z up to
	// stabilizer products for odd d) so the ancilla readout block mirrors
	// Figure 2's CNOT fan-in; logical X is transversal X on every data
	// qubit.
	c.logicalZ = make([]int, d)
	logicalX := make([]int, d)
	for i := range logicalX {
		c.logicalZ[i] = i
		logicalX[i] = i
	}
	c.finishCircuit(logicalX)
	return c, nil
}

// RepetitionDistances lists the repetition distances evaluated in the
// paper's Figure 6a.
func RepetitionDistances() []int { return []int{3, 5, 7, 9, 11, 13, 15} }
