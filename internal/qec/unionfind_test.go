package qec

import (
	"testing"
	"testing/quick"

	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

func TestUnionFindCleanDecode(t *testing.T) {
	codes := []*Code{
		mustRep(t, 3), mustRep(t, 7), mustRep(t, 15),
		mustXXZZ(t, 3, 3), mustXXZZ(t, 3, 5), mustXXZZ(t, 1, 3),
	}
	for _, c := range codes {
		for seed := uint64(0); seed < 10; seed++ {
			bits := cleanRun(t, c, seed)
			if got := c.DecodeUnionFind(bits); got != 1 {
				t.Fatalf("%s seed %d: union-find decoded %d, want 1", c.Name, seed, got)
			}
		}
	}
}

func TestUnionFindCorrectsSingleReadoutFlip(t *testing.T) {
	for _, c := range []*Code{mustRep(t, 7), mustXXZZ(t, 3, 3)} {
		base := cleanRun(t, c, 4)
		for d := 0; d < c.Data.Size; d++ {
			bits := append([]int(nil), base...)
			bits[c.DataRead.Start+d] ^= 1
			if got := c.DecodeUnionFind(bits); got != 1 {
				t.Fatalf("%s: union-find missed single flip at data %d", c.Name, d)
			}
		}
	}
}

func TestUnionFindCorrectsEarlyError(t *testing.T) {
	c := mustRep(t, 5)
	for d := 0; d < c.Data.Size; d++ {
		circ := c.Circ.Clone()
		// Prepend X on data d.
		pre := circ.Ops
		circ.Ops = nil
		circ.X(c.Data.Start + d)
		circ.Ops = append(circ.Ops, pre...)
		ex := inject.NewExecutor(circ, noise.Depolarizing{}, nil)
		bits := ex.Run(rng.New(3))
		if got := c.DecodeUnionFind(bits); got != 1 {
			t.Fatalf("union-find missed early X on data %d", d)
		}
	}
}

func TestUnionFindMajorityFlipIsLogicalError(t *testing.T) {
	c := mustRep(t, 5)
	bits := cleanRun(t, c, 6)
	for d := 0; d < 5; d++ {
		bits[c.DataRead.Start+d] ^= 1
	}
	if got := c.DecodeUnionFind(bits); got != 0 {
		t.Fatalf("union-find decoded all-flip as %d, want 0", got)
	}
}

func TestUnionFindAlwaysReturnsValidBit(t *testing.T) {
	c := mustXXZZ(t, 3, 3)
	base := cleanRun(t, c, 1)
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		bits := append([]int(nil), base...)
		for i := range bits {
			if src.Bool(0.35) {
				bits[i] ^= 1
			}
		}
		v := c.DecodeUnionFind(bits)
		return v == 0 || v == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFindMatchesMWPMOnLightNoise(t *testing.T) {
	// Under light depolarizing noise both decoders should reach the
	// expected logical value in the vast majority of shots; union-find
	// may give up a little accuracy but must stay within a few percent.
	c := mustXXZZ(t, 3, 3)
	ex := inject.NewExecutor(c.Circ, noise.NewDepolarizing(0.005), nil)
	const shots = 400
	mwpmErr, ufErr := 0, 0
	for s := uint64(0); s < shots; s++ {
		bits := ex.Run(rng.New(s))
		if c.Decode(bits) != 1 {
			mwpmErr++
		}
		if c.DecodeUnionFind(bits) != 1 {
			ufErr++
		}
	}
	if ufErr > mwpmErr+shots/10 {
		t.Fatalf("union-find far worse than MWPM: %d vs %d errors", ufErr, mwpmErr)
	}
}

func TestSTGraphStructure(t *testing.T) {
	c := mustRep(t, 5)
	m := c.DEM()
	// 4 stabilizers x 3 layers + boundary.
	if m.Boundary != 12 {
		t.Fatalf("boundary id = %d", m.Boundary)
	}
	if len(m.Adj) != 13 {
		t.Fatalf("node count = %d", len(m.Adj))
	}
	// Spatial edges per layer: 3 internal (data 1..3 shared) + 2
	// boundary (data 0 and 4); temporal: 4 x 2.
	wantEdges := 3*(3+2) + 4*2
	if len(m.Edges) != wantEdges {
		t.Fatalf("edge count = %d, want %d", len(m.Edges), wantEdges)
	}
}

func TestMultiRoundCodes(t *testing.T) {
	for _, rounds := range []int{2, 3, 5} {
		c, err := NewRepetitionRounds(7, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if c.Rounds != rounds || len(c.CRounds) != rounds {
			t.Fatalf("rounds bookkeeping wrong for %d", rounds)
		}
		for seed := uint64(0); seed < 10; seed++ {
			bits := cleanRun(t, c, seed)
			if got := c.Decode(bits); got != 1 {
				t.Fatalf("%d-round rep decoded %d", rounds, got)
			}
			if got := c.DecodeUnionFind(bits); got != 1 {
				t.Fatalf("%d-round rep union-find decoded %d", rounds, got)
			}
		}
	}
	x, err := NewXXZZRounds(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		if got := x.Decode(cleanRun(t, x, seed)); got != 1 {
			t.Fatalf("4-round xxzz decoded %d", got)
		}
	}
}

func TestMultiRoundRejectsFewRounds(t *testing.T) {
	if _, err := NewRepetitionRounds(5, 1); err == nil {
		t.Fatal("1-round accepted")
	}
	if _, err := NewXXZZRounds(3, 3, 0); err == nil {
		t.Fatal("0-round accepted")
	}
}

func TestMultiRoundCorrectsMeasurementError(t *testing.T) {
	// Flip one syndrome bit in a middle round: a measurement error that
	// time-like matching must absorb without corrupting the output.
	c, err := NewRepetitionRounds(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := cleanRun(t, c, 8)
	for r := 0; r < 4; r++ {
		for s := 0; s < c.NumZStabs(); s++ {
			bits := append([]int(nil), base...)
			bits[c.CRounds[r].Start+s] ^= 1
			if got := c.Decode(bits); got != 1 {
				t.Fatalf("measurement error round %d stab %d uncorrected", r, s)
			}
			if got := c.DecodeUnionFind(bits); got != 1 {
				t.Fatalf("union-find: measurement error round %d stab %d uncorrected", r, s)
			}
		}
	}
}
