package qec

// Union-find decoding (Delfosse & Nickerson, "Almost-linear time
// decoding algorithm for topological codes", cited by the paper as the
// main almost-linear alternative to MWPM). Clusters grow half-edge by
// half-edge around defects until every cluster is neutral (even defect
// parity or boundary contact); a peeling pass over each cluster's
// spanning forest then extracts the correction.
//
// The decoder operates on the compiled detector-error model's
// space-time graph — one node per (Z stabilizer, detection layer) plus
// the global boundary node absorbing chains that exit the lattice —
// shared with the MWPM decoder. Growth is uniform per edge (the
// classic unweighted variant); the DEM supplies the topology and flip
// identities.

import "radqec/internal/dem"

// unionFind is a standard disjoint-set forest with cluster metadata.
type unionFind struct {
	parent []int
	rank   []int
	// parity counts defects in the cluster mod 2.
	parity []uint8
	// boundary marks clusters touching the boundary node.
	boundary []bool
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{
		parent:   make([]int, n),
		rank:     make([]int, n),
		parity:   make([]uint8, n),
		boundary: make([]bool, n),
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.parity[ra] ^= u.parity[rb]
	u.boundary[ra] = u.boundary[ra] || u.boundary[rb]
	return ra
}

// neutral reports whether the cluster rooted at r needs no more growth.
func (u *unionFind) neutral(r int) bool {
	return u.parity[r] == 0 || u.boundary[r]
}

// ufDecode runs cluster growth + peeling over the DEM's space-time
// graph and returns the data-qubit flip mask.
func ufDecode(m *dem.Model, defects []defect, numData int) []bool {
	flips := make([]bool, numData)
	if len(defects) == 0 {
		return flips
	}
	numNodes := len(m.Adj)
	uf := newUnionFind(numNodes)
	uf.boundary[m.Boundary] = true
	isDefect := make([]bool, numNodes)
	for _, df := range defects {
		v := m.Node(df.stab, df.round)
		isDefect[v] = true
		uf.parity[uf.find(v)] ^= 1
	}
	// growth[e] in {0, 1, 2}: half-edge growth state.
	growth := make([]uint8, len(m.Edges))
	grown := make([]bool, len(m.Edges))

	// activeRoots tracks clusters that still need growth.
	active := func() []int {
		seen := map[int]bool{}
		var out []int
		for _, df := range defects {
			r := uf.find(m.Node(df.stab, df.round))
			if !seen[r] && !uf.neutral(r) {
				seen[r] = true
				out = append(out, r)
			}
		}
		return out
	}

	// Vertices currently owned by each cluster are found by scanning;
	// decoder graphs here are small (hundreds of nodes), so the simple
	// quadratic variant is plenty and keeps the code auditable.
	for iter := 0; iter < 4*len(m.Edges)+4; iter++ {
		roots := active()
		if len(roots) == 0 {
			break
		}
		inActive := map[int]bool{}
		for _, r := range roots {
			inActive[r] = true
		}
		// Grow every boundary half-edge of every active cluster.
		for v := range m.Adj {
			if !inActive[uf.find(v)] {
				continue
			}
			for _, ei := range m.Adj[v] {
				if growth[ei] < 2 {
					growth[ei]++
					if growth[ei] == 2 && !grown[ei] {
						grown[ei] = true
						uf.union(m.Edges[ei].U, m.Edges[ei].V)
					}
				}
			}
		}
	}

	// Peeling: build a spanning forest of each cluster over grown edges,
	// then peel leaves, pushing defect parity toward the root. Roots are
	// boundary-contact vertices when available.
	n := numNodes
	treeParent := make([]int, n)
	treeEdge := make([]int, n)
	visited := make([]bool, n)
	for i := range treeParent {
		treeParent[i] = -1
		treeEdge[i] = -1
	}
	adjGrown := make([][]int, n)
	for ei, ok := range grown {
		if ok {
			adjGrown[m.Edges[ei].U] = append(adjGrown[m.Edges[ei].U], ei)
			adjGrown[m.Edges[ei].V] = append(adjGrown[m.Edges[ei].V], ei)
		}
	}
	// BFS from the boundary first so boundary-touching clusters root
	// there (the boundary absorbs any defect parity).
	order := make([]int, 0, n)
	bfs := func(start int) {
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range adjGrown[v] {
				w := m.Edges[ei].U + m.Edges[ei].V - v
				if !visited[w] {
					visited[w] = true
					treeParent[w] = v
					treeEdge[w] = ei
					queue = append(queue, w)
				}
			}
		}
	}
	bfs(m.Boundary)
	for v := 0; v < n; v++ {
		if !visited[v] {
			bfs(v)
		}
	}
	// Peel in reverse BFS order: every vertex is a leaf of the remaining
	// forest when processed.
	defectState := make([]bool, n)
	copy(defectState, isDefect)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if treeParent[v] == -1 || !defectState[v] {
			continue
		}
		// Push the defect up through the tree edge.
		ei := treeEdge[v]
		if d := m.Edges[ei].Data; d >= 0 {
			flips[d] = !flips[d]
		}
		defectState[v] = false
		defectState[treeParent[v]] = !defectState[treeParent[v]]
	}
	return flips
}

// DecodeUnionFind decodes a shot record with the union-find decoder
// instead of MWPM. Detection events, the detector-error model and the
// correction model are shared with Decode, so accuracy differences
// isolate the matching strategy.
func (c *Code) DecodeUnionFind(bits []int) int {
	defects := c.detectionEvents(bits)
	flips := ufDecode(c.DEM(), defects, c.Data.Size)
	return c.logicalValue(bits, flips)
}
