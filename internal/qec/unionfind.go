package qec

// Union-find decoding (Delfosse & Nickerson, "Almost-linear time
// decoding algorithm for topological codes", cited by the paper as the
// main almost-linear alternative to MWPM). Clusters grow half-edge by
// half-edge around defects until every cluster is neutral (even defect
// parity or boundary contact); a peeling pass over each cluster's
// spanning forest then extracts the correction.
//
// The decoder operates on the same space-time syndrome graph as the
// MWPM decoder: one node per (Z stabilizer, detection layer), plus a
// global boundary node absorbing chains that exit the lattice.

// stGraph is the space-time decoding graph for union-find.
type stGraph struct {
	numStabs int
	layers   int
	// edges[i] = {u, v, data}; data is the register-local data qubit a
	// spatial edge flips, or -1 for temporal (measurement) edges.
	edges [][3]int
	// adj[v] lists edge indices incident to v.
	adj [][]int
	// boundary is the id of the global boundary node.
	boundary int
}

// node returns the space-time node id of stabilizer s at layer t.
func (g *stGraph) node(s, t int) int { return t*g.numStabs + s }

// buildSTGraph assembles the space-time graph from the stabilizer
// supports for the given number of detection layers.
func buildSTGraph(stabData [][]int, numData, layers int) *stGraph {
	n := len(stabData)
	g := &stGraph{
		numStabs: n,
		layers:   layers,
		boundary: layers * n,
	}
	owner := make([][]int, numData)
	for s, datas := range stabData {
		for _, d := range datas {
			owner[d] = append(owner[d], s)
		}
	}
	addEdge := func(u, v, data int) {
		g.edges = append(g.edges, [3]int{u, v, data})
	}
	for t := 0; t < layers; t++ {
		for d, ss := range owner {
			switch len(ss) {
			case 1:
				addEdge(g.node(ss[0], t), g.boundary, d)
			case 2:
				addEdge(g.node(ss[0], t), g.node(ss[1], t), d)
			}
		}
	}
	for t := 0; t+1 < layers; t++ {
		for s := 0; s < n; s++ {
			addEdge(g.node(s, t), g.node(s, t+1), -1)
		}
	}
	g.adj = make([][]int, layers*n+1)
	for i, e := range g.edges {
		g.adj[e[0]] = append(g.adj[e[0]], i)
		g.adj[e[1]] = append(g.adj[e[1]], i)
	}
	return g
}

// unionFind is a standard disjoint-set forest with cluster metadata.
type unionFind struct {
	parent []int
	rank   []int
	// parity counts defects in the cluster mod 2.
	parity []uint8
	// boundary marks clusters touching the boundary node.
	boundary []bool
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{
		parent:   make([]int, n),
		rank:     make([]int, n),
		parity:   make([]uint8, n),
		boundary: make([]bool, n),
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.parity[ra] ^= u.parity[rb]
	u.boundary[ra] = u.boundary[ra] || u.boundary[rb]
	return ra
}

// neutral reports whether the cluster rooted at r needs no more growth.
func (u *unionFind) neutral(r int) bool {
	return u.parity[r] == 0 || u.boundary[r]
}

// ufDecode runs cluster growth + peeling and returns the data-qubit
// flip mask.
func ufDecode(g *stGraph, defects []defect, numData int) []bool {
	flips := make([]bool, numData)
	if len(defects) == 0 {
		return flips
	}
	uf := newUnionFind(len(g.adj))
	uf.boundary[g.boundary] = true
	isDefect := make([]bool, len(g.adj))
	for _, df := range defects {
		v := g.node(df.stab, df.round)
		isDefect[v] = true
		uf.parity[uf.find(v)] ^= 1
	}
	// growth[e] in {0, 1, 2}: half-edge growth state.
	growth := make([]uint8, len(g.edges))
	grown := make([]bool, len(g.edges))

	// activeRoots tracks clusters that still need growth.
	active := func() []int {
		seen := map[int]bool{}
		var out []int
		for _, df := range defects {
			r := uf.find(g.node(df.stab, df.round))
			if !seen[r] && !uf.neutral(r) {
				seen[r] = true
				out = append(out, r)
			}
		}
		return out
	}

	// Vertices currently owned by each cluster are found by scanning;
	// decoder graphs here are small (hundreds of nodes), so the simple
	// quadratic variant is plenty and keeps the code auditable.
	for iter := 0; iter < 4*len(g.edges)+4; iter++ {
		roots := active()
		if len(roots) == 0 {
			break
		}
		inActive := map[int]bool{}
		for _, r := range roots {
			inActive[r] = true
		}
		// Grow every boundary half-edge of every active cluster.
		for v := range g.adj {
			if !inActive[uf.find(v)] {
				continue
			}
			for _, ei := range g.adj[v] {
				if growth[ei] < 2 {
					growth[ei]++
					if growth[ei] == 2 && !grown[ei] {
						grown[ei] = true
						uf.union(g.edges[ei][0], g.edges[ei][1])
					}
				}
			}
		}
	}

	// Peeling: build a spanning forest of each cluster over grown edges,
	// then peel leaves, pushing defect parity toward the root. Roots are
	// boundary-contact vertices when available.
	n := len(g.adj)
	treeParent := make([]int, n)
	treeEdge := make([]int, n)
	visited := make([]bool, n)
	for i := range treeParent {
		treeParent[i] = -1
		treeEdge[i] = -1
	}
	adjGrown := make([][]int, n)
	for ei, ok := range grown {
		if ok {
			adjGrown[g.edges[ei][0]] = append(adjGrown[g.edges[ei][0]], ei)
			adjGrown[g.edges[ei][1]] = append(adjGrown[g.edges[ei][1]], ei)
		}
	}
	// BFS from the boundary first so boundary-touching clusters root
	// there (the boundary absorbs any defect parity).
	order := make([]int, 0, n)
	var bfs func(start int)
	bfs = func(start int) {
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range adjGrown[v] {
				w := g.edges[ei][0] + g.edges[ei][1] - v
				if !visited[w] {
					visited[w] = true
					treeParent[w] = v
					treeEdge[w] = ei
					queue = append(queue, w)
				}
			}
		}
	}
	bfs(g.boundary)
	for v := 0; v < n; v++ {
		if !visited[v] {
			bfs(v)
		}
	}
	// Peel in reverse BFS order: every vertex is a leaf of the remaining
	// forest when processed.
	defectState := make([]bool, n)
	for v := range isDefect {
		defectState[v] = isDefect[v]
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if treeParent[v] == -1 || !defectState[v] {
			continue
		}
		// Push the defect up through the tree edge.
		ei := treeEdge[v]
		if d := g.edges[ei][2]; d >= 0 {
			flips[d] = !flips[d]
		}
		defectState[v] = false
		defectState[treeParent[v]] = !defectState[treeParent[v]]
	}
	return flips
}

// DecodeUnionFind decodes a shot record with the union-find decoder
// instead of MWPM. Detection events and the correction model are shared
// with Decode, so accuracy differences isolate the matching strategy.
func (c *Code) DecodeUnionFind(bits []int) int {
	defects := c.detectionEvents(bits)
	g := c.stGraphCached()
	flips := ufDecode(g, defects, c.Data.Size)
	return c.logicalValue(bits, flips)
}

// stGraphCached lazily builds the space-time graph for union-find.
// Safe for concurrent use by campaign workers.
func (c *Code) stGraphCached() *stGraph {
	c.stgOnce.Do(func() {
		c.stg = buildSTGraph(c.zStabData, c.Data.Size, c.Rounds+1)
	})
	return c.stg
}
