// Package trace is radqec's in-process distributed tracing layer: a
// span model matching the campaign domain — campaign → point →
// {chunk-run, decode, store-commit, remote-fetch, lease-wait,
// takeover} — recorded into bounded lock-free per-campaign rings (the
// same shape as telemetry.Campaign), with W3C-traceparent-style
// context carried across fabric hops so a multi-node campaign
// stitches into one trace.
//
// Cost model: sampling is per-campaign. An unsampled campaign has a
// nil *Recorder, every entry point is nil-safe, and the zero
// SpanContext/ActiveSpan values are inert — the hot path pays one
// pointer test and allocates nothing (the zero-alloc tile guard and
// the sweep bench gate hold with tracing off). A sampled campaign
// allocates one Span per recorded span, stored into the ring with a
// single atomic publish.
package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// RingSize bounds the spans retained per campaign. Like the telemetry
// ring it is a power of two so the slot index is a mask; a campaign
// that records more spans than this keeps the most recent ones (Seq
// stays dense, so readers can tell spans were dropped).
const RingSize = 8192

// keepRecent bounds how many finished campaigns' traces a Registry
// retains for late readers, mirroring telemetry.Registry.
const keepRecent = 64

// Span kinds — the domain model. A campaign span is the root (one per
// node participating in the campaign), point spans are its children,
// and the leaf kinds hang off a point (chunk-run, decode,
// store-commit) or off the campaign (the fabric kinds: remote-fetch,
// lease-wait, takeover, which run while the point is parked and has
// no span yet).
const (
	SpanCampaign    = "campaign"
	SpanPoint       = "point"
	SpanChunkRun    = "chunk-run"
	SpanDecode      = "decode"
	SpanStoreCommit = "store-commit"
	SpanRemoteFetch = "remote-fetch"
	SpanLeaseWait   = "lease-wait"
	SpanTakeover    = "takeover"
)

// TraceID is the 16-byte W3C trace id shared by every span of one
// distributed campaign.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id.
type SpanID [8]byte

// IsZero reports the invalid all-zero trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		fill(t[:])
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		fill(s[:])
	}
	return s
}

// fill writes random bytes. math/rand/v2's global generator is
// randomly seeded and lock-free; span ids only need uniqueness, not
// unpredictability, and this keeps the sampled path cheap.
func fill(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := rand.Uint64()
		for j := i; j < len(b) && j < i+8; j++ {
			b[j] = byte(v)
			v >>= 8
		}
	}
}

// Header is the W3C trace-context header name carried on every fabric
// hop (campaign fan-out, point long-polls, lease claims).
const Header = "traceparent"

// Traceparent renders the W3C header value: version 00, sampled flag
// set (radqec only propagates sampled traces).
func Traceparent(t TraceID, s SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", t, s)
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// version byte (per spec, unknown versions parse as 00) and returns
// the sampled flag; zero trace or span ids are rejected.
func ParseTraceparent(h string) (t TraceID, s SpanID, sampled bool, err error) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false, fmt.Errorf("trace: malformed traceparent %q", h)
	}
	var ver [1]byte
	if _, err = hex.Decode(ver[:], []byte(h[0:2])); err != nil {
		return t, s, false, fmt.Errorf("trace: bad version in %q", h)
	}
	if _, err = hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, false, fmt.Errorf("trace: bad trace id in %q", h)
	}
	if _, err = hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, false, fmt.Errorf("trace: bad span id in %q", h)
	}
	var flags [1]byte
	if _, err = hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return t, s, false, fmt.Errorf("trace: bad flags in %q", h)
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false, fmt.Errorf("trace: zero id in traceparent %q", h)
	}
	return t, s, flags[0]&1 != 0, nil
}

// Span is one recorded interval. Trace/ID/Parent are hex strings so
// the NDJSON endpoint and the Chrome export marshal them directly.
type Span struct {
	// Seq is the span's dense per-recorder sequence number; gaps after
	// a ring wrap tell readers spans were dropped.
	Seq uint64 `json:"seq"`
	// Trace is the campaign-wide trace id (32 hex chars).
	Trace string `json:"trace_id"`
	// ID is this span's id (16 hex chars).
	ID string `json:"span_id"`
	// Parent is the parent span's id; empty only for a root campaign
	// span on the submitting node.
	Parent string `json:"parent_id,omitempty"`
	// Name is the span kind (Span* constants).
	Name string `json:"name"`
	// Node is the recording node's fabric address, or "local" off-fabric.
	Node string `json:"node,omitempty"`
	// Key is the sweep point key, when the span concerns one point.
	Key string `json:"key,omitempty"`
	// Hash is the point content hash, when known (fabric spans).
	Hash string `json:"hash,omitempty"`
	// Detail is a free-form annotation (peer address, cache outcome…).
	Detail string `json:"detail,omitempty"`
	// Shots is the shot count the span covered, when it covered shots.
	Shots int `json:"shots,omitempty"`
	// Err is the span's terminal error, if it ended in one.
	Err string `json:"error,omitempty"`
	// StartNS is the wall-clock start (Unix nanoseconds); DurNS the
	// monotonic duration.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Recorder collects the spans one campaign records on one node. The
// ring is the telemetry.Campaign shape: an atomic dense sequence and
// RingSize atomic slots, so writers never lock and readers snapshot
// without stalling them.
type Recorder struct {
	traceID TraceID
	node    string
	// remoteParent is the submitting node's campaign span id when this
	// recorder was adopted from an incoming traceparent; the local
	// campaign span parents under it, stitching the fan-out.
	remoteParent SpanID

	seq   atomic.Uint64
	slots [RingSize]atomic.Pointer[Span]

	// pointSpans is the live point-span directory: the sweep registers
	// each point's open span under its key so lower layers (the engine
	// decode wrapper) parent their spans under the right point without
	// threading contexts through the BatchRunner signature. Touched
	// only on sampled campaigns.
	mu         sync.Mutex
	pointSpans map[string]SpanContext
}

// New starts a fresh sampled trace rooted at this node.
func New(node string) *Recorder {
	return &Recorder{traceID: NewTraceID(), node: node}
}

// Adopt joins an incoming sampled trace: spans record under the given
// trace id and the campaign span parents under the remote span.
func Adopt(id TraceID, parent SpanID, node string) *Recorder {
	return &Recorder{traceID: id, node: node, remoteParent: parent}
}

// TraceID returns the recorder's trace id (zero for nil).
func (r *Recorder) TraceID() TraceID {
	if r == nil {
		return TraceID{}
	}
	return r.traceID
}

// Sampled reports whether spans are being recorded; it is the
// campaign's sampling decision (nil recorder ⇒ off).
func (r *Recorder) Sampled() bool { return r != nil }

// Campaign starts the node-local root span of the campaign. Exactly
// one per recorder; its context parents every other local span.
func (r *Recorder) Campaign(key string) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	a := ActiveSpan{sc: SpanContext{rec: r, span: newSpanID()}, name: SpanCampaign, start: time.Now()}
	a.parent = r.remoteParent
	a.key = key
	return a
}

// SetPointSpan registers a point's open span under its key.
func (r *Recorder) SetPointSpan(key string, sc SpanContext) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.pointSpans == nil {
		r.pointSpans = make(map[string]SpanContext)
	}
	r.pointSpans[key] = sc
	r.mu.Unlock()
}

// ClearPointSpan drops a retired point's directory entry.
func (r *Recorder) ClearPointSpan(key string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.pointSpans, key)
	r.mu.Unlock()
}

// PointSpan returns the open span of the point with the given key,
// zero when none is registered.
func (r *Recorder) PointSpan(key string) SpanContext {
	if r == nil {
		return SpanContext{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pointSpans[key]
}

// record publishes one finished span into the ring.
func (r *Recorder) record(s Span) {
	s.Seq = r.seq.Add(1) - 1
	r.slots[s.Seq%RingSize].Store(&s)
}

// Len returns how many spans the recorder has published (including
// any the ring has since dropped).
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Spans snapshots the retained spans in sequence order. Spans being
// overwritten concurrently are skipped (their slot's Seq no longer
// matches), exactly like telemetry.Campaign.Since.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	n := r.seq.Load()
	first := uint64(0)
	if n > RingSize {
		first = n - RingSize
	}
	out := make([]Span, 0, n-first)
	for seq := first; seq < n; seq++ {
		s := r.slots[seq%RingSize].Load()
		if s == nil || s.Seq != seq {
			continue // lapped by a concurrent writer
		}
		out = append(out, *s)
	}
	return out
}

// SpanContext names one live span: the handle children parent under
// and the identity a fabric hop carries. The zero value is inert.
type SpanContext struct {
	rec  *Recorder
	span SpanID
}

// Sampled reports whether this context belongs to a sampled campaign.
func (sc SpanContext) Sampled() bool { return sc.rec != nil }

// Recorder exposes the owning recorder (nil when unsampled).
func (sc SpanContext) Recorder() *Recorder { return sc.rec }

// TraceID returns the trace id (zero when unsampled).
func (sc SpanContext) TraceID() TraceID { return sc.rec.TraceID() }

// SpanID returns this span's id.
func (sc SpanContext) SpanID() SpanID { return sc.span }

// Traceparent renders the W3C header value for this span, or "" when
// the campaign is unsampled — callers skip the header entirely.
func (sc SpanContext) Traceparent() string {
	if sc.rec == nil {
		return ""
	}
	return Traceparent(sc.rec.traceID, sc.span)
}

// Start opens a child span under this context. On an unsampled
// context it returns the inert zero ActiveSpan at the cost of one
// branch — safe on hot paths that already hold the context.
func (sc SpanContext) Start(name, key string) ActiveSpan {
	if sc.rec == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{
		sc:     SpanContext{rec: sc.rec, span: newSpanID()},
		parent: sc.span,
		name:   name,
		key:    key,
		start:  time.Now(),
	}
}

// StartAt opens a child span with an explicit start time, for callers
// that only learn a span's kind at its end (the fabric watch loop
// resolves as remote-fetch or takeover long after the wait began).
func (sc SpanContext) StartAt(name, key string, start time.Time) ActiveSpan {
	a := sc.Start(name, key)
	if a.sc.rec != nil {
		a.start = start
	}
	return a
}

// ActiveSpan is an open span held by value on the recording
// goroutine's stack; End publishes it. The zero value is inert.
type ActiveSpan struct {
	sc     SpanContext
	parent SpanID
	name   string
	key    string
	hash   string
	detail string
	errs   string
	shots  int
	start  time.Time
}

// Sampled reports whether End will record anything.
func (a *ActiveSpan) Sampled() bool { return a.sc.rec != nil }

// Context returns the span's context for parenting children or
// crossing a fabric hop.
func (a *ActiveSpan) Context() SpanContext { return a.sc }

// SetHash annotates the span with a point content hash.
func (a *ActiveSpan) SetHash(h string) { a.hash = h }

// SetDetail annotates the span with a free-form note.
func (a *ActiveSpan) SetDetail(d string) { a.detail = d }

// SetShots annotates the span with the shots it covered.
func (a *ActiveSpan) SetShots(n int) { a.shots = n }

// SetError marks the span as ended in error.
func (a *ActiveSpan) SetError(err error) {
	if err != nil && a.sc.rec != nil {
		a.errs = err.Error()
	}
}

// End records the span. Safe (and free) on the zero value; calling
// twice records twice, so don't.
func (a *ActiveSpan) End() {
	r := a.sc.rec
	if r == nil {
		return
	}
	dur := time.Since(a.start)
	s := Span{
		Trace:   r.traceID.String(),
		ID:      a.sc.span.String(),
		Name:    a.name,
		Node:    r.node,
		Key:     a.key,
		Hash:    a.hash,
		Detail:  a.detail,
		Shots:   a.shots,
		Err:     a.errs,
		StartNS: a.start.UnixNano(),
		DurNS:   dur.Nanoseconds(),
	}
	if !a.parent.IsZero() {
		s.Parent = a.parent.String()
	}
	r.record(s)
	observePath(a.name, dur, r.traceID)
}

// ctxKey carries a SpanContext through context.Context; the client
// reads it to stamp the traceparent header on every fabric hop.
type ctxKey struct{}

// ContextWith returns ctx carrying sc. An unsampled sc returns ctx
// unchanged so unsampled campaigns allocate nothing.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if sc.rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the active span context, zero when absent.
func FromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Registry tracks the recorders of live and recently finished
// campaigns on one node, addressable by campaign id (the public
// trace endpoint) and by trace id (peer fan-in when stitching a
// distributed trace). Retention mirrors telemetry.Registry: live
// recorders pin themselves; the keepRecent most recently finished
// stay for late readers.
type Registry struct {
	mu         sync.Mutex
	byCampaign map[int64]*Recorder
	byTrace    map[TraceID]*Recorder
	done       []int64 // finish order of retired campaigns, oldest first
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byCampaign: make(map[int64]*Recorder),
		byTrace:    make(map[TraceID]*Recorder),
	}
}

// Add registers a campaign's recorder. A nil recorder (unsampled
// campaign) is a no-op.
func (g *Registry) Add(campaignID int64, r *Recorder) {
	if g == nil || r == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.byCampaign[campaignID] = r
	if _, taken := g.byTrace[r.traceID]; !taken {
		g.byTrace[r.traceID] = r
	}
}

// Finish marks a campaign's trace complete, retaining it among the
// keepRecent most recent and evicting the oldest beyond that.
func (g *Registry) Finish(campaignID int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.byCampaign[campaignID]
	if r == nil {
		return
	}
	g.done = append(g.done, campaignID)
	for len(g.done) > keepRecent {
		old := g.done[0]
		g.done = g.done[1:]
		if or := g.byCampaign[old]; or != nil {
			if g.byTrace[or.traceID] == or {
				delete(g.byTrace, or.traceID)
			}
			delete(g.byCampaign, old)
		}
	}
}

// ByCampaign returns the recorder for a campaign id, nil if unknown
// (never sampled, or evicted).
func (g *Registry) ByCampaign(id int64) *Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byCampaign[id]
}

// ByTrace returns this node's recorder for a trace id, nil if unknown.
func (g *Registry) ByTrace(id TraceID) *Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byTrace[id]
}
