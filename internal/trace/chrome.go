// Chrome trace-event export: converts recorded spans into the JSON
// the Chrome tracing UI and Perfetto load directly, so a campaign
// trace opens as a timeline without any converter.
package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format. We emit
// complete ("X") events — one per span — plus metadata ("M") events
// naming each node's process row.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders spans as a Chrome trace-event JSON document
// ({"traceEvents": [...]}). Each node becomes a process row and each
// point a thread row within it, so the timeline groups a point's
// chunk-run/decode/commit spans on one line; campaign and fabric
// spans (no point key) share lane 0.
func WriteChrome(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartNS < sorted[j].StartNS })

	pids := map[string]int{}
	tids := map[string]int{}
	events := make([]chromeEvent, 0, len(sorted)+8)
	pid := func(node string) int {
		if id, ok := pids[node]; ok {
			return id
		}
		id := len(pids) + 1
		pids[node] = id
		name := node
		if name == "" {
			name = "local"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: id,
			Args: map[string]any{"name": name},
		})
		return id
	}
	tid := func(node, key string) int {
		if key == "" {
			return 0
		}
		lane := node + "\x00" + key
		if id, ok := tids[lane]; ok {
			return id
		}
		id := len(tids) + 1
		tids[lane] = id
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pids[node], TID: id,
			Args: map[string]any{"name": key},
		})
		return id
	}
	for _, s := range sorted {
		p := pid(s.Node)
		args := map[string]any{
			"trace_id": s.Trace,
			"span_id":  s.ID,
		}
		if s.Parent != "" {
			args["parent_id"] = s.Parent
		}
		if s.Key != "" {
			args["key"] = s.Key
		}
		if s.Hash != "" {
			args["hash"] = s.Hash
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Shots != 0 {
			args["shots"] = s.Shots
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   "radqec",
			Phase: "X",
			TS:    float64(s.StartNS) / 1e3,
			Dur:   float64(s.DurNS) / 1e3,
			PID:   p,
			TID:   tid(s.Node, s.Key),
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
