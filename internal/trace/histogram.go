// Latency histograms for the four paths that bound campaign
// wall-clock — decode, remote fetch, lease wait, store commit — fed
// automatically when sampled spans of those kinds end, each bucket
// remembering its latest exemplar trace id so a dashboard outlier
// links straight to the trace that produced it.
package trace

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// histBuckets are the upper bounds (seconds) of the latency buckets,
// spanning sub-millisecond decode chunks to multi-second fabric
// waits; +Inf is implicit.
var histBuckets = [15]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Exemplar is the latest observation a bucket saw, tagged with the
// trace it came from (OpenMetrics exemplar semantics).
type Exemplar struct {
	TraceID string
	Value   float64 // seconds
	UnixNS  int64
}

// Histogram is a fixed-bucket latency histogram with lock-free
// observation and per-bucket exemplars. Counts are per-bucket (not
// cumulative); rendering accumulates.
type Histogram struct {
	path      string // metric path label: decode, remote_fetch, …
	counts    [len(histBuckets) + 1]atomic.Uint64
	sumNS     atomic.Int64
	exemplars [len(histBuckets) + 1]atomic.Pointer[Exemplar]
}

// NewHistogram returns a histogram for the given path name.
func NewHistogram(path string) *Histogram { return &Histogram{path: path} }

// Path returns the histogram's path label.
func (h *Histogram) Path() string { return h.path }

// Observe records one latency with its originating trace.
func (h *Histogram) Observe(d time.Duration, trace TraceID) {
	sec := d.Seconds()
	i := 0
	for i < len(histBuckets) && sec > histBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	if !trace.IsZero() {
		h.exemplars[i].Store(&Exemplar{TraceID: trace.String(), Value: sec, UnixNS: time.Now().UnixNano()})
	}
}

// Count returns the total observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// WritePrometheus renders the histogram in Prometheus text
// exposition under the given metric name. With exemplars true the
// bucket lines carry OpenMetrics `# {trace_id="…"} value ts`
// exemplars (only valid when the scrape negotiated the OpenMetrics
// content type; the classic 0.0.4 format must omit them).
func (h *Histogram) WritePrometheus(w io.Writer, name string, exemplars bool) {
	fmt.Fprintf(w, "# HELP %s Latency of the %s path, from sampled trace spans.\n", name, h.path)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(histBuckets) {
			le = trimFloat(histBuckets[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", name, le, cum)
		if ex := h.exemplars[i].Load(); exemplars && ex != nil {
			fmt.Fprintf(w, " # {trace_id=%q} %g %.3f", ex.TraceID, ex.Value, float64(ex.UnixNS)/1e9)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// trimFloat renders a bucket bound the way Prometheus expects
// (shortest exact decimal).
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// Process-wide path histograms. They aggregate across campaigns
// (standard Prometheus practice); only sampled campaigns feed them,
// which keeps unsampled campaigns at literal zero cost and guarantees
// every observation has a trace exemplar.
var (
	DecodeHist = NewHistogram("decode")
	FetchHist  = NewHistogram("remote_fetch")
	LeaseHist  = NewHistogram("lease_wait")
	CommitHist = NewHistogram("store_commit")
)

// PathHistograms returns the process-wide path histograms in a stable
// order for the /metrics renderer.
func PathHistograms() []*Histogram {
	return []*Histogram{DecodeHist, FetchHist, LeaseHist, CommitHist}
}

// observePath feeds the matching path histogram when a span of one of
// the four instrumented kinds ends.
func observePath(name string, d time.Duration, trace TraceID) {
	switch name {
	case SpanDecode:
		DecodeHist.Observe(d, trace)
	case SpanRemoteFetch:
		FetchHist.Observe(d, trace)
	case SpanLeaseWait:
		LeaseHist.Observe(d, trace)
	case SpanStoreCommit:
		CommitHist.Observe(d, trace)
	}
}
