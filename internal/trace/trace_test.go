package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceparentRoundTrip: a rendered header parses back to the same
// ids with the sampled flag set.
func TestTraceparentRoundTrip(t *testing.T) {
	r := New("node-a")
	root := r.Campaign("camp")
	h := root.Context().Traceparent()
	tid, sid, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("parse %q: %v", h, err)
	}
	if !sampled {
		t.Fatalf("header %q not sampled", h)
	}
	if tid != r.TraceID() || sid != root.Context().SpanID() {
		t.Fatalf("round trip mismatch: %v/%v vs %v/%v", tid, sid, r.TraceID(), root.Context().SpanID())
	}
}

// TestTraceparentRejectsMalformed: truncated, zero-id and garbage
// headers all error instead of producing a zero-id trace.
func TestTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
	} {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Unsampled flag parses fine but reports sampled=false.
	_, _, sampled, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil || sampled {
		t.Errorf("unsampled header: sampled=%v err=%v", sampled, err)
	}
}

// TestNilRecorderIsInert: every entry point on the unsampled path is
// a no-op on nil/zero values — the zero-cost contract.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Sampled() || r.Len() != 0 || r.Spans() != nil || !r.TraceID().IsZero() {
		t.Fatal("nil recorder not inert")
	}
	root := r.Campaign("x")
	if root.Sampled() {
		t.Fatal("nil recorder produced a sampled span")
	}
	child := root.Context().Start(SpanPoint, "p")
	child.SetHash("h")
	child.SetError(fmt.Errorf("boom"))
	child.End()
	root.End()
	if ContextWith(context.Background(), root.Context()) != context.Background() {
		t.Fatal("unsampled ContextWith allocated a context")
	}
	if FromContext(context.Background()).Sampled() {
		t.Fatal("empty context carried a span")
	}
}

// TestSpanHierarchyAndRing: spans record with correct parent links,
// and the ring keeps the most recent RingSize spans with dense Seq.
func TestSpanHierarchyAndRing(t *testing.T) {
	r := New("node-a")
	root := r.Campaign("camp")
	pt := root.Context().Start(SpanPoint, "d=5")
	chunk := pt.Context().Start(SpanChunkRun, "d=5")
	chunk.SetShots(512)
	chunk.End()
	pt.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != r.TraceID().String() {
			t.Errorf("span %s trace %s, want %s", s.Name, s.Trace, r.TraceID())
		}
		if s.Node != "node-a" {
			t.Errorf("span %s node %q", s.Name, s.Node)
		}
	}
	if byName[SpanCampaign].Parent != "" {
		t.Errorf("root campaign span has parent %q", byName[SpanCampaign].Parent)
	}
	if byName[SpanPoint].Parent != byName[SpanCampaign].ID {
		t.Errorf("point parent %q, want campaign %q", byName[SpanPoint].Parent, byName[SpanCampaign].ID)
	}
	if byName[SpanChunkRun].Parent != byName[SpanPoint].ID {
		t.Errorf("chunk parent %q, want point %q", byName[SpanChunkRun].Parent, byName[SpanPoint].ID)
	}
	if byName[SpanChunkRun].Shots != 512 {
		t.Errorf("chunk shots %d", byName[SpanChunkRun].Shots)
	}
}

// TestRingBounded: overflowing the ring keeps the latest RingSize
// spans and Len keeps counting.
func TestRingBounded(t *testing.T) {
	r := New("n")
	root := r.Campaign("c")
	const extra = 100
	for i := 0; i < RingSize+extra; i++ {
		s := root.Context().Start(SpanChunkRun, "k")
		s.End()
	}
	if got := r.Len(); got != RingSize+extra {
		t.Fatalf("Len = %d, want %d", got, RingSize+extra)
	}
	spans := r.Spans()
	if len(spans) != RingSize {
		t.Fatalf("retained %d spans, want %d", len(spans), RingSize)
	}
	if spans[0].Seq != extra {
		t.Fatalf("oldest retained seq %d, want %d", spans[0].Seq, extra)
	}
}

// TestAdoptStitches: a recorder adopted from a peer's traceparent
// shares the trace id and parents its campaign span under the remote
// span — the cross-node stitch.
func TestAdoptStitches(t *testing.T) {
	a := New("node-a")
	rootA := a.Campaign("camp")
	tid, sid, _, err := ParseTraceparent(rootA.Context().Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	b := Adopt(tid, sid, "node-b")
	rootB := b.Campaign("camp")
	rootB.End()
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("node-b recorded %d spans", len(spans))
	}
	if spans[0].Trace != a.TraceID().String() {
		t.Fatalf("node-b trace %s, want %s", spans[0].Trace, a.TraceID())
	}
	if spans[0].Parent != rootA.Context().SpanID().String() {
		t.Fatalf("node-b campaign parent %q, want node-a campaign %q", spans[0].Parent, rootA.Context().SpanID())
	}
}

// TestConcurrentRecording: many goroutines recording through one
// recorder race-safely produce dense sequence numbers.
func TestConcurrentRecording(t *testing.T) {
	r := New("n")
	root := r.Campaign("c")
	var wg sync.WaitGroup
	const per, workers = 200, 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := root.Context().Start(SpanChunkRun, "k")
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != per*workers {
		t.Fatalf("Len = %d, want %d", got, per*workers)
	}
	spans := r.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("non-dense seq: %d after %d", spans[i].Seq, spans[i-1].Seq)
		}
	}
}

// TestRegistryRetention: lookups by campaign and trace id work while
// live, and finishing more than keepRecent campaigns evicts the
// oldest.
func TestRegistryRetention(t *testing.T) {
	g := NewRegistry()
	first := New("n")
	g.Add(1, first)
	if g.ByCampaign(1) != first || g.ByTrace(first.TraceID()) != first {
		t.Fatal("registry lookup failed while live")
	}
	g.Finish(1)
	for i := int64(2); i <= keepRecent+1; i++ {
		r := New("n")
		g.Add(i, r)
		g.Finish(i)
	}
	if g.ByCampaign(1) != nil {
		t.Fatal("oldest finished trace not evicted")
	}
	if g.ByCampaign(keepRecent+1) == nil {
		t.Fatal("recent finished trace evicted")
	}
	// Unsampled campaigns never register.
	g.Add(99, nil)
	if g.ByCampaign(99) != nil {
		t.Fatal("nil recorder registered")
	}
}

// TestHistogramExemplars: observations land in the right buckets, the
// OpenMetrics rendering carries exemplars and the classic rendering
// omits them.
func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram("decode")
	tid := NewTraceID()
	h.Observe(700*time.Microsecond, tid) // le=0.001 bucket
	h.Observe(40*time.Second, tid)       // +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	var om, classic bytes.Buffer
	h.WritePrometheus(&om, "radqecd_decode_seconds", true)
	h.WritePrometheus(&classic, "radqecd_decode_seconds", false)
	if !strings.Contains(om.String(), `# {trace_id="`+tid.String()+`"}`) {
		t.Fatalf("openmetrics rendering missing exemplar:\n%s", om.String())
	}
	if strings.Contains(classic.String(), "# {") {
		t.Fatalf("classic rendering carries exemplars:\n%s", classic.String())
	}
	if !strings.Contains(classic.String(), `radqecd_decode_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket wrong:\n%s", classic.String())
	}
	if !strings.Contains(classic.String(), `radqecd_decode_seconds_bucket{le="0.001"} 1`) {
		t.Fatalf("0.001 bucket wrong:\n%s", classic.String())
	}
	if !strings.Contains(classic.String(), "radqecd_decode_seconds_count 2") {
		t.Fatalf("count line wrong:\n%s", classic.String())
	}
}

// TestWriteChrome: the export is valid JSON with one X event per
// span, process metadata per node, and microsecond timestamps.
func TestWriteChrome(t *testing.T) {
	r := New("node-a")
	root := r.Campaign("camp")
	pt := root.Context().Start(SpanPoint, "d=5")
	pt.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v\n%s", err, buf.String())
	}
	var x, m int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			x++
		case "M":
			m++
		}
	}
	if x != 2 {
		t.Fatalf("chrome export has %d X events, want 2", x)
	}
	if m == 0 {
		t.Fatal("chrome export missing metadata events")
	}
}

// TestPathHistogramFeed: ending a sampled decode span feeds the
// process-wide decode histogram.
func TestPathHistogramFeed(t *testing.T) {
	before := DecodeHist.Count()
	r := New("n")
	root := r.Campaign("c")
	d := root.Context().Start(SpanDecode, "k")
	d.End()
	root.End()
	if DecodeHist.Count() != before+1 {
		t.Fatalf("decode histogram count %d, want %d", DecodeHist.Count(), before+1)
	}
}
