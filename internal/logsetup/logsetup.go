// Package logsetup configures the process-wide structured logger from
// the -log-format / -log-level command-line surface the radqec
// binaries share. Both the CLI and the daemon route every diagnostic
// through log/slog; this package is the one place the handler wiring
// lives so the two surfaces cannot drift.
package logsetup

import (
	"fmt"
	"io"
	"log/slog"
)

// Formats and levels accepted by Init, for usage strings.
const (
	Formats = "text or json"
	Levels  = "debug, info, warn, or error"
)

// Init builds a logger writing to w in the requested format and
// minimum level, installs it as slog.Default, and returns it. Format
// "text" is the human-readable key=value handler, "json" one JSON
// object per line for log shippers. Unknown format or level names are
// an error so the binaries can reject them as usage errors (exit 2),
// exactly like -engine-width.
func Init(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want %s)", level, Levels)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want %s)", format, Formats)
	}
	log := slog.New(h)
	slog.SetDefault(log)
	return log, nil
}
