package noise

import (
	"math"
	"testing"
	"testing/quick"

	"radqec/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTemporalBoundaries(t *testing.T) {
	if got := Temporal(0); got != 1 {
		t.Fatalf("T(0) = %v, want 1", got)
	}
	if got := Temporal(1); !almostEqual(got, math.Exp(-10), 1e-15) {
		t.Fatalf("T(1) = %v, want e^-10", got)
	}
}

func TestTemporalMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for i := 0; i <= 100; i++ {
		v := Temporal(float64(i) / 100)
		if v >= prev {
			t.Fatalf("T not strictly decreasing at %d", i)
		}
		prev = v
	}
}

func TestTemporalStepMatchesSampleGrid(t *testing.T) {
	// Within each of the ns intervals the step function is constant and
	// equals T at the left edge (Figure 3: spike of 100% at impact).
	const ns = 10
	for k := 0; k < ns; k++ {
		left := float64(k) / ns
		mid := left + 0.5/ns
		want := Temporal(left)
		if got := TemporalStep(mid, ns); !almostEqual(got, want, 1e-12) {
			t.Fatalf("step(%v) = %v, want %v", mid, got, want)
		}
	}
	if got := TemporalStep(0, ns); got != 1 {
		t.Fatalf("step(0) = %v, want 1 (impact spike)", got)
	}
}

func TestTemporalStepClamps(t *testing.T) {
	if got := TemporalStep(-0.5, 10); got != 1 {
		t.Fatalf("step(-0.5) = %v", got)
	}
	want := Temporal(0.9)
	if got := TemporalStep(1.5, 10); !almostEqual(got, want, 1e-12) {
		t.Fatalf("step(1.5) = %v, want %v", got, want)
	}
}

func TestTemporalStepPanicsOnBadNs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TemporalStep(0.5, 0)
}

func TestTemporalSamples(t *testing.T) {
	s := TemporalSamples(10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != 1 {
		t.Fatalf("first sample = %v, want 1", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Fatalf("samples not decreasing at %d", i)
		}
	}
	// e^-10 decay: second sample is e^-1 of the first.
	if !almostEqual(s[1]/s[0], math.Exp(-1), 1e-12) {
		t.Fatalf("decay ratio = %v", s[1]/s[0])
	}
}

func TestSpatialValues(t *testing.T) {
	cases := []struct {
		d    int
		want float64
	}{
		{0, 1.0},
		{1, 0.25},
		{2, 1.0 / 9},
		{3, 1.0 / 16},
		{9, 0.01},
	}
	for _, c := range cases {
		if got := Spatial(c.d); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("S(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestSpatialUnreachable(t *testing.T) {
	if got := Spatial(-1); got != 0 {
		t.Fatalf("S(-1) = %v, want 0", got)
	}
}

func TestSpatialScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpatialScaled(1, 0)
}

func TestSpatialMonotone(t *testing.T) {
	for d := 0; d < 20; d++ {
		if Spatial(d+1) >= Spatial(d) {
			t.Fatalf("S not decreasing at d=%d", d)
		}
	}
}

func TestDecayProduct(t *testing.T) {
	prop := func(rawT float64, rawD uint8) bool {
		tt := math.Mod(math.Abs(rawT), 1)
		d := int(rawD % 20)
		return almostEqual(Decay(tt, d), Temporal(tt)*Spatial(d), 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecayStepProduct(t *testing.T) {
	if got, want := DecayStep(0.35, 2, 10), TemporalStep(0.35, 10)*Spatial(2); !almostEqual(got, want, 1e-12) {
		t.Fatalf("DecayStep = %v, want %v", got, want)
	}
}

func TestDepolarizingZeroRate(t *testing.T) {
	d := NewDepolarizing(0)
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		if d.Sample(src) != ErrNone {
			t.Fatal("p=0 channel produced an error")
		}
	}
}

func TestDepolarizingFullRate(t *testing.T) {
	d := NewDepolarizing(1)
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		if d.Sample(src) == ErrNone {
			t.Fatal("p=1 channel produced no error")
		}
	}
}

func TestDepolarizingRates(t *testing.T) {
	const p, trials = 0.3, 300000
	d := NewDepolarizing(p)
	src := rng.New(3)
	counts := map[PauliError]int{}
	for i := 0; i < trials; i++ {
		counts[d.Sample(src)]++
	}
	for _, e := range []PauliError{ErrX, ErrY, ErrZ} {
		rate := float64(counts[e]) / trials
		if !almostEqual(rate, p/3, 0.005) {
			t.Fatalf("P(%v) = %v, want %v", e, rate, p/3)
		}
	}
	noneRate := float64(counts[ErrNone]) / trials
	if !almostEqual(noneRate, 1-p, 0.005) {
		t.Fatalf("P(none) = %v, want %v", noneRate, 1-p)
	}
}

func TestNewDepolarizingPanics(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDepolarizing(%v) did not panic", p)
				}
			}()
			NewDepolarizing(p)
		}()
	}
}

func TestRadiationEventSpread(t *testing.T) {
	dist := []int{2, 1, 0, 1, 2, -1}
	ev := NewRadiationEvent(dist, 1.0, true)
	want := []float64{1.0 / 9, 0.25, 1, 0.25, 1.0 / 9, 0}
	for q := range want {
		if !almostEqual(ev.Probs[q], want[q], 1e-12) {
			t.Fatalf("prob[%d] = %v, want %v", q, ev.Probs[q], want[q])
		}
	}
}

func TestRadiationEventNoSpread(t *testing.T) {
	dist := []int{1, 0, 1}
	ev := NewRadiationEvent(dist, 0.8, false)
	if ev.Probs[0] != 0 || ev.Probs[2] != 0 {
		t.Fatal("no-spread event leaked to neighbours")
	}
	if !almostEqual(ev.Probs[1], 0.8, 1e-12) {
		t.Fatalf("root prob = %v", ev.Probs[1])
	}
}

func TestRadiationEventScalesWithTime(t *testing.T) {
	dist := []int{0, 1}
	late := NewRadiationEvent(dist, Temporal(0.5), true)
	if late.Probs[0] >= 1 {
		t.Fatal("late event should be weaker than impact")
	}
	if !almostEqual(late.Probs[1], Temporal(0.5)*0.25, 1e-12) {
		t.Fatalf("neighbour prob = %v", late.Probs[1])
	}
}

func TestNoRadiation(t *testing.T) {
	ev := NoRadiation(4)
	if ev.MaxProb() != 0 {
		t.Fatal("NoRadiation has non-zero probability")
	}
	if got := ev.Affected(); got != nil {
		t.Fatalf("NoRadiation affects %v", got)
	}
}

func TestFires(t *testing.T) {
	ev := &RadiationEvent{Probs: []float64{0, 1}}
	src := rng.New(4)
	for i := 0; i < 100; i++ {
		if ev.Fires(0, src) {
			t.Fatal("p=0 qubit fired")
		}
		if !ev.Fires(1, src) {
			t.Fatal("p=1 qubit did not fire")
		}
		if ev.Fires(7, src) {
			t.Fatal("out-of-range qubit fired")
		}
	}
}

func TestFiresRate(t *testing.T) {
	ev := NewRadiationEvent([]int{0}, 0.4, true)
	src := rng.New(5)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if ev.Fires(0, src) {
			hits++
		}
	}
	if rate := float64(hits) / trials; !almostEqual(rate, 0.4, 0.01) {
		t.Fatalf("fire rate = %v, want 0.4", rate)
	}
}

func TestAffected(t *testing.T) {
	ev := NewRadiationEvent([]int{3, 0, -1, 1}, 1, true)
	got := ev.Affected()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("affected = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("affected = %v, want %v", got, want)
		}
	}
}

func TestMaxProb(t *testing.T) {
	ev := NewRadiationEvent([]int{1, 0, 2}, 0.9, true)
	if !almostEqual(ev.MaxProb(), 0.9, 1e-12) {
		t.Fatalf("MaxProb = %v", ev.MaxProb())
	}
}

// --- Geometric skip-sampling (satellite: distribution unchanged) ---

// TestSkipSamplerMatchesDirectDistribution is the satellite proof that
// geometric skip-sampling leaves the depolarizing error distribution
// unchanged: per-site error probability P with each Pauli at P/3,
// matched against the direct per-site sampler within 5-sigma binomial
// tolerance, at rates on both sides of the direct-mode threshold.
func TestSkipSamplerMatchesDirectDistribution(t *testing.T) {
	for _, p := range []float64{0.003, 0.02, 0.3} {
		const sites = 400000
		direct := map[PauliError]int{}
		skip := map[PauliError]int{}
		d := NewDepolarizing(p)
		srcA := rng.New(5)
		for i := 0; i < sites; i++ {
			direct[d.Sample(srcA)]++
		}
		samp := d.Skip()
		srcB := rng.New(6)
		// Shots of 1000 sites each: Reset per shot, like the executors.
		for shot := 0; shot < sites/1000; shot++ {
			samp.Reset(srcB)
			for i := 0; i < 1000; i++ {
				skip[samp.Sample(srcB)]++
			}
		}
		for _, e := range []PauliError{ErrX, ErrY, ErrZ} {
			want := p / 3
			tol := 5 * math.Sqrt(want*(1-want)/sites)
			for name, counts := range map[string]map[PauliError]int{"direct": direct, "skip": skip} {
				if rate := float64(counts[e]) / sites; math.Abs(rate-want) > tol {
					t.Fatalf("p=%v %s: P(%v) = %v, want %v +- %v", p, name, e, rate, want, tol)
				}
			}
		}
	}
}

// The gap between consecutive errors must follow the geometric
// distribution with mean (1-p)/p, same as independent per-site draws.
func TestSkipSamplerGapDistribution(t *testing.T) {
	const p = 0.05
	d := NewDepolarizing(p)
	samp := d.Skip()
	src := rng.New(11)
	samp.Reset(src)
	gap, gaps, sum := 0, 0, 0.0
	const draws = 400000
	for i := 0; i < draws; i++ {
		if samp.Sample(src) == ErrNone {
			gap++
			continue
		}
		sum += float64(gap)
		gaps++
		gap = 0
	}
	if gaps == 0 {
		t.Fatal("no errors sampled")
	}
	mean := sum / float64(gaps)
	want := (1 - p) / p
	// The geometric gap's std is sqrt(1-p)/p; 5 sigma of the mean.
	tol := 5 * math.Sqrt(1-p) / p / math.Sqrt(float64(gaps))
	if math.Abs(mean-want) > tol {
		t.Fatalf("mean gap %v, want %v +- %v", mean, want, tol)
	}
}

func TestSkipSamplerDegenerateRates(t *testing.T) {
	zero := NewDepolarizing(0).Skip()
	src := rng.New(3)
	zero.Reset(src)
	for i := 0; i < 1000; i++ {
		if zero.Sample(src) != ErrNone {
			t.Fatal("p=0 sampler produced an error")
		}
	}
	one := NewDepolarizing(1).Skip()
	one.Reset(src)
	for i := 0; i < 1000; i++ {
		if one.Sample(src) == ErrNone {
			t.Fatal("p=1 sampler produced no error")
		}
	}
}

func TestGeometricSkipClampsDegenerate(t *testing.T) {
	// A vanishing rate yields an astronomically large but finite skip.
	src := rng.New(9)
	invLog := 1 / math.Log1p(-1e-300)
	if got := GeometricSkip(src, invLog); got != 1<<62 {
		t.Fatalf("skip = %d, want clamp", got)
	}
}
