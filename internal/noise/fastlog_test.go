package noise

import (
	"math"
	"testing"

	"radqec/internal/rng"
)

// fastLog must track math.Log to ~1e-9 relative accuracy over the full
// (0, 1] range GeometricSkip feeds it, including the extremes of the
// uniform draw 1 - Float64().
func TestFastLogMatchesMathLog(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		got, want := fastLog(x), math.Log(x)
		tol := 1e-9 * math.Abs(want)
		if tol < 1e-12 {
			tol = 1e-12
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("fastLog(%g) = %g, want %g (diff %g)", x, got, want, got-want)
		}
	}
	check(1)
	check(0x1p-53) // smallest 1 - Float64()
	check(1 - 0x1p-53)
	src := rng.New(99)
	for i := 0; i < 100000; i++ {
		check(1 - src.Float64())
	}
	for x := 1e-300; x < 1; x *= 10 {
		check(x)
	}
}
