package noise

import (
	"radqec/internal/rng"
)

// PauliError identifies which Pauli operator (if any) the depolarizing
// channel injects after a gate.
type PauliError int

// Possible depolarizing outcomes.
const (
	ErrNone PauliError = iota
	ErrX
	ErrY
	ErrZ
)

// Depolarizing is the intrinsic noise model of Section III-A: after each
// gate operation, an X, Y or Z error is appended, each with probability
// p/3. Two-qubit gates receive the tensor product E⊗E of two independent
// single-qubit channels.
type Depolarizing struct {
	// P is the physical error rate p.
	P float64
}

// NewDepolarizing returns the channel for physical error rate p.
// It panics unless 0 <= p <= 1.
func NewDepolarizing(p float64) Depolarizing {
	if p < 0 || p > 1 {
		panic("noise: physical error rate outside [0,1]")
	}
	return Depolarizing{P: p}
}

// Sample draws the error applied to one qubit after one gate.
func (d Depolarizing) Sample(src *rng.Source) PauliError {
	if d.P <= 0 {
		return ErrNone
	}
	u := src.Float64()
	switch {
	case u < d.P/3:
		return ErrX
	case u < 2*d.P/3:
		return ErrY
	case u < d.P:
		return ErrZ
	default:
		return ErrNone
	}
}

// RadiationEvent is the correlated transient fault of Section III-B: a
// particle strike at a root qubit whose effect decays exponentially in
// time and quadratically with architecture-graph distance. The per-qubit
// fault probability at temporal sample k is
//
//	p_qi = T̂(k/ns) · S(dist(root, qi)) · Scale
//
// and each gate acting on qubit qi is followed by a reset with that
// probability.
type RadiationEvent struct {
	// Probs[q] is the fault probability of qubit q at the current
	// temporal sample.
	Probs []float64
}

// NewRadiationEvent builds the per-qubit probability table for a strike.
//
// dist[q] must hold the architecture-graph distance from the root impact
// point to qubit q (-1 for unreachable qubits). rootProb is the
// probability at the impact point itself (the step-sampled temporal
// value, 1.0 at the moment of impact). spread=false confines the fault
// to distance-0 qubits, the "erasure" configuration of Figures 6 and 7.
func NewRadiationEvent(dist []int, rootProb float64, spread bool) *RadiationEvent {
	probs := make([]float64, len(dist))
	for q, d := range dist {
		switch {
		case d == 0:
			probs[q] = rootProb
		case spread && d > 0:
			probs[q] = rootProb * Spatial(d)
		default:
			probs[q] = 0
		}
	}
	return &RadiationEvent{Probs: probs}
}

// NoRadiation returns an event with zero fault probability everywhere.
func NoRadiation(numQubits int) *RadiationEvent {
	return &RadiationEvent{Probs: make([]float64, numQubits)}
}

// Fires reports whether a reset fault follows a gate on qubit q.
func (r *RadiationEvent) Fires(q int, src *rng.Source) bool {
	if q < 0 || q >= len(r.Probs) {
		return false
	}
	return src.Bool(r.Probs[q])
}

// MaxProb returns the largest per-qubit probability in the event.
func (r *RadiationEvent) MaxProb() float64 {
	m := 0.0
	for _, p := range r.Probs {
		if p > m {
			m = p
		}
	}
	return m
}

// Affected returns the indices of qubits with non-zero fault probability.
func (r *RadiationEvent) Affected() []int {
	var out []int
	for q, p := range r.Probs {
		if p > 0 {
			out = append(out, q)
		}
	}
	return out
}
