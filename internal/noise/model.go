package noise

import (
	"math"

	"radqec/internal/rng"
)

// PauliError identifies which Pauli operator (if any) the depolarizing
// channel injects after a gate.
type PauliError int

// Possible depolarizing outcomes.
const (
	ErrNone PauliError = iota
	ErrX
	ErrY
	ErrZ
)

// Depolarizing is the intrinsic noise model of Section III-A: after each
// gate operation, an X, Y or Z error is appended, each with probability
// p/3. Two-qubit gates receive the tensor product E⊗E of two independent
// single-qubit channels.
type Depolarizing struct {
	// P is the physical error rate p.
	P float64
}

// NewDepolarizing returns the channel for physical error rate p.
// It panics unless 0 <= p <= 1.
func NewDepolarizing(p float64) Depolarizing {
	if p < 0 || p > 1 {
		panic("noise: physical error rate outside [0,1]")
	}
	return Depolarizing{P: p}
}

// Sample draws the error applied to one qubit after one gate.
func (d Depolarizing) Sample(src *rng.Source) PauliError {
	if d.P <= 0 {
		return ErrNone
	}
	u := src.Float64()
	switch {
	case u < d.P/3:
		return ErrX
	case u < 2*d.P/3:
		return ErrY
	case u < d.P:
		return ErrZ
	default:
		return ErrNone
	}
}

// skipThreshold is the error rate above which geometric skip-sampling
// stops paying for itself (one log and ~two draws per error versus one
// draw per site) and the sampler falls back to direct per-site draws.
const skipThreshold = 0.25

// GeometricSkip returns the number of consecutive Bernoulli(p) failures
// before the next success, sampled by inverting the geometric CDF:
// floor(ln(U)/ln(1-p)) for U uniform on (0,1]. invLog1mP must be
// 1/ln(1-p) (strictly negative for 0 < p < 1); callers cache it so hot
// loops pay one log per error instead of one per call. The result is
// clamped to a practically-infinite 2^62 so degenerate probabilities
// cannot overflow position arithmetic.
func GeometricSkip(src *rng.Source, invLog1mP float64) int64 {
	u := 1 - src.Float64() // (0, 1]
	k := fastLog(u) * invLog1mP
	if !(k < 1<<62) { // catches NaN and +Inf too
		return 1 << 62
	}
	return int64(k)
}

// SkipSampler draws the per-site depolarizing outcomes of one shot with
// geometric skip-sampling: instead of one uniform draw per op-qubit, it
// draws the gap to the next error site once per error (O(P·sites) RNG
// work instead of O(sites)), then picks the Pauli uniformly. The sampled
// joint distribution is identical to calling Depolarizing.Sample at
// every site — per-site error probability P, each Pauli P/3 — which
// TestSkipSamplerMatchesDirectDistribution pins.
//
// A sampler value is cheap per-shot state over an immutable template:
// build the template once per executor with Depolarizing.Skip, copy it,
// and Reset the copy with the shot's RNG stream before use.
type SkipSampler struct {
	dep    Depolarizing
	invLog float64 // 1/ln(1-P), cached for GeometricSkip
	direct bool    // P above skipThreshold: per-site draws are cheaper
	skip   int64   // error-free sites remaining before the next error
}

// Skip returns the skip-sampling template for the channel.
func (d Depolarizing) Skip() SkipSampler {
	s := SkipSampler{dep: d}
	switch {
	case d.P <= 0 || d.P >= 1:
		// Degenerate rates never consult the gap distribution.
	case d.P > skipThreshold:
		s.direct = true
	default:
		s.invLog = 1 / math.Log1p(-d.P)
	}
	return s
}

// Reset re-seats the sampler at the start of a shot, drawing the gap to
// the shot's first error. It consumes no randomness when the channel is
// off or runs in direct mode.
func (s *SkipSampler) Reset(src *rng.Source) {
	if s.dep.P <= 0 || s.dep.P >= 1 || s.direct {
		s.skip = 0
		return
	}
	s.skip = GeometricSkip(src, s.invLog)
}

// Sample draws the error of the next site, equivalent in distribution to
// Depolarizing.Sample (but not stream-compatible with it: the two
// consume different random variates).
func (s *SkipSampler) Sample(src *rng.Source) PauliError {
	switch {
	case s.dep.P <= 0:
		return ErrNone
	case s.direct:
		return s.dep.Sample(src)
	case s.dep.P >= 1:
		return PauliError(1 + src.Intn(3))
	}
	if s.skip > 0 {
		s.skip--
		return ErrNone
	}
	s.skip = GeometricSkip(src, s.invLog)
	return PauliError(1 + src.Intn(3))
}

// RadiationEvent is the correlated transient fault of Section III-B: a
// particle strike at a root qubit whose effect decays exponentially in
// time and quadratically with architecture-graph distance. The per-qubit
// fault probability at temporal sample k is
//
//	p_qi = T̂(k/ns) · S(dist(root, qi)) · Scale
//
// and each gate acting on qubit qi is followed by a reset with that
// probability.
type RadiationEvent struct {
	// Probs[q] is the fault probability of qubit q at the current
	// temporal sample.
	Probs []float64
}

// NewRadiationEvent builds the per-qubit probability table for a strike.
//
// dist[q] must hold the architecture-graph distance from the root impact
// point to qubit q (-1 for unreachable qubits). rootProb is the
// probability at the impact point itself (the step-sampled temporal
// value, 1.0 at the moment of impact). spread=false confines the fault
// to distance-0 qubits, the "erasure" configuration of Figures 6 and 7.
func NewRadiationEvent(dist []int, rootProb float64, spread bool) *RadiationEvent {
	probs := make([]float64, len(dist))
	for q, d := range dist {
		switch {
		case d == 0:
			probs[q] = rootProb
		case spread && d > 0:
			probs[q] = rootProb * Spatial(d)
		default:
			probs[q] = 0
		}
	}
	return &RadiationEvent{Probs: probs}
}

// NoRadiation returns an event with zero fault probability everywhere.
func NoRadiation(numQubits int) *RadiationEvent {
	return &RadiationEvent{Probs: make([]float64, numQubits)}
}

// Fires reports whether a reset fault follows a gate on qubit q.
func (r *RadiationEvent) Fires(q int, src *rng.Source) bool {
	if q < 0 || q >= len(r.Probs) {
		return false
	}
	return src.Bool(r.Probs[q])
}

// MaxProb returns the largest per-qubit probability in the event.
func (r *RadiationEvent) MaxProb() float64 {
	m := 0.0
	for _, p := range r.Probs {
		if p > m {
			m = p
		}
	}
	return m
}

// Affected returns the indices of qubits with non-zero fault probability.
func (r *RadiationEvent) Affected() []int {
	var out []int
	for q, p := range r.Probs {
		if p > 0 {
			out = append(out, q)
		}
	}
	return out
}
