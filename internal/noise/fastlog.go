package noise

import "math"

// fastLog is the natural log specialised for GeometricSkip's argument
// range: finite x in (0, 1]. It uses the classic table-driven reduction
// (as in musl's log): split x = 2^e·m with mantissa m in [1, 2), look
// up an inverse c⁻¹ ≈ m⁻¹ from a 128-bucket table indexed by m's top
// mantissa bits, and evaluate ln(x) = e·ln2 − ln(c⁻¹) + ln(1 + r) with
// r = m·c⁻¹ − 1 confined to |r| ≲ 2⁻⁸, where a degree-4 polynomial is
// accurate to ~2e-13. No divide and no branch sits on the critical
// path, which is what lets it replace math.Log as the dominant cost of
// the batched engine's skip-sampling loop. The error is invisible to
// the geometric gap distribution (a gap changes only when it crosses an
// integer boundary of ln(U)/ln(1−p)).
const logTableBits = 7

// logTable[i] holds invC ≈ 1/c for bucket i's midpoint c, and logC =
// −ln(invC) — the exact log of the effective reciprocal, so table
// rounding cancels instead of accumulating.
var logTable [1 << logTableBits]struct{ invC, logC float64 }

func init() {
	for i := range logTable {
		c := 1 + (float64(i)+0.5)/float64(len(logTable))
		invC := 1 / c
		logTable[i] = struct{ invC, logC float64 }{invC, -math.Log(invC)}
	}
}

func fastLog(x float64) float64 {
	bits := math.Float64bits(x)
	e := int64(bits>>52) - 1023
	mbits := bits & (1<<52 - 1)
	t := &logTable[mbits>>(52-logTableBits)]
	m := math.Float64frombits(mbits | 0x3ff0000000000000)
	r := m*t.invC - 1
	r2 := r * r
	p := r - r2*(0.5-r*(1.0/3-r*0.25))
	return float64(e)*math.Ln2 + t.logC + p
}
