// Package noise implements the two error processes of the paper
// (Section III): the intrinsic depolarizing noise of a superconducting
// device and the radiation-induced transient fault with its temporal
// decay T(t), spatial damping S(d), and combined transient error decay
// function F(t, d) = T(t)·S(d).
package noise

import "math"

// Gamma is the temporal decay constant of the radiation event
// (Equation 5 of the paper).
const Gamma = 10.0

// DefaultSamples is the paper's choice of ns, the number of equidistant
// samples of the temporal decay used to approximate T(t) by a step
// function (Figure 3).
const DefaultSamples = 10

// DefaultSpatialScale is n in Equation 6; the paper fixes n = 1.
const DefaultSpatialScale = 1.0

// Temporal returns T(t) = e^{-γt}, the probability of quasiparticle
// generation at normalised time t ∈ [0, 1] after the particle strike.
func Temporal(t float64) float64 {
	return math.Exp(-Gamma * t)
}

// TemporalStep returns T̂(t): the value of the step approximation of the
// temporal decay sampled over ns equidistant points. Sample k covers
// t ∈ [k/ns, (k+1)/ns) and holds the value T(k/ns), so the approximation
// spikes at 100% at the moment of impact, exactly as in Figure 3.
func TemporalStep(t float64, ns int) float64 {
	if ns <= 0 {
		panic("noise: temporal sample count must be positive")
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	k := int(t * float64(ns))
	if k >= ns {
		k = ns - 1
	}
	return Temporal(float64(k) / float64(ns))
}

// TemporalSamples returns the ns step values [T(0), T(1/ns), ...,
// T((ns-1)/ns)] that parameterise the fault's time evolution.
func TemporalSamples(ns int) []float64 {
	if ns <= 0 {
		panic("noise: temporal sample count must be positive")
	}
	out := make([]float64, ns)
	for k := range out {
		out[k] = Temporal(float64(k) / float64(ns))
	}
	return out
}

// Spatial returns S(d) = n² / (d+n)² with n = 1 (Equation 6): the
// damping of the deposited charge at integer architecture-graph distance
// d from the root impact point. S(0) = 1, S(1) = 1/4, S(2) = 1/9, ...
func Spatial(d int) float64 {
	return SpatialScaled(d, DefaultSpatialScale)
}

// SpatialScaled is Spatial with an explicit scale parameter n.
func SpatialScaled(d int, n float64) float64 {
	if n <= 0 {
		panic("noise: spatial scale must be positive")
	}
	if d < 0 {
		// Disconnected from the impact point: no charge reaches it.
		return 0
	}
	return n * n / ((float64(d) + n) * (float64(d) + n))
}

// Decay returns F(t, d) = T(t)·S(d), the transient error decay function
// (Equation 7): the probability that a gate applied to a qubit at
// architecture distance d from the impact point, at normalised time t,
// is followed by a reset fault.
func Decay(t float64, d int) float64 {
	return Temporal(t) * Spatial(d)
}

// DecayStep is Decay with the step-approximated temporal component.
func DecayStep(t float64, d, ns int) float64 {
	return TemporalStep(t, ns) * Spatial(d)
}
