package stab

import (
	"math"
	"testing"
	"testing/quick"

	"radqec/internal/rng"
)

func TestInitialStateAllZero(t *testing.T) {
	tab := New(5)
	src := rng.New(1)
	for q := 0; q < 5; q++ {
		if !tab.IsDeterministicZ(q) {
			t.Fatalf("fresh qubit %d not deterministic", q)
		}
		if got := tab.MeasureZ(q, src); got != 0 {
			t.Fatalf("fresh qubit %d measured %d", q, got)
		}
	}
}

func TestNewPanicsOnZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestXFlips(t *testing.T) {
	tab := New(2)
	src := rng.New(2)
	tab.X(0)
	if got := tab.MeasureZ(0, src); got != 1 {
		t.Fatalf("X|0> measured %d", got)
	}
	if got := tab.MeasureZ(1, src); got != 0 {
		t.Fatalf("untouched qubit measured %d", got)
	}
}

func TestDoubleXIdentity(t *testing.T) {
	tab := New(1)
	tab.X(0)
	tab.X(0)
	if got := tab.MeasureZ(0, rng.New(3)); got != 0 {
		t.Fatalf("XX|0> measured %d", got)
	}
}

func TestZOnZeroIsIdentity(t *testing.T) {
	tab := New(1)
	tab.Z(0)
	if got := tab.MeasureZ(0, rng.New(4)); got != 0 {
		t.Fatalf("Z|0> measured %d", got)
	}
}

func TestYFlipsBit(t *testing.T) {
	tab := New(1)
	tab.Y(0)
	if got := tab.MeasureZ(0, rng.New(5)); got != 1 {
		t.Fatalf("Y|0> measured %d", got)
	}
}

func TestHadamardRandomness(t *testing.T) {
	src := rng.New(6)
	ones := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		tab := New(1)
		tab.H(0)
		if !tab.IsDeterministicZ(0) == false {
			t.Fatal("H|0> should be a random measurement")
		}
		ones += tab.MeasureZ(0, src)
	}
	rate := float64(ones) / trials
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("H|0> one-rate = %v, want ~0.5", rate)
	}
}

func TestHHIdentity(t *testing.T) {
	tab := New(1)
	tab.H(0)
	tab.H(0)
	if !tab.IsDeterministicZ(0) {
		t.Fatal("HH|0> should be deterministic")
	}
	if got := tab.MeasureZ(0, rng.New(7)); got != 0 {
		t.Fatalf("HH|0> measured %d", got)
	}
}

func TestSSEqualsZ(t *testing.T) {
	// S·S = Z. Verify on the |+> state: H then SS then H gives X
	// conjugated... simplest check: HSSH|0> = HZH|0> = X|0> = |1>.
	tab := New(1)
	tab.H(0)
	tab.S(0)
	tab.S(0)
	tab.H(0)
	if got := tab.MeasureZ(0, rng.New(8)); got != 1 {
		t.Fatalf("HSSH|0> measured %d, want 1", got)
	}
}

func TestBellPairCorrelations(t *testing.T) {
	src := rng.New(9)
	ones := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		tab := New(2)
		tab.H(0)
		tab.CNOT(0, 1)
		a := tab.MeasureZ(0, src)
		b := tab.MeasureZ(1, src)
		if a != b {
			t.Fatalf("Bell pair decorrelated: %d vs %d", a, b)
		}
		ones += a
	}
	rate := float64(ones) / trials
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("Bell one-rate = %v", rate)
	}
}

func TestGHZCorrelations(t *testing.T) {
	src := rng.New(10)
	for i := 0; i < 1000; i++ {
		tab := New(5)
		tab.H(0)
		for q := 0; q+1 < 5; q++ {
			tab.CNOT(q, q+1)
		}
		first := tab.MeasureZ(0, src)
		for q := 1; q < 5; q++ {
			if got := tab.MeasureZ(q, src); got != first {
				t.Fatalf("GHZ qubit %d = %d, first = %d", q, got, first)
			}
		}
	}
}

func TestCNOTControlTarget(t *testing.T) {
	src := rng.New(11)
	tab := New(2)
	tab.X(0)
	tab.CNOT(0, 1)
	if got := tab.MeasureZ(1, src); got != 1 {
		t.Fatalf("CNOT did not fire with control=1 (got %d)", got)
	}
	tab2 := New(2)
	tab2.CNOT(0, 1)
	if got := tab2.MeasureZ(1, src); got != 0 {
		t.Fatalf("CNOT fired with control=0 (got %d)", got)
	}
}

func TestCNOTSameQubitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).CNOT(1, 1)
}

func TestCZPhaseKickback(t *testing.T) {
	// CZ between |+>|1> flips the phase: H on the first qubit afterwards
	// yields |1>.
	tab := New(2)
	tab.H(0)
	tab.X(1)
	tab.CZ(0, 1)
	tab.H(0)
	if got := tab.MeasureZ(0, rng.New(12)); got != 1 {
		t.Fatalf("CZ phase kickback missing (got %d)", got)
	}
}

func TestCZSymmetric(t *testing.T) {
	a := New(2)
	a.H(0)
	a.X(1)
	a.CZ(0, 1)
	a.H(0)
	b := New(2)
	b.H(0)
	b.X(1)
	b.CZ(1, 0)
	b.H(0)
	src1, src2 := rng.New(13), rng.New(13)
	if a.MeasureZ(0, src1) != b.MeasureZ(0, src2) {
		t.Fatal("CZ not symmetric")
	}
}

func TestSWAP(t *testing.T) {
	src := rng.New(14)
	tab := New(3)
	tab.X(0)
	tab.SWAP(0, 2)
	if got := tab.MeasureZ(0, src); got != 0 {
		t.Fatalf("qubit 0 after swap = %d", got)
	}
	if got := tab.MeasureZ(2, src); got != 1 {
		t.Fatalf("qubit 2 after swap = %d", got)
	}
}

func TestSWAPSelfIsNoop(t *testing.T) {
	tab := New(2)
	tab.X(0)
	tab.SWAP(0, 0)
	if got := tab.MeasureZ(0, rng.New(15)); got != 1 {
		t.Fatal("SWAP(q,q) disturbed state")
	}
}

func TestMeasurementCollapses(t *testing.T) {
	src := rng.New(16)
	for i := 0; i < 200; i++ {
		tab := New(1)
		tab.H(0)
		first := tab.MeasureZ(0, src)
		for k := 0; k < 5; k++ {
			if got := tab.MeasureZ(0, src); got != first {
				t.Fatal("repeated measurement changed outcome")
			}
		}
	}
}

func TestResetFromOne(t *testing.T) {
	src := rng.New(17)
	tab := New(1)
	tab.X(0)
	tab.Reset(0, src)
	if got := tab.MeasureZ(0, src); got != 0 {
		t.Fatalf("reset |1> measured %d", got)
	}
}

func TestResetFromSuperposition(t *testing.T) {
	src := rng.New(18)
	for i := 0; i < 200; i++ {
		tab := New(1)
		tab.H(0)
		tab.Reset(0, src)
		if got := tab.MeasureZ(0, src); got != 0 {
			t.Fatalf("reset |+> measured %d", got)
		}
	}
}

func TestResetBreaksEntanglement(t *testing.T) {
	// Resetting one half of a Bell pair leaves the partner maximally
	// mixed: both outcomes must appear over many trials.
	src := rng.New(19)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		tab := New(2)
		tab.H(0)
		tab.CNOT(0, 1)
		tab.Reset(0, src)
		if got := tab.MeasureZ(0, src); got != 0 {
			t.Fatal("reset qubit not |0>")
		}
		seen[tab.MeasureZ(1, src)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("partner of reset qubit not mixed: %v", seen)
	}
}

func TestExpectationZ(t *testing.T) {
	tab := New(2)
	tab.X(1)
	if got := tab.ExpectationZ(0); got != 1 {
		t.Fatalf("<Z0> = %d, want +1", got)
	}
	if got := tab.ExpectationZ(1); got != -1 {
		t.Fatalf("<Z1> = %d, want -1", got)
	}
	tab.H(0)
	if got := tab.ExpectationZ(0); got != 0 {
		t.Fatalf("<Z0> after H = %d, want 0", got)
	}
}

func TestExpectationZDoesNotDisturb(t *testing.T) {
	tab := New(1)
	tab.H(0)
	_ = tab.ExpectationZ(0)
	if tab.IsDeterministicZ(0) {
		t.Fatal("ExpectationZ collapsed the state")
	}
}

func TestCloneIndependent(t *testing.T) {
	tab := New(2)
	tab.H(0)
	cp := tab.Clone()
	cp.X(1)
	src := rng.New(20)
	if got := tab.MeasureZ(1, src); got != 0 {
		t.Fatal("clone shares state")
	}
}

func TestResetStateRestoresZero(t *testing.T) {
	tab := New(3)
	src := rng.New(21)
	tab.H(0)
	tab.CNOT(0, 1)
	tab.X(2)
	tab.ResetState()
	for q := 0; q < 3; q++ {
		if got := tab.MeasureZ(q, src); got != 0 {
			t.Fatalf("qubit %d after ResetState = %d", q, got)
		}
	}
}

func TestStabilizerStrings(t *testing.T) {
	tab := New(2)
	tab.H(0)
	tab.CNOT(0, 1)
	strs := tab.StabilizerStrings()
	// Bell state stabilizers are generated by {XX, ZZ} up to products.
	want := map[string]bool{"+XX": true, "+ZZ": true}
	for _, s := range strs {
		if !want[s] {
			t.Fatalf("unexpected Bell stabilizer %q (all: %v)", s, strs)
		}
	}
}

// gateInverse maps each single-qubit test gate to its inverse sequence.
func applyRandom(tab *Tableau, src *rng.Source, n, length int) (gates []int, qubits [][2]int) {
	for i := 0; i < length; i++ {
		g := src.Intn(5)
		q := src.Intn(n)
		q2 := (q + 1 + src.Intn(n-1)) % n
		gates = append(gates, g)
		qubits = append(qubits, [2]int{q, q2})
		switch g {
		case 0:
			tab.H(q)
		case 1:
			tab.S(q)
		case 2:
			tab.CNOT(q, q2)
		case 3:
			tab.X(q)
		case 4:
			tab.Z(q)
		}
	}
	return gates, qubits
}

func TestRandomCliffordInverseProperty(t *testing.T) {
	// U followed by U^{-1} must return |0..0> exactly. This exercises
	// every gate rule and the sign bookkeeping of the tableau.
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		const n, length = 6, 60
		tab := New(n)
		gates, qubits := applyRandom(tab, src, n, length)
		for i := length - 1; i >= 0; i-- {
			q, q2 := qubits[i][0], qubits[i][1]
			switch gates[i] {
			case 0:
				tab.H(q)
			case 1: // S^{-1} = SSS
				tab.S(q)
				tab.S(q)
				tab.S(q)
			case 2:
				tab.CNOT(q, q2)
			case 3:
				tab.X(q)
			case 4:
				tab.Z(q)
			}
		}
		msrc := rng.New(seed + 1)
		for q := 0; q < n; q++ {
			if !tab.IsDeterministicZ(q) || tab.MeasureZ(q, msrc) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSWAPEqualsThreeCNOTs(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		a := New(4)
		applyRandom(a, src, 4, 20)
		b := a.Clone()
		a.SWAP(1, 2)
		b.CNOT(1, 2)
		b.CNOT(2, 1)
		b.CNOT(1, 2)
		// Compare via deterministic measurements of a fixed random
		// follow-up circuit on identical RNG streams.
		s1, s2 := rng.New(seed+7), rng.New(seed+7)
		for q := 0; q < 4; q++ {
			if a.MeasureZ(q, s1) != b.MeasureZ(q, s2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWideTableauAcrossWordBoundary(t *testing.T) {
	// 70 qubits spans two 64-bit words; exercise gates straddling the
	// boundary.
	src := rng.New(22)
	tab := New(70)
	tab.X(63)
	tab.CNOT(63, 64)
	tab.SWAP(64, 69)
	if got := tab.MeasureZ(69, src); got != 1 {
		t.Fatalf("cross-word propagation failed: %d", got)
	}
	if got := tab.MeasureZ(64, src); got != 0 {
		t.Fatalf("swap source not cleared: %d", got)
	}
}

func BenchmarkCNOT(b *testing.B) {
	tab := New(31)
	for i := 0; i < b.N; i++ {
		tab.CNOT(i%30, 30)
	}
}

func BenchmarkMeasure(b *testing.B) {
	tab := New(31)
	src := rng.New(1)
	tab.H(0)
	for q := 0; q+1 < 31; q++ {
		tab.CNOT(q, q+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.MeasureZ(i%31, src)
	}
}
