// Package stab implements an Aaronson–Gottesman stabilizer tableau
// simulator (arXiv:quant-ph/0406196). Every circuit in the radiation
// study — the repetition and XXZZ surface codes under Pauli depolarizing
// noise and reset faults — is a Clifford circuit, so stabilizer
// simulation reproduces the measurement statistics of a full state-vector
// simulator exactly, while scaling as O(n^2) per measurement instead of
// O(2^n) memory.
//
// The tableau stores n destabilizer rows, n stabilizer rows and one
// scratch row; each row is a Pauli string (bit-packed X and Z components)
// with a sign bit.
package stab

import (
	"fmt"

	"radqec/internal/rng"
)

// Tableau is the stabilizer state of n qubits, initialised to |0...0>.
type Tableau struct {
	n     int
	words int
	// x[r] and z[r] are the X/Z component bit vectors of row r.
	// Rows 0..n-1 are destabilizers, n..2n-1 stabilizers, 2n scratch.
	x [][]uint64
	z [][]uint64
	r []uint8 // sign bit per row (0 => +1, 1 => -1)
}

// New returns a tableau for n qubits in the all-zeros state.
func New(n int) *Tableau {
	if n <= 0 {
		panic("stab: qubit count must be positive")
	}
	words := (n + 63) / 64
	t := &Tableau{
		n:     n,
		words: words,
		x:     make([][]uint64, 2*n+1),
		z:     make([][]uint64, 2*n+1),
		r:     make([]uint8, 2*n+1),
	}
	backing := make([]uint64, (2*n+1)*words*2)
	for i := range t.x {
		t.x[i], backing = backing[:words], backing[words:]
		t.z[i], backing = backing[:words], backing[words:]
	}
	for q := 0; q < n; q++ {
		t.x[q][q/64] |= 1 << (q % 64)   // destabilizer q = X_q
		t.z[n+q][q/64] |= 1 << (q % 64) // stabilizer q   = Z_q
	}
	return t
}

// N returns the number of qubits.
func (t *Tableau) N() int { return t.n }

// Reset returns the tableau to |0...0> without reallocating.
func (t *Tableau) ResetState() {
	for i := range t.x {
		for w := range t.x[i] {
			t.x[i][w] = 0
			t.z[i][w] = 0
		}
		t.r[i] = 0
	}
	for q := 0; q < t.n; q++ {
		t.x[q][q/64] |= 1 << (q % 64)
		t.z[t.n+q][q/64] |= 1 << (q % 64)
	}
}

// Clone returns a deep copy of the tableau.
func (t *Tableau) Clone() *Tableau {
	c := New(t.n)
	for i := range t.x {
		copy(c.x[i], t.x[i])
		copy(c.z[i], t.z[i])
	}
	copy(c.r, t.r)
	return c
}

func (t *Tableau) checkQ(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("stab: qubit %d out of range [0,%d)", q, t.n))
	}
}

func (t *Tableau) getX(row, q int) uint64 { return (t.x[row][q/64] >> (q % 64)) & 1 }
func (t *Tableau) getZ(row, q int) uint64 { return (t.z[row][q/64] >> (q % 64)) & 1 }

// H applies a Hadamard to qubit q: X<->Z, sign flips when the row holds Y.
func (t *Tableau) H(q int) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := range t.x {
		xb := (t.x[i][w] >> b) & 1
		zb := (t.z[i][w] >> b) & 1
		t.r[i] ^= uint8(xb & zb)
		if xb != zb {
			t.x[i][w] ^= 1 << b
			t.z[i][w] ^= 1 << b
		}
	}
}

// S applies the phase gate to qubit q.
func (t *Tableau) S(q int) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := range t.x {
		xb := (t.x[i][w] >> b) & 1
		zb := (t.z[i][w] >> b) & 1
		t.r[i] ^= uint8(xb & zb)
		t.z[i][w] ^= xb << b
	}
}

// X applies Pauli-X to q; rows anti-commuting with X (those with a Z
// component on q) flip sign.
func (t *Tableau) X(q int) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := range t.x {
		t.r[i] ^= uint8((t.z[i][w] >> b) & 1)
	}
}

// Z applies Pauli-Z to q.
func (t *Tableau) Z(q int) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := range t.x {
		t.r[i] ^= uint8((t.x[i][w] >> b) & 1)
	}
}

// Y applies Pauli-Y to q.
func (t *Tableau) Y(q int) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := range t.x {
		t.r[i] ^= uint8(((t.x[i][w] ^ t.z[i][w]) >> b) & 1)
	}
}

// CNOT applies a controlled-X with the given control and target.
func (t *Tableau) CNOT(control, target int) {
	t.checkQ(control)
	t.checkQ(target)
	if control == target {
		panic("stab: CNOT with identical qubits")
	}
	cw, cb := control/64, uint(control%64)
	tw, tb := target/64, uint(target%64)
	for i := range t.x {
		xc := (t.x[i][cw] >> cb) & 1
		zc := (t.z[i][cw] >> cb) & 1
		xt := (t.x[i][tw] >> tb) & 1
		zt := (t.z[i][tw] >> tb) & 1
		t.r[i] ^= uint8(xc & zt & (xt ^ zc ^ 1))
		t.x[i][tw] ^= xc << tb
		t.z[i][cw] ^= zt << cb
	}
}

// CZ applies a controlled-Z between a and b (symmetric).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// SWAP exchanges qubits a and b.
func (t *Tableau) SWAP(a, b int) {
	t.checkQ(a)
	t.checkQ(b)
	if a == b {
		return
	}
	aw, ab := a/64, uint(a%64)
	bw, bb := b/64, uint(b%64)
	for i := range t.x {
		xa := (t.x[i][aw] >> ab) & 1
		xb := (t.x[i][bw] >> bb) & 1
		if xa != xb {
			t.x[i][aw] ^= 1 << ab
			t.x[i][bw] ^= 1 << bb
		}
		za := (t.z[i][aw] >> ab) & 1
		zb := (t.z[i][bw] >> bb) & 1
		if za != zb {
			t.z[i][aw] ^= 1 << ab
			t.z[i][bw] ^= 1 << bb
		}
	}
}

// phaseExponent returns the exponent of i (mod 4 contribution) from
// multiplying the single-qubit Paulis (x1,z1)·(x2,z2), per the
// Aaronson–Gottesman g function.
func phaseExponent(x1, z1, x2, z2 uint64) int {
	switch {
	case x1 == 0 && z1 == 0:
		return 0
	case x1 == 1 && z1 == 1: // Y
		return int(z2) - int(x2)
	case x1 == 1 && z1 == 0: // X
		return int(z2) * (2*int(x2) - 1)
	default: // Z
		return int(x2) * (1 - 2*int(z2))
	}
}

// rowsum multiplies row i into row h (h <- h * i), maintaining signs.
func (t *Tableau) rowsum(h, i int) {
	sum := 2*int(t.r[h]) + 2*int(t.r[i])
	for q := 0; q < t.n; q++ {
		sum += phaseExponent(t.getX(i, q), t.getZ(i, q), t.getX(h, q), t.getZ(h, q))
	}
	sum = ((sum % 4) + 4) % 4
	// Stabilizer (and scratch) rows always multiply commuting Paulis, so
	// their product phase is real. Destabilizer rows may pick up an
	// imaginary phase when multiplied by their paired stabilizer, but
	// destabilizer signs are never read by the algorithm, so any value
	// is acceptable there.
	if h >= t.n && sum != 0 && sum != 2 {
		panic("stab: rowsum produced imaginary phase; tableau corrupted")
	}
	t.r[h] = uint8(sum / 2)
	for w := 0; w < t.words; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

// IsDeterministicZ reports whether a Z measurement of q has a
// predetermined outcome (no stabilizer anti-commutes with Z_q).
func (t *Tableau) IsDeterministicZ(q int) bool {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := t.n; i < 2*t.n; i++ {
		if (t.x[i][w]>>b)&1 == 1 {
			return false
		}
	}
	return true
}

// MeasureZ measures qubit q in the computational basis and returns the
// outcome bit. Random outcomes draw from src.
func (t *Tableau) MeasureZ(q int, src *rng.Source) int {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	// Find a stabilizer with an X component on q: outcome is random.
	p := -1
	for i := t.n; i < 2*t.n; i++ {
		if (t.x[i][w]>>b)&1 == 1 {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*t.n; i++ {
			if i != p && (t.x[i][w]>>b)&1 == 1 {
				t.rowsum(i, p)
			}
		}
		// The destabilizer paired with p becomes the old stabilizer.
		copy(t.x[p-t.n], t.x[p])
		copy(t.z[p-t.n], t.z[p])
		t.r[p-t.n] = t.r[p]
		for ww := 0; ww < t.words; ww++ {
			t.x[p][ww] = 0
			t.z[p][ww] = 0
		}
		t.z[p][w] = 1 << b
		outcome := 0
		if src.Bool(0.5) {
			outcome = 1
		}
		t.r[p] = uint8(outcome)
		return outcome
	}
	// Deterministic: accumulate destabilizer products into scratch.
	scratch := 2 * t.n
	for ww := 0; ww < t.words; ww++ {
		t.x[scratch][ww] = 0
		t.z[scratch][ww] = 0
	}
	t.r[scratch] = 0
	for i := 0; i < t.n; i++ {
		if (t.x[i][w]>>b)&1 == 1 {
			t.rowsum(scratch, i+t.n)
		}
	}
	return int(t.r[scratch])
}

// Reset forces qubit q to |0>: it measures q and corrects with X when
// the outcome is 1. This is the non-unitary radiation fault channel.
func (t *Tableau) Reset(q int, src *rng.Source) {
	if t.MeasureZ(q, src) == 1 {
		t.X(q)
	}
}

// ExpectationZ returns +1, -1 or 0 for the Z expectation value of q:
// +-1 when the measurement is deterministic, 0 when it is random.
func (t *Tableau) ExpectationZ(q int) int {
	if !t.IsDeterministicZ(q) {
		return 0
	}
	// Peek at the deterministic outcome without disturbing the state.
	c := t.Clone()
	if c.MeasureZ(q, rng.New(0)) == 0 {
		return 1
	}
	return -1
}

// StabilizerStrings renders the current stabilizer generators as Pauli
// strings with signs, e.g. "+ZZI". Intended for tests and debugging.
func (t *Tableau) StabilizerStrings() []string {
	out := make([]string, t.n)
	for i := t.n; i < 2*t.n; i++ {
		buf := make([]byte, 0, t.n+1)
		if t.r[i] == 1 {
			buf = append(buf, '-')
		} else {
			buf = append(buf, '+')
		}
		for q := 0; q < t.n; q++ {
			xb, zb := t.getX(i, q), t.getZ(i, q)
			switch {
			case xb == 1 && zb == 1:
				buf = append(buf, 'Y')
			case xb == 1:
				buf = append(buf, 'X')
			case zb == 1:
				buf = append(buf, 'Z')
			default:
				buf = append(buf, 'I')
			}
		}
		out[i-t.n] = string(buf)
	}
	return out
}
