package stab

import (
	"radqec/internal/circuit"
	"radqec/internal/rng"
)

// Reference is one noiseless execution of a Clifford circuit on the
// stabilizer tableau: the measurement record plus, per measurement, a
// determinism flag telling whether the outcome was predetermined by the
// state (no stabilizer anti-commutes with the measured Z) or drawn as a
// fresh coin. The Pauli-frame engines replay noisy shots against this
// record — deterministic outcomes are reproduced exactly as reference
// XOR frame, non-deterministic ones re-randomise through the frame's
// collapse coins — so the flags are the engine's ground truth for where
// measurement randomness lives.
type Reference struct {
	// Record[k] is the outcome of the k-th measurement op.
	Record []int
	// Deterministic[k] reports whether measurement k's outcome was
	// predetermined (true) or a fresh coin (false).
	Deterministic []bool
	// MeasIndex[i] maps op index i to its measurement index, -1 for
	// non-measurement ops.
	MeasIndex []int
}

// RunReference executes the noiseless circuit once from |0...0>, with
// measurement coins drawn from a stream seeded by seed, and returns the
// reference. The observe hook, when non-nil, sees the live tableau
// after every op (before the next one runs); callers use it to record
// state-dependent facts — e.g. per-site Z expectations and measurement
// branch operators for radiation-fault handling — without a second
// pass. The tableau passed to observe must not be mutated.
func RunReference(circ *circuit.Circuit, seed uint64, observe func(opIndex int, tab *Tableau)) *Reference {
	n := circ.NumQubits
	if n < 1 {
		n = 1
	}
	ref := &Reference{MeasIndex: make([]int, len(circ.Ops))}
	tab := New(n)
	src := rng.New(seed)
	for i, op := range circ.Ops {
		ref.MeasIndex[i] = -1
		switch op.Kind {
		case circuit.KindH:
			tab.H(op.Qubits[0])
		case circuit.KindX:
			tab.X(op.Qubits[0])
		case circuit.KindY:
			tab.Y(op.Qubits[0])
		case circuit.KindZ:
			tab.Z(op.Qubits[0])
		case circuit.KindS:
			tab.S(op.Qubits[0])
		case circuit.KindCNOT:
			tab.CNOT(op.Qubits[0], op.Qubits[1])
		case circuit.KindCZ:
			tab.CZ(op.Qubits[0], op.Qubits[1])
		case circuit.KindSWAP:
			tab.SWAP(op.Qubits[0], op.Qubits[1])
		case circuit.KindMeasure:
			ref.MeasIndex[i] = len(ref.Record)
			ref.Deterministic = append(ref.Deterministic, tab.IsDeterministicZ(op.Qubits[0]))
			ref.Record = append(ref.Record, tab.MeasureZ(op.Qubits[0], src))
		case circuit.KindReset:
			tab.Reset(op.Qubits[0], src)
		}
		if observe != nil && op.Kind != circuit.KindBarrier {
			observe(i, tab)
		}
	}
	return ref
}

// AnticommutingStabilizer returns the support of one stabilizer
// generator anti-commuting with Z_q, as sparse X- and Z-component qubit
// lists, or ok=false when the Z measurement of q is deterministic (no
// such generator exists). For a non-deterministic measurement this
// generator is the branch operator: it maps the outcome-0 collapse
// branch onto the outcome-1 branch, so conditionally injecting it into
// a Pauli frame reproduces the correlated damage a mid-circuit
// projection inflicts on the measured qubit's entangled partners.
func (t *Tableau) AnticommutingStabilizer(q int) (xs, zs []int, ok bool) {
	t.checkQ(q)
	w, b := q/64, uint(q%64)
	for i := t.n; i < 2*t.n; i++ {
		if (t.x[i][w]>>b)&1 == 0 {
			continue
		}
		for p := 0; p < t.n; p++ {
			if t.getX(i, p) == 1 {
				xs = append(xs, p)
			}
			if t.getZ(i, p) == 1 {
				zs = append(zs, p)
			}
		}
		return xs, zs, true
	}
	return nil, nil, false
}
