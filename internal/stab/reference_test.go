package stab

import (
	"testing"

	"radqec/internal/circuit"
)

// TestReferenceDeterminismFlags pins the per-measurement determinism
// flags on a circuit with a non-deterministic mid-circuit measurement:
// H makes the first M a coin, the collapse makes the re-measurement of
// the same qubit deterministic, and a fresh H re-opens the branch.
func TestReferenceDeterminismFlags(t *testing.T) {
	c := circuit.New(2, 4)
	c.H(0)
	c.Measure(0, 0) // superposed: fresh coin
	c.Measure(0, 1) // collapsed: deterministic, equals bit 0
	c.X(0)
	c.Measure(0, 2) // still deterministic, equals bit 0 flipped
	c.H(0)
	c.Measure(0, 3) // re-superposed: fresh coin again
	ref := RunReference(c, 7, nil)
	wantFlags := []bool{false, true, true, false}
	if len(ref.Record) != 4 || len(ref.Deterministic) != 4 {
		t.Fatalf("record %v flags %v", ref.Record, ref.Deterministic)
	}
	for k, want := range wantFlags {
		if ref.Deterministic[k] != want {
			t.Fatalf("measurement %d: deterministic=%v, want %v (flags %v)",
				k, ref.Deterministic[k], want, ref.Deterministic)
		}
	}
	if ref.Record[1] != ref.Record[0] {
		t.Fatalf("re-measurement diverged from collapse: %v", ref.Record)
	}
	if ref.Record[2] != ref.Record[0]^1 {
		t.Fatalf("X did not flip the deterministic outcome: %v", ref.Record)
	}
}

// TestReferenceMeasIndex pins the op-to-measurement mapping.
func TestReferenceMeasIndex(t *testing.T) {
	c := circuit.New(2, 2)
	c.X(0)
	c.Measure(0, 0)
	c.CNOT(0, 1)
	c.Measure(1, 1)
	ref := RunReference(c, 1, nil)
	want := []int{-1, 0, -1, 1}
	for i, w := range want {
		if ref.MeasIndex[i] != w {
			t.Fatalf("MeasIndex = %v, want %v", ref.MeasIndex, want)
		}
	}
	if ref.Record[0] != 1 || ref.Record[1] != 1 {
		t.Fatalf("X|0> record = %v", ref.Record)
	}
	if !ref.Deterministic[0] || !ref.Deterministic[1] {
		t.Fatalf("computational-basis flags = %v", ref.Deterministic)
	}
}

// TestReferenceObserveSeesEveryOp pins the observer contract: called
// once per non-barrier op, after the op has been applied.
func TestReferenceObserveSeesEveryOp(t *testing.T) {
	c := circuit.New(2, 1)
	c.H(0)
	c.Barrier()
	c.CNOT(0, 1)
	c.Measure(0, 0)
	var seen []int
	RunReference(c, 3, func(i int, tab *Tableau) {
		seen = append(seen, i)
		if tab.N() != 2 {
			t.Fatalf("observer saw %d qubits", tab.N())
		}
	})
	want := []int{0, 2, 3} // barrier (op 1) skipped
	if len(seen) != len(want) {
		t.Fatalf("observed ops %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observed ops %v, want %v", seen, want)
		}
	}
}

// TestAnticommutingStabilizer pins the branch operator on a Bell pair:
// after H+CNOT the stabilizers are XX and ZZ, so the generator
// anti-commuting with Z_0 is XX — X support {0,1}, empty Z support —
// and the correlated-collapse physics rides exactly on that support.
func TestAnticommutingStabilizer(t *testing.T) {
	tab := New(2)
	if _, _, ok := tab.AnticommutingStabilizer(0); ok {
		t.Fatal("|00> has no stabilizer anti-commuting with Z_0")
	}
	tab.H(0)
	tab.CNOT(0, 1)
	xs, zs, ok := tab.AnticommutingStabilizer(0)
	if !ok {
		t.Fatal("Bell state: Z_0 measurement should be non-deterministic")
	}
	if len(xs) != 2 || xs[0] != 0 || xs[1] != 1 || len(zs) != 0 {
		t.Fatalf("branch operator xs=%v zs=%v, want XX", xs, zs)
	}
	// Consistency: the branch operator must anti-commute with Z_q, i.e.
	// have X support on q.
	if !tab.IsDeterministicZ(0) {
		found := false
		for _, q := range xs {
			if q == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("branch operator %v misses the measured qubit", xs)
		}
	}
}
