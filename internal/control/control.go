// Package control is the scoring controller that closes the loop
// between the telemetry signals layer and the sweep scheduler. It
// makes three kinds of decisions, all of them pure scheduling under
// the BatchRunner (start, n) determinism contract — the controller can
// change wall-clock time and interleaving but never a result:
//
//   - Mechanism chunk size: how finely a deterministic policy batch is
//     split into engine invocations. Large chunks amortise per-call
//     overhead; small chunks yield fresh telemetry and frequent
//     scheduling points. The scorer picks among aligned candidate
//     sizes by observed throughput with convex penalties, hysteresis
//     and dwell time (the fec_score_formula shape from the related
//     FEC-controller work).
//   - Point priority: which pending point of a campaign runs next.
//     Tail-sensitive points with the widest tail-CI get budget first,
//     then the least-converged adaptive points, then fixed points by
//     remaining work.
//   - Campaign weight: how a shared worker pool splits handouts across
//     concurrent campaigns (deficit scheduling in the sweep scheduler
//     divides service counters by this weight).
//
// The chunk-size score of a candidate c is
//
//	score(c) = T̂(c)/T* − κ_lat·q·(c/C_max)² − κ_mem·(Â(c)/A* − 1)
//
// where T̂ is the EWMA shots/s observed at size c, T* the best observed
// across candidates, q ∈ [0,1] the scheduler's queue pressure, Â the
// EWMA allocated bytes/shot and A* its best. Both penalties are convex
// in their argument, so oversized chunks and allocation-heavy regimes
// are punished progressively, not cliff-edged. An incumbent is only
// displaced when the challenger clears a hysteresis margin, and never
// before the dwell budget (in policy batches) has elapsed — the two
// standard guards against decision flapping on noisy signals.
package control

import "sync"

// Defaults for Policy fields left zero.
const (
	DefaultDwell      = 4
	DefaultHysteresis = 0.15
	DefaultMaxChunk   = 1 << 16
)

// Scorer coefficients: the latency penalty weight (scaled by queue
// pressure) and the allocation penalty weight. They shape relative
// scores only, so their absolute magnitude matters less than the
// convexity of the terms they multiply.
const (
	latPenaltyWeight   = 0.25
	allocPenaltyWeight = 0.10
	// ewmaAlpha is the smoothing factor of the throughput and
	// allocation estimators: ~63% of weight inside the last 1/α
	// observations.
	ewmaAlpha = 0.3
)

// Policy is the operator-facing knob set of the controller, carried by
// sweep.Mechanism. A nil *Policy (or Enabled false) keeps the static
// legacy scheduler: FIFO point handouts, least-recently-served
// campaign rotation, one engine call per policy batch, and no
// in-flight single-flight.
type Policy struct {
	// Enabled turns the closed loop on.
	Enabled bool
	// Dwell is how many policy batches a chunk-size decision is pinned
	// before the scorer may switch (0 = DefaultDwell; minimum 1).
	Dwell int
	// Hysteresis is the relative score margin a challenger chunk size
	// must clear to displace the incumbent (0 = DefaultHysteresis).
	Hysteresis float64
	// MaxChunk caps the mechanism chunk size in shots
	// (0 = DefaultMaxChunk).
	MaxChunk int
}

// Default returns the controller policy the CLI and daemon enable by
// default.
func Default() *Policy { return &Policy{Enabled: true} }

// withDefaults fills zero knobs.
func (p Policy) withDefaults() Policy {
	if p.Dwell <= 0 {
		p.Dwell = DefaultDwell
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = DefaultHysteresis
	}
	if p.MaxChunk <= 0 {
		p.MaxChunk = DefaultMaxChunk
	}
	return p
}

// ewma is an exponentially weighted moving average.
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) observe(x float64) {
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v += ewmaAlpha * (x - e.v)
}

// Controller is the per-campaign scoring state. All methods are safe
// for concurrent use by the sweep workers executing the campaign's
// points.
type Controller struct {
	policy Policy

	mu sync.Mutex
	// candidates are the legal chunk sizes: align·4^k up to MaxChunk.
	candidates []int
	cur        int // index into candidates
	dwellLeft  int
	probe      int    // next unobserved candidate to try once
	thr        []ewma // shots/s per candidate
	alloc      []ewma // bytes/shot per candidate
	pressure   float64
}

// New builds a controller for one campaign whose batches are aligned
// to align shots (the chunk-size candidates are multiples of it).
// Returns nil for a nil or disabled policy — the static scheduler.
func New(p *Policy, align int) *Controller {
	if p == nil || !p.Enabled {
		return nil
	}
	pol := p.withDefaults()
	if align < 1 {
		align = 1
	}
	var cands []int
	for c := align; c <= pol.MaxChunk; c *= 4 {
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		cands = []int{align}
	}
	return &Controller{
		policy:     pol,
		candidates: cands,
		cur:        len(cands) - 1, // start throughput-safe: the largest chunk
		dwellLeft:  pol.Dwell,
		thr:        make([]ewma, len(cands)),
		alloc:      make([]ewma, len(cands)),
	}
}

// ChunkSize returns the current mechanism chunk size in shots.
func (c *Controller) ChunkSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.candidates[c.cur]
}

// SetPressure updates the scheduler's queue-pressure signal q ∈ [0,1]:
// 0 when the pool is idle (nothing gains from small chunks), 1 when
// every worker has queued work waiting (responsiveness matters most).
func (c *Controller) SetPressure(q float64) {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	c.mu.Lock()
	c.pressure = q
	c.mu.Unlock()
}

// ObserveChunk feeds one executed chunk back into the estimators.
func (c *Controller) ObserveChunk(size, shots int, wallNS, allocBytes int64) {
	if shots <= 0 || wallNS <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.candidateIndex(size)
	c.thr[i].observe(float64(shots) / (float64(wallNS) / 1e9))
	c.alloc[i].observe(float64(allocBytes) / float64(shots))
}

// candidateIndex maps an executed size onto the nearest candidate at
// or below it (final chunks of a batch are truncated, so observed
// sizes between candidates credit the size that produced them).
func (c *Controller) candidateIndex(size int) int {
	i := 0
	for i+1 < len(c.candidates) && c.candidates[i+1] <= size {
		i++
	}
	return i
}

// BatchDone advances the dwell clock at a policy-batch boundary and
// rescores when it expires. Unobserved candidates are probed once each
// (in size order) before steady-state scoring, so the estimators cover
// the whole candidate set deterministically. It returns the chunk size
// for the next batch and the dwell budget left — the controller gauges.
func (c *Controller) BatchDone() (chunkSize, dwellLeft int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dwellLeft > 0 {
		c.dwellLeft--
	}
	if c.dwellLeft == 0 {
		if next, ok := c.nextProbe(); ok {
			c.cur = next
		} else if best := c.bestScored(); best != c.cur &&
			c.score(best) > c.score(c.cur)+c.policy.Hysteresis {
			c.cur = best
		}
		c.dwellLeft = c.policy.Dwell
	}
	return c.candidates[c.cur], c.dwellLeft
}

// nextProbe returns the next candidate without a throughput estimate.
func (c *Controller) nextProbe() (int, bool) {
	for ; c.probe < len(c.candidates); c.probe++ {
		if !c.thr[c.probe].set {
			return c.probe, true
		}
	}
	return 0, false
}

// bestScored returns the candidate with the highest score among those
// with observations (ties to the larger chunk, which amortises best).
func (c *Controller) bestScored() int {
	best, bestScore := c.cur, c.score(c.cur)
	for i := range c.candidates {
		if !c.thr[i].set || i == c.cur {
			continue
		}
		if s := c.score(i); s > bestScore || (s == bestScore && i > best) {
			best, bestScore = i, s
		}
	}
	return best
}

// score evaluates one candidate under the documented formula. All
// terms are dimensionless: throughput and allocation are normalised by
// the best observed value across candidates.
func (c *Controller) score(i int) float64 {
	var thrMax, allocMin float64
	for j := range c.candidates {
		if c.thr[j].set && c.thr[j].v > thrMax {
			thrMax = c.thr[j].v
		}
		if c.alloc[j].set && c.alloc[j].v > 0 && (allocMin == 0 || c.alloc[j].v < allocMin) {
			allocMin = c.alloc[j].v
		}
	}
	s := 1.0 // unobserved candidates score optimistically (T̂ = T*)
	if thrMax > 0 && c.thr[i].set {
		s = c.thr[i].v / thrMax
	}
	frac := float64(c.candidates[i]) / float64(c.policy.MaxChunk)
	s -= latPenaltyWeight * c.pressure * frac * frac
	if allocMin > 0 && c.alloc[i].set {
		rel := c.alloc[i].v/allocMin - 1
		s -= allocPenaltyWeight * rel * rel
	}
	return s
}

// DwellState snapshots the controller gauges without advancing them.
func (c *Controller) DwellState() (chunkSize, dwellLeft int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.candidates[c.cur], c.dwellLeft
}

// PointSignals is the per-point state the priority function scores —
// plain numbers so package sweep can call in without a dependency
// cycle.
type PointSignals struct {
	// HalfWidth is the point's current Wilson 95% half-width (0 before
	// any shots).
	HalfWidth float64
	// TailWidth is the CI half-width of the point's tail statistic;
	// meaningful only when TailSensitive.
	TailWidth float64
	// TailSensitive marks points whose experiment declared its
	// CVaR/quantile columns paper-relevant.
	TailSensitive bool
	// RemainingFrac is the fraction of the point's fixed shot budget
	// still unexecuted (fixed-mode points only).
	RemainingFrac float64
}

// Priority ranks pending points of a campaign, higher first:
// tail-sensitive points by tail-CI width (the widest tail gets budget
// first, per the VaR/CVaR co-control literature), then adaptive points
// by Wilson half-width (least converged first), then fixed points by
// remaining work. The bands are disjoint: every tail-sensitive point
// outranks every non-tail point, which outranks every fixed point.
func Priority(s PointSignals) float64 {
	switch {
	case s.TailSensitive:
		return 2 + s.TailWidth
	case s.HalfWidth > 0:
		return 1 + s.HalfWidth
	default:
		return s.RemainingFrac
	}
}

// CampaignSignals is the per-campaign state behind Weight.
type CampaignSignals struct {
	// Pending is the campaign's queued (not running) point count.
	Pending int
	// TailPressure is the widest tail-CI width among its pending
	// tail-sensitive points (0 when none).
	TailPressure float64
}

// Weight returns the campaign's share multiplier for deficit
// scheduling, in [1, 4]: campaigns with deep backlogs and wide
// unresolved tails draw proportionally more handouts from the shared
// pool. With every weight equal the scheduler degrades to the fair
// rotation of the static policy.
func Weight(s CampaignSignals) float64 {
	w := 1.0
	// log2-ish backlog boost, saturating at +2 for 1024 pending points.
	for n := s.Pending; n > 1 && w < 3; n >>= 1 {
		w += 0.2
	}
	if s.TailPressure > 0 {
		w += s.TailPressure // tail widths are <= 1
	}
	if w > 4 {
		w = 4
	}
	return w
}
