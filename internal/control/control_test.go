package control

import (
	"math"
	"testing"
)

func TestNewDisabledIsNil(t *testing.T) {
	if New(nil, 64) != nil {
		t.Fatal("nil policy built a controller")
	}
	if New(&Policy{}, 64) != nil {
		t.Fatal("disabled policy built a controller")
	}
}

func TestCandidatesAlignedGeometric(t *testing.T) {
	c := New(Default(), 64)
	want := []int{64, 256, 1024, 4096, 16384, 65536}
	if len(c.candidates) != len(want) {
		t.Fatalf("candidates = %v, want %v", c.candidates, want)
	}
	for i, w := range want {
		if c.candidates[i] != w {
			t.Fatalf("candidates = %v, want %v", c.candidates, want)
		}
	}
	// Starts throughput-safe at the largest candidate.
	if c.ChunkSize() != 65536 {
		t.Fatalf("initial chunk = %d, want %d", c.ChunkSize(), 65536)
	}
	// Alignment larger than MaxChunk still yields one legal candidate.
	if got := New(&Policy{Enabled: true, MaxChunk: 32}, 64).ChunkSize(); got != 64 {
		t.Fatalf("degenerate candidate set chose %d", got)
	}
}

func TestCandidateIndexCreditsTruncatedChunks(t *testing.T) {
	c := New(Default(), 64)
	for _, tc := range []struct{ size, want int }{
		{64, 0}, {100, 0}, {256, 1}, {1000, 1}, {1024, 2}, {65536, 5}, {1 << 20, 5},
	} {
		if got := c.candidateIndex(tc.size); got != tc.want {
			t.Fatalf("candidateIndex(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestDwellPinsDecision(t *testing.T) {
	c := New(&Policy{Enabled: true, Dwell: 3, MaxChunk: 256}, 64) // candidates 64, 256
	// Feed signals making the small candidate clearly better.
	for i := 0; i < 10; i++ {
		c.ObserveChunk(64, 64, 1e6, 0)     // 64k shots/s
		c.ObserveChunk(256, 256, 256e6, 0) // 1k shots/s
	}
	// The first two BatchDone calls only count down dwell; the chunk
	// size must not move before the budget expires.
	for i := 0; i < 2; i++ {
		if size, left := c.BatchDone(); size != 256 || left != 3-i-1 {
			t.Fatalf("batch %d: size %d dwell %d — switched before dwell expiry", i, size, left)
		}
	}
	// Third call expires the dwell; both candidates are observed, so
	// scoring (not probing) runs and picks the faster small chunk.
	if size, left := c.BatchDone(); size != 64 || left != 3 {
		t.Fatalf("post-dwell size %d dwell %d, want 64 / 3", size, left)
	}
}

func TestProbeVisitsUnobservedCandidatesInOrder(t *testing.T) {
	c := New(&Policy{Enabled: true, Dwell: 1, MaxChunk: 1024}, 64) // 64, 256, 1024
	var visited []int
	for i := 0; i < 3; i++ {
		size, _ := c.BatchDone()
		visited = append(visited, size)
		c.ObserveChunk(size, size, 1e6, 0)
	}
	// All candidates start unobserved, so the probe order is the
	// candidate order: 64, 256, then steady state.
	if visited[0] != 64 || visited[1] != 256 {
		t.Fatalf("probe order %v, want 64 then 256 first", visited)
	}
}

func TestHysteresisHoldsNearTies(t *testing.T) {
	pol := &Policy{Enabled: true, Dwell: 1, Hysteresis: 0.15, MaxChunk: 256}
	c := New(pol, 64) // candidates 64, 256
	// Pin the incumbent at the large candidate with observations: the
	// small candidate is 5% faster — inside the hysteresis margin.
	speedup := 1.05 // 64-shot chunks 5% above the incumbent's 256e3 shots/s
	wall5 := int64(250e3 / speedup)
	for i := 0; i < 50; i++ {
		c.ObserveChunk(256, 256, 1e6, 0) // 256e3 shots/s
		c.ObserveChunk(64, 64, wall5, 0)
	}
	c.probe = len(c.candidates) // probing done
	if size, _ := c.BatchDone(); size != 256 {
		t.Fatalf("5%% challenger displaced the incumbent despite 15%% hysteresis (size %d)", size)
	}
	// A 2x challenger clears any sane margin.
	for i := 0; i < 50; i++ {
		c.ObserveChunk(64, 64, 125e3, 0)
	}
	if size, _ := c.BatchDone(); size != 64 {
		t.Fatalf("2x challenger failed to displace the incumbent (size %d)", size)
	}
}

func TestScorePenaltiesAreConvex(t *testing.T) {
	c := New(Default(), 64)
	c.SetPressure(1)
	// With no observations every candidate scores 1 minus the latency
	// penalty, which grows quadratically in the size fraction.
	sSmall := c.score(0)
	sMid := c.score(3)
	sBig := c.score(len(c.candidates) - 1)
	if !(sSmall > sMid && sMid > sBig) {
		t.Fatalf("latency penalty not monotone under pressure: %v %v %v", sSmall, sMid, sBig)
	}
	if math.Abs((1-sBig)-latPenaltyWeight) > 1e-12 {
		t.Fatalf("full-size penalty = %v, want %v", 1-sBig, latPenaltyWeight)
	}
	// Without pressure the penalty vanishes.
	c.SetPressure(0)
	if got := c.score(len(c.candidates) - 1); got != 1 {
		t.Fatalf("pressure-free score = %v, want 1", got)
	}
}

func TestPriorityBandsAreDisjoint(t *testing.T) {
	// A tail point with an almost-resolved tail still outranks the
	// least-converged adaptive point (half-widths are < 1 for any real
	// Wilson interval), which outranks a completely unstarted fixed one.
	tail := Priority(PointSignals{TailSensitive: true, TailWidth: 0.01})
	adaptive := Priority(PointSignals{HalfWidth: 0.99})
	fixed := Priority(PointSignals{RemainingFrac: 1})
	if !(tail > adaptive && adaptive > fixed) {
		t.Fatalf("bands overlap: tail %v adaptive %v fixed %v", tail, adaptive, fixed)
	}
	// Within a band, wider uncertainty ranks higher.
	if Priority(PointSignals{TailSensitive: true, TailWidth: 0.5}) <= Priority(PointSignals{TailSensitive: true, TailWidth: 0.1}) {
		t.Fatal("wider tail CI did not outrank narrower")
	}
	if Priority(PointSignals{HalfWidth: 0.2}) <= Priority(PointSignals{HalfWidth: 0.05}) {
		t.Fatal("less-converged adaptive point did not outrank more-converged")
	}
}

func TestWeightBoundsAndMonotonicity(t *testing.T) {
	if w := Weight(CampaignSignals{}); w != 1 {
		t.Fatalf("empty campaign weight = %v, want 1", w)
	}
	prev := 0.0
	for _, n := range []int{1, 2, 8, 64, 1024} {
		w := Weight(CampaignSignals{Pending: n})
		if w < prev {
			t.Fatalf("weight not monotone in backlog: %v after %v", w, prev)
		}
		prev = w
	}
	if w := Weight(CampaignSignals{Pending: 1 << 30, TailPressure: 1}); w != 4 {
		t.Fatalf("weight cap = %v, want 4", w)
	}
}
