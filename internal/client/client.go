// Package client is the typed Go client of the radqecd v1 API — the
// one place the wire surface is spelled out. The fabric coordinator,
// the server's own tests and the smoke harness's Go helper all speak
// through it instead of hand-rolling http.Get and NDJSON parsing, so a
// surface change breaks one package loudly rather than three quietly.
//
// The request and record types here are the protocol: package server
// aliases CampaignRequest as its POST /v1/campaigns body, and the
// stream records reuse exp.PointRecord / exp.TableRecord — the exact
// structs the CLI's -json mode emits.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"radqec/internal/exp"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

// CampaignRequest is the JSON body of POST /v1/campaigns. Zero fields
// take the CLI defaults, so {"experiment":"fig5"} is a complete
// request. The server decodes it with unknown fields disallowed, so
// this struct is the authoritative field list.
type CampaignRequest struct {
	Experiment string `json:"experiment"`
	Shots      int    `json:"shots,omitempty"`
	// Seed is a pointer so an omitted field takes the CLI's default
	// seed (1) while an explicit {"seed":0} still means seed zero.
	Seed   *uint64 `json:"seed,omitempty"`
	P      float64 `json:"p,omitempty"`
	NS     int     `json:"ns,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	Engine string  `json:"engine,omitempty"`
	// EngineWidth selects the batched engine's tile width by name
	// ("auto", "64", "256" or "512"; omitted = the daemon's default).
	// Width never changes results, only throughput; the resolved width
	// is reported in the campaign's route signal.
	EngineWidth string  `json:"engine_width,omitempty"`
	Decoder     string  `json:"decoder,omitempty"`
	CI          float64 `json:"ci,omitempty"`
	MaxShots    int     `json:"maxshots,omitempty"`
	// Workers caps this campaign's concurrency inside the shared pool
	// (0 = the whole pool). It never grows the pool.
	Workers int `json:"workers,omitempty"`
	// NoCache bypasses the store for this campaign: nothing is read
	// from or written to it (and the fabric never shards it).
	NoCache bool `json:"no_cache,omitempty"`
	// Controller overrides the daemon's default controller policy for
	// this campaign (omitted = the daemon's -controller setting).
	// Results are byte-identical either way; only scheduling changes.
	Controller *bool `json:"controller,omitempty"`
	// Dwell and Hysteresis tune the controller's scorer when it is
	// enabled: policy batches a chunk-size decision is pinned (0 = the
	// daemon default), and the score margin a challenger must clear
	// (0 = the daemon default).
	Dwell      int     `json:"dwell,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// Fabric marks an intra-ring fan-out submission: the receiving
	// node runs the campaign in fabric mode (computing only the points
	// it owns) but does not fan out again. Set by the coordinator,
	// never by end clients; daemons older than the fabric release
	// reject it, so a ring must run one release.
	Fabric bool `json:"fabric,omitempty"`
	// TraceSample overrides the daemon's -trace-sample default for
	// this campaign: "on" records a distributed trace (spans at
	// GET /v1/campaigns/{id}/trace), "off" disables it, omitted takes
	// the daemon default. Any other value is a 400. Tracing is pure
	// mechanism — results and content hashes are unchanged by it. An
	// incoming sampled traceparent header wins over "off", so fan-out
	// legs of a sampled campaign always stitch.
	TraceSample string `json:"trace_sample,omitempty"`
}

// Error is a failed v1 call: the HTTP status plus the server's stable
// machine-readable code and human message from the error envelope.
type Error struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code, e.g. "invalid_argument"
	Message string
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("radqecd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("radqecd: %s (HTTP %d)", e.Message, e.Status)
}

// ErrorCode returns err's stable API error code, or "" when err is not
// a v1 API error.
func ErrorCode(err error) string {
	var ae *Error
	if ok := asError(err, &ae); ok {
		return ae.Code
	}
	return ""
}

func asError(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Client calls one radqecd node. The zero value is not usable; build
// with New. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a daemon at addr — a bare "host:port" or a
// full "http://host:port" base URL. hc nil uses a dedicated client
// with no overall timeout (campaign streams legitimately run for
// minutes; per-call contexts bound everything else).
func New(addr string, hc *http.Client) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, hc: hc}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// decodeError turns a non-2xx response into an *Error. It parses the
// v1 envelope {"error":{"code","message"}}, tolerates the legacy flat
// {"error":"msg"} shape one release back, and falls back to the raw
// body for non-JSON responses.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && len(env.Error) > 0 {
		var inner struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if json.Unmarshal(env.Error, &inner) == nil && inner.Message != "" {
			e.Code, e.Message = inner.Code, inner.Message
			return e
		}
		var flat string
		if json.Unmarshal(env.Error, &flat) == nil && flat != "" {
			e.Message = flat // legacy pre-envelope daemon
			return e
		}
	}
	if e.Message == "" {
		e.Message = resp.Status
	}
	return e
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	// Every hop of a sampled campaign carries its W3C traceparent —
	// fan-out submits, point long-polls, lease claims — so a
	// multi-node campaign stitches into one trace.
	if tp := trace.FromContext(req.Context()).Traceparent(); tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// getJSON GETs path and decodes the response body into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// doJSON issues a bodyless (or JSON-bodied) request and decodes the
// response into v (nil v discards it).
func (c *Client) doJSON(ctx context.Context, method, path string, body, v any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if v == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// ErrorRecord is the terminal stream record of a failed or cancelled
// campaign.
type ErrorRecord struct {
	Error     string `json:"error"`
	Cancelled bool   `json:"cancelled,omitempty"`
}

// Record is one line of a campaign stream: exactly one field is
// non-nil.
type Record struct {
	Point *exp.PointRecord
	Table *exp.TableRecord
	Err   *ErrorRecord
}

// CampaignStream iterates a running campaign's NDJSON stream.
type CampaignStream struct {
	// ID is the campaign's daemon-assigned identifier, from the
	// X-Radqec-Campaign-Id response header — the handle for Cancel and
	// Signals.
	ID int64
	// TraceID is the campaign's trace id from the X-Radqec-Trace-Id
	// response header, empty when the campaign is unsampled — the
	// handle for TraceByID against any node of the ring.
	TraceID string
	body    io.ReadCloser
	sc      *bufio.Scanner
}

// SubmitOptions tunes a campaign submission.
type SubmitOptions struct {
	// Detach, when non-nil false, couples the campaign to this
	// client's connection (?detach=0): closing the stream cancels the
	// campaign at its next batch boundary. nil or true keeps the
	// daemon default — the campaign detaches and survives the client.
	Detach *bool
}

// SubmitCampaign posts a campaign and returns its live stream. The
// caller must drain Next until io.EOF (or Close early). ctx bounds the
// whole stream's lifetime.
func (c *Client) SubmitCampaign(ctx context.Context, creq CampaignRequest, opts SubmitOptions) (*CampaignStream, error) {
	b, err := json.Marshal(creq)
	if err != nil {
		return nil, err
	}
	u := c.base + "/v1/campaigns"
	if opts.Detach != nil && !*opts.Detach {
		u += "?detach=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	id, err := strconv.ParseInt(resp.Header.Get("X-Radqec-Campaign-Id"), 10, 64)
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("radqecd: campaign stream carried no id header")
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &CampaignStream{ID: id, TraceID: resp.Header.Get("X-Radqec-Trace-Id"), body: resp.Body, sc: sc}, nil
}

// Next returns the next stream record, or io.EOF after the last one.
// A terminal error record is returned as a Record (Err set), not as an
// iteration error — the stream itself ended cleanly.
func (s *CampaignStream) Next() (Record, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return Record{}, err
		}
		return Record{}, io.EOF
	}
	line := s.sc.Bytes()
	var kind struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &kind); err != nil {
		return Record{}, fmt.Errorf("radqecd: campaign stream line not JSON: %q", line)
	}
	switch kind.Type {
	case "point":
		var p exp.PointRecord
		if err := json.Unmarshal(line, &p); err != nil {
			return Record{}, err
		}
		return Record{Point: &p}, nil
	case "table":
		var t exp.TableRecord
		if err := json.Unmarshal(line, &t); err != nil {
			return Record{}, err
		}
		return Record{Table: &t}, nil
	case "error":
		var e ErrorRecord
		if err := json.Unmarshal(line, &e); err != nil {
			return Record{}, err
		}
		return Record{Err: &e}, nil
	default:
		return Record{}, fmt.Errorf("radqecd: unexpected campaign record type %q", kind.Type)
	}
}

// Close abandons the stream; the campaign keeps running unless it was
// submitted with Detach=false.
func (s *CampaignStream) Close() error { return s.body.Close() }

// Cancel stops a running campaign (DELETE /v1/campaigns/{id}). The
// campaign observes it at its next batch boundary and its stream ends
// with a cancelled error record.
func (c *Client) Cancel(ctx context.Context, id int64) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/campaigns/"+strconv.FormatInt(id, 10), nil, nil)
}

// SignalRecord is one line of a signals stream: a telemetry signal, or
// the final aggregate stats record that closes a followed stream.
type SignalRecord struct {
	Signal *telemetry.Signal
	Stats  *telemetry.Stats
}

// SignalStream iterates GET /v1/campaigns/{id}/signals.
type SignalStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Signals opens a campaign's telemetry stream from sequence from,
// following live signals until the campaign finishes when follow is
// true (a snapshot of the retained ring otherwise).
func (c *Client) Signals(ctx context.Context, id int64, from uint64, follow bool) (*SignalStream, error) {
	u := fmt.Sprintf("%s/v1/campaigns/%d/signals?from=%d", c.base, id, from)
	if !follow {
		u += "&follow=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SignalStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next signal record, or io.EOF after the final stats
// record.
func (s *SignalStream) Next() (SignalRecord, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return SignalRecord{}, err
		}
		return SignalRecord{}, io.EOF
	}
	line := s.sc.Bytes()
	var kind struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &kind); err != nil {
		return SignalRecord{}, fmt.Errorf("radqecd: signals stream line not JSON: %q", line)
	}
	switch kind.Type {
	case "signal":
		var sig telemetry.Signal
		if err := json.Unmarshal(line, &sig); err != nil {
			return SignalRecord{}, err
		}
		return SignalRecord{Signal: &sig}, nil
	case "stats":
		var st telemetry.Stats
		if err := json.Unmarshal(line, &st); err != nil {
			return SignalRecord{}, err
		}
		return SignalRecord{Stats: &st}, nil
	default:
		return SignalRecord{}, fmt.Errorf("radqecd: unexpected signals record type %q", kind.Type)
	}
}

// Close abandons the signals stream.
func (s *SignalStream) Close() error { return s.body.Close() }

// TraceSpans fetches a sampled campaign's recorded spans
// (GET /v1/campaigns/{id}/trace, NDJSON). On a fabric node the server
// stitches in the peers' spans for the same trace id; localOnly asks
// for this node's spans alone.
func (c *Client) TraceSpans(ctx context.Context, id int64, localOnly bool) ([]trace.Span, error) {
	path := "/v1/campaigns/" + strconv.FormatInt(id, 10) + "/trace"
	if localOnly {
		path += "?local=1"
	}
	return c.traceNDJSON(ctx, path)
}

// TraceByID fetches spans by trace id (GET /v1/traces/{trace_id}) —
// how a node that only ran a fan-out leg of a campaign is asked for
// its part of the distributed trace.
func (c *Client) TraceByID(ctx context.Context, traceID string, localOnly bool) ([]trace.Span, error) {
	path := "/v1/traces/" + url.PathEscape(traceID)
	if localOnly {
		path += "?local=1"
	}
	return c.traceNDJSON(ctx, path)
}

func (c *Client) traceNDJSON(ctx context.Context, path string) ([]trace.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var spans []trace.Span
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var s trace.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("radqecd: trace stream line not a span: %q", sc.Bytes())
		}
		spans = append(spans, s)
	}
	return spans, sc.Err()
}

// ExperimentInfo is one row of GET /v1/experiments.
type ExperimentInfo struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	XXZZRad bool   `json:"xxzz_rad"`
}

// Experiments lists the daemon's runnable experiments.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	return out, c.getJSON(ctx, "/v1/experiments", &out)
}

// CacheStats returns the daemon's result-store statistics.
func (c *Client) CacheStats(ctx context.Context) (store.Stats, error) {
	var out store.Stats
	return out, c.getJSON(ctx, "/v1/cache", &out)
}

// CacheEntries lists the store's committed points.
func (c *Client) CacheEntries(ctx context.Context) ([]store.Entry, error) {
	var out []store.Entry
	return out, c.getJSON(ctx, "/v1/cache/entries", &out)
}

// PointResponse is the body of GET /v1/points/{hash} and
// GET /v1/cache/entries/{hash}: one committed point under its content
// address.
type PointResponse struct {
	Hash  string            `json:"hash"`
	Point sweep.CachedPoint `json:"point"`
}

// CacheEntry returns one committed point by content hash.
func (c *Client) CacheEntry(ctx context.Context, hash string) (sweep.CachedPoint, error) {
	var out PointResponse
	err := c.getJSON(ctx, "/v1/cache/entries/"+url.PathEscape(hash), &out)
	return out.Point, err
}

// InvalidateEntry drops one committed point or checkpoint from the
// store (DELETE /v1/cache/entries/{hash}).
func (c *Client) InvalidateEntry(ctx context.Context, hash string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/cache/entries/"+url.PathEscape(hash), nil, nil)
}

// ClearCache empties the store.
func (c *Client) ClearCache(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/cache", nil, nil)
}

// CompactCache rewrites the store segment down to live records and
// returns the post-compaction statistics (POST /v1/cache:compact).
func (c *Client) CompactCache(ctx context.Context) (store.Stats, error) {
	var out store.Stats
	return out, c.doJSON(ctx, http.MethodPost, "/v1/cache:compact", nil, &out)
}

// CodeNotCommitted is the API code of a point lookup that found no
// committed result.
const CodeNotCommitted = "point_not_committed"

// LookupPoint fetches the committed result for a content hash from a
// node's store (GET /v1/points/{hash}) — the fabric's cross-node
// read-through call. wait > 0 asks the node to hold the request until
// the point commits or the window expires. Returns ok=false (and no
// error) when the point is not committed there.
func (c *Client) LookupPoint(ctx context.Context, hash string, wait time.Duration) (sweep.CachedPoint, bool, error) {
	path := "/v1/points/" + url.PathEscape(hash)
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	var out PointResponse
	err := c.getJSON(ctx, path, &out)
	if err != nil {
		var ae *Error
		if asError(err, &ae) && ae.Code == CodeNotCommitted {
			return sweep.CachedPoint{}, false, nil
		}
		return sweep.CachedPoint{}, false, err
	}
	return out.Point, true, nil
}

// Claim lease statuses of POST /v1/points/{hash}/claim.
const (
	ClaimGranted   = "granted"
	ClaimHeld      = "held"
	ClaimCommitted = "committed"
)

// Claim is the outcome of a point-lease claim.
type Claim struct {
	Status string `json:"status"`
	// Holder and RemainingMS describe the conflicting lease when
	// Status is "held".
	Holder      string `json:"holder,omitempty"`
	RemainingMS int64  `json:"remaining_ms,omitempty"`
	// TTLMS echoes the granted lease's TTL when Status is "granted".
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// claimRequest is the body of POST /v1/points/{hash}/claim.
type claimRequest struct {
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

// ClaimPoint asks a node for the compute lease on a content hash — the
// fabric's cross-node single-flight handshake before a takeover
// compute. Every outcome is a 200 with a status: "granted" means the
// caller may compute the point until the TTL lapses, "held" names the
// node already computing it, and "committed" means the result already
// exists (fetch it with LookupPoint instead).
func (c *Client) ClaimPoint(ctx context.Context, hash, owner string, ttl time.Duration) (Claim, error) {
	var out Claim
	err := c.doJSON(ctx, http.MethodPost, "/v1/points/"+url.PathEscape(hash)+"/claim",
		claimRequest{Owner: owner, TTLMS: ttl.Milliseconds()}, &out)
	return out, err
}

// Health is the body of GET /healthz.
type Health struct {
	Status          string  `json:"status"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Workers         int     `json:"workers"`
	Store           bool    `json:"store"`
	CampaignsActive int64   `json:"campaigns_active"`
	StoreDegraded   bool    `json:"store_degraded,omitempty"`
}

// Healthz returns the daemon's liveness report.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	return out, c.getJSON(ctx, "/healthz", &out)
}
