package dem

import (
	"testing"

	"radqec/internal/rng"
)

// repSpec builds the repetition-chain geometry: d data qubits, d-1
// weight-2 stabilizers.
func repSpec(d, rounds int) Spec {
	stabs := make([][]int, d-1)
	for s := range stabs {
		stabs[s] = []int{s, s + 1}
	}
	return Spec{Stabs: stabs, NumData: d, Rounds: rounds}
}

func mustCompile(t *testing.T, spec Spec) *Model {
	t.Helper()
	m, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// randomPrior draws mechanism probabilities in (0.001, 0.3).
func randomPrior(numData, numStabs int, seed uint64) Prior {
	src := rng.New(seed)
	pr := Prior{
		DataFlip: make([]float64, numData),
		MeasFlip: make([]float64, numStabs),
	}
	for i := range pr.DataFlip {
		pr.DataFlip[i] = 0.001 + 0.3*src.Float64()
	}
	for i := range pr.MeasFlip {
		pr.MeasFlip[i] = 0.001 + 0.3*src.Float64()
	}
	return pr
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	if _, err := Compile(repSpec(5, 1)); err == nil {
		t.Fatal("1-round spec accepted")
	}
	bad := repSpec(5, 2)
	bad.Stabs[0] = []int{0, 9}
	if _, err := Compile(bad); err == nil {
		t.Fatal("out-of-range stabilizer support accepted")
	}
	short := repSpec(5, 2)
	short.Prior = Uniform(3, 4, 0.01)
	if _, err := Compile(short); err == nil {
		t.Fatal("mismatched prior accepted")
	}
}

func TestDistanceMatrixSymmetry(t *testing.T) {
	for _, spec := range []Spec{
		repSpec(7, 2),
		repSpec(5, 6),
		{Stabs: repSpec(9, 3).Stabs, NumData: 9, Rounds: 3, Prior: randomPrior(9, 8, 11)},
	} {
		m := mustCompile(t, spec)
		for s1 := 0; s1 < m.NumStabs; s1++ {
			for s2 := 0; s2 < m.NumStabs; s2++ {
				for dt := 0; dt < m.Layers; dt++ {
					a := m.Dist(s1, 0, s2, dt)
					b := m.Dist(s2, 0, s1, dt)
					if a != b {
						t.Fatalf("Dist(%d,%d,dt=%d) asymmetric: %d vs %d", s1, s2, dt, a, b)
					}
					if c := m.Dist(s1, dt, s2, 0); c != a {
						t.Fatalf("Dist not time-reversal symmetric at (%d,%d,dt=%d)", s1, s2, dt)
					}
				}
			}
		}
	}
}

// bruteDist runs Bellman-Ford over the model's explicit edge list
// (boundary excluded) — an independent oracle for the cached distances.
func bruteDist(m *Model, src int) []int64 {
	n := len(m.Adj)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range m.Edges {
			if e.U == m.Boundary || e.V == m.Boundary {
				continue
			}
			if dist[e.U] >= 0 && (dist[e.V] == -1 || dist[e.U]+e.W < dist[e.V]) {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V] >= 0 && (dist[e.U] == -1 || dist[e.V]+e.W < dist[e.U]) {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestSpacetimeDistancesMatchBruteForce(t *testing.T) {
	// The translation-invariant cache must agree with a brute-force
	// search over the explicit space-time edge list from every layer,
	// not just layer 0 — pinning both the metric and its invariance.
	spec := repSpec(7, 4)
	spec.Prior = randomPrior(7, 6, 3)
	m := mustCompile(t, spec)
	for s1 := 0; s1 < m.NumStabs; s1++ {
		for t1 := 0; t1 < m.Layers; t1++ {
			brute := bruteDist(m, m.Node(s1, t1))
			for s2 := 0; s2 < m.NumStabs; s2++ {
				for t2 := 0; t2 < m.Layers; t2++ {
					want := brute[m.Node(s2, t2)]
					if got := m.Dist(s1, t1, s2, t2); got != want {
						t.Fatalf("Dist(%d,%d,%d,%d) = %d, brute force %d", s1, t1, s2, t2, got, want)
					}
				}
			}
		}
	}
}

func TestBoundaryPathMinimality(t *testing.T) {
	// Boundary distances must satisfy the triangle inequality against
	// every stabilizer-to-stabilizer chain, and the boundary flip set
	// must realise exactly the claimed weight.
	for _, spec := range []Spec{
		repSpec(9, 2),
		{Stabs: repSpec(9, 2).Stabs, NumData: 9, Rounds: 2, Prior: randomPrior(9, 8, 7)},
	} {
		m := mustCompile(t, spec)
		for s := 0; s < m.NumStabs; s++ {
			bd := m.BoundaryDist(s)
			if bd < 0 {
				continue
			}
			var w int64
			for _, d := range m.BoundaryFlips(s) {
				w += m.SpaceWeight(d)
			}
			if w != bd {
				t.Fatalf("stab %d: boundary flip set weighs %d, bdist %d", s, w, bd)
			}
			for o := 0; o < m.NumStabs; o++ {
				if od := m.Dist(s, 0, o, 0); od >= 0 && m.BoundaryDist(o) >= 0 &&
					od+m.BoundaryDist(o) < bd {
					t.Fatalf("stab %d: bdist %d beaten by detour via %d (%d)",
						s, bd, o, od+m.BoundaryDist(o))
				}
			}
		}
	}
}

func TestPathFlipSetsRealiseDistances(t *testing.T) {
	// At dt=0 the cached distance is a pure spatial chain; its canonical
	// flip set must weigh exactly that much.
	spec := repSpec(9, 3)
	spec.Prior = randomPrior(9, 8, 19)
	m := mustCompile(t, spec)
	for i := 0; i < m.NumStabs; i++ {
		for j := 0; j < m.NumStabs; j++ {
			if i == j {
				continue
			}
			var w int64
			for _, d := range m.PathFlips(i, j) {
				w += m.SpaceWeight(d)
			}
			if want := m.Dist(i, 0, j, 0); w != want {
				t.Fatalf("PathFlips(%d,%d) weighs %d, dist %d", i, j, w, want)
			}
		}
	}
}

func TestUniformPriorIsUnitWeightEquivalent(t *testing.T) {
	// Any uniform prior yields one common edge weight, and distances
	// divided by it reproduce the unweighted hop metric.
	unit := mustCompile(t, repSpec(7, 3))
	uni := repSpec(7, 3)
	uni.Prior = Uniform(7, 6, 0.07)
	scaled := mustCompile(t, uni)
	w0 := unit.Edges[0].W
	w1 := scaled.Edges[0].W
	for _, e := range scaled.Edges {
		if e.W != w1 {
			t.Fatalf("uniform prior produced unequal weights")
		}
	}
	for s1 := 0; s1 < unit.NumStabs; s1++ {
		for s2 := 0; s2 < unit.NumStabs; s2++ {
			for dt := 0; dt < unit.Layers; dt++ {
				a, b := unit.Dist(s1, 0, s2, dt), scaled.Dist(s1, 0, s2, dt)
				if (a < 0) != (b < 0) {
					t.Fatalf("reachability differs at (%d,%d,%d)", s1, s2, dt)
				}
				if a >= 0 && a/w0 != b/w1 {
					t.Fatalf("hop metric differs at (%d,%d,%d): %d vs %d", s1, s2, dt, a/w0, b/w1)
				}
			}
		}
	}
}

func TestEdgeListLayout(t *testing.T) {
	// Canonical order: per-layer space-like mechanisms first (data
	// order), then time-like mechanisms; counts follow directly.
	m := mustCompile(t, repSpec(5, 3))
	spatialPerLayer := 5 // data 0..4: two boundary + three shared
	wantSpace := spatialPerLayer * m.Layers
	wantTime := m.NumStabs * (m.Layers - 1)
	if len(m.Edges) != wantSpace+wantTime {
		t.Fatalf("edge count %d, want %d", len(m.Edges), wantSpace+wantTime)
	}
	for i, e := range m.Edges {
		if i < wantSpace && e.Data < 0 {
			t.Fatalf("edge %d: expected space-like, got time-like", i)
		}
		if i >= wantSpace && e.Data >= 0 {
			t.Fatalf("edge %d: expected time-like, got space-like", i)
		}
	}
}
