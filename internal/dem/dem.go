// Package dem compiles detector-error models: the weighted space-time
// decoding geometry a (code, rounds, noise prior) pair induces. A
// detector is one stabilizer measurement comparison — stabilizer s at
// detection layer t — and an error mechanism is an edge between the
// detectors it flips: a data-qubit error between consecutive layers
// (space-like edge, flipping the two stabilizers sharing the qubit, or
// one stabilizer and the open boundary), or a measurement error
// (time-like edge, flipping the same stabilizer in consecutive layers).
//
// Each mechanism carries the log-likelihood weight log((1-p)/p) of its
// probability p in the noise prior, quantized to fixed point
// (matching.QuantizeWeight) so matching and shortest paths run on exact
// integer arithmetic. With every mechanism equally likely — the unit
// prior — all edges share one weight and the model is the unit-weight
// geometry the paper's qtcodes pipeline decodes on; heterogeneous
// priors (e.g. qec.(*Code).NoisePrior) tilt matchings toward the more
// probable error chains.
//
// The model is compiled once per (geometry, rounds, prior) and shared
// by every decoder view:
//
//   - MWPM reads the cached all-pairs shortest-path distances between
//     detectors (and to the boundary) plus the flattened flip sets
//     realising them.
//   - Union-find grows clusters over the explicit space-time edge list
//     (Edges/Adj), which enumerates mechanisms in a fixed canonical
//     order so peeling is deterministic.
//
// The time-homogeneous weights make the space-time metric invariant
// under time translation — dist((s1,t1),(s2,t2)) depends only on
// (s1, s2, |t1-t2|) — so the all-pairs cache stores numStabs² × layers
// entries instead of (numStabs·layers)², and deep-memory models
// (rounds ≫ 2) stay small.
package dem

import (
	"fmt"
	"math"

	"radqec/internal/matching"
)

// Prior holds the per-mechanism error probabilities a model's weights
// derive from. A zero-value Prior (nil slices) selects the unit prior:
// every mechanism equally likely, all edge weights equal — the
// unit-weight geometry.
type Prior struct {
	// DataFlip[d] is the probability that data qubit d suffers a bit
	// flip between two consecutive detection layers.
	DataFlip []float64
	// MeasFlip[s] is the probability that one measurement of
	// stabilizer s is read wrong.
	MeasFlip []float64
}

// Uniform returns the prior assigning probability p to every mechanism.
// Any p in (0, 1/2) yields the same (unit-weight-equivalent) model; the
// value only scales the common weight.
func Uniform(numData, numStabs int, p float64) Prior {
	pr := Prior{
		DataFlip: make([]float64, numData),
		MeasFlip: make([]float64, numStabs),
	}
	for i := range pr.DataFlip {
		pr.DataFlip[i] = p
	}
	for i := range pr.MeasFlip {
		pr.MeasFlip[i] = p
	}
	return pr
}

// Spec is the input of Compile.
type Spec struct {
	// Stabs[s] lists the data-qubit indices stabilizer s checks.
	Stabs [][]int
	// NumData is the number of data qubits.
	NumData int
	// Rounds is the number of stabilization rounds (>= 2). Detection
	// events live on Rounds+1 layers: round 0 vs the expected all-zero
	// syndrome, consecutive-round differences, and the last round vs
	// the syndrome recomputed from the data readout.
	Rounds int
	// Prior supplies the mechanism probabilities; its zero value is the
	// unit prior.
	Prior Prior
}

// Edge is one error mechanism of the space-time graph.
type Edge struct {
	// U and V are space-time node ids (Node(s, t)); boundary edges use
	// the Boundary node as V's side.
	U, V int
	// Data is the data qubit a space-like mechanism flips, or -1 for a
	// time-like (measurement) mechanism.
	Data int
	// W is the quantized log-likelihood weight.
	W int64
}

// Model is a compiled detector-error model.
type Model struct {
	// NumStabs, NumData and Layers fix the detector coordinate system:
	// detectors are (stabilizer, layer) pairs with Layers = Rounds+1.
	NumStabs, NumData, Layers int
	// Boundary is the space-time node id of the open boundary.
	Boundary int
	// Edges enumerates every mechanism in canonical order: for each
	// layer, the space-like mechanisms in data-qubit order, then for
	// each layer transition, the time-like mechanisms in stabilizer
	// order. Adj[v] lists the edge indices incident to node v.
	Edges []Edge
	Adj   [][]int32

	// spaceW[d] and timeW[s] are the quantized mechanism weights.
	spaceW, timeW []int64

	// dist[(s1*NumStabs+s2)*Layers+dt] is the space-time shortest-path
	// weight between detectors (s1,t) and (s2,t+dt) (time-translation
	// invariant; -1 when the stabilizers are spatially disconnected).
	// Boundary never shortcuts these paths: a chain through the
	// boundary is expressed as two boundary matches by the matcher.
	dist []int64
	// bdist[s] is the weighted distance from stabilizer s (any layer)
	// to the boundary; -1 when unreachable.
	bdist []int64
	// pathFlips[s1][s2] is the flattened flip set — the data qubits of
	// a canonical minimum-weight spatial chain between s1 and s2. Time
	// edges flip no data, so a matched pair's correction is the spatial
	// projection of its path. Under a heterogeneous prior the space-time
	// path behind dist may detour spatially to ride cheaper time edges,
	// so its projection can differ from this spatially-cheapest chain;
	// the correction then realises a near-minimal chain between the same
	// endpoints (exactly minimal under any uniform prior, where the two
	// paths coincide). Matching decoders carry the same class of path
	// degeneracy through tie-breaking.
	pathFlips [][][]int
	// bpathFlips[s] is the flip set of a canonical minimum-weight chain
	// from s to the boundary.
	bpathFlips [][]int
}

// weightOf maps a mechanism probability to its quantized log-likelihood
// weight. Probabilities are clamped into (0, 1/2]: a mechanism more
// likely than 1/2 would want a negative weight, which the shortest-path
// and matching layers do not support; the clamp floors it at the
// cheapest representable edge instead.
func weightOf(p float64) int64 {
	const pMin = 1e-12
	if p < pMin {
		p = pMin
	}
	if p > 0.5 {
		p = 0.5
	}
	w := matching.QuantizeWeight(math.Log((1 - p) / p))
	if w < 1 {
		w = 1
	}
	return w
}

// Node returns the space-time node id of stabilizer s at layer t.
func (m *Model) Node(s, t int) int { return t*m.NumStabs + s }

// Dist returns the shortest-path weight between detectors (s1,t1) and
// (s2,t2), or -1 when they are spatially disconnected.
func (m *Model) Dist(s1, t1, s2, t2 int) int64 {
	dt := t1 - t2
	if dt < 0 {
		dt = -dt
	}
	return m.dist[(s1*m.NumStabs+s2)*m.Layers+dt]
}

// BoundaryDist returns the weighted distance from stabilizer s to the
// open boundary (-1 when unreachable).
func (m *Model) BoundaryDist(s int) int64 { return m.bdist[s] }

// PathFlips returns the data-qubit flip set of the canonical
// minimum-weight chain between stabilizers s1 and s2 (nil when s1 == s2
// or disconnected). The returned slice is shared; callers must not
// mutate it.
func (m *Model) PathFlips(s1, s2 int) []int { return m.pathFlips[s1][s2] }

// BoundaryFlips returns the flip set of the canonical minimum-weight
// chain from stabilizer s to the boundary (shared; do not mutate).
func (m *Model) BoundaryFlips(s int) []int { return m.bpathFlips[s] }

// SpaceWeight returns the quantized weight of data qubit d's space-like
// mechanism.
func (m *Model) SpaceWeight(d int) int64 { return m.spaceW[d] }

// TimeWeight returns the quantized weight of stabilizer s's time-like
// mechanism.
func (m *Model) TimeWeight(s int) int64 { return m.timeW[s] }

// Compile builds the model: mechanism weights from the prior, the
// canonical space-time edge list, the spatial flip sets, and the
// translation-invariant all-pairs distance cache.
func Compile(spec Spec) (*Model, error) {
	n := len(spec.Stabs)
	if spec.NumData < 0 {
		return nil, fmt.Errorf("dem: negative data-qubit count %d", spec.NumData)
	}
	if spec.Rounds < 2 {
		return nil, fmt.Errorf("dem: at least 2 stabilization rounds required, got %d", spec.Rounds)
	}
	layers := spec.Rounds + 1
	m := &Model{
		NumStabs: n,
		NumData:  spec.NumData,
		Layers:   layers,
		Boundary: n * layers,
		spaceW:   make([]int64, spec.NumData),
		timeW:    make([]int64, n),
	}
	pr := spec.Prior
	if pr.DataFlip != nil && len(pr.DataFlip) != spec.NumData {
		return nil, fmt.Errorf("dem: prior covers %d data qubits, spec has %d", len(pr.DataFlip), spec.NumData)
	}
	if pr.MeasFlip != nil && len(pr.MeasFlip) != n {
		return nil, fmt.Errorf("dem: prior covers %d stabilizers, spec has %d", len(pr.MeasFlip), n)
	}
	const unitP = 0.01 // any common value: the unit prior only needs equal weights
	for d := range m.spaceW {
		p := unitP
		if pr.DataFlip != nil {
			p = pr.DataFlip[d]
		}
		m.spaceW[d] = weightOf(p)
	}
	for s := range m.timeW {
		p := unitP
		if pr.MeasFlip != nil {
			p = pr.MeasFlip[s]
		}
		m.timeW[s] = weightOf(p)
	}

	// owner[d] lists the stabilizers covering data qubit d; exactly-one
	// coverage links that stabilizer to the open boundary, exactly-two
	// coverage links the pair. Qubits covered by more stabilizers have
	// no graphlike mechanism and are skipped (none exist in the
	// repetition or XXZZ families).
	owner := make([][]int, spec.NumData)
	for s, datas := range spec.Stabs {
		for _, d := range datas {
			if d < 0 || d >= spec.NumData {
				return nil, fmt.Errorf("dem: stabilizer %d references data qubit %d of %d", s, d, spec.NumData)
			}
			owner[d] = append(owner[d], s)
		}
	}

	// Canonical space-time edge list: per layer the space-like
	// mechanisms in data order, then per transition the time-like
	// mechanisms in stabilizer order (the union-find peeling order).
	for t := 0; t < layers; t++ {
		for d, ss := range owner {
			switch len(ss) {
			case 1:
				m.Edges = append(m.Edges, Edge{U: m.Node(ss[0], t), V: m.Boundary, Data: d, W: m.spaceW[d]})
			case 2:
				m.Edges = append(m.Edges, Edge{U: m.Node(ss[0], t), V: m.Node(ss[1], t), Data: d, W: m.spaceW[d]})
			}
		}
	}
	for t := 0; t+1 < layers; t++ {
		for s := 0; s < n; s++ {
			m.Edges = append(m.Edges, Edge{U: m.Node(s, t), V: m.Node(s, t+1), Data: -1, W: m.timeW[s]})
		}
	}
	m.Adj = make([][]int32, n*layers+1)
	for i, e := range m.Edges {
		m.Adj[e.U] = append(m.Adj[e.U], int32(i))
		m.Adj[e.V] = append(m.Adj[e.V], int32(i))
	}

	m.compileSpatialPaths(owner)
	m.compileSpacetimeDistances(owner)
	return m, nil
}

// spatialEdge is one spatial mechanism viewed from a node of the
// spatial-only graph (stabilizers 0..n-1, boundary n).
type spatialEdge struct {
	to, via int
	w       int64
}

// spatialAdj builds the spatial adjacency in data-qubit order — the
// canonical relaxation order that makes path tie-breaking deterministic
// (and, under the unit prior, identical to breadth-first search).
func (m *Model) spatialAdj(owner [][]int) [][]spatialEdge {
	n := m.NumStabs
	adj := make([][]spatialEdge, n+1)
	for d, ss := range owner {
		switch len(ss) {
		case 1:
			adj[ss[0]] = append(adj[ss[0]], spatialEdge{n, d, m.spaceW[d]})
			adj[n] = append(adj[n], spatialEdge{ss[0], d, m.spaceW[d]})
		case 2:
			adj[ss[0]] = append(adj[ss[0]], spatialEdge{ss[1], d, m.spaceW[d]})
			adj[ss[1]] = append(adj[ss[1]], spatialEdge{ss[0], d, m.spaceW[d]})
		}
	}
	return adj
}

// heapItem is a lazy-deletion priority-queue entry ordered by (dist,
// seq): equal-distance nodes pop in insertion order, so the search
// degenerates to exactly breadth-first order when all weights are equal
// — preserving the flip-set tie-breaks of the unit-weight decoder.
type heapItem struct {
	node int
	dist int64
	seq  int
}

type pathHeap []heapItem

func (h pathHeap) less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}

func (h *pathHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *pathHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// dijkstraSpatial runs the deterministic Dijkstra from src over the
// spatial graph, skipping the node listed in skip (-1 for none),
// returning distances (-1 unreachable) and predecessor data qubits.
func dijkstraSpatial(adj [][]spatialEdge, src, skip int) (dist []int64, prev, prevVia []int) {
	nn := len(adj)
	dist = make([]int64, nn)
	prev = make([]int, nn)
	prevVia = make([]int, nn)
	for i := range dist {
		dist[i] = -1
		prev[i] = -1
		prevVia[i] = -1
	}
	var h pathHeap
	seq := 0
	dist[src] = 0
	h.push(heapItem{src, 0, seq})
	done := make([]bool, nn)
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if done[u] || it.dist != dist[u] {
			continue
		}
		done[u] = true
		for _, e := range adj[u] {
			if e.to == skip {
				continue
			}
			nd := dist[u] + e.w
			if dist[e.to] == -1 || nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = u
				prevVia[e.to] = e.via
				seq++
				h.push(heapItem{e.to, nd, seq})
			}
		}
	}
	return dist, prev, prevVia
}

// compileSpatialPaths records the canonical flip sets: minimum-weight
// spatial chains between every stabilizer pair (boundary excluded as an
// intermediate) and from every stabilizer to the boundary.
func (m *Model) compileSpatialPaths(owner [][]int) {
	n := m.NumStabs
	adj := m.spatialAdj(owner)
	m.pathFlips = make([][][]int, n)
	m.bpathFlips = make([][]int, n)
	for src := 0; src < n; src++ {
		dist, prev, prevVia := dijkstraSpatial(adj, src, n)
		m.pathFlips[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if dst == src || dist[dst] <= 0 {
				continue
			}
			var flips []int
			for v := dst; v != src; v = prev[v] {
				flips = append(flips, prevVia[v])
			}
			m.pathFlips[src][dst] = flips
		}
	}
	m.bdist = make([]int64, n)
	bd, bprev, bvia := dijkstraSpatial(adj, n, -1)
	for s := 0; s < n; s++ {
		m.bdist[s] = bd[s]
		if bd[s] > 0 {
			var flips []int
			for v := s; v != n; v = bprev[v] {
				flips = append(flips, bvia[v])
			}
			m.bpathFlips[s] = flips
		}
	}
}

// compileSpacetimeDistances fills the translation-invariant all-pairs
// cache: one Dijkstra per stabilizer from layer 0 over the space-time
// graph (boundary excluded), reading dist(s1, s2, dt) off node
// (s2, dt). Time-homogeneous weights guarantee a time-monotone shortest
// path exists, so anchoring every source at layer 0 loses nothing.
func (m *Model) compileSpacetimeDistances(owner [][]int) {
	n, layers := m.NumStabs, m.Layers
	m.dist = make([]int64, n*n*layers)
	for i := range m.dist {
		m.dist[i] = -1
	}
	if n == 0 {
		return
	}
	// Space-time adjacency over stabilizer nodes only (boundary and
	// flip identity are irrelevant here; only weights matter).
	type stEdge struct {
		to int
		w  int64
	}
	adj := make([][]stEdge, n*layers)
	for t := 0; t < layers; t++ {
		for d, ss := range owner {
			if len(ss) == 2 {
				u, v := m.Node(ss[0], t), m.Node(ss[1], t)
				adj[u] = append(adj[u], stEdge{v, m.spaceW[d]})
				adj[v] = append(adj[v], stEdge{u, m.spaceW[d]})
			}
		}
	}
	for t := 0; t+1 < layers; t++ {
		for s := 0; s < n; s++ {
			u, v := m.Node(s, t), m.Node(s, t+1)
			adj[u] = append(adj[u], stEdge{v, m.timeW[s]})
			adj[v] = append(adj[v], stEdge{u, m.timeW[s]})
		}
	}
	dist := make([]int64, n*layers)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		var h pathHeap
		seq := 0
		dist[src] = 0 // Node(src, 0) == src
		h.push(heapItem{src, 0, 0})
		for len(h) > 0 {
			it := h.pop()
			u := it.node
			if it.dist != dist[u] {
				continue
			}
			for _, e := range adj[u] {
				nd := dist[u] + e.w
				if dist[e.to] == -1 || nd < dist[e.to] {
					dist[e.to] = nd
					seq++
					h.push(heapItem{e.to, nd, seq})
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			for dt := 0; dt < layers; dt++ {
				m.dist[(src*n+dst)*layers+dt] = dist[m.Node(dst, dt)]
			}
		}
	}
}
