//go:build !unix

package store

import "os"

// lockFile is a no-op where flock is unavailable; single-writer
// discipline is then the operator's responsibility (the README notes
// the lock is advisory and unix-only).
func lockFile(*os.File) error { return nil }
