package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"radqec/internal/sweep"
)

// SegmentName is the single append-only segment file inside a store
// directory.
const SegmentName = "segment.ndjson"

// lockName is the sidecar file carrying the directory's single-writer
// flock (the segment itself cannot carry it: compaction replaces its
// inode).
const lockName = "LOCK"

// DefaultMaxCached bounds the decoded commit records held in memory
// when Options.MaxCached is unset. Evicted records stay on disk and
// reload on demand through their remembered segment offset.
const DefaultMaxCached = 4096

// ErrClosed is recorded when an operation reaches a closed store.
var ErrClosed = errors.New("store: closed")

// record is one NDJSON segment line. Kind is "commit" (a final point
// result), "ckpt" (batch-boundary progress of an unfinished point) or
// "del" (a tombstone invalidating an earlier hash).
type record struct {
	Kind  string             `json:"kind"`
	Hash  string             `json:"hash"`
	Point *sweep.CachedPoint `json:"point,omitempty"`
}

// Options tunes a store.
type Options struct {
	// MaxCached bounds the decoded commit records held resident
	// (<= 0 picks DefaultMaxCached). Checkpoints are always resident:
	// they are small, transient, and needed for resume decisions.
	MaxCached int
}

// Entry describes one committed point in the index.
type Entry struct {
	Hash  string `json:"hash"`
	Key   string `json:"key,omitempty"`
	Shots int    `json:"shots"`
}

// Stats is a point-in-time view of the store for health and metrics
// reporting.
type Stats struct {
	Commits      int   `json:"commits"`
	Checkpoints  int   `json:"checkpoints"`
	SegmentBytes int64 `json:"segment_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Resident     int   `json:"resident"`
}

// Store is a content-addressed, crash-safe result store over one
// append-only NDJSON segment. All methods are safe for concurrent use;
// it implements sweep.PointCache.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // O_APPEND handle; ReadAt for offset reloads
	lock   *os.File // holds the directory's single-writer flock
	size   int64    // current segment size == next append offset
	closed bool
	err    error // first write error, surfaced by Sync/Close

	// commits indexes the latest commit record per hash by segment
	// offset, with enough metadata to list entries without disk reads.
	commits map[string]*commitEntry
	// ckpts holds the latest checkpoint per hash lacking a commit.
	ckpts map[string]sweep.CachedPoint
	// lru is the resident subset of decoded commit points, most
	// recently used at the tail.
	lru *pointLRU

	hits, misses int64
}

type commitEntry struct {
	off   int64
	key   string
	shots int
}

// Open opens (creating if needed) the store in dir and replays its
// segment into the in-memory index. A torn final line — the only
// damage a crash mid-append can cause — is truncated away so the
// segment stays appendable and every record before it survives.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxCached <= 0 {
		opts.MaxCached = DefaultMaxCached
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One writer per directory: the CLI and the daemon share the store
	// format, and two processes appending with independent offset maps
	// would corrupt each other's index. The advisory lock turns that
	// silent corruption into an immediate open error.
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is already open in another process (radqec -store and radqecd cannot share a directory concurrently): %w", dir, err)
	}
	path := filepath.Join(dir, SegmentName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		f:       f,
		lock:    lock,
		commits: make(map[string]*commitEntry),
		ckpts:   make(map[string]sweep.CachedPoint),
		lru:     newPointLRU(opts.MaxCached),
	}
	if err := s.replay(); err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the segment, building the index and truncating any torn
// tail at the last whole-record boundary.
func (s *Store) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	br := bufio.NewReader(s.f)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn final line. Drop it.
			break
		}
		if err != nil {
			return fmt.Errorf("store: replay: %w", err)
		}
		var rec record
		if json.Unmarshal(line, &rec) != nil {
			// A torn write can only damage the tail; treat the first
			// undecodable line as the end of the valid prefix.
			break
		}
		s.apply(rec, off)
		off += int64(len(line))
	}
	s.size = off
	if fi, err := s.f.Stat(); err == nil && fi.Size() > off {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	return nil
}

// apply folds one replayed record into the index.
func (s *Store) apply(rec record, off int64) {
	switch rec.Kind {
	case "commit":
		if rec.Point == nil {
			return
		}
		s.commits[rec.Hash] = &commitEntry{off: off, key: rec.Point.Key, shots: rec.Point.Shots}
		s.lru.put(rec.Hash, *rec.Point)
		delete(s.ckpts, rec.Hash)
	case "ckpt":
		if rec.Point == nil {
			return
		}
		if _, committed := s.commits[rec.Hash]; !committed {
			s.ckpts[rec.Hash] = *rec.Point
		}
	case "del":
		delete(s.commits, rec.Hash)
		delete(s.ckpts, rec.Hash)
		s.lru.remove(rec.Hash)
	}
}

// append writes one record line and returns its offset. The first
// write failure sticks in s.err; later appends become no-ops so a full
// disk degrades the store to a pass-through cache instead of a panic
// in the sweep hot path.
func (s *Store) append(rec record) (int64, bool) {
	if s.closed {
		s.setErr(ErrClosed)
		return 0, false
	}
	if s.err != nil {
		return 0, false
	}
	line, err := json.Marshal(rec)
	if err != nil {
		s.setErr(err)
		return 0, false
	}
	line = append(line, '\n')
	off := s.size
	if _, err := s.f.Write(line); err != nil {
		s.setErr(err)
		return 0, false
	}
	s.size += int64(len(line))
	return off, true
}

func (s *Store) setErr(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Lookup returns the committed result for a hash, reloading it from
// the segment when LRU pressure evicted the decoded record.
func (s *Store) Lookup(hash string) (sweep.CachedPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ce, ok := s.commits[hash]
	if !ok {
		s.misses++
		return sweep.CachedPoint{}, false
	}
	if p, ok := s.lru.get(hash); ok {
		s.hits++
		return p, true
	}
	p, err := s.readPointAt(ce.off, hash)
	if err != nil {
		// The index said committed but the segment disagrees — surface
		// as a miss so the point recomputes; record the fault.
		s.setErr(err)
		s.misses++
		return sweep.CachedPoint{}, false
	}
	s.lru.put(hash, p)
	s.hits++
	return p, true
}

// readPointAt decodes the record line starting at off and returns its
// point payload after checking the hash matches.
func (s *Store) readPointAt(off int64, hash string) (sweep.CachedPoint, error) {
	r := bufio.NewReader(io.NewSectionReader(s.f, off, s.size-off))
	line, err := r.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: %w", hash, err)
	}
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: %w", hash, err)
	}
	if rec.Hash != hash || rec.Point == nil {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: offset holds %q", hash, rec.Hash)
	}
	return *rec.Point, nil
}

// LookupPartial returns the latest checkpoint of an uncommitted hash.
func (s *Store) LookupPartial(hash string) (sweep.CachedPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ckpts[hash]
	return p, ok
}

// Checkpoint appends batch-boundary progress for a hash.
func (s *Store) Checkpoint(hash string, p sweep.CachedPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.append(record{Kind: "ckpt", Hash: hash, Point: &p}); ok {
		s.ckpts[hash] = p
	}
}

// Commit appends the final result for a hash, superseding its
// checkpoints.
func (s *Store) Commit(hash string, p sweep.CachedPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off, ok := s.append(record{Kind: "commit", Hash: hash, Point: &p}); ok {
		s.commits[hash] = &commitEntry{off: off, key: p.Key, shots: p.Shots}
		s.lru.put(hash, p)
		delete(s.ckpts, hash)
	}
}

// Invalidate drops one hash, appending a tombstone so the deletion
// survives restarts until the next compaction folds it away.
func (s *Store) Invalidate(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, hadCommit := s.commits[hash]
	_, hadCkpt := s.ckpts[hash]
	if !hadCommit && !hadCkpt {
		return false
	}
	if _, ok := s.append(record{Kind: "del", Hash: hash}); ok {
		delete(s.commits, hash)
		delete(s.ckpts, hash)
		s.lru.remove(hash)
		return true
	}
	return false
}

// Clear empties the store, atomically replacing the segment. The disk
// rewrite happens first: if it fails, the in-memory index still
// matches the (unchanged) segment instead of silently diverging until
// the next reopen resurrects everything.
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rewriteLocked(nil); err != nil {
		return err
	}
	s.commits = make(map[string]*commitEntry)
	s.ckpts = make(map[string]sweep.CachedPoint)
	s.lru = newPointLRU(s.opts.MaxCached)
	return nil
}

// Compact rewrites the segment to its live records only — the latest
// commit per hash plus the latest checkpoint of every uncommitted hash
// — via a temp file and an atomic rename, so readers of the directory
// always see a whole segment.
//
// Uncommitted checkpoints survive compaction deliberately: they are
// what makes a killed campaign resumable. The cost is that a
// checkpoint whose campaign is never resumed (e.g. its shot policy
// changed, moving the content hash) lingers until it is invalidated
// or the store is cleared; checkpoints are small, but a long-lived
// store that accumulates many abandoned ones reclaims them with
// Invalidate/Clear.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	hashes := make([]string, 0, len(s.commits))
	for h := range s.commits {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	recs := make([]record, 0, len(hashes)+len(s.ckpts))
	for _, h := range hashes {
		ce := s.commits[h]
		p, ok := s.lru.get(h)
		if !ok {
			var err error
			p, err = s.readPointAt(ce.off, h)
			if err != nil {
				return err
			}
		}
		pt := p
		recs = append(recs, record{Kind: "commit", Hash: h, Point: &pt})
	}
	ckptHashes := make([]string, 0, len(s.ckpts))
	for h := range s.ckpts {
		ckptHashes = append(ckptHashes, h)
	}
	sort.Strings(ckptHashes)
	for _, h := range ckptHashes {
		pt := s.ckpts[h]
		recs = append(recs, record{Kind: "ckpt", Hash: h, Point: &pt})
	}
	return s.rewriteLocked(recs)
}

// rewriteLocked atomically replaces the segment with the given records
// and reindexes the commit offsets against the new layout.
func (s *Store) rewriteLocked(recs []record) error {
	if s.closed {
		return ErrClosed
	}
	path := filepath.Join(s.dir, SegmentName)
	tmp, err := os.CreateTemp(s.dir, SegmentName+".tmp*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	offsets := make(map[string]int64, len(recs))
	var off int64
	for i := range recs {
		line, err := json.Marshal(recs[i])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		if recs[i].Kind == "commit" {
			offsets[recs[i].Hash] = off
		}
		off += int64(len(line))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already happened: the old handle points at an
		// unlinked inode, so appending to it would silently lose every
		// later record. Poison the store instead — appends drop and
		// Err/Sync/Close surface the fault.
		err = fmt.Errorf("store: compact: reopen after rename: %w", err)
		s.setErr(err)
		s.closed = true
		s.f.Close()
		return err
	}
	s.f.Close()
	s.f = f
	s.size = off
	for h, ce := range s.commits {
		ce.off = offsets[h]
	}
	return nil
}

// Entries lists the committed points, hash-sorted.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.commits))
	for h, ce := range s.commits {
		out = append(out, Entry{Hash: h, Key: ce.key, Shots: ce.shots})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// Stats reports the store's current shape and traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Commits:      len(s.commits),
		Checkpoints:  len(s.ckpts),
		SegmentBytes: s.size,
		Hits:         s.hits,
		Misses:       s.misses,
		Resident:     s.lru.len(),
	}
}

// Err returns the first write error the store swallowed on the sweep
// hot path, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Sync flushes the segment to stable storage and surfaces any
// swallowed write error.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.setErr(err)
	}
	return s.err
}

// Close syncs and closes the segment. Appends after Close are dropped
// (recorded as ErrClosed), so a signal handler can Close concurrently
// with in-flight sweep workers.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.setErr(err)
	}
	if err := s.f.Close(); err != nil {
		s.setErr(err)
	}
	s.lock.Close() // releases the directory's single-writer flock
	return s.err
}

// pointLRU is a bounded hash → point map with least-recently-used
// eviction, implemented over an intrusive doubly linked list.
type pointLRU struct {
	cap   int
	items map[string]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // next to evict
}

type lruNode struct {
	hash       string
	point      sweep.CachedPoint
	prev, next *lruNode
}

func newPointLRU(capacity int) *pointLRU {
	return &pointLRU{cap: capacity, items: make(map[string]*lruNode)}
}

func (l *pointLRU) len() int { return len(l.items) }

func (l *pointLRU) get(hash string) (sweep.CachedPoint, bool) {
	n, ok := l.items[hash]
	if !ok {
		return sweep.CachedPoint{}, false
	}
	l.moveFront(n)
	return n.point, true
}

func (l *pointLRU) put(hash string, p sweep.CachedPoint) {
	if n, ok := l.items[hash]; ok {
		n.point = p
		l.moveFront(n)
		return
	}
	n := &lruNode{hash: hash, point: p}
	l.items[hash] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.items, evict.hash)
	}
}

func (l *pointLRU) remove(hash string) {
	if n, ok := l.items[hash]; ok {
		l.unlink(n)
		delete(l.items, hash)
	}
}

func (l *pointLRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *pointLRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *pointLRU) moveFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
