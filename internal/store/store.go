package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"radqec/internal/faultinject"
	"radqec/internal/sweep"
)

// SegmentName is the single append-only segment file inside a store
// directory.
const SegmentName = "segment.ndjson"

// lockName is the sidecar file carrying the directory's single-writer
// flock (the segment itself cannot carry it: compaction replaces its
// inode).
const lockName = "LOCK"

// DefaultMaxCached bounds the decoded commit records held in memory
// when Options.MaxCached is unset. Evicted records stay on disk and
// reload on demand through their remembered segment offset.
const DefaultMaxCached = 4096

// ErrClosed is recorded when an operation reaches a closed store.
var ErrClosed = errors.New("store: closed")

// record is one NDJSON segment line. Kind is "commit" (a final point
// result), "ckpt" (batch-boundary progress of an unfinished point) or
// "del" (a tombstone invalidating an earlier hash).
type record struct {
	Kind  string             `json:"kind"`
	Hash  string             `json:"hash"`
	Point *sweep.CachedPoint `json:"point,omitempty"`
}

// envelope frames one segment line: the record's raw JSON plus the
// CRC32C of exactly those bytes, so replay can tell a bit-rotted
// record from a valid one without trusting JSON well-formedness (a
// flipped digit keeps a line parseable while silently changing its
// counts). Legacy segments whose lines are bare records still decode —
// decodeLine falls back when no "rec" field is present.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames one record as a checksummed segment line.
func encodeRecord(rec record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{CRC: crc32.Checksum(body, castagnoli), Rec: body})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine validates one segment line: CRC-framed lines are checked
// against their checksum, legacy (pre-CRC) lines decode directly with
// a structural kind check standing in for the missing checksum.
func decodeLine(line []byte) (record, error) {
	var rec record
	var env envelope
	if err := json.Unmarshal(line, &env); err == nil && env.Rec != nil {
		if crc32.Checksum(env.Rec, castagnoli) != env.CRC {
			return rec, fmt.Errorf("crc mismatch")
		}
		if err := json.Unmarshal(env.Rec, &rec); err != nil {
			return rec, err
		}
		return rec, nil
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, err
	}
	switch rec.Kind {
	case "commit", "ckpt", "del":
		return rec, nil
	}
	return rec, fmt.Errorf("unknown record kind %q", rec.Kind)
}

// Options tunes a store.
type Options struct {
	// MaxCached bounds the decoded commit records held resident
	// (<= 0 picks DefaultMaxCached). Checkpoints are always resident:
	// they are small, transient, and needed for resume decisions.
	MaxCached int
	// WriteRetries bounds how many times a failed segment append is
	// retried (with exponential backoff and jitter) before the store
	// degrades to read-through/no-write mode. 0 picks
	// DefaultWriteRetries; negative disables retries.
	WriteRetries int
	// RetryBackoff is the first retry's backoff; each further attempt
	// doubles it, with up to 50% random jitter. 0 picks
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// ProbeInterval is how often a degraded store re-probes the
	// segment so writes re-arm once the fault clears. 0 picks
	// DefaultProbeInterval.
	ProbeInterval time.Duration
}

// Fault-tolerance defaults for Options.
const (
	DefaultWriteRetries  = 3
	DefaultRetryBackoff  = 2 * time.Millisecond
	DefaultProbeInterval = 5 * time.Second
)

// Entry describes one committed point in the index.
type Entry struct {
	Hash  string `json:"hash"`
	Key   string `json:"key,omitempty"`
	Shots int    `json:"shots"`
}

// Stats is a point-in-time view of the store for health and metrics
// reporting.
type Stats struct {
	Commits      int   `json:"commits"`
	Checkpoints  int   `json:"checkpoints"`
	SegmentBytes int64 `json:"segment_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Resident     int   `json:"resident"`
	// Degraded reports read-through/no-write mode: persistent write
	// failure disarmed appends until a background probe re-arms them.
	Degraded bool `json:"degraded,omitempty"`
	// Quarantined counts corrupt records skipped at replay or reload —
	// each one recomputes instead of poisoning the store.
	Quarantined int `json:"quarantined,omitempty"`
	// WriteRetries / WriteErrors count transient append faults and the
	// attempts they consumed; Recoveries counts degraded→healthy
	// transitions.
	WriteRetries int64 `json:"write_retries,omitempty"`
	WriteErrors  int64 `json:"write_errors,omitempty"`
	Recoveries   int64 `json:"recoveries,omitempty"`
}

// Store is a content-addressed, crash-safe result store over one
// append-only NDJSON segment. All methods are safe for concurrent use;
// it implements sweep.PointCache.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // O_APPEND handle; ReadAt for offset reloads
	lock   *os.File // holds the directory's single-writer flock
	size   int64    // current segment size == next append offset
	closed bool
	fatal  error // unrecoverable fault (closed handle, bad state)

	// degraded write state: appends drop while degradedErr is set; a
	// background probe re-arms them once the segment accepts writes
	// again. Reads keep working throughout.
	degradedErr error
	probing     bool
	stopc       chan struct{}

	// commits indexes the latest commit record per hash by segment
	// offset, with enough metadata to list entries without disk reads.
	commits map[string]*commitEntry
	// ckpts holds the latest checkpoint per hash lacking a commit.
	ckpts map[string]sweep.CachedPoint
	// lru is the resident subset of decoded commit points, most
	// recently used at the tail.
	lru *pointLRU

	hits, misses             int64
	quarantined              int
	writeRetries, writeFails int64
	recoveries               int64
}

type commitEntry struct {
	off   int64
	key   string
	shots int
}

// Open opens (creating if needed) the store in dir and replays its
// segment into the in-memory index. A torn final line — the only
// damage a crash mid-append can cause — is truncated away so the
// segment stays appendable and every record before it survives.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxCached <= 0 {
		opts.MaxCached = DefaultMaxCached
	}
	if opts.WriteRetries == 0 {
		opts.WriteRetries = DefaultWriteRetries
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One writer per directory: the CLI and the daemon share the store
	// format, and two processes appending with independent offset maps
	// would corrupt each other's index. The advisory lock turns that
	// silent corruption into an immediate open error.
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is already open in another process (radqec -store and radqecd cannot share a directory concurrently): %w", dir, err)
	}
	path := filepath.Join(dir, SegmentName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		f:       f,
		lock:    lock,
		stopc:   make(chan struct{}),
		commits: make(map[string]*commitEntry),
		ckpts:   make(map[string]sweep.CachedPoint),
		lru:     newPointLRU(opts.MaxCached),
	}
	if err := s.replay(); err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the segment, building the index. Corruption is
// localised, not fatal: an invalid line with valid records after it is
// mid-segment damage (bit rot, partial overwrite) — the record is
// quarantined (skipped and counted) and everything after it still
// serves. An invalid run at the very end is the classic torn tail of a
// crash mid-append and is truncated away so the segment stays
// appendable.
func (s *Store) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	br := bufio.NewReader(s.f)
	var off int64   // offset of the line being read
	var valid int64 // end of the last valid record
	pending := 0    // invalid lines since the last valid record
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn final line. Drop it.
			break
		}
		if err != nil {
			return fmt.Errorf("store: replay: %w", err)
		}
		rec, derr := decodeLine(line)
		if derr != nil {
			pending++
			off += int64(len(line))
			continue
		}
		// A valid record past invalid lines proves the damage was
		// mid-segment, not a torn tail: quarantine what we skipped.
		s.quarantined += pending
		pending = 0
		s.apply(rec, off)
		off += int64(len(line))
		valid = off
	}
	s.size = valid
	if fi, err := s.f.Stat(); err == nil && fi.Size() > valid {
		if err := s.f.Truncate(valid); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	return nil
}

// apply folds one replayed record into the index.
func (s *Store) apply(rec record, off int64) {
	switch rec.Kind {
	case "commit":
		if rec.Point == nil {
			return
		}
		s.commits[rec.Hash] = &commitEntry{off: off, key: rec.Point.Key, shots: rec.Point.Shots}
		s.lru.put(rec.Hash, *rec.Point)
		delete(s.ckpts, rec.Hash)
	case "ckpt":
		if rec.Point == nil {
			return
		}
		if _, committed := s.commits[rec.Hash]; !committed {
			s.ckpts[rec.Hash] = *rec.Point
		}
	case "del":
		delete(s.commits, rec.Hash)
		delete(s.ckpts, rec.Hash)
		s.lru.remove(rec.Hash)
	}
}

// append writes one record line and returns its offset. Transient
// write failures retry with exponential backoff and jitter; exhausting
// the retry budget degrades the store to read-through/no-write mode (a
// background probe re-arms writes) instead of failing the sweep hot
// path. Only structural faults — closed store, unmarshalable record —
// are fatal.
func (s *Store) append(rec record) (int64, bool) {
	if s.closed {
		s.setFatal(ErrClosed)
		return 0, false
	}
	if s.fatal != nil || s.degradedErr != nil {
		return 0, false
	}
	line, err := encodeRecord(rec)
	if err != nil {
		s.setFatal(err)
		return 0, false
	}
	off := s.size
	if !s.writeRetrying(line) {
		return 0, false
	}
	s.size += int64(len(line))
	return off, true
}

// writeRetrying attempts one line write with bounded
// exponential-backoff retries. Called with s.mu held; the backoff
// sleeps hold the lock deliberately — a store whose disk is failing
// must not let other writers interleave half-states, and the total
// worst-case hold (sum of DefaultRetryBackoff doublings) is ~20ms.
func (s *Store) writeRetrying(line []byte) bool {
	attempts := 1 + s.opts.WriteRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.writeRetries++
			// Exponential backoff with up to 50% jitter, and a
			// truncate back to the last durable offset so a torn
			// partial write from the failed attempt can't corrupt the
			// segment mid-file.
			backoff := s.opts.RetryBackoff << (attempt - 1)
			backoff += time.Duration(rand.Int64N(int64(backoff)/2 + 1))
			time.Sleep(backoff)
			if err := s.f.Truncate(s.size); err != nil {
				lastErr = err
				continue
			}
		}
		if err := s.injectedWriteFault(); err != nil {
			lastErr = err
			continue
		}
		if _, err := s.f.Write(line); err != nil {
			lastErr = err
			continue
		}
		return true
	}
	s.writeFails++
	s.degrade(fmt.Errorf("store: append failed after %d attempts: %w", attempts, lastErr))
	return false
}

// injectedWriteFault evaluates the store write failpoints: an injected
// error fails the attempt; an injected slow write sleeps in place.
func (s *Store) injectedWriteFault() error {
	if err := faultinject.Eval(faultinject.StoreWriteError); err != nil {
		return err
	}
	return faultinject.Eval(faultinject.StoreWriteSlow)
}

// setFatal records an unrecoverable fault. The store stops writing for
// good; Err/Sync/Close surface the error.
func (s *Store) setFatal(err error) {
	if s.fatal == nil {
		s.fatal = err
	}
}

// degrade flips the store into read-through/no-write mode and starts
// the background probe that re-arms writes once the segment accepts
// them again. Called with s.mu held.
func (s *Store) degrade(err error) {
	if s.degradedErr != nil {
		return
	}
	s.degradedErr = err
	if !s.probing && !s.closed {
		s.probing = true
		go s.probeLoop()
	}
}

// probeLoop periodically re-probes a degraded segment until writes
// recover or the store closes.
func (s *Store) probeLoop() {
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			s.mu.Lock()
			s.probing = false
			s.mu.Unlock()
			return
		case <-t.C:
			if s.Probe() {
				return
			}
		}
	}
}

// Probe tests whether a degraded segment accepts writes again and, if
// so, re-arms appends. Returns true when the store is healthy (or
// permanently done probing). Exposed so tests and operators can force
// a recovery check without waiting out ProbeInterval.
func (s *Store) Probe() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.fatal != nil {
		s.probing = false
		return true
	}
	if s.degradedErr == nil {
		s.probing = false
		return true
	}
	if err := s.injectedWriteFault(); err != nil {
		return false
	}
	// Truncate to the last durable offset (clearing any torn bytes a
	// failed attempt left) and sync; success means the device is
	// writable again.
	if err := s.f.Truncate(s.size); err != nil {
		return false
	}
	if err := s.f.Sync(); err != nil {
		return false
	}
	s.degradedErr = nil
	s.probing = false
	s.recoveries++
	return true
}

// Lookup returns the committed result for a hash, reloading it from
// the segment when LRU pressure evicted the decoded record.
func (s *Store) Lookup(hash string) (sweep.CachedPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ce, ok := s.commits[hash]
	if !ok {
		s.misses++
		return sweep.CachedPoint{}, false
	}
	if p, ok := s.lru.get(hash); ok {
		s.hits++
		return p, true
	}
	p, err := s.readPointAt(ce.off, hash)
	if err != nil {
		// The index said committed but the segment disagrees —
		// quarantine the entry and surface a miss so the point
		// recomputes, rather than poisoning the whole store over one
		// rotten record.
		delete(s.commits, hash)
		s.lru.remove(hash)
		s.quarantined++
		s.misses++
		return sweep.CachedPoint{}, false
	}
	s.lru.put(hash, p)
	s.hits++
	return p, true
}

// readPointAt decodes the record line starting at off and returns its
// point payload after checking the hash matches.
func (s *Store) readPointAt(off int64, hash string) (sweep.CachedPoint, error) {
	r := bufio.NewReader(io.NewSectionReader(s.f, off, s.size-off))
	line, err := r.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: %w", hash, err)
	}
	rec, err := decodeLine(line)
	if err != nil {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: %w", hash, err)
	}
	if rec.Hash != hash || rec.Point == nil {
		return sweep.CachedPoint{}, fmt.Errorf("store: reload %s: offset holds %q", hash, rec.Hash)
	}
	return *rec.Point, nil
}

// LookupPartial returns the latest checkpoint of an uncommitted hash.
func (s *Store) LookupPartial(hash string) (sweep.CachedPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.ckpts[hash]
	return p, ok
}

// Checkpoint appends batch-boundary progress for a hash.
func (s *Store) Checkpoint(hash string, p sweep.CachedPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.append(record{Kind: "ckpt", Hash: hash, Point: &p}); ok {
		s.ckpts[hash] = p
	}
}

// Commit appends the final result for a hash, superseding its
// checkpoints.
func (s *Store) Commit(hash string, p sweep.CachedPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off, ok := s.append(record{Kind: "commit", Hash: hash, Point: &p}); ok {
		s.commits[hash] = &commitEntry{off: off, key: p.Key, shots: p.Shots}
		s.lru.put(hash, p)
		delete(s.ckpts, hash)
	}
}

// Invalidate drops one hash, appending a tombstone so the deletion
// survives restarts until the next compaction folds it away.
func (s *Store) Invalidate(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, hadCommit := s.commits[hash]
	_, hadCkpt := s.ckpts[hash]
	if !hadCommit && !hadCkpt {
		return false
	}
	if _, ok := s.append(record{Kind: "del", Hash: hash}); ok {
		delete(s.commits, hash)
		delete(s.ckpts, hash)
		s.lru.remove(hash)
		return true
	}
	return false
}

// Clear empties the store, atomically replacing the segment. The disk
// rewrite happens first: if it fails, the in-memory index still
// matches the (unchanged) segment instead of silently diverging until
// the next reopen resurrects everything.
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rewriteLocked(nil); err != nil {
		return err
	}
	s.commits = make(map[string]*commitEntry)
	s.ckpts = make(map[string]sweep.CachedPoint)
	s.lru = newPointLRU(s.opts.MaxCached)
	return nil
}

// Compact rewrites the segment to its live records only — the latest
// commit per hash plus the latest checkpoint of every uncommitted hash
// — via a temp file and an atomic rename, so readers of the directory
// always see a whole segment.
//
// Uncommitted checkpoints survive compaction deliberately: they are
// what makes a killed campaign resumable. The cost is that a
// checkpoint whose campaign is never resumed (e.g. its shot policy
// changed, moving the content hash) lingers until it is invalidated
// or the store is cleared; checkpoints are small, but a long-lived
// store that accumulates many abandoned ones reclaims them with
// Invalidate/Clear.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	hashes := make([]string, 0, len(s.commits))
	for h := range s.commits {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	recs := make([]record, 0, len(hashes)+len(s.ckpts))
	for _, h := range hashes {
		ce := s.commits[h]
		p, ok := s.lru.get(h)
		if !ok {
			var err error
			p, err = s.readPointAt(ce.off, h)
			if err != nil {
				// Unreadable on disk: quarantine the entry instead of
				// aborting the compaction — the rewrite simply drops it
				// and the point recomputes on next lookup.
				delete(s.commits, h)
				s.lru.remove(h)
				s.quarantined++
				continue
			}
		}
		pt := p
		recs = append(recs, record{Kind: "commit", Hash: h, Point: &pt})
	}
	ckptHashes := make([]string, 0, len(s.ckpts))
	for h := range s.ckpts {
		ckptHashes = append(ckptHashes, h)
	}
	sort.Strings(ckptHashes)
	for _, h := range ckptHashes {
		pt := s.ckpts[h]
		recs = append(recs, record{Kind: "ckpt", Hash: h, Point: &pt})
	}
	return s.rewriteLocked(recs)
}

// rewriteLocked atomically replaces the segment with the given records
// and reindexes the commit offsets against the new layout.
func (s *Store) rewriteLocked(recs []record) error {
	if s.closed {
		return ErrClosed
	}
	path := filepath.Join(s.dir, SegmentName)
	tmp, err := os.CreateTemp(s.dir, SegmentName+".tmp*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	offsets := make(map[string]int64, len(recs))
	var off int64
	for i := range recs {
		line, err := encodeRecord(recs[i])
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		if recs[i].Kind == "commit" {
			offsets[recs[i].Hash] = off
		}
		off += int64(len(line))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already happened: the old handle points at an
		// unlinked inode, so appending to it would silently lose every
		// later record. That is unrecoverable — fail fatally so appends
		// drop and Err/Sync/Close surface the fault.
		err = fmt.Errorf("store: compact: reopen after rename: %w", err)
		s.setFatal(err)
		s.closed = true
		s.f.Close()
		return err
	}
	s.f.Close()
	s.f = f
	s.size = off
	// A whole fresh segment on a new inode: whatever degraded the old
	// handle no longer applies.
	s.degradedErr = nil
	for h, ce := range s.commits {
		ce.off = offsets[h]
	}
	return nil
}

// Entries lists the committed points, hash-sorted.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.commits))
	for h, ce := range s.commits {
		out = append(out, Entry{Hash: h, Key: ce.key, Shots: ce.shots})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// Stats reports the store's current shape and traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Commits:      len(s.commits),
		Checkpoints:  len(s.ckpts),
		SegmentBytes: s.size,
		Hits:         s.hits,
		Misses:       s.misses,
		Resident:     s.lru.len(),
		Degraded:     s.degradedErr != nil,
		Quarantined:  s.quarantined,
		WriteRetries: s.writeRetries,
		WriteErrors:  s.writeFails,
		Recoveries:   s.recoveries,
	}
}

// Err returns the store's current fault, if any: a fatal error first,
// else the degraded-mode cause (wrapped, so callers can tell a store
// that will never write again from one that is waiting out a transient
// device fault).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errLocked()
}

func (s *Store) errLocked() error {
	if s.fatal != nil {
		return s.fatal
	}
	if s.degradedErr != nil {
		return fmt.Errorf("store: degraded (writes disabled, reads serve): %w", s.degradedErr)
	}
	return nil
}

// Sync flushes the segment to stable storage and surfaces any
// swallowed write fault.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.errLocked()
	}
	if err := s.f.Sync(); err != nil {
		s.degrade(err)
	}
	return s.errLocked()
}

// Close syncs and closes the segment. Appends after Close are dropped
// (recorded as ErrClosed), so a signal handler can Close concurrently
// with in-flight sweep workers.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.errLocked()
	}
	s.closed = true
	close(s.stopc) // stops the degraded-mode probe loop, if running
	if err := s.f.Sync(); err != nil {
		s.setFatal(err)
	}
	if err := s.f.Close(); err != nil {
		s.setFatal(err)
	}
	s.lock.Close() // releases the directory's single-writer flock
	return s.errLocked()
}

// pointLRU is a bounded hash → point map with least-recently-used
// eviction, implemented over an intrusive doubly linked list.
type pointLRU struct {
	cap   int
	items map[string]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // next to evict
}

type lruNode struct {
	hash       string
	point      sweep.CachedPoint
	prev, next *lruNode
}

func newPointLRU(capacity int) *pointLRU {
	return &pointLRU{cap: capacity, items: make(map[string]*lruNode)}
}

func (l *pointLRU) len() int { return len(l.items) }

func (l *pointLRU) get(hash string) (sweep.CachedPoint, bool) {
	n, ok := l.items[hash]
	if !ok {
		return sweep.CachedPoint{}, false
	}
	l.moveFront(n)
	return n.point, true
}

func (l *pointLRU) put(hash string, p sweep.CachedPoint) {
	if n, ok := l.items[hash]; ok {
		n.point = p
		l.moveFront(n)
		return
	}
	n := &lruNode{hash: hash, point: p}
	l.items[hash] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.items, evict.hash)
	}
}

func (l *pointLRU) remove(hash string) {
	if n, ok := l.items[hash]; ok {
		l.unlink(n)
		delete(l.items, hash)
	}
}

func (l *pointLRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *pointLRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *pointLRU) moveFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
