package store

// Chaos suite for the store: fault-injected writes, mid-segment
// corruption, and degraded-mode recovery. Every test asserts the store
// degrades — serving reads, quarantining rot, re-arming writes — and
// never poisons itself over a transient or localised fault.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radqec/internal/faultinject"
	"radqec/internal/sweep"
)

// chaosOpts keeps retry backoff out of the test wall-clock.
var chaosOpts = Options{RetryBackoff: 50 * time.Microsecond, ProbeInterval: time.Hour}

func pt(key string, shots, errs int) sweep.CachedPoint {
	return sweep.CachedPoint{Key: key, Shots: shots, Errors: errs, BatchRates: []float64{float64(errs) / float64(shots)}}
}

// TestChaosTransientWriteErrorDoesNotDisableCaching: a one-shot
// injected write error must be absorbed by the retry path — the store
// keeps caching for the rest of the process lifetime instead of
// disarming writes on first fault.
func TestChaosTransientWriteErrorDoesNotDisableCaching(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s := openT(t, dir, chaosOpts)
	if err := faultinject.Enable(faultinject.StoreWriteError, "error*1"); err != nil {
		t.Fatal(err)
	}
	s.Commit("h1", pt("k1", 8, 1))
	if err := s.Err(); err != nil {
		t.Fatalf("one transient write error left the store faulted: %v", err)
	}
	st := s.Stats()
	if st.Degraded {
		t.Fatal("one transient write error degraded the store")
	}
	if st.WriteRetries == 0 {
		t.Fatal("injected write error did not register a retry")
	}
	if st.WriteErrors != 0 {
		t.Fatalf("retried write counted as exhausted: %+v", st)
	}
	// Caching still works after the fault — this commit must persist.
	s.Commit("h2", pt("k2", 16, 3))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openT(t, dir, Options{})
	for _, h := range []string{"h1", "h2"} {
		if _, ok := r.Lookup(h); !ok {
			t.Fatalf("%s lost after a retried transient write error", h)
		}
	}
}

// TestChaosPersistentWriteFailureDegradesAndRecovers: exhausting the
// retry budget flips the store into read-through/no-write mode; reads
// keep serving, and a Probe after the fault clears re-arms writes.
func TestChaosPersistentWriteFailureDegradesAndRecovers(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s := openT(t, dir, chaosOpts)
	s.Commit("h1", pt("k1", 8, 1))
	if err := faultinject.Enable(faultinject.StoreWriteError, "error"); err != nil {
		t.Fatal(err)
	}
	s.Commit("h2", pt("k2", 16, 3))
	st := s.Stats()
	if !st.Degraded {
		t.Fatalf("persistent write failure did not degrade the store: %+v", st)
	}
	if st.WriteErrors == 0 {
		t.Fatal("exhausted write not counted")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Err() = %v, want a degraded-mode error", err)
	}
	// Read-through: the pre-fault commit still serves.
	if _, ok := s.Lookup("h1"); !ok {
		t.Fatal("degraded store stopped serving reads")
	}
	// Writes drop silently while degraded.
	s.Commit("h3", pt("k3", 4, 0))
	if _, ok := s.Lookup("h3"); ok {
		t.Fatal("degraded store accepted a write")
	}
	// Probe with the fault still active: stays degraded.
	if s.Probe() {
		t.Fatal("probe succeeded while the fault is still injected")
	}
	// Fault clears; the probe re-arms writes.
	faultinject.Disable(faultinject.StoreWriteError)
	if !s.Probe() {
		t.Fatal("probe failed after the fault cleared")
	}
	st = s.Stats()
	if st.Degraded || st.Recoveries != 1 {
		t.Fatalf("store did not recover: %+v", st)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("recovered store still faulted: %v", err)
	}
	s.Commit("h4", pt("k4", 32, 5))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openT(t, dir, Options{})
	if _, ok := r.Lookup("h4"); !ok {
		t.Fatal("post-recovery commit lost")
	}
	if _, ok := r.Lookup("h2"); ok {
		t.Fatal("commit dropped during the outage resurrected on reopen")
	}
}

// TestChaosBackgroundProbeRearmsWrites: the degraded store's own
// ticker-driven probe recovers without any explicit Probe call.
func TestChaosBackgroundProbeRearmsWrites(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	opts := chaosOpts
	opts.ProbeInterval = 5 * time.Millisecond
	s := openT(t, dir, opts)
	if err := faultinject.Enable(faultinject.StoreWriteError, "error*4"); err != nil {
		t.Fatal(err)
	}
	s.Commit("h1", pt("k1", 8, 1)) // 4 attempts all fail -> degrade
	if !s.Stats().Degraded {
		t.Fatal("store did not degrade")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("background probe never re-armed writes")
		}
		time.Sleep(time.Millisecond)
	}
	s.Commit("h2", pt("k2", 16, 3))
	if _, ok := s.Lookup("h2"); !ok {
		t.Fatal("write dropped after background recovery")
	}
}

// corruptLine flips one byte inside line i of the segment (inside the
// record payload, past the envelope prefix) — committed-record bit rot.
func corruptLine(t *testing.T, dir string, i int) {
	t.Helper()
	path := filepath.Join(dir, SegmentName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if i >= len(lines) || len(lines[i]) < 40 {
		t.Fatalf("segment has no line %d to corrupt", i)
	}
	// Flip a digit near the middle of the line: the JSON often stays
	// well-formed, so only the checksum can catch it.
	line := lines[i]
	for j := len(line) / 2; j < len(line)-1; j++ {
		if line[j] >= '0' && line[j] <= '9' {
			line[j] = '0' + ('9'-line[j])%10
			break
		}
	}
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosMidSegmentCorruptionQuarantined: a flipped byte inside a
// committed mid-segment record is quarantined on replay — later
// records still serve, the segment stays appendable, and Stats reports
// the quarantine.
func TestChaosMidSegmentCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Commit("h1", pt("k1", 8, 1))
	s.Commit("h2", pt("k2", 16, 3))
	s.Commit("h3", pt("k3", 32, 5))
	s.Close()
	corruptLine(t, dir, 1) // h2's record
	r := openT(t, dir, Options{})
	st := r.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (stats %+v)", st.Quarantined, st)
	}
	if st.Commits != 2 {
		t.Fatalf("commits = %d, want the 2 intact records", st.Commits)
	}
	if _, ok := r.Lookup("h1"); !ok {
		t.Fatal("record before the corruption lost")
	}
	if _, ok := r.Lookup("h3"); !ok {
		t.Fatal("record after the corruption lost — corruption treated as torn tail")
	}
	if _, ok := r.Lookup("h2"); ok {
		t.Fatal("corrupt record served")
	}
	// The segment stays appendable past quarantined damage.
	r.Commit("h4", pt("k4", 64, 9))
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openT(t, dir, Options{})
	for _, h := range []string{"h1", "h3", "h4"} {
		if _, ok := r2.Lookup(h); !ok {
			t.Fatalf("%s missing after append-past-quarantine reopen", h)
		}
	}
}

// TestChaosCRCCatchesSemanticFlip: a digit flip that keeps the line
// valid JSON — undetectable structurally — is still caught by the
// CRC32C envelope instead of silently serving wrong counts.
func TestChaosCRCCatchesSemanticFlip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Commit("h1", pt("k1", 1000, 37))
	s.Commit("h2", pt("k2", 2000, 74))
	s.Close()
	corruptLine(t, dir, 0)
	// The corrupted line must still be valid JSON for this test to
	// exercise the CRC (not the JSON parser).
	lines := segmentLines(t, dir)
	var probe map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &probe); err != nil {
		t.Skipf("flip broke JSON framing (%v); the parser path is covered elsewhere", err)
	}
	r := openT(t, dir, Options{})
	if _, ok := r.Lookup("h1"); ok {
		t.Fatal("CRC missed a semantic digit flip")
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if _, ok := r.Lookup("h2"); !ok {
		t.Fatal("intact record after the flip lost")
	}
}

// TestChaosLegacySegmentStillServes: pre-CRC segments (bare record
// lines, no envelope) replay and serve unchanged, and new appends use
// the envelope alongside them.
func TestChaosLegacySegmentStillServes(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"kind":"commit","hash":"old1","point":{"key":"k1","shots":8,"errors":1,"batch_rates":[0.125]}}` + "\n" +
		`{"kind":"ckpt","hash":"old2","point":{"key":"k2","shots":4,"errors":0,"batch_rates":[0]}}` + "\n"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SegmentName), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, Options{})
	if got, ok := s.Lookup("old1"); !ok || got.Shots != 8 {
		t.Fatalf("legacy commit not served: %+v, %v", got, ok)
	}
	if got, ok := s.LookupPartial("old2"); !ok || got.Shots != 4 {
		t.Fatalf("legacy checkpoint not served: %+v, %v", got, ok)
	}
	s.Commit("new1", pt("k3", 16, 2))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openT(t, dir, Options{})
	for _, h := range []string{"old1", "new1"} {
		if _, ok := r.Lookup(h); !ok {
			t.Fatalf("%s lost across a mixed legacy/envelope reopen", h)
		}
	}
}

// TestChaosSlowWriteFailpointDelaysButSucceeds: the slow-write
// failpoint stalls the append without failing it — latency injection
// must not register as a fault.
func TestChaosSlowWriteFailpointDelaysButSucceeds(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s := openT(t, dir, chaosOpts)
	if err := faultinject.Enable(faultinject.StoreWriteSlow, "sleep(20ms)*1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s.Commit("h1", pt("k1", 8, 1))
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow-write failpoint did not stall: %v", d)
	}
	st := s.Stats()
	if st.Degraded || st.WriteErrors != 0 || st.WriteRetries != 0 {
		t.Fatalf("latency injection registered as a fault: %+v", st)
	}
	if _, ok := s.Lookup("h1"); !ok {
		t.Fatal("stalled write lost")
	}
}
