// Package store persists sweep-point results on disk, content-
// addressed by a canonical hash of each point's full spec. The segment
// format is append-only NDJSON with batch-level checkpoints, so an
// interrupted campaign resumes from its last batch boundary and a
// crash can tear at most the final line (which recovery discards). An
// in-memory LRU bounds the decoded records held resident, and
// compaction rewrites the segment atomically.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalHash returns the content address of an arbitrary spec
// value: the SHA-256 of its canonical JSON form. Canonicalisation
// round-trips the value through an untyped decode and a re-encode, so
// object keys are emitted sorted — two specs that differ only in field
// order (or in the struct/map shape they were built from) hash
// identically, while any value difference, however deep, changes the
// hash.
func CanonicalHash(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: marshal spec: %w", err)
	}
	return CanonicalHashJSON(raw)
}

// CanonicalHashJSON is CanonicalHash over an already-encoded JSON
// document. Numbers are kept as their literal text (not round-tripped
// through float64), so 64-bit seeds above 2^53 canonicalise exactly.
func CanonicalHashJSON(raw []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return "", fmt.Errorf("store: canonicalize spec: %w", err)
	}
	canon, err := json.Marshal(v) // map keys sort on encode
	if err != nil {
		return "", fmt.Errorf("store: canonicalize spec: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
