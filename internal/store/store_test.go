package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"radqec/internal/sweep"
)

// mustRun executes a sweep under a background context, failing the
// test on a terminal error.
func mustRun(t *testing.T, cfg sweep.Config, pts []sweep.Point) []sweep.Result {
	t.Helper()
	res, err := sweep.Run(context.Background(), cfg, pts)
	if err != nil {
		t.Fatalf("sweep.Run: %v", err)
	}
	return res
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCanonicalHashStableAcrossFieldReordering(t *testing.T) {
	a := []byte(`{"seed":18446744073709551615,"phys":0.001,"key":"fig5/x","event":[0,0.5,1]}`)
	b := []byte(`{"event":[0,0.5,1],"key":"fig5/x","phys":0.001,"seed":18446744073709551615}`)
	ha, err := CanonicalHashJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := CanonicalHashJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("reordered fields changed the hash: %s vs %s", ha, hb)
	}
	// Struct and map encodings of the same value agree too: hashing is
	// over the canonical JSON, not the Go shape that produced it.
	type spec struct {
		Seed  uint64    `json:"seed"`
		Phys  float64   `json:"phys"`
		Key   string    `json:"key"`
		Event []float64 `json:"event"`
	}
	hs, err := CanonicalHash(spec{Seed: 18446744073709551615, Phys: 0.001, Key: "fig5/x", Event: []float64{0, 0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if hs != ha {
		t.Fatalf("struct vs raw JSON hash mismatch: %s vs %s", hs, ha)
	}
	// Any value change, however small, must move the hash.
	hc, err := CanonicalHashJSON([]byte(`{"event":[0,0.5,1],"key":"fig5/x","phys":0.001,"seed":18446744073709551614}`))
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("distinct seeds hashed identically")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	p := sweep.CachedPoint{Key: "fig5/a", Shots: 512, Errors: 3, BatchRates: []float64{0.01, 0}, Converged: true}
	s.Commit("h1", p)
	s.Checkpoint("h2", sweep.CachedPoint{Shots: 128, Errors: 1, BatchRates: []float64{1.0 / 128}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{})
	got, ok := r.Lookup("h1")
	if !ok || !reflect.DeepEqual(got, p) {
		t.Fatalf("Lookup(h1) = %+v, %v; want %+v", got, ok, p)
	}
	if _, ok := r.Lookup("h2"); ok {
		t.Fatal("checkpoint-only hash served as committed")
	}
	cp, ok := r.LookupPartial("h2")
	if !ok || cp.Shots != 128 || cp.Errors != 1 {
		t.Fatalf("LookupPartial(h2) = %+v, %v", cp, ok)
	}
	if es := r.Entries(); len(es) != 1 || es[0].Hash != "h1" || es[0].Key != "fig5/a" || es[0].Shots != 512 {
		t.Fatalf("Entries = %+v", es)
	}
}

func TestStoreCrashMidSegmentIgnoresTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	p1 := sweep.CachedPoint{Shots: 64, Errors: 2, BatchRates: []float64{2.0 / 64}, Converged: true}
	s.Commit("h1", p1)
	s.Commit("h2", sweep.CachedPoint{Shots: 64, Errors: 0, Converged: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn final record with no newline.
	path := filepath.Join(dir, SegmentName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"commit","hash":"h3","point":{"sho`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openT(t, dir, Options{})
	if _, ok := r.Lookup("h3"); ok {
		t.Fatal("torn record surfaced as a commit")
	}
	got, ok := r.Lookup("h1")
	if !ok || !reflect.DeepEqual(got, p1) {
		t.Fatalf("h1 lost after torn tail: %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("h2"); !ok {
		t.Fatal("h2 lost after torn tail")
	}
	// The torn bytes were truncated away, so appends keep the segment
	// parseable across another reopen.
	r.Commit("h4", sweep.CachedPoint{Shots: 1, Converged: true})
	r.Close()
	r2 := openT(t, dir, Options{})
	for _, h := range []string{"h1", "h2", "h4"} {
		if _, ok := r2.Lookup(h); !ok {
			t.Fatalf("%s missing after append-past-torn-tail reopen", h)
		}
	}
}

func TestStoreInvalidateAndTombstonePersistence(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Commit("h1", sweep.CachedPoint{Shots: 8, Converged: true})
	s.Commit("h2", sweep.CachedPoint{Shots: 8, Converged: true})
	if !s.Invalidate("h1") {
		t.Fatal("Invalidate(h1) = false")
	}
	if s.Invalidate("h1") {
		t.Fatal("double Invalidate(h1) = true")
	}
	if _, ok := s.Lookup("h1"); ok {
		t.Fatal("h1 survived invalidation")
	}
	s.Close()

	r := openT(t, dir, Options{})
	if _, ok := r.Lookup("h1"); ok {
		t.Fatal("tombstone did not survive reopen")
	}
	if _, ok := r.Lookup("h2"); !ok {
		t.Fatal("h2 lost")
	}
}

func TestStoreCompactDropsDeadRecordsAndKeepsLive(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	// h1: checkpoints superseded by a commit; h2: live checkpoint only;
	// h3: committed then invalidated.
	s.Checkpoint("h1", sweep.CachedPoint{Shots: 64, Errors: 1})
	s.Checkpoint("h1", sweep.CachedPoint{Shots: 128, Errors: 2})
	s.Commit("h1", sweep.CachedPoint{Key: "k1", Shots: 256, Errors: 3, Converged: true})
	s.Checkpoint("h2", sweep.CachedPoint{Shots: 64, Errors: 0})
	s.Commit("h3", sweep.CachedPoint{Shots: 8, Converged: true})
	s.Invalidate("h3")
	before := s.Stats().SegmentBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().SegmentBytes
	if after >= before {
		t.Fatalf("compaction did not shrink the segment: %d -> %d", before, after)
	}
	// Live state intact, through the rebuilt offsets and a reopen.
	check := func(st *Store) {
		t.Helper()
		got, ok := st.Lookup("h1")
		if !ok || got.Shots != 256 || got.Errors != 3 {
			t.Fatalf("h1 after compact = %+v, %v", got, ok)
		}
		if cp, ok := st.LookupPartial("h2"); !ok || cp.Shots != 64 {
			t.Fatalf("h2 checkpoint after compact = %+v, %v", cp, ok)
		}
		if _, ok := st.Lookup("h3"); ok {
			t.Fatal("invalidated h3 resurrected by compaction")
		}
	}
	check(s)
	s.Close()
	check(openT(t, dir, Options{}))
}

func TestStoreLRUEvictionReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxCached: 2})
	pts := map[string]sweep.CachedPoint{
		"a": {Shots: 1, Errors: 1, Converged: true},
		"b": {Shots: 2, Errors: 1, Converged: true},
		"c": {Shots: 3, Errors: 1, Converged: true},
	}
	for _, h := range []string{"a", "b", "c"} {
		s.Commit(h, pts[h])
	}
	if got := s.Stats().Resident; got != 2 {
		t.Fatalf("resident = %d, want 2 (LRU cap)", got)
	}
	// "a" was evicted; the lookup must transparently reload it from the
	// segment at its remembered offset.
	got, ok := s.Lookup("a")
	if !ok || !reflect.DeepEqual(got, pts["a"]) {
		t.Fatalf("evicted point reload = %+v, %v", got, ok)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked store succeeded")
	} else if !strings.Contains(err.Error(), "already open") {
		t.Fatalf("lock error = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

func TestStoreClear(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Commit("h1", sweep.CachedPoint{Shots: 8})
	s.Checkpoint("h2", sweep.CachedPoint{Shots: 4})
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Commits != 0 || st.Checkpoints != 0 || st.SegmentBytes != 0 {
		t.Fatalf("stats after clear = %+v", st)
	}
	s.Close()
	r := openT(t, dir, Options{})
	if _, ok := r.Lookup("h1"); ok {
		t.Fatal("clear did not persist")
	}
}

func TestStoreSegmentIsNDJSON(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Commit("h1", sweep.CachedPoint{Key: "k", Shots: 8, Errors: 1, BatchRates: []float64{0.125}})
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("segment lines = %d", len(lines))
	}
	var env struct {
		CRC uint32          `json:"crc"`
		Rec json.RawMessage `json:"rec"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatalf("segment line is not JSON: %v", err)
	}
	if env.Rec == nil {
		t.Fatalf("segment line carries no rec envelope: %s", lines[0])
	}
	var rec map[string]any
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		t.Fatalf("envelope rec is not JSON: %v", err)
	}
	if rec["kind"] != "commit" || rec["hash"] != "h1" {
		t.Fatalf("record = %v", rec)
	}
}

// TestResumeMatchesUninterruptedRun is the end-to-end determinism
// guarantee of the store + sweep pairing: a campaign killed after any
// batch boundary and resumed from its checkpoints produces exactly the
// results of an uninterrupted run — same counts, same batch stream.
func TestResumeMatchesUninterruptedRun(t *testing.T) {
	// A deterministic fake runner honouring the BatchRunner contract:
	// shot i's outcome depends only on i, so any batch split merges to
	// the same counts, like the real engines' split(seed, i) streams.
	outcome := func(i int) int {
		x := uint64(i)*2654435761 + 12345
		x ^= x >> 13
		if x%17 == 0 {
			return 1
		}
		return 0
	}
	point := func(hash string) sweep.Point {
		return sweep.Point{
			Key:  "pt/" + hash,
			Hash: hash,
			Prepare: func() sweep.BatchRunner {
				return func(start, n int) sweep.Counts {
					c := sweep.Counts{Shots: n}
					for i := start; i < start+n; i++ {
						c.Errors += outcome(i)
					}
					return c
				}
			},
		}
	}
	for ci, cfg := range []sweep.Config{
		{Policy: sweep.Policy{Shots: 1000}, Mechanism: sweep.Mechanism{Workers: 1}},                         // fixed mode
		{Policy: sweep.Policy{CI: 0.02, Batch: 64, MaxShots: 4000}, Mechanism: sweep.Mechanism{Workers: 1}}, // adaptive
		{Policy: sweep.Policy{CI: 0.02, Batch: 64, MaxShots: 4000, Align: 64}, Mechanism: sweep.Mechanism{Workers: 1}},
	} {
		// The reference run writes its own store: its segment then holds
		// one "ckpt" line per batch plus the final commit — the literal
		// disk trail an interrupted run leaves behind.
		refDir := t.TempDir()
		ref := openT(t, refDir, Options{})
		rcfg := cfg
		rcfg.Cache = ref
		full := mustRun(t, rcfg, []sweep.Point{point("h")})[0]
		ref.Close()
		lines := segmentLines(t, refDir)
		var ckpts []string
		for _, ln := range lines {
			if strings.Contains(ln, `"kind":"ckpt"`) {
				ckpts = append(ckpts, ln)
			}
		}
		// Every batch boundary except the last is checkpointed; the
		// final batch's state ships only in the commit record.
		if len(ckpts) != len(full.BatchRates)-1 || len(ckpts) < 2 {
			t.Fatalf("cfg %d: %d checkpoints for %d batches", ci, len(ckpts), len(full.BatchRates))
		}
		// Kill after every batch boundary: the store holds the first k
		// checkpoints and no commit. Resume and demand the exact
		// uninterrupted result.
		for k := 1; k <= len(ckpts); k++ {
			dir := t.TempDir()
			seg := strings.Join(ckpts[:k], "\n") + "\n" +
				`{"kind":"commit","hash":"torn` // a mid-append kill, too
			if err := os.WriteFile(filepath.Join(dir, SegmentName), []byte(seg), 0o644); err != nil {
				t.Fatal(err)
			}
			s := openT(t, dir, Options{})
			ccfg := cfg
			ccfg.Cache = s
			ccfg.Resume = true
			got := mustRun(t, ccfg, []sweep.Point{point("h")})[0]
			if got.Cached {
				t.Fatalf("cfg %d k=%d: resumed run reported Cached", ci, k)
			}
			assertSameResult(t, k, full, got)
			// A re-run against the now-committed store replays the
			// identical result without ever building the runner.
			ccfg2 := cfg
			ccfg2.Cache = s
			replay := mustRun(t, ccfg2, []sweep.Point{{Key: "pt/h", Hash: "h", Prepare: func() sweep.BatchRunner {
				t.Fatalf("cfg %d k=%d: replay invoked Prepare despite a committed result", ci, k)
				return nil
			}}})[0]
			if !replay.Cached {
				t.Fatalf("cfg %d k=%d: replay not served from cache", ci, k)
			}
			assertSameResult(t, k, full, replay)
			s.Close()
		}
	}
}

// segmentLines reads the store segment as its NDJSON lines.
func segmentLines(t *testing.T, dir string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
}

func assertSameResult(t *testing.T, k int, want, got sweep.Result) {
	t.Helper()
	if got.Shots != want.Shots || got.Errors != want.Errors {
		t.Fatalf("k=%d: counts (%d,%d), want (%d,%d)", k, got.Shots, got.Errors, want.Shots, want.Errors)
	}
	if !reflect.DeepEqual(got.BatchRates, want.BatchRates) {
		t.Fatalf("k=%d: batch rates %v, want %v", k, got.BatchRates, want.BatchRates)
	}
	if got.CILo != want.CILo || got.CIHi != want.CIHi || got.Tail != want.Tail || got.Converged != want.Converged {
		t.Fatalf("k=%d: derived stats diverged: %+v vs %+v", k, got, want)
	}
}
