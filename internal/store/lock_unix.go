//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f, held
// until the descriptor closes. The lock lives on a sidecar file (not
// the segment) because compaction replaces the segment inode.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
