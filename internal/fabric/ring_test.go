package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"
)

func hashes(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("point-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestRingDeterministicAcrossNodes(t *testing.T) {
	// Every node must compute identical ownership from the identical
	// peer list, whatever order it was given in.
	a := NewRing([]string{"n1:8080", "n2:8080", "n3:8080"})
	b := NewRing([]string{"n3:8080", "n1:8080", "n2:8080"})
	for _, h := range hashes(200) {
		if ao, bo := a.Owner(h, nil), b.Owner(h, nil); ao != bo {
			t.Fatalf("owner differs for %s: %q vs %q", h[:8], ao, bo)
		}
	}
}

func TestRingSpread(t *testing.T) {
	// Rendezvous hashing over SHA-256 inputs should not starve any
	// peer. With 3 peers and 600 hashes the expected share is 200;
	// accept anything within a generous factor.
	r := NewRing([]string{"n1:8080", "n2:8080", "n3:8080"})
	count := map[string]int{}
	for _, h := range hashes(600) {
		count[r.Owner(h, nil)]++
	}
	for p, n := range count {
		if n < 100 || n > 300 {
			t.Fatalf("peer %s owns %d of 600 hashes — spread too skewed: %v", p, n, count)
		}
	}
}

func TestRingRemovalOnlyMovesRemovedPeersHashes(t *testing.T) {
	// The fabric's failure story depends on this: marking a peer down
	// must not reshuffle ownership among the survivors.
	r := NewRing([]string{"n1:8080", "n2:8080", "n3:8080"})
	all := map[string]bool{"n1:8080": true, "n2:8080": true, "n3:8080": true}
	without2 := map[string]bool{"n1:8080": true, "n3:8080": true}
	for _, h := range hashes(300) {
		before := r.Owner(h, all)
		after := r.Owner(h, without2)
		if before != "n2:8080" && after != before {
			t.Fatalf("hash %s moved %q -> %q though its owner stayed alive", h[:8], before, after)
		}
		if before == "n2:8080" && after == "n2:8080" {
			t.Fatalf("hash %s still owned by removed peer", h[:8])
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing([]string{"n1:8080", "n1:8080", "", "n2:8080"})
	if got := len(r.Peers()); got != 2 {
		t.Fatalf("duplicate/empty peers not dropped: %v", r.Peers())
	}
	if o := r.Owner("abc", map[string]bool{}); o != "" {
		t.Fatalf("owner over empty alive set = %q, want \"\"", o)
	}
	single := NewRing([]string{"solo:1"})
	if o := single.Owner("abc", nil); o != "solo:1" {
		t.Fatalf("single-peer ring owner = %q", o)
	}
}

func TestLeaseClaimDenyExpiry(t *testing.T) {
	lt := NewLeaseTable()
	now := time.Unix(1000, 0)
	lt.now = func() time.Time { return now }

	ok, holder, _ := lt.Claim("h1", "n1", 10*time.Second)
	if !ok || holder != "n1" {
		t.Fatalf("fresh claim: ok=%v holder=%q", ok, holder)
	}
	// Re-entrant renewal by the same owner succeeds.
	if ok, _, _ := lt.Claim("h1", "n1", 10*time.Second); !ok {
		t.Fatal("same-owner renewal denied")
	}
	// A rival is denied while the lease is live, and sees the holder.
	ok, holder, remaining := lt.Claim("h1", "n2", 10*time.Second)
	if ok || holder != "n1" || remaining <= 0 {
		t.Fatalf("rival claim: ok=%v holder=%q remaining=%v", ok, holder, remaining)
	}
	// After expiry the rival takes it.
	now = now.Add(11 * time.Second)
	if ok, _, _ := lt.Claim("h1", "n2", 10*time.Second); !ok {
		t.Fatal("claim on expired lease denied")
	}
	if h := lt.Holder("h1"); h != "n2" {
		t.Fatalf("holder after expiry takeover = %q", h)
	}
	if lt.Granted() != 3 || lt.Denied() != 1 {
		t.Fatalf("counters granted=%d denied=%d, want 3/1", lt.Granted(), lt.Denied())
	}
}

func TestLeaseRelease(t *testing.T) {
	lt := NewLeaseTable()
	lt.Claim("h1", "n1", time.Minute)
	lt.Release("h1", "n2") // not the holder: no-op
	if h := lt.Holder("h1"); h != "n1" {
		t.Fatalf("release by non-holder dropped lease (holder=%q)", h)
	}
	lt.Release("h1", "n1")
	if h := lt.Holder("h1"); h != "" {
		t.Fatalf("lease survives holder release: %q", h)
	}
}
