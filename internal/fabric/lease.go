package fabric

import (
	"sync"
	"sync/atomic"
	"time"
)

// lease is one live compute claim on a content hash.
type lease struct {
	owner   string
	expires time.Time
}

// LeaseTable is a node's in-memory point-lease ledger — the
// authoritative single-flight arbiter for the hashes the node owns.
// A lease says "this node is computing this point until the TTL
// lapses"; it carries no result, only exclusion. Leases are
// deliberately not persisted: a restarted node has lost its in-flight
// computes anyway, and an expired or vanished lease merely lets a peer
// recompute a point — wasted shots, never a wrong table.
type LeaseTable struct {
	mu     sync.Mutex
	leases map[string]lease

	granted atomic.Int64
	denied  atomic.Int64

	// now is the clock, swappable in tests to exercise expiry without
	// sleeping.
	now func() time.Time
}

// NewLeaseTable builds an empty lease table.
func NewLeaseTable() *LeaseTable {
	return &LeaseTable{leases: make(map[string]lease), now: time.Now}
}

// Claim attempts to take the compute lease on hash for owner. It
// returns ok=true when the lease was granted (fresh, re-entrant
// renewal by the same owner, or expired and reassigned), or ok=false
// with the conflicting holder and its remaining TTL.
func (t *LeaseTable) Claim(hash, owner string, ttl time.Duration) (ok bool, holder string, remaining time.Duration) {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, live := t.leases[hash]; live && l.owner != owner && now.Before(l.expires) {
		t.denied.Add(1)
		return false, l.owner, l.expires.Sub(now)
	}
	t.leases[hash] = lease{owner: owner, expires: now.Add(ttl)}
	t.granted.Add(1)
	return true, owner, ttl
}

// Release drops owner's lease on hash, if it still holds it — called
// after the result commits, at which point the committed record (not
// the lease) is what excludes recomputation.
func (t *LeaseTable) Release(hash, owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, live := t.leases[hash]; live && l.owner == owner {
		delete(t.leases, hash)
	}
}

// Holder returns the live lease holder of hash, or "" when the hash is
// unleased or the lease has expired.
func (t *LeaseTable) Holder(hash string) string {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, live := t.leases[hash]; live && now.Before(l.expires) {
		return l.owner
	}
	return ""
}

// Granted and Denied are lifetime claim-outcome counters for /metrics.
func (t *LeaseTable) Granted() int64 { return t.granted.Load() }
func (t *LeaseTable) Denied() int64  { return t.denied.Load() }
