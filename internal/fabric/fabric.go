// Package fabric shards campaigns across a static ring of radqecd
// nodes. Every point's content hash is rendezvous-hashed onto the ring
// (ring.go); each node computes only the points it owns and resolves
// the rest from their owners over the v1 API, committing fetched
// results into its local store so its own tables finalize from the
// identical CachedPoint bytes a single-node run would have produced.
// Cross-node single-flight is a point-lease handshake (lease.go): a
// node that must take over a down or stalled owner's point first
// claims the lease at the owner, so two impatient nodes never both
// burn the shots.
//
// The design is symmetric: the node a client submits to fans the
// campaign out to every peer (marked Fabric so peers don't fan out
// again), and each node independently runs the full campaign over its
// owned subset. There is no leader — ownership is a pure function of
// (hash, alive set) every node computes locally — so the failure story
// reduces to the alive set: an unreachable peer is marked down, the
// ring recomputes over the survivors, and its points are taken over
// locally.
package fabric

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"radqec/internal/client"
	"radqec/internal/faultinject"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/trace"
)

// Options configures a Coordinator.
type Options struct {
	// Self is this node's own address as it appears in Peers.
	Self string
	// Peers is the full static ring, self included.
	Peers []string
	// Store is the node's result store; fetched remote results are
	// committed into it before the waiting point unparks.
	Store *store.Store
	// HTTPClient is shared by all peer clients (nil = a default).
	HTTPClient *http.Client

	// PollInterval is the owner-polling cadence of a watch loop and
	// the long-poll window passed to remote lookups (default 2s).
	PollInterval time.Duration
	// RetryLimit is how many consecutive failed calls a peer gets
	// before being marked down (default 3).
	RetryLimit int
	// DownFor is how long a down mark lasts before the peer is probed
	// again (default 15s).
	DownFor time.Duration
	// TakeoverPatience is how long a watch tolerates "owner alive but
	// point not committed" before claiming the compute lease from the
	// owner (default 30s). A held lease resets the clock.
	TakeoverPatience time.Duration
	// LeaseTTL bounds a granted compute lease (default 10s).
	LeaseTTL time.Duration
	// Logger receives the coordinator's diagnostics — peer down
	// marks, fan-out failures, takeovers — with trace/span ids
	// attached when the triggering campaign is sampled. nil picks
	// slog.Default().
	Logger *slog.Logger
}

func (o *Options) defaults() {
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.RetryLimit <= 0 {
		o.RetryLimit = 3
	}
	if o.DownFor <= 0 {
		o.DownFor = 15 * time.Second
	}
	if o.TakeoverPatience <= 0 {
		o.TakeoverPatience = 30 * time.Second
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
}

// peerState is the failure-detector record of one remote peer.
type peerState struct {
	failures  int
	downUntil time.Time
}

// Coordinator is a node's fabric brain: the ring, the per-peer
// clients, the failure detector, and the lease table peers claim
// against. It implements sweep.RemoteResolver, so plugging it into a
// sweep's Mechanism is all it takes to shard that sweep.
type Coordinator struct {
	opts   Options
	ring   *Ring
	leases *LeaseTable

	mu      sync.Mutex
	clients map[string]*client.Client
	peers   map[string]*peerState

	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
	takeovers    atomic.Int64
	peerSubmits  atomic.Int64
	peerFailures atomic.Int64
}

// New builds a coordinator. Self must appear in Peers and the ring
// must contain at least one peer.
func New(opts Options) (*Coordinator, error) {
	opts.defaults()
	ring := NewRing(opts.Peers)
	if len(ring.Peers()) == 0 {
		return nil, fmt.Errorf("fabric: empty peer ring")
	}
	found := false
	for _, p := range ring.Peers() {
		if p == opts.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("fabric: self %q not in peer ring %v", opts.Self, ring.Peers())
	}
	if opts.Store == nil {
		return nil, fmt.Errorf("fabric: a result store is required")
	}
	c := &Coordinator{
		opts:    opts,
		ring:    ring,
		leases:  NewLeaseTable(),
		clients: make(map[string]*client.Client),
		peers:   make(map[string]*peerState),
	}
	for _, p := range ring.Peers() {
		if p != opts.Self {
			c.clients[p] = client.New(p, opts.HTTPClient)
			c.peers[p] = &peerState{}
		}
	}
	return c, nil
}

// Self returns this node's ring address.
func (c *Coordinator) Self() string { return c.opts.Self }

// Peers returns the full static ring.
func (c *Coordinator) Peers() []string { return c.ring.Peers() }

// Leases returns the node's lease table — the server wires its
// /v1/points/{hash}/claim endpoint to it.
func (c *Coordinator) Leases() *LeaseTable { return c.leases }

// alive snapshots the currently-alive peer set (self always included).
func (c *Coordinator) alive() map[string]bool {
	now := time.Now()
	out := map[string]bool{c.opts.Self: true}
	c.mu.Lock()
	defer c.mu.Unlock()
	for p, st := range c.peers {
		out[p] = now.After(st.downUntil)
	}
	return out
}

// AliveCount returns how many ring members are currently considered
// alive.
func (c *Coordinator) AliveCount() int {
	n := 0
	for _, ok := range c.alive() {
		if ok {
			n++
		}
	}
	return n
}

// observe folds one call outcome into the failure detector. A success
// clears the peer's strike count and any down mark; RetryLimit
// consecutive failures mark it down for DownFor.
func (c *Coordinator) observe(peer string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.peers[peer]
	if !ok {
		return
	}
	if err == nil {
		st.failures = 0
		st.downUntil = time.Time{}
		return
	}
	c.peerFailures.Add(1)
	st.failures++
	if st.failures >= c.opts.RetryLimit {
		st.failures = 0
		st.downUntil = time.Now().Add(c.opts.DownFor)
		c.opts.Logger.Warn("fabric: peer marked down after repeated failures",
			"peer", peer, "down_for", c.opts.DownFor, "last_error", err.Error())
	}
}

// markDown forces a peer down immediately — used when a campaign
// stream to it collapses, which is stronger evidence than one failed
// poll.
func (c *Coordinator) markDown(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.peers[peer]; ok {
		st.failures = 0
		st.downUntil = time.Now().Add(c.opts.DownFor)
		c.opts.Logger.Warn("fabric: peer marked down", "peer", peer, "down_for", c.opts.DownFor)
	}
}

// Owned reports whether this node computes hash itself under the
// current alive set. Part of sweep.RemoteResolver.
func (c *Coordinator) Owned(hash string) bool {
	return c.ring.Owner(hash, c.alive()) == c.opts.Self
}

// Watch resolves one remotely-owned hash in the background and calls
// done exactly once: done(false) after the owner's committed result
// has been fetched and committed into the local store, or
// done(true) when this node must compute the point itself (owner down
// and ring reassigned it here, or a takeover lease granted). If ctx is
// cancelled first, done is never called — the scheduler's abort drain
// retires parked points. Part of sweep.RemoteResolver.
func (c *Coordinator) Watch(ctx context.Context, hash string, done func(takeover bool)) {
	go c.watch(ctx, hash, done)
}

func (c *Coordinator) watch(ctx context.Context, hash string, done func(takeover bool)) {
	start := time.Now()
	patience := start.Add(c.opts.TakeoverPatience)
	// Sampled campaigns carry their span context in ctx; the watch
	// resolves as one remote-fetch or takeover span covering the whole
	// park, plus a lease-wait span from the first claim attempt — the
	// "where did this point's 30 seconds go" answer.
	sc := trace.FromContext(ctx)
	var firstClaim time.Time
	resolve := func(name, detail string) {
		if !sc.Sampled() {
			return
		}
		if !firstClaim.IsZero() {
			ls := sc.StartAt(trace.SpanLeaseWait, "", firstClaim)
			ls.SetHash(hash)
			ls.End()
		}
		s := sc.StartAt(name, "", start)
		s.SetHash(hash)
		s.SetDetail(detail)
		s.End()
	}
	for {
		if ctx.Err() != nil {
			return
		}
		// A result already in the local store wins unconditionally —
		// a previous watch, campaign, or fan-in committed it.
		if _, ok := c.opts.Store.Lookup(hash); ok {
			c.remoteHits.Add(1)
			resolve(trace.SpanRemoteFetch, "committed result already in local store")
			done(false)
			return
		}
		owner := c.ring.Owner(hash, c.alive())
		if owner == c.opts.Self || owner == "" {
			// The ring reassigned the hash here (owner down). Claim
			// the local lease so concurrent campaigns on this node
			// still single-flight, then compute.
			if ok, _, _ := c.leases.Claim(hash, c.opts.Self, c.opts.LeaseTTL); ok {
				c.takeovers.Add(1)
				resolve(trace.SpanTakeover, "ring reassigned; computing locally")
				c.logTakeover(sc, hash, "owner down, ring reassigned")
				done(true)
				return
			}
			// Another local campaign holds the lease; its commit will
			// land in the store and the next iteration finds it.
			if !c.sleep(ctx) {
				return
			}
			continue
		}
		cp, found, err := c.lookupAt(ctx, owner, hash)
		c.observe(owner, err)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if !c.sleep(ctx) {
				return
			}
			continue
		}
		if found {
			c.opts.Store.Commit(hash, cp)
			c.remoteHits.Add(1)
			resolve(trace.SpanRemoteFetch, "fetched from "+owner)
			done(false)
			return
		}
		c.remoteMisses.Add(1)
		if time.Now().After(patience) {
			// The owner is alive but hasn't committed the point within
			// patience — ask it for the compute lease and take over if
			// granted. A held lease means it IS being computed; give
			// the holder a fresh patience window.
			if firstClaim.IsZero() {
				firstClaim = time.Now()
			}
			claim, err := c.clientFor(owner).ClaimPoint(ctx, hash, c.opts.Self, c.opts.LeaseTTL)
			c.observe(owner, err)
			switch {
			case err != nil:
				// Fall through to the retry sleep; repeated failures
				// mark the owner down and the ring takes over.
			case claim.Status == client.ClaimGranted:
				c.takeovers.Add(1)
				resolve(trace.SpanTakeover, "lease granted by "+owner)
				c.logTakeover(sc, hash, "lease granted by "+owner)
				done(true)
				return
			case claim.Status == client.ClaimCommitted:
				continue // next lookup fetches it
			default: // held
				patience = time.Now().Add(c.opts.TakeoverPatience)
			}
		}
		if !c.sleep(ctx) {
			return
		}
	}
}

// logTakeover reports a point takeover, attaching the campaign's
// trace/span ids when it is sampled.
func (c *Coordinator) logTakeover(sc trace.SpanContext, hash, why string) {
	log := c.opts.Logger
	if sc.Sampled() {
		log = log.With("trace_id", sc.TraceID().String(), "span_id", sc.SpanID().String())
	}
	log.Info("fabric: taking over point", "hash", hash, "reason", why)
}

// lookupAt fetches hash's committed result from peer, long-polling one
// poll interval so a point that commits during the window returns
// immediately.
func (c *Coordinator) lookupAt(ctx context.Context, peer, hash string) (sweep.CachedPoint, bool, error) {
	if err := faultinject.Eval(faultinject.PeerLookupError); err != nil {
		return sweep.CachedPoint{}, false, err
	}
	cctx, cancel := context.WithTimeout(ctx, c.opts.PollInterval+10*time.Second)
	defer cancel()
	return c.clientFor(peer).LookupPoint(cctx, hash, c.opts.PollInterval)
}

func (c *Coordinator) clientFor(peer string) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[peer]
}

// sleep waits one poll interval; false means ctx ended first.
func (c *Coordinator) sleep(ctx context.Context) bool {
	t := time.NewTimer(c.opts.PollInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// FanOut re-submits a client-originated campaign to every other ring
// peer, marked Fabric so they don't fan out again and coupled to this
// node's connection (detach=0) so peer campaigns die with the
// coordinator. Peer streams are drained in the background purely as
// liveness signals — results travel through the point API, not the
// streams. A peer that rejects the submit or drops its stream is
// marked down; the campaign proceeds with the survivors (worst case,
// entirely locally).
func (c *Coordinator) FanOut(ctx context.Context, req client.CampaignRequest) {
	req.Fabric = true
	detach := false
	for _, p := range c.ring.Peers() {
		if p == c.opts.Self {
			continue
		}
		go func(peer string) {
			c.peerSubmits.Add(1)
			if err := faultinject.Eval(faultinject.PeerSubmitError); err != nil {
				c.observe(peer, err)
				c.markDown(peer)
				return
			}
			stream, err := c.clientFor(peer).SubmitCampaign(ctx, req, client.SubmitOptions{Detach: &detach})
			c.observe(peer, err)
			if err != nil {
				c.opts.Logger.Warn("fabric: campaign fan-out failed", "peer", peer, "error", err.Error())
				c.markDown(peer)
				return
			}
			defer stream.Close()
			for {
				if _, err := stream.Next(); err != nil {
					if err != io.EOF && ctx.Err() == nil {
						c.markDown(peer)
					}
					return
				}
			}
		}(p)
	}
}

// Stats is the coordinator's /metrics snapshot.
type Stats struct {
	Peers         int
	PeersAlive    int
	RemoteHits    int64
	RemoteMisses  int64
	Takeovers     int64
	PeerSubmits   int64
	PeerFailures  int64
	LeasesGranted int64
	LeasesDenied  int64
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Peers:         len(c.ring.Peers()),
		PeersAlive:    c.AliveCount(),
		RemoteHits:    c.remoteHits.Load(),
		RemoteMisses:  c.remoteMisses.Load(),
		Takeovers:     c.takeovers.Load(),
		PeerSubmits:   c.peerSubmits.Load(),
		PeerFailures:  c.peerFailures.Load(),
		LeasesGranted: c.leases.Granted(),
		LeasesDenied:  c.leases.Denied(),
	}
}
