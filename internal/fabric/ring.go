package fabric

import "hash/fnv"

// Ring assigns content hashes to peers by rendezvous (highest-random-
// weight) hashing: every node scores each (peer, hash) pair and the
// highest score owns the hash. Unlike a consistent-hash circle,
// rendezvous needs no virtual nodes to spread load, every node
// computes ownership locally with no coordination, and removing a peer
// reassigns only that peer's hashes — exactly the stability the fabric
// needs when a node is marked down mid-campaign.
//
// The ring itself is immutable (the static -peers list); callers pass
// the currently-alive subset to Owner, so failure handling composes
// with ownership instead of mutating it.
type Ring struct {
	peers []string
}

// NewRing builds a ring over the full static peer list, dropping
// duplicates while preserving first-seen order.
func NewRing(peers []string) *Ring {
	seen := make(map[string]bool, len(peers))
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return &Ring{peers: out}
}

// Peers returns the full static peer list in ring order.
func (r *Ring) Peers() []string { return r.peers }

// score is FNV-1a 64 over peer + NUL + hash. FNV is not a
// cryptographic hash, but the input already contains a SHA-256 content
// hash, so the scores inherit its spread; what matters here is that
// every node computes the identical score from the identical strings.
func score(peer, hash string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(hash))
	return h.Sum64()
}

// Owner returns the peer owning hash among the alive set (nil alive
// means every peer is alive). Ties — vanishingly unlikely but cheap to
// make deterministic — break toward the lexically smaller peer.
// Returns "" only when no peer is alive.
func (r *Ring) Owner(hash string, alive map[string]bool) string {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		if alive != nil && !alive[p] {
			continue
		}
		s := score(p, hash)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}
