package arch

import (
	"testing"
	"testing/quick"

	"radqec/internal/circuit"
	"radqec/internal/rng"
	"radqec/internal/stab"
)

func TestLinear(t *testing.T) {
	topo := Linear(5)
	if topo.Graph.N() != 5 || topo.Graph.NumEdges() != 4 {
		t.Fatalf("linear-5: %d vertices, %d edges", topo.Graph.N(), topo.Graph.NumEdges())
	}
	if !topo.Graph.Connected() {
		t.Fatal("linear not connected")
	}
}

func TestMesh(t *testing.T) {
	topo := Mesh(5, 6)
	if topo.Graph.N() != 30 {
		t.Fatalf("mesh-5x6 has %d vertices", topo.Graph.N())
	}
	// Grid edge count: h*(w-1) + w*(h-1).
	want := 6*4 + 5*5
	if got := topo.Graph.NumEdges(); got != want {
		t.Fatalf("mesh edges = %d, want %d", got, want)
	}
	if !topo.Graph.Connected() {
		t.Fatal("mesh not connected")
	}
}

func TestMeshPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mesh(0, 3)
}

func TestComplete(t *testing.T) {
	topo := Complete(6)
	if got := topo.Graph.NumEdges(); got != 15 {
		t.Fatalf("complete-6 edges = %d", got)
	}
	for v := 0; v < 6; v++ {
		if topo.Graph.Degree(v) != 5 {
			t.Fatalf("vertex %d degree %d", v, topo.Graph.Degree(v))
		}
	}
}

func TestIBMTopologies(t *testing.T) {
	cases := []struct {
		topo      Topology
		wantN     int
		wantEdges int
	}{
		{Almaden(), 20, 23},
		{Johannesburg(), 20, 24},
		{Cairo(), 27, 28},
		{Cambridge(), 28, 30},
		{Brooklyn(), 65, 72},
	}
	for _, c := range cases {
		if c.topo.Graph.N() != c.wantN {
			t.Fatalf("%s: %d qubits, want %d", c.topo.Name, c.topo.Graph.N(), c.wantN)
		}
		if got := c.topo.Graph.NumEdges(); got != c.wantEdges {
			t.Fatalf("%s: %d edges, want %d", c.topo.Name, got, c.wantEdges)
		}
		if !c.topo.Graph.Connected() {
			t.Fatalf("%s: not connected", c.topo.Name)
		}
	}
}

func TestHeavyHexDegreeBound(t *testing.T) {
	// Heavy-hex lattices have maximum degree 3.
	for _, topo := range []Topology{Cairo(), Brooklyn()} {
		for v := 0; v < topo.Graph.N(); v++ {
			if d := topo.Graph.Degree(v); d > 3 {
				t.Fatalf("%s vertex %d degree %d > 3", topo.Name, v, d)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		topo, err := ByName(name, 10)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if topo.Graph.N() < 10 {
			t.Fatalf("ByName(%s) returned %d qubits", name, topo.Graph.N())
		}
	}
	if _, err := ByName("nonexistent", 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := ByName("almaden", 25); err == nil {
		t.Fatal("oversized request on fixed device accepted")
	}
}

func TestByNameMeshGrows(t *testing.T) {
	topo, err := ByName("mesh", 40)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Graph.N() < 40 {
		t.Fatalf("mesh did not grow: %d", topo.Graph.N())
	}
}

func ghzCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, n)
	c.AddQReg("data", n)
	c.AddCReg("c", n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// longRange builds a circuit whose CNOTs span distant qubits, forcing
// SWAP insertion on sparse devices.
func longRange(n int) *circuit.Circuit {
	c := circuit.New(n, 1)
	c.AddCReg("c", 1)
	c.H(0)
	c.CNOT(0, n-1)
	c.CNOT(n-1, 0)
	c.Measure(0, 0)
	return c
}

// star builds a circuit where qubit 0 interacts with every other qubit
// repeatedly; its interaction graph K1,(n-1) cannot embed in low-degree
// devices, forcing routing.
func star(n int) *circuit.Circuit {
	c := circuit.New(n, 0)
	for round := 0; round < 2; round++ {
		for q := 1; q < n; q++ {
			c.CNOT(0, q)
		}
	}
	return c
}

func TestTranspileLayoutFollowsInteractions(t *testing.T) {
	// A GHZ chain's interaction graph is a path; the layout must place
	// consecutive chain partners on adjacent vertices of a line device,
	// leaving no SWAPs to insert.
	c := ghzCircuit(6)
	topo := Linear(6)
	tr, err := Transpile(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount != 0 {
		t.Fatalf("chain on line needed %d swaps", tr.SwapCount)
	}
	if err := VerifyRouted(tr); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutInterleavesByAffinity(t *testing.T) {
	// A stabilizer-style circuit d0-m0-d1-m1-d2 (CNOTs d_i->m_i and
	// d_{i+1}->m_i) must be laid out with measure qubits between their
	// data partners, not in register order.
	c := circuit.New(5, 0)
	// data = 0,1,2; measure = 3,4
	c.CNOT(0, 3)
	c.CNOT(1, 3)
	c.CNOT(1, 4)
	c.CNOT(2, 4)
	tr, err := Transpile(c, Linear(5))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount != 0 {
		t.Fatalf("interleavable chain needed %d swaps", tr.SwapCount)
	}
	// Physical neighbors of measure qubit 3 must include data 0 and 1.
	p3 := tr.Initial.LogToPhys[3]
	p0, p1 := tr.Initial.LogToPhys[0], tr.Initial.LogToPhys[1]
	d03 := abs(p0 - p3)
	d13 := abs(p1 - p3)
	if d03 != 1 || d13 != 1 {
		t.Fatalf("measure qubit not between its data partners: phys(d0)=%d phys(d1)=%d phys(m0)=%d", p0, p1, p3)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTranspileNoSwapsOnComplete(t *testing.T) {
	c := longRange(8)
	tr, err := Transpile(c, Complete(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount != 0 {
		t.Fatalf("complete graph required %d swaps", tr.SwapCount)
	}
}

func TestTranspileInsertsSwapsOnLinear(t *testing.T) {
	// A degree-7 star cannot embed in a line (max degree 2): the router
	// must insert SWAPs no matter the layout.
	c := star(8)
	tr, err := Transpile(c, Linear(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SwapCount == 0 {
		t.Fatal("linear topology needed no swaps for a star circuit")
	}
	if err := VerifyRouted(tr); err != nil {
		t.Fatal(err)
	}
}

func TestTranspileTooSmallDevice(t *testing.T) {
	if _, err := Transpile(ghzCircuit(10), Linear(4)); err == nil {
		t.Fatal("undersized device accepted")
	}
}

// runCircuit executes a circuit on the tableau simulator and returns the
// classical bits.
func runCircuit(c *circuit.Circuit, seed uint64) []int {
	tab := stab.New(c.NumQubits)
	src := rng.New(seed)
	bits := make([]int, c.NumClbits)
	for _, op := range c.Ops {
		switch op.Kind {
		case circuit.KindH:
			tab.H(op.Qubits[0])
		case circuit.KindX:
			tab.X(op.Qubits[0])
		case circuit.KindY:
			tab.Y(op.Qubits[0])
		case circuit.KindZ:
			tab.Z(op.Qubits[0])
		case circuit.KindS:
			tab.S(op.Qubits[0])
		case circuit.KindCNOT:
			tab.CNOT(op.Qubits[0], op.Qubits[1])
		case circuit.KindCZ:
			tab.CZ(op.Qubits[0], op.Qubits[1])
		case circuit.KindSWAP:
			tab.SWAP(op.Qubits[0], op.Qubits[1])
		case circuit.KindMeasure:
			bits[op.Clbit] = tab.MeasureZ(op.Qubits[0], src)
		case circuit.KindReset:
			tab.Reset(op.Qubits[0], src)
		}
	}
	return bits
}

func TestTranspilePreservesSemantics(t *testing.T) {
	// The routed circuit must produce identical classical outcomes to
	// the logical circuit when driven by the same random stream.
	topos := []Topology{Linear(12), Mesh(4, 3), Complete(12), Almaden()}
	for _, topo := range topos {
		c := ghzCircuit(8)
		tr, err := Transpile(c, topo)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		if err := VerifyRouted(tr); err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		for seed := uint64(0); seed < 10; seed++ {
			want := runCircuit(c, seed)
			got := runCircuit(tr.Circuit, seed)
			for b := range want {
				if want[b] != got[b] {
					t.Fatalf("%s seed %d: bit %d = %d, want %d", topo.Name, seed, b, got[b], want[b])
				}
			}
		}
	}
}

func TestTranspileSemanticsProperty(t *testing.T) {
	topo := Cairo()
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		const n = 6
		c := circuit.New(n, n)
		c.AddCReg("c", n)
		for i := 0; i < 25; i++ {
			switch src.Intn(4) {
			case 0:
				c.H(src.Intn(n))
			case 1:
				c.X(src.Intn(n))
			case 2:
				a := src.Intn(n)
				b := (a + 1 + src.Intn(n-1)) % n
				c.CNOT(a, b)
			case 3:
				c.S(src.Intn(n))
			}
		}
		for q := 0; q < n; q++ {
			c.Measure(q, q)
		}
		tr, err := Transpile(c, topo)
		if err != nil || VerifyRouted(tr) != nil {
			return false
		}
		for s := uint64(0); s < 3; s++ {
			want := runCircuit(c, seed^s)
			got := runCircuit(tr.Circuit, seed^s)
			for b := range want {
				if want[b] != got[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoleOf(t *testing.T) {
	c := circuit.New(0, 0)
	c.AddQReg("data", 3)
	c.AddQReg("mz", 2)
	c.H(0)
	tr, err := Transpile(c, Mesh(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	dataCount, mzCount := 0, 0
	for p := 0; p < 30; p++ {
		switch tr.RoleOf(p) {
		case "data":
			dataCount++
		case "mz":
			mzCount++
		}
	}
	if dataCount != 3 || mzCount != 2 {
		t.Fatalf("roles: %d data, %d mz", dataCount, mzCount)
	}
}

func TestCompactLayoutIsConnected(t *testing.T) {
	c := ghzCircuit(9)
	tr, err := Transpile(c, Brooklyn())
	if err != nil {
		t.Fatal(err)
	}
	var placed []int
	for _, p := range tr.Initial.LogToPhys {
		placed = append(placed, p)
	}
	if !tr.Topo.Graph.InducedConnected(placed) {
		t.Fatalf("initial layout not a connected patch: %v", placed)
	}
}

func TestUsedQubits(t *testing.T) {
	c := ghzCircuit(4)
	tr, err := Transpile(c, Linear(10))
	if err != nil {
		t.Fatal(err)
	}
	used := tr.Used()
	if len(used) < 4 {
		t.Fatalf("used = %v", used)
	}
}

func TestSwapCountGrowsWithSparsity(t *testing.T) {
	// Observation VIII: sparse topologies force more SWAPs for the same
	// high-degree circuit.
	c := star(16)
	trLinear, err := Transpile(c, Linear(16))
	if err != nil {
		t.Fatal(err)
	}
	trMesh, err := Transpile(c.Clone(), Mesh(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if trLinear.SwapCount <= trMesh.SwapCount {
		t.Fatalf("linear swaps (%d) should exceed mesh swaps (%d)", trLinear.SwapCount, trMesh.SwapCount)
	}
}
