package arch

import "fmt"

// HeavyHex generates an IBM-style heavy-hexagon lattice with rows cell
// rows and cols cell columns. The lattice alternates full qubit rows
// (the hexagon tops/bottoms) with sparse bridge rows, matching the
// pattern of the Falcon (27q) and Hummingbird (65q) processors; the
// fixed Cairo and Brooklyn maps in this package are instances of the
// same family. Use it to extrapolate the Figure 8 architecture study to
// device generations beyond the paper.
//
// Construction: full rows have 2*cols+1 qubits. Between consecutive
// full rows sits a bridge row with cols+1 qubits; bridge qubit b of an
// even gap connects to column 4*(b/2) offsets... concretely, bridges
// attach at every fourth position, staggered by two positions on
// alternating gaps, exactly like the published heavy-hex devices.
func HeavyHex(rows, cols int) Topology {
	if rows < 1 || cols < 1 {
		panic("arch: heavy-hex dimensions must be positive")
	}
	rowLen := 4*cols + 3
	// Qubit ids: full row r occupies a contiguous block, followed by its
	// bridge row (if any).
	fullStart := make([]int, rows+1)
	bridgeStart := make([]int, rows)
	bridgeCount := cols + 1
	next := 0
	for r := 0; r <= rows; r++ {
		fullStart[r] = next
		next += rowLen
		if r < rows {
			bridgeStart[r] = next
			next += bridgeCount
		}
	}
	g := fromEdges(fmt.Sprintf("heavyhex-%dx%d", rows, cols), next, nil)
	// Horizontal chains along every full row.
	for r := 0; r <= rows; r++ {
		for i := 0; i+1 < rowLen; i++ {
			g.Graph.AddEdge(fullStart[r]+i, fullStart[r]+i+1)
		}
	}
	// Bridges: gap r connects full rows r and r+1. On even gaps the
	// bridges sit at positions 0, 4, 8, ...; on odd gaps at 2, 6, 10, ...
	for r := 0; r < rows; r++ {
		offset := 0
		if r%2 == 1 {
			offset = 2
		}
		for b := 0; b < bridgeCount; b++ {
			pos := offset + 4*b
			if pos >= rowLen {
				break
			}
			bridge := bridgeStart[r] + b
			g.Graph.AddEdge(fullStart[r]+pos, bridge)
			g.Graph.AddEdge(bridge, fullStart[r+1]+pos)
		}
	}
	return g
}
