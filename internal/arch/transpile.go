package arch

import (
	"fmt"

	"radqec/internal/circuit"
)

// Layout maps logical circuit qubits onto physical device qubits.
type Layout struct {
	// LogToPhys[l] is the physical qubit holding logical qubit l.
	LogToPhys []int
	// PhysToLog[p] is the logical qubit on physical qubit p, -1 if none.
	PhysToLog []int
}

func newLayout(numLogical, numPhysical int) Layout {
	l := Layout{
		LogToPhys: make([]int, numLogical),
		PhysToLog: make([]int, numPhysical),
	}
	for i := range l.LogToPhys {
		l.LogToPhys[i] = -1
	}
	for i := range l.PhysToLog {
		l.PhysToLog[i] = -1
	}
	return l
}

func (l Layout) clone() Layout {
	return Layout{
		LogToPhys: append([]int(nil), l.LogToPhys...),
		PhysToLog: append([]int(nil), l.PhysToLog...),
	}
}

func (l *Layout) place(logical, physical int) {
	l.LogToPhys[logical] = physical
	l.PhysToLog[physical] = logical
}

func (l *Layout) swapPhysical(a, b int) {
	la, lb := l.PhysToLog[a], l.PhysToLog[b]
	l.PhysToLog[a], l.PhysToLog[b] = lb, la
	if la >= 0 {
		l.LogToPhys[la] = b
	}
	if lb >= 0 {
		l.LogToPhys[lb] = a
	}
}

// Transpiled is a circuit routed onto a hardware topology.
type Transpiled struct {
	// Circuit operates on physical qubit indices (width = device size).
	Circuit *circuit.Circuit
	// Topo is the target device.
	Topo Topology
	// Initial is the layout before the first operation; Final after the
	// last (SWAP insertion permutes the mapping over time).
	Initial Layout
	Final   Layout
	// SwapCount is the number of inserted SWAP gates (the routing
	// overhead Observation VIII correlates with fault spread).
	SwapCount int
	// Source is the logical circuit that was transpiled.
	Source *circuit.Circuit
}

// Used returns the sorted list of physical qubits touched by any
// operation of the routed circuit.
func (t *Transpiled) Used() []int {
	seen := make([]bool, t.Circuit.NumQubits)
	for _, op := range t.Circuit.Ops {
		for _, q := range op.Qubits {
			seen[q] = true
		}
	}
	var out []int
	for q, s := range seen {
		if s {
			out = append(out, q)
		}
	}
	return out
}

// RoleOf returns the register role ("data", "mz", ...) of the logical
// qubit initially placed on physical qubit p, or "" when p starts empty.
// Figure 8 colours architecture nodes by exactly this attribution.
func (t *Transpiled) RoleOf(p int) string {
	l := t.Initial.PhysToLog[p]
	if l < 0 {
		return ""
	}
	return t.Source.QubitRole(l)
}

// LayoutStrategy selects how Transpile places logical qubits initially.
type LayoutStrategy int

const (
	// LayoutCompact grows a connected patch by BFS from the
	// highest-degree vertex (identity on exact-fit devices). Default.
	LayoutCompact LayoutStrategy = iota
	// LayoutTrivial maps logical qubit i to physical qubit i. The
	// router ablation baseline.
	LayoutTrivial
)

// Transpile routes the logical circuit onto the topology: it chooses an
// initial layout, emits each operation on physical indices, and inserts
// SWAP chains along shortest paths whenever a two-qubit gate spans
// non-adjacent physical qubits. This mirrors the role of the Qiskit
// transpiler in the paper (default optimisation, free qubit placement).
func Transpile(c *circuit.Circuit, topo Topology) (*Transpiled, error) {
	return TranspileWithLayout(c, topo, LayoutCompact)
}

// TranspileWithLayout is Transpile with an explicit layout strategy.
func TranspileWithLayout(c *circuit.Circuit, topo Topology, strategy LayoutStrategy) (*Transpiled, error) {
	n := topo.Graph.N()
	if n < c.NumQubits {
		return nil, fmt.Errorf("arch: %s has %d qubits, circuit needs %d", topo.Name, n, c.NumQubits)
	}
	var layout Layout
	if strategy == LayoutTrivial {
		layout = newLayout(c.NumQubits, n)
		for i := 0; i < c.NumQubits; i++ {
			layout.place(i, i)
		}
	} else {
		layout = initialLayout(c, topo)
	}
	out := circuit.New(n, c.NumClbits)
	out.CRegs = append([]circuit.Register(nil), c.CRegs...)
	result := &Transpiled{
		Topo:    topo,
		Initial: layout.clone(),
		Source:  c,
	}
	// Interaction degree per logical qubit: when routing, the busier
	// endpoint (the "hub", e.g. a readout ancilla fanning in from every
	// data qubit) is the one that travels, so its many partners stay
	// put. This mirrors what lookahead routers converge to and keeps the
	// SWAP count near the theoretical minimum for fan-in patterns.
	interDeg := make([]int, c.NumQubits)
	for _, op := range c.Ops {
		if len(op.Qubits) == 2 && op.Kind != circuit.KindBarrier {
			interDeg[op.Qubits[0]]++
			interDeg[op.Qubits[1]]++
		}
	}
	cur := layout
	for _, op := range c.Ops {
		switch {
		case op.Kind == circuit.KindBarrier:
			phys := make([]int, 0, len(op.Qubits))
			for _, q := range op.Qubits {
				phys = append(phys, cur.LogToPhys[q])
			}
			out.Barrier(phys...)
		case len(op.Qubits) == 2:
			la, lb := op.Qubits[0], op.Qubits[1]
			a, b := cur.LogToPhys[la], cur.LogToPhys[lb]
			if !topo.Graph.HasEdge(a, b) {
				// Move the higher-degree endpoint toward the other.
				src, dst := a, b
				if interDeg[la] < interDeg[lb] {
					src, dst = b, a
				}
				path := topo.Graph.ShortestPath(src, dst)
				if path == nil {
					return nil, fmt.Errorf("arch: %s disconnects qubits %d and %d", topo.Name, a, b)
				}
				for i := 0; i+2 < len(path); i++ {
					out.SWAP(path[i], path[i+1])
					cur.swapPhysical(path[i], path[i+1])
					result.SwapCount++
				}
				a, b = cur.LogToPhys[la], cur.LogToPhys[lb]
			}
			emit2(out, op.Kind, a, b)
		default:
			p := cur.LogToPhys[op.Qubits[0]]
			emit1(out, op, p)
		}
	}
	result.Circuit = out
	result.Final = cur
	return result, nil
}

func emit1(out *circuit.Circuit, op circuit.Op, p int) {
	switch op.Kind {
	case circuit.KindH:
		out.H(p)
	case circuit.KindX:
		out.X(p)
	case circuit.KindY:
		out.Y(p)
	case circuit.KindZ:
		out.Z(p)
	case circuit.KindS:
		out.S(p)
	case circuit.KindMeasure:
		out.Measure(p, op.Clbit)
	case circuit.KindReset:
		out.Reset(p)
	default:
		panic(fmt.Sprintf("arch: unexpected single-qubit op %v", op.Kind))
	}
}

func emit2(out *circuit.Circuit, kind circuit.GateKind, a, b int) {
	switch kind {
	case circuit.KindCNOT:
		out.CNOT(a, b)
	case circuit.KindCZ:
		out.CZ(a, b)
	case circuit.KindSWAP:
		out.SWAP(a, b)
	default:
		panic(fmt.Sprintf("arch: unexpected two-qubit op %v", kind))
	}
}

// initialLayout places logical qubits by interaction affinity, the way
// production transpilers (SABRE and friends) do: qubits that share
// two-qubit gates land on nearby physical vertices, which interleaves
// data and measure qubits along the stabilizer chains. This matters for
// the radiation study — a spatially contiguous lattice fault then hits a
// realistic mix of qubit roles rather than a register-ordered block.
func initialLayout(c *circuit.Circuit, topo Topology) Layout {
	n := topo.Graph.N()
	layout := newLayout(c.NumQubits, n)
	if c.NumQubits == 0 {
		return layout
	}
	// Interaction graph: weight = number of shared two-qubit gates.
	inter := make([]map[int]int, c.NumQubits)
	for i := range inter {
		inter[i] = make(map[int]int)
	}
	for _, op := range c.Ops {
		if len(op.Qubits) == 2 && op.Kind != circuit.KindBarrier {
			a, b := op.Qubits[0], op.Qubits[1]
			inter[a][b]++
			inter[b][a]++
		}
	}
	// Place logical qubits in circuit first-use order (the forward-pass
	// heuristic of SABRE-style transpilers): by the time a qubit is
	// placed, the partners of its earliest gates already have homes, so
	// stabilizer chains interleave data and measure qubits naturally.
	order := make([]int, 0, c.NumQubits)
	seen := make([]bool, c.NumQubits)
	for _, op := range c.Ops {
		if op.Kind == circuit.KindBarrier {
			continue
		}
		for _, q := range op.Qubits {
			if !seen[q] {
				seen[q] = true
				order = append(order, q)
			}
		}
	}
	for l := 0; l < c.NumQubits; l++ {
		if !seen[l] {
			order = append(order, l)
		}
	}
	dist := topo.Graph.AllPairsShortestPaths()
	// Seed choice: when the circuit nearly fills the device, start at
	// the periphery so the placement walk has room to unfold; on large
	// devices start at the center where connectivity is richest.
	var center int
	if 2*c.NumQubits > n {
		center = graphPeriphery(topo, dist)
	} else {
		center = graphCenter(topo, dist)
	}
	free := make([]bool, n)
	for v := range free {
		free[v] = true
	}
	freeNeighbors := func(v int) int {
		k := 0
		for _, w := range topo.Graph.Neighbors(v) {
			if free[w] {
				k++
			}
		}
		return k
	}
	for i, l := range order {
		if i == 0 {
			layout.place(l, center)
			free[center] = false
			continue
		}
		// Choose the free vertex minimising the interaction-weighted
		// distance to placed partners; break ties by Warnsdorff's rule
		// (fewest onward free neighbors), which makes the placement
		// walk hug the device boundary and snake through grids without
		// leaving dead ends. Final tie: lower index, for determinism.
		best, bestCost, bestRoom := -1, 0, 0
		for v := 0; v < n; v++ {
			if !free[v] {
				continue
			}
			cost := 0
			reachable := true
			for nb, w := range inter[l] {
				p := layout.LogToPhys[nb]
				if p < 0 {
					continue
				}
				d := dist[v][p]
				if d < 0 {
					reachable = false
					break
				}
				cost += w * d
			}
			if !reachable {
				continue
			}
			room := freeNeighbors(v)
			if best == -1 || cost < bestCost || (cost == bestCost && room < bestRoom) {
				best, bestCost, bestRoom = v, cost, room
			}
		}
		if best == -1 {
			// Disconnected leftovers: take any free vertex.
			for v := 0; v < n; v++ {
				if free[v] {
					best = v
					break
				}
			}
		}
		layout.place(l, best)
		free[best] = false
	}
	return layout
}

// graphPeriphery returns a vertex of maximum eccentricity (ties broken
// by lower degree, then lower index) — a corner of the device.
func graphPeriphery(topo Topology, dist [][]int) int {
	n := topo.Graph.N()
	best, bestEcc := 0, -1
	for v := 0; v < n; v++ {
		ecc := 0
		for w := 0; w < n; w++ {
			if dist[v][w] > ecc {
				ecc = dist[v][w]
			}
		}
		if ecc > bestEcc ||
			(ecc == bestEcc && topo.Graph.Degree(v) < topo.Graph.Degree(best)) {
			best, bestEcc = v, ecc
		}
	}
	return best
}

// graphCenter returns a vertex of minimum eccentricity (ties broken by
// higher degree, then lower index).
func graphCenter(topo Topology, dist [][]int) int {
	n := topo.Graph.N()
	best, bestEcc := 0, -1
	for v := 0; v < n; v++ {
		ecc := 0
		for w := 0; w < n; w++ {
			if dist[v][w] > ecc {
				ecc = dist[v][w]
			}
		}
		if bestEcc == -1 || ecc < bestEcc ||
			(ecc == bestEcc && topo.Graph.Degree(v) > topo.Graph.Degree(best)) {
			best, bestEcc = v, ecc
		}
	}
	return best
}

// VerifyRouted checks that every two-qubit operation of the routed
// circuit acts on physically adjacent qubits.
func VerifyRouted(t *Transpiled) error {
	for i, op := range t.Circuit.Ops {
		if len(op.Qubits) == 2 && op.Kind != circuit.KindBarrier {
			if !t.Topo.Graph.HasEdge(op.Qubits[0], op.Qubits[1]) {
				return fmt.Errorf("arch: op %d (%v q%d q%d) spans non-adjacent qubits",
					i, op.Kind, op.Qubits[0], op.Qubits[1])
			}
		}
	}
	return nil
}
