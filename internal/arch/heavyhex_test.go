package arch

import "testing"

func TestHeavyHexConnected(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 3}, {3, 3}, {4, 5}} {
		topo := HeavyHex(dims[0], dims[1])
		if !topo.Graph.Connected() {
			t.Fatalf("heavyhex-%dx%d disconnected", dims[0], dims[1])
		}
	}
}

func TestHeavyHexGeneratorDegreeBound(t *testing.T) {
	topo := HeavyHex(3, 4)
	for v := 0; v < topo.Graph.N(); v++ {
		if d := topo.Graph.Degree(v); d > 3 {
			t.Fatalf("heavy-hex vertex %d has degree %d > 3", v, d)
		}
	}
}

func TestHeavyHexSize(t *testing.T) {
	// rows+1 full rows of 4*cols+3 qubits, rows bridge rows of cols+1.
	rows, cols := 2, 2
	topo := HeavyHex(rows, cols)
	want := (rows+1)*(4*cols+3) + rows*(cols+1)
	if got := topo.Graph.N(); got != want {
		t.Fatalf("heavyhex-%dx%d has %d qubits, want %d", rows, cols, got, want)
	}
}

func TestHeavyHexPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeavyHex(0, 2)
}

func TestHeavyHexHostsSurfaceCode(t *testing.T) {
	// A generated heavy-hex lattice must be a viable transpile target.
	topo := HeavyHex(2, 2)
	c := ghzCircuit(18)
	tr, err := Transpile(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRouted(tr); err != nil {
		t.Fatal(err)
	}
}
