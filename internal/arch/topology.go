// Package arch models quantum-computer hardware topologies (architecture
// graphs) and transpiles logical circuits onto them. The architecture
// graph serves two roles in the radiation study: it constrains which
// qubit pairs can interact (forcing SWAP insertion, Section V-D), and its
// shortest-path metric drives the spatial damping S(d) of a particle
// strike (Section III-B).
package arch

import (
	"fmt"
	"sort"

	"radqec/internal/graph"
)

// Topology is a named architecture graph.
type Topology struct {
	Name  string
	Graph *graph.Graph
}

// Linear returns the 1-D chain topology on n qubits.
func Linear(n int) Topology {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return Topology{Name: fmt.Sprintf("linear-%d", n), Graph: g}
}

// Mesh returns the w x h bidimensional lattice. The paper's reference
// architecture is the 5x6 mesh; Figure 5 uses 5x2 (repetition) and 5x4
// (XXZZ) sub-lattices.
func Mesh(w, h int) Topology {
	if w <= 0 || h <= 0 {
		panic("arch: mesh dimensions must be positive")
	}
	g := graph.New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				g.AddEdge(v, v+1)
			}
			if y+1 < h {
				g.AddEdge(v, v+w)
			}
		}
	}
	return Topology{Name: fmt.Sprintf("mesh-%dx%d", w, h), Graph: g}
}

// Complete returns the all-to-all topology on n qubits (no routing ever
// needed; the idealised upper bound of Section V-D).
func Complete(n int) Topology {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return Topology{Name: fmt.Sprintf("complete-%d", n), Graph: g}
}

// fromEdges builds a topology from an explicit edge list.
func fromEdges(name string, n int, edges [][2]int) Topology {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return Topology{Name: name, Graph: g}
}

// ByName returns the named topology sized for at least minQubits.
// Recognised names: linear, mesh (5x6 unless minQubits forces more),
// complete, almaden, johannesburg, cairo, cambridge, brooklyn.
func ByName(name string, minQubits int) (Topology, error) {
	switch name {
	case "linear":
		return Linear(minQubits), nil
	case "mesh":
		w, h := 5, 6
		for w*h < minQubits {
			h++
		}
		return Mesh(w, h), nil
	case "complete":
		return Complete(minQubits), nil
	case "almaden":
		t := Almaden()
		return t, checkSize(t, minQubits)
	case "johannesburg":
		t := Johannesburg()
		return t, checkSize(t, minQubits)
	case "cairo":
		t := Cairo()
		return t, checkSize(t, minQubits)
	case "cambridge":
		t := Cambridge()
		return t, checkSize(t, minQubits)
	case "brooklyn":
		t := Brooklyn()
		return t, checkSize(t, minQubits)
	default:
		return Topology{}, fmt.Errorf("arch: unknown topology %q", name)
	}
}

func checkSize(t Topology, minQubits int) error {
	if t.Graph.N() < minQubits {
		return fmt.Errorf("arch: topology %s has %d qubits, need %d", t.Name, t.Graph.N(), minQubits)
	}
	return nil
}

// Names lists every topology understood by ByName, sorted.
func Names() []string {
	names := []string{"linear", "mesh", "complete", "almaden", "johannesburg", "cairo", "cambridge", "brooklyn"}
	sort.Strings(names)
	return names
}
