package arch

// This file encodes the coupling maps of the retired IBM devices the
// paper transpiles onto (Section V-D). The maps are reconstructed from
// the devices' published lattice patterns: the 20-qubit "Penguin" grid
// family (Almaden, Johannesburg), the 27-qubit Falcon heavy-hex (Cairo),
// the 28-qubit Cambridge hex lattice, and the 65-qubit Hummingbird
// heavy-hex (Brooklyn). The radiation analysis depends only on the graph
// structure — degree distribution and inter-qubit distances — which these
// reconstructions preserve (see DESIGN.md, substitution table).

// Almaden returns the 20-qubit IBM Q Almaden coupling map: four rows of
// five qubits with vertical rungs on alternating columns.
func Almaden() Topology {
	return fromEdges("almaden", 20, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{1, 6}, {3, 8},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{5, 10}, {7, 12}, {9, 14},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{11, 16}, {13, 18},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
	})
}

// Johannesburg returns the 20-qubit IBM Q Johannesburg coupling map:
// four rows of five qubits with vertical rungs at the row ends and
// centre.
func Johannesburg() Topology {
	return fromEdges("johannesburg", 20, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{0, 5}, {2, 7}, {4, 9},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{5, 10}, {9, 14},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{10, 15}, {12, 17}, {14, 19},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
	})
}

// Cairo returns the 27-qubit IBM Falcon heavy-hex coupling map shared by
// ibm_cairo, ibmq_montreal and siblings.
func Cairo() Topology {
	return fromEdges("cairo", 27, [][2]int{
		{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
		{6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14},
		{12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19},
		{17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
		{23, 24}, {24, 25}, {25, 26},
	})
}

// Cambridge returns the 28-qubit IBM Q Cambridge coupling map: three
// horizontal rows joined by sparse vertical rungs, forming a ring of
// hexagons with average degree close to 2.
func Cambridge() Topology {
	return fromEdges("cambridge", 28, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{0, 5}, {4, 6},
		{5, 9}, {6, 13},
		{7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14},
		{7, 16}, {11, 17}, {14, 18},
		{15, 16}, {17, 23}, {18, 27},
		{16, 19},
		{19, 20}, {20, 21}, {21, 22}, {22, 23}, {23, 24}, {24, 25}, {25, 26}, {26, 27},
	})
}

// Brooklyn returns the 65-qubit IBM Hummingbird heavy-hex coupling map
// shared by ibmq_brooklyn and ibmq_manhattan.
func Brooklyn() Topology {
	return fromEdges("brooklyn", 65, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9},
		{0, 10}, {4, 11}, {8, 12},
		{10, 13}, {11, 17}, {12, 21},
		{13, 14}, {14, 15}, {15, 16}, {16, 17}, {17, 18}, {18, 19}, {19, 20}, {20, 21}, {21, 22}, {22, 23},
		{15, 24}, {19, 25}, {23, 26},
		{24, 29}, {25, 33}, {26, 37},
		{27, 28}, {28, 29}, {29, 30}, {30, 31}, {31, 32}, {32, 33}, {33, 34}, {34, 35}, {35, 36}, {36, 37},
		{27, 38}, {31, 39}, {35, 40},
		{38, 41}, {39, 45}, {40, 49},
		{41, 42}, {42, 43}, {43, 44}, {44, 45}, {45, 46}, {46, 47}, {47, 48}, {48, 49}, {49, 50}, {50, 51},
		{43, 52}, {47, 53}, {51, 54},
		{52, 56}, {53, 60}, {54, 64},
		{55, 56}, {56, 57}, {57, 58}, {58, 59}, {59, 60}, {60, 61}, {61, 62}, {62, 63}, {63, 64},
	})
}
