package circuit

import (
	"fmt"
	"io"
	"strings"
)

// WriteQASM renders the circuit as OpenQASM 2.0 for interoperability
// with external toolchains (Qiskit, qtcodes, Stim converters). Named
// registers are preserved when they cover the full qubit range;
// otherwise a single anonymous register is emitted.
func (c *Circuit) WriteQASM(w io.Writer) error {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")

	qname := func(q int) string { return fmt.Sprintf("q[%d]", q) }
	cname := func(bit int) string { return fmt.Sprintf("c[%d]", bit) }
	covered := 0
	for _, r := range c.QRegs {
		covered += r.Size
	}
	if covered == c.NumQubits && len(c.QRegs) > 0 {
		for _, r := range c.QRegs {
			if r.Size > 0 {
				fmt.Fprintf(&b, "qreg %s[%d];\n", r.Name, r.Size)
			}
		}
		qname = func(q int) string {
			for _, r := range c.QRegs {
				if r.Contains(q) {
					return fmt.Sprintf("%s[%d]", r.Name, q-r.Start)
				}
			}
			return fmt.Sprintf("q[%d]", q)
		}
	} else if c.NumQubits > 0 {
		fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	}
	coveredC := 0
	for _, r := range c.CRegs {
		coveredC += r.Size
	}
	if coveredC == c.NumClbits && len(c.CRegs) > 0 {
		for _, r := range c.CRegs {
			if r.Size > 0 {
				fmt.Fprintf(&b, "creg %s[%d];\n", r.Name, r.Size)
			}
		}
		cname = func(bit int) string {
			for _, r := range c.CRegs {
				if r.Contains(bit) {
					return fmt.Sprintf("%s[%d]", r.Name, bit-r.Start)
				}
			}
			return fmt.Sprintf("c[%d]", bit)
		}
	} else if c.NumClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumClbits)
	}

	for _, op := range c.Ops {
		switch op.Kind {
		case KindH, KindX, KindY, KindZ, KindS:
			fmt.Fprintf(&b, "%s %s;\n", op.Kind, qname(op.Qubits[0]))
		case KindCNOT:
			fmt.Fprintf(&b, "cx %s,%s;\n", qname(op.Qubits[0]), qname(op.Qubits[1]))
		case KindCZ:
			fmt.Fprintf(&b, "cz %s,%s;\n", qname(op.Qubits[0]), qname(op.Qubits[1]))
		case KindSWAP:
			fmt.Fprintf(&b, "swap %s,%s;\n", qname(op.Qubits[0]), qname(op.Qubits[1]))
		case KindMeasure:
			fmt.Fprintf(&b, "measure %s -> %s;\n", qname(op.Qubits[0]), cname(op.Clbit))
		case KindReset:
			fmt.Fprintf(&b, "reset %s;\n", qname(op.Qubits[0]))
		case KindBarrier:
			names := make([]string, len(op.Qubits))
			for i, q := range op.Qubits {
				names[i] = qname(q)
			}
			fmt.Fprintf(&b, "barrier %s;\n", strings.Join(names, ","))
		default:
			return fmt.Errorf("circuit: cannot export %v to QASM", op.Kind)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
