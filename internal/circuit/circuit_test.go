package circuit

import (
	"strings"
	"testing"
)

func TestNewWidths(t *testing.T) {
	c := New(3, 2)
	if c.NumQubits != 3 || c.NumClbits != 2 {
		t.Fatalf("widths = %d,%d", c.NumQubits, c.NumClbits)
	}
}

func TestNewPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 0)
}

func TestSingleQubitGates(t *testing.T) {
	c := New(1, 0)
	c.H(0)
	c.X(0)
	c.Y(0)
	c.Z(0)
	c.S(0)
	kinds := []GateKind{KindH, KindX, KindY, KindZ, KindS}
	if len(c.Ops) != len(kinds) {
		t.Fatalf("op count = %d", len(c.Ops))
	}
	for i, k := range kinds {
		if c.Ops[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, c.Ops[i].Kind, k)
		}
		if c.Ops[i].Clbit != -1 {
			t.Fatalf("op %d clbit = %d, want -1", i, c.Ops[i].Clbit)
		}
	}
}

func TestTwoQubitGates(t *testing.T) {
	c := New(2, 0)
	c.CNOT(0, 1)
	c.CZ(1, 0)
	c.SWAP(0, 1)
	if got := c.CountTwoQubit(); got != 3 {
		t.Fatalf("two-qubit count = %d", got)
	}
	if c.Ops[0].Qubits[0] != 0 || c.Ops[0].Qubits[1] != 1 {
		t.Fatal("CNOT control/target order lost")
	}
}

func TestTwoQubitGateSameQubitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0).CNOT(1, 1)
}

func TestGateOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0).H(1)
}

func TestMeasure(t *testing.T) {
	c := New(2, 2)
	c.Measure(1, 0)
	op := c.Ops[0]
	if op.Kind != KindMeasure || op.Qubits[0] != 1 || op.Clbit != 0 {
		t.Fatalf("measure op wrong: %+v", op)
	}
}

func TestMeasureBadClbitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1).Measure(0, 3)
}

func TestBarrierDefaultsToAllQubits(t *testing.T) {
	c := New(3, 0)
	c.Barrier()
	if len(c.Ops[0].Qubits) != 3 {
		t.Fatalf("barrier qubits = %v", c.Ops[0].Qubits)
	}
}

func TestRegisters(t *testing.T) {
	c := New(0, 0)
	data := c.AddQReg("data", 5)
	mz := c.AddQReg("mz", 4)
	anc := c.AddQReg("ancilla", 1)
	if data.Start != 0 || mz.Start != 5 || anc.Start != 9 {
		t.Fatalf("register starts: %d %d %d", data.Start, mz.Start, anc.Start)
	}
	if c.NumQubits != 10 {
		t.Fatalf("NumQubits = %d, want 10", c.NumQubits)
	}
	if got := c.QubitRole(6); got != "mz" {
		t.Fatalf("QubitRole(6) = %q", got)
	}
	if got := c.QubitRole(9); got != "ancilla" {
		t.Fatalf("QubitRole(9) = %q", got)
	}
	cr := c.AddCReg("c0", 4)
	if cr.Start != 0 || c.NumClbits != 4 {
		t.Fatal("classical register bookkeeping wrong")
	}
}

func TestDepthSerialVsParallel(t *testing.T) {
	serial := New(1, 0)
	serial.H(0)
	serial.X(0)
	serial.Z(0)
	if d := serial.Depth(); d != 3 {
		t.Fatalf("serial depth = %d, want 3", d)
	}
	parallel := New(3, 0)
	parallel.H(0)
	parallel.H(1)
	parallel.H(2)
	if d := parallel.Depth(); d != 1 {
		t.Fatalf("parallel depth = %d, want 1", d)
	}
}

func TestDepthTwoQubitChains(t *testing.T) {
	c := New(3, 0)
	c.CNOT(0, 1)
	c.CNOT(1, 2)
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestDepthBarrierSynchronises(t *testing.T) {
	c := New(2, 0)
	c.H(0) // depth 1 on q0
	c.Barrier()
	c.H(1) // must come after the barrier: depth 2
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth with barrier = %d, want 2", d)
	}
}

func TestGateCounts(t *testing.T) {
	c := New(2, 1)
	c.H(0)
	c.H(1)
	c.CNOT(0, 1)
	c.Measure(0, 0)
	counts := c.GateCounts()
	if counts[KindH] != 2 || counts[KindCNOT] != 1 || counts[KindMeasure] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2, 1)
	c.CNOT(0, 1)
	cp := c.Clone()
	cp.Ops[0].Qubits[0] = 1
	if c.Ops[0].Qubits[0] != 0 {
		t.Fatal("clone shares qubit slices")
	}
	cp.X(0)
	if len(c.Ops) != 1 {
		t.Fatal("clone shares op slice")
	}
}

func TestAppend(t *testing.T) {
	a := New(2, 1)
	a.H(0)
	b := New(2, 1)
	b.CNOT(0, 1)
	b.Measure(1, 0)
	a.Append(b)
	if len(a.Ops) != 3 {
		t.Fatalf("appended op count = %d", len(a.Ops))
	}
}

func TestAppendWiderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0).Append(New(2, 0))
}

func TestStringRendering(t *testing.T) {
	c := New(2, 1)
	c.H(0)
	c.CNOT(0, 1)
	c.Measure(1, 0)
	s := c.String()
	for _, want := range []string{"h q0", "cx q0 q1", "measure q1 -> c0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCNOT.String() != "cx" || KindReset.String() != "reset" {
		t.Fatal("kind mnemonics wrong")
	}
}

func TestKindProperties(t *testing.T) {
	if !KindH.IsUnitary() || KindMeasure.IsUnitary() || KindReset.IsUnitary() {
		t.Fatal("IsUnitary misclassifies")
	}
	if KindCNOT.Arity() != 2 || KindH.Arity() != 1 || KindBarrier.Arity() != -1 {
		t.Fatal("Arity misclassifies")
	}
}

func TestDAGLinearChain(t *testing.T) {
	c := New(1, 0)
	c.H(0)
	c.X(0)
	c.Z(0)
	d := BuildDAG(c)
	if d.NumNodes() != 3 {
		t.Fatalf("nodes = %d", d.NumNodes())
	}
	if len(d.Successors(0)) != 1 || d.Successors(0)[0] != 1 {
		t.Fatalf("succ(0) = %v", d.Successors(0))
	}
	if len(d.Predecessors(2)) != 1 || d.Predecessors(2)[0] != 1 {
		t.Fatalf("pred(2) = %v", d.Predecessors(2))
	}
}

func TestDAGIndependentOps(t *testing.T) {
	c := New(2, 0)
	c.H(0)
	c.H(1)
	d := BuildDAG(c)
	if len(d.Successors(0)) != 0 || len(d.Successors(1)) != 0 {
		t.Fatal("independent ops should have no edges")
	}
}

func TestDAGDescendants(t *testing.T) {
	c := New(3, 0)
	c.H(0)       // 0
	c.CNOT(0, 1) // 1 depends on 0
	c.CNOT(1, 2) // 2 depends on 1
	c.H(2)       // 3 depends on 2
	d := BuildDAG(c)
	if got := d.DescendantCount(0); got != 3 {
		t.Fatalf("descendants of op 0 = %d, want 3", got)
	}
	if got := d.DescendantCount(3); got != 0 {
		t.Fatalf("descendants of last op = %d, want 0", got)
	}
}

func TestDAGClassicalDependency(t *testing.T) {
	c := New(2, 1)
	c.Measure(0, 0) // writes c0
	c.Measure(1, 0) // also writes c0: must be ordered after
	d := BuildDAG(c)
	if len(d.Successors(0)) != 1 {
		t.Fatal("classical bit dependency not tracked")
	}
}

func TestQubitFirstUse(t *testing.T) {
	c := New(3, 0)
	c.H(1)
	c.CNOT(1, 2)
	d := BuildDAG(c)
	first := d.QubitFirstUse()
	if first[0] != -1 || first[1] != 0 || first[2] != 1 {
		t.Fatalf("first use = %v", first)
	}
}

func TestQubitInfluenceGradient(t *testing.T) {
	// In a CNOT ladder 0->1->2->3 the earlier qubits influence strictly
	// more downstream operations — the mechanism behind Observation VII.
	c := New(4, 0)
	c.CNOT(0, 1)
	c.CNOT(1, 2)
	c.CNOT(2, 3)
	d := BuildDAG(c)
	infl := d.QubitInfluence()
	if !(infl[0] >= infl[2] && infl[1] >= infl[3]) {
		t.Fatalf("influence not monotone along the ladder: %v", infl)
	}
	if infl[0] != 3 {
		t.Fatalf("influence[0] = %d, want 3", infl[0])
	}
}
