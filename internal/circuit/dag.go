package circuit

// DAG is the dependency graph of a circuit: node i is operation i, and
// an edge u -> v means operation v consumes a qubit or classical bit
// last touched by operation u. The paper's Observation VII explains the
// per-qubit criticality gradient through exactly this structure: a fault
// on a qubit used early reaches all of the operation's DAG descendants.
type DAG struct {
	circ  *Circuit
	succ  [][]int
	pred  [][]int
	order []int // topological order (identical to op order by construction)
}

// BuildDAG computes the dependency DAG of the circuit.
func BuildDAG(c *Circuit) *DAG {
	n := len(c.Ops)
	d := &DAG{
		circ: c,
		succ: make([][]int, n),
		pred: make([][]int, n),
	}
	lastQ := make([]int, c.NumQubits)
	lastC := make([]int, c.NumClbits)
	for i := range lastQ {
		lastQ[i] = -1
	}
	for i := range lastC {
		lastC[i] = -1
	}
	addEdge := func(u, v int) {
		for _, w := range d.succ[u] {
			if w == v {
				return
			}
		}
		d.succ[u] = append(d.succ[u], v)
		d.pred[v] = append(d.pred[v], u)
	}
	for i, op := range c.Ops {
		for _, q := range op.Qubits {
			if lastQ[q] >= 0 {
				addEdge(lastQ[q], i)
			}
			lastQ[q] = i
		}
		if op.Clbit >= 0 {
			if lastC[op.Clbit] >= 0 {
				addEdge(lastC[op.Clbit], i)
			}
			lastC[op.Clbit] = i
		}
		d.order = append(d.order, i)
	}
	return d
}

// NumNodes returns the number of operations in the DAG.
func (d *DAG) NumNodes() int { return len(d.succ) }

// Successors returns the direct dependents of operation i.
func (d *DAG) Successors(i int) []int { return d.succ[i] }

// Predecessors returns the direct dependencies of operation i.
func (d *DAG) Predecessors(i int) []int { return d.pred[i] }

// Descendants returns the set (as a bool slice indexed by op) of all
// operations reachable from i, excluding i itself.
func (d *DAG) Descendants(i int) []bool {
	seen := make([]bool, len(d.succ))
	stack := append([]int(nil), d.succ[i]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, d.succ[v]...)
	}
	return seen
}

// DescendantCount returns the number of operations downstream of i.
func (d *DAG) DescendantCount(i int) int {
	seen := d.Descendants(i)
	n := 0
	for _, s := range seen {
		if s {
			n++
		}
	}
	return n
}

// QubitFirstUse returns, per qubit, the index of the first operation
// touching it (-1 when unused). Lower values mean "used earlier", the
// axis Observation VII correlates with criticality.
func (d *DAG) QubitFirstUse() []int {
	first := make([]int, d.circ.NumQubits)
	for i := range first {
		first[i] = -1
	}
	for i, op := range d.circ.Ops {
		for _, q := range op.Qubits {
			if first[q] == -1 {
				first[q] = i
			}
		}
	}
	return first
}

// QubitInfluence returns, per qubit, the total number of distinct
// operations downstream of any operation touching that qubit (including
// the touching operations themselves). It is a static proxy for how far
// a fault on the qubit can propagate.
func (d *DAG) QubitInfluence() []int {
	out := make([]int, d.circ.NumQubits)
	for q := 0; q < d.circ.NumQubits; q++ {
		seen := make([]bool, len(d.succ))
		var stack []int
		for i, op := range d.circ.Ops {
			for _, oq := range op.Qubits {
				if oq == q && !seen[i] {
					seen[i] = true
					stack = append(stack, i)
				}
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range d.succ[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		n := 0
		for _, s := range seen {
			if s {
				n++
			}
		}
		out[q] = n
	}
	return out
}
