package circuit

import (
	"strings"
	"testing"
)

func TestWriteQASMBasic(t *testing.T) {
	c := New(2, 1)
	c.H(0)
	c.CNOT(0, 1)
	c.Measure(1, 0)
	var b strings.Builder
	if err := c.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[2];",
		"creg c[1];",
		"h q[0];",
		"cx q[0],q[1];",
		"measure q[1] -> c[0];",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteQASMNamedRegisters(t *testing.T) {
	c := New(0, 0)
	c.AddQReg("data", 2)
	c.AddQReg("mz", 1)
	c.AddCReg("syn", 1)
	c.CNOT(0, 2)
	c.Measure(2, 0)
	var b strings.Builder
	if err := c.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"qreg data[2];",
		"qreg mz[1];",
		"creg syn[1];",
		"cx data[0],mz[0];",
		"measure mz[0] -> syn[0];",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteQASMAllGateKinds(t *testing.T) {
	c := New(2, 1)
	c.H(0)
	c.X(0)
	c.Y(0)
	c.Z(0)
	c.S(0)
	c.CZ(0, 1)
	c.SWAP(0, 1)
	c.Reset(0)
	c.Barrier()
	c.Measure(0, 0)
	var b strings.Builder
	if err := c.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"y q[0];", "s q[0];", "cz ", "swap ", "reset q[0];", "barrier q[0],q[1];"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteQASMEmptyCircuit(t *testing.T) {
	c := New(0, 0)
	var b strings.Builder
	if err := c.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "OPENQASM") {
		t.Fatal("missing header")
	}
}
