// Package circuit defines the quantum-circuit intermediate representation
// used by the surface-code builders, the transpiler, and the fault
// injector. A Circuit is an ordered stream of operations over quantum and
// classical registers, mirroring the gate-based formalism of the paper
// (Figures 1 and 2): Clifford gates, mid-circuit measurement into
// classical bits, and non-unitary reset.
package circuit

import (
	"fmt"
	"strings"
)

// GateKind enumerates every operation the IR supports. The set is the
// Clifford group fragment needed by the repetition and XXZZ codes plus
// the non-unitary reset and measurement channels.
type GateKind int

const (
	// KindH is the Hadamard gate.
	KindH GateKind = iota
	// KindX is the Pauli-X (bit flip) gate.
	KindX
	// KindY is the Pauli-Y gate.
	KindY
	// KindZ is the Pauli-Z (phase flip) gate.
	KindZ
	// KindS is the phase gate (sqrt of Z).
	KindS
	// KindCNOT is the controlled-X gate; Qubits[0] controls Qubits[1].
	KindCNOT
	// KindCZ is the controlled-Z gate (symmetric).
	KindCZ
	// KindSWAP exchanges two qubit states.
	KindSWAP
	// KindMeasure measures Qubits[0] in the Z basis into Clbit.
	KindMeasure
	// KindReset non-unitarily forces Qubits[0] to |0>. This is the
	// radiation fault channel of the paper (Section III-B).
	KindReset
	// KindBarrier is a scheduling fence; it touches Qubits but has no
	// quantum effect and receives no injected noise.
	KindBarrier
)

var kindNames = [...]string{"h", "x", "y", "z", "s", "cx", "cz", "swap", "measure", "reset", "barrier"}

// String returns the lower-case mnemonic of the gate kind.
func (k GateKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("gate(%d)", int(k))
}

// IsUnitary reports whether the kind is a unitary quantum gate.
func (k GateKind) IsUnitary() bool {
	switch k {
	case KindMeasure, KindReset, KindBarrier:
		return false
	}
	return true
}

// Arity returns the number of qubits the kind acts on (barriers vary).
func (k GateKind) Arity() int {
	switch k {
	case KindCNOT, KindCZ, KindSWAP:
		return 2
	case KindBarrier:
		return -1
	default:
		return 1
	}
}

// Op is one operation in a circuit.
type Op struct {
	Kind   GateKind
	Qubits []int
	// Clbit is the classical bit receiving a measurement outcome; it is
	// -1 for non-measurement operations.
	Clbit int
}

// Register names a contiguous block of qubits (or classical bits). The
// surface-code builders use registers to mark each qubit's role (data,
// Z-stabilizer measure, X-stabilizer measure, ancilla), which Figure 8
// of the paper correlates with criticality.
type Register struct {
	Name  string
	Start int
	Size  int
}

// Contains reports whether index i falls inside the register.
func (r Register) Contains(i int) bool { return i >= r.Start && i < r.Start+r.Size }

// Circuit is an ordered operation stream over NumQubits qubits and
// NumClbits classical bits.
type Circuit struct {
	NumQubits int
	NumClbits int
	Ops       []Op
	QRegs     []Register
	CRegs     []Register
}

// New returns an empty circuit with the given quantum and classical
// widths.
func New(numQubits, numClbits int) *Circuit {
	if numQubits < 0 || numClbits < 0 {
		panic("circuit: negative register width")
	}
	return &Circuit{NumQubits: numQubits, NumClbits: numClbits}
}

// AddQReg appends a named qubit register covering the next size qubits
// and returns it. Registers are purely descriptive; they never change
// operational semantics.
func (c *Circuit) AddQReg(name string, size int) Register {
	start := 0
	for _, r := range c.QRegs {
		start += r.Size
	}
	r := Register{Name: name, Start: start, Size: size}
	c.QRegs = append(c.QRegs, r)
	if start+size > c.NumQubits {
		c.NumQubits = start + size
	}
	return r
}

// AddCReg appends a named classical register and returns it.
func (c *Circuit) AddCReg(name string, size int) Register {
	start := 0
	for _, r := range c.CRegs {
		start += r.Size
	}
	r := Register{Name: name, Start: start, Size: size}
	c.CRegs = append(c.CRegs, r)
	if start+size > c.NumClbits {
		c.NumClbits = start + size
	}
	return r
}

// QubitRole returns the name of the register holding qubit q, or "".
func (c *Circuit) QubitRole(q int) string {
	for _, r := range c.QRegs {
		if r.Contains(q) {
			return r.Name
		}
	}
	return ""
}

func (c *Circuit) checkQ(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

func (c *Circuit) checkC(b int) {
	if b < 0 || b >= c.NumClbits {
		panic(fmt.Sprintf("circuit: clbit %d out of range [0,%d)", b, c.NumClbits))
	}
}

func (c *Circuit) append1(kind GateKind, q int) {
	c.checkQ(q)
	c.Ops = append(c.Ops, Op{Kind: kind, Qubits: []int{q}, Clbit: -1})
}

func (c *Circuit) append2(kind GateKind, a, b int) {
	c.checkQ(a)
	c.checkQ(b)
	if a == b {
		panic("circuit: two-qubit gate on identical qubits")
	}
	c.Ops = append(c.Ops, Op{Kind: kind, Qubits: []int{a, b}, Clbit: -1})
}

// H appends a Hadamard on q.
func (c *Circuit) H(q int) { c.append1(KindH, q) }

// X appends a Pauli-X on q.
func (c *Circuit) X(q int) { c.append1(KindX, q) }

// Y appends a Pauli-Y on q.
func (c *Circuit) Y(q int) { c.append1(KindY, q) }

// Z appends a Pauli-Z on q.
func (c *Circuit) Z(q int) { c.append1(KindZ, q) }

// S appends a phase gate on q.
func (c *Circuit) S(q int) { c.append1(KindS, q) }

// CNOT appends a controlled-X with the given control and target.
func (c *Circuit) CNOT(control, target int) { c.append2(KindCNOT, control, target) }

// CZ appends a controlled-Z between a and b.
func (c *Circuit) CZ(a, b int) { c.append2(KindCZ, a, b) }

// SWAP appends a swap of a and b.
func (c *Circuit) SWAP(a, b int) { c.append2(KindSWAP, a, b) }

// Measure appends a Z-basis measurement of q into classical bit bit.
func (c *Circuit) Measure(q, bit int) {
	c.checkQ(q)
	c.checkC(bit)
	c.Ops = append(c.Ops, Op{Kind: KindMeasure, Qubits: []int{q}, Clbit: bit})
}

// Reset appends a non-unitary reset of q to |0>.
func (c *Circuit) Reset(q int) { c.append1(KindReset, q) }

// Barrier appends a scheduling fence over the given qubits (all qubits
// when none are listed).
func (c *Circuit) Barrier(qs ...int) {
	if len(qs) == 0 {
		qs = make([]int, c.NumQubits)
		for i := range qs {
			qs[i] = i
		}
	}
	for _, q := range qs {
		c.checkQ(q)
	}
	c.Ops = append(c.Ops, Op{Kind: KindBarrier, Qubits: append([]int(nil), qs...), Clbit: -1})
}

// Append copies every operation of other onto the end of c. The two
// circuits must have compatible widths.
func (c *Circuit) Append(other *Circuit) {
	if other.NumQubits > c.NumQubits || other.NumClbits > c.NumClbits {
		panic("circuit: Append source wider than destination")
	}
	for _, op := range other.Ops {
		cp := op
		cp.Qubits = append([]int(nil), op.Qubits...)
		c.Ops = append(c.Ops, cp)
	}
}

// GateCounts returns the number of operations per kind.
func (c *Circuit) GateCounts() map[GateKind]int {
	counts := make(map[GateKind]int)
	for _, op := range c.Ops {
		counts[op.Kind]++
	}
	return counts
}

// CountTwoQubit returns the number of two-qubit gates (CNOT, CZ, SWAP).
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, op := range c.Ops {
		switch op.Kind {
		case KindCNOT, KindCZ, KindSWAP:
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the longest chain of operations that
// share a qubit or a classical bit. Barriers synchronise but add no depth.
func (c *Circuit) Depth() int {
	qDepth := make([]int, c.NumQubits)
	cDepth := make([]int, c.NumClbits)
	depth := 0
	for _, op := range c.Ops {
		level := 0
		for _, q := range op.Qubits {
			if qDepth[q] > level {
				level = qDepth[q]
			}
		}
		if op.Clbit >= 0 && cDepth[op.Clbit] > level {
			level = cDepth[op.Clbit]
		}
		if op.Kind != KindBarrier {
			level++
		}
		for _, q := range op.Qubits {
			qDepth[q] = level
		}
		if op.Clbit >= 0 {
			cDepth[op.Clbit] = level
		}
		if level > depth {
			depth = level
		}
	}
	return depth
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{
		NumQubits: c.NumQubits,
		NumClbits: c.NumClbits,
		Ops:       make([]Op, len(c.Ops)),
		QRegs:     append([]Register(nil), c.QRegs...),
		CRegs:     append([]Register(nil), c.CRegs...),
	}
	for i, op := range c.Ops {
		cp.Ops[i] = Op{Kind: op.Kind, Qubits: append([]int(nil), op.Qubits...), Clbit: op.Clbit}
	}
	return cp
}

// String renders the circuit as one mnemonic per line, e.g. "cx q3 q4"
// and "measure q1 -> c0". Useful for debugging and golden tests.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %dq %dc\n", c.NumQubits, c.NumClbits)
	for _, op := range c.Ops {
		b.WriteString(op.Kind.String())
		for _, q := range op.Qubits {
			fmt.Fprintf(&b, " q%d", q)
		}
		if op.Clbit >= 0 {
			fmt.Fprintf(&b, " -> c%d", op.Clbit)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
