package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"radqec/internal/control"
)

// submitForID posts a campaign, drains its stream, and returns the
// campaign id the daemon assigned via the response header.
func submitForID(t *testing.T, ts *httptest.Server, req CampaignRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Radqec-Campaign-Id")
	if id == "" {
		t.Fatal("campaign response carries no X-Radqec-Campaign-Id header")
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestSignalsStreamEndpoint: a completed campaign's signals replay over
// GET /v1/campaigns/{id}/signals as NDJSON — per-chunk signal records
// closed by one aggregate stats record carrying the engine route.
func TestSignalsStreamEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id := submitForID(t, ts, CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(9)})

	for _, follow := range []string{"?follow=0", ""} {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/signals" + follow)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("signals status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("signals content type = %q", ct)
		}
		var signals int
		var shots int
		var last statsRecord
		sawStats := false
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var kind struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
				t.Fatalf("stream line not JSON: %q", sc.Bytes())
			}
			switch kind.Type {
			case "signal":
				if sawStats {
					t.Fatal("signal record after the stats record")
				}
				var rec signalRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatal(err)
				}
				signals++
				shots += rec.Shots
			case "stats":
				if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
					t.Fatal(err)
				}
				sawStats = true
			default:
				t.Fatalf("unexpected record type %q", kind.Type)
			}
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if signals == 0 {
			t.Fatal("no signal records streamed")
		}
		if !sawStats {
			t.Fatal("stream ended without a stats record")
		}
		if !last.Done || last.Shots == 0 || int(last.Shots) != shots {
			t.Fatalf("stats record inconsistent with signals: %+v (signal shots %d)", last.Stats, shots)
		}
		if last.Route == nil || last.Route.Resolved == "" {
			t.Fatalf("stats record missing the engine route: %+v", last.Stats)
		}
	}

	// Bad and unknown ids fail cleanly.
	if resp, err := http.Get(ts.URL + "/v1/campaigns/nope/signals"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/campaigns/99999/signals"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsPrometheusExposition: every radqecd_* series carries
// # HELP and # TYPE lines in exposition format 0.0.4.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts, _ := newTestServer(t)
	submitForID(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(2)})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for name, kind := range map[string]string{
		"uptime_seconds":        "gauge",
		"workers":               "gauge",
		"campaigns_total":       "counter",
		"campaigns_active":      "gauge",
		"campaign_errors_total": "counter",
		"points_computed_total": "counter",
		"points_cached_total":   "counter",
		"shots_computed_total":  "counter",
		"store_commits":         "gauge",
		"store_hits_total":      "counter",
		"store_misses_total":    "counter",
	} {
		if !strings.Contains(text, "# HELP radqecd_"+name+" ") {
			t.Errorf("series %s has no HELP line", name)
		}
		if !strings.Contains(text, "# TYPE radqecd_"+name+" "+kind+"\n") {
			t.Errorf("series %s has no TYPE %s line", name, kind)
		}
		if !strings.Contains(text, "\nradqecd_"+name+" ") && !strings.HasPrefix(text, "radqecd_"+name+" ") {
			t.Errorf("series %s has no sample line", name)
		}
	}
	// Sanity: the legacy scrape helper still parses values past the new
	// comment lines.
	if metricValue(t, ts, "campaigns_total") < 1 {
		t.Error("campaigns_total did not count the submitted campaign")
	}
}

// TestCampaignGaugesLabelActiveCampaigns: the per-campaign controller
// gauges appear in /metrics while a campaign is registered as active.
func TestCampaignGaugesLabelActiveCampaigns(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	c := srv.tele.New("fig5")
	defer srv.tele.Finish(c)
	c.SetControl(4096, 2)
	c.SetQueueDepth(7)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`# TYPE radqecd_campaign_shots_per_sec gauge`,
		`radqecd_campaign_batch_size{campaign="1",experiment="fig5"} 4096`,
		`radqecd_campaign_queue_depth{campaign="1",experiment="fig5"} 7`,
		`radqecd_campaign_dwell_left{campaign="1",experiment="fig5"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestControllerRequestValidation: controller knobs outside their
// constraints are 400s, and the controller field round-trips into the
// campaign config.
func TestControllerRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"dwell":      `{"experiment":"fig5","dwell":-1}`,
		"hysteresis": `{"experiment":"fig5","hysteresis":1.5}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestControllerPolicyResolution: the request override beats the daemon
// default, knobs inherit, and disabled yields nil (static scheduling).
func TestControllerPolicyResolution(t *testing.T) {
	off := false
	on := true
	s := New(Config{Workers: 1, Control: defaultTestPolicy()})
	defer s.Close()
	if got := s.campaignConfig(CampaignRequest{Experiment: "fig5"}).Control; got == nil || got.Dwell != 6 {
		t.Fatalf("daemon default not inherited: %+v", got)
	}
	if got := s.campaignConfig(CampaignRequest{Experiment: "fig5", Controller: &off}).Control; got != nil {
		t.Fatalf("request opt-out ignored: %+v", got)
	}
	if got := s.campaignConfig(CampaignRequest{Experiment: "fig5", Dwell: 9}).Control; got == nil || got.Dwell != 9 || got.Hysteresis != 0.2 {
		t.Fatalf("request knob did not override daemon default: %+v", got)
	}
	sOff := New(Config{Workers: 1})
	defer sOff.Close()
	if got := sOff.campaignConfig(CampaignRequest{Experiment: "fig5"}).Control; got != nil {
		t.Fatalf("controller on without a daemon default or request opt-in: %+v", got)
	}
	if got := sOff.campaignConfig(CampaignRequest{Experiment: "fig5", Controller: &on}).Control; got == nil || !got.Enabled {
		t.Fatalf("request opt-in ignored on a controller-off daemon: %+v", got)
	}
}

// TestControllerOnOffTablesMatchOverDaemon: the same campaign submitted
// with the controller on and off (cache bypassed so both compute)
// streams identical tables.
func TestControllerOnOffTablesMatchOverDaemon(t *testing.T) {
	_, ts, _ := newTestServer(t)
	off := false
	_, tabOn := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 96, Seed: seed(4), NoCache: true})
	_, tabOff := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 96, Seed: seed(4), NoCache: true, Controller: &off})
	tabOn.ElapsedMS, tabOff.ElapsedMS = 0, 0
	if !reflect.DeepEqual(tabOn, tabOff) {
		t.Fatalf("controller on/off tables diverged over the daemon:\n%+v\nvs\n%+v", tabOn, tabOff)
	}
}

func defaultTestPolicy() *control.Policy {
	return &control.Policy{Enabled: true, Dwell: 6, Hysteresis: 0.2}
}
