package server

// v1 surface tests: the uniform error envelope and its stable codes,
// the one-release legacy negotiation, and the consolidated cache
// endpoints with their deprecated aliases.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doRaw issues a bare HTTP request against the test server.
func doRaw(t *testing.T, ts *httptest.Server, method, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// envelope decodes the v1 error envelope.
type envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// TestErrorEnvelopeUniform: every /v1 endpoint's failure is the same
// {"error":{"code","message"}} envelope with a stable code.
func TestErrorEnvelopeUniform(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, tc := range []struct {
		method, path, body string
		status             int
		code               string
	}{
		{http.MethodPost, "/v1/campaigns", `{"experiment":`, 400, "bad_request"},
		{http.MethodPost, "/v1/campaigns", `{"experiment":"nope"}`, 400, "invalid_argument"},
		{http.MethodDelete, "/v1/campaigns/abc", "", 400, "bad_request"},
		{http.MethodDelete, "/v1/campaigns/999", "", 404, "not_found"},
		{http.MethodGet, "/v1/campaigns/999/signals", "", 404, "not_found"},
		{http.MethodGet, "/v1/points/unknown-hash", "", 404, "point_not_committed"},
		{http.MethodPost, "/v1/points/h/claim", `{}`, 400, "invalid_argument"},
		{http.MethodGet, "/v1/cache/entries/unknown-hash", "", 404, "not_found"},
		{http.MethodDelete, "/v1/cache/entries/unknown-hash", "", 404, "not_found"},
	} {
		resp, body := doRaw(t, ts, tc.method, tc.path, tc.body, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
			continue
		}
		var env envelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
			t.Errorf("%s %s: body %q is not a v1 error envelope (%v)", tc.method, tc.path, body, err)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.path, env.Error.Code, tc.code)
		}
	}
}

// TestErrorEnvelopeStorelessDaemon: the cache and point APIs on a
// daemon without a store answer with the no_store code.
func TestErrorEnvelopeStorelessDaemon(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/cache", "/v1/cache/entries", "/v1/points/h"} {
		resp, body := doRaw(t, ts, http.MethodGet, path, "", nil)
		var env envelope
		if resp.StatusCode != 404 || json.Unmarshal(body, &env) != nil || env.Error.Code != "no_store" {
			t.Errorf("GET %s on storeless daemon: status=%d body=%q, want 404 no_store", path, resp.StatusCode, body)
		}
	}
}

// TestErrorLegacyNegotiation: a client that explicitly Accepts the v0
// media type gets the pre-envelope flat {"error":"msg"} shape, marked
// Deprecation, for one release.
func TestErrorLegacyNegotiation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := doRaw(t, ts, http.MethodDelete, "/v1/campaigns/999", "",
		map[string]string{"Accept": "application/vnd.radqec.v0+json"})
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy error shape not marked Deprecation")
	}
	var flat map[string]string
	if err := json.Unmarshal(body, &flat); err != nil || flat["error"] == "" {
		t.Fatalf("body %q is not the legacy flat error shape", body)
	}
}

// TestCacheEndpointConsolidation: the new entry-scoped cache routes
// work, the renamed compact action works, and the deprecated aliases
// still function but advertise their successors.
func TestCacheEndpointConsolidation(t *testing.T) {
	_, ts, st := newTestServer(t)
	submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5)})
	entries := st.Entries()
	if len(entries) == 0 {
		t.Fatal("no entries committed")
	}
	hash := entries[0].Hash

	// GET one committed entry by hash.
	resp, body := doRaw(t, ts, http.MethodGet, "/v1/cache/entries/"+hash, "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("GET entry: status = %d (%s)", resp.StatusCode, body)
	}
	var pr struct {
		Hash  string `json:"hash"`
		Point struct {
			Key   string `json:"key"`
			Shots int    `json:"shots"`
		} `json:"point"`
	}
	if err := json.Unmarshal(body, &pr); err != nil || pr.Hash != hash || pr.Point.Shots == 0 {
		t.Fatalf("GET entry body = %q (%v)", body, err)
	}

	// Canonical invalidate.
	resp, _ = doRaw(t, ts, http.MethodDelete, "/v1/cache/entries/"+hash, "", nil)
	if resp.StatusCode != 200 || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("canonical DELETE: status=%d deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}

	// Deprecated invalidate alias still works, flagged.
	hash2 := st.Entries()[0].Hash
	resp, _ = doRaw(t, ts, http.MethodDelete, "/v1/cache/"+hash2, "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("deprecated DELETE alias: status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" || resp.Header.Get("X-Radqec-Successor") == "" {
		t.Fatal("deprecated DELETE alias not flagged")
	}

	// Canonical compact action.
	resp, _ = doRaw(t, ts, http.MethodPost, "/v1/cache:compact", "", nil)
	if resp.StatusCode != 200 || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("POST /v1/cache:compact: status=%d deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
	// Deprecated compact alias still works, flagged.
	resp, _ = doRaw(t, ts, http.MethodPost, "/v1/cache/compact", "", nil)
	if resp.StatusCode != 200 || resp.Header.Get("Deprecation") != "true" {
		t.Fatalf("deprecated compact alias: status=%d deprecation=%q", resp.StatusCode, resp.Header.Get("Deprecation"))
	}
}
