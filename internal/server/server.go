// Package server exposes the radqec campaign engine over HTTP: clients
// submit any experiment of the registry as JSON and stream its sweep
// points back as NDJSON while the workers produce them, with the final
// table as the last record — the exact records the CLI's -json mode
// emits, so a daemon stream and a local run are interchangeable.
//
// All campaigns, however many clients are connected, run on one shared
// sweep.Scheduler: the worker pool is sized once at startup and points
// are handed out round-robin across active campaigns, so concurrent
// clients share the CPU fairly instead of oversubscribing it. When a
// store is attached, every point is content-addressed into it and
// re-submissions replay from disk without touching the engines.
//
// When a fabric coordinator is attached the daemon becomes one node of
// a static ring: client-submitted campaigns fan out to every peer, each
// node computes only the points it owns, and the point API below moves
// committed results between nodes. Tables stay byte-identical to a
// single-node run.
//
// Endpoints (the full surface, with request/response shapes, is
// documented in docs/api.md):
//
//	POST   /v1/campaigns                submit a campaign, stream NDJSON points + table
//	DELETE /v1/campaigns/{id}           cancel a running campaign at its next batch boundary
//	GET    /v1/campaigns/{id}/signals   stream a campaign's telemetry signals (NDJSON)
//	GET    /v1/experiments              list runnable experiments
//	GET    /v1/points/{hash}            committed result by content hash (?wait= long-polls)
//	POST   /v1/points/{hash}/claim      claim the compute lease on a content hash
//	GET    /v1/cache                    store statistics
//	GET    /v1/cache/entries            list committed points (hash, key, shots)
//	GET    /v1/cache/entries/{hash}     one committed point
//	DELETE /v1/cache                    clear the store
//	DELETE /v1/cache/entries/{hash}     invalidate one point
//	POST   /v1/cache:compact            rewrite the segment to live records
//	GET    /healthz                     liveness + basic shape
//	GET    /metrics                     Prometheus text exposition
//
// Deprecated aliases, kept one release: DELETE /v1/cache/{hash} and
// POST /v1/cache/compact. Errors are a uniform JSON envelope
// {"error":{"code","message"}} with stable machine-readable codes;
// clients of the pre-envelope flat shape opt back into it for one
// release with Accept: application/vnd.radqec.v0+json.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"radqec/internal/client"
	"radqec/internal/control"
	"radqec/internal/core"
	"radqec/internal/exp"
	"radqec/internal/fabric"
	"radqec/internal/faultinject"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Store is the content-addressed result store; nil runs without
	// persistence (every campaign recomputes).
	Store *store.Store
	// Workers sizes the shared sweep worker pool (0 = GOMAXPROCS).
	Workers int
	// Control is the default controller policy campaigns run under;
	// nil or disabled keeps the static legacy scheduling. A request's
	// "controller" field overrides the default per campaign.
	Control *control.Policy
	// Fabric is this node's ring coordinator; nil runs single-node.
	// Fabric mode requires a Store — fetched peer results land there.
	Fabric *fabric.Coordinator
	// EngineWidth is the default batched-engine tile width name for
	// campaigns that do not set engine_width ("" = auto). A request's
	// field overrides it per campaign. Width never changes results —
	// only throughput — so mixed-width rings stay byte-identical.
	EngineWidth string
	// TraceSample is the sampling default for campaigns that do not set
	// trace_sample: "on" records spans for every campaign, "off" (or
	// empty) records none. A request's field — or a sampled incoming
	// traceparent header — overrides it per campaign. Tracing never
	// changes results or content addresses, only observability.
	TraceSample string
	// Logger receives the daemon's structured diagnostics; nil uses
	// slog.Default().
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into.
	Pprof bool
}

// Server is the campaign service. Create with New, mount Handler, and
// Close on shutdown (after the HTTP server has drained).
type Server struct {
	st      *store.Store
	sched   *sweep.Scheduler
	workers int
	control *control.Policy
	width   string
	fabric  *fabric.Coordinator
	// leases arbitrates compute claims on this node's owned hashes:
	// the coordinator's table in fabric mode, a private one otherwise
	// (so the claim endpoint behaves identically either way).
	leases *fabric.LeaseTable
	tele   *telemetry.Registry
	traces *trace.Registry
	log    *slog.Logger
	// node names this daemon in trace spans: the fabric self address in
	// ring mode, "local" single-node.
	node string
	// traceDefault samples campaigns that don't set trace_sample.
	traceDefault bool
	mux          *http.ServeMux
	start        time.Time

	// cancels maps an active campaign's telemetry ID to its context
	// cancel, so DELETE /v1/campaigns/{id} can stop it mid-stream.
	cancelMu sync.Mutex
	cancels  map[int64]context.CancelCauseFunc

	campaignsTotal     atomic.Int64
	campaignsActive    atomic.Int64
	campaignErrors     atomic.Int64
	campaignsCancelled atomic.Int64
	workerPanics       atomic.Int64
	pointsComputed     atomic.Int64
	pointsCached       atomic.Int64
	shotsComputed      atomic.Int64
}

// New builds the server and starts its shared worker pool.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		st:           cfg.Store,
		sched:        sweep.NewScheduler(workers),
		workers:      workers,
		control:      cfg.Control,
		width:        cfg.EngineWidth,
		fabric:       cfg.Fabric,
		tele:         telemetry.NewRegistry(),
		traces:       trace.NewRegistry(),
		log:          cfg.Logger,
		node:         "local",
		traceDefault: cfg.TraceSample == "on",
		mux:          http.NewServeMux(),
		start:        time.Now(),
		cancels:      make(map[int64]context.CancelCauseFunc),
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.fabric != nil {
		s.leases = s.fabric.Leases()
		s.node = s.fabric.Self()
	} else {
		s.leases = fabric.NewLeaseTable()
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaign)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/signals", s.handleSignals)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/trace", s.handleCampaignTrace)
	s.mux.HandleFunc("GET /v1/traces/{trace_id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/points/{hash}", s.handlePointLookup)
	s.mux.HandleFunc("POST /v1/points/{hash}/claim", s.handlePointClaim)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	s.mux.HandleFunc("GET /v1/cache/entries", s.handleCacheEntries)
	s.mux.HandleFunc("GET /v1/cache/entries/{hash}", s.handleCacheEntry)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheClear)
	s.mux.HandleFunc("DELETE /v1/cache/entries/{hash}", s.handleCacheInvalidate)
	s.mux.HandleFunc("POST /v1/cache:compact", s.handleCacheCompact)
	// Deprecated aliases, kept one release. Responses carry a
	// Deprecation header naming the replacement.
	s.mux.HandleFunc("DELETE /v1/cache/{hash}", deprecated("DELETE /v1/cache/entries/{hash}", s.handleCacheInvalidate))
	s.mux.HandleFunc("POST /v1/cache/compact", deprecated("POST /v1/cache:compact", s.handleCacheCompact))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// deprecated wraps a handler for a surface kept one release past its
// replacement: the response advertises the successor in a Deprecation
// header (draft-ietf-httpapi-deprecation-header shape).
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("X-Radqec-Successor", successor)
		h(w, r)
	}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the shared worker pool after in-flight campaigns drain.
func (s *Server) Close() { s.sched.Close() }

// CampaignRequest is the JSON body of POST /v1/campaigns — the wire
// type lives in package client so the daemon, the fabric coordinator
// and Go callers share one definition. Zero fields take the CLI
// defaults, so {"experiment":"fig5"} is a complete request.
type CampaignRequest = client.CampaignRequest

// validateRequest mirrors the CLI's flag validation so a bad request is
// a 400 naming the constraint, never a panic in a sweep worker.
func validateRequest(r CampaignRequest) error {
	if _, ok := exp.Find(r.Experiment); !ok {
		return fmt.Errorf("unknown experiment %q", r.Experiment)
	}
	if r.Engine != "" {
		if _, err := core.ResolveEngine(r.Engine); err != nil {
			return fmt.Errorf("unknown engine %q (want one of %v)", r.Engine, exp.Engines())
		}
	}
	if r.Decoder != "" && !slices.Contains(exp.Decoders(), r.Decoder) {
		return fmt.Errorf("unknown decoder %q (want one of %v)", r.Decoder, exp.Decoders())
	}
	if r.EngineWidth != "" {
		if _, err := core.ResolveEngineWidth(r.EngineWidth); err != nil {
			return fmt.Errorf("unknown engine width %q (want one of %v)", r.EngineWidth, core.Widths())
		}
	}
	if r.Shots < 0 {
		return fmt.Errorf("shots %d out of range (want >= 0; 0 = default)", r.Shots)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("p %g out of range (want a probability in [0,1])", r.P)
	}
	if r.NS < 0 {
		return fmt.Errorf("ns %d out of range (want >= 0; 0 = default)", r.NS)
	}
	if r.Rounds != 0 && r.Rounds < 2 {
		return fmt.Errorf("rounds %d out of range (want >= 2 stabilization rounds; 0 = default)", r.Rounds)
	}
	if r.CI < 0 || r.CI >= 0.5 {
		return fmt.Errorf("ci %g out of range (want 0 <= ci < 0.5; 0 disables adaptive shots)", r.CI)
	}
	if r.MaxShots < 0 {
		return fmt.Errorf("maxshots %d out of range (want >= 0)", r.MaxShots)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers %d out of range (want >= 0; 0 = whole pool)", r.Workers)
	}
	if r.Dwell < 0 {
		return fmt.Errorf("dwell %d out of range (want >= 0 policy batches; 0 = default)", r.Dwell)
	}
	if r.Hysteresis < 0 || r.Hysteresis >= 1 {
		return fmt.Errorf("hysteresis %g out of range (want 0 <= hysteresis < 1; 0 = default)", r.Hysteresis)
	}
	if r.TraceSample != "" && r.TraceSample != "on" && r.TraceSample != "off" {
		return fmt.Errorf("bad trace_sample %q (want on or off; empty = daemon default)", r.TraceSample)
	}
	return nil
}

// traceRecorder resolves the campaign's sampling decision and returns
// its recorder (nil = unsampled). A sampled incoming traceparent wins
// unconditionally — the originating node already decided to trace this
// campaign, and a shard that opts out would leave a hole in the
// stitched trace — then the request's trace_sample, then the daemon
// default. A malformed traceparent header is ignored per the W3C
// spec rather than rejected.
func (s *Server) traceRecorder(r *http.Request, req CampaignRequest) *trace.Recorder {
	if h := r.Header.Get(trace.Header); h != "" {
		if tid, sid, sampled, err := trace.ParseTraceparent(h); err == nil && sampled {
			return trace.Adopt(tid, sid, s.node)
		}
	}
	sample := s.traceDefault
	switch req.TraceSample {
	case "on":
		sample = true
	case "off":
		sample = false
	}
	if !sample {
		return nil
	}
	return trace.New(s.node)
}

// controlPolicy resolves the campaign's controller policy: the request
// override wins, then the daemon default; knobs left zero inherit the
// daemon's, then the package defaults.
func (s *Server) controlPolicy(r CampaignRequest) *control.Policy {
	enabled := s.control != nil && s.control.Enabled
	if r.Controller != nil {
		enabled = *r.Controller
	}
	if !enabled {
		return nil
	}
	pol := control.Policy{Enabled: true, Dwell: r.Dwell, Hysteresis: r.Hysteresis}
	if s.control != nil {
		if pol.Dwell == 0 {
			pol.Dwell = s.control.Dwell
		}
		if pol.Hysteresis == 0 {
			pol.Hysteresis = s.control.Hysteresis
		}
		pol.MaxChunk = s.control.MaxChunk
	}
	return &pol
}

// campaignConfig lowers the request onto an experiment config bound to
// the server's shared scheduler, store and (in fabric mode) ring.
func (s *Server) campaignConfig(r CampaignRequest) exp.Config {
	workers := s.workers
	if r.Workers > 0 && r.Workers < workers {
		workers = r.Workers
	}
	seed := uint64(1) // the CLI's -seed default
	if r.Seed != nil {
		seed = *r.Seed
	}
	width := s.width
	if r.EngineWidth != "" {
		width = r.EngineWidth
	}
	cfg := exp.Config{
		Shots:     r.Shots,
		Seed:      seed,
		Workers:   workers,
		P:         r.P,
		NS:        r.NS,
		Rounds:    r.Rounds,
		CI:        r.CI,
		MaxShots:  r.MaxShots,
		Engine:    r.Engine,
		Width:     width,
		Decoder:   r.Decoder,
		Scheduler: s.sched,
		Resume:    true,
		Control:   s.controlPolicy(r),
	}
	if s.st != nil && !r.NoCache {
		cfg.Cache = s.st
		// Shard the campaign over the ring. NoCache campaigns are
		// never sharded: without content addresses there is nothing to
		// hash onto peers or fetch back from them.
		if s.fabric != nil {
			cfg.Remote = s.fabric
		}
	}
	return cfg
}

// errorRecord is the NDJSON record reporting a campaign failure after
// streaming has begun (the status line is already committed by then).
// Cancelled distinguishes a deliberate stop — partial checkpoints are
// flushed and resubmission resumes — from an engine fault.
type errorRecord struct {
	Type      string `json:"type"`
	Error     string `json:"error"`
	Cancelled bool   `json:"cancelled,omitempty"`
}

// errCancelled is the cancel cause installed by DELETE
// /v1/campaigns/{id}; sweep.Run returns it as the campaign error.
var errCancelled = errors.New("campaign cancelled by DELETE /v1/campaigns/{id}")

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CampaignRequest
	if err := dec.Decode(&req); err != nil {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := validateRequest(req); err != nil {
		apiError(w, r, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	if req.Fabric && s.fabric == nil {
		apiError(w, r, http.StatusBadRequest, codeInvalidArgument,
			"fabric submission to a node with no -peers ring")
		return
	}
	e, _ := exp.Find(req.Experiment)
	cfg := s.campaignConfig(req)
	tc := s.tele.New(req.Experiment)
	defer s.tele.Finish(tc)
	cfg.Telemetry = tc

	// Sampling decision, then the node-local campaign root span. Every
	// local span parents under it, and — when the campaign arrived over
	// the fabric — it parents under the submitter's span, so the whole
	// ring stitches into one trace.
	rec := s.traceRecorder(r, req)
	var root trace.ActiveSpan
	if rec.Sampled() {
		s.traces.Add(tc.ID(), rec)
		root = rec.Campaign(req.Experiment)
		cfg.Trace = root.Context()
		defer func() {
			root.End()
			s.traces.Finish(tc.ID())
		}()
	}

	// Campaign lifecycle: by default the campaign detaches from the
	// connection (a vanished client must not waste the shots already
	// spent — points keep landing in the store). ?detach=0 opts into
	// client-disconnect cancellation for interactive use. Either way
	// DELETE /v1/campaigns/{id} cancels, and cancellation is observed
	// at batch boundaries with checkpoints flushed, so a resubmission
	// resumes instead of restarting.
	base := context.Background()
	if r.URL.Query().Get("detach") == "0" {
		base = r.Context()
	}
	ctx, cancel := context.WithCancelCause(base)
	defer cancel(nil)
	// The root span rides the campaign context so every outbound fabric
	// hop — fan-out submits, point long-polls, lease claims — carries
	// its traceparent (no-op when unsampled).
	ctx = trace.ContextWith(ctx, root.Context())
	cfg.Context = ctx
	s.cancelMu.Lock()
	s.cancels[tc.ID()] = cancel
	s.cancelMu.Unlock()
	defer func() {
		s.cancelMu.Lock()
		delete(s.cancels, tc.ID())
		s.cancelMu.Unlock()
	}()

	// A client-originated campaign on a fabric node fans out to every
	// peer before local execution starts, so the whole ring computes
	// its shards concurrently. Peer re-submissions carry Fabric and do
	// not fan out again; peer campaigns are tied to this campaign's
	// context, so they die with it.
	if s.fabric != nil && !req.Fabric && cfg.Cache != nil {
		s.fabric.FanOut(ctx, req)
	}

	s.campaignsTotal.Add(1)
	s.campaignsActive.Add(1)
	defer s.campaignsActive.Add(-1)

	// The campaign ID rides a header (not a stream record) so existing
	// NDJSON consumers keep parsing points and tables untouched; clients
	// follow it to GET /v1/campaigns/{id}/signals.
	w.Header().Set("X-Radqec-Campaign-Id", strconv.FormatInt(tc.ID(), 10))
	if rec.Sampled() {
		// The trace ID rides a header too, so clients can fetch
		// GET /v1/traces/{trace_id} from any node of the ring.
		w.Header().Set("X-Radqec-Trace-Id", rec.TraceID().String())
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from batching the stream
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	// OnPoint runs on a shared pool worker, so a stalled client must
	// never block it indefinitely: each write gets a fresh deadline,
	// and after the first failed write the stream is considered gone —
	// later points skip encoding entirely. The campaign itself keeps
	// running either way, so its points still land in the store for
	// the next submission.
	clientGone := false
	emit := func(v any) {
		if clientGone {
			return
		}
		// Failpoints for chaos tests: stall one stream write, or drop
		// the client as a write failure would.
		faultinject.Eval(faultinject.StreamStall)
		if faultinject.Eval(faultinject.StreamDrop) != nil {
			clientGone = true
			return
		}
		rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if enc.Encode(v) != nil {
			clientGone = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	cfg.OnPoint = func(res sweep.Result) {
		if res.Cached {
			s.pointsCached.Add(1)
		} else {
			s.pointsComputed.Add(1)
			s.shotsComputed.Add(int64(res.Shots))
		}
		emit(exp.NewPointRecord(e.Name, res))
	}
	start := time.Now()
	tab, err := e.Run(cfg)
	if err != nil {
		cancelled := errors.Is(err, context.Canceled) || errors.Is(err, errCancelled)
		var pe *sweep.PointError
		switch {
		case errors.As(err, &pe):
			// A worker panic: the recover boundary converted it into a
			// per-point error and this campaign alone failed. Log the
			// captured stack for the operator; siblings and the daemon
			// keep running.
			s.workerPanics.Add(1)
			s.campaignErrors.Add(1)
			log := s.log
			if rec.Sampled() {
				log = log.With("trace_id", rec.TraceID().String())
			}
			log.Error("server: sweep worker panic failed the campaign",
				"campaign", tc.ID(),
				"experiment", req.Experiment,
				"point", pe.Key,
				"hash", pe.Hash,
				"panic", fmt.Sprint(pe.Value),
				"stack", string(pe.Stack))
		case cancelled:
			s.campaignsCancelled.Add(1)
		default:
			s.campaignErrors.Add(1)
		}
		// Cancellation flushed partial checkpoints at batch boundaries;
		// make them durable now so an immediate resubmission resumes.
		if s.st != nil {
			s.st.Sync()
		}
		emit(errorRecord{Type: "error", Error: err.Error(), Cancelled: cancelled})
		return
	}
	emit(exp.NewTableRecord(e.Name, tab, time.Since(start)))
}

// handleCampaignCancel cancels a running campaign. The campaign
// observes the cancel at its next batch boundary, flushes partial
// checkpoints, and ends its stream with a cancelled error record;
// resubmitting the same request resumes from those checkpoints.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad campaign id %q", r.PathValue("id")))
		return
	}
	s.cancelMu.Lock()
	cancel, ok := s.cancels[id]
	s.cancelMu.Unlock()
	if !ok {
		apiError(w, r, http.StatusNotFound, codeNotFound, fmt.Sprintf("campaign %d is not running", id))
		return
	}
	cancel(errCancelled)
	writeJSON(w, map[string]any{"status": "cancelling", "id": id})
}

// streamWriteTimeout bounds how long one NDJSON record write may block
// on a stalled client before the stream is abandoned; it exists so a
// dead connection can never pin a shared pool worker.
const streamWriteTimeout = 30 * time.Second

// Signals-stream tuning: how many ring entries one poll drains, and how
// long a live follow sleeps when the ring is drained.
const (
	signalsChunk        = 256
	signalsPollInterval = 100 * time.Millisecond
)

// signalRecord and statsRecord are the NDJSON records of the signals
// stream: every telemetry signal flattened under type "signal", closed
// by one aggregate "stats" record.
type signalRecord struct {
	Type string `json:"type"`
	telemetry.Signal
}

type statsRecord struct {
	Type string `json:"type"`
	telemetry.Stats
}

// handleSignals streams a campaign's telemetry ring as NDJSON: all
// retained signals from the requested sequence (?from=N, default 0),
// then — unless ?follow=0 asks for a snapshot — new signals as the
// campaign produces them, closed by a final stats record once the
// campaign finishes. Readers that fall more than the ring size behind
// see a sequence gap, never blocked writers: telemetry recording is
// lock-free and the stream only polls.
func (s *Server) handleSignals(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad campaign id %q", r.PathValue("id")))
		return
	}
	c, ok := s.tele.Get(id)
	if !ok {
		apiError(w, r, http.StatusNotFound, codeNotFound, fmt.Sprintf("campaign %d unknown (not active or rotated out of the recent-campaign tail)", id))
		return
	}
	var seq uint64
	if from := r.URL.Query().Get("from"); from != "" {
		seq, err = strconv.ParseUint(from, 10, 64)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad from sequence %q", from))
			return
		}
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for {
		sigs, next := c.Since(seq, signalsChunk)
		seq = next
		for _, sig := range sigs {
			rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
			if enc.Encode(signalRecord{Type: "signal", Signal: sig}) != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if len(sigs) > 0 {
			continue // drain the backlog before sleeping
		}
		// The done check comes after a drained read, so every signal
		// recorded before Finish is streamed before the stream closes.
		if c.Done() || !follow {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(signalsPollInterval):
		}
	}
	rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	if enc.Encode(statsRecord{Type: "stats", Stats: c.Stats()}) == nil && flusher != nil {
		flusher.Flush()
	}
}

// peerTraceTimeout bounds the fan-in to peers when stitching a trace:
// a slow or dead peer delays the read at most this long and then just
// contributes no spans.
const peerTraceTimeout = 5 * time.Second

// handleCampaignTrace serves a campaign's recorded trace spans. By
// default the response is the whole stitched trace — this node's spans
// plus every ring peer's shard of the same trace id; ?local=1 restricts
// it to this node's spans (the form peers use for stitching, so fan-in
// never recurses). ?format=chrome renders Chrome trace-event JSON
// loadable in Perfetto instead of NDJSON.
func (s *Server) handleCampaignTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad campaign id %q", r.PathValue("id")))
		return
	}
	rec := s.traces.ByCampaign(id)
	if rec == nil {
		apiError(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("campaign %d has no recorded trace (unsampled, unknown, or rotated out of the recent-campaign tail)", id))
		return
	}
	s.serveTrace(w, r, rec)
}

// handleTraceByID serves a trace by its 32-hex trace id — the handle a
// peer or a client holds when it doesn't know this node's campaign id
// for the shard. Same query surface as the campaign form.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	tid, ok := parseTraceID(r.PathValue("trace_id"))
	if !ok {
		apiError(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("bad trace id %q (want 32 hex characters)", r.PathValue("trace_id")))
		return
	}
	rec := s.traces.ByTrace(tid)
	if rec == nil {
		apiError(w, r, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("trace %s not recorded on this node", tid))
		return
	}
	s.serveTrace(w, r, rec)
}

// parseTraceID parses a 32-hex-character trace id.
func parseTraceID(raw string) (trace.TraceID, bool) {
	var tid trace.TraceID
	if len(raw) != 2*len(tid) {
		return tid, false
	}
	for i := 0; i < len(tid); i++ {
		hi := hexVal(raw[2*i])
		lo := hexVal(raw[2*i+1])
		if hi < 0 || lo < 0 {
			return tid, false
		}
		tid[i] = byte(hi<<4 | lo)
	}
	return tid, true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// serveTrace renders a recorder's spans — stitched with the peers'
// shards unless ?local=1 — as NDJSON span records or, with
// ?format=chrome, as a Chrome trace-event JSON document.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request, rec *trace.Recorder) {
	format := r.URL.Query().Get("format")
	if format != "" && format != "ndjson" && format != "chrome" {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad format %q (want ndjson or chrome)", format))
		return
	}
	spans := rec.Spans()
	if s.fabric != nil && r.URL.Query().Get("local") != "1" {
		spans = append(spans, s.peerSpans(r.Context(), rec.TraceID())...)
	}
	slices.SortStableFunc(spans, func(a, b trace.Span) int {
		if a.StartNS != b.StartNS {
			if a.StartNS < b.StartNS {
				return -1
			}
			return 1
		}
		return 0
	})
	if format == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range spans {
		if enc.Encode(&spans[i]) != nil {
			return
		}
	}
}

// peerSpans fans in the other ring nodes' shards of a trace. Each peer
// is asked for its local spans only, so stitching never recurses; a
// down peer or one that never sampled the trace contributes nothing
// rather than failing the read.
func (s *Server) peerSpans(ctx context.Context, tid trace.TraceID) []trace.Span {
	ctx, cancel := context.WithTimeout(ctx, peerTraceTimeout)
	defer cancel()
	var (
		mu  sync.Mutex
		out []trace.Span
		wg  sync.WaitGroup
	)
	for _, peer := range s.fabric.Peers() {
		if peer == s.fabric.Self() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			spans, err := client.New(peer, nil).TraceByID(ctx, tid.String(), true)
			if err != nil {
				s.log.Debug("server: peer trace fetch failed", "peer", peer, "trace_id", tid.String(), "error", err)
				return
			}
			mu.Lock()
			out = append(out, spans...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
	// XXZZRad marks campaigns entering the collapsed-branch
	// approximation domain of the frame engines (see package frame).
	XXZZRad bool `json:"xxzz_rad"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	out := make([]experimentInfo, 0, 16)
	for _, e := range exp.Experiments() {
		out = append(out, experimentInfo{Name: e.Name, Desc: e.Desc, XXZZRad: e.XXZZRad})
	}
	writeJSON(w, out)
}

// errNoStore reports cache endpoints hit on a storeless server.
var errNoStore = errors.New("no store attached (start the daemon with -store)")

// requireStore writes the storeless-daemon error and reports whether
// the handler may proceed.
func (s *Server) requireStore(w http.ResponseWriter, r *http.Request) bool {
	if s.st == nil {
		apiError(w, r, http.StatusNotFound, codeNoStore, errNoStore.Error())
		return false
	}
	return true
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	writeJSON(w, s.st.Stats())
}

func (s *Server) handleCacheEntries(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	writeJSON(w, s.st.Entries())
}

func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	hash := r.PathValue("hash")
	cp, ok := s.st.Lookup(hash)
	if !ok {
		apiError(w, r, http.StatusNotFound, codeNotFound, fmt.Sprintf("hash %q not committed in store", hash))
		return
	}
	writeJSON(w, client.PointResponse{Hash: hash, Point: cp})
}

func (s *Server) handleCacheClear(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	if err := s.st.Clear(); err != nil {
		apiError(w, r, http.StatusInternalServerError, codeStoreError, err.Error())
		return
	}
	writeJSON(w, map[string]string{"status": "cleared"})
}

func (s *Server) handleCacheInvalidate(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	hash := r.PathValue("hash")
	if !s.st.Invalidate(hash) {
		apiError(w, r, http.StatusNotFound, codeNotFound, fmt.Sprintf("hash %q not in store", hash))
		return
	}
	writeJSON(w, map[string]string{"status": "invalidated", "hash": hash})
}

func (s *Server) handleCacheCompact(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	if err := s.st.Compact(); err != nil {
		apiError(w, r, http.StatusInternalServerError, codeStoreError, err.Error())
		return
	}
	writeJSON(w, s.st.Stats())
}

// Point-lookup long-poll tuning: the wait cap and the commit-poll
// cadence.
const (
	pointWaitMax  = 30 * time.Second
	pointWaitPoll = 25 * time.Millisecond
)

// handlePointLookup serves one committed result by content hash — the
// fabric's cross-node read-through. ?wait=DUR long-polls up to the cap
// so a watcher polling an owner mid-compute picks the result up the
// moment it commits instead of a full poll interval later.
func (s *Server) handlePointLookup(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w, r) {
		return
	}
	hash := r.PathValue("hash")
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		var err error
		if wait, err = time.ParseDuration(ws); err != nil {
			apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad wait duration %q", ws))
			return
		}
		if wait > pointWaitMax {
			wait = pointWaitMax
		}
	}
	deadline := time.Now().Add(wait)
	for {
		if cp, ok := s.st.Lookup(hash); ok {
			writeJSON(w, client.PointResponse{Hash: hash, Point: cp})
			return
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			apiError(w, r, http.StatusNotFound, codeNotCommitted, fmt.Sprintf("hash %q has no committed result on this node", hash))
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(pointWaitPoll):
		}
	}
}

// claimRequest is the body of POST /v1/points/{hash}/claim.
type claimRequest struct {
	Owner string `json:"owner"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

// handlePointClaim arbitrates the compute lease on a content hash —
// the fabric's cross-node single-flight handshake. Every outcome is a
// 200 with a status: "committed" (the result already exists; fetch it
// instead of computing), "granted" (the caller owns the compute until
// the TTL lapses), or "held" (another node is computing; back off).
func (s *Server) handlePointClaim(w http.ResponseWriter, r *http.Request) {
	defer io.Copy(io.Discard, r.Body)
	hash := r.PathValue("hash")
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Owner == "" {
		apiError(w, r, http.StatusBadRequest, codeInvalidArgument, "owner is required")
		return
	}
	// A committed result beats any lease: the arbitration exists only
	// to keep two nodes from computing the same point, and a committed
	// point is past computing.
	if s.st != nil {
		if _, ok := s.st.Lookup(hash); ok {
			writeJSON(w, client.Claim{Status: client.ClaimCommitted})
			return
		}
	}
	ttl := time.Duration(req.TTLMS) * time.Millisecond
	ok, holder, remaining := s.leases.Claim(hash, req.Owner, ttl)
	if !ok {
		writeJSON(w, client.Claim{Status: client.ClaimHeld, Holder: holder, RemainingMS: remaining.Milliseconds()})
		return
	}
	writeJSON(w, client.Claim{Status: client.ClaimGranted, TTLMS: remaining.Milliseconds()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":           "ok",
		"uptime_seconds":   time.Since(s.start).Seconds(),
		"workers":          s.workers,
		"store":            s.st != nil,
		"campaigns_active": s.campaignsActive.Load(),
	}
	if s.st != nil && s.st.Stats().Degraded {
		// The store lost its writes but reads still serve: the daemon
		// stays useful, so this is "degraded", not down.
		body["status"] = "degraded"
		body["store_degraded"] = true
	}
	if s.fabric != nil {
		body["fabric_peers"] = len(s.fabric.Peers())
		body["fabric_peers_alive"] = s.fabric.AliveCount()
	}
	writeJSON(w, body)
}

// handleMetrics serves Prometheus text exposition format 0.0.4: every
// series carries # HELP and # TYPE lines, and the controller's
// per-campaign gauges are labelled by campaign id and experiment. A
// scrape that Accepts application/openmetrics-text gets the
// OpenMetrics rendering instead, whose latency-histogram buckets carry
// trace-id exemplars (the classic 0.0.4 parser can't represent
// exemplars, so they are omitted there).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	if openMetrics {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	}
	if openMetrics {
		defer fmt.Fprintln(w, "# EOF")
	}
	// Path latency histograms, fed by sampled trace spans: the four
	// paths that bound campaign wall-clock, each bucket remembering the
	// trace that last landed in it.
	for _, h := range trace.PathHistograms() {
		h.WritePrometheus(w, "radqecd_"+h.Path()+"_seconds", openMetrics)
	}
	write := func(name, kind, help string, v any) {
		fmt.Fprintf(w, "# HELP radqecd_%s %s\n# TYPE radqecd_%s %s\nradqecd_%s %v\n", name, help, name, kind, name, v)
	}
	write("uptime_seconds", "gauge", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	write("workers", "gauge", "Size of the shared sweep worker pool.", s.workers)
	write("campaigns_total", "counter", "Campaigns accepted since start.", s.campaignsTotal.Load())
	write("campaigns_active", "gauge", "Campaigns currently running.", s.campaignsActive.Load())
	write("campaign_errors_total", "counter", "Campaigns that ended in an error.", s.campaignErrors.Load())
	write("campaigns_cancelled_total", "counter", "Campaigns cancelled by DELETE or client disconnect.", s.campaignsCancelled.Load())
	write("worker_panics_total", "counter", "Worker panics converted into per-campaign errors.", s.workerPanics.Load())
	write("points_computed_total", "counter", "Sweep points computed by engines (cache misses).", s.pointsComputed.Load())
	write("points_cached_total", "counter", "Sweep points served from the result store.", s.pointsCached.Load())
	write("shots_computed_total", "counter", "Monte-Carlo shots executed by engines.", s.shotsComputed.Load())
	if s.st != nil {
		st := s.st.Stats()
		write("store_commits", "gauge", "Committed points resident in the result store.", st.Commits)
		write("store_checkpoints", "gauge", "Partial checkpoints resident in the result store.", st.Checkpoints)
		write("store_segment_bytes", "gauge", "Bytes in the result store's log segments.", st.SegmentBytes)
		write("store_hits_total", "counter", "Result-store lookups that hit.", st.Hits)
		write("store_misses_total", "counter", "Result-store lookups that missed.", st.Misses)
		write("store_resident", "gauge", "Entries resident in the result store index.", st.Resident)
		degraded := 0
		if st.Degraded {
			degraded = 1
		}
		write("store_degraded", "gauge", "1 while the store is in read-through/no-write degraded mode.", degraded)
		write("store_quarantined_records", "gauge", "Corrupt records quarantined at replay or reload.", st.Quarantined)
		write("store_write_retries_total", "counter", "Segment append attempts retried after a transient fault.", st.WriteRetries)
		write("store_write_errors_total", "counter", "Segment appends that exhausted their retry budget.", st.WriteErrors)
		write("store_recoveries_total", "counter", "Degraded-to-healthy store transitions.", st.Recoveries)
	}
	if s.fabric != nil {
		fs := s.fabric.Stats()
		write("fabric_peers", "gauge", "Static ring size, self included.", fs.Peers)
		write("fabric_peers_alive", "gauge", "Ring members currently considered alive.", fs.PeersAlive)
		write("fabric_remote_hits_total", "counter", "Points resolved from a peer's committed result.", fs.RemoteHits)
		write("fabric_remote_misses_total", "counter", "Owner polls that found no committed result yet.", fs.RemoteMisses)
		write("fabric_takeovers_total", "counter", "Remotely-owned points computed locally after owner failure or lease grant.", fs.Takeovers)
		write("fabric_peer_submits_total", "counter", "Campaign fan-out submissions to peers.", fs.PeerSubmits)
		write("fabric_peer_failures_total", "counter", "Failed calls to peers (any endpoint).", fs.PeerFailures)
	}
	write("fabric_leases_granted_total", "counter", "Point compute leases granted by this node.", s.leases.Granted())
	write("fabric_leases_denied_total", "counter", "Point compute leases denied while held.", s.leases.Denied())
	// Per-campaign controller gauges, one labelled line per active
	// campaign under a single HELP/TYPE block per series.
	active := s.tele.Active()
	if len(active) == 0 {
		return
	}
	type row struct {
		labels string
		stats  telemetry.Stats
	}
	rows := make([]row, 0, len(active))
	for _, c := range active {
		rows = append(rows, row{
			labels: fmt.Sprintf(`{campaign="%d",experiment="%s"}`, c.ID(), c.Experiment()),
			stats:  c.Stats(),
		})
	}
	gauge := func(name, help string, value func(telemetry.Stats) any) {
		fmt.Fprintf(w, "# HELP radqecd_%s %s\n# TYPE radqecd_%s gauge\n", name, help, name)
		for _, r := range rows {
			fmt.Fprintf(w, "radqecd_%s%s %v\n", name, r.labels, value(r.stats))
		}
	}
	gauge("campaign_shots_per_sec", "Aggregate engine shot rate of the campaign.", func(st telemetry.Stats) any { return st.ShotsPerSec })
	gauge("campaign_batch_size", "Chunk size the controller currently hands to engines.", func(st telemetry.Stats) any { return st.ChunkSize })
	gauge("campaign_queue_depth", "Points of the campaign still queued on the scheduler.", func(st telemetry.Stats) any { return st.QueueDepth })
	gauge("campaign_dwell_left", "Policy batches before the controller may re-choose its chunk size.", func(st telemetry.Stats) any { return st.DwellLeft })
	gauge("campaign_engine_width_lanes", "Resolved batched-engine tile width of the campaign (0 = not yet routed).", func(st telemetry.Stats) any {
		if st.Route == nil {
			return 0
		}
		return st.Route.Width
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Stable machine-readable error codes of the v1 envelope. Clients
// branch on these, never on message text.
const (
	codeBadRequest      = "bad_request"      // unparsable body, id, or query parameter
	codeInvalidArgument = "invalid_argument" // parsed fine, failed validation
	codeNotFound        = "not_found"        // campaign, hash, or entry unknown
	codeNoStore         = "no_store"         // cache/point API on a storeless daemon
	codeStoreError      = "store_error"      // store operation failed
	codeNotCommitted    = "point_not_committed"
)

// legacyAccept is the media type a pre-envelope client sends to keep
// the flat {"error":"msg"} shape for one more release.
const legacyAccept = "application/vnd.radqec.v0+json"

// apiError writes the uniform v1 error envelope
// {"error":{"code","message"}}. Clients that explicitly Accept the v0
// media type get the legacy flat shape for one release (deprecated).
func apiError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if r != nil && strings.Contains(r.Header.Get("Accept"), legacyAccept) {
		w.Header().Set("Deprecation", "true")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": msg})
		return
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}
