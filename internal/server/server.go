// Package server exposes the radqec campaign engine over HTTP: clients
// submit any experiment of the registry as JSON and stream its sweep
// points back as NDJSON while the workers produce them, with the final
// table as the last record — the exact records the CLI's -json mode
// emits, so a daemon stream and a local run are interchangeable.
//
// All campaigns, however many clients are connected, run on one shared
// sweep.Scheduler: the worker pool is sized once at startup and points
// are handed out round-robin across active campaigns, so concurrent
// clients share the CPU fairly instead of oversubscribing it. When a
// store is attached, every point is content-addressed into it and
// re-submissions replay from disk without touching the engines.
//
// Endpoints:
//
//	POST   /v1/campaigns       submit a campaign, stream NDJSON points + table
//	GET    /v1/experiments     list runnable experiments
//	GET    /v1/cache           store statistics
//	GET    /v1/cache/entries   list committed points (hash, key, shots)
//	DELETE /v1/cache           clear the store
//	DELETE /v1/cache/{hash}    invalidate one point
//	POST   /v1/cache/compact   rewrite the segment to live records
//	GET    /healthz            liveness + basic shape
//	GET    /metrics            Prometheus-style text metrics
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"slices"
	"sync/atomic"
	"time"

	"radqec/internal/core"
	"radqec/internal/exp"
	"radqec/internal/store"
	"radqec/internal/sweep"
)

// Config assembles a Server.
type Config struct {
	// Store is the content-addressed result store; nil runs without
	// persistence (every campaign recomputes).
	Store *store.Store
	// Workers sizes the shared sweep worker pool (0 = GOMAXPROCS).
	Workers int
}

// Server is the campaign service. Create with New, mount Handler, and
// Close on shutdown (after the HTTP server has drained).
type Server struct {
	st      *store.Store
	sched   *sweep.Scheduler
	workers int
	mux     *http.ServeMux
	start   time.Time

	campaignsTotal  atomic.Int64
	campaignsActive atomic.Int64
	campaignErrors  atomic.Int64
	pointsComputed  atomic.Int64
	pointsCached    atomic.Int64
	shotsComputed   atomic.Int64
}

// New builds the server and starts its shared worker pool.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		st:      cfg.Store,
		sched:   sweep.NewScheduler(workers),
		workers: workers,
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaign)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	s.mux.HandleFunc("GET /v1/cache/entries", s.handleCacheEntries)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheClear)
	s.mux.HandleFunc("DELETE /v1/cache/{hash}", s.handleCacheInvalidate)
	s.mux.HandleFunc("POST /v1/cache/compact", s.handleCacheCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the shared worker pool after in-flight campaigns drain.
func (s *Server) Close() { s.sched.Close() }

// CampaignRequest is the JSON body of POST /v1/campaigns. Zero fields
// take the CLI defaults, so {"experiment":"fig5"} is a complete
// request.
type CampaignRequest struct {
	Experiment string `json:"experiment"`
	Shots      int    `json:"shots,omitempty"`
	// Seed is a pointer so an omitted field takes the CLI's default
	// seed (1) while an explicit {"seed":0} still means seed zero.
	Seed     *uint64 `json:"seed,omitempty"`
	P        float64 `json:"p,omitempty"`
	NS       int     `json:"ns,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	Engine   string  `json:"engine,omitempty"`
	Decoder  string  `json:"decoder,omitempty"`
	CI       float64 `json:"ci,omitempty"`
	MaxShots int     `json:"maxshots,omitempty"`
	// Workers caps this campaign's concurrency inside the shared pool
	// (0 = the whole pool). It never grows the pool.
	Workers int `json:"workers,omitempty"`
	// NoCache bypasses the store for this campaign: nothing is read
	// from or written to it.
	NoCache bool `json:"no_cache,omitempty"`
}

// validate mirrors the CLI's flag validation so a bad request is a 400
// naming the constraint, never a panic in a sweep worker.
func (r CampaignRequest) validate() error {
	if _, ok := exp.Find(r.Experiment); !ok {
		return fmt.Errorf("unknown experiment %q", r.Experiment)
	}
	if r.Engine != "" {
		if _, err := core.ResolveEngine(r.Engine); err != nil {
			return fmt.Errorf("unknown engine %q (want one of %v)", r.Engine, exp.Engines())
		}
	}
	if r.Decoder != "" && !slices.Contains(exp.Decoders(), r.Decoder) {
		return fmt.Errorf("unknown decoder %q (want one of %v)", r.Decoder, exp.Decoders())
	}
	if r.Shots < 0 {
		return fmt.Errorf("shots %d out of range (want >= 0; 0 = default)", r.Shots)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("p %g out of range (want a probability in [0,1])", r.P)
	}
	if r.NS < 0 {
		return fmt.Errorf("ns %d out of range (want >= 0; 0 = default)", r.NS)
	}
	if r.Rounds != 0 && r.Rounds < 2 {
		return fmt.Errorf("rounds %d out of range (want >= 2 stabilization rounds; 0 = default)", r.Rounds)
	}
	if r.CI < 0 || r.CI >= 0.5 {
		return fmt.Errorf("ci %g out of range (want 0 <= ci < 0.5; 0 disables adaptive shots)", r.CI)
	}
	if r.MaxShots < 0 {
		return fmt.Errorf("maxshots %d out of range (want >= 0)", r.MaxShots)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers %d out of range (want >= 0; 0 = whole pool)", r.Workers)
	}
	return nil
}

// config lowers the request onto an experiment config bound to the
// server's shared scheduler and store.
func (r CampaignRequest) config(s *Server) exp.Config {
	workers := s.workers
	if r.Workers > 0 && r.Workers < workers {
		workers = r.Workers
	}
	seed := uint64(1) // the CLI's -seed default
	if r.Seed != nil {
		seed = *r.Seed
	}
	cfg := exp.Config{
		Shots:     r.Shots,
		Seed:      seed,
		Workers:   workers,
		P:         r.P,
		NS:        r.NS,
		Rounds:    r.Rounds,
		CI:        r.CI,
		MaxShots:  r.MaxShots,
		Engine:    r.Engine,
		Decoder:   r.Decoder,
		Scheduler: s.sched,
		Resume:    true,
	}
	if s.st != nil && !r.NoCache {
		cfg.Cache = s.st
	}
	return cfg
}

// errorRecord is the NDJSON record reporting a campaign failure after
// streaming has begun (the status line is already committed by then).
type errorRecord struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CampaignRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	e, _ := exp.Find(req.Experiment)
	cfg := req.config(s)

	s.campaignsTotal.Add(1)
	s.campaignsActive.Add(1)
	defer s.campaignsActive.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from batching the stream
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	// OnPoint runs on a shared pool worker, so a stalled client must
	// never block it indefinitely: each write gets a fresh deadline,
	// and after the first failed write the stream is considered gone —
	// later points skip encoding entirely. The campaign itself keeps
	// running either way, so its points still land in the store for
	// the next submission.
	clientGone := false
	emit := func(v any) {
		if clientGone {
			return
		}
		rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if enc.Encode(v) != nil {
			clientGone = true
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	cfg.OnPoint = func(res sweep.Result) {
		if res.Cached {
			s.pointsCached.Add(1)
		} else {
			s.pointsComputed.Add(1)
			s.shotsComputed.Add(int64(res.Shots))
		}
		emit(exp.NewPointRecord(e.Name, res))
	}
	start := time.Now()
	tab, err := e.Run(cfg)
	if err != nil {
		s.campaignErrors.Add(1)
		emit(errorRecord{Type: "error", Error: err.Error()})
		return
	}
	emit(exp.NewTableRecord(e.Name, tab, time.Since(start)))
}

// streamWriteTimeout bounds how long one NDJSON record write may block
// on a stalled client before the stream is abandoned; it exists so a
// dead connection can never pin a shared pool worker.
const streamWriteTimeout = 30 * time.Second

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
	// XXZZRad marks campaigns entering the collapsed-branch
	// approximation domain of the frame engines (see package frame).
	XXZZRad bool `json:"xxzz_rad"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	out := make([]experimentInfo, 0, 16)
	for _, e := range exp.Experiments() {
		out = append(out, experimentInfo{Name: e.Name, Desc: e.Desc, XXZZRad: e.XXZZRad})
	}
	writeJSON(w, out)
}

// errNoStore reports cache endpoints hit on a storeless server.
var errNoStore = errors.New("no store attached (start the daemon with -store)")

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, errNoStore.Error())
		return
	}
	writeJSON(w, s.st.Stats())
}

func (s *Server) handleCacheEntries(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, errNoStore.Error())
		return
	}
	writeJSON(w, s.st.Entries())
}

func (s *Server) handleCacheClear(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, errNoStore.Error())
		return
	}
	if err := s.st.Clear(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]string{"status": "cleared"})
}

func (s *Server) handleCacheInvalidate(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, errNoStore.Error())
		return
	}
	hash := r.PathValue("hash")
	if !s.st.Invalidate(hash) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("hash %q not in store", hash))
		return
	}
	writeJSON(w, map[string]string{"status": "invalidated", "hash": hash})
}

func (s *Server) handleCacheCompact(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, errNoStore.Error())
		return
	}
	if err := s.st.Compact(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, s.st.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":           "ok",
		"uptime_seconds":   time.Since(s.start).Seconds(),
		"workers":          s.workers,
		"store":            s.st != nil,
		"campaigns_active": s.campaignsActive.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	write := func(name string, v any) {
		fmt.Fprintf(w, "radqecd_%s %v\n", name, v)
	}
	write("uptime_seconds", time.Since(s.start).Seconds())
	write("workers", s.workers)
	write("campaigns_total", s.campaignsTotal.Load())
	write("campaigns_active", s.campaignsActive.Load())
	write("campaign_errors_total", s.campaignErrors.Load())
	write("points_computed_total", s.pointsComputed.Load())
	write("points_cached_total", s.pointsCached.Load())
	write("shots_computed_total", s.shotsComputed.Load())
	if s.st != nil {
		st := s.st.Stats()
		write("store_commits", st.Commits)
		write("store_checkpoints", st.Checkpoints)
		write("store_segment_bytes", st.SegmentBytes)
		write("store_hits_total", st.Hits)
		write("store_misses_total", st.Misses)
		write("store_resident", st.Resident)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
