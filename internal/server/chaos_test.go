package server

// Chaos suite for the daemon: campaign cancellation mid-stream with
// byte-identical resume, worker panics that fail one campaign while
// the daemon keeps serving, and degraded-store health reporting.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"radqec/internal/client"
	"radqec/internal/exp"
	"radqec/internal/faultinject"
	"radqec/internal/sweep"
)

// startCampaign submits a campaign through the typed client and
// returns the live stream (records still arriving); detach=false maps
// to the old ?detach=0 query.
func startCampaign(t *testing.T, ts *httptest.Server, req CampaignRequest, detach bool) *client.CampaignStream {
	t.Helper()
	opts := client.SubmitOptions{}
	if !detach {
		opts.Detach = &detach
	}
	stream, err := client.New(ts.URL, ts.Client()).SubmitCampaign(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// drainStream reads a campaign stream to EOF and returns its records.
func drainStream(t *testing.T, stream *client.CampaignStream) []client.Record {
	t.Helper()
	defer stream.Close()
	var recs []client.Record
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

// TestChaosDeleteCancelsAndResumesByteIdentical: DELETE on a running
// campaign ends its stream with a cancelled error record, and an
// identical resubmission resumes from the flushed checkpoints to the
// exact table a never-cancelled run produces.
func TestChaosDeleteCancelsAndResumesByteIdentical(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts, _ := newTestServer(t)
	req := CampaignRequest{Experiment: "threshold", Shots: 384, Seed: seed(31)}
	ref, err := exp.Threshold(exp.Config{Shots: 384, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Stall every store write so the campaign is still mid-flight when
	// the DELETE lands; the stall changes timing only, never results.
	if err := faultinject.Enable(faultinject.StoreWriteSlow, "sleep(15ms)"); err != nil {
		t.Fatal(err)
	}
	stream := startCampaign(t, ts, req, true)
	if err := client.New(ts.URL, ts.Client()).Cancel(context.Background(), stream.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	recs := drainStream(t, stream)
	if len(recs) == 0 {
		t.Fatal("cancelled stream carried no records")
	}
	last := recs[len(recs)-1]
	if last.Err == nil || !last.Err.Cancelled {
		t.Fatalf("cancelled stream ended with %+v, want a cancelled error record", last)
	}
	if got := metricValue(t, ts, "campaigns_cancelled_total"); got != 1 {
		t.Fatalf("campaigns_cancelled_total = %v", got)
	}
	if got := metricValue(t, ts, "campaign_errors_total"); got != 0 {
		t.Fatalf("cancellation counted as a campaign error: %v", got)
	}
	// Resubmission resumes from the flushed checkpoints and lands on
	// the byte-identical table of an uninterrupted run.
	faultinject.Reset()
	points, table := submit(t, ts, req)
	if len(points) != 15 {
		t.Fatalf("resumed run streamed %d points", len(points))
	}
	if table.Title != ref.Title || !reflect.DeepEqual(table.Rows, ref.Rows) || !reflect.DeepEqual(table.Notes, ref.Notes) {
		t.Fatalf("resumed table diverged from the uninterrupted reference:\n%+v\nvs\n%+v", table, ref)
	}
}

// TestChaosDeleteUnknownCampaign: cancelling a finished or never-known
// campaign is a 404, not a panic or a hung entry.
func TestChaosDeleteUnknownCampaign(t *testing.T) {
	_, ts, _ := newTestServer(t)
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/999", nil)
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestChaosWorkerPanicFailsOneCampaignOnly: an injected worker panic
// converts into that campaign's error record — stack logged, counter
// bumped — and the daemon immediately serves the next campaign.
func TestChaosWorkerPanicFailsOneCampaignOnly(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts, _ := newTestServer(t)
	if err := faultinject.Enable(faultinject.WorkerPanic, "panic*1"); err != nil {
		t.Fatal(err)
	}
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)}, true)
	recs := drainStream(t, stream)
	if len(recs) == 0 {
		t.Fatal("panicked stream carried no records")
	}
	last := recs[len(recs)-1]
	if last.Err == nil || last.Err.Cancelled {
		t.Fatalf("panicked campaign ended with %+v, want a non-cancelled error record", last)
	}
	if got := metricValue(t, ts, "worker_panics_total"); got != 1 {
		t.Fatalf("worker_panics_total = %v", got)
	}
	if faultinject.Hits(faultinject.WorkerPanic) != 1 {
		t.Fatalf("failpoint hits = %d", faultinject.Hits(faultinject.WorkerPanic))
	}
	// The daemon survives: the same request now completes, resuming
	// whatever the failed campaign managed to commit.
	points, _ := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	if len(points) != 15 {
		t.Fatalf("post-panic campaign streamed %d points", len(points))
	}
	if got := metricValue(t, ts, "campaigns_active"); got != 0 {
		t.Fatalf("campaigns_active = %v after both campaigns ended", got)
	}
}

// TestChaosClientDisconnectDetachedByDefault: a vanished client does
// not cancel a detached (default) campaign — the work finishes and
// lands in the store for the next submission.
func TestChaosClientDisconnectDetachedByDefault(t *testing.T) {
	srv, ts, st := newTestServer(t)
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)}, true)
	stream.Close() // client walks away mid-stream
	waitIdle(t, srv)
	if got := metricValue(t, ts, "campaigns_cancelled_total"); got != 0 {
		t.Fatalf("detached campaign cancelled on disconnect: %v", got)
	}
	if got := st.Stats().Commits; got != 15 {
		t.Fatalf("store commits = %d, want the full 15 despite the disconnect", got)
	}
}

// TestChaosClientDisconnectCancelsWithDetachOff: ?detach=0 opts the
// campaign into client-lifetime coupling — disconnect cancels it at
// the next batch boundary.
func TestChaosClientDisconnectCancelsWithDetachOff(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	srv, ts, _ := newTestServer(t)
	if err := faultinject.Enable(faultinject.StoreWriteSlow, "sleep(15ms)"); err != nil {
		t.Fatal(err)
	}
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 384, Seed: seed(31)}, false)
	stream.Close()
	waitIdle(t, srv)
	faultinject.Reset()
	if got := metricValue(t, ts, "campaigns_cancelled_total"); got != 1 {
		t.Fatalf("campaigns_cancelled_total = %v, want the disconnected campaign", got)
	}
}

// TestChaosDegradedStoreReportsAndServes: a store that exhausted its
// write retries turns /healthz "degraded" and flips the metrics gauge,
// while campaigns keep running read-through; recovery re-arms both.
func TestChaosDegradedStoreReportsAndServes(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts, st := newTestServer(t)
	submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	if err := faultinject.Enable(faultinject.StoreWriteError, "error"); err != nil {
		t.Fatal(err)
	}
	st.Commit("chaos-degrade", sweep.CachedPoint{Key: "chaos", Shots: 8}) // exhaust retries, degrade
	if !st.Stats().Degraded {
		t.Fatal("store did not degrade")
	}
	var health struct {
		Status        string `json:"status"`
		StoreDegraded bool   `json:"store_degraded"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "degraded" || !health.StoreDegraded {
		t.Fatalf("healthz = %+v, want degraded", health)
	}
	if got := metricValue(t, ts, "store_degraded"); got != 1 {
		t.Fatalf("store_degraded = %v", got)
	}
	// Read-through: the committed campaign still replays from cache.
	points, _ := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	for _, p := range points {
		if !p.Cached {
			t.Fatalf("degraded store stopped serving reads: %s recomputed", p.Key)
		}
	}
	faultinject.Reset()
	if !st.Probe() {
		t.Fatal("probe failed after the fault cleared")
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz after recovery = %+v", health)
	}
	if got := metricValue(t, ts, "store_recoveries_total"); got != 1 {
		t.Fatalf("store_recoveries_total = %v", got)
	}
}

// waitIdle blocks until no campaign is active.
func waitIdle(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for srv.campaignsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
