package server

// Tests for the observability surface: the per-campaign trace
// endpoints (NDJSON and Chrome trace-event form), traceparent adoption
// across fabric hops, cross-node trace stitching, structured panic
// logging, OpenMetrics exemplar negotiation, the signals stream under
// mid-stream cancellation, and the gated pprof mount.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"radqec/internal/client"
	"radqec/internal/faultinject"
	"radqec/internal/store"
	"radqec/internal/trace"
)

// submitTraced posts a campaign with sampling on, drains the stream,
// and returns the assigned campaign and trace ids from the response
// headers.
func submitTraced(t *testing.T, ts *httptest.Server, req CampaignRequest) (id int64, traceID string) {
	t.Helper()
	req.TraceSample = "on"
	stream, err := client.New(ts.URL, ts.Client()).SubmitCampaign(context.Background(), req, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drainStream(t, stream)
	if stream.TraceID == "" {
		t.Fatal("sampled campaign response carries no X-Radqec-Trace-Id header")
	}
	return stream.ID, stream.TraceID
}

// spansByID indexes a span slice by span id, failing on duplicates.
func spansByID(t *testing.T, spans []trace.Span) map[string]trace.Span {
	t.Helper()
	byID := make(map[string]trace.Span, len(spans))
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span id %s in trace", s.ID)
		}
		byID[s.ID] = s
	}
	return byID
}

// assertParentLinks checks the stitched trace is one tree: every span
// carries the same trace id, exactly one root (the submitting node's
// campaign span) has no parent, and every other span's parent exists.
func assertParentLinks(t *testing.T, spans []trace.Span, traceID string) {
	t.Helper()
	byID := spansByID(t, spans)
	roots := 0
	for _, s := range spans {
		if s.Trace != traceID {
			t.Fatalf("span %s (%s) has trace id %s, want %s", s.ID, s.Name, s.Trace, traceID)
		}
		if s.Parent == "" {
			if s.Name != trace.SpanCampaign {
				t.Fatalf("parentless span %s is a %s, want the campaign root", s.ID, s.Name)
			}
			roots++
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %s (%s) has dangling parent %s", s.ID, s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d parentless roots, want exactly 1", roots)
	}
}

// TestCampaignTraceEndpoint: a sampled campaign's spans replay over
// GET /v1/campaigns/{id}/trace as one well-formed tree — campaign →
// point → {chunk-run, decode, store-commit} — reachable by trace id
// too, and renderable as Chrome trace-event JSON.
func TestCampaignTraceEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	id, traceID := submitTraced(t, ts, CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(7)})

	cl := client.New(ts.URL, ts.Client())
	spans, err := cl.TraceSpans(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("sampled campaign recorded no spans")
	}
	assertParentLinks(t, spans, traceID)
	byID := spansByID(t, spans)
	kinds := map[string]int{}
	for _, s := range spans {
		kinds[s.Name]++
		switch s.Name {
		case trace.SpanPoint:
			if parent := byID[s.Parent]; parent.Name != trace.SpanCampaign {
				t.Fatalf("point span %s parents under %q, want the campaign span", s.Key, parent.Name)
			}
			if s.Hash == "" {
				t.Fatalf("point span %s has no content hash", s.Key)
			}
		case trace.SpanChunkRun, trace.SpanDecode, trace.SpanStoreCommit:
			if parent := byID[s.Parent]; parent.Name != trace.SpanPoint {
				t.Fatalf("%s span parents under %q, want a point span", s.Name, parent.Name)
			}
		}
		if s.Node != "local" {
			t.Fatalf("single-node span records node %q, want local", s.Node)
		}
	}
	for _, kind := range []string{trace.SpanCampaign, trace.SpanPoint, trace.SpanChunkRun, trace.SpanDecode, trace.SpanStoreCommit} {
		if kinds[kind] == 0 {
			t.Fatalf("trace has no %s spans (kinds: %v)", kind, kinds)
		}
	}
	if kinds[trace.SpanPoint] != 15 {
		t.Fatalf("trace has %d point spans, want 15", kinds[trace.SpanPoint])
	}

	// The same trace resolves by trace id.
	byTrace, err := cl.TraceByID(context.Background(), traceID, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(byTrace) != len(spans) {
		t.Fatalf("GET /v1/traces/%s returned %d spans, campaign endpoint %d", traceID, len(byTrace), len(spans))
	}

	// Chrome trace-event rendering parses and carries events.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + itoa(id) + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("chrome format content type = %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("chrome trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

func itoa(id int64) string { return strconv.FormatInt(id, 10) }

// TestTraceEndpointValidation: unsampled campaigns 404, malformed ids
// and formats 400, and a bad trace_sample value is rejected before any
// work starts.
func TestTraceEndpointValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Unsampled campaign: known to telemetry, absent from the trace
	// registry.
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(3)}, true)
	drainStream(t, stream)
	if stream.TraceID != "" {
		t.Fatalf("unsampled campaign advertised trace id %q", stream.TraceID)
	}
	for path, want := range map[string]int{
		"/v1/campaigns/" + itoa(stream.ID) + "/trace": http.StatusNotFound,
		"/v1/campaigns/nope/trace":                    http.StatusBadRequest,
		"/v1/traces/zz":                               http.StatusBadRequest,
		"/v1/traces/" + strings.Repeat("z", 32):       http.StatusBadRequest,
		"/v1/traces/" + strings.Repeat("a", 32):       http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// A sampled campaign with a bad format query.
	id, _ := submitTraced(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(3)})
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + itoa(id) + "/trace?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status = %d, want 400", resp.StatusCode)
	}

	// trace_sample validation mirrors -engine-width: parsed fine,
	// rejected by constraint.
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"experiment":"threshold","trace_sample":"always"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace_sample status = %d, want 400", resp.StatusCode)
	}
}

// TestTraceparentAdoptionWinsOverOff: a submission carrying a sampled
// traceparent — injected by the typed client from the caller's span
// context, the same path every fabric hop uses — is traced under the
// incoming trace id even when the request says trace_sample off, and
// its campaign span parents under the remote span.
func TestTraceparentAdoptionWinsOverOff(t *testing.T) {
	_, ts, _ := newTestServer(t)
	rec := trace.New("origin")
	root := rec.Campaign("origin")
	ctx := trace.ContextWith(context.Background(), root.Context())

	stream, err := client.New(ts.URL, ts.Client()).SubmitCampaign(ctx,
		CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5), TraceSample: "off"},
		client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drainStream(t, stream)
	if stream.TraceID != rec.TraceID().String() {
		t.Fatalf("adopted trace id %q, want the origin's %s", stream.TraceID, rec.TraceID())
	}
	spans, err := client.New(ts.URL, ts.Client()).TraceSpans(context.Background(), stream.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		if s.Name == trace.SpanCampaign && s.Parent != root.Context().SpanID().String() {
			t.Fatalf("adopted campaign span parents under %q, want the origin span %s", s.Parent, root.Context().SpanID())
		}
	}
}

// TestFabricTraceStitchesAcrossNodes: a sampled campaign on a two-node
// ring yields ONE trace — a single trace id, spans from both peers,
// parent links intact across the node boundary, and at least one
// remote-fetch span where a point resolved from the peer — retrievable
// stitched from either node.
func TestFabricTraceStitchesAcrossNodes(t *testing.T) {
	nodes := newFabricRing(t, 2, nil)
	id, traceID := submitTraced(t, nodes[0].ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	waitRingIdle(t, nodes)

	stitched, err := client.New(nodes[0].ts.URL, nodes[0].ts.Client()).TraceSpans(context.Background(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	assertParentLinks(t, stitched, traceID)
	perNode := map[string]int{}
	kinds := map[string]int{}
	computed := 0
	for _, s := range stitched {
		perNode[s.Node]++
		kinds[s.Name]++
		// A point span is a local point lifecycle: points resolved from
		// the store (including results fetched from the peer) carry the
		// cache-hit detail; the rest ran engines.
		if s.Name == trace.SpanPoint && s.Detail != "cache-hit" {
			computed++
		}
	}
	for _, nd := range nodes {
		if perNode[nd.addr] == 0 {
			t.Fatalf("stitched trace has no spans from node %s (per-node: %v)", nd.addr, perNode)
		}
	}
	if kinds[trace.SpanRemoteFetch] == 0 {
		t.Fatalf("stitched trace has no remote-fetch spans (kinds: %v)", kinds)
	}
	if kinds[trace.SpanCampaign] != 2 {
		t.Fatalf("stitched trace has %d campaign spans, want one per node (kinds: %v)", kinds[trace.SpanCampaign], kinds)
	}
	if kinds[trace.SpanPoint] < 15 {
		t.Fatalf("stitched trace has %d point spans, want at least the 15 points of the sweep", kinds[trace.SpanPoint])
	}
	if computed != 15 {
		t.Fatalf("stitched trace shows %d computed (non-cache-hit) point spans, want each of the 15 points computed exactly once", computed)
	}

	// The peer — which only knows the trace id, not the submitting
	// node's campaign id — serves the same stitched trace.
	fromPeer, err := client.New(nodes[1].ts.URL, nodes[1].ts.Client()).TraceByID(context.Background(), traceID, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromPeer) != len(stitched) {
		t.Fatalf("peer stitched %d spans, submitting node %d", len(fromPeer), len(stitched))
	}
	assertParentLinks(t, fromPeer, traceID)
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog
// output from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWorkerPanicLogsStructuredRecord: the worker-panic report is a
// structured slog record carrying the campaign id, point key, content
// hash and captured stack — greppable fields, not a formatted string.
func TestWorkerPanicLogsStructuredRecord(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	var logBuf syncBuffer
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st, Workers: 4, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		st.Close()
	})
	if err := faultinject.Enable(faultinject.WorkerPanic, "panic*1"); err != nil {
		t.Fatal(err)
	}
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)}, true)
	recs := drainStream(t, stream)
	if len(recs) == 0 || recs[len(recs)-1].Err == nil {
		t.Fatal("panicked campaign did not end in an error record")
	}

	var found bool
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, "panic") {
			continue
		}
		var rec struct {
			Level    string `json:"level"`
			Campaign int64  `json:"campaign"`
			Point    string `json:"point"`
			Hash     string `json:"hash"`
			Stack    string `json:"stack"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("panic log line not JSON: %q", line)
		}
		if rec.Level != "ERROR" {
			continue
		}
		found = true
		if rec.Campaign != stream.ID {
			t.Errorf("panic record campaign = %d, want %d", rec.Campaign, stream.ID)
		}
		if rec.Point == "" {
			t.Error("panic record has no point key")
		}
		if rec.Hash == "" {
			t.Error("panic record has no content hash")
		}
		if !strings.Contains(rec.Stack, "goroutine") {
			t.Errorf("panic record stack does not look like a stack trace: %.80q", rec.Stack)
		}
	}
	if !found {
		t.Fatalf("no structured panic record in the log:\n%s", logBuf.String())
	}
}

// TestSignalsStreamMidCancel: a follow-mode signals stream open while
// its campaign is cancelled terminates cleanly with the final stats
// record instead of hanging or erroring.
func TestSignalsStreamMidCancel(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts, _ := newTestServer(t)
	if err := faultinject.Enable(faultinject.StoreWriteSlow, "sleep(15ms)"); err != nil {
		t.Fatal(err)
	}
	cl := client.New(ts.URL, ts.Client())
	stream := startCampaign(t, ts, CampaignRequest{Experiment: "threshold", Shots: 384, Seed: seed(31)}, true)
	sig, err := cl.Signals(context.Background(), stream.ID, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sig.Close()
	if err := cl.Cancel(context.Background(), stream.ID); err != nil {
		t.Fatal(err)
	}
	drainStream(t, stream)

	// The follow stream must observe the campaign's finish and close
	// with the stats record; bound the wait so a regression hangs the
	// test visibly, not forever.
	done := make(chan error, 1)
	var sawStats bool
	go func() {
		for {
			rec, err := sig.Next()
			if errors.Is(err, io.EOF) {
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
			if rec.Stats != nil {
				sawStats = true
				if !rec.Stats.Done {
					done <- errors.New("stats record before the campaign finished")
					return
				}
			}
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("signals stream did not terminate after campaign cancellation")
	}
	if !sawStats {
		t.Fatal("signals stream closed without the final stats record")
	}
}

// TestPprofEndpointGated: /debug/pprof/ serves only when Config.Pprof
// opts in; the default surface keeps it unrouted.
func TestPprofEndpointGated(t *testing.T) {
	srvOn := New(Config{Workers: 1, Pprof: true})
	defer srvOn.Close()
	tsOn := httptest.NewServer(srvOn.Handler())
	defer tsOn.Close()
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof-on status = %d, want 200", resp.StatusCode)
	}

	_, tsOff, _ := newTestServer(t)
	resp, err = http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof-off status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsOpenMetricsExemplars: the latency histograms render under
// both negotiated formats — exemplar annotations only when the scrape
// Accepts OpenMetrics, since the classic 0.0.4 parser cannot represent
// them — and a sampled campaign populates the decode and store-commit
// paths.
func TestMetricsOpenMetricsExemplars(t *testing.T) {
	_, ts, _ := newTestServer(t)
	submitTraced(t, ts, CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(11)})

	get := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return body.String(), resp.Header.Get("Content-Type")
	}

	classic, ct := get("")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("classic content type = %q", ct)
	}
	for _, name := range []string{"decode", "store_commit", "remote_fetch", "lease_wait"} {
		if !strings.Contains(classic, "# TYPE radqecd_"+name+"_seconds histogram") {
			t.Errorf("classic exposition missing the %s histogram", name)
		}
	}
	if strings.Contains(classic, "# {trace_id=") {
		t.Error("classic 0.0.4 exposition carries exemplars")
	}
	if strings.Contains(classic, "# EOF") {
		t.Error("classic exposition carries the OpenMetrics EOF marker")
	}

	om, ct := get("application/openmetrics-text")
	if !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("openmetrics content type = %q", ct)
	}
	if !strings.Contains(om, "# {trace_id=") {
		t.Error("openmetrics exposition has no exemplars despite a sampled campaign")
	}
	if !strings.HasSuffix(strings.TrimSpace(om), "# EOF") {
		t.Error("openmetrics exposition does not end with # EOF")
	}

	// The sampled campaign observed real latencies on the decode and
	// commit paths.
	if !strings.Contains(om, "radqecd_decode_seconds_count") {
		t.Error("decode histogram has no count series")
	}
}
