package server

// Two-node fabric suite: byte-identical sharded tables, cross-node
// single-flight under duplicate submission, and the chaos legs — peer
// down at submit, peer dying mid-stream, black-holed peer lookups, and
// lease expiry races. Both ring nodes run in-process on real TCP
// listeners so every cross-node call goes through the actual v1 API.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"radqec/internal/client"
	"radqec/internal/control"
	"radqec/internal/exp"
	"radqec/internal/fabric"
	"radqec/internal/faultinject"
	"radqec/internal/store"
	"radqec/internal/sweep"
)

// sweepPoint is a synthetic committed result for lease/lookup tests.
func sweepPoint() sweep.CachedPoint {
	return sweep.CachedPoint{Key: "chaos", Shots: 8, Errors: 1, BatchRates: []float64{0.125}, Converged: true}
}

// fabricNode is one in-process ring member.
type fabricNode struct {
	srv   *Server
	ts    *httptest.Server
	st    *store.Store
	coord *fabric.Coordinator
	addr  string
}

// newFabricRing starts n daemons on real loopback listeners, each a
// member of the same static ring. The listeners are bound before any
// coordinator exists so every node knows the full address ring up
// front, exactly like a -peers flag. tune (optional) adjusts each
// node's fabric options before construction.
func newFabricRing(t *testing.T, n int, tune func(*fabric.Options)) []*fabricNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*fabricNode, n)
	for i := range nodes {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts := fabric.Options{
			Self:  addrs[i],
			Peers: addrs,
			Store: st,
			// Test-speed timings: fast polls, quick failure detection,
			// but patience generous enough that a healthy (if busy)
			// owner is never taken over spuriously.
			PollInterval:     20 * time.Millisecond,
			RetryLimit:       2,
			DownFor:          2 * time.Second,
			TakeoverPatience: 15 * time.Second,
			LeaseTTL:         2 * time.Second,
		}
		if tune != nil {
			tune(&opts)
		}
		coord, err := fabric.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		// The controller must be on: in-process single-flight (leader
		// computes, follower replays) only claims flights under it.
		srv := New(Config{Store: st, Workers: 4, Control: &control.Policy{Enabled: true}, Fabric: coord})
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: srv.Handler()}}
		ts.Start()
		nodes[i] = &fabricNode{srv: srv, ts: ts, st: st, coord: coord, addr: addrs[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.srv.Close()
			nd.st.Close()
		}
	})
	return nodes
}

// thresholdReference runs the reference single-node computation.
func thresholdReference(t *testing.T, shots int, seedV uint64) *exp.Table {
	t.Helper()
	ref, err := exp.Threshold(exp.Config{Shots: shots, Seed: seedV})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// assertTable fails unless the streamed table matches the reference
// byte-for-byte (titles, every row, every note).
func assertTable(t *testing.T, got exp.TableRecord, ref *exp.Table, label string) {
	t.Helper()
	if got.Title != ref.Title || !reflect.DeepEqual(got.Rows, ref.Rows) || !reflect.DeepEqual(got.Notes, ref.Notes) {
		t.Fatalf("%s: table diverged from single-node reference:\n%+v\nvs\n%+v", label, got, ref)
	}
}

// computedTotal sums radqecd_points_computed_total across the ring.
func computedTotal(t *testing.T, nodes []*fabricNode) (sum float64, each []float64) {
	t.Helper()
	for _, nd := range nodes {
		v := metricValue(t, nd.ts, "points_computed_total")
		each = append(each, v)
		sum += v
	}
	return sum, each
}

// waitRingIdle waits for every node's campaigns to drain (fan-out
// campaigns on peers can outlive the submitting client's stream by a
// beat).
func waitRingIdle(t *testing.T, nodes []*fabricNode) {
	t.Helper()
	for _, nd := range nodes {
		waitIdle(t, nd.srv)
	}
}

// TestFabricTwoNodeByteIdentical: a campaign submitted to one node of
// a two-node ring returns the byte-identical table of a single-node
// run, with the points partitioned across the ring — every point
// computed exactly once somewhere, nonzero work on both nodes, and
// nonzero remote hits flowing back.
func TestFabricTwoNodeByteIdentical(t *testing.T) {
	nodes := newFabricRing(t, 2, nil)
	ref := thresholdReference(t, 192, 31)

	points, table := submit(t, nodes[0].ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	if len(points) != 15 {
		t.Fatalf("streamed %d points, want 15", len(points))
	}
	assertTable(t, table, ref, "two-node cold run")
	waitRingIdle(t, nodes)

	sum, each := computedTotal(t, nodes)
	if sum != 15 {
		t.Fatalf("points_computed_total across ring = %v (%v), want exactly 15 — a point was computed twice or dropped", sum, each)
	}
	for i, v := range each {
		if v == 0 {
			t.Fatalf("node %d computed no points — the ring did not shard (split %v)", i, each)
		}
	}
	if hits := metricValue(t, nodes[0].ts, "fabric_remote_hits_total"); hits == 0 {
		t.Fatal("submitting node resolved no points remotely")
	}
	if tk := metricValue(t, nodes[0].ts, "fabric_takeovers_total") + metricValue(t, nodes[1].ts, "fabric_takeovers_total"); tk != 0 {
		t.Fatalf("healthy ring recorded %v takeovers", tk)
	}

	// Warm re-submission to the OTHER node: its store holds every
	// point (own computes + fetched results), so the table replays
	// byte-identically without engine work.
	points2, table2 := submit(t, nodes[1].ts, CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)})
	assertTable(t, table2, ref, "warm run on peer")
	for _, p := range points2 {
		if !p.Cached {
			t.Fatalf("warm run on peer recomputed point %s", p.Key)
		}
	}
}

// TestChaosFabricDuplicateSubmissionSingleFlight: the same campaign
// submitted concurrently to BOTH nodes computes every point's shots
// exactly once across the ring — ownership partitions the work between
// nodes, and the in-process flight table deduplicates the client and
// fan-out campaigns within each node.
func TestChaosFabricDuplicateSubmissionSingleFlight(t *testing.T) {
	nodes := newFabricRing(t, 2, nil)
	ref := thresholdReference(t, 192, 31)
	req := CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)}

	type out struct {
		table exp.TableRecord
	}
	results := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func(nd *fabricNode) {
			_, table := submit(t, nd.ts, req)
			results <- out{table}
		}(nodes[i])
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			assertTable(t, r.table, ref, "duplicate submission")
		case <-time.After(60 * time.Second):
			t.Fatal("duplicate submissions timed out")
		}
	}
	waitRingIdle(t, nodes)
	sum, each := computedTotal(t, nodes)
	if sum != 15 {
		t.Fatalf("points_computed_total across ring = %v (%v), want exactly 15: cross-node single-flight leaked duplicate compute", sum, each)
	}
}

// TestChaosFabricPeerDownAtSubmit: the peer is dead before the
// campaign is even submitted. Fan-out fails, its points reassign to
// the surviving node via takeover, and the table is still
// byte-identical — just computed entirely locally.
func TestChaosFabricPeerDownAtSubmit(t *testing.T) {
	nodes := newFabricRing(t, 2, func(o *fabric.Options) {
		o.RetryLimit = 1
		o.TakeoverPatience = 30 * time.Second // takeover must come from death, not impatience
	})
	ref := thresholdReference(t, 128, 7)

	// Kill node 1 outright before anything is submitted.
	nodes[1].ts.CloseClientConnections()
	nodes[1].ts.Listener.Close()

	points, table := submit(t, nodes[0].ts, CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(7)})
	if len(points) != 15 {
		t.Fatalf("streamed %d points, want 15", len(points))
	}
	assertTable(t, table, ref, "peer down at submit")
	waitIdle(t, nodes[0].srv)
	if got := metricValue(t, nodes[0].ts, "points_computed_total"); got != 15 {
		t.Fatalf("survivor computed %v points, want all 15", got)
	}
	if tk := metricValue(t, nodes[0].ts, "fabric_takeovers_total"); tk == 0 {
		t.Fatal("no takeovers recorded though the peer was dead")
	}
	if alive := metricValue(t, nodes[0].ts, "fabric_peers_alive"); alive != 1 {
		t.Fatalf("fabric_peers_alive = %v, want 1", alive)
	}
}

// TestChaosFabricPeerDiesMidStream: the peer accepts the fan-out and
// starts computing, then drops off the network mid-campaign. The
// survivor's lookups fail, the peer is marked down, its unfinished
// points are taken over, and the table is still byte-identical.
func TestChaosFabricPeerDiesMidStream(t *testing.T) {
	nodes := newFabricRing(t, 2, func(o *fabric.Options) {
		o.RetryLimit = 1
		o.TakeoverPatience = 30 * time.Second
	})
	ref := thresholdReference(t, 384, 31)

	// Slow the stores so the campaign is genuinely mid-flight when the
	// peer dies (timing-only fault, never results).
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Enable(faultinject.StoreWriteSlow, "sleep(10ms)"); err != nil {
		t.Fatal(err)
	}
	stream := startCampaign(t, nodes[0].ts, CampaignRequest{Experiment: "threshold", Shots: 384, Seed: seed(31)}, true)
	// Let the ring genuinely interleave, then sever node 1 from the
	// network. Its in-flight campaign keeps running (and is cancelled
	// once its fan-out connection collapses); node 0 can no longer
	// reach it and must take its points over.
	time.Sleep(150 * time.Millisecond)
	nodes[1].ts.CloseClientConnections()
	nodes[1].ts.Listener.Close()

	recs := drainStream(t, stream)
	var table *exp.TableRecord
	npoints := 0
	for _, r := range recs {
		if r.Point != nil {
			npoints++
		}
		if r.Table != nil {
			table = r.Table
		}
		if r.Err != nil {
			t.Fatalf("campaign failed after peer death: %+v", *r.Err)
		}
	}
	if table == nil || npoints != 15 {
		t.Fatalf("stream after peer death: %d points, table %v", npoints, table != nil)
	}
	faultinject.Reset()
	assertTable(t, *table, ref, "peer died mid-stream")
	waitIdle(t, nodes[0].srv)
}

// TestChaosFabricLookupsBlackholed: every cross-node lookup fails (the
// fabric.peer.lookup.error failpoint) — the pathological partition
// where both nodes are up but can't see each other. Each side marks
// the other down and degrades to full local compute: double the work,
// identical bytes.
func TestChaosFabricLookupsBlackholed(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	nodes := newFabricRing(t, 2, func(o *fabric.Options) {
		o.RetryLimit = 1
	})
	ref := thresholdReference(t, 128, 7)
	if err := faultinject.Enable(faultinject.PeerLookupError, "error"); err != nil {
		t.Fatal(err)
	}
	points, table := submit(t, nodes[0].ts, CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(7)})
	if len(points) != 15 {
		t.Fatalf("streamed %d points, want 15", len(points))
	}
	assertTable(t, table, ref, "lookups black-holed")
	waitIdle(t, nodes[0].srv)
	if got := metricValue(t, nodes[0].ts, "points_computed_total"); got != 15 {
		t.Fatalf("partitioned node computed %v points, want all 15 locally", got)
	}
	if tk := metricValue(t, nodes[0].ts, "fabric_takeovers_total"); tk == 0 {
		t.Fatal("no takeovers under a full lookup blackhole")
	}
}

// TestChaosFabricLeaseExpiryRace: two nodes race for the same point's
// compute lease through the claim endpoint. The loser backs off while
// the lease is live, wins after it expires, and a committed result
// ends the race for everyone.
func TestChaosFabricLeaseExpiryRace(t *testing.T) {
	_, ts, st := newTestServer(t)
	cl := client.New(ts.URL, ts.Client())
	ctx := context.Background()
	const hash = "deadbeef-lease-race"

	claim, err := cl.ClaimPoint(ctx, hash, "node-a", 80*time.Millisecond)
	if err != nil || claim.Status != client.ClaimGranted {
		t.Fatalf("first claim = %+v, %v; want granted", claim, err)
	}
	claim, err = cl.ClaimPoint(ctx, hash, "node-b", 80*time.Millisecond)
	if err != nil || claim.Status != client.ClaimHeld || claim.Holder != "node-a" {
		t.Fatalf("rival claim = %+v, %v; want held by node-a", claim, err)
	}
	// The holder renews re-entrantly.
	claim, err = cl.ClaimPoint(ctx, hash, "node-a", 80*time.Millisecond)
	if err != nil || claim.Status != client.ClaimGranted {
		t.Fatalf("renewal = %+v, %v; want granted", claim, err)
	}
	// After expiry the rival takes the lease.
	time.Sleep(120 * time.Millisecond)
	claim, err = cl.ClaimPoint(ctx, hash, "node-b", 80*time.Millisecond)
	if err != nil || claim.Status != client.ClaimGranted {
		t.Fatalf("post-expiry claim = %+v, %v; want granted", claim, err)
	}
	// A committed result trumps every lease: claims now answer
	// "committed" and the result is fetchable.
	st.Commit(hash, sweepPoint())
	claim, err = cl.ClaimPoint(ctx, hash, "node-a", 80*time.Millisecond)
	if err != nil || claim.Status != client.ClaimCommitted {
		t.Fatalf("claim on committed point = %+v, %v; want committed", claim, err)
	}
	if _, ok, err := cl.LookupPoint(ctx, hash, 0); err != nil || !ok {
		t.Fatalf("committed point not fetchable: ok=%v err=%v", ok, err)
	}
	if got := metricValue(t, ts, "fabric_leases_denied_total"); got != 1 {
		t.Fatalf("fabric_leases_denied_total = %v, want 1", got)
	}
}

// TestFabricPointLookupLongPoll: ?wait holds the lookup open until the
// point commits, so a watcher learns of a commit within the poll
// window rather than a full interval later.
func TestFabricPointLookupLongPoll(t *testing.T) {
	_, ts, st := newTestServer(t)
	cl := client.New(ts.URL, ts.Client())
	const hash = "deadbeef-longpoll"

	// Cold miss without wait: immediate not_found.
	if _, ok, err := cl.LookupPoint(context.Background(), hash, 0); err != nil || ok {
		t.Fatalf("cold lookup: ok=%v err=%v", ok, err)
	}
	// Commit mid-wait: the long poll returns the point early.
	go func() {
		time.Sleep(80 * time.Millisecond)
		st.Commit(hash, sweepPoint())
	}()
	start := time.Now()
	cp, ok, err := cl.LookupPoint(context.Background(), hash, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("long-poll lookup: ok=%v err=%v", ok, err)
	}
	if cp.Key != "chaos" {
		t.Fatalf("long-poll returned wrong point: %+v", cp)
	}
	if d := time.Since(start); d >= 5*time.Second {
		t.Fatalf("long poll did not return early (took %v)", d)
	}
}
