package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"radqec/internal/client"
	"radqec/internal/exp"
	"radqec/internal/store"
	"radqec/internal/telemetry"
)

// seed builds the request's optional seed field.
func seed(v uint64) *uint64 { return &v }

// newTestServer builds a server over a temp store and an httptest
// frontend.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st, Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		st.Close()
	})
	return srv, ts, st
}

// submit posts a campaign through the typed client and returns the
// decoded stream records.
func submit(t *testing.T, ts *httptest.Server, req CampaignRequest) (points []exp.PointRecord, table exp.TableRecord) {
	t.Helper()
	stream, err := client.New(ts.URL, ts.Client()).SubmitCampaign(context.Background(), req, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	sawTable := false
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case rec.Point != nil:
			points = append(points, *rec.Point)
		case rec.Table != nil:
			table = *rec.Table
			sawTable = true
		case rec.Err != nil:
			t.Fatalf("campaign failed mid-stream: %+v", *rec.Err)
		}
	}
	if !sawTable {
		t.Fatal("stream ended without a table record")
	}
	return points, table
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v float64
		if n, _ := fmt.Sscanf(sc.Text(), "radqecd_"+name+" %g", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestCampaignStreamMatchesDirectRun: the daemon's streamed table for
// a campaign equals a direct library run with the same config, and a
// warm re-submission replays entirely from the store without invoking
// the engines.
func TestCampaignStreamMatchesDirectRun(t *testing.T) {
	_, ts, _ := newTestServer(t)
	req := CampaignRequest{Experiment: "threshold", Shots: 192, Seed: seed(31)}

	ref, err := exp.Threshold(exp.Config{Shots: 192, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}

	points, table := submit(t, ts, req)
	if len(points) != 15 { // 5 phys rates x 3 distances
		t.Fatalf("streamed %d points", len(points))
	}
	if table.Title != ref.Title || !reflect.DeepEqual(table.Rows, ref.Rows) || !reflect.DeepEqual(table.Notes, ref.Notes) {
		t.Fatalf("streamed table diverged:\n%+v\nvs\n%+v", table, ref)
	}
	for _, p := range points {
		if p.Cached {
			t.Fatalf("cold run served cached point %s", p.Key)
		}
	}
	computed := metricValue(t, ts, "points_computed_total")
	if computed != 15 {
		t.Fatalf("points_computed_total = %v", computed)
	}
	// The auto-resolved engine width lands in the campaign's route
	// signal: every repo code fits the widest 512-lane tile.
	sigs, err := client.New(ts.URL, ts.Client()).Signals(context.Background(), 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sigs.Close()
	var stats *telemetry.Stats
	for {
		rec, err := sigs.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Stats != nil {
			stats = rec.Stats
		}
	}
	if stats == nil || stats.Route == nil {
		t.Fatalf("signals stream carried no routed stats: %+v", stats)
	}
	if stats.Route.Width != 512 || stats.Route.WidthReason == "" {
		t.Fatalf("route width = %d (%q), want auto-resolved 512", stats.Route.Width, stats.Route.WidthReason)
	}

	// Warm re-submission: identical table, zero engine work.
	points2, table2 := submit(t, ts, req)
	if !reflect.DeepEqual(table2.Rows, table.Rows) {
		t.Fatal("warm table diverged from cold table")
	}
	for _, p := range points2 {
		if !p.Cached {
			t.Fatalf("warm run recomputed point %s", p.Key)
		}
	}
	if got := metricValue(t, ts, "points_computed_total"); got != computed {
		t.Fatalf("warm run advanced points_computed_total: %v -> %v", computed, got)
	}
	if got := metricValue(t, ts, "points_cached_total"); got != 15 {
		t.Fatalf("points_cached_total = %v", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for name, req := range map[string]CampaignRequest{
		"experiment": {Experiment: "nope"},
		"engine":     {Experiment: "fig5", Engine: "warp"},
		"width":      {Experiment: "fig5", EngineWidth: "128"},
		"decoder":    {Experiment: "fig5", Decoder: "oracle"},
		"ci":         {Experiment: "fig5", CI: 0.7},
		"rounds":     {Experiment: "fig5", Rounds: 1},
		"p":          {Experiment: "fig5", P: 1.5},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	// Unknown body fields are rejected, catching client typos like
	// "shot" for "shots" that would silently fall back to defaults.
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"experiment":"fig5","shot":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}
}

// TestRequestSeedDefaultsToCLIDefault: an omitted seed matches the
// CLI's -seed default (1), while an explicit zero stays zero.
func TestRequestSeedDefaultsToCLIDefault(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if got := s.campaignConfig(CampaignRequest{Experiment: "fig5"}).Seed; got != 1 {
		t.Fatalf("omitted seed = %d, want the CLI default 1", got)
	}
	if got := s.campaignConfig(CampaignRequest{Experiment: "fig5", Seed: seed(0)}).Seed; got != 0 {
		t.Fatalf("explicit zero seed = %d, want 0", got)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []experimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(exp.Experiments()) {
		t.Fatalf("experiments = %d", len(list))
	}
}

func TestCacheEndpoints(t *testing.T) {
	_, ts, st := newTestServer(t)
	submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5)})
	if st.Stats().Commits != 15 {
		t.Fatalf("commits = %d", st.Stats().Commits)
	}

	resp, err := http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	var stats store.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Commits != 15 {
		t.Fatalf("stats over HTTP = %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/entries")
	if err != nil {
		t.Fatal(err)
	}
	var entries []store.Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(entries) != 15 || entries[0].Key == "" {
		t.Fatalf("entries = %d, first = %+v", len(entries), entries[0])
	}

	// Invalidate one point; the next submission recomputes exactly it.
	doReq := func(method, path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp = doReq(http.MethodDelete, "/v1/cache/"+entries[0].Hash)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate status = %d", resp.StatusCode)
	}
	points, _ := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5)})
	var recomputed int
	for _, p := range points {
		if !p.Cached {
			recomputed++
		}
	}
	if recomputed != 1 {
		t.Fatalf("recomputed %d points after one invalidation", recomputed)
	}

	// Compact, then clear.
	resp = doReq(http.MethodPost, "/v1/cache/compact")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status = %d", resp.StatusCode)
	}
	resp = doReq(http.MethodDelete, "/v1/cache")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clear status = %d", resp.StatusCode)
	}
	if st.Stats().Commits != 0 {
		t.Fatal("clear left commits behind")
	}
}

func TestNoCacheRequestBypassesStore(t *testing.T) {
	_, ts, st := newTestServer(t)
	submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5), NoCache: true})
	if got := st.Stats().Commits; got != 0 {
		t.Fatalf("no_cache campaign committed %d points", got)
	}
	points, _ := submit(t, ts, CampaignRequest{Experiment: "threshold", Shots: 64, Seed: seed(5)})
	for _, p := range points {
		if p.Cached {
			t.Fatal("no_cache campaign warmed the store")
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Store  bool   `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Store {
		t.Fatalf("health = %+v", h)
	}
}

// TestConcurrentCampaignsShareThePool: several clients at once all
// complete and return correct, identical tables for identical
// requests.
func TestConcurrentCampaignsShareThePool(t *testing.T) {
	_, ts, _ := newTestServer(t)
	req := CampaignRequest{Experiment: "threshold", Shots: 128, Seed: seed(77)}
	type out struct {
		rows [][]string
	}
	results := make(chan out, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, table := submit(t, ts, req)
			results <- out{rows: table.Rows}
		}()
	}
	var first [][]string
	for i := 0; i < 4; i++ {
		select {
		case r := <-results:
			if first == nil {
				first = r.rows
			} else if !reflect.DeepEqual(first, r.rows) {
				t.Fatal("concurrent identical campaigns returned different tables")
			}
		case <-time.After(60 * time.Second):
			t.Fatal("concurrent campaigns timed out")
		}
	}
}
