// Package matching implements maximum-weight matching on general graphs
// via the blossom algorithm (Edmonds 1965, in the O(n^3) primal-dual
// formulation popularised by Galil 1986 and van Rantwijk's reference
// implementation), plus the minimum-weight perfect matching wrapper the
// surface-code decoder needs. This replaces the networkx
// max_weight_matching call used by the paper's qtcodes decoding stack.
package matching

// Edge is a weighted undirected edge between vertices I and J.
type Edge struct {
	I, J int
	W    int64
}

// maxWeightMatching computes a maximum-weight matching of the graph. If
// maxCardinality is true it computes a maximum-cardinality matching of
// maximum weight among those. The result maps each vertex to its mate
// (-1 when unmatched).
//
// Weights must be integers; the algorithm keeps all dual variables
// integral, so the result is exact.
func maxWeightMatching(nvertex int, edges []Edge, maxCardinality bool) []int {
	if nvertex == 0 || len(edges) == 0 {
		out := make([]int, nvertex)
		for i := range out {
			out[i] = -1
		}
		return out
	}
	nedge := len(edges)
	var maxweight int64
	for _, e := range edges {
		if e.I < 0 || e.I >= nvertex || e.J < 0 || e.J >= nvertex || e.I == e.J {
			panic("matching: edge endpoints out of range or self loop")
		}
		if e.W > maxweight {
			maxweight = e.W
		}
	}

	// endpoint[p] is the vertex at endpoint p; edge k owns endpoints
	// 2k (its I side) and 2k+1 (its J side).
	endpoint := make([]int, 2*nedge)
	for k, e := range edges {
		endpoint[2*k] = e.I
		endpoint[2*k+1] = e.J
	}
	// neighbend[v] lists the remote endpoints of edges incident to v.
	neighbend := make([][]int, nvertex)
	for k, e := range edges {
		neighbend[e.I] = append(neighbend[e.I], 2*k+1)
		neighbend[e.J] = append(neighbend[e.J], 2*k)
	}

	// mate[v] is the remote endpoint of v's matched edge, or -1.
	mate := make([]int, nvertex)
	for i := range mate {
		mate[i] = -1
	}
	// label: 0 free, 1 S-vertex/blossom, 2 T, 5 temporary mark.
	label := make([]int, 2*nvertex)
	labelend := make([]int, 2*nvertex)
	inblossom := make([]int, nvertex)
	blossomparent := make([]int, 2*nvertex)
	blossomchilds := make([][]int, 2*nvertex)
	blossombase := make([]int, 2*nvertex)
	blossomendps := make([][]int, 2*nvertex)
	bestedge := make([]int, 2*nvertex)
	blossombestedges := make([][]int, 2*nvertex)
	var unusedblossoms []int
	dualvar := make([]int64, 2*nvertex)
	allowedge := make([]bool, nedge)
	var queue []int

	for v := 0; v < nvertex; v++ {
		inblossom[v] = v
		blossombase[v] = v
		dualvar[v] = maxweight
	}
	for b := 0; b < 2*nvertex; b++ {
		labelend[b] = -1
		blossomparent[b] = -1
		bestedge[b] = -1
	}
	for b := nvertex; b < 2*nvertex; b++ {
		blossombase[b] = -1
		unusedblossoms = append(unusedblossoms, b)
	}

	slack := func(k int) int64 {
		return dualvar[edges[k].I] + dualvar[edges[k].J] - 2*edges[k].W
	}

	var blossomLeaves func(b int, fn func(v int))
	blossomLeaves = func(b int, fn func(v int)) {
		if b < nvertex {
			fn(b)
			return
		}
		for _, t := range blossomchilds[b] {
			blossomLeaves(t, fn)
		}
	}

	var assignLabel func(w, t, p int)
	assignLabel = func(w, t, p int) {
		b := inblossom[w]
		label[w] = t
		label[b] = t
		labelend[w] = p
		labelend[b] = p
		bestedge[w] = -1
		bestedge[b] = -1
		if t == 1 {
			blossomLeaves(b, func(v int) { queue = append(queue, v) })
		} else if t == 2 {
			base := blossombase[b]
			assignLabel(endpoint[mate[base]], 1, mate[base]^1)
		}
	}

	// scanBlossom traces back from v and w to discover either a new
	// blossom base (returned) or an augmenting path (-1).
	scanBlossom := func(v, w int) int {
		var path []int
		base := -1
		for v != -1 || w != -1 {
			b := inblossom[v]
			if label[b]&4 != 0 {
				base = blossombase[b]
				break
			}
			path = append(path, b)
			label[b] = 5
			if labelend[b] == -1 {
				v = -1
			} else {
				v = endpoint[labelend[b]]
				b = inblossom[v]
				v = endpoint[labelend[b]]
			}
			if w != -1 {
				v, w = w, v
			}
		}
		for _, b := range path {
			label[b] = 1
		}
		return base
	}

	addBlossom := func(base, k int) {
		v, w := edges[k].I, edges[k].J
		bb := inblossom[base]
		bv := inblossom[v]
		bw := inblossom[w]
		b := unusedblossoms[len(unusedblossoms)-1]
		unusedblossoms = unusedblossoms[:len(unusedblossoms)-1]
		blossombase[b] = base
		blossomparent[b] = -1
		blossomparent[bb] = b
		var path, endps []int
		for bv != bb {
			blossomparent[bv] = b
			path = append(path, bv)
			endps = append(endps, labelend[bv])
			v = endpoint[labelend[bv]]
			bv = inblossom[v]
		}
		path = append(path, bb)
		// Reverse so the base comes first.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		for i, j := 0, len(endps)-1; i < j; i, j = i+1, j-1 {
			endps[i], endps[j] = endps[j], endps[i]
		}
		endps = append(endps, 2*k)
		for bw != bb {
			blossomparent[bw] = b
			path = append(path, bw)
			endps = append(endps, labelend[bw]^1)
			w = endpoint[labelend[bw]]
			bw = inblossom[w]
		}
		blossomchilds[b] = path
		blossomendps[b] = endps
		label[b] = 1
		labelend[b] = labelend[bb]
		dualvar[b] = 0
		blossomLeaves(b, func(lv int) {
			if label[inblossom[lv]] == 2 {
				queue = append(queue, lv)
			}
			inblossom[lv] = b
		})
		// Recompute the best-edge cache for the new blossom.
		bestedgeto := make([]int, 2*nvertex)
		for i := range bestedgeto {
			bestedgeto[i] = -1
		}
		for _, bvv := range path {
			var nblists [][]int
			if blossombestedges[bvv] == nil {
				blossomLeaves(bvv, func(lv int) {
					lst := make([]int, 0, len(neighbend[lv]))
					for _, p := range neighbend[lv] {
						lst = append(lst, p/2)
					}
					nblists = append(nblists, lst)
				})
			} else {
				nblists = [][]int{blossombestedges[bvv]}
			}
			for _, nblist := range nblists {
				for _, kk := range nblist {
					i, j := edges[kk].I, edges[kk].J
					if inblossom[j] == b {
						i, j = j, i
					}
					_ = i
					bj := inblossom[j]
					if bj != b && label[bj] == 1 &&
						(bestedgeto[bj] == -1 || slack(kk) < slack(bestedgeto[bj])) {
						bestedgeto[bj] = kk
					}
				}
			}
			blossombestedges[bvv] = nil
			bestedge[bvv] = -1
		}
		blossombestedges[b] = nil
		for _, kk := range bestedgeto {
			if kk != -1 {
				blossombestedges[b] = append(blossombestedges[b], kk)
			}
		}
		bestedge[b] = -1
		for _, kk := range blossombestedges[b] {
			if bestedge[b] == -1 || slack(kk) < slack(bestedge[b]) {
				bestedge[b] = kk
			}
		}
	}

	var expandBlossom func(b int, endstage bool)
	expandBlossom = func(b int, endstage bool) {
		for _, s := range blossomchilds[b] {
			blossomparent[s] = -1
			if s < nvertex {
				inblossom[s] = s
			} else if endstage && dualvar[s] == 0 {
				expandBlossom(s, endstage)
			} else {
				blossomLeaves(s, func(v int) { inblossom[v] = s })
			}
		}
		if !endstage && label[b] == 2 {
			// The expanded T-blossom's children must be relabelled.
			entrychild := inblossom[endpoint[labelend[b]^1]]
			j := 0
			for i, c := range blossomchilds[b] {
				if c == entrychild {
					j = i
					break
				}
			}
			var jstep, endptrick int
			if j&1 != 0 {
				j -= len(blossomchilds[b])
				jstep = 1
				endptrick = 0
			} else {
				jstep = -1
				endptrick = 1
			}
			idx := func(i int) int {
				n := len(blossomchilds[b])
				return ((i % n) + n) % n
			}
			p := labelend[b]
			for j != 0 {
				label[endpoint[p^1]] = 0
				label[endpoint[blossomendps[b][idx(j-endptrick)]^endptrick^1]] = 0
				assignLabel(endpoint[p^1], 2, p)
				allowedge[blossomendps[b][idx(j-endptrick)]/2] = true
				j += jstep
				p = blossomendps[b][idx(j-endptrick)] ^ endptrick
				allowedge[p/2] = true
				j += jstep
			}
			bv := blossomchilds[b][idx(j)]
			label[endpoint[p^1]] = 2
			label[bv] = 2
			labelend[endpoint[p^1]] = p
			labelend[bv] = p
			bestedge[bv] = -1
			j += jstep
			for blossomchilds[b][idx(j)] != entrychild {
				bv := blossomchilds[b][idx(j)]
				if label[bv] == 1 {
					j += jstep
					continue
				}
				var vv int = -1
				blossomLeaves(bv, func(lv int) {
					if vv == -1 && label[lv] != 0 {
						vv = lv
					}
				})
				if vv != -1 {
					label[vv] = 0
					label[endpoint[mate[blossombase[bv]]]] = 0
					assignLabel(vv, 2, labelend[vv])
				}
				j += jstep
			}
		}
		label[b] = -1
		labelend[b] = -1
		blossomchilds[b] = nil
		blossomendps[b] = nil
		blossombase[b] = -1
		blossombestedges[b] = nil
		bestedge[b] = -1
		unusedblossoms = append(unusedblossoms, b)
	}

	var augmentBlossom func(b, v int)
	augmentBlossom = func(b, v int) {
		t := v
		for blossomparent[t] != b {
			t = blossomparent[t]
		}
		if t >= nvertex {
			augmentBlossom(t, v)
		}
		i := 0
		for ii, c := range blossomchilds[b] {
			if c == t {
				i = ii
				break
			}
		}
		j := i
		var jstep, endptrick int
		if i&1 != 0 {
			j -= len(blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		idx := func(k int) int {
			n := len(blossomchilds[b])
			return ((k % n) + n) % n
		}
		for j != 0 {
			j += jstep
			t := blossomchilds[b][idx(j)]
			p := blossomendps[b][idx(j-endptrick)] ^ endptrick
			if t >= nvertex {
				augmentBlossom(t, endpoint[p])
			}
			j += jstep
			t = blossomchilds[b][idx(j)]
			if t >= nvertex {
				augmentBlossom(t, endpoint[p^1])
			}
			mate[endpoint[p]] = p ^ 1
			mate[endpoint[p^1]] = p
		}
		// Rotate the child list so the new base comes first.
		blossomchilds[b] = append(blossomchilds[b][i:], blossomchilds[b][:i]...)
		blossomendps[b] = append(blossomendps[b][i:], blossomendps[b][:i]...)
		blossombase[b] = blossombase[blossomchilds[b][0]]
	}

	augmentMatching := func(k int) {
		for _, sp := range [2][2]int{{edges[k].I, 2*k + 1}, {edges[k].J, 2 * k}} {
			s, p := sp[0], sp[1]
			for {
				bs := inblossom[s]
				if bs >= nvertex {
					augmentBlossom(bs, s)
				}
				mate[s] = p
				if labelend[bs] == -1 {
					break
				}
				t := endpoint[labelend[bs]]
				bt := inblossom[t]
				s = endpoint[labelend[bt]]
				j := endpoint[labelend[bt]^1]
				if bt >= nvertex {
					augmentBlossom(bt, j)
				}
				mate[j] = labelend[bt]
				p = labelend[bt] ^ 1
			}
		}
	}

	// Main loop: one stage per augmentation opportunity.
	for t := 0; t < nvertex; t++ {
		for i := range label {
			label[i] = 0
		}
		for i := range bestedge {
			bestedge[i] = -1
		}
		for b := nvertex; b < 2*nvertex; b++ {
			blossombestedges[b] = nil
		}
		for i := range allowedge {
			allowedge[i] = false
		}
		queue = queue[:0]
		for v := 0; v < nvertex; v++ {
			if mate[v] == -1 && label[inblossom[v]] == 0 {
				assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(queue) > 0 && !augmented {
				v := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, p := range neighbend[v] {
					k := p / 2
					w := endpoint[p]
					if inblossom[v] == inblossom[w] {
						continue
					}
					var kslack int64
					if !allowedge[k] {
						kslack = slack(k)
						if kslack <= 0 {
							allowedge[k] = true
						}
					}
					if allowedge[k] {
						switch {
						case label[inblossom[w]] == 0:
							assignLabel(w, 2, p^1)
						case label[inblossom[w]] == 1:
							base := scanBlossom(v, w)
							if base >= 0 {
								addBlossom(base, k)
							} else {
								augmentMatching(k)
								augmented = true
							}
						case label[w] == 0:
							label[w] = 2
							labelend[w] = p ^ 1
						}
						if augmented {
							break
						}
					} else if label[inblossom[w]] == 1 {
						b := inblossom[v]
						if bestedge[b] == -1 || kslack < slack(bestedge[b]) {
							bestedge[b] = k
						}
					} else if label[w] == 0 {
						if bestedge[w] == -1 || kslack < slack(bestedge[w]) {
							bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Compute the dual adjustment delta.
			deltatype := -1
			var delta int64
			deltaedge, deltablossom := -1, -1
			if !maxCardinality {
				deltatype = 1
				delta = dualvar[0]
				for v := 1; v < nvertex; v++ {
					if dualvar[v] < delta {
						delta = dualvar[v]
					}
				}
			}
			for v := 0; v < nvertex; v++ {
				if label[inblossom[v]] == 0 && bestedge[v] != -1 {
					d := slack(bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = bestedge[v]
					}
				}
			}
			for b := 0; b < 2*nvertex; b++ {
				if blossomparent[b] == -1 && label[b] == 1 && bestedge[b] != -1 {
					d := slack(bestedge[b]) / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = bestedge[b]
					}
				}
			}
			for b := nvertex; b < 2*nvertex; b++ {
				if blossombase[b] >= 0 && blossomparent[b] == -1 && label[b] == 2 &&
					(deltatype == -1 || dualvar[b] < delta) {
					delta = dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}
			if deltatype == -1 {
				// No further progress possible (maxCardinality path):
				// make one final dual adjustment and stop the substage.
				deltatype = 1
				min := dualvar[0]
				for v := 1; v < nvertex; v++ {
					if dualvar[v] < min {
						min = dualvar[v]
					}
				}
				delta = min
				if delta < 0 {
					delta = 0
				}
			}
			// Apply the dual adjustment.
			for v := 0; v < nvertex; v++ {
				switch label[inblossom[v]] {
				case 1:
					dualvar[v] -= delta
				case 2:
					dualvar[v] += delta
				}
			}
			for b := nvertex; b < 2*nvertex; b++ {
				if blossombase[b] >= 0 && blossomparent[b] == -1 {
					switch label[b] {
					case 1:
						dualvar[b] += delta
					case 2:
						dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				// Optimum reached.
			case 2:
				allowedge[deltaedge] = true
				i := edges[deltaedge].I
				if label[inblossom[i]] == 0 {
					i = edges[deltaedge].J
				}
				queue = append(queue, i)
			case 3:
				allowedge[deltaedge] = true
				queue = append(queue, edges[deltaedge].I)
			case 4:
				expandBlossom(deltablossom, false)
			}
			if deltatype == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		// End of stage: expand unlabelled S-blossoms with zero dual.
		for b := nvertex; b < 2*nvertex; b++ {
			if blossomparent[b] == -1 && blossombase[b] >= 0 && label[b] == 1 && dualvar[b] == 0 {
				expandBlossom(b, true)
			}
		}
	}

	out := make([]int, nvertex)
	for v := 0; v < nvertex; v++ {
		if mate[v] >= 0 {
			out[v] = endpoint[mate[v]]
		} else {
			out[v] = -1
		}
	}
	return out
}

// MaxWeightMatching computes a maximum-weight matching. The result maps
// each vertex to its mate (-1 when unmatched).
func MaxWeightMatching(nvertex int, edges []Edge, maxCardinality bool) []int {
	return maxWeightMatching(nvertex, edges, maxCardinality)
}
