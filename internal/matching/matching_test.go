package matching

import (
	"testing"
	"testing/quick"

	"radqec/internal/rng"
)

func matchWeight(t *testing.T, nvertex int, edges []Edge, pairs [][2]int) int64 {
	t.Helper()
	w := MatchingWeight(edges, pairs)
	return w
}

func TestEmptyGraph(t *testing.T) {
	mate := MaxWeightMatching(0, nil, false)
	if len(mate) != 0 {
		t.Fatal("empty graph returned mates")
	}
	pairs, err := MinWeightPerfectMatching(0, nil)
	if err != nil || pairs != nil {
		t.Fatalf("empty MWPM: %v %v", pairs, err)
	}
}

func TestSingleEdge(t *testing.T) {
	edges := []Edge{{0, 1, 5}}
	mate := MaxWeightMatching(2, edges, false)
	if mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestNegativeEdgeSkippedUnlessCardinality(t *testing.T) {
	edges := []Edge{{0, 1, -2}}
	mate := MaxWeightMatching(2, edges, false)
	if mate[0] != -1 || mate[1] != -1 {
		t.Fatalf("negative edge matched without maxCardinality: %v", mate)
	}
	mate = MaxWeightMatching(2, edges, true)
	if mate[0] != 1 {
		t.Fatalf("maxCardinality ignored negative edge: %v", mate)
	}
}

func TestPathChoosesHeavier(t *testing.T) {
	// Path 0-1-2: must pick the heavier of the two edges.
	edges := []Edge{{0, 1, 3}, {1, 2, 7}}
	mate := MaxWeightMatching(3, edges, false)
	if mate[1] != 2 || mate[2] != 1 || mate[0] != -1 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestCardinalityBeatsWeight(t *testing.T) {
	// Path 0-1-2-3 with a heavy middle edge. Max weight alone picks the
	// middle; max cardinality must pick the two outer edges.
	edges := []Edge{{0, 1, 2}, {1, 2, 10}, {2, 3, 2}}
	mate := MaxWeightMatching(4, edges, false)
	if mate[1] != 2 {
		t.Fatalf("pure weight: mate = %v", mate)
	}
	mate = MaxWeightMatching(4, edges, true)
	if mate[0] != 1 || mate[2] != 3 {
		t.Fatalf("cardinality: mate = %v", mate)
	}
}

func TestTriangleBlossom(t *testing.T) {
	// Odd cycle forces blossom formation.
	edges := []Edge{{0, 1, 6}, {1, 2, 6}, {0, 2, 6}, {2, 3, 5}}
	mate := MaxWeightMatching(4, edges, false)
	if mate[2] != 3 || mate[0] != 1 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestKnownTrickyCases(t *testing.T) {
	// Cases from the reference implementation's regression suite
	// (s-blossom, t-blossom, nested blossoms, relabelling and expansion).
	cases := []struct {
		n     int
		edges []Edge
		want  []int
	}{
		// create S-blossom and use it for augmentation
		{6, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}}, []int{-1, 2, 1, 4, 3, -1}},
		{7, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 5, 6}}, []int{-1, 6, 3, 2, 5, 4, 1}},
		// create S-blossom, relabel as T-blossom, use for augmentation
		{7, []Edge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}}, []int{-1, 6, 3, 2, 5, 4, 1}},
		{7, []Edge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {1, 6, 4}}, []int{-1, 6, 3, 2, 5, 4, 1}},
		{7, []Edge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {3, 6, 4}}, []int{-1, 2, 1, 6, 5, 4, 3}},
		// create nested S-blossom, use for augmentation
		{7, []Edge{{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8}, {4, 5, 10}, {5, 6, 6}}, []int{-1, 3, 4, 1, 2, 6, 5}},
		// create S-blossom, relabel as S, include in nested S-blossom
		{9, []Edge{{1, 2, 10}, {1, 7, 10}, {2, 3, 12}, {3, 4, 20}, {3, 5, 20}, {4, 5, 25}, {5, 6, 10}, {6, 7, 10}, {7, 8, 8}}, []int{-1, 2, 1, 4, 3, 6, 5, 8, 7}},
		// create nested S-blossom, augment, expand recursively
		{9, []Edge{{1, 2, 8}, {1, 3, 8}, {2, 3, 10}, {2, 4, 12}, {3, 5, 12}, {4, 5, 14}, {4, 6, 12}, {5, 7, 12}, {6, 7, 14}, {7, 8, 12}}, []int{-1, 2, 1, 5, 6, 3, 4, 8, 7}},
		// create S-blossom, relabel as T, expand
		{9, []Edge{{1, 2, 23}, {1, 5, 22}, {1, 6, 15}, {2, 3, 25}, {3, 4, 22}, {4, 5, 25}, {4, 8, 14}, {5, 7, 13}}, []int{-1, 6, 3, 2, 8, 7, 1, 5, 4}},
		// create nested S-blossom, relabel as T, expand
		{9, []Edge{{1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18}, {3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7}}, []int{-1, 8, 3, 2, 7, 6, 5, 4, 1}},
	}
	for ci, c := range cases {
		mate := MaxWeightMatching(c.n, c.edges, false)
		for v := 1; v < c.n; v++ {
			if mate[v] != c.want[v] {
				t.Fatalf("case %d: mate = %v, want %v", ci, mate, c.want)
			}
		}
	}
}

func TestTBlossomExpansionCases(t *testing.T) {
	// create blossom, relabel as T in more than one way, expand, augment
	cases := []struct {
		n     int
		edges []Edge
		want  []int
	}{
		{11, []Edge{{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50}, {1, 6, 30}, {3, 9, 35}, {4, 8, 35}, {5, 7, 26}, {9, 10, 5}},
			[]int{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}},
		{11, []Edge{{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50}, {1, 6, 30}, {3, 9, 35}, {4, 8, 26}, {5, 7, 40}, {9, 10, 5}},
			[]int{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}},
		// create blossom, relabel as T, expand such that a new least-slack
		// S-to-free edge is produced, augment
		{11, []Edge{{1, 2, 45}, {1, 5, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 50}, {1, 6, 30}, {3, 9, 35}, {4, 8, 28}, {5, 7, 26}, {9, 10, 5}},
			[]int{-1, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9}},
		// create nested blossom, relabel as T in more than one way, expand
		// outer blossom such that inner blossom ends up on an augmenting path
		{13, []Edge{{1, 2, 45}, {1, 7, 45}, {2, 3, 50}, {3, 4, 45}, {4, 5, 95}, {4, 6, 94}, {5, 6, 94}, {6, 7, 50}, {1, 8, 30}, {3, 11, 35}, {5, 9, 36}, {7, 10, 26}, {11, 12, 5}},
			[]int{-1, 8, 3, 2, 6, 9, 4, 10, 1, 5, 7, 12, 11}},
	}
	for ci, c := range cases {
		mate := MaxWeightMatching(c.n, c.edges, false)
		for v := 1; v < c.n; v++ {
			if mate[v] != c.want[v] {
				t.Fatalf("case %d: mate = %v, want %v", ci, mate, c.want)
			}
		}
	}
}

func TestMatchingSymmetricAndDisjoint(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + 2*src.Intn(4)
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if src.Bool(0.7) {
					edges = append(edges, Edge{i, j, int64(src.Intn(40))})
				}
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		for v := 0; v < n; v++ {
			if mate[v] >= 0 && mate[mate[v]] != v {
				return false
			}
			if mate[v] == v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWeightPerfectMatchingSimple(t *testing.T) {
	// Square with diagonals: cheapest perfect matching picks the two
	// cheap parallel sides.
	edges := []Edge{
		{0, 1, 1}, {2, 3, 1},
		{0, 2, 5}, {1, 3, 5},
		{0, 3, 9}, {1, 2, 9},
	}
	pairs, err := MinWeightPerfectMatching(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if w := matchWeight(t, 4, edges, pairs); w != 2 {
		t.Fatalf("weight = %d, want 2 (pairs %v)", w, pairs)
	}
}

func TestMinWeightPerfectMatchingOddVertices(t *testing.T) {
	if _, err := MinWeightPerfectMatching(3, []Edge{{0, 1, 1}}); err == nil {
		t.Fatal("odd vertex count accepted")
	}
}

func TestMinWeightPerfectMatchingNoPerfect(t *testing.T) {
	// Star K1,3 has no perfect matching.
	edges := []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}
	if _, err := MinWeightPerfectMatching(4, edges); err == nil {
		t.Fatal("imperfect graph accepted")
	}
}

func TestMinWeightAgainstBruteForce(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + 2*src.Intn(3) // 4, 6, 8
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{i, j, int64(src.Intn(50))})
			}
		}
		pairs, err := MinWeightPerfectMatching(n, edges)
		if err != nil {
			return false
		}
		_, wantW, ok := bruteForceMinPerfect(n, edges)
		if !ok {
			return false
		}
		return MatchingWeight(edges, pairs) == wantW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWeightSparseAgainstBruteForce(t *testing.T) {
	prop := func(seed uint64) bool {
		src := rng.New(seed)
		n := 6
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if src.Bool(0.6) {
					edges = append(edges, Edge{i, j, int64(src.Intn(30))})
				}
			}
		}
		_, wantW, feasible := bruteForceMinPerfect(n, edges)
		pairs, err := MinWeightPerfectMatching(n, edges)
		if !feasible {
			return err != nil
		}
		if err != nil {
			return false
		}
		return MatchingWeight(edges, pairs) == wantW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargerCompleteGraphs(t *testing.T) {
	// Blossom must stay optimal on bigger complete graphs; compare to
	// brute force at n=10 (945 matchings).
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 10
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{i, j, int64(src.Intn(100))})
			}
		}
		pairs, err := MinWeightPerfectMatching(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		_, wantW, _ := bruteForceMinPerfect(n, edges)
		if got := MatchingWeight(edges, pairs); got != wantW {
			t.Fatalf("trial %d: weight %d, want %d", trial, got, wantW)
		}
	}
}

func TestGreedyValidButMaybeSuboptimal(t *testing.T) {
	src := rng.New(7)
	worse := 0
	for trial := 0; trial < 50; trial++ {
		n := 8
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{i, j, int64(src.Intn(60))})
			}
		}
		gp, err := GreedyPerfectMatching(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if len(gp) != n/2 {
			t.Fatalf("greedy pairs = %v", gp)
		}
		op, err := MinWeightPerfectMatching(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		gw, ow := MatchingWeight(edges, gp), MatchingWeight(edges, op)
		if gw < ow {
			t.Fatalf("greedy beat blossom: %d < %d", gw, ow)
		}
		if gw > ow {
			worse++
		}
	}
	if worse == 0 {
		t.Log("greedy matched blossom on every trial (unusual but legal)")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxWeightMatching(2, []Edge{{1, 1, 3}}, false)
}

func BenchmarkBlossomComplete16(b *testing.B) {
	src := rng.New(3)
	n := 16
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j, int64(src.Intn(100))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinWeightPerfectMatching(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlossomComplete40(b *testing.B) {
	src := rng.New(4)
	n := 40
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j, int64(src.Intn(100))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinWeightPerfectMatching(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}
