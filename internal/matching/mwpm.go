package matching

import (
	"fmt"
	"math"
)

// MinWeightPerfectMatching computes a perfect matching of minimum total
// weight. It returns the matched pairs (each once, I < J by vertex
// index) or an error when no perfect matching exists.
//
// This is the decoder primitive: the space-time syndrome graph pairs up
// detection events (and boundary images) so that the total correction
// weight is minimal, exactly as qtcodes does through networkx.
func MinWeightPerfectMatching(nvertex int, edges []Edge) ([][2]int, error) {
	if nvertex%2 != 0 {
		return nil, fmt.Errorf("matching: perfect matching impossible on %d (odd) vertices", nvertex)
	}
	if nvertex == 0 {
		return nil, nil
	}
	// Negate weights: a maximum-weight maximum-cardinality matching of
	// the negated graph is a minimum-weight perfect matching of the
	// original, whenever a perfect matching exists.
	neg := make([]Edge, len(edges))
	for i, e := range edges {
		neg[i] = Edge{I: e.I, J: e.J, W: -e.W}
	}
	mate := maxWeightMatching(nvertex, neg, true)
	var pairs [][2]int
	for v, m := range mate {
		if m == -1 {
			return nil, fmt.Errorf("matching: vertex %d unmatched; no perfect matching", v)
		}
		if v < m {
			pairs = append(pairs, [2]int{v, m})
		}
	}
	if len(pairs) != nvertex/2 {
		return nil, fmt.Errorf("matching: incomplete matching (%d pairs for %d vertices)", len(pairs), nvertex)
	}
	return pairs, nil
}

// MatchingWeight sums the weight of the given pairs using the edge list
// (taking the minimum weight among parallel edges). Pairs without a
// connecting edge contribute math.MaxInt64.
func MatchingWeight(edges []Edge, pairs [][2]int) int64 {
	w := make(map[[2]int]int64)
	for _, e := range edges {
		key := [2]int{e.I, e.J}
		if e.J < e.I {
			key = [2]int{e.J, e.I}
		}
		if old, ok := w[key]; !ok || e.W < old {
			w[key] = e.W
		}
	}
	var total int64
	for _, p := range pairs {
		key := p
		if key[1] < key[0] {
			key = [2]int{p[1], p[0]}
		}
		if wt, ok := w[key]; ok {
			total += wt
		} else {
			return math.MaxInt64
		}
	}
	return total
}

// GreedyPerfectMatching is the ablation baseline decoder: it sorts the
// edges by weight and matches greedily. It is fast but not optimal; the
// ablation bench quantifies the accuracy it gives up versus blossom.
func GreedyPerfectMatching(nvertex int, edges []Edge) ([][2]int, error) {
	if nvertex%2 != 0 {
		return nil, fmt.Errorf("matching: perfect matching impossible on %d (odd) vertices", nvertex)
	}
	sorted := append([]Edge(nil), edges...)
	// Insertion sort keeps this dependency-free and is fine for decoder
	// graph sizes; swap in sort.Slice if profiles ever say otherwise.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].W < sorted[j-1].W; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	matched := make([]bool, nvertex)
	var pairs [][2]int
	for _, e := range sorted {
		if !matched[e.I] && !matched[e.J] {
			matched[e.I] = true
			matched[e.J] = true
			if e.I < e.J {
				pairs = append(pairs, [2]int{e.I, e.J})
			} else {
				pairs = append(pairs, [2]int{e.J, e.I})
			}
		}
	}
	if len(pairs) != nvertex/2 {
		return nil, fmt.Errorf("matching: greedy failed to perfect-match")
	}
	return pairs, nil
}

// bruteForceMinPerfect enumerates all perfect matchings and returns the
// minimum-weight one. Exponential; used only by tests as the reference.
func bruteForceMinPerfect(nvertex int, edges []Edge) ([][2]int, int64, bool) {
	if nvertex%2 != 0 || nvertex == 0 {
		return nil, 0, nvertex == 0
	}
	w := make(map[[2]int]int64)
	for _, e := range edges {
		key := [2]int{e.I, e.J}
		if e.J < e.I {
			key = [2]int{e.J, e.I}
		}
		if old, ok := w[key]; !ok || e.W < old {
			w[key] = e.W
		}
	}
	used := make([]bool, nvertex)
	var best [][2]int
	var bestW int64 = math.MaxInt64
	var cur [][2]int
	var rec func(curW int64)
	rec = func(curW int64) {
		first := -1
		for v := 0; v < nvertex; v++ {
			if !used[v] {
				first = v
				break
			}
		}
		if first == -1 {
			if curW < bestW {
				bestW = curW
				best = append([][2]int(nil), cur...)
			}
			return
		}
		used[first] = true
		for u := first + 1; u < nvertex; u++ {
			if used[u] {
				continue
			}
			wt, ok := w[[2]int{first, u}]
			if !ok {
				continue
			}
			used[u] = true
			cur = append(cur, [2]int{first, u})
			rec(curW + wt)
			cur = cur[:len(cur)-1]
			used[u] = false
		}
		used[first] = false
	}
	rec(0)
	return best, bestW, bestW != math.MaxInt64
}
