package matching

import (
	"math"
	"testing"

	"radqec/internal/rng"
)

func TestFloatMatchingMatchesIntegerOnScaledWeights(t *testing.T) {
	// Float weights that are integer multiples of a unit exactly
	// representable on the fixed-point grid must produce exactly the
	// matching of the integer matcher on the multiples — the shape of
	// the invariant that keeps unit-prior decoding bit-identical to
	// unit-weight decoding (the DEM quantizes each mechanism once and
	// sums integers, so its path weights are exactly proportional too).
	src := rng.New(9)
	const unit = 11.0 / 16 // dyadic: unit*WeightScale is an exact integer
	for trial := 0; trial < 20; trial++ {
		n := 6 + 2*int(src.Intn(4))
		var intEdges []Edge
		var floatEdges []EdgeF
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w := int64(src.Intn(9))
				intEdges = append(intEdges, Edge{I: i, J: j, W: w})
				floatEdges = append(floatEdges, EdgeF{I: i, J: j, W: float64(w) * unit})
			}
		}
		want, err := MinWeightPerfectMatching(n, intEdges)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MinWeightPerfectMatchingFloat(n, floatEdges)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs vs %d", trial, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: pair %d = %v, want %v", trial, k, got[k], want[k])
			}
		}
	}
}

func TestFloatMatchingIsOptimal(t *testing.T) {
	// Generic float weights: the quantized matching must reach the
	// brute-force optimum within quantization resolution.
	src := rng.New(21)
	for trial := 0; trial < 15; trial++ {
		n := 6
		var floatEdges []EdgeF
		var intEdges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w := 10 * src.Float64()
				floatEdges = append(floatEdges, EdgeF{I: i, J: j, W: w})
				intEdges = append(intEdges, Edge{I: i, J: j, W: QuantizeWeight(w)})
			}
		}
		pairs, err := MinWeightPerfectMatchingFloat(n, floatEdges)
		if err != nil {
			t.Fatal(err)
		}
		_, bestW, ok := bruteForceMinPerfect(n, intEdges)
		if !ok {
			t.Fatal("brute force found no perfect matching")
		}
		if got := MatchingWeight(intEdges, pairs); got != bestW {
			t.Fatalf("trial %d: matching weight %d, optimum %d", trial, got, bestW)
		}
	}
}

func TestFloatMatchingRejectsInvalidWeights(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), -1} {
		if _, err := MinWeightPerfectMatchingFloat(2, []EdgeF{{I: 0, J: 1, W: w}}); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
}

func TestQuantizeWeightResolution(t *testing.T) {
	if QuantizeWeight(0) != 0 {
		t.Fatal("zero must quantize to zero")
	}
	if QuantizeWeight(1) != WeightScale {
		t.Fatalf("unit weight quantized to %d", QuantizeWeight(1))
	}
	// Proportionality on integer multiples of a common unit.
	const u = 0.1234567
	for k := int64(1); k <= 64; k++ {
		if QuantizeWeight(float64(k)*u) < (k-1)*QuantizeWeight(u) {
			t.Fatalf("gross proportionality violated at k=%d", k)
		}
	}
}
