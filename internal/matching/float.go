package matching

import (
	"fmt"
	"math"
)

// EdgeF is a weighted undirected edge with a float64 weight, the input
// of the float-weighted matching front end.
type EdgeF struct {
	I, J int
	W    float64
}

// WeightScale is the fixed-point resolution of quantized weights: one
// integer weight unit is 1/WeightScale nats. At 2^16 the quantization
// error of a log-likelihood weight is below 2e-5 nats — far inside the
// noise of any estimated error probability — while sums over decoder
// paths stay comfortably inside int64.
const WeightScale = 1 << 16

// QuantizeWeight maps a float weight onto the shared fixed-point grid.
// Exactly proportional inputs stay exactly proportional whenever they
// are integer multiples of a common mechanism weight, which is what
// keeps unit-prior decoding bit-identical to unit-weight decoding.
func QuantizeWeight(w float64) int64 {
	return int64(math.Round(w * WeightScale))
}

// MinWeightPerfectMatchingFloat computes a minimum-weight perfect
// matching over float-weighted edges by quantizing every weight with
// QuantizeWeight and delegating to the exact integer blossom matcher.
// Weights must be finite and non-negative.
func MinWeightPerfectMatchingFloat(nvertex int, edges []EdgeF) ([][2]int, error) {
	q := make([]Edge, len(edges))
	for i, e := range edges {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) || e.W < 0 {
			return nil, fmt.Errorf("matching: edge (%d,%d) has invalid weight %v", e.I, e.J, e.W)
		}
		q[i] = Edge{I: e.I, J: e.J, W: QuantizeWeight(e.W)}
	}
	return MinWeightPerfectMatching(nvertex, q)
}
