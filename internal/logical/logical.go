// Package logical implements the paper's stated future-work direction
// (Section VI): propagating the measured post-QEC logical error rates
// into the logical layer of a quantum program. Each logical qubit is one
// encoded surface-code patch; after every logical operation the patch
// suffers a logical X flip with the probability extracted from the
// physical-level radiation campaigns, and a strike on one patch spreads
// to neighbouring patches following the same spatial damping law used at
// the physical level.
//
// The simulation is at the logical Clifford level (logical states evolve
// through the same stabilizer simulator), so the package answers
// questions like: "given the post-QEC logical error rates of Figure 8,
// how often does a logical GHZ preparation survive a radiation event?"
package logical

import (
	"fmt"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
	"radqec/internal/stab"
)

// PatchModel describes one encoded logical qubit's response to a
// radiation event, as extracted from the physical campaigns.
type PatchModel struct {
	// LogicalErrorAtImpact is the post-QEC logical error probability of
	// the patch when a particle strikes it directly (e.g. the Figure 8
	// per-root medians).
	LogicalErrorAtImpact float64
	// IdleError is the per-operation logical error floor away from any
	// strike (intrinsic noise residual after QEC).
	IdleError float64
}

// Validate checks the model's probabilities.
func (m PatchModel) Validate() error {
	if m.LogicalErrorAtImpact < 0 || m.LogicalErrorAtImpact > 1 {
		return fmt.Errorf("logical: impact error %v outside [0,1]", m.LogicalErrorAtImpact)
	}
	if m.IdleError < 0 || m.IdleError > 1 {
		return fmt.Errorf("logical: idle error %v outside [0,1]", m.IdleError)
	}
	return nil
}

// Injector runs logical circuits where each logical qubit is a
// surface-code patch subject to post-QEC residual errors and radiation
// strikes that spread across the patch adjacency graph.
type Injector struct {
	model PatchModel
	// patchDist[q] is the patch-graph distance from the struck patch to
	// patch q (-1 when no strike is active or unreachable).
	patchDist []int
	rootProb  float64
}

// NewInjector builds an injector for the given per-patch model.
func NewInjector(model PatchModel) (*Injector, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Injector{model: model}, nil
}

// SetStrike arms a radiation strike: dist[q] is the patch-adjacency
// distance from the struck patch to logical qubit q, and rootProb scales
// the event (1.0 at the moment of impact). Pass nil to disarm.
func (in *Injector) SetStrike(dist []int, rootProb float64) {
	in.patchDist = dist
	in.rootProb = rootProb
}

// flipProb returns the logical X probability applied to logical qubit q
// after one logical operation.
func (in *Injector) flipProb(q int) float64 {
	p := in.model.IdleError
	if in.patchDist != nil && q < len(in.patchDist) && in.patchDist[q] >= 0 {
		p += in.rootProb * in.model.LogicalErrorAtImpact * noise.Spatial(in.patchDist[q])
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Run executes the logical circuit once, injecting logical X flips after
// each operation, and returns the classical record.
func (in *Injector) Run(c *circuit.Circuit, src *rng.Source) []int {
	tab := stab.New(c.NumQubits)
	bits := make([]int, c.NumClbits)
	for _, op := range c.Ops {
		switch op.Kind {
		case circuit.KindH:
			tab.H(op.Qubits[0])
		case circuit.KindX:
			tab.X(op.Qubits[0])
		case circuit.KindY:
			tab.Y(op.Qubits[0])
		case circuit.KindZ:
			tab.Z(op.Qubits[0])
		case circuit.KindS:
			tab.S(op.Qubits[0])
		case circuit.KindCNOT:
			tab.CNOT(op.Qubits[0], op.Qubits[1])
		case circuit.KindCZ:
			tab.CZ(op.Qubits[0], op.Qubits[1])
		case circuit.KindSWAP:
			tab.SWAP(op.Qubits[0], op.Qubits[1])
		case circuit.KindMeasure:
			bits[op.Clbit] = tab.MeasureZ(op.Qubits[0], src)
		case circuit.KindReset:
			tab.Reset(op.Qubits[0], src)
		case circuit.KindBarrier:
			continue
		}
		for _, q := range op.Qubits {
			if src.Bool(in.flipProb(q)) {
				tab.X(q)
			}
		}
	}
	return bits
}

// Campaign estimates how often a logical circuit's output survives.
type Campaign struct {
	// Injector supplies the logical fault process.
	Injector *Injector
	// Circuit is the logical program.
	Circuit *circuit.Circuit
	// Accept decides whether a shot's classical record is correct.
	Accept func(bits []int) bool
}

// Run executes shots and returns the failure rate.
func (c *Campaign) Run(seed uint64, shots int) float64 {
	if shots <= 0 {
		return 0
	}
	master := rng.New(seed)
	failures := 0
	for s := 0; s < shots; s++ {
		bits := c.Injector.Run(c.Circuit, master.Split(uint64(s)))
		if !c.Accept(bits) {
			failures++
		}
	}
	return float64(failures) / float64(shots)
}

// GHZCircuit prepares an n-qubit logical GHZ state and measures every
// qubit: the canonical multi-patch workload whose output is all-equal
// bitstrings.
func GHZCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, n)
	c.AddQReg("logical", n)
	c.AddCReg("m", n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// GHZAccept reports whether a GHZ record is all zeros or all ones.
func GHZAccept(bits []int) bool {
	for _, b := range bits[1:] {
		if b != bits[0] {
			return false
		}
	}
	return true
}

// TeleportCircuit builds the standard one-qubit teleportation circuit
// over three logical patches with classically-controlled corrections
// replaced by deferred-measurement CZ/CNOT (Clifford-friendly): the
// state X|0> = |1> prepared on patch 0 must arrive on patch 2.
func TeleportCircuit() *circuit.Circuit {
	c := circuit.New(3, 3)
	c.AddQReg("logical", 3)
	c.AddCReg("m", 3)
	c.X(0) // state to teleport: |1>
	// Bell pair between 1 and 2.
	c.H(1)
	c.CNOT(1, 2)
	// Bell measurement of 0 and 1, deferred: controlled corrections
	// applied before measuring.
	c.CNOT(0, 1)
	c.H(0)
	c.CNOT(1, 2)
	c.CZ(0, 2)
	c.Measure(0, 0)
	c.Measure(1, 1)
	c.Measure(2, 2)
	return c
}

// TeleportAccept reports whether the teleported qubit (bit 2) reads 1.
func TeleportAccept(bits []int) bool { return bits[2] == 1 }
