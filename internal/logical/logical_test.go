package logical

import (
	"math"
	"testing"

	"radqec/internal/rng"
)

func TestPatchModelValidate(t *testing.T) {
	if err := (PatchModel{LogicalErrorAtImpact: 0.3, IdleError: 0.001}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (PatchModel{LogicalErrorAtImpact: 1.5}).Validate(); err == nil {
		t.Fatal("bad impact error accepted")
	}
	if err := (PatchModel{IdleError: -0.1}).Validate(); err == nil {
		t.Fatal("bad idle error accepted")
	}
}

func TestNewInjectorRejectsBadModel(t *testing.T) {
	if _, err := NewInjector(PatchModel{LogicalErrorAtImpact: 2}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestGHZCleanRun(t *testing.T) {
	in, err := NewInjector(PatchModel{})
	if err != nil {
		t.Fatal(err)
	}
	c := GHZCircuit(5)
	for seed := uint64(0); seed < 100; seed++ {
		bits := in.Run(c, rng.New(seed))
		if !GHZAccept(bits) {
			t.Fatalf("clean GHZ rejected: %v", bits)
		}
	}
}

func TestGHZAccept(t *testing.T) {
	if !GHZAccept([]int{0, 0, 0}) || !GHZAccept([]int{1, 1, 1}) {
		t.Fatal("valid GHZ records rejected")
	}
	if GHZAccept([]int{0, 1, 0}) {
		t.Fatal("broken GHZ record accepted")
	}
}

func TestTeleportCleanRun(t *testing.T) {
	in, err := NewInjector(PatchModel{})
	if err != nil {
		t.Fatal(err)
	}
	c := TeleportCircuit()
	for seed := uint64(0); seed < 200; seed++ {
		bits := in.Run(c, rng.New(seed))
		if !TeleportAccept(bits) {
			t.Fatalf("clean teleport failed: %v", bits)
		}
	}
}

func TestIdleErrorDegradesGHZ(t *testing.T) {
	in, err := NewInjector(PatchModel{IdleError: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	camp := &Campaign{Injector: in, Circuit: GHZCircuit(5), Accept: GHZAccept}
	rate := camp.Run(1, 2000)
	if rate == 0 {
		t.Fatal("idle error produced no failures")
	}
	if rate > 0.9 {
		t.Fatalf("idle error rate implausibly high: %v", rate)
	}
}

func TestStrikeSpreadsAcrossPatches(t *testing.T) {
	in, err := NewInjector(PatchModel{LogicalErrorAtImpact: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Linear patch layout: strike patch 0 of 5.
	in.SetStrike([]int{0, 1, 2, 3, 4}, 1.0)
	camp := &Campaign{Injector: in, Circuit: GHZCircuit(5), Accept: GHZAccept}
	struck := camp.Run(2, 2000)
	in.SetStrike(nil, 0)
	clean := camp.Run(2, 2000)
	if struck <= clean {
		t.Fatalf("strike did not degrade: struck %v vs clean %v", struck, clean)
	}
}

func TestStrikeDecaysWithDistance(t *testing.T) {
	model := PatchModel{LogicalErrorAtImpact: 0.6}
	rate := func(dist []int) float64 {
		in, err := NewInjector(model)
		if err != nil {
			t.Fatal(err)
		}
		in.SetStrike(dist, 1.0)
		camp := &Campaign{Injector: in, Circuit: GHZCircuit(3), Accept: GHZAccept}
		return camp.Run(5, 3000)
	}
	near := rate([]int{0, 1, 2})
	far := rate([]int{5, 6, 7})
	if far >= near {
		t.Fatalf("distant strike (%v) not milder than direct hit (%v)", far, near)
	}
}

func TestFlipProbClamping(t *testing.T) {
	in, err := NewInjector(PatchModel{LogicalErrorAtImpact: 1, IdleError: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.SetStrike([]int{0}, 1.0)
	if p := in.flipProb(0); p != 1 {
		t.Fatalf("flip prob = %v, want clamped 1", p)
	}
	// Out-of-range qubit only sees the idle floor.
	if p := in.flipProb(5); math.Abs(p-1) > 1e-12 {
		t.Fatalf("idle-only prob = %v", p)
	}
}

func TestCampaignZeroShots(t *testing.T) {
	in, _ := NewInjector(PatchModel{})
	camp := &Campaign{Injector: in, Circuit: GHZCircuit(2), Accept: GHZAccept}
	if rate := camp.Run(1, 0); rate != 0 {
		t.Fatalf("zero-shot rate = %v", rate)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	mk := func() float64 {
		in, _ := NewInjector(PatchModel{IdleError: 0.02})
		camp := &Campaign{Injector: in, Circuit: GHZCircuit(4), Accept: GHZAccept}
		return camp.Run(42, 500)
	}
	if mk() != mk() {
		t.Fatal("logical campaign not deterministic")
	}
}
