// Package graph implements the undirected graphs that describe quantum
// hardware connectivity (architecture graphs) and the algorithms the
// radiation study needs on them: shortest paths for SWAP routing and for
// the spatial decay of a particle strike, connectivity checks, and the
// connected-subgraph enumeration used to build correlated "hypernode"
// fault groups.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1 with unit edge
// weights (the paper fixes every architecture edge weight to 1).
type Graph struct {
	n   int
	adj [][]int
	has []map[int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{
		n:   n,
		adj: make([][]int, n),
		has: make([]map[int]bool, n),
	}
	for i := range g.has {
		g.has[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self loops and duplicate
// edges are ignored. It panics on out-of-range vertices.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v || g.has[u][v] {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.has[u][v] = true
	g.has[v][u] = true
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.has[u][v]
}

// Neighbors returns the neighbor list of v. The returned slice must not
// be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Edges returns every edge once, as ordered pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AverageDegree returns the mean vertex degree, 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.n)
}

// BFSFrom returns the unit-weight distance from src to every vertex.
// Unreachable vertices get distance -1.
func (g *Graph) BFSFrom(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the shortest-path length between u and v, or -1 when
// disconnected.
func (g *Graph) Distance(u, v int) int {
	return g.BFSFrom(u)[v]
}

// AllPairsShortestPaths returns the full distance matrix (unit weights).
// Disconnected pairs hold -1.
func (g *Graph) AllPairsShortestPaths() [][]int {
	d := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.BFSFrom(v)
	}
	return d
}

// ShortestPath returns one shortest path from src to dst inclusive, or
// nil when disconnected.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				if v == dst {
					queue = nil
					break
				}
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] == -1 {
		return nil
	}
	var path []int
	for v := dst; v != src; v = prev[v] {
		path = append(path, v)
	}
	path = append(path, src)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is connected. The empty graph and
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as sorted vertex lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		var comp []int
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedConnected reports whether the sub-graph induced by vs is
// connected and non-empty.
func (g *Graph) InducedConnected(vs []int) bool {
	if len(vs) == 0 {
		return false
	}
	in := make(map[int]bool, len(vs))
	for _, v := range vs {
		g.check(v)
		in[v] = true
	}
	seen := map[int]bool{vs[0]: true}
	queue := []int{vs[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if in[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(in)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}
