package graph

import (
	"testing"
	"testing/quick"

	"radqec/internal/rng"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func grid(w, h int) *Graph {
	g := New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				g.AddEdge(v, v+1)
			}
			if y+1 < h {
				g.AddEdge(v, v+w)
			}
		}
	}
	return g
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2)
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop recorded")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := grid(3, 3)
	if d := g.Degree(4); d != 4 { // center of 3x3
		t.Fatalf("center degree = %d, want 4", d)
	}
	if d := g.Degree(0); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
	n := g.Neighbors(0)
	if len(n) != 2 {
		t.Fatalf("corner has %d neighbors", len(n))
	}
}

func TestEdgesSortedUnique(t *testing.T) {
	g := cycle(4)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestBFSPathGraph(t *testing.T) {
	g := path(5)
	d := g.BFSFrom(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist(0,%d) = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	d := g.BFSFrom(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("disconnected distances = %v, want -1", d[2:])
	}
}

func TestDistanceGrid(t *testing.T) {
	g := grid(5, 6)
	// Manhattan distance on a grid without diagonals.
	if got := g.Distance(0, 4); got != 4 {
		t.Fatalf("Distance = %d, want 4", got)
	}
	if got := g.Distance(0, 29); got != 4+5 {
		t.Fatalf("corner-to-corner = %d, want 9", got)
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := grid(4, 3)
	d := g.AllPairsShortestPaths()
	for u := 0; u < g.N(); u++ {
		if d[u][u] != 0 {
			t.Fatalf("d[%d][%d] = %d", u, u, d[u][u])
		}
		for v := 0; v < g.N(); v++ {
			if d[u][v] != d[v][u] {
				t.Fatalf("asymmetric distance %d,%d", u, v)
			}
		}
	}
}

func TestShortestPathEndpoints(t *testing.T) {
	g := grid(5, 5)
	p := g.ShortestPath(0, 24)
	if p[0] != 0 || p[len(p)-1] != 24 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if len(p) != g.Distance(0, 24)+1 {
		t.Fatalf("path length %d inconsistent with distance", len(p))
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path step %d-%d not an edge", p[i], p[i+1])
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := path(3)
	p := g.ShortestPath(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if p := g.ShortestPath(0, 2); p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestConnected(t *testing.T) {
	if !path(6).Connected() {
		t.Fatal("path graph should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
}

func TestInducedConnected(t *testing.T) {
	g := grid(3, 3)
	if !g.InducedConnected([]int{0, 1, 2}) {
		t.Fatal("top row should be connected")
	}
	if g.InducedConnected([]int{0, 2}) {
		t.Fatal("two opposite corners of a row are not adjacent")
	}
	if g.InducedConnected(nil) {
		t.Fatal("empty set should not be connected")
	}
}

func TestClone(t *testing.T) {
	g := cycle(5)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares state with original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Fatal("clone missing edges")
	}
}

func TestAverageDegree(t *testing.T) {
	if got := cycle(6).AverageDegree(); got != 2 {
		t.Fatalf("cycle average degree = %v, want 2", got)
	}
	if got := New(0).AverageDegree(); got != 0 {
		t.Fatalf("empty graph average degree = %v", got)
	}
}

func TestConnectedSubgraphsPath(t *testing.T) {
	// A path with n vertices has exactly n-k+1 connected subgraphs of
	// size k (the contiguous windows).
	g := path(6)
	for k := 1; k <= 6; k++ {
		subs := g.ConnectedSubgraphs(k, 0)
		if len(subs) != 6-k+1 {
			t.Fatalf("path(6) size-%d subgraphs = %d, want %d", k, len(subs), 6-k+1)
		}
		for _, s := range subs {
			if !g.InducedConnected(s) {
				t.Fatalf("subgraph %v not connected", s)
			}
		}
	}
}

func TestConnectedSubgraphsNoDuplicates(t *testing.T) {
	g := grid(3, 3)
	subs := g.ConnectedSubgraphs(3, 0)
	seen := map[string]bool{}
	for _, s := range subs {
		key := ""
		for _, v := range s {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate subgraph %v", s)
		}
		seen[key] = true
	}
}

func TestConnectedSubgraphsLimit(t *testing.T) {
	g := grid(4, 4)
	subs := g.ConnectedSubgraphs(4, 5)
	if len(subs) != 5 {
		t.Fatalf("limit ignored: got %d", len(subs))
	}
}

func TestConnectedSubgraphsEdgeCases(t *testing.T) {
	g := path(3)
	if got := g.ConnectedSubgraphs(0, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := g.ConnectedSubgraphs(4, 0); got != nil {
		t.Fatal("k>n should return nil")
	}
}

func TestSampleConnectedSubgraphs(t *testing.T) {
	g := grid(5, 6)
	src := rng.New(1)
	subs := g.SampleConnectedSubgraphs(7, 25, src)
	if len(subs) != 25 {
		t.Fatalf("got %d samples, want 25", len(subs))
	}
	for _, s := range subs {
		if len(s) != 7 {
			t.Fatalf("sample size %d, want 7", len(s))
		}
		if !g.InducedConnected(s) {
			t.Fatalf("sample %v not connected", s)
		}
	}
}

func TestSampleConnectedSubgraphsImpossible(t *testing.T) {
	g := New(4) // no edges: size-2 connected subgraphs do not exist
	src := rng.New(2)
	if subs := g.SampleConnectedSubgraphs(2, 3, src); subs != nil {
		t.Fatalf("expected nil, got %v", subs)
	}
}

func TestSubgraphConnectivityProperty(t *testing.T) {
	g := grid(4, 4)
	prop := func(seed uint64, rawK uint8) bool {
		k := int(rawK%6) + 1
		src := rng.New(seed)
		subs := g.SampleConnectedSubgraphs(k, 3, src)
		for _, s := range subs {
			if len(s) != k || !g.InducedConnected(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
