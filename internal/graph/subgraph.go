package graph

import (
	"sort"

	"radqec/internal/rng"
)

// ConnectedSubgraphs enumerates every connected induced subgraph with
// exactly k vertices, up to limit results (limit <= 0 means unlimited).
// Each result is a sorted vertex list. The enumeration is deterministic.
//
// The paper builds its "hypernode" fault groups (Figures 6 and 7) by
// selecting connected subgraphs of the 5x6 architecture lattice and
// resetting every qubit inside the group simultaneously.
func (g *Graph) ConnectedSubgraphs(k, limit int) [][]int {
	if k <= 0 || k > g.n {
		return nil
	}
	var out [][]int
	// Standard enumeration without duplicates: grow each subgraph only
	// from its numerically smallest root, and only add neighbors larger
	// than the root.
	for root := 0; root < g.n; root++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		cur := []int{root}
		inCur := map[int]bool{root: true}
		frontier := g.extendCandidates(cur, inCur, root)
		g.growSubgraphs(cur, inCur, frontier, root, k, limit, &out)
	}
	return out
}

// extendCandidates lists vertices adjacent to cur, greater than root and
// not already chosen, in ascending order.
func (g *Graph) extendCandidates(cur []int, inCur map[int]bool, root int) []int {
	seen := map[int]bool{}
	var cands []int
	for _, u := range cur {
		for _, v := range g.adj[u] {
			if v > root && !inCur[v] && !seen[v] {
				seen[v] = true
				cands = append(cands, v)
			}
		}
	}
	sort.Ints(cands)
	return cands
}

func (g *Graph) growSubgraphs(cur []int, inCur map[int]bool, frontier []int, root, k, limit int, out *[][]int) {
	if limit > 0 && len(*out) >= limit {
		return
	}
	if len(cur) == k {
		snapshot := append([]int(nil), cur...)
		sort.Ints(snapshot)
		*out = append(*out, snapshot)
		return
	}
	// Choose the next vertex from the frontier; to avoid duplicates each
	// candidate may only be taken while earlier candidates are excluded.
	for i, v := range frontier {
		cur = append(cur, v)
		inCur[v] = true
		// New frontier: remaining candidates after v, plus v's unseen
		// neighbors.
		next := append([]int(nil), frontier[i+1:]...)
		for _, w := range g.adj[v] {
			if w > root && !inCur[w] && !containsSorted(next, w) {
				next = append(next, w)
			}
		}
		sort.Ints(next)
		g.growSubgraphs(cur, inCur, next, root, k, limit, out)
		delete(inCur, v)
		cur = cur[:len(cur)-1]
		if limit > 0 && len(*out) >= limit {
			return
		}
	}
}

func containsSorted(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// SampleConnectedSubgraphs returns up to count connected induced
// subgraphs with k vertices, sampled by random BFS growth. Results may
// repeat across draws but each returned set is connected and of size k.
// It returns nil when no subgraph of size k exists from any root.
func (g *Graph) SampleConnectedSubgraphs(k, count int, src *rng.Source) [][]int {
	if k <= 0 || k > g.n || count <= 0 {
		return nil
	}
	var out [][]int
	const maxAttemptsPerSample = 64
	for len(out) < count {
		found := false
		for attempt := 0; attempt < maxAttemptsPerSample; attempt++ {
			if sg := g.randomGrow(k, src); sg != nil {
				out = append(out, sg)
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return out
}

// randomGrow grows one connected set of size k from a random root, or
// returns nil when the growth gets stuck (root's component smaller than k).
func (g *Graph) randomGrow(k int, src *rng.Source) []int {
	root := src.Intn(g.n)
	chosen := map[int]bool{root: true}
	var frontier []int
	for _, v := range g.adj[root] {
		frontier = append(frontier, v)
	}
	for len(chosen) < k {
		// Drop frontier entries that were chosen through another path.
		live := frontier[:0]
		for _, v := range frontier {
			if !chosen[v] {
				live = append(live, v)
			}
		}
		frontier = live
		if len(frontier) == 0 {
			return nil
		}
		i := src.Intn(len(frontier))
		v := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		chosen[v] = true
		for _, w := range g.adj[v] {
			if !chosen[w] {
				frontier = append(frontier, w)
			}
		}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
