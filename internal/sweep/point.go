package sweep

import (
	"runtime/metrics"
	"sort"
	"time"

	"radqec/internal/control"
	"radqec/internal/faultinject"
	"radqec/internal/stats"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

// workerState is the per-worker scratch a pool worker threads through
// the points it executes: the sorted buffer for tail statistics and the
// runtime/metrics sample used for allocation deltas.
type workerState struct {
	scratch []float64
	msample []metrics.Sample
}

// allocBytes reads the process-wide cumulative heap-allocation counter.
// The delta across a chunk is a memory-pressure signal attributed to
// the chunk but global to the process, as documented on the telemetry
// Signal.
func (ws *workerState) allocBytes() int64 {
	if ws.msample == nil {
		ws.msample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	}
	metrics.Read(ws.msample)
	return int64(ws.msample[0].Value.Uint64())
}

// pointRun is the resumable execution state of one point — the old
// runPoint loop unrolled into a state machine so the scheduler can run
// a point one policy batch at a time and interleave campaigns between
// batches. The policy-batch boundaries, stop-rule evaluations and
// checkpoint/commit decisions replicate the loop exactly; only the
// mechanism (how a batch is split into engine calls, and when the next
// batch is scheduled) is in the scheduler's hands.
type pointRun struct {
	cfg *Config
	p   Point
	res Result

	runner  BatchRunner
	cache   PointCache // nil when the point has no hash
	started bool
	inBatch bool
	// batchN is the current policy batch's size; batchCounts accumulates
	// its chunks. record() sees exactly one merged Counts per policy
	// batch, so BatchRates are identical however the batch was chunked.
	batchN      int
	batchCounts Counts
	// prio is the controller priority as of the last batch boundary;
	// claimed marks the single-flight claim this point holds.
	prio    float64
	claimed bool
	// parked marks a point owned by another fabric node: handouts skip
	// it until the resolver unparks it with the owner's committed
	// result in the cache (or for local takeover compute).
	parked bool
	// aborted marks a point retired by cancellation or a campaign
	// failure: complete() skips its result and OnResult delivery.
	aborted bool
	// ckptShots is the shot count covered by the point's latest durable
	// checkpoint, so an abort only writes a checkpoint when there is
	// progress beyond it.
	ckptShots int
	// span is the point's open trace span (zero when the campaign is
	// unsampled); endSpan closes it exactly once on whichever of
	// finalize/abort/fail retires the point.
	span trace.ActiveSpan
}

// endSpan closes the point's trace span, recording total shots and
// the terminal condition. Safe (and free) when the campaign is
// unsampled or the span already closed.
func (pr *pointRun) endSpan(detail string, err error) {
	if !pr.span.Sampled() {
		return
	}
	pr.cfg.Trace.Recorder().ClearPointSpan(pr.p.Key)
	pr.span.SetShots(pr.res.Shots)
	if detail != "" {
		pr.span.SetDetail(detail)
	}
	pr.span.SetError(err)
	pr.span.End()
	pr.span = trace.ActiveSpan{}
}

// begin resolves the cache path and prepares the runner. It returns
// true when the point was served entirely from a committed cache entry
// and has no batches to run.
func (pr *pointRun) begin() bool {
	pr.started = true
	pr.cache = pr.cfg.Cache
	if pr.p.Hash == "" {
		pr.cache = nil
	}
	pr.res = Result{Key: pr.p.Key}
	pr.span = pr.cfg.Trace.Start(trace.SpanPoint, pr.p.Key)
	pr.span.SetHash(pr.p.Hash)
	if pr.span.Sampled() {
		pr.cfg.Trace.Recorder().SetPointSpan(pr.p.Key, pr.span.Context())
	}
	tel := pr.cfg.Telemetry
	if pr.cache != nil {
		if cp, ok := pr.cache.Lookup(pr.p.Hash); ok {
			pr.res.loadCached(cp)
			pr.res.Cached = true
			if tel != nil {
				tel.Record(telemetry.Signal{
					TimeNS:   time.Now().UnixNano(),
					Key:      pr.p.Key,
					Shots:    pr.res.Shots,
					Errors:   pr.res.Errors,
					CacheHit: true,
				})
			}
			return true
		}
		if pr.cfg.Resume {
			if cp, ok := pr.cache.LookupPartial(pr.p.Hash); ok {
				pr.res.loadCached(cp)
				pr.ckptShots = pr.res.Shots
			}
		}
	}
	if tel != nil && pr.cfg.Cache != nil {
		tel.CacheMiss()
	}
	pr.runner = pr.p.Prepare()
	return false
}

// startBatch evaluates the stop rule at a policy-batch boundary — the
// same check, in the same order, as the top of the legacy runFixed and
// runAdaptive loops — and opens the next batch. It returns false when
// the point is done (converged, budget spent, or cap reached).
func (pr *pointRun) startBatch() bool {
	cfg := pr.cfg
	if cfg.CI <= 0 {
		if pr.res.Shots >= cfg.Shots {
			pr.res.Converged = true // fixed mode has no target to miss
			return false
		}
		batch := (cfg.Shots + fixedBatches - 1) / fixedBatches
		if batch < 1 {
			batch = 1
		}
		batch = cfg.alignUp(batch)
		if n := cfg.Shots - pr.res.Shots; n < batch {
			batch = n
		}
		pr.batchN = batch
	} else {
		if pr.res.Shots > 0 && stats.WilsonHalfWidth(pr.res.Errors, pr.res.Shots) <= cfg.CI {
			pr.res.Converged = true
			return false
		}
		n := nextBatch(*cfg, pr.res.Counts)
		if n == 0 {
			pr.res.Converged = false // cap reached before the target
			return false
		}
		pr.batchN = n
	}
	pr.inBatch = true
	pr.batchCounts = Counts{}
	return true
}

// runChunk executes up to chunk shots of the current policy batch (the
// whole remainder when chunk <= 0) and feeds the telemetry ring and the
// controller estimators. The chunk boundary is invisible to the policy:
// stop rules, batch rates and checkpoints only ever see the merged
// batch counts, and the (start, n) ranges of a batch's chunks tile the
// exact range the legacy single call covered.
func (pr *pointRun) runChunk(chunk int, ctrl *control.Controller, ws *workerState) {
	// The chaos harness's worker fault: a panic here exercises the
	// scheduler's recover boundary exactly where an engine bug would.
	if err := faultinject.Eval(faultinject.WorkerPanic); err != nil {
		panic(err)
	}
	n := pr.batchN - pr.batchCounts.Shots
	if chunk > 0 && chunk < n {
		n = chunk
	}
	start := pr.res.Shots + pr.batchCounts.Shots
	tel := pr.cfg.Telemetry
	observing := tel != nil || ctrl != nil
	var t0 time.Time
	var alloc0 int64
	var hwBefore float64
	if observing {
		if tel != nil {
			m := pr.res.Counts
			m.merge(pr.batchCounts)
			hwBefore = stats.WilsonHalfWidth(m.Errors, m.Shots)
		}
		alloc0 = ws.allocBytes()
		t0 = time.Now()
	}
	cs := pr.span.Context().Start(trace.SpanChunkRun, pr.p.Key)
	c := pr.runner(start, n)
	pr.batchCounts.merge(c)
	if cs.Sampled() {
		cs.SetShots(c.Shots)
		cs.End()
	}
	if !observing {
		return
	}
	wall := time.Since(t0).Nanoseconds()
	alloc := ws.allocBytes() - alloc0
	if ctrl != nil {
		ctrl.ObserveChunk(n, c.Shots, wall, alloc)
	}
	if tel == nil {
		return
	}
	m := pr.res.Counts
	m.merge(pr.batchCounts)
	var sps float64
	if wall > 0 {
		sps = float64(c.Shots) / (float64(wall) / 1e9)
	}
	tel.Record(telemetry.Signal{
		TimeNS:      time.Now().UnixNano(),
		Key:         pr.p.Key,
		Batch:       len(pr.res.BatchRates),
		Start:       start,
		Shots:       c.Shots,
		Errors:      c.Errors,
		WallNS:      wall,
		ShotsPerSec: sps,
		HWBefore:    hwBefore,
		HWAfter:     stats.WilsonHalfWidth(m.Errors, m.Shots),
		TailWidth:   pr.tailWidth(ws),
		AllocBytes:  alloc,
	})
}

// finishBatch folds the completed policy batch into the result and
// checkpoints exactly when the legacy loop did: never on a batch the
// commit that follows immediately would supersede.
func (pr *pointRun) finishBatch() {
	pr.res.record(pr.batchCounts)
	pr.inBatch = false
	cfg := pr.cfg
	var last bool
	if cfg.CI <= 0 {
		last = pr.res.Shots >= cfg.Shots
	} else {
		last = stats.WilsonHalfWidth(pr.res.Errors, pr.res.Shots) <= cfg.CI ||
			pr.res.Shots >= cfg.MaxShots
	}
	if !last && pr.cache != nil {
		pr.cache.Checkpoint(pr.p.Hash, pr.res.cachedPoint())
		pr.ckptShots = pr.res.Shots
	}
	if tel := cfg.Telemetry; tel != nil {
		tel.BatchDone()
	}
}

// abort retires the point without finishing it: progress beyond the
// last durable checkpoint is flushed so a resubmitted campaign resumes
// from this exact batch boundary, and a cancel signal marks the event
// for started points. Called only at policy-batch boundaries, so the
// flushed checkpoint is always whole-batch state the resumed run
// replays byte-identically.
func (pr *pointRun) abort() {
	pr.aborted = true
	if !pr.started || pr.res.Cached {
		pr.endSpan("aborted", nil)
		return
	}
	pr.endSpan("cancelled at batch boundary", nil)
	if pr.cache != nil && pr.res.Shots > pr.ckptShots {
		pr.cache.Checkpoint(pr.p.Hash, pr.res.cachedPoint())
		pr.ckptShots = pr.res.Shots
	}
	if tel := pr.cfg.Telemetry; tel != nil {
		tel.Record(telemetry.Signal{
			TimeNS: time.Now().UnixNano(),
			Key:    pr.p.Key,
			Shots:  pr.res.Shots,
			Event:  telemetry.EventCancel,
			Detail: "campaign cancelled at batch boundary",
		})
	}
}

// finalize commits live points to the cache and derives the interval
// and tail statistics — the same computation, in the same order, as the
// legacy runPoint tail.
func (pr *pointRun) finalize(ws *workerState) {
	if pr.cache != nil && !pr.res.Cached {
		cs := pr.span.Context().Start(trace.SpanStoreCommit, pr.p.Key)
		cs.SetHash(pr.p.Hash)
		pr.cache.Commit(pr.p.Hash, pr.res.cachedPoint())
		cs.End()
	}
	detail := ""
	if pr.res.Cached {
		detail = "cache-hit"
	}
	pr.endSpan(detail, nil)
	pr.res = pr.res.finalize(&ws.scratch)
}

// tailWidth is the CI half-width of the point's tail statistic — the
// shot-allocation signal for tail-sensitive points; 0 otherwise.
func (pr *pointRun) tailWidth(ws *workerState) float64 {
	if !pr.p.TailSensitive {
		return 0
	}
	s := append(ws.scratch[:0], pr.res.BatchRates...)
	sort.Float64s(s)
	ws.scratch = s
	return stats.CVaRHalfWidth(s, 0.90)
}

// priority scores the point for the controller's handout ordering:
// tail-sensitive points by tail-CI width, adaptive points by Wilson
// half-width, fixed points by remaining work. Unstarted points take the
// widest value of their band, so every point gets a first batch before
// refinement begins.
func (pr *pointRun) priority(ws *workerState) float64 {
	cfg := pr.cfg
	sig := control.PointSignals{TailSensitive: pr.p.TailSensitive}
	adaptive := cfg.CI > 0
	if pr.res.Shots == 0 {
		if adaptive {
			sig.HalfWidth = 1
		}
		sig.RemainingFrac = 1
	} else {
		if adaptive {
			sig.HalfWidth = stats.WilsonHalfWidth(pr.res.Errors, pr.res.Shots)
		} else if cfg.Shots > 0 {
			sig.RemainingFrac = float64(cfg.Shots-pr.res.Shots) / float64(cfg.Shots)
		}
	}
	if sig.TailSensitive {
		sig.TailWidth = pr.tailWidth(ws)
	}
	return control.Priority(sig)
}
