package sweep

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"radqec/internal/rng"
	"radqec/internal/stats"
)

// runT runs a campaign under a background context and reports any
// terminal error as a test failure (t.Errorf, so goroutine callers are
// safe). The pre-context call shape for every test that expects its
// campaign to finish.
func runT(t *testing.T, cfg Config, points []Point) []Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, points)
	if err != nil {
		t.Errorf("Run: %v", err)
	}
	return res
}

// bernoulliPoint builds a synthetic point honouring the campaign
// determinism contract: shot i of the point consumes split(seed, i).
func bernoulliPoint(key string, seed uint64, p float64) Point {
	return Point{
		Key: key,
		Prepare: func() BatchRunner {
			master := rng.New(seed)
			return func(start, n int) Counts {
				c := Counts{}
				for i := start; i < start+n; i++ {
					c.Shots++
					if master.Split(uint64(i)).Float64() < p {
						c.Errors++
					}
				}
				return c
			}
		},
	}
}

// countShots counts errors of the same stream over one contiguous range.
func countShots(seed uint64, p float64, shots int) Counts {
	pt := bernoulliPoint("", seed, p)
	return pt.Prepare()(0, shots)
}

func TestFixedModeMatchesContiguousRun(t *testing.T) {
	cfg := Config{Policy: Policy{Shots: 1000}}
	res := runT(t, cfg, []Point{bernoulliPoint("a", 3, 0.3)})
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	want := countShots(3, 0.3, 1000)
	if res[0].Counts != want {
		t.Fatalf("fixed sweep %+v != contiguous run %+v", res[0].Counts, want)
	}
	if !res[0].Converged {
		t.Fatal("fixed mode should report converged")
	}
	if len(res[0].BatchRates) != fixedBatches {
		t.Fatalf("batch rates = %d, want %d", len(res[0].BatchRates), fixedBatches)
	}
	if lo, hi := stats.WilsonCI(want.Errors, want.Shots); res[0].CILo != lo || res[0].CIHi != hi {
		t.Fatalf("CI [%v,%v] mismatch", res[0].CILo, res[0].CIHi)
	}
}

// The satellite regression: identical per-point shot streams and rates
// for Workers=1 and Workers=8, in both fixed and adaptive mode.
func TestRunWorkerDeterminism(t *testing.T) {
	mkPoints := func() []Point {
		var pts []Point
		for i := 0; i < 24; i++ {
			p := float64(i%7) / 10 // rates 0.0 .. 0.6
			pts = append(pts, bernoulliPoint(fmt.Sprintf("p%d", i), uint64(100+i), p))
		}
		return pts
	}
	for _, cfg := range []Config{
		{Policy: Policy{Shots: 700}},
		{Policy: Policy{CI: 0.05, Batch: 100}},
	} {
		one := cfg
		one.Workers = 1
		eight := cfg
		eight.Workers = 8
		a := runT(t, one, mkPoints())
		b := runT(t, eight, mkPoints())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cfg %+v: workers=1 and workers=8 disagree", cfg)
		}
	}
}

func TestAdaptiveStopsAtTarget(t *testing.T) {
	const ci = 0.02
	cfg := Config{Policy: Policy{CI: ci}}
	res := runT(t, cfg, []Point{bernoulliPoint("easy", 9, 0.01)})[0]
	if !res.Converged {
		t.Fatalf("easy point did not converge: %+v", res.Counts)
	}
	if res.HalfWidth() > ci {
		t.Fatalf("half-width %v above target %v", res.HalfWidth(), ci)
	}
	if cap := WorstCaseShots(ci); res.Shots >= cap {
		t.Fatalf("easy point used %d shots, cap is %d", res.Shots, cap)
	}
}

func TestAdaptiveSavesShotsOverFixedGuarantee(t *testing.T) {
	const ci = 0.03
	cfg := Config{Policy: Policy{CI: ci}}
	var pts []Point
	for i := 0; i < 10; i++ {
		pts = append(pts, bernoulliPoint(fmt.Sprintf("p%d", i), uint64(i), float64(i)/20))
	}
	results := runT(t, cfg, pts)
	s := Summarize(cfg, results)
	if s.TotalShots >= s.FixedShots {
		t.Fatalf("adaptive used %d shots, fixed guarantee costs %d", s.TotalShots, s.FixedShots)
	}
	for _, r := range results {
		if r.HalfWidth() > ci {
			t.Fatalf("point %s half-width %v above %v", r.Key, r.HalfWidth(), ci)
		}
	}
	if s.Converged != s.Points {
		t.Fatalf("converged %d of %d despite default worst-case cap", s.Converged, s.Points)
	}
}

func TestAdaptiveRespectsCap(t *testing.T) {
	cfg := Config{Policy: Policy{CI: 0.001, MaxShots: 500, Batch: 128}}
	res := runT(t, cfg, []Point{bernoulliPoint("hard", 5, 0.5)})[0]
	if res.Shots != 500 {
		t.Fatalf("shots = %d, want the 500 cap", res.Shots)
	}
	if res.Converged {
		t.Fatal("cap-limited point reported converged")
	}
}

func TestWorstCaseShots(t *testing.T) {
	for _, ci := range []float64{0.05, 0.02, 0.01} {
		n := WorstCaseShots(ci)
		if n <= 0 {
			t.Fatalf("WorstCaseShots(%v) = %d", ci, n)
		}
		if got := stats.WilsonHalfWidth(n/2, n); got > ci {
			t.Fatalf("half-width %v at worst-case n=%d exceeds %v", got, n, ci)
		}
	}
	// ci=0.01 must land near the Wald worst case z²/(4·ci²) ≈ 9604.
	if n := WorstCaseShots(0.01); n < 9000 || n > 9700 {
		t.Fatalf("WorstCaseShots(0.01) = %d", n)
	}
	if WorstCaseShots(0) != 0 {
		t.Fatal("WorstCaseShots(0) nonzero")
	}
}

func TestTailStatistics(t *testing.T) {
	// One point, fixed mode: tail stats must equal the stats-package
	// view of the recorded batch rates.
	res := runT(t, Config{Policy: Policy{Shots: 2000}}, []Point{bernoulliPoint("t", 77, 0.3)})[0]
	br := res.BatchRates
	want := Tail{
		Q50:    stats.Quantile(br, 0.50),
		Q90:    stats.Quantile(br, 0.90),
		Q99:    stats.Quantile(br, 0.99),
		CVaR90: stats.CVaR(br, 0.90),
	}
	if res.Tail != want {
		t.Fatalf("tail %+v, want %+v", res.Tail, want)
	}
	if res.Tail.CVaR90 < res.Tail.Q90 {
		t.Fatal("CVaR below its quantile")
	}
}

func TestOnResultStreamsEveryPoint(t *testing.T) {
	var keys []string
	cfg := Config{Policy: Policy{Shots: 50}, Mechanism: Mechanism{Workers: 4, OnResult: func(r Result) {
		keys = append(keys, r.Key) // serialised by the engine
	}}}
	var pts []Point
	for i := 0; i < 9; i++ {
		pts = append(pts, bernoulliPoint(fmt.Sprintf("k%d", i), uint64(i), 0.2))
	}
	runT(t, cfg, pts)
	if len(keys) != len(pts) {
		t.Fatalf("streamed %d results, want %d", len(keys), len(pts))
	}
	sort.Strings(keys)
	for i, k := range keys {
		if k != fmt.Sprintf("k%d", i) {
			t.Fatalf("stream keys = %v", keys)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if res := runT(t, Config{}, nil); len(res) != 0 {
		t.Fatalf("empty sweep produced %d results", len(res))
	}
}

func TestAlignRoundsBatchSizes(t *testing.T) {
	// Fixed mode: every batch but the last is a multiple of the
	// alignment, and the total is exactly Shots.
	var sizes []int
	pt := Point{Key: "a", Prepare: func() BatchRunner {
		return func(start, n int) Counts {
			sizes = append(sizes, n)
			return Counts{Shots: n}
		}
	}}
	res := runT(t, Config{Policy: Policy{Shots: 1000, Align: 64}, Mechanism: Mechanism{Workers: 1}}, []Point{pt})[0]
	if res.Shots != 1000 {
		t.Fatalf("shots = %d", res.Shots)
	}
	total := 0
	for i, n := range sizes {
		total += n
		if i < len(sizes)-1 && n%64 != 0 {
			t.Fatalf("batch %d size %d not word-aligned", i, n)
		}
	}
	if total != 1000 {
		t.Fatalf("batches sum to %d", total)
	}

	// Adaptive mode: same property, and the counts still match the
	// contiguous stream (alignment only re-chunks the same shot range).
	sizes = nil
	adaptive := runT(t, Config{Policy: Policy{CI: 0.05, Align: 64}, Mechanism: Mechanism{Workers: 1}},
		[]Point{bernoulliPoint("b", 3, 0.2)})[0]
	want := countShots(3, 0.2, adaptive.Shots)
	if adaptive.Counts != want {
		t.Fatalf("aligned adaptive %+v != contiguous %+v", adaptive.Counts, want)
	}
}

func TestAlignDoesNotChangeMergedCounts(t *testing.T) {
	// The BatchRunner contract makes alignment invisible in the counts:
	// the same point swept with Align 1 and Align 64 at fixed shots
	// yields identical totals.
	a := runT(t, Config{Policy: Policy{Shots: 900}}, []Point{bernoulliPoint("x", 7, 0.3)})[0]
	b := runT(t, Config{Policy: Policy{Shots: 900, Align: 64}}, []Point{bernoulliPoint("x", 7, 0.3)})[0]
	if a.Counts != b.Counts {
		t.Fatalf("alignment changed counts: %+v vs %+v", a.Counts, b.Counts)
	}
}
