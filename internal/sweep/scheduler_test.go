package sweep

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestSchedulerMatchesPrivatePool: a sweep run on a shared scheduler
// returns exactly what the classic private-pool Run returns.
func TestSchedulerMatchesPrivatePool(t *testing.T) {
	points := []Point{
		bernoulliPoint("a", 11, 0.05),
		bernoulliPoint("b", 12, 0.2),
		bernoulliPoint("c", 13, 0.5),
	}
	cfg := Config{Policy: Policy{Shots: 640}, Mechanism: Mechanism{Workers: 3}}
	want := runT(t, cfg, points)

	sched := NewScheduler(4)
	defer sched.Close()
	cfg.Scheduler = sched
	got := runT(t, cfg, points)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shared-pool results diverged:\n%v\nvs\n%v", got, want)
	}
}

// TestSchedulerFairRoundRobin: with one pool worker and two concurrent
// campaigns, points are handed out alternately — neither campaign can
// starve the other.
func TestSchedulerFairRoundRobin(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	bothIn := make(chan struct{})
	var (
		mu    sync.Mutex
		order []byte
	)
	cfg := Config{Policy: Policy{Shots: 1}, Mechanism: Mechanism{Workers: 1, Scheduler: s, OnResult: func(r Result) {
		mu.Lock()
		order = append(order, r.Key[0])
		mu.Unlock()
	}}}
	mk := func(name string, n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Key: fmt.Sprintf("%s%d", name, i), Prepare: func() BatchRunner {
				return func(start, n int) Counts {
					<-bothIn // the first point holds the lone worker until both campaigns queue
					return Counts{Shots: n}
				}
			}}
		}
		return pts
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); runT(t, cfg, mk("a", 3)) }()
	go func() { defer wg.Done(); runT(t, cfg, mk("b", 3)) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.queues)
		s.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaigns never both enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	close(bothIn)
	wg.Wait()
	if len(order) != 6 {
		t.Fatalf("completions = %q", order)
	}
	for i := 0; i+1 < len(order); i++ {
		if order[i] == order[i+1] {
			t.Fatalf("round-robin starved a campaign: completion order %q", order)
		}
	}
}

// TestSchedulerWorkersCapRespected: a campaign's Workers setting caps
// its concurrency inside a larger pool.
func TestSchedulerWorkersCapRespected(t *testing.T) {
	s := NewScheduler(8)
	defer s.Close()
	var (
		mu       sync.Mutex
		active   int
		maxSeen  int
		release  = make(chan struct{})
		started  = make(chan struct{}, 16)
		points   []Point
		nPoints  = 6
		capLimit = 2
	)
	for i := 0; i < nPoints; i++ {
		points = append(points, Point{Key: fmt.Sprintf("p%d", i), Prepare: func() BatchRunner {
			return func(start, n int) Counts {
				mu.Lock()
				active++
				if active > maxSeen {
					maxSeen = active
				}
				mu.Unlock()
				started <- struct{}{}
				<-release
				mu.Lock()
				active--
				mu.Unlock()
				return Counts{Shots: n}
			}
		}})
	}
	done := make(chan struct{})
	go func() {
		runT(t, Config{Policy: Policy{Shots: 1}, Mechanism: Mechanism{Workers: capLimit, Scheduler: s}}, points)
		close(done)
	}()
	// Wait for the first capLimit points to start, give the scheduler a
	// chance to (wrongly) start more, then release everything.
	for i := 0; i < capLimit; i++ {
		<-started
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
	if maxSeen > capLimit {
		t.Fatalf("campaign ran %d points concurrently, cap %d", maxSeen, capLimit)
	}
}

// TestCacheSkipsPreparedPoints: a committed cache entry short-circuits
// the point — Prepare must never run — and the replayed result carries
// recomputed interval and tail statistics.
func TestCacheSkipsPreparedPoints(t *testing.T) {
	cache := newMapCache()
	live := runT(t, Config{Policy: Policy{Shots: 320}, Mechanism: Mechanism{Cache: cache}}, []Point{
		{Key: "a", Hash: "ha", Prepare: bernoulliPoint("a", 21, 0.1).Prepare},
	})[0]
	if live.Cached {
		t.Fatal("first run reported Cached")
	}
	replay := runT(t, Config{Policy: Policy{Shots: 320}, Mechanism: Mechanism{Cache: cache}}, []Point{
		{Key: "a", Hash: "ha", Prepare: func() BatchRunner {
			t.Fatal("Prepare called despite committed cache entry")
			return nil
		}},
	})[0]
	if !replay.Cached {
		t.Fatal("replay not marked Cached")
	}
	replay.Cached = false
	if !reflect.DeepEqual(replay, live) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", replay, live)
	}
	// Hashless points bypass the cache entirely.
	r := runT(t, Config{Policy: Policy{Shots: 64}, Mechanism: Mechanism{Cache: cache}}, []Point{bernoulliPoint("nohash", 5, 0.5)})[0]
	if r.Cached || r.Shots != 64 {
		t.Fatalf("hashless point touched the cache: %+v", r)
	}
}

// mapCache is an in-memory PointCache for tests.
type mapCache struct {
	mu      sync.Mutex
	commits map[string]CachedPoint
	ckpts   map[string]CachedPoint
}

func newMapCache() *mapCache {
	return &mapCache{commits: map[string]CachedPoint{}, ckpts: map[string]CachedPoint{}}
}

func (c *mapCache) Lookup(h string) (CachedPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.commits[h]
	return p, ok
}

func (c *mapCache) LookupPartial(h string) (CachedPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.ckpts[h]
	return p, ok
}

func (c *mapCache) Checkpoint(h string, p CachedPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.BatchRates = append([]float64(nil), p.BatchRates...)
	c.ckpts[h] = p
}

func (c *mapCache) Commit(h string, p CachedPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.BatchRates = append([]float64(nil), p.BatchRates...)
	c.commits[h] = p
	delete(c.ckpts, h)
}
