package sweep

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"radqec/internal/control"
	"radqec/internal/telemetry"
)

// ctrlPoints builds a mixed point set: tail-sensitive and plain points
// across a range of rates, the shape of a radiation-strike campaign.
func ctrlPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = bernoulliPoint(fmt.Sprintf("p%d", i), uint64(300+i), float64(i%9)/20)
		pts[i].TailSensitive = i%3 == 0
	}
	return pts
}

// TestControllerResultsByteIdentical is the PR's core guarantee: the
// full Result set — counts, batch-rate streams, intervals, tail
// statistics, convergence flags — is identical with the controller on
// and off, at any worker count, in fixed and adaptive mode. Equal
// Results imply byte-identical tables, since tables are pure functions
// of the results.
func TestControllerResultsByteIdentical(t *testing.T) {
	for _, pol := range []Policy{
		{Shots: 1100, Align: 64},
		{CI: 0.03, Batch: 128, Align: 64},
	} {
		baseline := runT(t, Config{Policy: pol, Mechanism: Mechanism{Workers: 1}}, ctrlPoints(18))
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, ctrl := range []*control.Policy{nil, control.Default(), {Enabled: true, Dwell: 1, Hysteresis: 0.01, MaxChunk: 256}} {
				cfg := Config{Policy: pol, Mechanism: Mechanism{Workers: workers, Control: ctrl}}
				got := runT(t, cfg, ctrlPoints(18))
				if !reflect.DeepEqual(got, baseline) {
					t.Fatalf("policy %+v workers %d controller %+v diverged from baseline", pol, workers, ctrl)
				}
			}
		}
	}
}

// TestControllerDeterminismOnSharedScheduler: concurrent heterogeneous
// campaigns — fixed, adaptive, tail-heavy — multiplexed over one pool
// with the controller on still reproduce their solo static baselines.
func TestControllerDeterminismOnSharedScheduler(t *testing.T) {
	type campaign struct {
		pol Policy
		n   int
	}
	camps := []campaign{
		{Policy{Shots: 900, Align: 64}, 12},
		{Policy{CI: 0.04, Batch: 128, Align: 64}, 12},
		{Policy{Shots: 500}, 8},
	}
	baselines := make([][]Result, len(camps))
	for i, c := range camps {
		baselines[i] = runT(t, Config{Policy: c.pol, Mechanism: Mechanism{Workers: 1}}, ctrlPoints(c.n))
	}
	s := NewScheduler(4)
	defer s.Close()
	var wg sync.WaitGroup
	got := make([][]Result, len(camps))
	for i, c := range camps {
		wg.Add(1)
		go func(i int, c campaign) {
			defer wg.Done()
			cfg := Config{Policy: c.pol, Mechanism: Mechanism{
				Workers: 2, Scheduler: s, Control: control.Default(),
			}}
			got[i] = runT(t, cfg, ctrlPoints(c.n))
		}(i, c)
	}
	wg.Wait()
	for i := range camps {
		if !reflect.DeepEqual(got[i], baselines[i]) {
			t.Fatalf("campaign %d diverged from its solo static baseline under concurrent controller scheduling", i)
		}
	}
}

// TestTailSensitivePointsServedFirst: with one worker, every
// tail-sensitive point of a campaign completes before any plain point
// starts — the tail band of the priority order strictly dominates.
func TestTailSensitivePointsServedFirst(t *testing.T) {
	var order []string
	pts := ctrlPoints(12)
	nTail := 0
	for _, p := range pts {
		if p.TailSensitive {
			nTail++
		}
	}
	cfg := Config{Policy: Policy{Shots: 300}, Mechanism: Mechanism{
		Workers: 1,
		Control: control.Default(),
		OnResult: func(r Result) {
			order = append(order, r.Key)
		},
	}}
	runT(t, cfg, pts)
	tailKeys := map[string]bool{}
	for _, p := range pts {
		if p.TailSensitive {
			tailKeys[p.Key] = true
		}
	}
	for i, k := range order[:nTail] {
		if !tailKeys[k] {
			t.Fatalf("completion %d was plain point %s before the tail-sensitive set drained (order %v)", i, k, order)
		}
	}
}

// TestControllerBorrowsIdleWorkers: Workers is a hard concurrency cap
// for static campaigns but only a contention share for controller
// campaigns — on an otherwise idle pool the controller borrows the
// unused slots, keeping the scheduler work-conserving.
func TestControllerBorrowsIdleWorkers(t *testing.T) {
	mk := func() ([]Point, *atomic.Int64) {
		var cur, peak atomic.Int64
		pts := make([]Point, 8)
		for i := range pts {
			inner := bernoulliPoint(fmt.Sprintf("p%d", i), uint64(70+i), 0.1).Prepare
			pts[i] = Point{Key: fmt.Sprintf("p%d", i), Prepare: func() BatchRunner {
				r := inner()
				return func(start, n int) Counts {
					c := cur.Add(1)
					defer cur.Add(-1)
					for {
						m := peak.Load()
						if c <= m || peak.CompareAndSwap(m, c) {
							break
						}
					}
					time.Sleep(time.Millisecond)
					return r(start, n)
				}
			}}
		}
		return pts, &peak
	}
	s := NewScheduler(4)
	defer s.Close()
	pts, peak := mk()
	s.Run(context.Background(), Config{Policy: Policy{Shots: 256}, Mechanism: Mechanism{Workers: 1}}, pts)
	if got := peak.Load(); got != 1 {
		t.Fatalf("static campaign ran %d points concurrently past its Workers=1 cap", got)
	}
	pts, peak = mk()
	s.Run(context.Background(), Config{Policy: Policy{Shots: 256}, Mechanism: Mechanism{
		Workers: 1, Control: control.Default(),
	}}, pts)
	if got := peak.Load(); got < 2 {
		t.Fatalf("controller campaign peaked at %d concurrent points — idle pool slots were not borrowed", got)
	}
}

// TestSingleFlightComputesOnce: two identical campaigns racing on a
// cold daemon must Prepare each point exactly once — the follower parks
// on the in-flight hash and replays the leader's commit from the cache.
func TestSingleFlightComputesOnce(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	cache := newMapCache()
	var prepares atomic.Int64
	mk := func() []Point {
		pts := make([]Point, 10)
		for i := range pts {
			inner := bernoulliPoint(fmt.Sprintf("p%d", i), uint64(50+i), 0.2).Prepare
			pts[i] = Point{
				Key:  fmt.Sprintf("p%d", i),
				Hash: fmt.Sprintf("h%d", i),
				Prepare: func() BatchRunner {
					prepares.Add(1)
					return inner()
				},
			}
		}
		return pts
	}
	cfg := Config{Policy: Policy{Shots: 600, Align: 64}, Mechanism: Mechanism{
		Workers: 2, Scheduler: s, Cache: cache, Control: control.Default(),
	}}
	var wg sync.WaitGroup
	results := make([][]Result, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runT(t, cfg, mk())
		}(i)
	}
	wg.Wait()
	if n := prepares.Load(); n != 10 {
		t.Fatalf("identical concurrent campaigns prepared %d points, want 10 (one per distinct hash)", n)
	}
	// Both campaigns carry identical estimates; only the Cached flag
	// differs between the computing leader and the replaying follower.
	for i := range results[0] {
		a, b := results[0][i], results[1][i]
		a.Cached, b.Cached = false, false
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("point %d: leader and follower disagree:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	// Every single-flight claim must have been released.
	s.mu.Lock()
	inFlight := len(s.flights)
	s.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d single-flight claims leaked", inFlight)
	}
}

// TestTelemetryObservesCampaign: the telemetry campaign attached to a
// sweep sees every shot, batch and point, and cache replays surface as
// hits rather than engine work.
func TestTelemetryObservesCampaign(t *testing.T) {
	cache := newMapCache()
	tel := telemetry.NewCampaign(1, "test")
	cfg := Config{Policy: Policy{Shots: 640, Align: 64}, Mechanism: Mechanism{
		Workers: 2, Cache: cache, Control: control.Default(), Telemetry: tel,
	}}
	pts := []Point{
		{Key: "a", Hash: "ha", Prepare: bernoulliPoint("a", 1, 0.1).Prepare},
		{Key: "b", Hash: "hb", Prepare: bernoulliPoint("b", 2, 0.3).Prepare},
	}
	res := runT(t, cfg, pts)
	st := tel.Stats()
	wantShots := int64(res[0].Shots + res[1].Shots)
	if st.Shots != wantShots {
		t.Fatalf("telemetry shots %d, results say %d", st.Shots, wantShots)
	}
	if st.PointsDone != 2 || st.CacheMisses != 2 || st.CacheHits != 0 {
		t.Fatalf("cold-run stats: %+v", st)
	}
	if st.Batches < int64(len(res[0].BatchRates)+len(res[1].BatchRates)) {
		t.Fatalf("batches %d below the recorded rate stream", st.Batches)
	}
	if st.Chunks < st.Batches {
		t.Fatalf("chunks %d below batches %d", st.Chunks, st.Batches)
	}
	sigs, _ := tel.Since(0, telemetry.RingSize)
	if len(sigs) == 0 {
		t.Fatal("no signals recorded")
	}
	// A warm rerun is pure cache traffic.
	tel2 := telemetry.NewCampaign(2, "test")
	cfg.Telemetry = tel2
	runT(t, cfg, []Point{
		{Key: "a", Hash: "ha", Prepare: func() BatchRunner { t.Fatal("prepared despite commit"); return nil }},
	})
	st2 := tel2.Stats()
	if st2.CacheHits != 1 || st2.CacheMisses != 0 || st2.Shots != int64(res[0].Shots) {
		t.Fatalf("warm-run stats: %+v", st2)
	}
}
