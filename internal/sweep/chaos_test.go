package sweep

// Chaos suite for the sweep engine: cancellation at every batch
// boundary with byte-identical resume, and panic isolation that fails
// one campaign without taking down its siblings or the shared pool.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"radqec/internal/control"
	"radqec/internal/faultinject"
)

// cancellingCache wraps a PointCache and cancels the campaign context
// after the Nth checkpoint — a kill landing exactly on a batch
// boundary, the only place cancellation is observed.
type cancellingCache struct {
	PointCache
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (c *cancellingCache) Checkpoint(h string, p CachedPoint) {
	c.PointCache.Checkpoint(h, p)
	if c.seen.Add(1) == c.after {
		c.cancel()
	}
}

func chaosPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := bernoulliPoint(fmt.Sprintf("p%d", i), uint64(500+i), float64(i%7)/15)
		p.Hash = fmt.Sprintf("h%d", i)
		pts[i] = p
	}
	return pts
}

// normalize strips the Cached flag, which legitimately differs between
// a cold run and a resumed one; every other field must be identical.
func normalize(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].Cached = false
	}
	return out
}

// TestChaosCancelEveryBoundaryResumesByteIdentical is the core
// recovery guarantee: a campaign cancelled after ANY batch boundary
// and resubmitted against the same cache reproduces the uninterrupted
// run exactly — counts, batch streams, intervals, tails — with the
// controller both off and on.
func TestChaosCancelEveryBoundaryResumesByteIdentical(t *testing.T) {
	const n = 6
	pol := Policy{Shots: 600, Batch: 100, Align: 64}
	for _, ctrl := range []*control.Policy{nil, control.Default()} {
		mech := func(cache PointCache) Mechanism {
			return Mechanism{Workers: 2, Cache: cache, Resume: true, Control: ctrl}
		}
		baseline := runT(t, Config{Policy: pol, Mechanism: mech(newMapCache())}, chaosPoints(n))
		// Count the boundaries an uninterrupted run crosses, then kill
		// a fresh campaign at each one in turn.
		counter := &cancellingCache{PointCache: newMapCache(), cancel: func() {}, after: -1}
		runT(t, Config{Policy: pol, Mechanism: mech(counter)}, chaosPoints(n))
		boundaries := counter.seen.Load()
		if boundaries < int64(n) {
			t.Fatalf("controller %v: only %d checkpoints observed", ctrl, boundaries)
		}
		for k := int64(1); k <= boundaries; k++ {
			cache := newMapCache()
			ctx, cancel := context.WithCancel(context.Background())
			cc := &cancellingCache{PointCache: cache, cancel: cancel, after: k}
			_, err := Run(ctx, Config{Policy: pol, Mechanism: mech(cc)}, chaosPoints(n))
			cancel()
			if err == nil {
				// The cancel landed after the campaign's last boundary;
				// the run completed normally. Resubmission is then a
				// pure cache replay, which the k<boundaries cases and
				// the final equality below still verify.
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("controller %v k=%d: cancelled run returned %v", ctrl, k, err)
			}
			resumed, err := Run(context.Background(), Config{Policy: pol, Mechanism: mech(cache)}, chaosPoints(n))
			if err != nil {
				t.Fatalf("controller %v k=%d: resumed run failed: %v", ctrl, k, err)
			}
			if !reflect.DeepEqual(normalize(resumed), normalize(baseline)) {
				t.Fatalf("controller %v: resume after boundary %d diverged from the uninterrupted run", ctrl, k)
			}
		}
	}
}

// TestChaosCancelFlushesPartialCheckpoints: cancellation must leave
// every in-progress point's latest batch boundary in the cache, so a
// resubmission computes strictly fewer shots than a cold run.
func TestChaosCancelFlushesPartialCheckpoints(t *testing.T) {
	pol := Policy{Shots: 800, Batch: 100}
	cache := newMapCache()
	ctx, cancel := context.WithCancel(context.Background())
	cc := &cancellingCache{PointCache: cache, cancel: cancel, after: 4}
	_, err := Run(ctx, Config{Policy: pol, Mechanism: Mechanism{Workers: 2, Cache: cc, Resume: true}}, chaosPoints(4))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cache.mu.Lock()
	commits, ckpts := len(cache.commits), len(cache.ckpts)
	cache.mu.Unlock()
	if commits+ckpts == 0 {
		t.Fatal("cancellation flushed nothing — all progress lost")
	}
	// Resume: progress must carry over, not restart from shot zero.
	var computed atomic.Int64
	cfg := Config{Policy: pol, Mechanism: Mechanism{
		Workers: 2, Cache: cache, Resume: true,
		OnResult: func(r Result) {
			if !r.Cached {
				computed.Add(1)
			}
		},
	}}
	res := runT(t, cfg, chaosPoints(4))
	for _, r := range res {
		if r.Shots != 800 {
			t.Fatalf("resumed point %s at %d shots", r.Key, r.Shots)
		}
	}
}

// TestChaosPanicIsolatedToItsCampaign: a worker panic fails its own
// campaign with a stack-carrying PointError while a sibling campaign
// sharing the scheduler completes untouched, and the pool stays
// reusable afterwards.
func TestChaosPanicIsolatedToItsCampaign(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	bomb := chaosPoints(6)
	inner := bomb[3].Prepare
	bomb[3].Prepare = func() BatchRunner {
		r := inner()
		return func(start, n int) Counts {
			if start >= 200 {
				panic("detector matrix went singular")
			}
			return r(start, n)
		}
	}
	var wg sync.WaitGroup
	var bombErr, siblingErr error
	var siblingRes []Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, bombErr = s.Run(context.Background(), Config{Policy: Policy{Shots: 600, Batch: 100}, Mechanism: Mechanism{Workers: 2}}, bomb)
	}()
	go func() {
		defer wg.Done()
		siblingRes, siblingErr = s.Run(context.Background(), Config{Policy: Policy{Shots: 600, Batch: 100}, Mechanism: Mechanism{Workers: 2}}, chaosPoints(6))
	}()
	wg.Wait()
	var pe *PointError
	if !errors.As(bombErr, &pe) {
		t.Fatalf("panicking campaign returned %v, want a *PointError", bombErr)
	}
	if pe.Key != "p3" {
		t.Fatalf("PointError names %q, want the panicking point p3", pe.Key)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PointError carries no stack")
	}
	if siblingErr != nil {
		t.Fatalf("sibling campaign failed: %v", siblingErr)
	}
	want := runT(t, Config{Policy: Policy{Shots: 600, Batch: 100}, Mechanism: Mechanism{Workers: 1}}, chaosPoints(6))
	if !reflect.DeepEqual(normalize(siblingRes), normalize(want)) {
		t.Fatal("sibling campaign's results diverged while its neighbour panicked")
	}
	// The pool survives: a fresh campaign on the same scheduler runs clean.
	if res, err := s.Run(context.Background(), Config{Policy: Policy{Shots: 300}, Mechanism: Mechanism{Workers: 2}}, chaosPoints(4)); err != nil || len(res) != 4 {
		t.Fatalf("scheduler unusable after a panic: %v", err)
	}
	// No single-flight claims leaked from the failed campaign.
	s.mu.Lock()
	inFlight := len(s.flights)
	s.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d single-flight claims leaked across the panic", inFlight)
	}
}

// TestChaosPanicFailpoint: the sweep.worker.panic failpoint drives the
// same isolation path without a hand-built bomb point.
func TestChaosPanicFailpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Enable(faultinject.WorkerPanic, "panic*1@3"); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), Config{Policy: Policy{Shots: 400, Batch: 100}, Mechanism: Mechanism{Workers: 2}}, chaosPoints(4))
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("failpoint-driven panic returned %v, want a *PointError", err)
	}
	if faultinject.Hits(faultinject.WorkerPanic) != 1 {
		t.Fatalf("failpoint hits = %d", faultinject.Hits(faultinject.WorkerPanic))
	}
	// With the failpoint spent, the same campaign completes.
	if _, err := Run(context.Background(), Config{Policy: Policy{Shots: 400, Batch: 100}, Mechanism: Mechanism{Workers: 2}}, chaosPoints(4)); err != nil {
		t.Fatalf("rerun after spent failpoint: %v", err)
	}
}

// TestChaosPreCancelledContextRunsNothing: a context cancelled before
// Run starts must compute zero shots and return the cause.
func TestChaosPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var computed atomic.Int64
	pts := chaosPoints(4)
	for i := range pts {
		inner := pts[i].Prepare
		pts[i].Prepare = func() BatchRunner {
			computed.Add(1)
			return inner()
		}
	}
	_, err := Run(ctx, Config{Policy: Policy{Shots: 400}, Mechanism: Mechanism{Workers: 2}}, pts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := computed.Load(); n != 0 {
		t.Fatalf("%d points prepared under a dead context", n)
	}
}
