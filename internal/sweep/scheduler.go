package sweep

import (
	"runtime"
	"sync"

	"radqec/internal/control"
)

// Scheduler owns a fixed pool of point workers and multiplexes any
// number of concurrent sweeps over it. Each Run enqueues its points as
// one campaign; workers hand out work across the active campaigns under
// deficit scheduling, so N concurrent clients share the pool fairly
// instead of each spawning its own worker set and oversubscribing the
// CPU. A lone campaign still gets the whole pool.
//
// Campaigns without a controller (Mechanism.Control nil or disabled)
// run under the static legacy policy: FIFO point handouts, every weight
// 1 (which degrades deficit scheduling to the old least-recently-served
// rotation), a point runs to completion once handed out, and Workers is
// a hard concurrency cap. Controller campaigns run one policy batch per
// handout, ordered by tail-aware point priorities and weighted campaign
// shares, with identical in-flight points single-flighted through the
// cache; their Workers is a share hint — when every other campaign is
// drained or capped, a controller campaign borrows the idle slots so
// the pool stays work-conserving.
//
// Point results are pure functions of (Policy, Point) — the determinism
// contract of Run — so interleaving campaigns or enabling the
// controller changes only wall-clock time and completion order, never
// the results.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queues holds the active campaigns in service order: a campaign
	// moves to the back each time it is handed a point, and a new
	// campaign enters at the front with its service counter levelled to
	// the least-served active campaign — so handouts alternate across
	// campaigns regardless of arrival order or campaign length.
	queues []*schedQueue
	// flights keys the points currently computing by content hash: a
	// controller campaign's point whose hash is already in flight parks
	// until the holder commits, then replays the committed result from
	// the cache instead of recomputing it.
	flights map[string]struct{}
	closed  bool
	workers int
	wg      sync.WaitGroup
}

// schedQueue is one campaign's slice of the pool.
type schedQueue struct {
	cfg     Config
	points  []Point
	results []Result
	// runs holds each point's execution state machine; ctrl is the
	// campaign's scoring controller (nil under the static policy).
	runs []pointRun
	ctrl *control.Controller
	// next is the static policy's FIFO cursor; queue is the controller
	// policy's pending-point set, scanned by priority at each handout.
	next       int
	queue      []int
	running    int // points of this campaign currently executing
	unfinished int // points not yet completed
	// served and topPrio feed deficit scheduling: handouts received so
	// far, and the best pending priority (claimable refreshes it) whose
	// tail band sets the campaign's weight.
	served  float64
	topPrio float64
	done    chan struct{}
	// resMu serialises this campaign's OnResult calls, matching the
	// single-campaign Run contract; campaigns do not block each other.
	resMu sync.Mutex
}

// NewScheduler starts a pool of the given size (0 picks GOMAXPROCS).
// Close releases the workers.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		flights: make(map[string]struct{}),
		workers: workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Active returns the number of campaigns currently holding points in
// the pool — the denominator callers use to split shot-level
// parallelism budgets so overlapping campaigns stay within the CPU
// budget.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues)
}

// Close stops the workers after their in-flight points finish. Runs
// still queued complete first: Close only blocks new point handouts
// once every active campaign has drained.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Run executes one campaign on the shared pool and returns results in
// input order, exactly like the package-level Run. Concurrent Runs are
// interleaved fairly. cfg.Workers caps how many of this campaign's
// points execute at once within the pool; under the controller policy
// the cap softens to a share hint and idle slots are borrowed.
func (s *Scheduler) Run(cfg Config, points []Point) []Result {
	cfg = cfg.withDefaults()
	results := make([]Result, len(points))
	if len(points) == 0 {
		return results
	}
	q := &schedQueue{
		cfg:        cfg,
		points:     points,
		results:    results,
		unfinished: len(points),
		done:       make(chan struct{}),
		ctrl:       control.New(cfg.Control, cfg.Align),
	}
	q.runs = make([]pointRun, len(points))
	for i := range q.runs {
		q.runs[i] = pointRun{cfg: &q.cfg, p: points[i]}
	}
	if q.ctrl != nil {
		q.queue = make([]int, len(points))
		var ws workerState
		for i := range points {
			q.queue[i] = i
			q.runs[i].prio = q.runs[i].priority(&ws)
		}
	}
	if tel := cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(len(points))
		if q.ctrl != nil {
			tel.SetControl(q.ctrl.DwellState())
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("sweep: Run on closed Scheduler")
	}
	// A new campaign starts level with the least-served active campaign,
	// preserving the alternating handouts of the legacy rotation.
	for i, o := range s.queues {
		if i == 0 || o.served < q.served {
			q.served = o.served
		}
	}
	s.queues = append([]*schedQueue{q}, s.queues...)
	s.mu.Unlock()
	s.cond.Broadcast()
	<-q.done
	return results
}

// worker advances points handed out by take until the pool closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	var ws workerState
	for {
		q, i := s.take()
		if q == nil {
			return
		}
		if q.runTurn(i, &ws) {
			s.complete(q, i)
		} else {
			s.requeue(q, i)
		}
	}
}

// runTurn advances one point. The static policy runs the point to
// completion in one turn — the legacy worker behaviour. The controller
// policy runs exactly one policy batch, chunked at the controller's
// current size, then yields the worker so the next handout can re-order
// on fresh priorities. Returns true when the point finished.
func (q *schedQueue) runTurn(i int, ws *workerState) bool {
	pr := &q.runs[i]
	if !pr.started && pr.begin() {
		pr.finalize(ws) // served from the cache: no batches to run
		return true
	}
	if q.ctrl == nil {
		for pr.startBatch() {
			for pr.batchCounts.Shots < pr.batchN {
				pr.runChunk(0, nil, ws)
			}
			pr.finishBatch()
		}
		pr.finalize(ws)
		return true
	}
	if !pr.startBatch() {
		pr.finalize(ws)
		return true
	}
	chunk := q.ctrl.ChunkSize()
	for pr.batchCounts.Shots < pr.batchN {
		pr.runChunk(chunk, q.ctrl, ws)
	}
	pr.finishBatch()
	chunkSize, dwell := q.ctrl.BatchDone()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetControl(chunkSize, dwell)
	}
	pr.prio = pr.priority(ws)
	return false
}

// take claims the best runnable point, blocking while every campaign is
// drained, parked, or at its per-campaign worker cap. It returns nil
// once the pool is closed and no campaign remains.
func (s *Scheduler) take() (*schedQueue, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q, i := s.pick(); q != nil {
			return q, i
		}
		if s.closed && len(s.queues) == 0 {
			return nil, 0
		}
		s.cond.Wait()
	}
}

// pick claims a point under deficit scheduling: among eligible
// campaigns (points pending, below the per-campaign worker cap) the one
// with the lowest served/weight ratio wins the handout and rotates to
// the back of the service order. With every weight 1 — the static
// policy — counters stay level, ties decide, and ties go to the scan
// order the rotation maintains: exactly the legacy least-recently-
// served alternation.
//
// Worker shares are work-conserving for controller campaigns: Workers
// is the campaign's share under contention, but when no campaign below
// its cap has claimable work, a controller campaign may borrow the idle
// slot rather than leave it empty. Static campaigns keep the legacy
// hard cap.
func (s *Scheduler) pick() (*schedQueue, int) {
	var (
		best      *schedQueue
		bestIdx   int
		bestKey   float64
		bestPoint int
	)
	for _, borrow := range [2]bool{false, true} {
		for idx, q := range s.queues {
			if q.running >= q.cfg.Workers && !(borrow && q.ctrl != nil) {
				continue
			}
			i, ok := q.claimable(s.flights)
			if !ok {
				continue
			}
			key := q.served / q.weight()
			if best == nil || key < bestKey {
				best, bestIdx, bestKey, bestPoint = q, idx, key, i
			}
		}
		if best != nil {
			break
		}
	}
	if best == nil {
		return nil, 0
	}
	best.served++
	best.running++
	if best.ctrl == nil {
		best.next++
	} else {
		for j, i := range best.queue {
			if i == bestPoint {
				best.queue = append(best.queue[:j], best.queue[j+1:]...)
				break
			}
		}
		if h := best.flightKey(bestPoint); h != "" && !best.runs[bestPoint].claimed {
			s.flights[h] = struct{}{}
			best.runs[bestPoint].claimed = true
		}
		best.ctrl.SetPressure(s.pressure())
	}
	copy(s.queues[bestIdx:], s.queues[bestIdx+1:])
	s.queues[len(s.queues)-1] = best
	return best, bestPoint
}

// pressure is the queued-work-per-worker signal the controller's
// latency penalty scales with: 0 with an idle pool, 1 when at least one
// point waits per worker.
func (s *Scheduler) pressure() float64 {
	pending := 0
	for _, q := range s.queues {
		pending += q.pendingCount()
	}
	p := float64(pending) / float64(s.workers)
	if p > 1 {
		p = 1
	}
	return p
}

// pendingCount is how many of the campaign's points await a handout.
func (q *schedQueue) pendingCount() int {
	if q.ctrl != nil {
		return len(q.queue)
	}
	return len(q.points) - q.next
}

// claimable scans for the campaign's best claimable point: the FIFO
// head under the static policy; the highest-priority pending point
// whose single-flight key is unclaimed under the controller policy
// (priority ties go to input order). It refreshes q.topPrio as a side
// effect — the tail-pressure input to the campaign weight.
func (q *schedQueue) claimable(flights map[string]struct{}) (int, bool) {
	if q.ctrl == nil {
		if q.next < len(q.points) {
			return q.next, true
		}
		return 0, false
	}
	best, bestPrio, found := 0, 0.0, false
	q.topPrio = 0
	for _, i := range q.queue {
		prio := q.runs[i].prio
		if prio > q.topPrio {
			q.topPrio = prio
		}
		if h := q.flightKey(i); h != "" && !q.runs[i].claimed {
			if _, busy := flights[h]; busy {
				continue // parked behind another point computing this hash
			}
		}
		if !found || prio > bestPrio {
			best, bestPrio, found = i, prio, true
		}
	}
	return best, found
}

// flightKey is the single-flight key of a point: its content hash, when
// the campaign has a cache for a follower to replay the leader's commit
// from. Without a cache deduplication would have no way to hand the
// follower a result, so such points never park.
func (q *schedQueue) flightKey(i int) string {
	if q.cfg.Cache == nil {
		return ""
	}
	return q.points[i].Hash
}

// weight is the campaign's deficit-scheduling share. Static campaigns
// weigh 1 (the legacy fair rotation); controller campaigns weigh by
// backlog depth and tail pressure.
func (q *schedQueue) weight() float64 {
	if q.ctrl == nil {
		return 1
	}
	tp := q.topPrio - 2 // the tail band of Priority is 2 + TailWidth
	if tp < 0 {
		tp = 0
	}
	return control.Weight(control.CampaignSignals{
		Pending:      len(q.queue),
		TailPressure: tp,
	})
}

// requeue returns a between-batches point to its campaign's pending set
// with the priority runTurn just refreshed.
func (s *Scheduler) requeue(q *schedQueue, i int) {
	s.mu.Lock()
	q.running--
	q.queue = append(q.queue, i)
	depth := q.pendingCount()
	s.mu.Unlock()
	s.cond.Broadcast()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(depth)
	}
}

// complete folds one finished point back into its campaign, releases
// its single-flight claim, delivers OnResult, and retires the campaign
// when its last point lands.
func (s *Scheduler) complete(q *schedQueue, i int) {
	q.results[i] = q.runs[i].res
	if q.cfg.OnResult != nil {
		q.resMu.Lock()
		q.cfg.OnResult(q.results[i])
		q.resMu.Unlock()
	}
	s.mu.Lock()
	q.running--
	q.unfinished--
	if q.runs[i].claimed {
		delete(s.flights, q.flightKey(i))
	}
	finished := q.unfinished == 0
	if finished {
		for j, o := range s.queues {
			if o == q {
				s.queues = append(s.queues[:j], s.queues[j+1:]...)
				break
			}
		}
	}
	depth := q.pendingCount()
	s.mu.Unlock()
	// A worker slot, a parked duplicate, or the closed pool may now
	// drain.
	s.cond.Broadcast()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(depth)
		tel.PointDone()
	}
	if finished {
		close(q.done)
	}
}
