package sweep

import (
	"runtime"
	"sync"
)

// Scheduler owns a fixed pool of point workers and multiplexes any
// number of concurrent sweeps over it. Each Run enqueues its points as
// one campaign; workers hand out points round-robin across the active
// campaigns, so N concurrent clients share the pool fairly instead of
// each spawning its own worker set and oversubscribing the CPU. A lone
// campaign still gets the whole pool.
//
// Point results are pure functions of (Config, Point) — the
// determinism contract of Run — so interleaving campaigns changes only
// wall-clock time and completion order, never the results.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queues holds the active campaigns in service order: a campaign
	// moves to the back each time it is handed a point, and a new
	// campaign (zero service so far) enters at the front — so point
	// handouts alternate across campaigns regardless of arrival order
	// or campaign length.
	queues []*schedQueue
	closed bool
	wg     sync.WaitGroup
}

// schedQueue is one campaign's slice of the pool.
type schedQueue struct {
	cfg     Config
	points  []Point
	results []Result
	next    int // next point index to hand out
	running int // points of this campaign currently executing
	pending int // points not yet completed
	done    chan struct{}
	// resMu serialises this campaign's OnResult calls, matching the
	// single-campaign Run contract; campaigns do not block each other.
	resMu sync.Mutex
}

// NewScheduler starts a pool of the given size (0 picks GOMAXPROCS).
// Close releases the workers.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Active returns the number of campaigns currently holding points in
// the pool — the denominator callers use to split shot-level
// parallelism budgets so overlapping campaigns stay within the CPU
// budget.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues)
}

// Close stops the workers after their in-flight points finish. Runs
// still queued complete first: Close only blocks new point handouts
// once every active campaign has drained.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Run executes one campaign on the shared pool and returns results in
// input order, exactly like the package-level Run. Concurrent Runs are
// interleaved fairly. cfg.Workers caps how many of this campaign's
// points execute at once within the pool.
func (s *Scheduler) Run(cfg Config, points []Point) []Result {
	cfg = cfg.withDefaults()
	results := make([]Result, len(points))
	if len(points) == 0 {
		return results
	}
	q := &schedQueue{
		cfg:     cfg,
		points:  points,
		results: results,
		pending: len(points),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("sweep: Run on closed Scheduler")
	}
	s.queues = append([]*schedQueue{q}, s.queues...)
	s.mu.Unlock()
	s.cond.Broadcast()
	<-q.done
	return results
}

// worker executes points handed out by take until the pool closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	var scratch []float64 // reused sorted buffer for tail stats
	for {
		q, i := s.take()
		if q == nil {
			return
		}
		r := runPoint(q.cfg, q.points[i], &scratch)
		q.results[i] = r
		s.complete(q, r)
	}
}

// take claims the next runnable point from the least-recently-served
// eligible campaign, which then rotates to the back of the service
// order. It blocks while every campaign is drained or at its
// per-campaign worker cap, and returns nil once the pool is closed and
// no campaign remains.
func (s *Scheduler) take() (*schedQueue, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for idx, q := range s.queues {
			if q.next < len(q.points) && q.running < q.cfg.Workers {
				copy(s.queues[idx:], s.queues[idx+1:])
				s.queues[len(s.queues)-1] = q
				i := q.next
				q.next++
				q.running++
				return q, i
			}
		}
		if s.closed && len(s.queues) == 0 {
			return nil, 0
		}
		s.cond.Wait()
	}
}

// complete folds one finished point back into its campaign, delivers
// OnResult, and retires the campaign when its last point lands.
func (s *Scheduler) complete(q *schedQueue, r Result) {
	if q.cfg.OnResult != nil {
		q.resMu.Lock()
		q.cfg.OnResult(r)
		q.resMu.Unlock()
	}
	s.mu.Lock()
	q.running--
	q.pending--
	finished := q.pending == 0
	if finished {
		for i, o := range s.queues {
			if o == q {
				s.queues = append(s.queues[:i], s.queues[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast() // a worker slot or the closed pool may now drain
	if finished {
		close(q.done)
	}
}
