package sweep

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"radqec/internal/control"
	"radqec/internal/telemetry"
)

// Scheduler owns a fixed pool of point workers and multiplexes any
// number of concurrent sweeps over it. Each Run enqueues its points as
// one campaign; workers hand out work across the active campaigns under
// deficit scheduling, so N concurrent clients share the pool fairly
// instead of each spawning its own worker set and oversubscribing the
// CPU. A lone campaign still gets the whole pool.
//
// Campaigns without a controller (Mechanism.Control nil or disabled)
// run under the static legacy policy: FIFO point handouts, every weight
// 1 (which degrades deficit scheduling to the old least-recently-served
// rotation), a point runs to completion once handed out, and Workers is
// a hard concurrency cap. Controller campaigns run one policy batch per
// handout, ordered by tail-aware point priorities and weighted campaign
// shares, with identical in-flight points single-flighted through the
// cache; their Workers is a share hint — when every other campaign is
// drained or capped, a controller campaign borrows the idle slots so
// the pool stays work-conserving.
//
// Point results are pure functions of (Policy, Point) — the determinism
// contract of Run — so interleaving campaigns or enabling the
// controller changes only wall-clock time and completion order, never
// the results.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queues holds the active campaigns in service order: a campaign
	// moves to the back each time it is handed a point, and a new
	// campaign enters at the front with its service counter levelled to
	// the least-served active campaign — so handouts alternate across
	// campaigns regardless of arrival order or campaign length.
	queues []*schedQueue
	// flights keys the points currently computing by content hash: a
	// controller campaign's point whose hash is already in flight parks
	// until the holder commits, then replays the committed result from
	// the cache instead of recomputing it.
	flights map[string]struct{}
	closed  bool
	workers int
	wg      sync.WaitGroup
}

// schedQueue is one campaign's slice of the pool.
type schedQueue struct {
	cfg     Config
	points  []Point
	results []Result
	// ctx is the campaign's lifecycle: derived (WithCancelCause) from
	// the Run caller's context, cancelled by the caller, by a worker
	// panic (via fail), or with nil once the campaign retires. Workers
	// observe it at policy-batch boundaries only, so cancellation never
	// tears an engine chunk.
	ctx    context.Context
	cancel context.CancelCauseFunc
	// err is the campaign's first terminal failure (a *PointError from
	// a recovered panic), written under the scheduler mutex.
	err error
	// runs holds each point's execution state machine; ctrl is the
	// campaign's scoring controller (nil under the static policy).
	runs []pointRun
	ctrl *control.Controller
	// queue is the pending-point set: scanned in order (FIFO) under the
	// static policy, by priority under the controller policy. Parked
	// points (remotely owned, awaiting their fabric resolution) stay in
	// the queue but are skipped by claimable until unpark clears them.
	queue      []int
	running    int // points of this campaign currently executing
	unfinished int // points not yet completed
	// served and topPrio feed deficit scheduling: handouts received so
	// far, and the best pending priority (claimable refreshes it) whose
	// tail band sets the campaign's weight.
	served  float64
	topPrio float64
	done    chan struct{}
	// resMu serialises this campaign's OnResult calls, matching the
	// single-campaign Run contract; campaigns do not block each other.
	resMu sync.Mutex
}

// NewScheduler starts a pool of the given size (0 picks GOMAXPROCS).
// Close releases the workers.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		flights: make(map[string]struct{}),
		workers: workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Active returns the number of campaigns currently holding points in
// the pool — the denominator callers use to split shot-level
// parallelism budgets so overlapping campaigns stay within the CPU
// budget.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues)
}

// Close stops the workers after their in-flight points finish. Runs
// still queued complete first: Close only blocks new point handouts
// once every active campaign has drained.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Run executes one campaign on the shared pool and returns results in
// input order, exactly like the package-level Run. Concurrent Runs are
// interleaved fairly. cfg.Workers caps how many of this campaign's
// points execute at once within the pool; under the controller policy
// the cap softens to a share hint and idle slots are borrowed.
//
// ctx carries the campaign's cancellation, observed at policy-batch
// boundaries (see the package-level Run). A cancelled or panicked
// campaign drains promptly — its pending points are handed out only to
// be aborted — while sibling campaigns and the pool are untouched.
func (s *Scheduler) Run(ctx context.Context, cfg Config, points []Point) ([]Result, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(points))
	if len(points) == 0 {
		if ctx.Err() != nil {
			return results, context.Cause(ctx)
		}
		return results, nil
	}
	qctx, qcancel := context.WithCancelCause(ctx)
	q := &schedQueue{
		cfg:        cfg,
		points:     points,
		results:    results,
		ctx:        qctx,
		cancel:     qcancel,
		unfinished: len(points),
		done:       make(chan struct{}),
		ctrl:       control.New(cfg.Control, cfg.Align),
	}
	q.runs = make([]pointRun, len(points))
	q.queue = make([]int, len(points))
	for i := range q.runs {
		q.runs[i] = pointRun{cfg: &q.cfg, p: points[i]}
		q.queue[i] = i
	}
	if q.ctrl != nil {
		var ws workerState
		for i := range points {
			q.runs[i].prio = q.runs[i].priority(&ws)
		}
	}
	// Fabric sharding: points owned by another node park before the
	// campaign is published, so no worker ever claims one. Locally
	// committed results short-circuit the parking — begin() will replay
	// them without any remote traffic.
	var watched []int
	if cfg.Remote != nil && cfg.Cache != nil {
		for i := range points {
			h := points[i].Hash
			if h == "" || cfg.Remote.Owned(h) {
				continue
			}
			if _, ok := cfg.Cache.Lookup(h); ok {
				continue
			}
			q.runs[i].parked = true
			watched = append(watched, i)
		}
	}
	if tel := cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(len(points))
		if q.ctrl != nil {
			tel.SetControl(q.ctrl.DwellState())
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("sweep: Run on closed Scheduler")
	}
	// A new campaign starts level with the least-served active campaign,
	// preserving the alternating handouts of the legacy rotation.
	for i, o := range s.queues {
		if i == 0 || o.served < q.served {
			q.served = o.served
		}
	}
	s.queues = append([]*schedQueue{q}, s.queues...)
	s.mu.Unlock()
	s.cond.Broadcast()
	// Watches start only after the campaign is published: unpark takes
	// the scheduler lock, so a resolution can land at any time from
	// here on without racing the enqueue above.
	for _, i := range watched {
		i := i
		cfg.Remote.Watch(qctx, points[i].Hash, func(takeover bool) {
			s.unpark(q, i, takeover)
		})
	}
	// Workers blocked in take() poll nothing: a cancellation arriving
	// while the pool is idle (or this campaign is parked) must wake
	// them so the abort drain can start immediately.
	go func() {
		select {
		case <-qctx.Done():
			s.cond.Broadcast()
		case <-q.done:
		}
	}()
	<-q.done
	s.mu.Lock()
	err := q.err
	s.mu.Unlock()
	if err == nil && qctx.Err() != nil {
		err = context.Cause(qctx)
	}
	qcancel(nil) // release the context chain; a set cause is sticky
	return results, err
}

// worker advances points handed out by take until the pool closes.
// Each turn runs inside the recover boundary of safeTurn: a panic in a
// point's Prepare or BatchRunner fails that point's campaign, never
// the worker or the pool.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	var ws workerState
	for {
		q, i := s.take()
		if q == nil {
			return
		}
		done, err := q.safeTurn(i, &ws)
		if err != nil {
			s.fail(q, i, err)
			continue
		}
		if done {
			s.complete(q, i)
		} else {
			s.requeue(q, i)
		}
	}
}

// safeTurn is the per-handout panic-isolation boundary: it converts a
// panic anywhere in the point's turn — Prepare, the engine chunk, the
// decode path — into a *PointError carrying the recovered value and
// the worker's stack, leaving the worker goroutine intact.
func (q *schedQueue) safeTurn(i int, ws *workerState) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PointError{Key: q.points[i].Key, Hash: q.points[i].Hash, Value: r, Stack: debug.Stack()}
		}
	}()
	return q.runTurn(i, ws), nil
}

// aborted reports whether the campaign's lifecycle context has been
// cancelled (by the caller, or by fail after a sibling point panicked).
func (q *schedQueue) aborted() bool { return q.ctx.Err() != nil }

// runTurn advances one point. The static policy runs the point to
// completion in one turn — the legacy worker behaviour. The controller
// policy runs exactly one policy batch, chunked at the controller's
// current size, then yields the worker so the next handout can re-order
// on fresh priorities. Returns true when the point finished.
//
// Cancellation is observed here and only here — at the top of a turn
// and at policy-batch boundaries — so an abort never tears a batch:
// whatever the abort flushes is a whole-batch checkpoint the resumed
// campaign replays byte-identically.
func (q *schedQueue) runTurn(i int, ws *workerState) bool {
	pr := &q.runs[i]
	if q.aborted() {
		pr.abort()
		return true
	}
	if !pr.started && pr.begin() {
		pr.finalize(ws) // served from the cache: no batches to run
		return true
	}
	if q.ctrl == nil {
		for pr.startBatch() {
			for pr.batchCounts.Shots < pr.batchN {
				pr.runChunk(0, nil, ws)
			}
			pr.finishBatch()
			if q.aborted() {
				pr.abort()
				return true
			}
		}
		pr.finalize(ws)
		return true
	}
	if !pr.startBatch() {
		pr.finalize(ws)
		return true
	}
	chunk := q.ctrl.ChunkSize()
	for pr.batchCounts.Shots < pr.batchN {
		pr.runChunk(chunk, q.ctrl, ws)
	}
	pr.finishBatch()
	if q.aborted() {
		pr.abort()
		return true
	}
	chunkSize, dwell := q.ctrl.BatchDone()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetControl(chunkSize, dwell)
	}
	pr.prio = pr.priority(ws)
	return false
}

// fail records a point's terminal error as its campaign's, cancels the
// campaign's remaining work (the drain aborts it point by point,
// flushing checkpoints), and retires the failed point. Sibling
// campaigns and the pool itself are untouched — the worker that
// recovered the panic goes straight back to serving handouts.
func (s *Scheduler) fail(q *schedQueue, i int, err error) {
	if tel := q.cfg.Telemetry; tel != nil {
		tel.Record(telemetry.Signal{
			TimeNS: time.Now().UnixNano(),
			Key:    q.points[i].Key,
			Event:  telemetry.EventPanic,
			Detail: err.Error(),
		})
	}
	s.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	s.mu.Unlock()
	q.cancel(err)
	q.runs[i].aborted = true
	q.runs[i].endSpan("panic", err)
	s.complete(q, i)
}

// unpark releases a point parked on its fabric resolution: with
// takeover=false the owner's committed result is in the cache and the
// point's next handout replays it; with takeover=true the owner is
// gone and the point computes locally. Idempotent — late or duplicate
// resolutions of a point already unparked (or a campaign already
// retired) are no-ops.
func (s *Scheduler) unpark(q *schedQueue, i int, takeover bool) {
	s.mu.Lock()
	if !q.runs[i].parked {
		s.mu.Unlock()
		return
	}
	q.runs[i].parked = false
	s.mu.Unlock()
	s.cond.Broadcast()
	if tel := q.cfg.Telemetry; tel != nil {
		event := telemetry.EventRemoteHit
		detail := "owner's committed result fetched into the local store"
		if takeover {
			event = telemetry.EventTakeover
			detail = "owner unreachable or lease ceded; computing locally"
		}
		tel.Record(telemetry.Signal{
			TimeNS: time.Now().UnixNano(),
			Key:    q.points[i].Key,
			Event:  event,
			Detail: detail,
		})
	}
}

// take claims the best runnable point, blocking while every campaign is
// drained, parked, or at its per-campaign worker cap. It returns nil
// once the pool is closed and no campaign remains.
func (s *Scheduler) take() (*schedQueue, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q, i := s.pick(); q != nil {
			return q, i
		}
		if s.closed && len(s.queues) == 0 {
			return nil, 0
		}
		s.cond.Wait()
	}
}

// pick claims a point under deficit scheduling: among eligible
// campaigns (points pending, below the per-campaign worker cap) the one
// with the lowest served/weight ratio wins the handout and rotates to
// the back of the service order. With every weight 1 — the static
// policy — counters stay level, ties decide, and ties go to the scan
// order the rotation maintains: exactly the legacy least-recently-
// served alternation.
//
// Worker shares are work-conserving for controller campaigns: Workers
// is the campaign's share under contention, but when no campaign below
// its cap has claimable work, a controller campaign may borrow the idle
// slot rather than leave it empty. Static campaigns keep the legacy
// hard cap.
func (s *Scheduler) pick() (*schedQueue, int) {
	var (
		best      *schedQueue
		bestIdx   int
		bestKey   float64
		bestPoint int
	)
	for _, borrow := range [2]bool{false, true} {
		for idx, q := range s.queues {
			// A cancelled campaign's handouts are aborts — near-free
			// turns that flush checkpoints — so its worker cap no
			// longer applies: drain it as fast as workers free up.
			if q.running >= q.cfg.Workers && !q.aborted() && !(borrow && q.ctrl != nil) {
				continue
			}
			i, ok := q.claimable(s.flights)
			if !ok {
				continue
			}
			key := q.served / q.weight()
			if best == nil || key < bestKey {
				best, bestIdx, bestKey, bestPoint = q, idx, key, i
			}
		}
		if best != nil {
			break
		}
	}
	if best == nil {
		return nil, 0
	}
	best.served++
	best.running++
	for j, i := range best.queue {
		if i == bestPoint {
			best.queue = append(best.queue[:j], best.queue[j+1:]...)
			break
		}
	}
	if best.ctrl != nil {
		// An aborting point does no engine work, so claiming its hash
		// would only park siblings behind a computation that will
		// never commit.
		if h := best.flightKey(bestPoint); h != "" && !best.runs[bestPoint].claimed && !best.aborted() {
			s.flights[h] = struct{}{}
			best.runs[bestPoint].claimed = true
		}
		best.ctrl.SetPressure(s.pressure())
	}
	copy(s.queues[bestIdx:], s.queues[bestIdx+1:])
	s.queues[len(s.queues)-1] = best
	return best, bestPoint
}

// pressure is the queued-work-per-worker signal the controller's
// latency penalty scales with: 0 with an idle pool, 1 when at least one
// point waits per worker.
func (s *Scheduler) pressure() float64 {
	pending := 0
	for _, q := range s.queues {
		pending += q.pendingCount()
	}
	p := float64(pending) / float64(s.workers)
	if p > 1 {
		p = 1
	}
	return p
}

// pendingCount is how many of the campaign's points await a handout.
func (q *schedQueue) pendingCount() int { return len(q.queue) }

// claimable scans for the campaign's best claimable point: the first
// pending point in input order under the static policy; the
// highest-priority pending point whose single-flight key is unclaimed
// under the controller policy (priority ties go to input order). Points
// parked on a fabric resolution are skipped under both policies. It
// refreshes q.topPrio as a side effect — the tail-pressure input to
// the campaign weight.
func (q *schedQueue) claimable(flights map[string]struct{}) (int, bool) {
	if q.aborted() {
		// Draining a cancelled campaign: any pending point will do —
		// its handout aborts immediately, so priorities, single-flight
		// and fabric parking no longer apply.
		if len(q.queue) > 0 {
			return q.queue[0], true
		}
		return 0, false
	}
	if q.ctrl == nil {
		for _, i := range q.queue {
			if !q.runs[i].parked {
				return i, true
			}
		}
		return 0, false
	}
	best, bestPrio, found := 0, 0.0, false
	q.topPrio = 0
	for _, i := range q.queue {
		if q.runs[i].parked {
			continue // awaiting its fabric resolution
		}
		prio := q.runs[i].prio
		if prio > q.topPrio {
			q.topPrio = prio
		}
		if h := q.flightKey(i); h != "" && !q.runs[i].claimed {
			if _, busy := flights[h]; busy {
				continue // parked behind another point computing this hash
			}
		}
		if !found || prio > bestPrio {
			best, bestPrio, found = i, prio, true
		}
	}
	return best, found
}

// flightKey is the single-flight key of a point: its content hash, when
// the campaign has a cache for a follower to replay the leader's commit
// from. Without a cache deduplication would have no way to hand the
// follower a result, so such points never park.
func (q *schedQueue) flightKey(i int) string {
	if q.cfg.Cache == nil {
		return ""
	}
	return q.points[i].Hash
}

// weight is the campaign's deficit-scheduling share. Static campaigns
// weigh 1 (the legacy fair rotation); controller campaigns weigh by
// backlog depth and tail pressure.
func (q *schedQueue) weight() float64 {
	if q.ctrl == nil {
		return 1
	}
	tp := q.topPrio - 2 // the tail band of Priority is 2 + TailWidth
	if tp < 0 {
		tp = 0
	}
	return control.Weight(control.CampaignSignals{
		Pending:      len(q.queue),
		TailPressure: tp,
	})
}

// requeue returns a between-batches point to its campaign's pending set
// with the priority runTurn just refreshed.
func (s *Scheduler) requeue(q *schedQueue, i int) {
	s.mu.Lock()
	q.running--
	q.queue = append(q.queue, i)
	depth := q.pendingCount()
	s.mu.Unlock()
	s.cond.Broadcast()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(depth)
	}
}

// complete folds one finished point back into its campaign, releases
// its single-flight claim, delivers OnResult, and retires the campaign
// when its last point lands. Aborted points retire without a result or
// an OnResult call — their campaign is erroring out, and whatever
// progress they held is already checkpointed.
func (s *Scheduler) complete(q *schedQueue, i int) {
	aborted := q.runs[i].aborted
	if !aborted {
		q.results[i] = q.runs[i].res
		if q.cfg.OnResult != nil {
			q.resMu.Lock()
			q.cfg.OnResult(q.results[i])
			q.resMu.Unlock()
		}
	}
	s.mu.Lock()
	q.running--
	q.unfinished--
	if q.runs[i].claimed {
		delete(s.flights, q.flightKey(i))
	}
	finished := q.unfinished == 0
	if finished {
		for j, o := range s.queues {
			if o == q {
				s.queues = append(s.queues[:j], s.queues[j+1:]...)
				break
			}
		}
	}
	depth := q.pendingCount()
	s.mu.Unlock()
	// A worker slot, a parked duplicate, or the closed pool may now
	// drain.
	s.cond.Broadcast()
	if tel := q.cfg.Telemetry; tel != nil {
		tel.SetQueueDepth(depth)
		if !aborted {
			tel.PointDone()
		}
	}
	if finished {
		close(q.done)
	}
}
