// Package sweep is the campaign orchestration layer of radqec: it fans
// a set of sweep points (one measured configuration each — a code on a
// topology under one fault parameterisation) across workers, reuses the
// prepared simulator and decode graph of each point across shot batches,
// and allocates shots either as a fixed count per point or adaptively in
// batches until the Wilson 95% half-width of the point's logical error
// rate drops to a target (subject to a hard per-point cap).
//
// Determinism contract: a point's BatchRunner must map shot i of its
// campaign to the RNG stream split(seed, i), the same contract
// inject.Campaign and frame.Campaign honour. Batch boundaries are pure
// functions of the observed counts, and points never share random
// state, so a sweep's per-point shot streams and rates are identical for
// any Workers setting.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"radqec/internal/control"
	"radqec/internal/stats"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

// Counts accumulates the shot outcomes of one point.
type Counts struct {
	Shots, Errors int
}

func (c *Counts) merge(o Counts) {
	c.Shots += o.Shots
	c.Errors += o.Errors
}

// Rate returns the observed error rate, 0 before any shots.
func (c Counts) Rate() float64 {
	if c.Shots == 0 {
		return 0
	}
	return float64(c.Errors) / float64(c.Shots)
}

// BatchRunner executes the shot range [start, start+n) of one point's
// campaign and returns its counts. Shot start+i must consume the RNG
// stream split(seed, start+i) of the point's campaign seed, so that the
// union of batches equals one contiguous fixed-shot run.
type BatchRunner func(start, n int) Counts

// Point is one measured configuration of a sweep.
type Point struct {
	// Key identifies the point in results and streaming output.
	Key string
	// Hash, when non-empty, is the content address of the point's full
	// spec (circuit, fault, seed, engine, decoder, shot policy). Points
	// with a hash participate in Config.Cache: a committed result is
	// returned without calling Prepare, and batch-boundary checkpoints
	// make an interrupted point resumable.
	Hash string
	// Prepare builds the point's batch runner. It is called exactly
	// once, lazily, on the worker that owns the point, so expensive
	// per-point state (executors, decode graphs, pooled simulators) is
	// built once and reused across every batch of the point.
	Prepare func() BatchRunner
	// TailSensitive marks the point's tail statistics (the CVaR and
	// quantile columns) as the quantity of interest: the scoring
	// controller allocates shot budget to the widest tail CIs first and
	// telemetry reports the tail width on every chunk. Purely a
	// scheduling hint — results are unaffected.
	TailSensitive bool
}

// Policy is the result-determining half of a sweep's configuration:
// shot budgets, the stop rule, and batch alignment. Everything a Result
// depends on lives here — two runs with equal Policy over equal points
// produce identical Results whatever the Mechanism.
type Policy struct {
	// Shots is the fixed per-point shot count when CI is zero
	// (default 2000, the paper harness default).
	Shots int
	// CI, when positive, switches every point to adaptive allocation:
	// batches are added until the Wilson 95% half-width of the point's
	// rate is at most CI, or MaxShots is reached.
	CI float64
	// MaxShots caps adaptive allocation per point. 0 picks
	// WorstCaseShots(CI), the fixed count that guarantees the target at
	// any rate — so adaptive mode can only spend fewer shots than the
	// equivalent fixed campaign.
	MaxShots int
	// Batch is the adaptive first-batch and minimum-batch size
	// (default 256).
	Batch int
	// Align, when above 1, rounds every batch size up to a multiple of
	// it (capped by the remaining budget, so totals are unchanged).
	// Bit-parallel campaigns set it to 64 so batches fill whole shot
	// words; by the BatchRunner contract alignment never changes the
	// merged counts, only how the work is chunked.
	Align int
}

// Mechanism is the execution half of the configuration: parallelism,
// caching, delivery, and the closed-loop controller and telemetry
// hooks. Mechanism settings steer wall-clock time, engine-call
// granularity and completion order — never the Results.
type Mechanism struct {
	// Workers caps how many points run concurrently (0 = GOMAXPROCS).
	Workers int
	// OnResult, when set, receives each point's result as it completes.
	// Calls are serialised; completion order depends on scheduling even
	// though the results themselves do not.
	OnResult func(Result)
	// Cache, when set, persists point progress for the points that carry
	// a content hash: committed results short-circuit the point without
	// calling Prepare, and every completed batch is checkpointed so a
	// killed sweep can resume mid-point. Results are unchanged by the
	// cache — a hit replays exactly what an uninterrupted run produced.
	Cache PointCache
	// Resume consumes batch-level checkpoints for points the cache holds
	// partial progress on: the point restarts from the last batch
	// boundary via the BatchRunner's (start, n) contract instead of from
	// shot zero. Committed results are served regardless of Resume.
	Resume bool
	// Scheduler, when set, runs the sweep's points on this shared worker
	// pool (fair across concurrent campaigns) instead of a private one.
	Scheduler *Scheduler
	// Remote, when set alongside Cache, shards the campaign's hashed
	// points across a fabric of nodes: points the resolver does not own
	// park in the scheduler — no worker is ever blocked on them — while
	// the resolver fetches the owner's committed result into Cache and
	// unparks them to replay it (byte-identical by the CachedPoint
	// replay contract). A point whose owner is declared dead unparks
	// for local takeover compute instead. Points without a hash, and
	// campaigns without a Cache, ignore Remote entirely.
	Remote RemoteResolver
	// Control, when set and enabled, closes the loop for this campaign:
	// policy batches are chunked at controller-scored sizes, point
	// handouts follow tail-aware priorities instead of FIFO, campaign
	// worker shares follow deficit weights, and identical in-flight
	// points are single-flighted through the cache. nil (or disabled)
	// keeps the static legacy scheduling. The controller only re-orders
	// and re-chunks work within the BatchRunner (start, n) contract, so
	// results are byte-identical with it on or off.
	Control *control.Policy
	// Telemetry, when set, receives a Signal for every engine invocation
	// plus batch, point and cache counters. Strictly observational.
	Telemetry *telemetry.Campaign
	// Trace, when sampled, is the campaign's root span context: every
	// point records point/chunk-run/store-commit spans under it. The
	// zero value (sampling off) keeps the hot path at a single pointer
	// test — tracing, like Telemetry, is pure Mechanism and never
	// reaches a Result.
	Trace trace.SpanContext
}

// Config pairs a sweep's policy with its mechanism. The split is the
// determinism boundary: Policy decides what is computed, Mechanism only
// how the computation is scheduled.
type Config struct {
	Policy
	Mechanism
}

// RemoteResolver shards hashed points across a fabric of nodes. The
// scheduler consults Owned once per hashed point at campaign start;
// points owned elsewhere park (skipped by handouts, holding no worker)
// and Watch is started for each. The resolver must eventually call
// done exactly once — with takeover=false after the owner's committed
// result has been written into the campaign's Cache (the unparked
// point then replays it), or with takeover=true to hand the point back
// for local compute (owner dead, or its lease ceded). done may be
// called from any goroutine; calls after the campaign retired are
// harmless. ctx is the campaign's lifecycle — Watch must stop polling
// when it is cancelled, and may then drop done entirely (the abort
// drain retires parked points itself). Implementations live in package
// fabric; the scheduler only needs this seam.
type RemoteResolver interface {
	// Owned reports whether this node computes the hash itself.
	Owned(hash string) bool
	// Watch resolves one remotely-owned hash; it must not block.
	Watch(ctx context.Context, hash string, done func(takeover bool))
}

// PointCache persists per-point progress keyed by the point's content
// hash. Implementations must be safe for concurrent use by the sweep
// workers; the disk-backed implementation lives in package store.
type PointCache interface {
	// Lookup returns the committed final result for a hash.
	Lookup(hash string) (CachedPoint, bool)
	// LookupPartial returns the latest batch-boundary checkpoint for a
	// hash that has no committed result yet.
	LookupPartial(hash string) (CachedPoint, bool)
	// Checkpoint records progress at a batch boundary.
	Checkpoint(hash string, p CachedPoint)
	// Commit records the final result, superseding any checkpoint.
	Commit(hash string, p CachedPoint)
}

// CachedPoint is the persisted view of a point's progress: the raw
// counts and the per-batch rate stream — everything needed to resume
// the shot loop or to rematerialise a Result (the Wilson interval and
// tail statistics are recomputed on load, so a replayed result is
// identical to the one originally computed).
type CachedPoint struct {
	// Key is the point's human-readable key, carried for cache
	// listings; it never feeds back into a replayed Result (the hash,
	// which embeds the key, already guarantees they match).
	Key        string    `json:"key,omitempty"`
	Shots      int       `json:"shots"`
	Errors     int       `json:"errors"`
	BatchRates []float64 `json:"batch_rates,omitempty"`
	Converged  bool      `json:"converged,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Shots <= 0 {
		c.Shots = 2000
	}
	if c.CI > 0 && c.MaxShots <= 0 {
		c.MaxShots = WorstCaseShots(c.CI)
	}
	if c.Batch <= 0 {
		c.Batch = 256
		// A first batch near the cap would spend the whole budget before
		// the stopping rule ever fires; keep it a fraction of the cap so
		// easy points can stop early even at loose targets.
		if c.CI > 0 && c.Batch > c.MaxShots/8 {
			c.Batch = c.MaxShots / 8
			if c.Batch < 16 {
				c.Batch = 16
			}
		}
	}
	if c.Align <= 0 {
		c.Align = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// alignUp rounds n up to the alignment grid.
func (c Policy) alignUp(n int) int {
	if rem := n % c.Align; rem != 0 {
		n += c.Align - rem
	}
	return n
}

// Result is the estimate a sweep produced for one point.
type Result struct {
	Key string
	Counts
	// CILo and CIHi bound the rate with the Wilson 95% interval.
	CILo, CIHi float64
	// BatchRates are the per-batch error rates in execution order — the
	// shot stream's coarse trajectory, input to the tail statistics.
	BatchRates []float64
	// Tail summarises the risk profile of the per-batch rates.
	Tail Tail
	// Converged reports whether the Wilson half-width target was met
	// (always true in fixed mode, which has no target).
	Converged bool
	// Cached reports that the result was served from Config.Cache
	// without running the point's campaign.
	Cached bool
}

// HalfWidth returns half the Wilson interval width.
func (r Result) HalfWidth() float64 { return (r.CIHi - r.CILo) / 2 }

// Tail captures the upper tail of the per-batch rate distribution: the
// median and high quantiles, and the CVaR-style expected shortfall of
// the worst decile — the "how bad do bad batches get" summary.
type Tail struct {
	Q50, Q90, Q99, CVaR90 float64
}

// WorstCaseShots returns the fixed per-point shot count that guarantees
// a Wilson 95% half-width of at most ci at any error rate. The width is
// maximal at rate 1/2, where the Wilson interval is never wider than the
// Wald interval, so the Wald worst case z²/(4·ci²) suffices.
func WorstCaseShots(ci float64) int {
	if ci <= 0 {
		return 0
	}
	n := int(stats.Z95 * stats.Z95 / (4 * ci * ci))
	if n < 1 {
		n = 1
	}
	for stats.WilsonHalfWidth(n/2, n) > ci {
		n++
	}
	return n
}

// PointError is the terminal error of a campaign one of whose points
// panicked: the recover boundary in the scheduler worker converts the
// panic (the internal packages panic liberally on programmer error)
// into this record — failing the one campaign while sibling campaigns
// and the worker pool keep running. Stack is the panicking worker's
// stack, captured at the recover site.
type PointError struct {
	// Key is the sweep point whose turn panicked.
	Key string
	// Hash is the point's content hash, empty for unhashed points —
	// carried so crash reports correlate with store and fabric state.
	Hash string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PointError) Error() string {
	return fmt.Sprintf("sweep: point %q panicked: %v", e.Key, e.Value)
}

// Run executes every point and returns results in input order. The
// results are independent of cfg.Workers; only wall-clock time and
// OnResult delivery order vary with it. With cfg.Scheduler set the
// points run on that shared pool; otherwise a private pool is spun up
// for the call, the classic single-campaign behaviour.
//
// ctx bounds the campaign: cancellation is observed at policy-batch
// boundaries, where every in-flight point flushes its progress to
// cfg.Cache as a checkpoint before aborting, so a resubmitted campaign
// resumes byte-identically via the (start, n) BatchRunner contract.
// On cancellation Run returns the results completed so far plus
// context.Cause(ctx); a panicking point returns a *PointError the same
// way. A nil ctx means context.Background().
func Run(ctx context.Context, cfg Config, points []Point) ([]Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Scheduler != nil {
		return cfg.Scheduler.Run(ctx, cfg, points)
	}
	workers := cfg.Workers
	if workers > len(points) {
		workers = len(points)
	}
	if workers == 0 {
		return make([]Result, len(points)), nil
	}
	s := NewScheduler(workers)
	defer s.Close()
	return s.Run(ctx, cfg, points)
}

// loadCached restores the persisted progress of a point.
func (r *Result) loadCached(cp CachedPoint) {
	r.Shots, r.Errors = cp.Shots, cp.Errors
	r.BatchRates = append([]float64(nil), cp.BatchRates...)
	r.Converged = cp.Converged
}

// cachedPoint is the persisted view of the result's current progress.
func (r *Result) cachedPoint() CachedPoint {
	return CachedPoint{
		Key:        r.Key,
		Shots:      r.Shots,
		Errors:     r.Errors,
		BatchRates: r.BatchRates,
		Converged:  r.Converged,
	}
}

// finalize derives the interval and tail statistics from the counts
// and batch stream — the same computation whether the point ran live,
// resumed, or replayed from the cache.
func (r Result) finalize(scratch *[]float64) Result {
	r.CILo, r.CIHi = stats.WilsonCI(r.Errors, r.Shots)
	r.Tail = tailOf(r.BatchRates, scratch)
	return r
}

// fixedBatches is how many batches a fixed-shot point is split into for
// tail statistics. Fixed points execute exactly cfg.Shots shots across
// those batches (the pointRun state machine in point.go drives the
// batch loop); the merged counts equal a single contiguous run by the
// BatchRunner contract. Adaptive points add batches until the Wilson
// half-width target is met or the cap is exhausted, with the stopping
// rule evaluated at each batch boundary so a resumed point whose
// checkpoint already satisfies the target stops without running an
// extra batch the uninterrupted campaign never ran.
const fixedBatches = 8

// record folds one batch into the running counts and batch-rate stream.
func (r *Result) record(c Counts) {
	r.merge(c)
	r.BatchRates = append(r.BatchRates, c.Rate())
}

// nextBatch sizes the next adaptive batch: the estimated shots still
// needed for the target at the observed rate, floored at cfg.Batch and
// ceilinged by the remaining cap. It returns 0 when the cap is spent.
func nextBatch(cfg Config, c Counts) int {
	remaining := cfg.MaxShots - c.Shots
	if remaining <= 0 {
		return 0
	}
	n := cfg.Batch
	if c.Shots > 0 {
		// Wald-style inversion n* ≈ z²·p(1-p)/ci²; the loop in
		// runAdaptive re-checks the exact Wilson width, so this only
		// has to land close.
		p := c.Rate()
		need := int(stats.Z95*stats.Z95*p*(1-p)/(cfg.CI*cfg.CI)) - c.Shots
		if need > n {
			n = need
		}
	}
	n = cfg.alignUp(n)
	if n > remaining {
		n = remaining
	}
	return n
}

// tailOf computes the tail summary of the batch rates using the shared
// scratch buffer, so the hot path sorts once and never allocates beyond
// the buffer's high-water mark.
func tailOf(batchRates []float64, scratch *[]float64) Tail {
	if len(batchRates) == 0 {
		return Tail{}
	}
	s := append((*scratch)[:0], batchRates...)
	sort.Float64s(s)
	*scratch = s
	return Tail{
		Q50:    stats.QuantileSorted(s, 0.50),
		Q90:    stats.QuantileSorted(s, 0.90),
		Q99:    stats.QuantileSorted(s, 0.99),
		CVaR90: stats.CVaRSorted(s, 0.90),
	}
}

// Summary aggregates a sweep's shot budget against the fixed-shot
// campaign with the same precision guarantee.
type Summary struct {
	// Points is the number of measured points.
	Points int
	// TotalShots is the number of shots the sweep actually executed.
	TotalShots int
	// FixedShots is what the equivalent fixed campaign would have
	// executed: MaxShots per point in adaptive mode, Shots per point in
	// fixed mode (where the two are equal by construction).
	FixedShots int
	// Converged counts points that met the half-width target.
	Converged int
}

// Summarize derives the shot-budget summary of a completed sweep.
func Summarize(cfg Config, results []Result) Summary {
	cfg = cfg.withDefaults()
	perPoint := cfg.Shots
	if cfg.CI > 0 {
		perPoint = cfg.MaxShots
	}
	s := Summary{Points: len(results), FixedShots: perPoint * len(results)}
	for _, r := range results {
		s.TotalShots += r.Shots
		if r.Converged {
			s.Converged++
		}
	}
	return s
}
