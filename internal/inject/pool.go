package inject

import (
	"sync"

	"radqec/internal/stab"
)

// Tableau allocation is the dominant per-shot cost for small codes, so
// campaigns reuse tableaux through a size-keyed pool.
var tableauPools sync.Map // int -> *sync.Pool

func newPooledTableau(n int) *stab.Tableau {
	p, _ := tableauPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return stab.New(n) },
	})
	t := p.(*sync.Pool).Get().(*stab.Tableau)
	t.ResetState()
	return t
}

func releaseTableau(t *stab.Tableau) {
	if p, ok := tableauPools.Load(t.N()); ok {
		p.(*sync.Pool).Put(t)
	}
}
