package inject

import (
	"sync"

	"radqec/internal/stab"
)

// Tableau allocation is the dominant per-shot cost for small codes, so
// campaigns reuse tableaux through a size-keyed pool.
var tableauPools sync.Map // int -> *sync.Pool

func newPooledTableau(n int) *stab.Tableau {
	p, _ := tableauPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return stab.New(n) },
	})
	t := p.(*sync.Pool).Get().(*stab.Tableau)
	t.ResetState()
	return t
}

func releaseTableau(t *stab.Tableau) {
	if p, ok := tableauPools.Load(t.N()); ok {
		p.(*sync.Pool).Put(t)
	}
}

// Classical-record buffers are pooled the same way, so convenience
// single-shot loops (Executor.Run) stop allocating one []int per shot.
var bitsPools sync.Map // int -> *sync.Pool

// GetBits returns a zeroed classical-record buffer of length n from the
// pool. Callers that run shots in a loop should hand it back with
// ReleaseBits when the record has been consumed.
func GetBits(n int) []int {
	p, _ := bitsPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return make([]int, n) },
	})
	bits := p.(*sync.Pool).Get().([]int)
	for i := range bits {
		bits[i] = 0
	}
	return bits
}

// ReleaseBits recycles a buffer obtained from GetBits. The caller must
// not touch the slice afterwards.
func ReleaseBits(bits []int) {
	if p, ok := bitsPools.Load(len(bits)); ok {
		p.(*sync.Pool).Put(bits)
	}
}
