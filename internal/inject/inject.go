// Package inject executes quantum circuits under the paper's combined
// noise processes — intrinsic depolarizing noise plus radiation-induced
// reset faults — and estimates post-decoding logical error rates over
// many shots. Campaigns are deterministic for a given seed regardless of
// worker count: every shot owns an independent RNG stream split from the
// campaign seed.
package inject

import (
	"fmt"
	"runtime"
	"sync"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

// Executor runs single shots of a circuit on a stabilizer tableau with
// per-gate noise injection.
type Executor struct {
	circ *circuit.Circuit
	dep  noise.Depolarizing
	rad  *noise.RadiationEvent
	// samp is the immutable skip-sampling template for the depolarizing
	// channel; each shot copies and reseeds it.
	samp noise.SkipSampler
}

// NewExecutor builds a shot executor. rad may be nil for noise-only runs.
func NewExecutor(circ *circuit.Circuit, dep noise.Depolarizing, rad *noise.RadiationEvent) *Executor {
	if rad == nil {
		rad = noise.NoRadiation(circ.NumQubits)
	}
	if len(rad.Probs) != circ.NumQubits {
		panic(fmt.Sprintf("inject: radiation table covers %d qubits, circuit has %d",
			len(rad.Probs), circ.NumQubits))
	}
	return &Executor{circ: circ, dep: dep, rad: rad, samp: dep.Skip()}
}

// Run executes one shot and returns the classical measurement record.
// The caller owns src; identical sources reproduce identical shots. The
// record comes from the shared buffer pool: callers looping over shots
// should recycle it with ReleaseBits once consumed (or use RunInto).
func (e *Executor) Run(src *rng.Source) []int {
	tab := newPooledTableau(e.circ.NumQubits)
	defer releaseTableau(tab)
	bits := GetBits(e.circ.NumClbits)
	e.RunInto(src, tab, bits)
	return bits
}

// RunInto is Run with caller-provided state, for allocation-free loops.
// tab must be freshly reset to |0...0>; bits must have NumClbits slots.
func (e *Executor) RunInto(src *rng.Source, tab tableau, bits []int) {
	// Depolarizing errors are drawn by geometric skip-sampling: for small
	// P the sampler touches the RNG once per error instead of once per
	// op-qubit, while sampling the exact same error distribution.
	samp := e.samp
	samp.Reset(src)
	for _, op := range e.circ.Ops {
		switch op.Kind {
		case circuit.KindH:
			tab.H(op.Qubits[0])
		case circuit.KindX:
			tab.X(op.Qubits[0])
		case circuit.KindY:
			tab.Y(op.Qubits[0])
		case circuit.KindZ:
			tab.Z(op.Qubits[0])
		case circuit.KindS:
			tab.S(op.Qubits[0])
		case circuit.KindCNOT:
			tab.CNOT(op.Qubits[0], op.Qubits[1])
		case circuit.KindCZ:
			tab.CZ(op.Qubits[0], op.Qubits[1])
		case circuit.KindSWAP:
			tab.SWAP(op.Qubits[0], op.Qubits[1])
		case circuit.KindMeasure:
			bits[op.Clbit] = tab.MeasureZ(op.Qubits[0], src)
		case circuit.KindReset:
			tab.Reset(op.Qubits[0], src)
		case circuit.KindBarrier:
			continue // no noise on scheduling fences
		}
		// Intrinsic depolarizing noise: an independent E channel per
		// involved qubit (E2 = E⊗E after two-qubit gates, Section III-A).
		if e.dep.P > 0 {
			for _, q := range op.Qubits {
				switch samp.Sample(src) {
				case noise.ErrX:
					tab.X(q)
				case noise.ErrY:
					tab.Y(q)
				case noise.ErrZ:
					tab.Z(q)
				}
			}
		}
		// Radiation fault: a reset follows each gate on qubit q with
		// probability p_q = F(t, d(root, q)) (Section III-B).
		for _, q := range op.Qubits {
			if e.rad.Fires(q, src) {
				tab.Reset(q, src)
			}
		}
	}
}

// tableau is the minimal stabilizer-simulator surface the executor needs.
type tableau interface {
	H(q int)
	X(q int)
	Y(q int)
	Z(q int)
	S(q int)
	CNOT(a, b int)
	CZ(a, b int)
	SWAP(a, b int)
	MeasureZ(q int, src *rng.Source) int
	Reset(q int, src *rng.Source)
	ResetState()
	N() int
}

// Result summarises a campaign.
type Result struct {
	// Shots is the number of executed shots.
	Shots int
	// Errors is the number of shots whose decoded output was wrong.
	Errors int
}

// Rate returns the logical error rate.
func (r Result) Rate() float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Shots)
}

// Merge accumulates another result into r.
func (r *Result) Merge(o Result) {
	r.Shots += o.Shots
	r.Errors += o.Errors
}

// Campaign estimates the logical error rate of a decoded circuit under
// an executor's noise processes.
type Campaign struct {
	// Exec runs the shots.
	Exec *Executor
	// Decode maps a shot's classical record to the decoded logical
	// value.
	Decode func(bits []int) int
	// Expected is the fault-free decoded output (logical |1> = 1 in the
	// paper's protocol).
	Expected int
	// Workers caps the parallel shot runners; 0 means GOMAXPROCS.
	Workers int
}

// Run executes shots shots with the given seed and returns the result.
// The outcome is independent of Workers: shot i always consumes the RNG
// stream split(seed, i).
func (c *Campaign) Run(seed uint64, shots int) Result {
	return c.RunFrom(seed, 0, shots)
}

// RunFrom executes the shot range [start, start+shots) of the campaign
// identified by seed. Shot i still consumes the stream split(seed, i),
// so partitioning a campaign into ranges — however they are batched or
// parallelised — merges to exactly the result of one Run over the whole
// range. Adaptive sweeps rely on this to extend a campaign without
// replaying or perturbing earlier shots.
func (c *Campaign) RunFrom(seed uint64, start, shots int) Result {
	if shots <= 0 {
		return Result{}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	master := rng.New(seed)
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := newPooledTableau(c.Exec.circ.NumQubits)
			defer releaseTableau(tab)
			bits := make([]int, c.Exec.circ.NumClbits)
			local := Result{}
			for shot := start + w; shot < start+shots; shot += workers {
				src := master.Split(uint64(shot))
				tab.ResetState()
				for i := range bits {
					bits[i] = 0
				}
				c.Exec.RunInto(src, tab, bits)
				local.Shots++
				if c.Decode(bits) != c.Expected {
					local.Errors++
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	total := Result{}
	for _, r := range results {
		total.Merge(r)
	}
	return total
}
