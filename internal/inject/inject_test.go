package inject

import (
	"testing"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

// bellCircuit prepares a Bell pair and measures both halves.
func bellCircuit() *circuit.Circuit {
	c := circuit.New(2, 2)
	c.H(0)
	c.CNOT(0, 1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	return c
}

func TestExecutorCleanRun(t *testing.T) {
	c := circuit.New(1, 1)
	c.X(0)
	c.Measure(0, 0)
	ex := NewExecutor(c, noise.Depolarizing{}, nil)
	for seed := uint64(0); seed < 20; seed++ {
		bits := ex.Run(rng.New(seed))
		if bits[0] != 1 {
			t.Fatalf("clean X|0> measured %d", bits[0])
		}
	}
}

func TestExecutorBellCorrelations(t *testing.T) {
	ex := NewExecutor(bellCircuit(), noise.Depolarizing{}, nil)
	for seed := uint64(0); seed < 200; seed++ {
		bits := ex.Run(rng.New(seed))
		if bits[0] != bits[1] {
			t.Fatal("noiseless Bell pair decorrelated")
		}
	}
}

func TestExecutorDeterministic(t *testing.T) {
	ex := NewExecutor(bellCircuit(), noise.NewDepolarizing(0.2), nil)
	a := ex.Run(rng.New(5))
	b := ex.Run(rng.New(5))
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("identical seeds produced different shots")
	}
}

func TestExecutorRadiationPinsQubit(t *testing.T) {
	// A unit-probability radiation event on qubit 0 resets it after
	// every gate: X|0> then gate on it -> measured 0.
	c := circuit.New(1, 1)
	c.X(0)
	c.Z(0) // extra gate so the reset after X is followed by another op
	c.Measure(0, 0)
	ev := &noise.RadiationEvent{Probs: []float64{1}}
	ex := NewExecutor(c, noise.Depolarizing{}, ev)
	for seed := uint64(0); seed < 20; seed++ {
		if bits := ex.Run(rng.New(seed)); bits[0] != 0 {
			t.Fatalf("pinned qubit measured %d", bits[0])
		}
	}
}

func TestExecutorBarrierGetsNoNoise(t *testing.T) {
	// A circuit of only barriers and one measurement: even with p=1
	// noise the measurement must read the prepared value, because
	// barriers receive no injected errors and measurement noise lands
	// after the readout.
	c := circuit.New(1, 1)
	c.X(0)
	c.Barrier()
	c.Barrier()
	c.Measure(0, 0)
	ev := &noise.RadiationEvent{Probs: []float64{1}}
	exNoRad := NewExecutor(c, noise.Depolarizing{}, nil)
	if bits := exNoRad.Run(rng.New(1)); bits[0] != 1 {
		t.Fatal("barrier altered state")
	}
	// With radiation, the reset after X still pins it to zero.
	exRad := NewExecutor(c, noise.Depolarizing{}, ev)
	if bits := exRad.Run(rng.New(1)); bits[0] != 0 {
		t.Fatal("radiation did not fire on gate")
	}
}

func TestExecutorPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExecutor(bellCircuit(), noise.Depolarizing{}, &noise.RadiationEvent{Probs: []float64{1}})
}

func TestDepolarizingChangesOutcomes(t *testing.T) {
	// With p=1 depolarizing after every gate, the deterministic X|0>
	// measurement must flip sometimes.
	c := circuit.New(1, 1)
	c.X(0)
	c.Measure(0, 0)
	ex := NewExecutor(c, noise.NewDepolarizing(1), nil)
	zeros := 0
	for seed := uint64(0); seed < 300; seed++ {
		if bits := ex.Run(rng.New(seed)); bits[0] == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("full depolarizing never flipped the outcome")
	}
}

func TestCampaignCountsErrors(t *testing.T) {
	// Decode = bit 0; expected 1; pinned qubit makes every shot wrong.
	c := circuit.New(1, 1)
	c.X(0)
	c.Z(0)
	c.Measure(0, 0)
	ev := &noise.RadiationEvent{Probs: []float64{1}}
	camp := &Campaign{
		Exec:     NewExecutor(c, noise.Depolarizing{}, ev),
		Decode:   func(bits []int) int { return bits[0] },
		Expected: 1,
	}
	res := camp.Run(1, 500)
	if res.Shots != 500 || res.Errors != 500 {
		t.Fatalf("result = %+v", res)
	}
	if res.Rate() != 1 {
		t.Fatalf("rate = %v", res.Rate())
	}
}

func TestCampaignZeroShots(t *testing.T) {
	camp := &Campaign{
		Exec:     NewExecutor(bellCircuit(), noise.Depolarizing{}, nil),
		Decode:   func(bits []int) int { return bits[0] },
		Expected: 0,
	}
	res := camp.Run(1, 0)
	if res.Shots != 0 || res.Rate() != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCampaignWorkerInvariance(t *testing.T) {
	mk := func(workers int) Result {
		camp := &Campaign{
			Exec:     NewExecutor(bellCircuit(), noise.NewDepolarizing(0.3), nil),
			Decode:   func(bits []int) int { return bits[0] ^ bits[1] },
			Expected: 0,
			Workers:  workers,
		}
		return camp.Run(99, 2000)
	}
	r1, r4, r16 := mk(1), mk(4), mk(16)
	if r1 != r4 || r4 != r16 {
		t.Fatalf("worker counts disagree: %+v %+v %+v", r1, r4, r16)
	}
}

func TestCampaignRunFromPartitionsMatchRun(t *testing.T) {
	camp := &Campaign{
		Exec:     NewExecutor(bellCircuit(), noise.NewDepolarizing(0.3), nil),
		Decode:   func(bits []int) int { return bits[0] ^ bits[1] },
		Expected: 0,
	}
	whole := camp.Run(42, 1000)
	// Any partition of [0, 1000) into ranges must merge to the same
	// counts — the contract batched sweeps extend campaigns on.
	var merged Result
	for _, r := range [][2]int{{0, 100}, {100, 1}, {101, 399}, {500, 500}} {
		merged.Merge(camp.RunFrom(42, r[0], r[1]))
	}
	if merged != whole {
		t.Fatalf("partitioned runs %+v != whole run %+v", merged, whole)
	}
	if (camp.RunFrom(42, 10, 0) != Result{}) {
		t.Fatal("empty range produced shots")
	}
}

func TestCampaignSeedSensitivity(t *testing.T) {
	mk := func(seed uint64) Result {
		camp := &Campaign{
			Exec:     NewExecutor(bellCircuit(), noise.NewDepolarizing(0.3), nil),
			Decode:   func(bits []int) int { return bits[0] ^ bits[1] },
			Expected: 0,
		}
		return camp.Run(seed, 400)
	}
	if mk(1) == mk(2) {
		t.Log("different seeds produced identical results (possible but unlikely)")
	}
}

func TestResultMerge(t *testing.T) {
	a := Result{Shots: 10, Errors: 2}
	a.Merge(Result{Shots: 5, Errors: 1})
	if a.Shots != 15 || a.Errors != 3 {
		t.Fatalf("merged = %+v", a)
	}
	if a.Rate() != 0.2 {
		t.Fatalf("rate = %v", a.Rate())
	}
}

func TestPooledTableauReuse(t *testing.T) {
	t1 := newPooledTableau(7)
	t1.X(0)
	releaseTableau(t1)
	t2 := newPooledTableau(7)
	// Pool must hand back a reset tableau.
	src := rng.New(1)
	if got := t2.MeasureZ(0, src); got != 0 {
		t.Fatal("pooled tableau not reset")
	}
	releaseTableau(t2)
}

func TestBitsPoolRecycles(t *testing.T) {
	a := GetBits(9)
	for i := range a {
		a[i] = 1
	}
	ReleaseBits(a)
	b := GetBits(9)
	// The pool must hand back zeroed buffers whatever their history.
	for i, v := range b {
		if v != 0 {
			t.Fatalf("bit %d = %d, want 0", i, v)
		}
	}
	ReleaseBits(b)
}

func TestExecutorRunUsesPooledBits(t *testing.T) {
	// Run's record must stay correct when recycled across shots.
	c := circuit.New(1, 1)
	c.X(0)
	c.Measure(0, 0)
	ex := NewExecutor(c, noise.Depolarizing{}, nil)
	for seed := uint64(0); seed < 50; seed++ {
		bits := ex.Run(rng.New(seed))
		if bits[0] != 1 {
			t.Fatalf("seed %d: measured %d", seed, bits[0])
		}
		ReleaseBits(bits)
	}
}
