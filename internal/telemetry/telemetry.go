// Package telemetry is the runtime-signals layer of the campaign
// engine: every engine invocation the sweep mechanism makes emits one
// Signal — shots, wall time, throughput, the Wilson half-width before
// and after the chunk, the tail-CI width for tail-sensitive points,
// cache hits and process allocation deltas — onto a lock-free
// per-campaign ring. The sweep scheduler, the scoring controller
// (package control), the HTTP daemon's /metrics and signals stream,
// and the CLI's -stats report all consume the same structs, replacing
// the ad-hoc counters each layer kept before.
//
// Telemetry is strictly observational: nothing in this package feeds
// back into shot streams or batch boundaries, so recording signals can
// never perturb results (the controller reads them to re-order pure
// scheduling decisions only).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RingSize is the per-campaign signal ring capacity. It must be a
// power of two (the ring masks sequence numbers into slots). 1024
// chunks of history is hours of signal for a converged campaign and a
// few seconds for a hot one — the stream endpoint follows live, so the
// ring only has to bridge poll gaps, not hold a whole campaign.
const RingSize = 1024

// Signal is the telemetry record of one engine invocation (one
// mechanism chunk of one policy batch of one sweep point).
type Signal struct {
	// Seq is the campaign-wide sequence number, dense from 0.
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock completion time in Unix nanoseconds.
	TimeNS int64 `json:"time_ns"`
	// Key is the sweep point the chunk belongs to.
	Key string `json:"key"`
	// Batch is the policy-batch index within the point (the number of
	// completed batches before this chunk's batch).
	Batch int `json:"batch"`
	// Start is the first shot index of the chunk; Shots and Errors are
	// the chunk's counts.
	Start  int `json:"start"`
	Shots  int `json:"shots"`
	Errors int `json:"errors"`
	// WallNS is the chunk's execution time; ShotsPerSec the implied
	// throughput.
	WallNS      int64   `json:"wall_ns"`
	ShotsPerSec float64 `json:"shots_per_sec"`
	// HWBefore and HWAfter bracket the point's Wilson 95% half-width
	// across the chunk — the CI-shrink signal the controller scores.
	HWBefore float64 `json:"hw_before"`
	HWAfter  float64 `json:"hw_after"`
	// TailWidth is the half-width of the CI on the point's tail
	// statistic (CVaR of the per-batch rates), recorded only for points
	// an experiment declared tail-sensitive; 1 (the widest possible
	// width for a rate) until enough batches exist to estimate it.
	TailWidth float64 `json:"tail_width,omitempty"`
	// CacheHit marks a point served from the result store without any
	// engine work (Shots then counts the replayed shots).
	CacheHit bool `json:"cache_hit,omitempty"`
	// AllocBytes is the process-wide heap-allocation delta across the
	// chunk via runtime/metrics — a memory-pressure signal, attributed
	// per chunk but global to the process (concurrent campaigns bleed
	// into each other's deltas).
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Event marks lifecycle signals rather than engine chunks:
	// EventPanic when the scheduler's recover boundary caught a panic
	// in the point's turn, EventCancel when cancellation aborted the
	// point between batches (its partial progress flushed as a
	// checkpoint first), EventRemoteHit when a point parked on a fabric
	// peer resolved from the peer's committed result, EventTakeover
	// when the peer was declared dead (or ceded its lease) and the
	// point fell back to local compute. Detail carries the
	// human-readable cause.
	Event  string `json:"event,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Lifecycle event kinds for Signal.Event.
const (
	EventPanic     = "panic"
	EventCancel    = "cancel"
	EventRemoteHit = "remote_hit"
	EventTakeover  = "takeover"
)

// Route records the engine-resolution decision behind a campaign: the
// requested engine name, what it resolved to, and the policy reason —
// the signal that justified the route, kept so the stream and -stats
// can explain why a campaign ran where it did. Width and WidthReason
// carry the batched engine's resolved tile width (in lanes) and the
// heuristic or explicit request that picked it; both are zero/empty
// for campaigns that never resolved a width.
type Route struct {
	Requested   string `json:"requested"`
	Resolved    string `json:"resolved"`
	Reason      string `json:"reason"`
	Width       int    `json:"width,omitempty"`
	WidthReason string `json:"width_reason,omitempty"`
}

// Campaign is one campaign's telemetry: a lock-free signal ring plus
// monotonic counters and controller gauges. All methods are safe for
// concurrent use by any number of sweep workers and readers.
type Campaign struct {
	id         int64
	experiment string
	start      time.Time

	seq   atomic.Uint64                    // next sequence number
	slots [RingSize]atomic.Pointer[Signal] // seq % RingSize

	shots       atomic.Int64
	errors      atomic.Int64
	chunks      atomic.Int64
	batches     atomic.Int64
	wallNS      atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	pointsDone  atomic.Int64
	allocBytes  atomic.Int64
	panics      atomic.Int64
	cancels     atomic.Int64
	remoteHits  atomic.Int64
	takeovers   atomic.Int64

	// Controller gauges, written by the scheduler/controller and read
	// by /metrics and -stats.
	chunkSize  atomic.Int64
	queueDepth atomic.Int64
	dwellLeft  atomic.Int64

	route atomic.Pointer[Route]
	done  atomic.Bool
}

// NewCampaign builds a standalone campaign record (the CLI's -stats
// path); the daemon allocates through a Registry instead.
func NewCampaign(id int64, experiment string) *Campaign {
	return &Campaign{id: id, experiment: experiment, start: time.Now()}
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() int64 { return c.id }

// Experiment returns the campaign's experiment name.
func (c *Campaign) Experiment() string { return c.experiment }

// Record publishes one signal: it claims the next sequence number,
// stamps the signal with it, folds the counters, and stores the signal
// in its ring slot. Lock-free: concurrent recorders claim distinct
// slots via the atomic sequence counter.
func (c *Campaign) Record(s Signal) {
	if s.Event == "" {
		// Lifecycle events (panic/cancel) are markers, not engine
		// chunks: they ride the ring for the signals stream but fold
		// into their own counters, not the chunk/shot aggregates.
		c.shots.Add(int64(s.Shots))
		c.errors.Add(int64(s.Errors))
		c.chunks.Add(1)
		c.wallNS.Add(s.WallNS)
		c.allocBytes.Add(s.AllocBytes)
		if s.CacheHit {
			c.cacheHits.Add(1)
		}
	}
	switch s.Event {
	case EventPanic:
		c.panics.Add(1)
	case EventCancel:
		c.cancels.Add(1)
	case EventRemoteHit:
		c.remoteHits.Add(1)
	case EventTakeover:
		c.takeovers.Add(1)
	}
	s.Seq = c.seq.Add(1) - 1
	c.slots[s.Seq%RingSize].Store(&s)
}

// BatchDone counts one completed policy batch.
func (c *Campaign) BatchDone() { c.batches.Add(1) }

// CacheMiss counts one point that had to run the engines.
func (c *Campaign) CacheMiss() { c.cacheMisses.Add(1) }

// PointDone counts one completed point.
func (c *Campaign) PointDone() { c.pointsDone.Add(1) }

// SetControl updates the controller gauges: the chosen mechanism chunk
// size and the dwell budget left before the scorer may switch again.
func (c *Campaign) SetControl(chunkSize, dwellLeft int) {
	c.chunkSize.Store(int64(chunkSize))
	c.dwellLeft.Store(int64(dwellLeft))
}

// SetQueueDepth updates the campaign's pending-point gauge.
func (c *Campaign) SetQueueDepth(depth int) { c.queueDepth.Store(int64(depth)) }

// SetRoute records the engine-resolution decision for the campaign.
func (c *Campaign) SetRoute(r Route) { c.route.Store(&r) }

// Route returns the recorded engine route, or nil before SetRoute.
func (c *Campaign) Route() *Route { return c.route.Load() }

// Finish marks the campaign complete; the signals stream uses it to
// terminate follows.
func (c *Campaign) Finish() { c.done.Store(true) }

// Done reports whether the campaign has finished.
func (c *Campaign) Done() bool { return c.done.Load() }

// Since returns, in sequence order, every retained signal with
// Seq >= seq, plus the next sequence number to poll from. Signals
// overwritten before the read (a reader more than RingSize behind) are
// skipped — the dense Seq numbering makes the gap visible to the
// consumer. A slot whose writer has claimed a sequence number but not
// yet stored the signal reads as its previous generation and is
// filtered by the Seq check; the signal is picked up by the next poll.
func (c *Campaign) Since(seq uint64, max int) ([]Signal, uint64) {
	head := c.seq.Load()
	if seq >= head {
		return nil, head
	}
	if head-seq > RingSize {
		seq = head - RingSize
	}
	out := make([]Signal, 0, min(int(head-seq), max))
	for ; seq < head && len(out) < max; seq++ {
		p := c.slots[seq%RingSize].Load()
		if p != nil && p.Seq == seq {
			out = append(out, *p)
		}
	}
	return out, seq
}

// Stats is the aggregate point-in-time view of a campaign, shared by
// /metrics, the signals stream's summary record and the CLI's -stats.
type Stats struct {
	ID          int64   `json:"id"`
	Experiment  string  `json:"experiment"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	Shots       int64   `json:"shots"`
	Errors      int64   `json:"errors"`
	Chunks      int64   `json:"chunks"`
	Batches     int64   `json:"batches"`
	WallNS      int64   `json:"wall_ns"`
	ShotsPerSec float64 `json:"shots_per_sec"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	PointsDone  int64   `json:"points_done"`
	AllocBytes  int64   `json:"alloc_bytes"`
	Panics      int64   `json:"panics,omitempty"`
	Cancels     int64   `json:"cancels,omitempty"`
	RemoteHits  int64   `json:"remote_hits,omitempty"`
	Takeovers   int64   `json:"takeovers,omitempty"`
	ChunkSize   int64   `json:"chunk_size"`
	QueueDepth  int64   `json:"queue_depth"`
	DwellLeft   int64   `json:"dwell_left"`
	Done        bool    `json:"done"`
	Route       *Route  `json:"route,omitempty"`
}

// Stats snapshots the campaign. ShotsPerSec is engine throughput —
// shots over summed engine wall time, not elapsed time — so it is
// comparable across campaigns that share a worker pool.
func (c *Campaign) Stats() Stats {
	wall := c.wallNS.Load()
	shots := c.shots.Load()
	var sps float64
	if wall > 0 {
		sps = float64(shots) / (float64(wall) / 1e9)
	}
	return Stats{
		ID:          c.id,
		Experiment:  c.experiment,
		ElapsedNS:   time.Since(c.start).Nanoseconds(),
		Shots:       shots,
		Errors:      c.errors.Load(),
		Chunks:      c.chunks.Load(),
		Batches:     c.batches.Load(),
		WallNS:      wall,
		ShotsPerSec: sps,
		CacheHits:   c.cacheHits.Load(),
		CacheMisses: c.cacheMisses.Load(),
		PointsDone:  c.pointsDone.Load(),
		AllocBytes:  c.allocBytes.Load(),
		Panics:      c.panics.Load(),
		Cancels:     c.cancels.Load(),
		RemoteHits:  c.remoteHits.Load(),
		Takeovers:   c.takeovers.Load(),
		ChunkSize:   c.chunkSize.Load(),
		QueueDepth:  c.queueDepth.Load(),
		DwellLeft:   c.dwellLeft.Load(),
		Done:        c.done.Load(),
		Route:       c.route.Load(),
	}
}

// Registry tracks campaign telemetry for the daemon: active campaigns
// plus a bounded tail of recently finished ones, so a signals-stream
// client that connects just after a short campaign completes still
// finds it.
type Registry struct {
	mu     sync.Mutex
	nextID int64
	active map[int64]*Campaign
	recent []*Campaign // oldest first, bounded by keepRecent
}

// keepRecent bounds how many finished campaigns stay queryable.
const keepRecent = 64

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{active: make(map[int64]*Campaign)}
}

// New allocates the next campaign ID and registers its telemetry.
func (r *Registry) New(experiment string) *Campaign {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	c := NewCampaign(r.nextID, experiment)
	r.active[c.id] = c
	return c
}

// Finish marks the campaign done and moves it to the recent tail.
func (r *Registry) Finish(c *Campaign) {
	c.Finish()
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.active, c.id)
	r.recent = append(r.recent, c)
	if len(r.recent) > keepRecent {
		r.recent = r.recent[len(r.recent)-keepRecent:]
	}
}

// Get returns the campaign with the given ID, active or recent.
func (r *Registry) Get(id int64) (*Campaign, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.active[id]; ok {
		return c, true
	}
	for _, c := range r.recent {
		if c.id == id {
			return c, true
		}
	}
	return nil, false
}

// Active returns the active campaigns in ID order.
func (r *Registry) Active() []*Campaign {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Campaign, 0, len(r.active))
	for _, c := range r.active {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
