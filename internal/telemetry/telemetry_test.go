package telemetry

import (
	"sync"
	"testing"
)

func TestRecordAssignsDenseSequence(t *testing.T) {
	c := NewCampaign(1, "fig5")
	for i := 0; i < 5; i++ {
		c.Record(Signal{Key: "p", Shots: 10, Errors: 1, WallNS: 1e6})
	}
	sigs, next := c.Since(0, RingSize)
	if len(sigs) != 5 || next != 5 {
		t.Fatalf("got %d signals, next %d", len(sigs), next)
	}
	for i, s := range sigs {
		if s.Seq != uint64(i) {
			t.Fatalf("signal %d has seq %d", i, s.Seq)
		}
	}
}

func TestSinceChunksAndResumes(t *testing.T) {
	c := NewCampaign(1, "x")
	for i := 0; i < 10; i++ {
		c.Record(Signal{Start: i})
	}
	var got []Signal
	seq := uint64(0)
	for {
		sigs, next := c.Since(seq, 3)
		if len(sigs) == 0 {
			break
		}
		got = append(got, sigs...)
		seq = next
	}
	if len(got) != 10 {
		t.Fatalf("chunked read returned %d signals", len(got))
	}
	for i, s := range got {
		if s.Start != i {
			t.Fatalf("signal %d out of order: %+v", i, s)
		}
	}
}

func TestSinceSkipsOverwrittenTail(t *testing.T) {
	c := NewCampaign(1, "x")
	n := RingSize + 100
	for i := 0; i < n; i++ {
		c.Record(Signal{Start: i})
	}
	sigs, next := c.Since(0, n)
	if len(sigs) != RingSize {
		t.Fatalf("lagged reader got %d signals, ring holds %d", len(sigs), RingSize)
	}
	if sigs[0].Seq != uint64(n-RingSize) {
		t.Fatalf("oldest retained seq = %d, want %d", sigs[0].Seq, n-RingSize)
	}
	if next != uint64(n) {
		t.Fatalf("next = %d, want %d", next, n)
	}
	// Reading past the head returns nothing and stays at the head.
	if sigs, next := c.Since(uint64(n), 10); len(sigs) != 0 || next != uint64(n) {
		t.Fatalf("read past head returned %d signals, next %d", len(sigs), next)
	}
}

func TestRecordConcurrent(t *testing.T) {
	c := NewCampaign(1, "x")
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Record(Signal{Shots: 1, WallNS: 1})
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Chunks != workers*each || st.Shots != workers*each {
		t.Fatalf("stats after concurrent record: %+v", st)
	}
	sigs, _ := c.Since(0, RingSize)
	seen := map[uint64]bool{}
	for _, s := range sigs {
		if seen[s.Seq] {
			t.Fatalf("duplicate seq %d", s.Seq)
		}
		seen[s.Seq] = true
	}
}

func TestStatsAggregation(t *testing.T) {
	c := NewCampaign(7, "fig6")
	c.Record(Signal{Shots: 1000, Errors: 10, WallNS: 5e8, AllocBytes: 100})
	c.Record(Signal{Shots: 1000, Errors: 20, WallNS: 5e8, AllocBytes: 200})
	c.Record(Signal{Shots: 500, CacheHit: true})
	c.BatchDone()
	c.BatchDone()
	c.CacheMiss()
	c.PointDone()
	c.SetControl(4096, 3)
	c.SetQueueDepth(9)
	c.SetRoute(Route{Requested: "auto", Resolved: "batch", Reason: "r"})
	st := c.Stats()
	if st.ID != 7 || st.Experiment != "fig6" {
		t.Fatalf("identity: %+v", st)
	}
	if st.Shots != 2500 || st.Errors != 30 || st.Chunks != 3 || st.Batches != 2 {
		t.Fatalf("counters: %+v", st)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.PointsDone != 1 || st.AllocBytes != 300 {
		t.Fatalf("cache/alloc: %+v", st)
	}
	// Engine throughput: shots over summed engine wall time (1s here),
	// so the zero-wall cache replay does not inflate the rate base.
	if st.ShotsPerSec != 2500 {
		t.Fatalf("shots/s = %v, want 2500", st.ShotsPerSec)
	}
	if st.ChunkSize != 4096 || st.DwellLeft != 3 || st.QueueDepth != 9 {
		t.Fatalf("gauges: %+v", st)
	}
	if st.Route == nil || st.Route.Resolved != "batch" {
		t.Fatalf("route: %+v", st.Route)
	}
	if st.Done {
		t.Fatal("done before Finish")
	}
	c.Finish()
	if !c.Stats().Done {
		t.Fatal("Finish not visible in stats")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	a := r.New("fig5")
	b := r.New("fig6")
	if a.ID() != 1 || b.ID() != 2 {
		t.Fatalf("ids %d, %d", a.ID(), b.ID())
	}
	if got := r.Active(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("active = %v", got)
	}
	if c, ok := r.Get(1); !ok || c != a {
		t.Fatal("Get missed an active campaign")
	}
	r.Finish(a)
	if !a.Done() {
		t.Fatal("Finish did not mark the campaign done")
	}
	if got := r.Active(); len(got) != 1 || got[0] != b {
		t.Fatalf("active after finish = %v", got)
	}
	// Finished campaigns stay queryable through the recent tail.
	if c, ok := r.Get(1); !ok || c != a {
		t.Fatal("finished campaign not found in recent tail")
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("unknown id found")
	}
}

func TestRegistryRecentTailBounded(t *testing.T) {
	r := NewRegistry()
	first := r.New("e")
	r.Finish(first)
	for i := 0; i < keepRecent; i++ {
		r.Finish(r.New("e"))
	}
	if _, ok := r.Get(first.ID()); ok {
		t.Fatal("oldest finished campaign should have rotated out")
	}
	if c, ok := r.Get(2); !ok || c.ID() != 2 {
		t.Fatal("recent campaign inside the tail bound not found")
	}
}
