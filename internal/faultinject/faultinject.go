// Package faultinject is the failpoint harness of the campaign
// service: named injection sites compiled into the production paths of
// the store, the sweep workers and the HTTP streamer, armed by tests
// (Enable/Disable) or operators (the RADQEC_FAILPOINTS environment
// variable) to rehearse the faults the robustness layer claims to
// survive — write errors, slow disks, worker panics, stalled and
// vanishing clients.
//
// A disarmed harness costs one atomic load per site, so the
// instrumented hot paths stay free in production. Armed failpoints
// fire according to a small spec grammar:
//
//	mode[(arg)][*count][@skip]
//
//	error          fail every evaluation
//	error*1        fail exactly once, then disarm
//	error*2@3      skip 3 evaluations, then fail twice
//	sleep(50ms)    sleep 50ms on every evaluation
//	panic*1        panic on the next evaluation
//
// The environment form is a semicolon-separated list of name=spec
// pairs, e.g.
//
//	RADQEC_FAILPOINTS='store.write.error=error*1;sweep.worker.panic=panic*1@3'
//
// parsed once at process start; a malformed value panics immediately —
// a chaos rehearsal with a typo'd fault plan should fail loudly, not
// silently run fault-free.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The failpoint sites compiled into the service. Each name is the
// Eval argument at exactly one call site.
const (
	// StoreWriteError fails a segment append (and the degraded-store
	// recovery probe) in internal/store.
	StoreWriteError = "store.write.error"
	// StoreWriteSlow delays a segment append in internal/store
	// (sleep mode; an error spec here fails the append like
	// StoreWriteError).
	StoreWriteSlow = "store.write.slow"
	// WorkerPanic panics inside a sweep worker's engine chunk — the
	// fault the scheduler's recover boundary isolates.
	WorkerPanic = "sweep.worker.panic"
	// StreamStall delays one campaign-stream record write in
	// internal/server (sleep mode), simulating a stalled client.
	StreamStall = "server.stream.stall"
	// StreamDrop fails one campaign-stream record write in
	// internal/server, simulating a client that vanished mid-stream.
	StreamDrop = "server.stream.drop"
	// PeerSubmitError fails a fabric fan-out submission in
	// internal/fabric — the peer-down-at-submit fault.
	PeerSubmitError = "fabric.peer.submit.error"
	// PeerLookupError fails a fabric remote point lookup in
	// internal/fabric, making the owner shard look unreachable so the
	// failure detector and the takeover path fire.
	PeerLookupError = "fabric.peer.lookup.error"
)

// EnvVar names the environment variable carrying a fault plan.
const EnvVar = "RADQEC_FAILPOINTS"

// ErrInjected is the sentinel all error-mode failpoints return,
// wrapped with the failpoint name; errors.Is distinguishes injected
// faults from organic ones in tests and logs.
var ErrInjected = errors.New("faultinject: injected fault")

// failpoint is one armed site's firing plan.
type failpoint struct {
	mode  string // "error", "panic" or "sleep"
	sleep time.Duration
	count int64 // remaining fires; -1 = unlimited
	skip  int64 // evaluations to swallow before the first fire
	hits  int64 // times the site actually fired
}

var (
	// armed counts registered failpoints; the zero fast path is the
	// only thing Eval touches in production.
	armed atomic.Int64

	mu     sync.Mutex
	points = map[string]*failpoint{}
)

func init() {
	if err := LoadEnv(); err != nil {
		panic(err)
	}
}

// LoadEnv arms every failpoint named in RADQEC_FAILPOINTS. It returns
// an error on a malformed plan (init panics on it; tests calling
// LoadEnv directly can assert instead).
func LoadEnv() error {
	plan := os.Getenv(EnvVar)
	if plan == "" {
		return nil
	}
	for _, pair := range strings.Split(plan, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("faultinject: %s: %q is not name=spec", EnvVar, pair)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return fmt.Errorf("faultinject: %s: %w", EnvVar, err)
		}
	}
	return nil
}

// parseSpec compiles one mode[(arg)][*count][@skip] spec.
func parseSpec(spec string) (failpoint, error) {
	fp := failpoint{count: -1}
	rest := spec
	if at := strings.LastIndexByte(rest, '@'); at >= 0 {
		n, err := strconv.ParseInt(rest[at+1:], 10, 64)
		if err != nil || n < 0 {
			return fp, fmt.Errorf("bad skip in %q", spec)
		}
		fp.skip = n
		rest = rest[:at]
	}
	if star := strings.LastIndexByte(rest, '*'); star >= 0 {
		n, err := strconv.ParseInt(rest[star+1:], 10, 64)
		if err != nil || n < 1 {
			return fp, fmt.Errorf("bad count in %q", spec)
		}
		fp.count = n
		rest = rest[:star]
	}
	mode, arg := rest, ""
	if open := strings.IndexByte(rest, '('); open >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return fp, fmt.Errorf("unclosed argument in %q", spec)
		}
		mode, arg = rest[:open], rest[open+1:len(rest)-1]
	}
	fp.mode = mode
	switch mode {
	case "error", "panic":
		if arg != "" {
			return fp, fmt.Errorf("mode %s takes no argument in %q", mode, spec)
		}
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return fp, fmt.Errorf("bad sleep duration in %q", spec)
		}
		fp.sleep = d
	default:
		return fp, fmt.Errorf("unknown mode %q in %q (want error, panic or sleep)", mode, spec)
	}
	return fp, nil
}

// Enable arms (or re-arms) a failpoint with the given spec.
func Enable(name, spec string) error {
	if name == "" {
		return fmt.Errorf("faultinject: empty failpoint name")
	}
	fp, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("faultinject: %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &fp
	return nil
}

// Disable disarms one failpoint; a name that was never armed is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint — the test-teardown hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(points)))
	points = map[string]*failpoint{}
}

// Armed lists the currently armed failpoint names, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hits reports how many times the named failpoint has fired since it
// was armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if fp, ok := points[name]; ok {
		return fp.hits
	}
	return 0
}

// Eval is the injection site hook: a no-op (one atomic load) while the
// harness is disarmed. An armed site consumes its skip budget, then
// fires per its mode — returning a wrapped ErrInjected, sleeping, or
// panicking — until its count is spent, after which it goes quiet
// (still registered, so Hits stays queryable).
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fp, ok := points[name]
	if !ok || fp.count == 0 {
		mu.Unlock()
		return nil
	}
	if fp.skip > 0 {
		fp.skip--
		mu.Unlock()
		return nil
	}
	if fp.count > 0 {
		fp.count--
	}
	fp.hits++
	mode, sleep := fp.mode, fp.sleep
	mu.Unlock()
	switch mode {
	case "sleep":
		time.Sleep(sleep)
		return nil
	case "panic":
		panic(fmt.Sprintf("faultinject: failpoint %s fired", name))
	default:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
}
