package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if err := Eval(StoreWriteError); err != nil {
		t.Fatalf("disarmed Eval returned %v", err)
	}
	if got := Armed(); len(got) != 0 {
		t.Fatalf("armed list %v on a reset harness", got)
	}
}

func TestErrorModeCountAndSkip(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(StoreWriteError, "error*2@1"); err != nil {
		t.Fatal(err)
	}
	// One skipped, two fired, then quiet forever.
	want := []bool{false, true, true, false, false}
	for i, fire := range want {
		err := Eval(StoreWriteError)
		if fire != (err != nil) {
			t.Fatalf("eval %d: err=%v, want fire=%v", i, err, fire)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: %v does not wrap ErrInjected", i, err)
		}
	}
	if got := Hits(StoreWriteError); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestSleepMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(StreamStall, "sleep(20ms)*1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval(StreamStall); err != nil {
		t.Fatalf("sleep mode returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sleep failpoint returned after %v, want >= 20ms", d)
	}
	// Count spent: the second evaluation must be instant.
	start = time.Now()
	Eval(StreamStall)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("spent sleep failpoint still slept %v", d)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(WorkerPanic, "panic*1"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic failpoint did not panic")
			}
		}()
		Eval(WorkerPanic)
	}()
	// One-shot: the next evaluation is quiet.
	if err := Eval(WorkerPanic); err != nil {
		t.Fatalf("spent panic failpoint returned %v", err)
	}
}

func TestDisableAndReset(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(StoreWriteError, "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable(StreamDrop, "error"); err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 2 {
		t.Fatalf("armed %v, want 2 sites", got)
	}
	Disable(StoreWriteError)
	if err := Eval(StoreWriteError); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
	if err := Eval(StreamDrop); err == nil {
		t.Fatal("sibling failpoint was disarmed by Disable of another name")
	}
	Reset()
	if err := Eval(StreamDrop); err != nil {
		t.Fatalf("failpoint fired after Reset: %v", err)
	}
}

func TestSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{
		"", "explode", "error*0", "error*x", "error@-1",
		"sleep", "sleep(nope)", "sleep(50ms", "error(arg)",
	} {
		if err := Enable("x", spec); err == nil {
			t.Fatalf("spec %q was accepted", spec)
		}
	}
	if got := Armed(); len(got) != 0 {
		t.Fatalf("failed Enables left %v armed", got)
	}
}

func TestLoadEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, "store.write.error=error*1; sweep.worker.panic=panic*1@2")
	if err := LoadEnv(); err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 2 {
		t.Fatalf("armed %v, want 2 sites from the environment", got)
	}
	Reset()
	t.Setenv(EnvVar, "store.write.error")
	if err := LoadEnv(); err == nil {
		t.Fatal("malformed plan was accepted")
	}
}
