package exp

import (
	"fmt"
	"sort"

	"radqec/internal/arch"
	"radqec/internal/noise"
	"radqec/internal/qec"
)

// memoryRounds builds the round sweep of the memory experiment: the
// paper's 2-round protocol, a short ladder into the memory regime, the
// code distance itself (the canonical rounds=d memory point), and the
// configured -rounds depth, deduplicated and sorted.
func memoryRounds(cfg Config, d int) []int {
	set := map[int]bool{}
	var out []int
	add := func(r int) {
		if r >= 2 && !set[r] {
			set[r] = true
			out = append(out, r)
		}
	}
	for _, r := range []int{2, 3, 4, 6, 8} {
		add(r)
	}
	add(d)
	add(cfg.Rounds)
	sort.Ints(out)
	return out
}

// Memory is the multi-round memory experiment the space-time
// detector-error model opens up: logical error versus the number of
// stabilization rounds at fixed distance, for both code families. Each
// additional round adds a layer of detectors and a band of time-like
// (measurement-error) edges to the decoding problem, so the intrinsic
// logical error accumulates with depth — the scaling the 2-round paper
// protocol cannot observe — while the radiation column shows how a
// strike's damage dilutes into a longer exposure window.
func Memory(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Memory: logical error vs stabilization rounds (space-time decoding)",
		Header: []string{
			"family", "code", "rounds", "detectors",
			"logical_error", "logical_error_at_impact",
		},
	}
	type entry struct {
		family string
		build  func(rounds int) (*qec.Code, error)
		d      int
	}
	entries := []entry{
		{"repetition", func(r int) (*qec.Code, error) { return qec.NewRepetitionRounds(5, r) }, 5},
		{"repetition", func(r int) (*qec.Code, error) { return qec.NewRepetitionRounds(9, r) }, 9},
		{"xxzz", func(r int) (*qec.Code, error) { return qec.NewXXZZRounds(3, 3, r) }, 3},
	}
	topo := arch.Mesh(5, 6)
	type row struct {
		family string
		code   *qec.Code
		rounds int
	}
	var (
		specs []pointSpec
		rows  []row
	)
	for ei, e := range entries {
		for ri, r := range memoryRounds(cfg, e.d) {
			code, err := e.build(r)
			if err != nil {
				return nil, err
			}
			p, err := prepare(code, topo)
			if err != nil {
				return nil, err
			}
			seed := cfg.Seed + uint64(ei*99991+ri*31)
			key := fmt.Sprintf("memory/%s/r%d", code.Name, r)
			specs = append(specs,
				p.spec(key+"/clean", cfg, noise.NoRadiation(p.tr.Circuit.NumQubits), seed),
				p.spec(key+"/impact", cfg, p.strikeAt(Fig5Root, 1.0, true), seed+1))
			rows = append(rows, row{e.family, code, r})
		}
	}
	results := runSpecs(cfg, specs)
	for i, rw := range rows {
		m := rw.code.DEM()
		t.Add(rw.family, rw.code.Name, fmt.Sprintf("%d", rw.rounds),
			fmt.Sprintf("%d", m.NumStabs*m.Layers),
			pct(results[2*i].Rate()), pct(results[2*i+1].Rate()))
	}
	t.Notes = append(t.Notes,
		"each round adds a detector layer and a time-like (measurement-error) edge band to the decoding graph",
		fmt.Sprintf("decoded with %s over the compiled detector-error model; intrinsic p=%g", cfg.DecoderName(), cfg.P))
	noteAdaptive(t, cfg, results)
	return t, nil
}
