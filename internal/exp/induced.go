package exp

import (
	"radqec/internal/arch"
	"radqec/internal/graph"
)

// newInducedGraph builds the subgraph of the topology induced by the
// used physical qubits, re-indexed densely through idx.
func newInducedGraph(tr *arch.Transpiled, used []int, idx map[int]int) *graph.Graph {
	g := graph.New(len(used))
	for _, q := range used {
		for _, w := range tr.Topo.Graph.Neighbors(q) {
			if j, ok := idx[w]; ok {
				g.AddEdge(idx[q], j)
			}
		}
	}
	return g
}
