package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/stats"
)

// Fig5PhysicalRates are the intrinsic physical error rates swept along
// one ground axis of Figure 5 (1e-8 up to 1e-1).
func Fig5PhysicalRates() []float64 {
	return []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// Fig5Root is the paper's deterministic root injection point.
const Fig5Root = 2

// Fig5 reproduces Figure 5: the logical-error landscape of the
// distance-(5,1) repetition code (on a 5x2 lattice) and the
// distance-(3,3) XXZZ code (on a 5x4 lattice) over the intrinsic
// physical error rate and the radiation fault's time evolution, with the
// strike rooted at qubit index 2.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Figure 5: logical error landscape (noise x radiation)",
		Header: []string{
			"code", "phys_rate", "sample", "root_prob", "logical_error",
		},
	}
	type job struct {
		code *qec.Code
		topo arch.Topology
	}
	rep, err := cfg.repetition(5)
	if err != nil {
		return nil, err
	}
	xxzz, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	jobs := []job{
		{rep, arch.Mesh(5, 2)},
		{xxzz, arch.Mesh(5, 4)},
	}
	samples := noise.TemporalSamples(cfg.NS)
	// One spec per (code, phys rate, temporal sample), in row order.
	type rowMeta struct {
		job  job
		phys float64
		k    int
		prob float64
	}
	var (
		specs []pointSpec
		meta  []rowMeta
	)
	for ji, j := range jobs {
		p, err := prepare(j.code, j.topo)
		if err != nil {
			return nil, err
		}
		for pi, phys := range Fig5PhysicalRates() {
			sub := cfg
			sub.P = phys
			for k, rootProb := range samples {
				ev := p.strikeAt(Fig5Root, rootProb, true)
				seed := cfg.Seed + uint64(ji*1000003+pi*1009+k*13)
				specs = append(specs, p.spec(
					fmt.Sprintf("fig5/%s/p%.0e/t%d", j.code.Name, phys, k), sub, ev, seed))
				meta = append(meta, rowMeta{j, phys, k, rootProb})
			}
		}
	}
	results := runSpecs(cfg, specs)
	var impactRates []float64
	for i, r := range results {
		m := meta[i]
		rate := r.Rate()
		t.Add(m.job.code.Name,
			fmt.Sprintf("%.0e", m.phys),
			fmt.Sprintf("%d", m.k),
			fmt.Sprintf("%.4f", m.prob),
			pct(rate))
		if m.k == 0 {
			impactRates = append(impactRates, rate)
		}
		// The per-code impact note closes when its block of rows ends.
		if i+1 == len(results) || meta[i+1].job.code != m.job.code {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: mean logical error at impact (root prob 100%%) across phys rates = %s",
				m.job.code.Name, pct(stats.Mean(impactRates))))
			impactRates = impactRates[:0]
		}
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}
