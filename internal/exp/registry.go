package exp

// Experiment is one runnable experiment of the paper's evaluation —
// the registry entry shared by the CLI and the campaign daemon, so
// both front-ends expose exactly the same workloads.
type Experiment struct {
	// Name is the CLI argument / API experiment identifier.
	Name string
	// Desc is the one-line human description.
	Desc string
	// Run produces the experiment's table under the given config.
	Run func(Config) (*Table, error)
	// XXZZRad marks experiments whose campaigns include radiation
	// strikes on XXZZ circuits — the collapsed-branch approximation
	// domain of the frame engines (see package frame). Repetition-only
	// and radiation-free experiments are frame-exact on every engine.
	XXZZRad bool
}

// Experiments lists every experiment in presentation order.
func Experiments() []Experiment {
	wrap := func(f func(Config) *Table) func(Config) (*Table, error) {
		return func(c Config) (*Table, error) { return f(c), nil }
	}
	return []Experiment{
		{"fig3", "temporal decay T(t) and its step approximation", wrap(Fig3), false},
		{"fig4", "spatial decay S(d) over architecture distance", wrap(Fig4), false},
		{"fig5", "logical error landscape: noise x radiation", Fig5, true},
		{"fig6", "criticality by code distance (single erasure)", Fig6, true},
		{"fig7", "correlated spread vs independent erasures", Fig7, true},
		{"fig8", "per-qubit criticality across architectures", Fig8, true},
		{"fig8summary", "architecture comparison summary", Fig8Summary, true},
		{"ablation-decoder", "blossom vs union-find vs greedy decoding", AblationDecoder, true},
		{"ablation-ns", "temporal sample count sweep", AblationTemporalSamples, false},
		{"ablation-layout", "initial layout strategy", AblationLayout, true},
		{"ablation-rounds", "stabilization round count sweep", AblationRounds, false},
		{"memory", "logical error vs rounds at fixed distance (space-time decoding)", Memory, true},
		{"threshold", "intrinsic-noise baseline by distance (no radiation)", Threshold, false},
		{"logical", "post-QEC logical-layer fault injection (future work)", LogicalLayer, true},
	}
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
