package exp

// Experiment is one runnable experiment of the paper's evaluation —
// the registry entry shared by the CLI and the campaign daemon, so
// both front-ends expose exactly the same workloads.
type Experiment struct {
	// Name is the CLI argument / API experiment identifier.
	Name string
	// Desc is the one-line human description.
	Desc string
	// Run produces the experiment's table under the given config.
	Run func(Config) (*Table, error)
	// XXZZRad marks experiments whose campaigns include radiation
	// strikes on XXZZ circuits — the collapsed-branch approximation
	// domain of the frame engines (see package frame). Repetition-only
	// and radiation-free experiments are frame-exact on every engine.
	XXZZRad bool
	// TailCols names the per-point record columns (see PointRecord)
	// whose tail statistics are the experiment's quantity of interest —
	// the CVaR/quantile columns the paper reads for radiation-strike
	// campaigns. A non-empty list marks every point of the experiment
	// tail-sensitive: the scoring controller steers shot budget toward
	// the widest tail CIs first. Purely a scheduling declaration —
	// tables and records are unaffected.
	TailCols []string
}

// strikeTailCols are the tail columns the radiation-strike experiments
// declare: the upper quantiles and the expected shortfall of the
// per-batch rate stream.
var strikeTailCols = []string{"q90", "q99", "cvar90"}

// Experiments lists every experiment in presentation order. Experiments
// that declare TailCols have their run function wrapped so every config
// they receive carries the tail-sensitivity hint down to sweep points.
func Experiments() []Experiment {
	wrap := func(f func(Config) *Table) func(Config) (*Table, error) {
		return func(c Config) (*Table, error) { return f(c), nil }
	}
	exps := []Experiment{
		{"fig3", "temporal decay T(t) and its step approximation", wrap(Fig3), false, nil},
		{"fig4", "spatial decay S(d) over architecture distance", wrap(Fig4), false, nil},
		{"fig5", "logical error landscape: noise x radiation", Fig5, true, strikeTailCols},
		{"fig6", "criticality by code distance (single erasure)", Fig6, true, strikeTailCols},
		{"fig7", "correlated spread vs independent erasures", Fig7, true, strikeTailCols},
		{"fig8", "per-qubit criticality across architectures", Fig8, true, strikeTailCols},
		{"fig8summary", "architecture comparison summary", Fig8Summary, true, strikeTailCols},
		{"ablation-decoder", "blossom vs union-find vs greedy decoding", AblationDecoder, true, nil},
		{"ablation-ns", "temporal sample count sweep", AblationTemporalSamples, false, nil},
		{"ablation-layout", "initial layout strategy", AblationLayout, true, nil},
		{"ablation-rounds", "stabilization round count sweep", AblationRounds, false, nil},
		{"memory", "logical error vs rounds at fixed distance (space-time decoding)", Memory, true, strikeTailCols},
		{"threshold", "intrinsic-noise baseline by distance (no radiation)", Threshold, false, nil},
		{"logical", "post-QEC logical-layer fault injection (future work)", LogicalLayer, true, nil},
	}
	for i := range exps {
		if len(exps[i].TailCols) == 0 {
			continue
		}
		run := exps[i].Run
		exps[i].Run = func(c Config) (*Table, error) {
			c.TailSensitive = true
			return run(c)
		}
	}
	// Outermost guard: a sweep aborted by cancellation or an isolated
	// worker panic unwinds the figure builder as a runAbort, converted
	// here into the error Run reports. Any other panic — a genuine bug
	// in a builder — keeps propagating untouched.
	for i := range exps {
		run := exps[i].Run
		exps[i].Run = func(c Config) (t *Table, err error) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				ab, ok := r.(runAbort)
				if !ok {
					panic(r)
				}
				t, err = nil, ab.err
			}()
			return run(c)
		}
	}
	return exps
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
