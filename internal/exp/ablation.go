package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/frame"
	"radqec/internal/qec"
	"radqec/internal/stats"
)

// AblationDecoder compares the blossom MWPM decoder against the greedy
// matching baseline under a full-strength strike, quantifying what the
// optimal matcher buys.
func AblationDecoder(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: MWPM (blossom) vs greedy matching decoder",
		Header: []string{"code", "decoder", "logical_error"},
	}
	codes := []*qec.Code{}
	if c, err := cfg.repetition(15); err == nil {
		codes = append(codes, c)
	}
	if c, err := cfg.xxzz(3, 3); err == nil {
		codes = append(codes, c)
	}
	topo := arch.Mesh(5, 6)
	type decoder struct {
		name   string
		decode func([]int) int
		// decodeTile is the tile-parallel twin, for decoders that have
		// one (lane-for-lane identical); the rest decode lane-by-lane
		// when the batched engine runs the campaign.
		decodeTile frame.TileDecodeFunc
	}
	var (
		specs []pointSpec
		names []string
	)
	for ci, code := range codes {
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		ev := p.strikeAt(2, 1.0, true)
		// The three decoders read the same campaign at the same seed, so
		// they see identical shot streams and differ only in decoding.
		for _, dec := range []decoder{
			{"blossom", code.Decode, code.DecodeTile},
			{"union-find", code.DecodeUnionFind, code.DecodeUnionFindTile},
			{"greedy", code.DecodeGreedy, nil},
		} {
			s := p.spec(fmt.Sprintf("ablation-decoder/%s/%s", code.Name, dec.name),
				cfg, ev, cfg.Seed+uint64(ci))
			s.decode = dec.decode
			s.decodeTile = dec.decodeTile
			specs = append(specs, s)
			names = append(names, dec.name)
		}
	}
	results := runSpecs(cfg, specs)
	for i, r := range results {
		t.Add(codes[i/3].Name, names[i], pct(r.Rate()))
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}

// AblationTemporalSamples sweeps ns, the step-approximation resolution
// of the temporal decay (paper picks 10 as the accuracy/cost trade-off).
func AblationTemporalSamples(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: temporal sample count ns",
		Header: []string{"ns", "mean_logical_error_over_evolution"},
	}
	code, err := cfg.repetition(5)
	if err != nil {
		return nil, err
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		return nil, err
	}
	nsValues := []int{2, 5, 10, 20, 40}
	var specs []pointSpec
	for _, ns := range nsValues {
		sub := cfg
		sub.NS = ns
		specs = append(specs, p.evolutionSpecs(
			fmt.Sprintf("ablation-ns/ns%d", ns), sub, Fig5Root, true, cfg.Seed+uint64(ns))...)
	}
	results := runSpecs(cfg, specs)
	off := 0
	for _, ns := range nsValues {
		rates := resultRates(results[off : off+ns])
		off += ns
		t.Add(fmt.Sprintf("%d", ns), pct(stats.Mean(rates)))
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}

// AblationRounds sweeps the number of stabilization rounds: more rounds
// give the decoder more time-like context but also lengthen the
// radiation exposure window.
func AblationRounds(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: stabilization rounds",
		Header: []string{"code", "rounds", "logical_error_at_impact", "two_qubit_gates"},
	}
	topo := arch.Mesh(5, 6)
	rounds := []int{2, 3, 4, 6}
	var (
		specs   []pointSpec
		prepped []*prepared
	)
	for _, r := range rounds {
		code, err := qec.NewRepetitionRounds(15, r)
		if err != nil {
			return nil, err
		}
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		prepped = append(prepped, p)
		specs = append(specs, p.spec(
			fmt.Sprintf("ablation-rounds/r%d", r), cfg,
			p.strikeAt(12, 1.0, true), cfg.Seed+uint64(r)))
	}
	results := runSpecs(cfg, specs)
	for i, r := range results {
		t.Add(prepped[i].code.Name, fmt.Sprintf("%d", rounds[i]), pct(r.Rate()),
			fmt.Sprintf("%d", prepped[i].tr.Circuit.CountTwoQubit()))
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}

// AblationLayout compares the compact BFS initial layout against the
// trivial identity layout through routing overhead and logical error.
func AblationLayout(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: initial layout strategy (routing overhead)",
		Header: []string{"code", "architecture", "layout", "swaps", "logical_error_at_impact"},
	}
	code, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	topos := []arch.Topology{arch.Cairo(), arch.Brooklyn()}
	type variant struct {
		topo arch.Topology
		name string
		prep *prepared
	}
	var (
		specs    []pointSpec
		variants []variant
	)
	for ti, topo := range topos {
		for _, strat := range []struct {
			name string
			s    arch.LayoutStrategy
		}{{"compact", arch.LayoutCompact}, {"trivial", arch.LayoutTrivial}} {
			tr, err := arch.TranspileWithLayout(code.Circ, topo, strat.s)
			if err != nil {
				return nil, err
			}
			p := &prepared{code: code, tr: tr, dist: topo.Graph.AllPairsShortestPaths()}
			ev := p.strikeAt(tr.Initial.LogToPhys[2], 1.0, true)
			specs = append(specs, p.spec(
				fmt.Sprintf("ablation-layout/%s/%s", topo.Name, strat.name),
				cfg, ev, cfg.Seed+uint64(ti)*31))
			variants = append(variants, variant{topo, strat.name, p})
		}
	}
	results := runSpecs(cfg, specs)
	for i, r := range results {
		v := variants[i]
		t.Add(code.Name, v.topo.Name, v.name,
			fmt.Sprintf("%d", v.prep.tr.SwapCount), pct(r.Rate()))
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}
