package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/stats"
)

// AblationDecoder compares the blossom MWPM decoder against the greedy
// matching baseline under a full-strength strike, quantifying what the
// optimal matcher buys.
func AblationDecoder(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: MWPM (blossom) vs greedy matching decoder",
		Header: []string{"code", "decoder", "logical_error"},
	}
	codes := []*qec.Code{}
	if c, err := qec.NewRepetition(15); err == nil {
		codes = append(codes, c)
	}
	if c, err := qec.NewXXZZ(3, 3); err == nil {
		codes = append(codes, c)
	}
	topo := arch.Mesh(5, 6)
	for ci, code := range codes {
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		ev := p.strikeAt(2, 1.0, true)
		exec := inject.NewExecutor(p.tr.Circuit, noise.NewDepolarizing(cfg.P), ev)
		for _, dec := range []struct {
			name   string
			decode func([]int) int
		}{
			{"blossom", code.Decode},
			{"union-find", code.DecodeUnionFind},
			{"greedy", code.DecodeGreedy},
		} {
			camp := &inject.Campaign{
				Exec:     exec,
				Decode:   dec.decode,
				Expected: code.ExpectedLogical(),
				Workers:  cfg.Workers,
			}
			r := camp.Run(cfg.Seed+uint64(ci), cfg.Shots)
			t.Add(code.Name, dec.name, pct(r.Rate()))
		}
	}
	return t, nil
}

// AblationTemporalSamples sweeps ns, the step-approximation resolution
// of the temporal decay (paper picks 10 as the accuracy/cost trade-off).
func AblationTemporalSamples(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: temporal sample count ns",
		Header: []string{"ns", "mean_logical_error_over_evolution"},
	}
	code, err := qec.NewRepetition(5)
	if err != nil {
		return nil, err
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		return nil, err
	}
	for _, ns := range []int{2, 5, 10, 20, 40} {
		sub := cfg
		sub.NS = ns
		rates := p.evolutionRates(sub, Fig5Root, true, cfg.Seed+uint64(ns))
		t.Add(fmt.Sprintf("%d", ns), pct(stats.Mean(rates)))
	}
	return t, nil
}

// AblationRounds sweeps the number of stabilization rounds: more rounds
// give the decoder more time-like context but also lengthen the
// radiation exposure window.
func AblationRounds(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: stabilization rounds",
		Header: []string{"code", "rounds", "logical_error_at_impact", "two_qubit_gates"},
	}
	topo := arch.Mesh(5, 6)
	for _, rounds := range []int{2, 3, 4, 6} {
		code, err := qec.NewRepetitionRounds(15, rounds)
		if err != nil {
			return nil, err
		}
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		ev := p.strikeAt(12, 1.0, true)
		rate := p.rate(cfg, ev, cfg.Seed+uint64(rounds))
		t.Add(code.Name, fmt.Sprintf("%d", rounds), pct(rate),
			fmt.Sprintf("%d", p.tr.Circuit.CountTwoQubit()))
	}
	return t, nil
}

// AblationLayout compares the compact BFS initial layout against the
// trivial identity layout through routing overhead and logical error.
func AblationLayout(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Ablation: initial layout strategy (routing overhead)",
		Header: []string{"code", "architecture", "layout", "swaps", "logical_error_at_impact"},
	}
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		return nil, err
	}
	topos := []arch.Topology{arch.Cairo(), arch.Brooklyn()}
	for ti, topo := range topos {
		for _, strat := range []struct {
			name string
			s    arch.LayoutStrategy
		}{{"compact", arch.LayoutCompact}, {"trivial", arch.LayoutTrivial}} {
			tr, err := arch.TranspileWithLayout(code.Circ, topo, strat.s)
			if err != nil {
				return nil, err
			}
			p := &prepared{code: code, tr: tr, dist: topo.Graph.AllPairsShortestPaths()}
			ev := p.strikeAt(tr.Initial.LogToPhys[2], 1.0, true)
			rate := p.rate(cfg, ev, cfg.Seed+uint64(ti)*31)
			t.Add(code.Name, topo.Name, strat.name,
				fmt.Sprintf("%d", tr.SwapCount), pct(rate))
		}
	}
	return t, nil
}
