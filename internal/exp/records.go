package exp

import (
	"time"

	"radqec/internal/sweep"
)

// PointRecord is the streaming JSON view of one completed sweep point
// — the record the CLI's -json mode and the daemon's campaign stream
// both emit, so their outputs are field-for-field identical.
type PointRecord struct {
	Type       string  `json:"type"`
	Experiment string  `json:"experiment"`
	Key        string  `json:"key"`
	Shots      int     `json:"shots"`
	Errors     int     `json:"errors"`
	Rate       float64 `json:"rate"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	HalfWidth  float64 `json:"half_width"`
	Batches    int     `json:"batches"`
	Q50        float64 `json:"q50"`
	Q90        float64 `json:"q90"`
	Q99        float64 `json:"q99"`
	CVaR90     float64 `json:"cvar90"`
	Converged  bool    `json:"converged"`
	Cached     bool    `json:"cached,omitempty"`
}

// NewPointRecord projects a sweep result onto its streaming record.
func NewPointRecord(experiment string, r sweep.Result) PointRecord {
	return PointRecord{
		Type:       "point",
		Experiment: experiment,
		Key:        r.Key,
		Shots:      r.Shots,
		Errors:     r.Errors,
		Rate:       r.Rate(),
		CILo:       r.CILo,
		CIHi:       r.CIHi,
		HalfWidth:  r.HalfWidth(),
		Batches:    len(r.BatchRates),
		Q50:        r.Tail.Q50,
		Q90:        r.Tail.Q90,
		Q99:        r.Tail.Q99,
		CVaR90:     r.Tail.CVaR90,
		Converged:  r.Converged,
		Cached:     r.Cached,
	}
}

// TableRecord is the JSON view of a finished experiment table.
type TableRecord struct {
	Type       string     `json:"type"`
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	ElapsedMS  int64      `json:"elapsed_ms"`
}

// NewTableRecord projects a finished table onto its JSON record.
func NewTableRecord(experiment string, t *Table, elapsed time.Duration) TableRecord {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return TableRecord{
		Type:       "table",
		Experiment: experiment,
		Title:      t.Title,
		Header:     t.Header,
		Rows:       rows,
		Notes:      t.Notes,
		ElapsedMS:  elapsed.Milliseconds(),
	}
}
