package exp

import (
	"fmt"

	"radqec/internal/noise"
)

// Fig3 reproduces Figure 3: the temporal decay T(t) = e^{-10t} of the
// radiation-induced fault and its ns-sample step approximation T̂(t).
// The curve is closed-form, so unlike Figures 5-8 there is no campaign
// to sweep: the table tabulates the model directly and Config.CI has no
// effect.
func Fig3(cfg Config) *Table {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Figure 3: temporal decay of the radiation-induced fault",
		Header: []string{"t", "T(t)", "That(t)"},
	}
	const points = 50
	for i := 0; i <= points; i++ {
		tt := float64(i) / points
		t.Add(
			fmt.Sprintf("%.3f", tt),
			fmt.Sprintf("%.6f", noise.Temporal(tt)),
			fmt.Sprintf("%.6f", noise.TemporalStep(tt, cfg.NS)),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("gamma=%.0f, ns=%d equidistant samples; spike of 100%% at impact", noise.Gamma, cfg.NS))
	return t
}

// Fig4 reproduces Figure 4: the spatial decay S(d) = 1/(d+1)^2 of the
// deposited charge over architecture-graph distance from the root impact
// point, with the 100% peak at distance zero. Like Fig3 it is
// closed-form — no sweep campaign behind it.
func Fig4(cfg Config) *Table {
	t := &Table{
		Title:  "Figure 4: spatial decay of the radiation-induced fault",
		Header: []string{"distance", "S(d)"},
	}
	for d := 0; d <= 10; d++ {
		t.Add(fmt.Sprintf("%d", d), fmt.Sprintf("%.6f", noise.Spatial(d)))
	}
	t.Notes = append(t.Notes, "S(d)=n^2/(d+n)^2 with n=1; distances are architecture-graph hops")
	return t
}
