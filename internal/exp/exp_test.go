package exp

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"radqec/internal/arch"
	"radqec/internal/frame"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/stats"
	"radqec/internal/sweep"
)

// quickCfg keeps campaign sizes small enough for the test suite while
// leaving every qualitative shape resolvable.
var quickCfg = Config{Shots: 200, Seed: 12345}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Shots != 2000 || c.P != 0.01 || c.NS != 10 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Shots: 5, P: 0.3, NS: 4}.Defaults()
	if c.Shots != 5 || c.P != 0.3 || c.NS != 4 {
		t.Fatal("explicit values overridden")
	}
}

func TestTableWriteText(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"hello"},
	}
	tab.Add("1", "2")
	var buf bytes.Buffer
	tab.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"x", "y"}}
	tab.Add("1", `va"l,ue`)
	var buf bytes.Buffer
	tab.WriteCSV(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"va""l,ue"`) {
		t.Fatalf("csv escaping wrong: %q", out)
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3(Config{})
	if len(tab.Rows) != 51 {
		t.Fatalf("fig3 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1.000000" {
		t.Fatalf("T(0) = %s", tab.Rows[0][1])
	}
	// T strictly decreasing along the rows.
	prev := 2.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatal("T(t) not strictly decreasing")
		}
		prev = v
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(Config{})
	if len(tab.Rows) != 11 {
		t.Fatalf("fig4 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1.000000" {
		t.Fatalf("S(0) = %s", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "0.250000" {
		t.Fatalf("S(1) = %s", tab.Rows[1][1])
	}
}

func TestSubgraphEvent(t *testing.T) {
	ev := subgraphEvent(6, []int{1, 4}, 0.7)
	want := []float64{0, 0.7, 0, 0, 0.7, 0}
	for i, p := range ev.Probs {
		if p != want[i] {
			t.Fatalf("probs = %v", ev.Probs)
		}
	}
}

func TestPreparedHelpers(t *testing.T) {
	code, err := qec.NewRepetition(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.usedRoots()) < code.NumQubits() {
		t.Fatalf("used roots = %v", p.usedRoots())
	}
	// Clean campaign: no radiation, no noise -> zero error.
	cfg := quickCfg
	cfg.P = 1e-12
	rate := p.rate(cfg.Defaults(), noise.NoRadiation(p.tr.Circuit.NumQubits), 1)
	if rate != 0 {
		t.Fatalf("clean rate = %v", rate)
	}
}

func TestSampleUsedSubgraphsStayInUsedSet(t *testing.T) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, q := range p.usedRoots() {
		used[q] = true
	}
	subs := p.sampleUsedSubgraphs(5, 10, rng.New(3))
	if len(subs) == 0 {
		t.Fatal("no subgraphs sampled")
	}
	for _, s := range subs {
		if len(s) != 5 {
			t.Fatalf("size = %d", len(s))
		}
		for _, q := range s {
			if !used[q] {
				t.Fatalf("subgraph leaked outside used set: %v", s)
			}
		}
	}
}

// --- Sweep-engine integration ---

// The fixed-vs-adaptive equivalence guarantee, half one: at fixed-shot
// settings a sweep-backed rate equals the direct campaign run, because
// batches partition the same seed-derived shot streams (per-shot streams
// for the scalar engines, per-word streams for the batched one).
func TestFixedSweepMatchesDirectCampaign(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg.Defaults()
	ev := p.strikeAt(Fig5Root, 1.0, true)

	tabCfg := cfg
	tabCfg.Engine = EngineTableau
	camp := &inject.Campaign{
		Exec:     inject.NewExecutor(p.tr.Circuit, noise.NewDepolarizing(cfg.P), ev),
		Decode:   code.Decode,
		Expected: code.ExpectedLogical(),
	}
	if got, want := p.rate(tabCfg, ev, 77), camp.Run(77, cfg.Shots).Rate(); got != want {
		t.Fatalf("tableau sweep rate %v != direct campaign rate %v", got, want)
	}

	batchCfg := cfg
	batchCfg.Engine = EngineBatch
	bcamp := &frame.BatchCampaign{
		Sim:         frame.NewBatch(p.tr.Circuit, noise.NewDepolarizing(cfg.P), ev, 77),
		DecodeBatch: code.DecodeBatch,
		Expected:    code.ExpectedLogical(),
	}
	if got, want := p.rate(batchCfg, ev, 77), bcamp.Run(77, cfg.Shots).Rate(); got != want {
		t.Fatalf("batched sweep rate %v != direct batched campaign rate %v", got, want)
	}
}

// EngineAuto must route every circuit — the repetition family AND the
// XXZZ family — to the batched engine (the universal frame engine
// covers the full Clifford set), and the batched rates must agree with
// the tableau oracle statistically.
func TestEngineAutoSelection(t *testing.T) {
	rep, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	pRep, err := prepare(rep, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	xxzz, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pXX, err := prepare(xxzz, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := pRep.spec("", quickCfg, nil, 1).engineFor(EngineAuto); got != EngineBatch {
		t.Fatalf("auto picked %q for repetition", got)
	}
	if got := pXX.spec("", quickCfg, nil, 1).engineFor(""); got != EngineBatch {
		t.Fatalf("auto picked %q for XXZZ", got)
	}

	// Cross-engine agreement: the batched rate must land inside the
	// tableau campaign's Wilson interval, on a radiation-exact
	// repetition strike and on a depolarizing-only XXZZ campaign (both
	// exact domains of the universal engine).
	cfg := quickCfg.Defaults()
	cfg.Shots = 3000
	tabCfg := cfg
	tabCfg.Engine = EngineTableau
	batchCfg := cfg
	batchCfg.Engine = EngineBatch
	ev := pRep.strikeAt(Fig5Root, 1.0, true)
	tab := p0RateCounts(t, tabCfg, pRep, ev, 5)
	lo, hi := stats.WilsonCI(tab.Errors, tab.Shots)
	batch := p0RateCounts(t, batchCfg, pRep, ev, 5)
	if r := batch.Rate(); r < lo || r > hi {
		t.Fatalf("batched rate %v outside tableau Wilson interval [%v, %v]", r, lo, hi)
	}
	depCfg := cfg
	depCfg.P = 0.03
	tabCfg, batchCfg = depCfg, depCfg
	tabCfg.Engine = EngineTableau
	batchCfg.Engine = EngineBatch
	clean := noise.NoRadiation(pXX.tr.Circuit.NumQubits)
	tab = p0RateCounts(t, tabCfg, pXX, clean, 7)
	lo, hi = stats.WilsonCI(tab.Errors, tab.Shots)
	batch = p0RateCounts(t, batchCfg, pXX, clean, 7)
	if r := batch.Rate(); r < lo || r > hi {
		t.Fatalf("XXZZ batched rate %v outside tableau Wilson interval [%v, %v]", r, lo, hi)
	}
	if tab.Errors == 0 || batch.Errors == 0 {
		t.Fatalf("XXZZ depolarizing campaign saw no errors (tableau %d, batch %d)", tab.Errors, batch.Errors)
	}
}

// p0RateCounts runs a single-point sweep and returns its counts.
func p0RateCounts(t *testing.T, cfg Config, p *prepared, ev *noise.RadiationEvent, seed uint64) sweep.Counts {
	t.Helper()
	res := runSpecs(cfg, []pointSpec{p.spec("", cfg, ev, seed)})
	return res[0].Counts
}

// The satellite determinism regression at the experiment level: the
// same figure swept with 1 and with 8 workers must produce identical
// tables, in fixed and in adaptive mode.
func TestSweepWorkerDeterminism(t *testing.T) {
	run := func(cfg Config) *Table {
		tab, err := Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	for _, cfg := range []Config{
		{Shots: 30, Seed: 9, NS: 2},
		{Seed: 9, NS: 2, CI: 0.12},
	} {
		one := cfg
		one.Workers = 1
		eight := cfg
		eight.Workers = 8
		a, b := run(one), run(eight)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ci=%v: workers=1 and workers=8 tables differ:\n%v\nvs\n%v", cfg.CI, a, b)
		}
	}
}

// The adaptive acceptance check, scaled down: with a CI target, fig6
// finishes under the fixed-shot budget that guarantees the same
// precision, and every point ends within the target half-width.
func TestAdaptiveFig6SavesShots(t *testing.T) {
	// The target sits so the worst-case guarantee (~600 shots) exceeds
	// one tile-aligned batch (frame.TileShots = 512): points whose rate
	// converges inside the first batch stop there, and the saving is
	// visible above the batch quantisation.
	const ci = 0.04
	var results []sweep.Result
	cfg := Config{Seed: 3, CI: ci, OnPoint: func(r sweep.Result) {
		results = append(results, r)
	}}
	if _, err := Fig6(cfg); err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no points streamed")
	}
	total := 0
	for _, r := range results {
		total += r.Shots
		if r.HalfWidth() > ci {
			t.Fatalf("point %s half-width %v above target %v", r.Key, r.HalfWidth(), ci)
		}
	}
	if fixed := sweep.WorstCaseShots(ci) * len(results); total >= fixed {
		t.Fatalf("adaptive spent %d shots, fixed guarantee costs %d", total, fixed)
	}
}

// --- Observation tests: the paper's qualitative claims ---

// Observation I: particle impacts undermine surface codes regardless of
// the intrinsic physical error rate. Even at p=1e-8 the logical error at
// impact stays high.
func TestObservationI(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg.Defaults()
	cfg.Shots = 400
	cfg.P = 1e-8
	ev := p.strikeAt(Fig5Root, 1.0, true)
	rate := p.rate(cfg, ev, 9)
	if rate < 0.10 {
		t.Fatalf("impact logical error at p=1e-8 = %v, want >= 10%%", rate)
	}
}

// Observation II: noise and radiation interfere constructively only —
// cranking the physical error rate up never lowers the logical error
// (within statistical margin). Tested on the paper's Figure 5a setup,
// whose rates sit below the 50% saturation point; above saturation any
// extra randomness regresses toward a coin flip (see EXPERIMENTS.md).
func TestObservationII(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg.Defaults()
	cfg.Shots = 500
	ev := p.strikeAt(Fig5Root, 1.0, true)
	cfg.P = 1e-8
	quiet := p.rate(cfg, ev, 11)
	cfg.P = 1e-1
	loud := p.rate(cfg, ev, 11)
	if loud < quiet-0.05 {
		t.Fatalf("noise lowered the logical error: p=1e-1 %.3f vs p=1e-8 %.3f", loud, quiet)
	}
	// And on the quiet tail of the fault, noise alone must still raise
	// the error floor.
	tail := p.strikeAt(Fig5Root, noise.Temporal(0.9), true)
	cfg.P = 1e-8
	tailQuiet := p.rate(cfg, tail, 13)
	cfg.P = 1e-1
	tailLoud := p.rate(cfg, tail, 13)
	if tailLoud <= tailQuiet {
		t.Fatalf("intrinsic noise floor missing: %.3f vs %.3f", tailLoud, tailQuiet)
	}
}

// Observation III (XXZZ family): larger codes are more sensitive to the
// same fault intensity — (3,5) degrades versus (3,3).
func TestObservationIII(t *testing.T) {
	topo := arch.Mesh(5, 6)
	cfg := quickCfg.Defaults()
	med := func(dZ, dX int) float64 {
		code, err := qec.NewXXZZ(dZ, dX)
		if err != nil {
			t.Fatal(err)
		}
		p, err := prepare(code, topo)
		if err != nil {
			t.Fatal(err)
		}
		var rates []float64
		for ri, root := range p.usedRoots() {
			ev := p.strikeAt(root, 1.0, false)
			rates = append(rates, p.rate(cfg, ev, uint64(1000+ri)))
		}
		return stats.Median(rates)
	}
	small, large := med(3, 3), med(3, 5)
	if large <= small {
		t.Fatalf("xxzz-(3,5) (%.3f) should exceed xxzz-(3,3) (%.3f)", large, small)
	}
}

// Observation IV: bit-flip protection beats phase-flip protection for
// like-sized codes under reset faults: (3,1) < (1,3) and (5,3) < (3,5).
func TestObservationIV(t *testing.T) {
	topo := arch.Mesh(5, 6)
	cfg := quickCfg.Defaults()
	med := func(dZ, dX int) float64 {
		code, err := qec.NewXXZZ(dZ, dX)
		if err != nil {
			t.Fatal(err)
		}
		p, err := prepare(code, topo)
		if err != nil {
			t.Fatal(err)
		}
		var rates []float64
		for ri, root := range p.usedRoots() {
			ev := p.strikeAt(root, 1.0, false)
			rates = append(rates, p.rate(cfg, ev, uint64(2000+ri)))
		}
		return stats.Median(rates)
	}
	if bit, phase := med(3, 1), med(1, 3); bit >= phase {
		t.Fatalf("xxzz-(3,1) (%.3f) should beat xxzz-(1,3) (%.3f)", bit, phase)
	}
	if bit, phase := med(5, 3), med(3, 5); bit >= phase {
		t.Fatalf("xxzz-(5,3) (%.3f) should beat xxzz-(3,5) (%.3f)", bit, phase)
	}
}

// Observations V and VI: a single spreading fault is worse than several
// independent erasures; only erasing more than half the qubits overtakes
// it (the threshold effect).
func TestObservationVVI(t *testing.T) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg.Defaults()
	// The batched engine's collapsed-branch approximation compresses the
	// spread-vs-erasure gap on XXZZ (both regimes sit nearer the coin
	// under saturating strikes), so this ordering needs more statistics
	// than the other observations — cheap now that the campaign rides
	// the bit-parallel engine.
	cfg.Shots = 3000
	// Spreading strike at a data-heavy root.
	ev := p.strikeAt(p.usedRoots()[0], 1.0, true)
	spread := p.rate(cfg, ev, 31)
	// A couple of independent erasures.
	src := rng.New(17)
	subs := p.sampleUsedSubgraphs(2, 6, src)
	var small []float64
	for si, members := range subs {
		small = append(small, p.rate(cfg, subgraphEvent(p.tr.Circuit.NumQubits, members, 1.0), uint64(40+si)))
	}
	if spread <= stats.Median(small) {
		t.Fatalf("spreading fault (%.3f) should exceed 2-qubit erasures (%.3f)", spread, stats.Median(small))
	}
	// Erasing most of the chip overtakes the single spreading fault.
	bigSubs := p.sampleUsedSubgraphs(15, 4, src)
	var big []float64
	for si, members := range bigSubs {
		big = append(big, p.rate(cfg, subgraphEvent(p.tr.Circuit.NumQubits, members, 1.0), uint64(60+si)))
	}
	if stats.Median(big) <= spread {
		t.Fatalf("15-qubit erasure (%.3f) should exceed the single spreading fault (%.3f)", stats.Median(big), spread)
	}
}

// Observation VII: qubits used earlier in the gate sequence are more
// critical radiation targets than ones used later.
func TestObservationVII(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg.Defaults()
	cfg.Shots = 400
	// Strike the physical home of the first-used data qubit versus the
	// last-used data qubit, with full spread and time evolution.
	first := p.tr.Initial.LogToPhys[code.Data.Start]
	last := p.tr.Initial.LogToPhys[code.Data.Start+code.Data.Size-1]
	early := stats.Mean(p.evolutionRates(cfg, first, true, 71))
	late := stats.Mean(p.evolutionRates(cfg, last, true, 72))
	if early < late-0.05 {
		t.Fatalf("early-qubit strike (%.3f) should not be milder than late-qubit strike (%.3f)", early, late)
	}
}

// Observation VIII: degree-starved topologies inflate SWAP counts for
// the XXZZ code (whose stabilizers need degree >= 4), and well-connected
// ones contain the fault spread.
func TestObservationVIII(t *testing.T) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	trLinear, err := arch.Transpile(code.Circ, arch.Linear(18))
	if err != nil {
		t.Fatal(err)
	}
	trComplete, err := arch.Transpile(code.Circ.Clone(), arch.Complete(18))
	if err != nil {
		t.Fatal(err)
	}
	if trLinear.SwapCount <= trComplete.SwapCount {
		t.Fatalf("linear swaps (%d) should exceed complete swaps (%d)",
			trLinear.SwapCount, trComplete.SwapCount)
	}
	if trComplete.SwapCount != 0 {
		t.Fatalf("complete topology required %d swaps", trComplete.SwapCount)
	}
}

// The ablation harnesses must run and produce full tables.
func TestAblationsRun(t *testing.T) {
	cfg := Config{Shots: 60, Seed: 5}
	if tab, err := AblationDecoder(cfg); err != nil || len(tab.Rows) != 6 {
		t.Fatalf("decoder ablation: %v rows=%d", err, len(tab.Rows))
	}
	if tab, err := AblationTemporalSamples(cfg); err != nil || len(tab.Rows) != 5 {
		t.Fatalf("ns ablation: %v", err)
	}
	if tab, err := AblationLayout(cfg); err != nil || len(tab.Rows) != 4 {
		t.Fatalf("layout ablation: %v", err)
	}
	if tab, err := AblationRounds(cfg); err != nil || len(tab.Rows) != 4 {
		t.Fatalf("rounds ablation: %v", err)
	}
}

func TestFig5RunsSmall(t *testing.T) {
	tab, err := Fig5(Config{Shots: 20, Seed: 2, NS: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 2 codes x 8 rates x 3 samples.
	if len(tab.Rows) != 48 {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
}

func TestFig6RunsSmall(t *testing.T) {
	tab, err := Fig6(Config{Shots: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
}

func TestFig7RunsSmall(t *testing.T) {
	tab, err := Fig7(Config{Shots: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
}

func TestFig8SummaryRunsSmall(t *testing.T) {
	tab, err := Fig8Summary(Config{Shots: 5, Seed: 2, NS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5 repetition topologies + 7 xxzz topologies.
	if len(tab.Rows) != 12 {
		t.Fatalf("fig8 rows = %d", len(tab.Rows))
	}
}

func TestMemoryExperiment(t *testing.T) {
	cfg := quickCfg
	cfg.Shots = 128
	tab, err := Memory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("memory table is empty")
	}
	// Every entry's sweep must include the paper's 2 rounds and the
	// rounds=d memory point, and deepening the memory must not shrink
	// the impact-column error for the repetition families.
	sawRounds := map[string]map[string]bool{}
	for _, row := range tab.Rows {
		code, rounds := row[1], row[2]
		if sawRounds[code] == nil {
			sawRounds[code] = map[string]bool{}
		}
		sawRounds[code][rounds] = true
	}
	for code, want := range map[string]string{
		"rep-(5,1)": "5", "rep-(9,1)": "9", "xxzz-(3,3)": "3",
	} {
		if !sawRounds[code]["2"] {
			t.Fatalf("%s sweep misses the 2-round baseline: %v", code, sawRounds[code])
		}
		if !sawRounds[code][want] {
			t.Fatalf("%s sweep misses the rounds=d point: %v", code, sawRounds[code])
		}
	}
}

func TestMemoryRoundsSweep(t *testing.T) {
	cfg := Config{Rounds: 11}.Defaults()
	rounds := memoryRounds(cfg, 5)
	seen := map[int]bool{}
	last := 1
	for _, r := range rounds {
		if r <= last {
			t.Fatalf("rounds not strictly increasing: %v", rounds)
		}
		last = r
		seen[r] = true
	}
	for _, want := range []int{2, 5, 11} {
		if !seen[want] {
			t.Fatalf("rounds sweep %v misses %d", rounds, want)
		}
	}
}

func TestConfigRoundsFlowsIntoFigureCodes(t *testing.T) {
	cfg := quickCfg
	cfg.Rounds = 3
	cfg.Shots = 64
	cfg = cfg.Defaults()
	c, err := cfg.repetition(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != 3 {
		t.Fatalf("cfg.repetition built %d rounds, want 3", c.Rounds)
	}
	x, err := cfg.xxzz(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rounds != 3 {
		t.Fatalf("cfg.xxzz built %d rounds, want 3", x.Rounds)
	}
	// A full figure runs end-to-end at 3 rounds.
	if _, err := Threshold(cfg); err != nil {
		t.Fatal(err)
	}
}
