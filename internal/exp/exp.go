// Package exp implements one experiment per figure of the paper's
// evaluation (Figures 3-8), on top of the code builders, the
// transpiler, the fault injector and the MWPM decoder. Every experiment
// returns a Table whose rows reproduce the series the figure plots.
package exp

import (
	"fmt"
	"io"
	"strings"

	"radqec/internal/arch"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/stats"
)

// Config controls campaign sizes and reproducibility.
type Config struct {
	// Shots per measured point. The paper uses millions; the default
	// (2000) already resolves every qualitative shape.
	Shots int
	// Seed makes campaigns reproducible; distinct points derive
	// distinct streams from it.
	Seed uint64
	// Workers caps shot parallelism; 0 means GOMAXPROCS.
	Workers int
	// P is the intrinsic physical error rate (Section IV-C fixes 1%).
	P float64
	// NS is the temporal sample count of the step decay (paper: 10).
	NS int
}

// Defaults returns cfg with unset fields replaced by the paper's
// defaults.
func (c Config) Defaults() Config {
	if c.Shots <= 0 {
		c.Shots = 2000
	}
	if c.P == 0 {
		c.P = 0.01
	}
	if c.NS <= 0 {
		c.NS = noise.DefaultSamples
	}
	return c
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry observations derived from the rows.
	Notes []string
}

// Add appends a formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as comma-separated values.
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// pct formats a rate as a percentage.
func pct(r float64) string { return fmt.Sprintf("%.2f%%", 100*r) }

// prepared couples a code with its routed circuit on a topology.
type prepared struct {
	code *qec.Code
	tr   *arch.Transpiled
	dist [][]int // all-pairs distances of the topology
}

func prepare(code *qec.Code, topo arch.Topology) (*prepared, error) {
	tr, err := arch.Transpile(code.Circ, topo)
	if err != nil {
		return nil, err
	}
	return &prepared{code: code, tr: tr, dist: topo.Graph.AllPairsShortestPaths()}, nil
}

// campaign builds the injection campaign for a radiation event.
func (p *prepared) campaign(cfg Config, ev *noise.RadiationEvent) *inject.Campaign {
	return &inject.Campaign{
		Exec:     inject.NewExecutor(p.tr.Circuit, noise.NewDepolarizing(cfg.P), ev),
		Decode:   p.code.Decode,
		Expected: p.code.ExpectedLogical(),
		Workers:  cfg.Workers,
	}
}

// rate estimates the logical error rate under one radiation event.
func (p *prepared) rate(cfg Config, ev *noise.RadiationEvent, seed uint64) float64 {
	return p.campaign(cfg, ev).Run(seed, cfg.Shots).Rate()
}

// strikeAt builds the radiation event for a strike rooted at physical
// qubit root with the given root probability.
func (p *prepared) strikeAt(root int, rootProb float64, spread bool) *noise.RadiationEvent {
	return noise.NewRadiationEvent(p.dist[root], rootProb, spread)
}

// evolutionRates returns the per-temporal-sample logical error rates of
// a full strike evolution rooted at the given physical qubit.
func (p *prepared) evolutionRates(cfg Config, root int, spread bool, seed uint64) []float64 {
	samples := noise.TemporalSamples(cfg.NS)
	rates := make([]float64, len(samples))
	for k, rootProb := range samples {
		ev := p.strikeAt(root, rootProb, spread)
		rates[k] = p.rate(cfg, ev, seed+uint64(k)*7919)
	}
	return rates
}

// usedRoots returns the physical qubits hosting circuit activity, the
// candidate strike roots.
func (p *prepared) usedRoots() []int { return p.tr.Used() }

// medianOverRoots computes, per root, the median-over-time logical error
// of a full strike evolution, returning roots and their medians.
func (p *prepared) medianOverRoots(cfg Config, seed uint64) ([]int, []float64) {
	roots := p.usedRoots()
	medians := make([]float64, len(roots))
	for i, root := range roots {
		rates := p.evolutionRates(cfg, root, true, seed+uint64(i)*104729)
		medians[i] = stats.Median(rates)
	}
	return roots, medians
}

// subgraphEvent builds the "hypernode" event of Figures 6-7: every qubit
// in the member set is reset with probability rootProb, nothing spreads.
func subgraphEvent(numQubits int, members []int, rootProb float64) *noise.RadiationEvent {
	probs := make([]float64, numQubits)
	for _, q := range members {
		probs[q] = rootProb
	}
	return &noise.RadiationEvent{Probs: probs}
}

// sampleUsedSubgraphs samples connected size-k subgraphs of the topology
// restricted to the used physical qubits.
func (p *prepared) sampleUsedSubgraphs(k, count int, src *rng.Source) [][]int {
	used := p.usedRoots()
	idx := make(map[int]int, len(used))
	for i, q := range used {
		idx[q] = i
	}
	sub := newInducedGraph(p.tr, used, idx)
	samples := sub.SampleConnectedSubgraphs(k, count, src)
	out := make([][]int, len(samples))
	for i, s := range samples {
		mapped := make([]int, len(s))
		for j, v := range s {
			mapped[j] = used[v]
		}
		out[i] = mapped
	}
	return out
}
