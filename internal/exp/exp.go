// Package exp implements one experiment per figure of the paper's
// evaluation (Figures 3-8), on top of the code builders, the
// transpiler, the fault injector and the MWPM decoder. Every experiment
// returns a Table whose rows reproduce the series the figure plots.
//
// Experiments no longer run their own shot loops: each figure emits
// sweep-point specs — one injection campaign per measured point — and
// the sweep engine fans them across workers, fixed-shot by default or
// with adaptive Wilson-interval allocation when Config.CI is set. At
// fixed-shot settings the output is byte-identical to the classic
// per-figure loops, because every point consumes the same seed-derived
// shot streams.
package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"radqec/internal/arch"
	"radqec/internal/control"
	"radqec/internal/core"
	"radqec/internal/frame"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/stats"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/telemetry"
	"radqec/internal/trace"
)

// Simulation engine names for Config.Engine, shared with the core
// façade (see the core package for per-engine cost and validity).
const (
	EngineAuto    = core.EngineAuto
	EngineTableau = core.EngineTableau
	EngineFrame   = core.EngineFrame
	EngineBatch   = core.EngineBatch
)

// Syndrome decoder names for Config.Decoder, shared with the core
// façade.
const (
	DecoderMWPM = core.DecoderMWPM
	DecoderUF   = core.DecoderUF
)

// Engines lists the recognised Config.Engine values.
func Engines() []string { return core.Engines() }

// Decoders lists the recognised Config.Decoder values.
func Decoders() []string { return core.Decoders() }

// Config controls campaign sizes and reproducibility.
type Config struct {
	// Context, when set, bounds every sweep the experiment runs:
	// cancellation is observed at policy-batch boundaries, in-flight
	// points flush their partial progress to Cache as checkpoints, and
	// Experiment.Run returns the cancellation cause — so a resubmitted
	// campaign resumes byte-identically. nil means Background (never
	// cancelled), the classic behaviour.
	Context context.Context
	// Shots per measured point. The paper uses millions; the default
	// (2000) already resolves every qualitative shape.
	Shots int
	// Seed makes campaigns reproducible; distinct points derive
	// distinct streams from it.
	Seed uint64
	// Workers caps shot parallelism; 0 means GOMAXPROCS.
	Workers int
	// P is the intrinsic physical error rate (Section IV-C fixes 1%).
	P float64
	// NS is the temporal sample count of the step decay (paper: 10).
	NS int
	// CI, when positive, switches every measured point to adaptive
	// shot allocation: batches are added until the Wilson 95%
	// half-width of the point's rate is at most CI (or MaxShots is
	// reached). Zero keeps the classic fixed-shot campaigns.
	CI float64
	// MaxShots caps adaptive allocation per point; 0 picks the
	// worst-case fixed count that guarantees CI at any rate.
	MaxShots int
	// OnPoint, when set, observes every completed sweep point as it
	// finishes — the hook behind the CLI's streaming JSON output.
	OnPoint func(sweep.Result)
	// Engine selects the simulation engine (EngineAuto, EngineTableau,
	// EngineFrame or EngineBatch); empty means EngineAuto. Unrecognised
	// names panic when the sweep is built — programmer error, like the
	// probability guards in package noise; the CLI validates its flag
	// first, and library callers can pre-check with core.ResolveEngine.
	Engine string
	// Decoder selects the syndrome decoder for every spec that does not
	// override its decode function (DecoderMWPM or DecoderUF); empty
	// means DecoderMWPM. Unrecognised names panic like Engine; the CLI
	// validates its flag first.
	Decoder string
	// Width selects the batched engine's tile width by name ("",
	// core.WidthAuto, "64", "256" or "512"); empty means auto (the
	// widest tile whose frame state fits the cache budget — see
	// core.AutoWidth). Width never changes results, only throughput:
	// shot i always lives in lane i%64 of absolute word i/64, and tiles
	// group words on the absolute word grid. Unrecognised names panic
	// like Engine; the CLI validates its flag first.
	Width string
	// Rounds is the number of stabilization rounds every figure builds
	// its codes with (0 means the paper's 2). The memory experiment
	// sweeps rounds itself and treats this as the sweep's deepest point.
	Rounds int
	// Cache, when set, persists every sweep point under its canonical
	// spec hash (see specFingerprint): committed points are served
	// without re-running the engine, and batch-boundary checkpoints
	// leave interrupted campaigns resumable. The disk-backed
	// implementation is store.Store.
	Cache sweep.PointCache
	// Resume consumes partial checkpoints from Cache, restarting
	// interrupted points at their last batch boundary instead of shot
	// zero. Committed points are served regardless of Resume.
	Resume bool
	// Scheduler, when set, runs every sweep on this shared worker pool
	// — the daemon sets it so concurrent client campaigns share one CPU
	// budget fairly instead of oversubscribing.
	Scheduler *sweep.Scheduler
	// Remote, when set alongside Cache, shards every sweep's points
	// across a fabric of daemon nodes by content hash: remotely-owned
	// points park until the owner's committed result is read through
	// into Cache (or the owner dies and the point computes locally).
	// Results are byte-identical with or without it — remote points
	// replay via the same CachedPoint path a warm local cache uses.
	Remote sweep.RemoteResolver
	// Control, when set and enabled, runs every sweep under the scoring
	// controller: scored batch chunking, tail-aware point priorities,
	// weighted campaign shares and in-flight single-flight. Results are
	// byte-identical with it on or off (the sweep determinism contract).
	Control *control.Policy
	// Telemetry, when set, receives per-chunk signals, counters and
	// controller gauges for the experiment's sweeps — the ring behind
	// the daemon's signals stream and the CLI's -stats report.
	Telemetry *telemetry.Campaign
	// TailSensitive marks every measured point's tail statistics (the
	// CVaR/quantile columns) as the quantity of interest, steering the
	// controller's shot allocation. Experiment.Run sets it from the
	// registry's TailCols declaration; setting it by hand is a harmless
	// scheduling hint.
	TailSensitive bool
	// Trace, when sampled, is the campaign's root span context: sweeps
	// record point/chunk/commit spans under it and the engine's decode
	// share is timed into per-chunk decode spans. Like Telemetry it is
	// pure mechanism — deliberately absent from specFingerprint, so
	// tracing never perturbs results or content addresses.
	Trace trace.SpanContext
}

// repetition builds the repetition code at the configured memory depth.
func (c Config) repetition(d int) (*qec.Code, error) {
	return qec.NewRepetitionRounds(d, c.Rounds)
}

// xxzz builds the XXZZ code at the configured memory depth.
func (c Config) xxzz(dZ, dX int) (*qec.Code, error) {
	return qec.NewXXZZRounds(dZ, dX, c.Rounds)
}

// DecoderName returns the decoder that will actually decode the
// config's default-decoder specs ("" resolves to DecoderMWPM), for
// labelling sweep-point keys and table notes.
func (c Config) DecoderName() string {
	if c.Decoder == "" {
		return DecoderMWPM
	}
	return c.Decoder
}

// Defaults returns cfg with unset fields replaced by the paper's
// defaults.
func (c Config) Defaults() Config {
	if c.Shots <= 0 {
		c.Shots = 2000
	}
	if c.P == 0 {
		c.P = 0.01
	}
	if c.NS <= 0 {
		c.NS = noise.DefaultSamples
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	return c
}

// sweepConfig maps the experiment configuration onto the sweep engine.
// Batches are always aligned to the batched engine's widest tile
// (frame.TileShots) — bit-parallel campaigns fill whole tiles at every
// width, and every engine and width sees the same chunking, so
// `-engine auto`, an explicit engine, and any `-engine-width` produce
// identical output (tables and tail columns alike) for the points they
// resolve alike. Alignment never changes merged counts (the
// BatchRunner contract), only how the work is chunked into the
// per-batch tail statistics.
func (c Config) sweepConfig() sweep.Config {
	return sweep.Config{
		Policy: sweep.Policy{
			Shots:    c.Shots,
			CI:       c.CI,
			MaxShots: c.MaxShots,
			Align:    frame.TileShots,
		},
		Mechanism: sweep.Mechanism{
			Workers:   c.Workers,
			OnResult:  c.OnPoint,
			Cache:     c.Cache,
			Resume:    c.Resume,
			Scheduler: c.Scheduler,
			Remote:    c.Remote,
			Control:   c.Control,
			Telemetry: c.Telemetry,
			Trace:     c.Trace,
		},
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry observations derived from the rows.
	Notes []string
}

// Add appends a formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as comma-separated values.
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// pct formats a rate as a percentage.
func pct(r float64) string { return fmt.Sprintf("%.2f%%", 100*r) }

// prepared couples a code with its routed circuit on a topology. Every
// prepared circuit is batch-eligible: the universal frame engine covers
// the full Clifford set, so EngineAuto rides the bit-parallel path for
// all of them (radiation resets on superposed XXZZ sites carry the
// collapsed-branch approximation documented in package frame; pass
// EngineTableau for the exact oracle).
type prepared struct {
	code *qec.Code
	tr   *arch.Transpiled
	dist [][]int // all-pairs distances of the topology
	// dump memoises the circuit's canonical serialization for
	// fingerprinting — a figure shares one prepared circuit across its
	// whole point grid, so it is dumped once, not per point. Filled
	// lazily from runSpecs' single goroutine (before the sweep fans
	// out), so no locking is needed.
	dump string
}

// circuitDump returns the memoised canonical circuit serialization.
func (p *prepared) circuitDump() string {
	if p.dump == "" {
		p.dump = p.tr.Circuit.String()
	}
	return p.dump
}

func prepare(code *qec.Code, topo arch.Topology) (*prepared, error) {
	tr, err := arch.Transpile(code.Circ, topo)
	if err != nil {
		return nil, err
	}
	return &prepared{
		code: code,
		tr:   tr,
		dist: topo.Graph.AllPairsShortestPaths(),
	}, nil
}

// pointSpec is the sweep-point spec a figure emits: one injection
// campaign — the prepared circuit under intrinsic noise at rate phys
// plus one radiation event, read by one decoder — measured at one seed.
type pointSpec struct {
	key    string
	prep   *prepared
	phys   float64
	ev     *noise.RadiationEvent
	decode func(bits []int) int // nil selects the code's MWPM decoder
	// decodeTile is the tile-parallel twin of decode for the batched
	// engine; nil falls back to the code's DecodeTile (when decode is
	// nil) or a lane-unpacking adapter around decode.
	decodeTile frame.TileDecodeFunc
	seed       uint64
}

// engineFor resolves the configured engine for this spec through the
// shared core.ResolveEngine policy. Unknown names panic, matching the
// fail-fast validation of core.NewSimulator (the CLI validates before
// this).
func (s pointSpec) engineFor(engine string) string {
	eng, err := core.ResolveEngine(engine)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return eng
}

// spec builds the spec measuring one radiation event at cfg's intrinsic
// rate.
func (p *prepared) spec(key string, cfg Config, ev *noise.RadiationEvent, seed uint64) pointSpec {
	return pointSpec{key: key, prep: p, phys: cfg.P, ev: ev, seed: seed}
}

// fingerprintVersion versions the canonical spec serialization. Bump
// it whenever the meaning of a cached result changes — a new
// allocation policy, a different engine shot-stream contract — so a
// stale store misses instead of serving results computed under
// different semantics.
const fingerprintVersion = 1

// specFingerprint is the canonical serialized identity of one sweep
// point: everything that determines its result — the routed circuit,
// the fault, the seed, the resolved engine and decoder, and the full
// shot-allocation policy. Hashing goes through store.CanonicalHash, so
// the address depends only on the values, never on field order or the
// Go shape that produced them.
type specFingerprint struct {
	V        int       `json:"v"`
	Key      string    `json:"key"`
	Circuit  string    `json:"circuit"`
	Phys     float64   `json:"phys"`
	Event    []float64 `json:"event,omitempty"`
	Seed     uint64    `json:"seed"`
	Engine   string    `json:"engine"`
	Decoder  string    `json:"decoder"`
	Shots    int       `json:"shots"`
	CI       float64   `json:"ci,omitempty"`
	MaxShots int       `json:"max_shots,omitempty"`
	Align    int       `json:"align"`
}

// fingerprint returns the point's content address under cfg. Specs
// that override the decode function are still distinguished, because
// every such spec carries the variant in its key (e.g. the
// ablation-decoder rows). The engine width is deliberately absent:
// width never changes a point's counts or chunking (the tile
// determinism contract, pinned by the cross-width tests), so results
// computed at any width serve every width.
func (s pointSpec) fingerprint(cfg Config) string {
	fp := specFingerprint{
		V:        fingerprintVersion,
		Key:      s.key,
		Circuit:  s.prep.circuitDump(),
		Phys:     s.phys,
		Seed:     s.seed,
		Engine:   s.engineFor(cfg.Engine),
		Decoder:  cfg.DecoderName(),
		Shots:    cfg.Shots,
		CI:       cfg.CI,
		MaxShots: cfg.MaxShots,
		Align:    frame.TileShots,
	}
	if s.ev != nil {
		fp.Event = s.ev.Probs
	}
	h, err := store.CanonicalHash(fp)
	if err != nil {
		// A plain struct of scalars and slices cannot fail to marshal;
		// reaching here is programmer error in the fingerprint shape.
		panic(fmt.Sprintf("exp: fingerprint: %v", err))
	}
	return h
}

// point lowers the spec onto the sweep engine. The campaign is built
// once, on the sweep worker that owns the point, and reused across
// every shot batch; for the scalar engines batch b covering shots
// [s, s+n) consumes exactly the streams split(seed, s..s+n-1), and the
// batched engine maps shot i to lane i%64 of word i/64 with one stream
// per word — either way batching and workers never perturb rates.
// Specs that leave decode nil read the campaign through the configured
// decoder (scalar and word-parallel views resolved together, so the
// batched engine decodes lane-for-lane identically to the scalar
// ones); specs that set decode keep their override. shotWorkers caps
// the campaign's internal shot parallelism.
func (s pointSpec) point(engine, decoder, width string, shotWorkers int, tc trace.SpanContext) sweep.Point {
	eng := s.engineFor(engine)
	return sweep.Point{
		Key: s.key,
		Prepare: func() sweep.BatchRunner {
			decode, dec := s.decode, s.decodeTile
			if decode == nil {
				var err error
				decode, dec, err = core.ResolveDecoder(decoder, s.prep.code)
				if err != nil {
					panic(fmt.Sprintf("exp: %v", err))
				}
			}
			// Sampled campaigns time the decode share of every chunk
			// into one decode span per engine call. The wrap happens
			// only here, behind the sampling decision, so the unsampled
			// hot path runs the exact pre-trace closures (the zero-alloc
			// tile guard and the tracing-off bench measure that path).
			var decNS *atomicNS
			if tc.Sampled() {
				decNS = &atomicNS{}
				decode, dec = wrapDecode(decode, dec, decNS)
			}
			// Width resolves against this spec's routed circuit (specs in
			// one campaign can carry different codes); unknown names panic
			// like engineFor — the CLI and daemon validate first.
			lanes, _, err := core.ResolveWidthRoute(width, s.prep.tr.Circuit)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			run := core.NewEngineRunner(eng, s.prep.tr.Circuit,
				noise.NewDepolarizing(s.phys), s.ev, s.seed,
				s.prep.code.ExpectedLogical(), decode, dec, lanes, shotWorkers)
			if decNS == nil {
				return func(start, n int) sweep.Counts {
					shots, errors := run(start, n)
					return sweep.Counts{Shots: shots, Errors: errors}
				}
			}
			key := s.key
			return func(start, n int) sweep.Counts {
				decNS.v.Store(0)
				shots, errors := run(start, n)
				emitDecodeSpan(tc, key, shots, decNS.v.Load())
				return sweep.Counts{Shots: shots, Errors: errors}
			}
		},
	}
}

// atomicNS accumulates decode nanoseconds across the (possibly
// parallel) decode calls of one engine chunk.
type atomicNS struct{ v atomic.Int64 }

// wrapDecode instruments the scalar and tile decode paths with wall
// time accumulation. Only sampled campaigns install it; the tile path
// adds two clock reads per 512-shot tile, the scalar path two per
// shot word.
func wrapDecode(decode func(bits []int) int, dec frame.TileDecodeFunc, ns *atomicNS) (func(bits []int) int, frame.TileDecodeFunc) {
	wrappedScalar := decode
	if decode != nil {
		wrappedScalar = func(bits []int) int {
			t0 := time.Now()
			v := decode(bits)
			ns.v.Add(time.Since(t0).Nanoseconds())
			return v
		}
	}
	wrappedTile := dec
	if dec != nil {
		wrappedTile = func(rec []uint64, w int, live, out []uint64) {
			t0 := time.Now()
			dec(rec, w, live, out)
			ns.v.Add(time.Since(t0).Nanoseconds())
		}
	}
	return wrappedScalar, wrappedTile
}

// emitDecodeSpan records one chunk's aggregated decode time as a
// decode span under the point's open span (falling back to the
// campaign span if the directory misses). The span is recorded at the
// chunk's end, positioned to span exactly the accumulated decode
// time.
func emitDecodeSpan(tc trace.SpanContext, key string, shots int, ns int64) {
	if !tc.Sampled() || ns <= 0 {
		return
	}
	parent := tc.Recorder().PointSpan(key)
	if !parent.Sampled() {
		parent = tc
	}
	sp := parent.StartAt(trace.SpanDecode, key, time.Now().Add(-time.Duration(ns)))
	sp.SetShots(shots)
	sp.End()
}

// runSpecs fans the specs through the sweep engine, returning per-spec
// results in input order. Point-level sharding and per-campaign shot
// parallelism split the worker budget between them: a large grid runs
// single-threaded campaigns on many point workers, while a small sweep
// (down to one point) keeps shot-level parallelism, so the goroutine
// count stays near the budget instead of squaring it.
func runSpecs(cfg Config, specs []pointSpec) []sweep.Result {
	if len(specs) == 0 {
		return nil
	}
	budget := cfg.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	shotWorkers := (budget + len(specs) - 1) / len(specs)
	if cfg.Scheduler != nil {
		// On a shared pool the campaign does not own the budget: other
		// campaigns' points run concurrently on the same workers, so
		// splitting "the whole budget" across this campaign's points
		// would multiply compute goroutines past the pool size with N
		// clients. Split it by the campaigns sharing the pool instead —
		// a lone small campaign still fans its shots across the idle
		// workers, while overlapping campaigns divide the budget. The
		// denominator is a snapshot (campaigns come and go), so this is
		// a soft bound, not an exact one; correctness never depends on
		// it (shot streams are deterministic at any parallelism).
		shotWorkers = budget / (len(specs) * (cfg.Scheduler.Active() + 1))
		if shotWorkers < 1 {
			shotWorkers = 1
		}
	}
	if tel := cfg.Telemetry; tel != nil {
		if route, err := core.ResolveEngineRoute(cfg.Engine); err == nil {
			r := telemetry.Route{
				Requested: route.Requested,
				Resolved:  route.Resolved,
				Reason:    route.Reason,
			}
			// The campaign-level width signal resolves against the first
			// spec's circuit (per-spec widths can differ; the signal
			// reports the representative route, like Reason does).
			if lanes, wr, err := core.ResolveWidthRoute(cfg.Width, specs[0].prep.tr.Circuit); err == nil {
				r.Width, r.WidthReason = lanes, wr
			}
			tel.SetRoute(r)
		}
	}
	points := make([]sweep.Point, len(specs))
	for i, s := range specs {
		points[i] = s.point(cfg.Engine, cfg.Decoder, cfg.Width, shotWorkers, cfg.Trace)
		points[i].TailSensitive = cfg.TailSensitive
		if cfg.Cache != nil {
			points[i].Hash = s.fingerprint(cfg)
		}
	}
	results, err := sweep.Run(cfg.context(), cfg.sweepConfig(), points)
	if err != nil {
		// The figure builders compose tables through plain value
		// plumbing with no error returns of their own; a sweep's
		// terminal error (cancellation, or a panic the scheduler
		// isolated) rides a runAbort panic up to the recover guard
		// wrapped around every Experiment.Run in the registry.
		panic(runAbort{err})
	}
	return results
}

// context resolves the config's campaign context.
func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// runAbort carries a sweep's terminal error through the figure
// builders to the registry's recover guard, which converts it back
// into the error Experiment.Run reports.
type runAbort struct{ err error }

// resultRates projects sweep results onto their rates.
func resultRates(results []sweep.Result) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Rate()
	}
	return out
}

// noteAdaptive appends the sweep's shot-budget note to the table. It is
// silent in fixed mode, keeping fixed-shot output byte-identical to the
// classic per-figure loops.
func noteAdaptive(t *Table, cfg Config, resultSets ...[]sweep.Result) {
	if cfg.CI <= 0 {
		return
	}
	var all []sweep.Result
	for _, rs := range resultSets {
		all = append(all, rs...)
	}
	s := sweep.Summarize(cfg.sweepConfig(), all)
	if s.FixedShots == 0 {
		return
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"adaptive ci=%g: %d shots over %d points vs %d fixed-equivalent (%.1f%% saved), %d/%d points converged",
		cfg.CI, s.TotalShots, s.Points, s.FixedShots,
		100*(1-float64(s.TotalShots)/float64(s.FixedShots)), s.Converged, s.Points))
}

// rate estimates the logical error rate under one radiation event via a
// single-point sweep.
func (p *prepared) rate(cfg Config, ev *noise.RadiationEvent, seed uint64) float64 {
	return runSpecs(cfg, []pointSpec{p.spec("", cfg, ev, seed)})[0].Rate()
}

// strikeAt builds the radiation event for a strike rooted at physical
// qubit root with the given root probability.
func (p *prepared) strikeAt(root int, rootProb float64, spread bool) *noise.RadiationEvent {
	return noise.NewRadiationEvent(p.dist[root], rootProb, spread)
}

// evolutionSpecs emits one spec per temporal sample of a full strike
// evolution rooted at the given physical qubit.
func (p *prepared) evolutionSpecs(key string, cfg Config, root int, spread bool, seed uint64) []pointSpec {
	samples := noise.TemporalSamples(cfg.NS)
	specs := make([]pointSpec, len(samples))
	for k, rootProb := range samples {
		specs[k] = p.spec(fmt.Sprintf("%s/t%d", key, k), cfg,
			p.strikeAt(root, rootProb, spread), seed+uint64(k)*7919)
	}
	return specs
}

// evolutionRates returns the per-temporal-sample logical error rates of
// a full strike evolution rooted at the given physical qubit.
func (p *prepared) evolutionRates(cfg Config, root int, spread bool, seed uint64) []float64 {
	return resultRates(runSpecs(cfg, p.evolutionSpecs(fmt.Sprintf("root%d", root), cfg, root, spread, seed)))
}

// usedRoots returns the physical qubits hosting circuit activity, the
// candidate strike roots.
func (p *prepared) usedRoots() []int { return p.tr.Used() }

// medianOverRoots computes, per root, the median-over-time logical error
// of a full strike evolution. All roots' temporal samples go through one
// sweep, so the whole root × time grid shares the worker pool.
func (p *prepared) medianOverRoots(cfg Config, seed uint64) ([]int, []float64, []sweep.Result) {
	roots := p.usedRoots()
	ns := len(noise.TemporalSamples(cfg.NS))
	specs := make([]pointSpec, 0, len(roots)*ns)
	for i, root := range roots {
		specs = append(specs,
			p.evolutionSpecs(fmt.Sprintf("root%d", root), cfg, root, true, seed+uint64(i)*104729)...)
	}
	results := runSpecs(cfg, specs)
	medians := make([]float64, len(roots))
	for i := range roots {
		medians[i] = stats.Median(resultRates(results[i*ns : (i+1)*ns]))
	}
	return roots, medians, results
}

// subgraphEvent builds the "hypernode" event of Figures 6-7: every qubit
// in the member set is reset with probability rootProb, nothing spreads.
func subgraphEvent(numQubits int, members []int, rootProb float64) *noise.RadiationEvent {
	probs := make([]float64, numQubits)
	for _, q := range members {
		probs[q] = rootProb
	}
	return &noise.RadiationEvent{Probs: probs}
}

// sampleUsedSubgraphs samples connected size-k subgraphs of the topology
// restricted to the used physical qubits.
func (p *prepared) sampleUsedSubgraphs(k, count int, src *rng.Source) [][]int {
	used := p.usedRoots()
	idx := make(map[int]int, len(used))
	for i, q := range used {
		idx[q] = i
	}
	sub := newInducedGraph(p.tr, used, idx)
	samples := sub.SampleConnectedSubgraphs(k, count, src)
	out := make([][]int, len(samples))
	for i, s := range samples {
		mapped := make([]int, len(s))
		for j, v := range s {
			mapped[j] = used[v]
		}
		out[i] = mapped
	}
	return out
}
