package exp

import (
	"fmt"

	"radqec/internal/logical"
)

// logicalLayerRows runs the logical-layer workloads for the LogicalLayer
// experiment with the given patch model parameters.
func logicalLayerRows(cfg Config, impact, residual float64) ([][]string, error) {
	inj, err := logical.NewInjector(logical.PatchModel{
		LogicalErrorAtImpact: impact,
		IdleError:            residual,
	})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	// Five logical patches in a line: patch-graph distance |i-j|.
	const patches = 5
	ghz := logical.GHZCircuit(patches)
	for struck := 0; struck < patches; struck++ {
		dist := make([]int, patches)
		for q := range dist {
			d := q - struck
			if d < 0 {
				d = -d
			}
			dist[q] = d
		}
		inj.SetStrike(dist, 1.0)
		camp := &logical.Campaign{Injector: inj, Circuit: ghz, Accept: logical.GHZAccept}
		rate := camp.Run(cfg.Seed+uint64(struck), cfg.Shots)
		inj.SetStrike(nil, 0)
		baseline := camp.Run(cfg.Seed+uint64(struck)+100, cfg.Shots)
		rows = append(rows, []string{
			fmt.Sprintf("ghz-%d", patches),
			fmt.Sprintf("%d", struck),
			pct(rate), pct(baseline),
		})
	}
	// Teleportation across three patches, strike on the middle one.
	tele := logical.TeleportCircuit()
	inj.SetStrike([]int{1, 0, 1}, 1.0)
	camp := &logical.Campaign{Injector: inj, Circuit: tele, Accept: logical.TeleportAccept}
	rate := camp.Run(cfg.Seed+55, cfg.Shots)
	inj.SetStrike(nil, 0)
	baseline := camp.Run(cfg.Seed+56, cfg.Shots)
	rows = append(rows, []string{"teleport", "1", pct(rate), pct(baseline)})
	return rows, nil
}
