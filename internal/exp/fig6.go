package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/qec"
	"radqec/internal/stats"
)

// Fig6 reproduces Figure 6: the criticality of a single non-spreading
// erasure (reset) at t=0 by code distance, for the repetition family
// (3,1)..(15,1) and the XXZZ family (1,3),(3,1),(3,3),(3,5),(5,3). Each
// code is transpiled onto the 5x6 reference lattice; every used physical
// qubit serves as a root once and the median logical error across roots
// is reported, mirroring the paper's hypernode-median protocol.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Figure 6: logical error criticality by code distance (single erasure, t=0, no spread)",
		Header: []string{
			"family", "distance", "qubits", "median_logical_error", "min", "max", "median_raw_readout_error",
		},
	}
	type entry struct {
		family string
		code   *qec.Code
	}
	var entries []entry
	for _, d := range qec.RepetitionDistances() {
		c, err := cfg.repetition(d)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{"repetition", c})
	}
	for _, dd := range qec.XXZZDistances() {
		c, err := cfg.xxzz(dd[0], dd[1])
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{"xxzz", c})
	}
	topo := arch.Mesh(5, 6)
	// Per entry and per root, one decoded spec and one raw-readout spec;
	// the whole family × root grid runs as a single sweep.
	var (
		specs      []pointSpec
		rootCounts []int
	)
	for ei, e := range entries {
		p, err := prepare(e.code, topo)
		if err != nil {
			return nil, err
		}
		roots := p.usedRoots()
		rootCounts = append(rootCounts, len(roots))
		for ri, root := range roots {
			ev := p.strikeAt(root, 1.0, false) // erasure: no spatial spread
			seed := cfg.Seed + uint64(ei*99991+ri*31)
			key := fmt.Sprintf("fig6/%s/root%d", e.code.Name, root)
			specs = append(specs, p.spec(key+"/"+cfg.DecoderName(), cfg, ev, seed))
			raw := p.spec(key+"/raw", cfg, ev, seed+1)
			raw.decode = e.code.RawLogical
			raw.decodeTile = e.code.RawLogicalTile
			specs = append(specs, raw)
		}
	}
	results := runSpecs(cfg, specs)
	off := 0
	for ei, e := range entries {
		block := results[off : off+2*rootCounts[ei]]
		off += len(block)
		rates := make([]float64, 0, len(block)/2)
		rawRates := make([]float64, 0, len(block)/2)
		for i := 0; i < len(block); i += 2 {
			rates = append(rates, block[i].Rate())
			rawRates = append(rawRates, block[i+1].Rate())
		}
		lo, hi := stats.MinMax(rates)
		t.Add(e.family,
			fmt.Sprintf("(%d,%d)", e.code.DZ, e.code.DX),
			fmt.Sprintf("%d", e.code.NumQubits()),
			pct(stats.Median(rates)), pct(lo), pct(hi),
			pct(stats.Median(rawRates)))
	}
	t.Notes = append(t.Notes,
		"median over every used physical qubit acting as the erasure root once",
		"raw readout = uncorrected ancilla parity bit (no decoding)")
	noteAdaptive(t, cfg, results)
	return t, nil
}
