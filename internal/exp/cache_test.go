package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"radqec/internal/arch"
	"radqec/internal/store"
	"radqec/internal/sweep"
)

// fingerprintFor builds a small spec and fingerprints it under cfg.
func fingerprintFor(t *testing.T, cfg Config) string {
	t.Helper()
	cfg = cfg.Defaults()
	code, err := cfg.repetition(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prepare(code, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	return p.spec("fp/test", cfg, p.strikeAt(2, 0.5, true), cfg.Seed).fingerprint(cfg)
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := Config{Shots: 64, Seed: 7}
	if a, b := fingerprintFor(t, base), fingerprintFor(t, base); a != b {
		t.Fatalf("same spec hashed differently: %s vs %s", a, b)
	}
	ref := fingerprintFor(t, base)
	for name, cfg := range map[string]Config{
		"seed":    {Shots: 64, Seed: 8},
		"shots":   {Shots: 65, Seed: 7},
		"engine":  {Shots: 64, Seed: 7, Engine: EngineTableau},
		"decoder": {Shots: 64, Seed: 7, Decoder: DecoderUF},
		"ci":      {Shots: 64, Seed: 7, CI: 0.01},
		"rounds":  {Shots: 64, Seed: 7, Rounds: 3}, // deeper circuit
	} {
		if got := fingerprintFor(t, cfg); got == ref {
			t.Errorf("changing %s did not move the fingerprint", name)
		}
	}
	// EngineAuto and its resolution hash identically: the fingerprint
	// records the engine that actually runs.
	if got := fingerprintFor(t, Config{Shots: 64, Seed: 7, Engine: EngineBatch}); got != ref {
		t.Error("auto vs resolved batch engine hashed differently")
	}
}

// tableText renders a table the way the CLI does.
func tableText(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.WriteText(&buf)
	return buf.String()
}

// TestStoreResumeByteIdenticalTables is the acceptance-criterion test
// at the experiment level: a campaign killed mid-flight (its store
// left holding only batch checkpoints) and resumed with -store/-resume
// semantics emits a byte-identical table to an uninterrupted run, and
// a warm re-run serves every point from the cache without touching the
// engines.
func TestStoreResumeByteIdenticalTables(t *testing.T) {
	// Shots spans two tile-aligned batches (alignUp(ceil(1024/8),
	// frame.TileShots) = 512), so the cold run leaves a checkpoint trail
	// for the kill to preserve.
	base := Config{Shots: 1024, Seed: 12345}
	ref, err := Threshold(base)
	if err != nil {
		t.Fatal(err)
	}
	want := tableText(t, ref)

	// Cold run against a fresh store: caching must not perturb output.
	coldDir := t.TempDir()
	st, err := store.Open(coldDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Cache = st
	cold, err := Threshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableText(t, cold); got != want {
		t.Fatalf("cold cached run diverged:\n%s\nvs\n%s", got, want)
	}
	st.Close()

	// Simulate the kill: a store holding only the checkpoint trail (no
	// commits), plus a torn final line — what SIGKILL mid-append leaves.
	lines, err := os.ReadFile(filepath.Join(coldDir, store.SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, ln := range strings.Split(strings.TrimRight(string(lines), "\n"), "\n") {
		if strings.Contains(ln, `"kind":"ckpt"`) {
			ckpts = append(ckpts, ln)
		}
	}
	if len(ckpts) == 0 {
		t.Fatal("cold run left no checkpoints")
	}
	killDir := t.TempDir()
	seg := strings.Join(ckpts, "\n") + "\n" + `{"kind":"commit","hash":"to`
	if err := os.WriteFile(filepath.Join(killDir, store.SegmentName), []byte(seg), 0o644); err != nil {
		t.Fatal(err)
	}
	killed, err := store.Open(killDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rcfg := base
	rcfg.Cache = killed
	rcfg.Resume = true
	var resumedCached int
	rcfg.OnPoint = func(r sweep.Result) {
		if r.Cached {
			resumedCached++
		}
	}
	resumed, err := Threshold(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableText(t, resumed); got != want {
		t.Fatalf("resumed run diverged from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if resumedCached != 0 {
		t.Fatalf("%d points served as committed from a checkpoint-only store", resumedCached)
	}

	// Warm re-run: every point replays from the now-committed store.
	wcfg := base
	wcfg.Cache = killed
	var points, cached int
	wcfg.OnPoint = func(r sweep.Result) {
		points++
		if r.Cached {
			cached++
		}
	}
	warm, err := Threshold(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableText(t, warm); got != want {
		t.Fatalf("warm run diverged:\n%s\nvs\n%s", got, want)
	}
	if points == 0 || cached != points {
		t.Fatalf("warm run: %d/%d points cached", cached, points)
	}
	killed.Close()
}

// TestSharedSchedulerMatchesPrivatePool: running an experiment on an
// external scheduler (the daemon configuration) produces the exact
// private-pool output.
func TestSharedSchedulerMatchesPrivatePool(t *testing.T) {
	base := Config{Shots: 200, Seed: 99}
	ref, err := Threshold(base)
	if err != nil {
		t.Fatal(err)
	}
	sched := sweep.NewScheduler(4)
	defer sched.Close()
	cfg := base
	cfg.Scheduler = sched
	got, err := Threshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tableText(t, got) != tableText(t, ref) {
		t.Fatal("shared-scheduler table diverged from private pool")
	}
}
