package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/noise"
)

// Threshold sweeps the intrinsic physical error rate without any
// radiation event, for increasing repetition-code distances. Below the
// circuit-level threshold, larger distances must win — the sanity
// baseline behind the paper's remark that "in absence of
// radiation-induced events all the tested configurations do not present
// output errors", and the contrast that makes Observation I sting:
// radiation errors do NOT fall with distance.
func Threshold(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Baseline: intrinsic-noise-only logical error by distance (no radiation)",
		Header: []string{"phys_rate", "rep-(3,1)", "rep-(7,1)", "rep-(11,1)"},
	}
	distances := []int{3, 7, 11}
	topo := arch.Mesh(5, 6)
	var prepped []*prepared
	for _, d := range distances {
		code, err := cfg.repetition(d)
		if err != nil {
			return nil, err
		}
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		prepped = append(prepped, p)
	}
	physRates := []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
	var specs []pointSpec
	for pi, phys := range physRates {
		for di, p := range prepped {
			sub := cfg
			sub.P = phys
			specs = append(specs, p.spec(
				fmt.Sprintf("threshold/rep-(%d,1)/p%.0e", distances[di], phys),
				sub, noise.NoRadiation(p.tr.Circuit.NumQubits), cfg.Seed+uint64(pi*31+di)))
		}
	}
	results := runSpecs(cfg, specs)
	for pi, phys := range physRates {
		row := []string{fmt.Sprintf("%.0e", phys)}
		for di := range prepped {
			row = append(row, pct(results[pi*len(prepped)+di].Rate()))
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"below threshold larger distance suppresses the logical error; radiation (Fig 5) does not enjoy this")
	noteAdaptive(t, cfg, results)
	return t, nil
}

// LogicalLayer estimates how post-QEC logical error rates propagate into
// a logical program, the paper's future-work direction (Section VI): a
// five-patch logical GHZ preparation is run with per-patch error rates
// extracted from a physical-level strike campaign on the XXZZ-(3,3)
// code, with the strike spreading across the patch adjacency graph.
func LogicalLayer(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Extension: post-QEC logical-layer fault injection (paper future work)",
		Header: []string{"workload", "struck_patch", "failure_rate", "no_strike_baseline"},
	}
	// Extract the physical-level impact error of one patch.
	code, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	p, err := prepare(code, arch.Mesh(5, 4))
	if err != nil {
		return nil, err
	}
	results := runSpecs(cfg, []pointSpec{
		p.spec("logical/impact", cfg, p.strikeAt(Fig5Root, 1.0, true), cfg.Seed),
		p.spec("logical/residual", cfg, noise.NoRadiation(p.tr.Circuit.NumQubits), cfg.Seed+1),
	})
	impact, residual := results[0].Rate(), results[1].Rate()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"patch model from xxzz-(3,3) campaign: impact error %s, residual %s",
		pct(impact), pct(residual)))
	rows, err := logicalLayerRows(cfg, impact, residual)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	noteAdaptive(t, cfg, results)
	return t, nil
}
