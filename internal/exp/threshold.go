package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
)

// Threshold sweeps the intrinsic physical error rate without any
// radiation event, for increasing repetition-code distances. Below the
// circuit-level threshold, larger distances must win — the sanity
// baseline behind the paper's remark that "in absence of
// radiation-induced events all the tested configurations do not present
// output errors", and the contrast that makes Observation I sting:
// radiation errors do NOT fall with distance.
func Threshold(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Baseline: intrinsic-noise-only logical error by distance (no radiation)",
		Header: []string{"phys_rate", "rep-(3,1)", "rep-(7,1)", "rep-(11,1)"},
	}
	distances := []int{3, 7, 11}
	topo := arch.Mesh(5, 6)
	var prepped []*prepared
	for _, d := range distances {
		code, err := qec.NewRepetition(d)
		if err != nil {
			return nil, err
		}
		p, err := prepare(code, topo)
		if err != nil {
			return nil, err
		}
		prepped = append(prepped, p)
	}
	for pi, phys := range []float64{1e-3, 3e-3, 1e-2, 3e-2, 1e-1} {
		row := []string{fmt.Sprintf("%.0e", phys)}
		for di, p := range prepped {
			camp := &inject.Campaign{
				Exec:     inject.NewExecutor(p.tr.Circuit, noise.NewDepolarizing(phys), nil),
				Decode:   p.code.Decode,
				Expected: p.code.ExpectedLogical(),
				Workers:  cfg.Workers,
			}
			r := camp.Run(cfg.Seed+uint64(pi*31+di), cfg.Shots)
			row = append(row, pct(r.Rate()))
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"below threshold larger distance suppresses the logical error; radiation (Fig 5) does not enjoy this")
	return t, nil
}

// LogicalLayer estimates how post-QEC logical error rates propagate into
// a logical program, the paper's future-work direction (Section VI): a
// five-patch logical GHZ preparation is run with per-patch error rates
// extracted from a physical-level strike campaign on the XXZZ-(3,3)
// code, with the strike spreading across the patch adjacency graph.
func LogicalLayer(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:  "Extension: post-QEC logical-layer fault injection (paper future work)",
		Header: []string{"workload", "struck_patch", "failure_rate", "no_strike_baseline"},
	}
	// Extract the physical-level impact error of one patch.
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		return nil, err
	}
	p, err := prepare(code, arch.Mesh(5, 4))
	if err != nil {
		return nil, err
	}
	impact := p.rate(cfg, p.strikeAt(Fig5Root, 1.0, true), cfg.Seed)
	residual := p.rate(cfg, noise.NoRadiation(p.tr.Circuit.NumQubits), cfg.Seed+1)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"patch model from xxzz-(3,3) campaign: impact error %s, residual %s",
		pct(impact), pct(residual)))
	rows, err := logicalLayerRows(cfg, impact, residual)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
