package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/stats"
)

// Fig7SubgraphSamples is how many connected subgraphs are sampled per
// corruption size.
const Fig7SubgraphSamples = 12

// Fig7 reproduces Figure 7: the logical error caused by k simultaneous
// erasure (reset) faults — injected into connected size-k subgraphs of
// the 5x6 lattice, median across subgraphs — compared against the
// logical error of a single *spreading* radiation fault at t=0 (the red
// line of the figure), for the distance-(15,1) repetition code and the
// distance-(3,3) XXZZ code.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Figure 7: correlated spread vs multiple independent erasures (t=0)",
		Header: []string{
			"code", "corrupted_qubits", "mean_logical_error", "median_logical_error", "spreading_fault_reference",
		},
	}
	type job struct {
		code *qec.Code
		ks   []int
	}
	rep, err := cfg.repetition(15)
	if err != nil {
		return nil, err
	}
	xxzz, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	jobs := []job{
		{rep, []int{1, 10, 11, 15, 16}},
		{xxzz, []int{1, 9, 10, 14, 15}},
	}
	topo := arch.Mesh(5, 6)
	// Emit every campaign of the figure — the per-root spreading
	// references and the sampled size-k erasure subgraphs — as one spec
	// list, then run a single sweep over all of it.
	type group struct {
		job       job
		refCount  int   // spreading-reference specs
		subCounts []int // subgraph specs per corruption size
	}
	var (
		specs  []pointSpec
		groups []group
	)
	for ji, j := range jobs {
		p, err := prepare(j.code, topo)
		if err != nil {
			return nil, err
		}
		g := group{job: j}
		for ri, root := range p.usedRoots() {
			ev := p.strikeAt(root, 1.0, true)
			specs = append(specs, p.spec(
				fmt.Sprintf("fig7/%s/spread/root%d", j.code.Name, root),
				cfg, ev, cfg.Seed+uint64(ji*7+ri)*613))
			g.refCount++
		}
		src := rng.New(cfg.Seed + uint64(ji) + 555)
		for _, k := range j.ks {
			subs := p.sampleUsedSubgraphs(k, Fig7SubgraphSamples, src)
			g.subCounts = append(g.subCounts, len(subs))
			for si, members := range subs {
				ev := subgraphEvent(p.tr.Circuit.NumQubits, members, 1.0)
				seed := cfg.Seed + uint64(ji*31337+k*769+si*97)
				specs = append(specs, p.spec(
					fmt.Sprintf("fig7/%s/erase%d/s%d", j.code.Name, k, si), cfg, ev, seed))
			}
		}
		groups = append(groups, g)
	}
	results := runSpecs(cfg, specs)
	off := 0
	for _, g := range groups {
		reference := stats.Median(resultRates(results[off : off+g.refCount]))
		off += g.refCount
		for ki, k := range g.job.ks {
			count := g.subCounts[ki]
			if count == 0 {
				t.Add(g.job.code.Name, fmt.Sprintf("%d", k), "n/a", "n/a (no size-k subgraph)", pct(reference))
				continue
			}
			rates := resultRates(results[off : off+count])
			off += count
			t.Add(g.job.code.Name, fmt.Sprintf("%d", k),
				pct(stats.Mean(rates)), pct(stats.Median(rates)), pct(reference))
		}
	}
	noteAdaptive(t, cfg, results)
	return t, nil
}
