package exp

import (
	"fmt"

	"radqec/internal/arch"
	"radqec/internal/qec"
	"radqec/internal/stats"
	"radqec/internal/sweep"
)

// Fig8RepTopologies lists the architectures the distance-(11,1)
// repetition code (22 qubits) is transpiled onto in Figure 8a.
func Fig8RepTopologies() []arch.Topology {
	return []arch.Topology{
		arch.Linear(22),
		arch.Mesh(5, 6),
		arch.Brooklyn(),
		arch.Cairo(),
		arch.Cambridge(),
	}
}

// Fig8XXZZTopologies lists the architectures the distance-(3,3) XXZZ
// code (18 qubits) is transpiled onto in Figure 8b.
func Fig8XXZZTopologies() []arch.Topology {
	return []arch.Topology{
		arch.Complete(18),
		arch.Linear(18),
		arch.Mesh(5, 4),
		arch.Almaden(),
		arch.Brooklyn(),
		arch.Cambridge(),
		arch.Johannesburg(),
	}
}

// Fig8 reproduces Figure 8: per-root-injection-point median logical
// error (over the fault's full time evolution) across hardware
// architectures, for the distance-(11,1) repetition code and the
// distance-(3,3) XXZZ code. Each used physical qubit acts as the strike
// root once; the node value is the median logical error over the ns
// temporal samples.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Figure 8: logical error rate by corrupted qubit on different architectures",
		Header: []string{
			"code", "architecture", "swaps", "phys_qubit", "role", "median_logical_error",
		},
	}
	type job struct {
		code  *qec.Code
		topos []arch.Topology
	}
	rep, err := cfg.repetition(11)
	if err != nil {
		return nil, err
	}
	xxzz, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	jobs := []job{
		{rep, Fig8RepTopologies()},
		{xxzz, Fig8XXZZTopologies()},
	}
	var all []sweep.Result
	for ji, j := range jobs {
		for ti, topo := range j.topos {
			p, err := prepare(j.code, topo)
			if err != nil {
				return nil, err
			}
			roots, medians, results := p.medianOverRoots(cfg, cfg.Seed+uint64(ji*5+ti)*179424673)
			all = append(all, results...)
			for i, root := range roots {
				role := p.tr.RoleOf(root)
				if role == "" {
					role = "route"
				}
				t.Add(j.code.Name, topo.Name,
					fmt.Sprintf("%d", p.tr.SwapCount),
					fmt.Sprintf("%d", root), role, pct(medians[i]))
			}
			lo, hi := stats.MinMax(medians)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s on %s: median %s, range [%s, %s], %d SWAPs",
				j.code.Name, topo.Name, pct(stats.Median(medians)), pct(lo), pct(hi), p.tr.SwapCount))
		}
	}
	noteAdaptive(t, cfg, all)
	return t, nil
}

// Fig8Summary aggregates Fig8 to one row per (code, architecture):
// the min/median/max of the per-root medians, plus routing overhead.
func Fig8Summary(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title: "Figure 8 (summary): architecture comparison",
		Header: []string{
			"code", "architecture", "swaps", "two_qubit_gates", "min", "median", "max",
		},
	}
	type job struct {
		code  *qec.Code
		topos []arch.Topology
	}
	rep, err := cfg.repetition(11)
	if err != nil {
		return nil, err
	}
	xxzz, err := cfg.xxzz(3, 3)
	if err != nil {
		return nil, err
	}
	jobs := []job{
		{rep, Fig8RepTopologies()},
		{xxzz, Fig8XXZZTopologies()},
	}
	var all []sweep.Result
	for ji, j := range jobs {
		for ti, topo := range j.topos {
			p, err := prepare(j.code, topo)
			if err != nil {
				return nil, err
			}
			_, medians, results := p.medianOverRoots(cfg, cfg.Seed+uint64(ji*5+ti)*179424673)
			all = append(all, results...)
			lo, hi := stats.MinMax(medians)
			t.Add(j.code.Name, topo.Name,
				fmt.Sprintf("%d", p.tr.SwapCount),
				fmt.Sprintf("%d", p.tr.Circuit.CountTwoQubit()),
				pct(lo), pct(stats.Median(medians)), pct(hi))
		}
	}
	noteAdaptive(t, cfg, all)
	return t, nil
}
