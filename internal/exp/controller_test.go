package exp

import (
	"testing"

	"radqec/internal/control"
	"radqec/internal/telemetry"
)

// TestControllerByteIdenticalTables is the acceptance criterion at the
// experiment level: a tail-sensitive experiment renders byte-identical
// tables with the scoring controller on and off, in fixed and adaptive
// mode — the controller re-orders and re-chunks mechanism only.
func TestControllerByteIdenticalTables(t *testing.T) {
	e, ok := Find("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}
	for _, base := range []Config{
		{Shots: 192, Seed: 5},
		{CI: 0.08, Seed: 5},
	} {
		ref, err := e.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		want := tableText(t, ref)
		on := base
		on.Control = control.Default()
		on.Workers = 3
		got, err := e.Run(on)
		if err != nil {
			t.Fatal(err)
		}
		if tableText(t, got) != want {
			t.Fatalf("config %+v: controller-on table diverged from controller-off", base)
		}
	}
}

// TestTelemetryRecordsEngineRoute: an experiment run with telemetry
// attached records the engine-resolution decision behind the campaign.
func TestTelemetryRecordsEngineRoute(t *testing.T) {
	tel := telemetry.NewCampaign(1, "threshold")
	cfg := Config{Shots: 64, Seed: 3, Telemetry: tel}
	if _, err := Threshold(cfg); err != nil {
		t.Fatal(err)
	}
	r := tel.Route()
	if r == nil {
		t.Fatal("no engine route recorded")
	}
	if r.Requested != EngineAuto || r.Resolved == "" || r.Reason == "" {
		t.Fatalf("route = %+v", r)
	}
	if st := tel.Stats(); st.Shots == 0 || st.Route == nil {
		t.Fatalf("stats missing telemetry: %+v", st)
	}
}
