package exp

import (
	"strings"
	"testing"

	"radqec/internal/core"
	"radqec/internal/store"
	"radqec/internal/sweep"
	"radqec/internal/telemetry"
)

// TestFig5TablesWidthIndependent: the engine width is pure mechanism,
// so the Figure 5 table is byte-identical at every explicit width and
// under auto resolution. Shots is chosen so each point's fixed-mode cap
// straddles a tile-aligned batch boundary plus a ragged word tail.
func TestFig5TablesWidthIndependent(t *testing.T) {
	base := Config{Shots: 600, Seed: 21, NS: 2}
	ref, err := Fig5(base)
	if err != nil {
		t.Fatal(err)
	}
	want := tableText(t, ref)
	for _, w := range core.Widths() {
		cfg := base
		cfg.Width = w
		tab, err := Fig5(cfg)
		if err != nil {
			t.Fatalf("width %s: %v", w, err)
		}
		if got := tableText(t, tab); got != want {
			t.Errorf("width %s diverged from default:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestFig6TablesWidthIndependent: the hypernode-median Figure 6
// protocol — every used root, decoded and raw-readout specs — emits
// byte-identical tables at 64, 256 and 512 lanes and under auto.
func TestFig6TablesWidthIndependent(t *testing.T) {
	base := Config{Shots: 600, Seed: 9}
	ref, err := Fig6(base)
	if err != nil {
		t.Fatal(err)
	}
	want := tableText(t, ref)
	for _, w := range core.Widths() {
		cfg := base
		cfg.Width = w
		tab, err := Fig6(cfg)
		if err != nil {
			t.Fatalf("width %s: %v", w, err)
		}
		if got := tableText(t, tab); got != want {
			t.Errorf("width %s diverged from default:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestStoreCrossWidthResume: batches checkpointed by a campaign running
// at one width replay byte-identically under another, because policy
// batches are tile-aligned at every width and shot streams live on the
// absolute word grid.
func TestStoreCrossWidthResume(t *testing.T) {
	base := Config{Shots: 1024, Seed: 12345}
	ref, err := Threshold(base)
	if err != nil {
		t.Fatal(err)
	}
	want := tableText(t, ref)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cold := base
	cold.Width = core.Width512
	cold.Cache = st
	if tab, err := Threshold(cold); err != nil {
		t.Fatal(err)
	} else if got := tableText(t, tab); got != want {
		t.Fatalf("width-512 cold run diverged:\n%s\nvs\n%s", got, want)
	}

	warm := base
	warm.Width = core.Width64
	warm.Cache = st
	var points, cached int
	warm.OnPoint = func(r sweep.Result) {
		points++
		if r.Cached {
			cached++
		}
	}
	if tab, err := Threshold(warm); err != nil {
		t.Fatal(err)
	} else if got := tableText(t, tab); got != want {
		t.Fatalf("width-64 warm run diverged from width-512 store:\n%s\nvs\n%s", got, want)
	}
	if points == 0 || cached != points {
		t.Fatalf("warm cross-width run: %d/%d points cached", cached, points)
	}
}

// TestRouteCarriesWidth: the campaign telemetry route records the
// resolved engine width and the heuristic's rationale — the signal the
// daemon's /metrics gauge and the CLI -stats line surface.
func TestRouteCarriesWidth(t *testing.T) {
	tel := telemetry.NewCampaign(1, "threshold")
	cfg := Config{Shots: 64, Seed: 5, Telemetry: tel, Width: core.Width256}
	if _, err := Threshold(cfg); err != nil {
		t.Fatal(err)
	}
	r := tel.Route()
	if r == nil {
		t.Fatal("no route recorded")
	}
	if r.Width != 256 {
		t.Fatalf("route width %d, want 256", r.Width)
	}
	if !strings.Contains(r.WidthReason, "explicit") {
		t.Fatalf("explicit width reason %q does not say so", r.WidthReason)
	}

	tel = telemetry.NewCampaign(2, "threshold")
	cfg = Config{Shots: 64, Seed: 5, Telemetry: tel}
	if _, err := Threshold(cfg); err != nil {
		t.Fatal(err)
	}
	r = tel.Route()
	if r == nil {
		t.Fatal("no route recorded")
	}
	if r.Width != 512 {
		t.Fatalf("auto width resolved to %d lanes, want 512 for every repo code", r.Width)
	}
	if !strings.Contains(r.WidthReason, "auto") {
		t.Fatalf("auto width reason %q does not name the heuristic", r.WidthReason)
	}
}
