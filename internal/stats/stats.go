// Package stats provides the small statistical toolkit the experiment
// harness needs: central tendency, quantiles and binomial confidence
// intervals for logical error rates.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median, 0 for an empty slice. The input is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for input already sorted ascending. It
// performs no allocation or copying, so hot loops can sort a scratch
// buffer once and read several quantiles from it.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CVaR returns the conditional value at risk at level alpha: the mean of
// the values at or above the alpha-quantile (the expected shortfall of
// the worst (1-alpha) tail). The input is not modified.
func CVaR(xs []float64, alpha float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return CVaRSorted(sorted, alpha)
}

// CVaRSorted is CVaR for input already sorted ascending, without
// allocation.
func CVaRSorted(sorted []float64, alpha float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	q := QuantileSorted(sorted, alpha)
	s, n := 0.0, 0
	for i := len(sorted) - 1; i >= 0 && sorted[i] >= q; i-- {
		s += sorted[i]
		n++
	}
	if n == 0 {
		// The interpolated quantile can land a few ULPs above the
		// maximum when it interpolates between equal values; the tail
		// is then just that maximum, not 0/0.
		return sorted[len(sorted)-1]
	}
	return s / float64(n)
}

// MinMax returns the extrema of xs; (0, 0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Z95 is the 97.5th percentile of the standard normal — the z-score
// behind every two-sided 95% interval in this package.
const Z95 = 1.959963984540054

// WilsonCI returns the Wilson score 95% confidence interval for a
// binomial proportion with k successes out of n trials.
func WilsonCI(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = Z95
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth returns half the width of the Wilson 95% interval,
// the precision measure adaptive campaigns stop on.
func WilsonHalfWidth(k, n int) float64 {
	lo, hi := WilsonCI(k, n)
	return (hi - lo) / 2
}

// Variance returns the population variance, 0 for fewer than 2 samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CVaRHalfWidth returns the normal-approximation 95% CI half-width of
// the CVaR estimate at level alpha over an ascending-sorted sample:
// z·s/√m, where s and m are the standard deviation and size of the tail
// (the values at or above the alpha-quantile). With fewer than two tail
// observations the estimator has no spread information and the width is
// reported as 1 — the widest possible interval for a rate — so callers
// steering shot budget by tail uncertainty rank unexplored tails first.
// The result is capped at 1 for the same reason.
func CVaRHalfWidth(sorted []float64, alpha float64) float64 {
	if len(sorted) < 2 {
		return 1
	}
	q := QuantileSorted(sorted, alpha)
	lo := len(sorted)
	for lo > 0 && sorted[lo-1] >= q {
		lo--
	}
	tail := sorted[lo:]
	if len(tail) < 2 {
		return 1
	}
	hw := Z95 * StdDev(tail) / math.Sqrt(float64(len(tail)))
	if hw > 1 {
		hw = 1
	}
	return hw
}
