package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated input")
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30}
	if got := Quantile(xs, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 30 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, -1); got != 10 {
		t.Fatalf("q<0 = %v", got)
	}
	if got := Quantile(xs, 2); got != 30 {
		t.Fatalf("q>1 = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Fatalf("q0.25 = %v", got)
	}
}

func TestMedianProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		m := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// At least half of the values lie on each side.
		return m >= sorted[0] && m <= sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	xs := []float64{7, 1, 4, 4, 9, 0, 2}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if got, want := QuantileSorted(sorted, q), Quantile(xs, q); got != want {
			t.Fatalf("QuantileSorted(%v) = %v, Quantile = %v", q, got, want)
		}
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Fatal("QuantileSorted(nil) nonzero")
	}
}

func TestQuantileSortedDoesNotAllocate(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	allocs := testing.AllocsPerRun(100, func() {
		QuantileSorted(sorted, 0.9)
		CVaRSorted(sorted, 0.75)
	})
	if allocs != 0 {
		t.Fatalf("sorted-input variants allocated %.1f times per run", allocs)
	}
}

func TestCVaR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// alpha=0.75 -> quantile 3.25; tail = {4}.
	if got := CVaR(xs, 0.75); got != 4 {
		t.Fatalf("CVaR(0.75) = %v", got)
	}
	// alpha=0 -> whole distribution.
	if got := CVaR(xs, 0); got != 2.5 {
		t.Fatalf("CVaR(0) = %v", got)
	}
	// CVaR never falls below the plain quantile.
	for _, a := range []float64{0.1, 0.5, 0.9} {
		if CVaR(xs, a) < Quantile(xs, a) {
			t.Fatalf("CVaR(%v) below quantile", a)
		}
	}
	if CVaR(nil, 0.5) != 0 {
		t.Fatal("CVaR(nil) nonzero")
	}
}

func TestCVaRNeverNaNOnTiedMaxima(t *testing.T) {
	// Interpolating the quantile between the two equal maxima can land
	// a few ULPs above them (0.7x + 0.3x > x in float64 for this x);
	// CVaR must degrade to the maximum, never to 0/0.
	x := 0.02992021276595745
	xs := []float64{0.027327127659574468, 0.028804347826086957, 0.02892287234042553,
		0.029055851063829786, 0.029321808510638297, 0.029787234042553193, x, x}
	got := CVaRSorted(xs, 0.90)
	if math.IsNaN(got) {
		t.Fatal("CVaRSorted returned NaN on tied maxima")
	}
	if got != x {
		t.Fatalf("CVaRSorted = %v, want the tied maximum %v", got, x)
	}
}

func TestWilsonHalfWidth(t *testing.T) {
	lo, hi := WilsonCI(30, 100)
	if got := WilsonHalfWidth(30, 100); got != (hi-lo)/2 {
		t.Fatalf("WilsonHalfWidth = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil) nonzero")
	}
}

func TestWilsonCIBrackets(t *testing.T) {
	lo, hi := WilsonCI(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("CI [%v,%v] does not bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI too wide for n=100: %v", hi-lo)
	}
}

func TestWilsonCIEdges(t *testing.T) {
	lo, hi := WilsonCI(0, 100)
	if lo != 0 {
		t.Fatalf("lo = %v for k=0", lo)
	}
	if hi < 0.01 || hi > 0.1 {
		t.Fatalf("hi = %v for 0/100", hi)
	}
	lo, hi = WilsonCI(100, 100)
	if hi != 1 {
		t.Fatalf("hi = %v for k=n", hi)
	}
	if lo > 0.99 || lo < 0.9 {
		t.Fatalf("lo = %v for 100/100", lo)
	}
	lo, hi = WilsonCI(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatal("empty trial CI should be [0,1]")
	}
}

func TestWilsonCIShrinksWithN(t *testing.T) {
	lo1, hi1 := WilsonCI(10, 20)
	lo2, hi2 := WilsonCI(1000, 2000)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Fatal("CI did not shrink with more trials")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("single-sample variance nonzero")
	}
}
