package frame

import (
	"runtime"
	"sync"

	"radqec/internal/rng"
)

// Campaign estimates logical error rates with the frame engine; it
// mirrors inject.Campaign (same seed → shot stream mapping) but runs
// each shot in O(gates) instead of O(gates·n).
type Campaign struct {
	// Sim samples the shots.
	Sim *Simulator
	// Decode maps a shot's classical record to the decoded logical value.
	Decode func(bits []int) int
	// Expected is the fault-free decoded output.
	Expected int
	// Workers caps parallel shot runners; 0 means GOMAXPROCS.
	Workers int
}

// Result mirrors inject.Result.
type Result struct {
	Shots, Errors int
}

// Rate returns the logical error rate.
func (r Result) Rate() float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Shots)
}

// Run executes shots deterministically: shot i consumes stream
// split(seed, i) regardless of worker count.
func (c *Campaign) Run(seed uint64, shots int) Result {
	return c.RunFrom(seed, 0, shots)
}

// RunFrom executes the shot range [start, start+shots); it mirrors
// inject.Campaign.RunFrom, so batched extensions of a campaign merge to
// exactly the single-Run result.
func (c *Campaign) RunFrom(seed uint64, start, shots int) Result {
	if shots <= 0 {
		return Result{}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	master := rng.New(seed)
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := NewFrame(c.Sim.circ.NumQubits)
			bits := make([]int, c.Sim.circ.NumClbits)
			local := Result{}
			for shot := start + w; shot < start+shots; shot += workers {
				src := master.Split(uint64(shot))
				for i := range bits {
					bits[i] = 0
				}
				c.Sim.Run(src, f, bits)
				local.Shots++
				if c.Decode(bits) != c.Expected {
					local.Errors++
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	total := Result{}
	for _, r := range results {
		total.Shots += r.Shots
		total.Errors += r.Errors
	}
	return total
}
