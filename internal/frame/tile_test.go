package frame

import (
	"testing"

	"radqec/internal/arch"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
)

// tileCampaign builds a batched repetition-code campaign wired through
// the tile decoder at the given engine width (radiation strike plus
// depolarizing noise, frame-exact).
func tileCampaign(t testing.TB, d int, p float64, width int) *BatchCampaign {
	t.Helper()
	code, err := qec.NewRepetition(d)
	if err != nil {
		t.Fatal(err)
	}
	cols := (2*d + 4) / 5
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, cols))
	if err != nil {
		t.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[2], 1.0, true)
	sim := New(tr.Circuit, noise.NewDepolarizing(p), ev, 3)
	return &BatchCampaign{
		Sim:        NewBatchSimulator(sim),
		DecodeTile: code.DecodeTile,
		Expected:   code.ExpectedLogical(),
		Width:      width,
	}
}

// TestTileWidthResultsInvariant pins the tentpole determinism contract:
// engine width is pure mechanism, so the same campaign produces the
// exact same Result at 64, 256 and 512 lanes — including shot counts
// that straddle word and tile boundaries, and the legacy per-word
// decoder path (which forces width one regardless of the request).
func TestTileWidthResultsInvariant(t *testing.T) {
	const seed, shots = 11, 1337 // 20 full words + 57 lanes; straddles tiles at every width
	ref := tileCampaign(t, 5, 0.01, 64).Run(seed, shots)
	if ref.Shots != shots {
		t.Fatalf("reference ran %d shots, want %d", ref.Shots, shots)
	}
	for _, width := range TileWidths() {
		if got := tileCampaign(t, 5, 0.01, width).Run(seed, shots); got != ref {
			t.Errorf("width %d: %+v, want %+v", width, got, ref)
		}
	}
	// Legacy per-word decoder under a wide width request: tileWords
	// clamps to one word and the results still match.
	legacy := tileCampaign(t, 5, 0.01, 512)
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	legacy.DecodeTile = nil
	legacy.DecodeBatch = code.DecodeBatch
	if got := legacy.Run(seed, shots); got != ref {
		t.Errorf("legacy word decoder at width 512: %+v, want %+v", got, ref)
	}
}

// TestTileRunFromSplitsMerge: partitioning a campaign into RunFrom
// ranges — mid-word, word-aligned, mid-tile and tile-aligned cuts —
// merges to exactly the uninterrupted Run at every engine width. This
// is the resume contract the sweep engine's checkpointing relies on.
func TestTileRunFromSplitsMerge(t *testing.T) {
	const seed, shots = 17, 1337
	for _, width := range TileWidths() {
		c := tileCampaign(t, 5, 0.01, width)
		ref := c.Run(seed, shots)
		for _, cut := range []int{1, 63, 64, 100, 512, 600, 1024, 1336} {
			a := c.RunFrom(seed, 0, cut)
			b := c.RunFrom(seed, cut, shots-cut)
			got := Result{Shots: a.Shots + b.Shots, Errors: a.Errors + b.Errors}
			if got != ref {
				t.Errorf("width %d cut %d: %+v, want %+v", width, cut, got, ref)
			}
		}
	}
}

// TestTileSteadyStateZeroAlloc is the zero-allocation acceptance guard:
// once the per-worker state, RNG streams and syndrome memo are warm, a
// full tile pass — stream re-derivation, RunTile and DecodeTile — must
// not allocate. The same guard covers the width-one RunWord→DecodeBatch
// path, which shares the machinery.
func TestTileSteadyStateZeroAlloc(t *testing.T) {
	c := tileCampaign(t, 5, 0.01, TileShots)
	const tw = MaxTileWords
	st := c.Sim.NewTileState(tw)
	var streams [MaxTileWords]rng.Source
	var srcs [MaxTileWords]*rng.Source
	for k := range srcs {
		srcs[k] = &streams[k]
	}
	var live, out [MaxTileWords]uint64
	for k := 0; k < tw; k++ {
		live[k] = ^uint64(0)
	}
	master := rng.New(29)
	tile := func() {
		for k := 0; k < tw; k++ {
			master.SplitInto(batchSplitSalt^uint64(k), &streams[k])
		}
		c.Sim.RunTile(srcs[:tw], st)
		c.DecodeTile(st.Rec, tw, live[:tw], out[:tw])
	}
	tile() // warm: pooled scratch grown, memo populated for these streams
	if n := testing.AllocsPerRun(50, tile); n > 0 {
		t.Errorf("steady-state tile pass allocates %.1f times per run, want 0", n)
	}

	word := func() {
		master.SplitInto(batchSplitSalt^uint64(1), &streams[0])
		c.Sim.RunWord(&streams[0], st)
		c.DecodeTile(st.Rec, 1, live[:1], out[:1])
	}
	word()
	if n := testing.AllocsPerRun(50, word); n > 0 {
		t.Errorf("steady-state word pass allocates %.1f times per run, want 0", n)
	}
}
