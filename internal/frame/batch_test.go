package frame

import (
	"math"
	"testing"

	"radqec/internal/arch"
	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
	"radqec/internal/stats"
)

// repCampaigns builds the scalar and batched frame campaigns of the same
// repetition-code radiation setup (frame-exact, so both are exact).
func repCampaigns(t testing.TB, d int, p float64, refSeed uint64) (*Campaign, *BatchCampaign) {
	t.Helper()
	code, err := qec.NewRepetition(d)
	if err != nil {
		t.Fatal(err)
	}
	cols := (2*d + 4) / 5
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, cols))
	if err != nil {
		t.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[2], 1.0, true)
	sim := New(tr.Circuit, noise.NewDepolarizing(p), ev, refSeed)
	scalar := &Campaign{
		Sim:      sim,
		Decode:   code.Decode,
		Expected: code.ExpectedLogical(),
	}
	batched := &BatchCampaign{
		Sim:         NewBatchSimulator(sim),
		DecodeBatch: code.DecodeBatch,
		Expected:    code.ExpectedLogical(),
	}
	return scalar, batched
}

func TestBatchDeterministicCircuitExact(t *testing.T) {
	// A purely classical circuit: every lane of the batched record must
	// equal the scalar frame outcome bit for bit.
	c := circuit.New(3, 3)
	c.X(0)
	c.CNOT(0, 1)
	c.X(2)
	c.Measure(0, 0)
	c.Measure(1, 1)
	c.Measure(2, 2)
	sim := New(c, noise.Depolarizing{}, nil, 1)
	f := NewFrame(3)
	bits := make([]int, 3)
	sim.Run(rng.New(2), f, bits)
	b := NewBatchSimulator(sim)
	st := b.NewBatchState()
	b.RunWord(rng.New(2), st)
	for i, want := range bits {
		word := uint64(0)
		if want == 1 {
			word = ^uint64(0)
		}
		if st.Rec[i] != word {
			t.Fatalf("clbit %d: packed %x, scalar bit %d", i, st.Rec[i], want)
		}
	}
}

func TestBatchRunWordDeterministic(t *testing.T) {
	_, batched := repCampaigns(t, 5, 0.01, 3)
	a := batched.Sim.NewBatchState()
	b := batched.Sim.NewBatchState()
	batched.Sim.RunWord(rng.New(9), a)
	batched.Sim.RunWord(rng.New(9), b)
	for i := range a.Rec {
		if a.Rec[i] != b.Rec[i] {
			t.Fatalf("identical sources diverged at clbit %d", i)
		}
	}
}

func TestBatchMatchesScalarWithinWilson(t *testing.T) {
	// Radiation + depolarizing on the repetition code (frame-exact):
	// the batched rate must land inside the scalar campaign's Wilson
	// interval at a matched shot budget.
	scalar, batched := repCampaigns(t, 15, 0.01, 3)
	const shots = 4096
	s := scalar.Run(5, shots)
	b := batched.Run(6, shots)
	lo, hi := stats.WilsonCI(s.Errors, s.Shots)
	if r := b.Rate(); r < lo || r > hi {
		t.Fatalf("batched rate %.4f outside scalar Wilson interval [%.4f, %.4f]", r, lo, hi)
	}
	if b.Errors == 0 {
		t.Fatal("batched engine saw no errors under a full-impact strike")
	}
}

func TestBatchDepolarizingOnlyMatchesScalar(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.05
	sim := New(code.Circ, noise.NewDepolarizing(p), nil, 7)
	scalar := &Campaign{Sim: sim, Decode: code.Decode, Expected: 1}
	batched := &BatchCampaign{
		Sim:         NewBatchSimulator(sim),
		DecodeBatch: code.DecodeBatch,
		Expected:    1,
	}
	const shots = 6000
	s := scalar.Run(11, shots)
	b := batched.Run(13, shots)
	if math.Abs(s.Rate()-b.Rate()) > 0.025 {
		t.Fatalf("engines disagree: scalar %.4f vs batched %.4f", s.Rate(), b.Rate())
	}
	if b.Errors == 0 {
		t.Fatal("batched engine saw no errors at p=0.05")
	}
}

func TestBatchCleanRunErrorFree(t *testing.T) {
	for _, mk := range []func() (*qec.Code, error){
		func() (*qec.Code, error) { return qec.NewRepetition(7) },
		func() (*qec.Code, error) { return qec.NewXXZZ(3, 3) },
	} {
		code, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		camp := &BatchCampaign{
			Sim:         NewBatch(code.Circ, noise.Depolarizing{}, nil, 9),
			DecodeBatch: code.DecodeBatch,
			Expected:    1,
		}
		if r := camp.Run(1, 500); r.Errors != 0 || r.Shots != 500 {
			t.Fatalf("%s: clean batched campaign produced %+v", code.Name, r)
		}
	}
}

func TestBatchWordBoundaries(t *testing.T) {
	// Shot counts not divisible by 64 must count exactly, and any
	// partition of the range — word-aligned or not — must merge to the
	// whole-run result.
	_, batched := repCampaigns(t, 5, 0.02, 2)
	for _, shots := range []int{1, 63, 64, 65, 100, 1000} {
		if r := batched.Run(44, shots); r.Shots != shots {
			t.Fatalf("Run counted %d shots, want %d", r.Shots, shots)
		}
	}
	whole := batched.Run(44, 1000)
	var merged Result
	for _, r := range [][2]int{{0, 100}, {100, 1}, {101, 27}, {128, 400}, {528, 472}} {
		part := batched.RunFrom(44, r[0], r[1])
		merged.Shots += part.Shots
		merged.Errors += part.Errors
	}
	if merged != whole {
		t.Fatalf("partitioned runs %+v != whole run %+v", merged, whole)
	}
}

func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) Result {
		_, batched := repCampaigns(t, 5, 0.05, 2)
		batched.Workers = workers
		return batched.Run(44, 1500)
	}
	if a, b := mk(1), mk(8); a != b {
		t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
	}
}

func TestLaneDecodeMatchesWordDecoder(t *testing.T) {
	// The generic lane-unpacking adapter and the word-parallel decoder
	// must agree on every lane of real sampled records.
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewBatch(code.Circ, noise.NewDepolarizing(0.1), nil, 3)
	st := sim.NewBatchState()
	lane := LaneDecode(code.Decode, code.Circ.NumClbits)
	for seed := uint64(0); seed < 8; seed++ {
		sim.RunWord(rng.New(seed), st)
		live := ^uint64(0)
		if got, want := code.DecodeBatch(st.Rec, live), lane(st.Rec, live); got != want {
			t.Fatalf("seed %d: DecodeBatch %x != LaneDecode %x", seed, got, want)
		}
	}
}

func TestBatchExpectedZero(t *testing.T) {
	// Expected=0 campaigns (e.g. custom decoders) must count errors
	// against the zero word.
	c := circuit.New(1, 1)
	c.X(0)
	c.Measure(0, 0)
	camp := &BatchCampaign{
		Sim:         NewBatch(c, noise.Depolarizing{}, nil, 1),
		DecodeBatch: func(rec []uint64, live uint64) uint64 { return rec[0] },
		Expected:    0,
	}
	if r := camp.Run(1, 130); r.Errors != 130 {
		t.Fatalf("X|0> vs expected 0: %+v", r)
	}
	camp.Expected = 1
	if r := camp.Run(1, 130); r.Errors != 0 {
		t.Fatalf("X|0> vs expected 1: %+v", r)
	}
}

// The acceptance benchmark pair: Fig. 5 repetition-code sampling
// throughput, scalar frame engine versus the batched engine, decode
// included. The low-p regime is where campaigns spend their lives and
// where the sparse-syndrome fast path pays; shots/s is the headline
// metric.
func benchFig5Rep(b *testing.B, batched bool) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 2))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	// Temporal sample 3 of the Fig. 5 evolution at p=1e-3.
	ev := noise.NewRadiationEvent(dist[2], noise.TemporalStep(0.3, 10), true)
	sim := New(tr.Circuit, noise.NewDepolarizing(1e-3), ev, 1)
	const shots = 4096
	b.ResetTimer()
	if batched {
		camp := &BatchCampaign{
			Sim:         NewBatchSimulator(sim),
			DecodeBatch: code.DecodeBatch,
			Expected:    1,
			Workers:     1,
		}
		for i := 0; i < b.N; i++ {
			camp.Run(uint64(i), shots)
		}
	} else {
		camp := &Campaign{
			Sim:      sim,
			Decode:   code.Decode,
			Expected: 1,
			Workers:  1,
		}
		for i := 0; i < b.N; i++ {
			camp.Run(uint64(i), shots)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkFig5RepFrameScalar(b *testing.B)  { benchFig5Rep(b, false) }
func BenchmarkFig5RepFrameBatched(b *testing.B) { benchFig5Rep(b, true) }

// The same pair at the paper's default p=1e-2 under a full-impact
// strike — the regime where the decoder slow path fires often — keeps
// the speedup claim honest outside the sparse regime.
func benchImpactRep(b *testing.B, batched bool) {
	scalar, bat := repCampaigns(b, 15, 0.01, 1)
	const shots = 2048
	scalar.Workers = 1
	bat.Workers = 1
	b.ResetTimer()
	if batched {
		for i := 0; i < b.N; i++ {
			bat.Run(uint64(i), shots)
		}
	} else {
		for i := 0; i < b.N; i++ {
			scalar.Run(uint64(i), shots)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkImpactRep15FrameScalar(b *testing.B)  { benchImpactRep(b, false) }
func BenchmarkImpactRep15FrameBatched(b *testing.B) { benchImpactRep(b, true) }

// --- XXZZ cross-checks: the universal engine on the paper's headline
// code, mirroring the repetition-code suite above ---

// xxzzCampaigns builds the scalar and batched frame campaigns of the
// same XXZZ setup; ev may be nil for depolarizing-only campaigns.
func xxzzCampaigns(t testing.TB, p float64, ev *noise.RadiationEvent, refSeed uint64) (*Campaign, *BatchCampaign) {
	t.Helper()
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	sim := New(tr.Circuit, noise.NewDepolarizing(p), ev, refSeed)
	scalar := &Campaign{
		Sim:      sim,
		Decode:   code.Decode,
		Expected: code.ExpectedLogical(),
	}
	batched := &BatchCampaign{
		Sim:         NewBatchSimulator(sim),
		DecodeBatch: code.DecodeBatch,
		Expected:    code.ExpectedLogical(),
	}
	return scalar, batched
}

// xxzzStrike builds a full-impact spreading strike event on the
// transpiled XXZZ-(3,3) circuit.
func xxzzStrike(t testing.TB) *noise.RadiationEvent {
	t.Helper()
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	return noise.NewRadiationEvent(dist[2], 1.0, true)
}

func TestBatchXXZZMatchesScalarWithinWilson(t *testing.T) {
	// Depolarizing + radiation on XXZZ: scalar and batched engines share
	// the identical validity domain (and approximation), so their rates
	// must agree within the scalar campaign's Wilson interval.
	scalar, batched := xxzzCampaigns(t, 0.01, xxzzStrike(t), 3)
	const shots = 4096
	s := scalar.Run(5, shots)
	b := batched.Run(6, shots)
	lo, hi := stats.WilsonCI(s.Errors, s.Shots)
	if r := b.Rate(); r < lo || r > hi {
		t.Fatalf("batched XXZZ rate %.4f outside scalar Wilson interval [%.4f, %.4f]", r, lo, hi)
	}
	if b.Errors == 0 {
		t.Fatal("batched engine saw no errors under a full-impact XXZZ strike")
	}
}

func TestBatchXXZZDepolarizingOnlyMatchesScalar(t *testing.T) {
	scalar, batched := xxzzCampaigns(t, 0.03, nil, 7)
	const shots = 6000
	s := scalar.Run(11, shots)
	b := batched.Run(13, shots)
	if math.Abs(s.Rate()-b.Rate()) > 0.025 {
		t.Fatalf("XXZZ engines disagree: scalar %.4f vs batched %.4f", s.Rate(), b.Rate())
	}
	if b.Errors == 0 {
		t.Fatal("batched engine saw no errors at p=0.03")
	}
}

func TestBatchXXZZWordBoundaries(t *testing.T) {
	// Lane/word-boundary invariance on the XXZZ family: shot counts not
	// divisible by 64 count exactly, and any partition of the range
	// merges to the whole-run result.
	_, batched := xxzzCampaigns(t, 0.02, xxzzStrike(t), 2)
	for _, shots := range []int{1, 63, 64, 65, 100, 1000} {
		if r := batched.Run(44, shots); r.Shots != shots {
			t.Fatalf("Run counted %d shots, want %d", r.Shots, shots)
		}
	}
	whole := batched.Run(44, 1000)
	var merged Result
	for _, r := range [][2]int{{0, 100}, {100, 1}, {101, 27}, {128, 400}, {528, 472}} {
		part := batched.RunFrom(44, r[0], r[1])
		merged.Shots += part.Shots
		merged.Errors += part.Errors
	}
	if merged != whole {
		t.Fatalf("partitioned runs %+v != whole run %+v", merged, whole)
	}
}

func TestBatchXXZZDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) Result {
		_, batched := xxzzCampaigns(t, 0.05, xxzzStrike(t), 2)
		batched.Workers = workers
		return batched.Run(44, 1500)
	}
	if a, b := mk(1), mk(8); a != b {
		t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
	}
}

func TestLaneDecodeMatchesWordDecoderXXZZ(t *testing.T) {
	// On XXZZ records the word-parallel MWPM and union-find decoders
	// must agree lane for lane with their scalar twins.
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewBatch(code.Circ, noise.NewDepolarizing(0.05), nil, 3)
	st := sim.NewBatchState()
	mwpm := LaneDecode(code.Decode, code.Circ.NumClbits)
	uf := LaneDecode(code.DecodeUnionFind, code.Circ.NumClbits)
	for seed := uint64(0); seed < 8; seed++ {
		sim.RunWord(rng.New(seed), st)
		live := ^uint64(0)
		if got, want := code.DecodeBatch(st.Rec, live), mwpm(st.Rec, live); got != want {
			t.Fatalf("seed %d: DecodeBatch %x != LaneDecode(Decode) %x", seed, got, want)
		}
		if got, want := code.DecodeUnionFindBatch(st.Rec, live), uf(st.Rec, live); got != want {
			t.Fatalf("seed %d: DecodeUnionFindBatch %x != LaneDecode(DecodeUnionFind) %x", seed, got, want)
		}
	}
}

func TestPerRoundPackedRecordsFeedDetectionEvents(t *testing.T) {
	// The per-round packed records exposed by BatchState.Record are the
	// inputs of word-parallel detection-event extraction: XOR-differencing
	// consecutive rounds (plus the recomputed final syndrome) must
	// reproduce qec's own extraction bit for bit on a multi-round code.
	code, err := qec.NewRepetitionRounds(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewBatch(code.Circ, noise.NewDepolarizing(0.05), nil, 7)
	st := sim.NewBatchState()
	sim.RunWord(rng.New(3), st)

	nz := code.NumZStabs()
	layers := code.Rounds + 1
	manual := make([]uint64, nz*layers)
	for s := 0; s < nz; s++ {
		prev := uint64(0)
		for r := 0; r < code.Rounds; r++ {
			cur := st.Record(code.CRounds[r])[s]
			manual[s*layers+r] = prev ^ cur
			prev = cur
		}
		final := uint64(0)
		for _, d := range code.ZStabilizers()[s] {
			final ^= st.Record(code.DataRead)[d]
		}
		manual[s*layers+layers-1] = prev ^ final
	}
	want, _ := code.DetectionEventWords(st.Rec, nil)
	for i := range manual {
		if manual[i] != want[i] {
			t.Fatalf("detection word %d: manual %x, DetectionEventWords %x", i, manual[i], want[i])
		}
	}
}
