package frame

import (
	"math"
	"testing"

	"radqec/internal/arch"
	"radqec/internal/circuit"
	"radqec/internal/inject"
	"radqec/internal/noise"
	"radqec/internal/qec"
	"radqec/internal/rng"
)

func TestDeterministicCircuitExact(t *testing.T) {
	// A purely classical circuit: frame outcomes must equal tableau
	// outcomes bit for bit.
	c := circuit.New(3, 3)
	c.X(0)
	c.CNOT(0, 1)
	c.X(2)
	c.X(2)
	c.Measure(0, 0)
	c.Measure(1, 1)
	c.Measure(2, 2)
	sim := New(c, noise.Depolarizing{}, nil, 1)
	f := NewFrame(3)
	bits := make([]int, 3)
	sim.Run(rng.New(2), f, bits)
	want := inject.NewExecutor(c, noise.Depolarizing{}, nil).Run(rng.New(2))
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d: frame %d vs tableau %d", i, bits[i], want[i])
		}
	}
}

func TestFrameNoiseStatisticsMatchTableau(t *testing.T) {
	// Depolarizing-only campaign on the rep-5 code: engines must agree
	// on the logical error rate within tight statistical error.
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 6000
	p := 0.05
	tabCamp := inject.Campaign{
		Exec:     inject.NewExecutor(code.Circ, noise.NewDepolarizing(p), nil),
		Decode:   code.Decode,
		Expected: 1,
	}
	frCamp := Campaign{
		Sim:      New(code.Circ, noise.NewDepolarizing(p), nil, 7),
		Decode:   code.Decode,
		Expected: 1,
	}
	tr := tabCamp.Run(11, shots).Rate()
	fr := frCamp.Run(13, shots).Rate()
	if math.Abs(tr-fr) > 0.025 {
		t.Fatalf("engines disagree: tableau %.4f vs frame %.4f", tr, fr)
	}
	if fr == 0 {
		t.Fatal("frame engine saw no errors at p=0.05")
	}
}

func TestFrameRadiationExactOnRepetition(t *testing.T) {
	// The repetition code circuit keeps every qubit in a Z eigenstate,
	// so radiation campaigns are frame-exact: rates must agree.
	code, err := qec.NewRepetition(15)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[12], 1.0, true)
	const shots = 4000
	tabCamp := inject.Campaign{
		Exec:     inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev),
		Decode:   code.Decode,
		Expected: 1,
	}
	frCamp := Campaign{
		Sim:      New(tr.Circuit, noise.NewDepolarizing(0.01), ev, 3),
		Decode:   code.Decode,
		Expected: 1,
	}
	a := tabCamp.Run(5, shots).Rate()
	b := frCamp.Run(6, shots).Rate()
	if math.Abs(a-b) > 0.03 {
		t.Fatalf("radiation rates disagree: tableau %.4f vs frame %.4f", a, b)
	}
}

func TestFrameRadiationCloseOnXXZZ(t *testing.T) {
	// XXZZ has superposed reset sites. A reset there projects entangled
	// partners — a nonlocal effect no local Pauli frame can represent —
	// so under saturating strikes the frame engine's collapsed-branch
	// approximation biases toward a coin where the tableau shows a
	// pinned-to-|0> bias (the package documents this validity boundary,
	// and -engine tableau remains the oracle). The test pins the
	// *bounded* disagreement so a regression that widens it further is
	// caught; weak strikes (the whole temporal tail) agree to ~0.02.
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[2], 1.0, true)
	const shots = 3000
	a := (&inject.Campaign{
		Exec:     inject.NewExecutor(tr.Circuit, noise.NewDepolarizing(0.01), ev),
		Decode:   code.Decode,
		Expected: 1,
	}).Run(5, shots).Rate()
	b := (&Campaign{
		Sim:      New(tr.Circuit, noise.NewDepolarizing(0.01), ev, 3),
		Decode:   code.Decode,
		Expected: 1,
	}).Run(6, shots).Rate()
	if math.Abs(a-b) > 0.30 {
		t.Fatalf("XXZZ radiation divergence regressed: tableau %.4f vs frame %.4f", a, b)
	}
	if b == 0 {
		t.Fatal("frame engine saw no radiation errors at all")
	}
}

func TestFrameCleanRunErrorFree(t *testing.T) {
	for _, mk := range []func() (*qec.Code, error){
		func() (*qec.Code, error) { return qec.NewRepetition(7) },
		func() (*qec.Code, error) { return qec.NewXXZZ(3, 3) },
	} {
		code, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		camp := Campaign{
			Sim:      New(code.Circ, noise.Depolarizing{}, nil, 9),
			Decode:   code.Decode,
			Expected: 1,
		}
		if r := camp.Run(1, 500); r.Errors != 0 {
			t.Fatalf("%s: clean frame campaign produced %d errors", code.Name, r.Errors)
		}
	}
}

func TestFrameDeterministicAcrossWorkers(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) Result {
		camp := Campaign{
			Sim:      New(code.Circ, noise.NewDepolarizing(0.05), nil, 2),
			Decode:   code.Decode,
			Expected: 1,
			Workers:  workers,
		}
		return camp.Run(44, 1500)
	}
	if a, b := mk(1), mk(8); a != b {
		t.Fatalf("worker counts disagree: %+v vs %+v", a, b)
	}
}

func TestFrameRunFromPartitionsMatchRun(t *testing.T) {
	code, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{
		Sim:      New(code.Circ, noise.NewDepolarizing(0.05), nil, 2),
		Decode:   code.Decode,
		Expected: 1,
	}
	whole := camp.Run(44, 900)
	var merged Result
	for _, r := range [][2]int{{0, 300}, {300, 299}, {599, 301}} {
		part := camp.RunFrom(44, r[0], r[1])
		merged.Shots += part.Shots
		merged.Errors += part.Errors
	}
	if merged != whole {
		t.Fatalf("partitioned runs %+v != whole run %+v", merged, whole)
	}
}

func TestFrameGatePropagation(t *testing.T) {
	// An injected X before a CNOT control must flip both measurement
	// outcomes; model it with a unit-probability radiation fault whose
	// reference site holds |0> (so the frame sees X^0 erase + pin: the
	// deviation survives as reference |0> vs actual |0> = none). Use a
	// hand-driven frame instead to check propagation rules directly.
	c := circuit.New(2, 2)
	c.CNOT(0, 1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	sim := New(c, noise.Depolarizing{}, nil, 1)
	f := NewFrame(2)
	bits := make([]int, 2)
	// Manually seed an X deviation on qubit 0, then run ops by hand.
	f.Clear()
	f.flipX(0)
	// Replay: CNOT should copy the X to qubit 1.
	if f.getX(0) != 1 || f.getX(1) != 0 {
		t.Fatal("setup wrong")
	}
	sim2 := sim // the op-level behavior is in Run; test through a noise channel instead
	_ = sim2
	// Use a full-probability X-ish channel: depolarizing p=1 flips
	// something every gate; instead verify via the public path that a
	// radiation fault on the control after reference X propagates.
	c2 := circuit.New(2, 2)
	c2.X(0) // reference holds |1> on q0
	c2.Z(0) // extra op: the fault site (reference still |1>)
	c2.CNOT(0, 1)
	c2.Measure(0, 0)
	c2.Measure(1, 1)
	ev := &noise.RadiationEvent{Probs: []float64{1, 0}}
	fsim := New(c2, noise.Depolarizing{}, ev, 1)
	fbits := make([]int, 2)
	fsim.Run(rng.New(1), f, fbits)
	want := inject.NewExecutor(c2, noise.Depolarizing{}, ev).Run(rng.New(1))
	if fbits[0] != want[0] || fbits[1] != want[1] {
		t.Fatalf("frame %v vs tableau %v", fbits, want)
	}
	if fbits[0] != 0 || fbits[1] != 0 {
		t.Fatalf("pinned control should zero both outcomes, got %v", fbits)
	}
	_ = bits
}

func TestFramePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := circuit.New(2, 0)
	New(c, noise.Depolarizing{}, &noise.RadiationEvent{Probs: []float64{1}}, 1)
}

func TestHConjugatesFrames(t *testing.T) {
	// X deviation through H becomes Z: measurement outcome unaffected.
	c := circuit.New(1, 1)
	c.H(0)
	c.H(0)
	c.Measure(0, 0)
	sim := New(c, noise.Depolarizing{}, nil, 1)
	f := NewFrame(1)
	bits := make([]int, 1)
	sim.Run(rng.New(5), f, bits)
	if bits[0] != 0 {
		t.Fatalf("HH|0> frame-measured %d", bits[0])
	}
}

func BenchmarkFrameShotRep15(b *testing.B) {
	code, err := qec.NewRepetition(15)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := arch.Transpile(code.Circ, arch.Mesh(5, 6))
	if err != nil {
		b.Fatal(err)
	}
	dist := tr.Topo.Graph.AllPairsShortestPaths()
	ev := noise.NewRadiationEvent(dist[12], 1.0, true)
	sim := New(tr.Circuit, noise.NewDepolarizing(0.01), ev, 1)
	f := NewFrame(tr.Circuit.NumQubits)
	bits := make([]int, tr.Circuit.NumClbits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(rng.New(uint64(i)), f, bits)
		_ = code.Decode(bits)
	}
}

// --- Universal-engine tests: measurement sampling over the full
// Clifford set must follow the tableau engine's joint distribution ---

// sampleDist estimates the empirical distribution over full classical
// records, with run executing one shot into bits for each shot index.
func sampleDist(shots, nbits int, run func(shot int, bits []int)) map[string]float64 {
	counts := map[string]float64{}
	bits := make([]int, nbits)
	key := make([]byte, nbits)
	for i := 0; i < shots; i++ {
		for j := range bits {
			bits[j] = 0
		}
		run(i, bits)
		for j, b := range bits {
			key[j] = byte('0' + b)
		}
		counts[string(key)]++
	}
	for k := range counts {
		counts[k] /= float64(shots)
	}
	return counts
}

// checkDistClose fails when any outcome's frequency differs by more
// than tol between the two distributions.
func checkDistClose(t *testing.T, name string, want, got map[string]float64, tol float64) {
	t.Helper()
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	for k := range keys {
		if d := got[k] - want[k]; d > tol || d < -tol {
			t.Fatalf("%s: outcome %q frequency %0.4f vs tableau %0.4f (want within %0.3f)",
				name, k, got[k], want[k], tol)
		}
	}
}

// engineDists samples the record distribution of the same circuit from
// the tableau executor, the scalar frame engine and the batched frame
// engine.
func engineDists(t *testing.T, c *circuit.Circuit, shots int) (tab, scalar, batched map[string]float64) {
	t.Helper()
	ex := inject.NewExecutor(c, noise.Depolarizing{}, nil)
	tab = sampleDist(shots, c.NumClbits, func(i int, bits []int) {
		got := ex.Run(rng.New(uint64(1000 + i)))
		copy(bits, got)
		inject.ReleaseBits(got)
	})
	sim := New(c, noise.Depolarizing{}, nil, 42)
	f := NewFrame(c.NumQubits)
	scalar = sampleDist(shots, c.NumClbits, func(i int, bits []int) {
		sim.Run(rng.New(uint64(5000+i)), f, bits)
	})
	b := NewBatchSimulator(sim)
	st := b.NewBatchState()
	words := (shots + 63) / 64
	counts := map[string]float64{}
	key := make([]byte, c.NumClbits)
	for w := 0; w < words; w++ {
		b.RunWord(rng.New(uint64(9000+w)), st)
		for lane := uint(0); lane < 64; lane++ {
			for j, word := range st.Rec {
				key[j] = byte('0' + (word>>lane)&1)
			}
			counts[string(key)]++
		}
	}
	for k := range counts {
		counts[k] /= float64(words * 64)
	}
	return tab, scalar, counts
}

// TestUniversalSamplingBell pins the headline universality property the
// pre-universal engine lacked: a Bell measurement must produce BOTH
// branches (50/50, perfectly correlated) rather than pinning every shot
// to the reference branch.
func TestUniversalSamplingBell(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0)
	c.CNOT(0, 1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	tab, scalar, batched := engineDists(t, c, 6000)
	for _, k := range []string{"01", "10"} {
		if tab[k] != 0 || scalar[k] != 0 || batched[k] != 0 {
			t.Fatalf("anti-correlated Bell outcome appeared: tab=%v scalar=%v batch=%v", tab, scalar, batched)
		}
	}
	checkDistClose(t, "bell/scalar", tab, scalar, 0.03)
	checkDistClose(t, "bell/batched", tab, batched, 0.03)
	if scalar["00"] < 0.4 || scalar["11"] < 0.4 {
		t.Fatalf("scalar frame pinned the Bell branch: %v", scalar)
	}
}

// TestUniversalSamplingMidCircuit pins fresh-coin independence across a
// re-opened branch: H-M-H-M outcomes are two independent fair coins.
func TestUniversalSamplingMidCircuit(t *testing.T) {
	c := circuit.New(1, 2)
	c.H(0)
	c.Measure(0, 0)
	c.H(0)
	c.Measure(0, 1)
	tab, scalar, batched := engineDists(t, c, 8000)
	for _, k := range []string{"00", "01", "10", "11"} {
		if scalar[k] < 0.18 || batched[k] < 0.18 {
			t.Fatalf("mid-circuit coins not independent: scalar=%v batch=%v", scalar, batched)
		}
	}
	checkDistClose(t, "midcircuit/scalar", tab, scalar, 0.03)
	checkDistClose(t, "midcircuit/batched", tab, batched, 0.03)
}

// TestUniversalSamplingResetCollapse pins the correlation a reset's
// projection induces: resetting half a Bell pair leaves the partner in
// the measured branch, so M(partner) is uniform while M(reset qubit) is
// pinned to 0 — randomness that must flow from the preparation coins,
// not from the reset itself.
func TestUniversalSamplingResetCollapse(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0)
	c.CNOT(0, 1)
	c.Reset(0)
	c.Measure(0, 0)
	c.Measure(1, 1)
	tab, scalar, batched := engineDists(t, c, 8000)
	for _, k := range []string{"10", "11"} {
		if scalar[k] != 0 || batched[k] != 0 {
			t.Fatalf("reset qubit measured 1: scalar=%v batch=%v", scalar, batched)
		}
	}
	if scalar["00"] < 0.4 || scalar["01"] < 0.4 || batched["00"] < 0.4 || batched["01"] < 0.4 {
		t.Fatalf("partner branch pinned after reset: scalar=%v batch=%v", scalar, batched)
	}
	checkDistClose(t, "reset/scalar", tab, scalar, 0.03)
	checkDistClose(t, "reset/batched", tab, batched, 0.03)
}

// TestUniversalSamplingGHZ pins three-way branch correlation and the
// S-gate path: a GHZ measurement lands on {000, 111} only, and
// HSSH = HZH = X makes a deterministic |1>.
func TestUniversalSamplingGHZ(t *testing.T) {
	g := circuit.New(3, 3)
	g.H(0)
	g.CNOT(0, 1)
	g.CNOT(1, 2)
	g.Measure(0, 0)
	g.Measure(1, 1)
	g.Measure(2, 2)
	tab, scalar, batched := engineDists(t, g, 6000)
	for k := range scalar {
		if k != "000" && k != "111" {
			t.Fatalf("non-GHZ outcome %q: %v", k, scalar)
		}
	}
	checkDistClose(t, "ghz/scalar", tab, scalar, 0.03)
	checkDistClose(t, "ghz/batched", tab, batched, 0.03)

	s := circuit.New(1, 1)
	s.H(0)
	s.S(0)
	s.S(0)
	s.H(0)
	s.Measure(0, 0)
	_, scalarS, batchedS := engineDists(t, s, 640)
	if scalarS["1"] != 1 || batchedS["1"] != 1 {
		t.Fatalf("HSSH|0> should measure 1 always: scalar=%v batch=%v", scalarS, batchedS)
	}
}

// TestRadiationExactPredicate pins the per-campaign exactness oracle:
// repetition circuits are radiation-exact everywhere, XXZZ under a
// spreading strike is not, and any circuit without radiation is.
func TestRadiationExactPredicate(t *testing.T) {
	rep, err := qec.NewRepetition(5)
	if err != nil {
		t.Fatal(err)
	}
	trRep, err := arch.Transpile(rep.Circ, arch.Mesh(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	distRep := trRep.Topo.Graph.AllPairsShortestPaths()
	if !New(trRep.Circuit, noise.NewDepolarizing(0.01), noise.NewRadiationEvent(distRep[2], 1.0, true), 1).RadiationExact() {
		t.Fatal("repetition radiation campaign should be radiation-exact")
	}
	xxzz, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	trXX, err := arch.Transpile(xxzz.Circ, arch.Mesh(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	distXX := trXX.Topo.Graph.AllPairsShortestPaths()
	if New(trXX.Circuit, noise.NewDepolarizing(0.01), noise.NewRadiationEvent(distXX[2], 1.0, true), 1).RadiationExact() {
		t.Fatal("XXZZ spreading strike should not be radiation-exact")
	}
	if !New(trXX.Circuit, noise.NewDepolarizing(0.01), nil, 1).RadiationExact() {
		t.Fatal("radiation-free campaign should be radiation-exact")
	}
}

// TestFrameXXZZDepolarizingMatchesTableau pins the universal engine's
// exact domain on the paper's headline code: depolarizing-only XXZZ
// rates from the frame engine must agree with the tableau within tight
// statistical error.
func TestFrameXXZZDepolarizingMatchesTableau(t *testing.T) {
	code, err := qec.NewXXZZ(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 6000
	p := 0.03
	a := (&inject.Campaign{
		Exec:     inject.NewExecutor(code.Circ, noise.NewDepolarizing(p), nil),
		Decode:   code.Decode,
		Expected: 1,
	}).Run(11, shots).Rate()
	b := (&Campaign{
		Sim:      New(code.Circ, noise.NewDepolarizing(p), nil, 7),
		Decode:   code.Decode,
		Expected: 1,
	}).Run(13, shots).Rate()
	if math.Abs(a-b) > 0.025 {
		t.Fatalf("XXZZ depolarizing engines disagree: tableau %.4f vs frame %.4f", a, b)
	}
	if b == 0 {
		t.Fatal("frame engine saw no errors at p=0.03")
	}
}
