package frame

import (
	"math"
	"math/bits"
	"runtime"
	"sync"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

// BatchSimulator is the bit-parallel variant of the frame engine: one
// uint64 word carries the same frame bit across 64 shots ("lanes"), so
// every Clifford gate is a handful of branchless word operations and a
// whole word of shots costs barely more than one scalar shot. The
// validity domain is identical to the scalar Simulator (the two share
// the reference trajectory); only the sampling layout differs:
//
//   - Frame state is stored shot-major as bit-planes x[qubit], z[qubit],
//     each word holding the frame bit of 64 concurrent shots.
//   - Depolarizing noise is sampled by geometric skip-sampling over the
//     flattened (site, lane) bit-stream: the RNG is consulted once per
//     error (plus once per shot-word), not once per op-qubit-lane, so
//     small physical error rates cost almost nothing.
//   - Radiation faults are sampled as Bernoulli bit-words
//     (rng.Bernoulli64), ~8 draws per struck op-qubit for all 64 lanes.
//   - Measurement records are emitted as bit-packed words (one uint64
//     per classical bit), ready for word-parallel decoding
//     (qec.(*Code).DecodeBatch).
type BatchSimulator struct {
	sim *Simulator
	// siteBase[i] is the base index of op i's noise sites in the
	// flattened per-shot noise-site stream (barriers contribute none).
	siteBase []int
	numSites int
	// depInvLog caches 1/ln(1-P) for geometric skip-sampling.
	depInvLog float64
}

// NewBatchSimulator wraps a scalar frame simulator for bit-parallel
// sampling. The two engines share the recorded reference trajectory, so
// building the batch view costs O(ops) and no tableau work.
func NewBatchSimulator(sim *Simulator) *BatchSimulator {
	b := &BatchSimulator{
		sim:      sim,
		siteBase: make([]int, len(sim.circ.Ops)),
	}
	n := 0
	for i, op := range sim.circ.Ops {
		b.siteBase[i] = n
		if op.Kind != circuit.KindBarrier {
			n += len(op.Qubits)
		}
	}
	b.numSites = n
	if p := sim.dep.P; p > 0 && p < 1 {
		b.depInvLog = 1 / math.Log1p(-p)
	}
	return b
}

// NewBatch builds the batched engine directly from a circuit; it is
// NewBatchSimulator(New(...)).
func NewBatch(circ *circuit.Circuit, dep noise.Depolarizing, rad *noise.RadiationEvent, refSeed uint64) *BatchSimulator {
	return NewBatchSimulator(New(circ, dep, rad, refSeed))
}

// BatchState is the reusable 64-lane frame and record state of one shot
// word.
type BatchState struct {
	x, z []uint64 // frame bit-planes, one word of 64 lanes per qubit
	// Rec is the packed classical record: Rec[c] holds classical bit c
	// of all 64 lanes.
	Rec []uint64
}

// NewBatchState allocates lane state for the simulator's circuit.
func (s *BatchSimulator) NewBatchState() *BatchState {
	n := s.sim.circ.NumQubits
	if n == 0 {
		n = 1
	}
	return &BatchState{
		x:   make([]uint64, n),
		z:   make([]uint64, n),
		Rec: make([]uint64, s.sim.circ.NumClbits),
	}
}

// Record returns the packed classical bits of one register as a shared
// subslice of the full record — e.g. one stabilization round's syndrome
// words (a qec CRounds register), ready to be XOR-differenced against
// the neighbouring round word-parallel for detection-event extraction.
func (st *BatchState) Record(r circuit.Register) []uint64 {
	return st.Rec[r.Start : r.Start+r.Size]
}

// Clear zeroes the state for reuse.
func (st *BatchState) Clear() {
	for i := range st.x {
		st.x[i] = 0
		st.z[i] = 0
	}
	for i := range st.Rec {
		st.Rec[i] = 0
	}
}

// RunWord executes one word of 64 shots into st (cleared first). Every
// lane owns statistically independent noise; all randomness is drawn
// from src, so identical sources reproduce identical words.
func (s *BatchSimulator) RunWord(src *rng.Source, st *BatchState) {
	st.Clear()
	sim := s.sim
	x, z := st.x, st.z
	if sim.hasH {
		// State preparation is a collapse point: every lane of every
		// qubit draws its branch coin (see the package comment).
		for q := range z {
			z[q] = src.Uint64()
		}
	}
	// nextErr is the absolute position of the next depolarizing error in
	// the flattened (site, lane) bit-stream of numSites*64 positions.
	p := sim.dep.P
	var nextErr int64 = 1 << 62
	switch {
	case p >= 1:
		nextErr = 0
	case p > 0:
		nextErr = noise.GeometricSkip(src, s.depInvLog)
	}
	for i, op := range sim.circ.Ops {
		switch op.Kind {
		case circuit.KindH:
			q := op.Qubits[0]
			x[q], z[q] = z[q], x[q]
		case circuit.KindS:
			// S: X -> Y (adds a Z component); Z unchanged.
			q := op.Qubits[0]
			z[q] ^= x[q]
		case circuit.KindX, circuit.KindY, circuit.KindZ:
			// Deterministic circuit Paulis are part of the reference.
		case circuit.KindCNOT:
			c, t := op.Qubits[0], op.Qubits[1]
			x[t] ^= x[c]
			z[c] ^= z[t]
		case circuit.KindCZ:
			a, b := op.Qubits[0], op.Qubits[1]
			z[b] ^= x[a]
			z[a] ^= x[b]
		case circuit.KindSWAP:
			a, b := op.Qubits[0], op.Qubits[1]
			x[a], x[b] = x[b], x[a]
			z[a], z[b] = z[b], z[a]
		case circuit.KindMeasure:
			q := op.Qubits[0]
			k := sim.ref.MeasIndex[i]
			ref := uint64(0)
			if sim.ref.Record[k] == 1 {
				ref = ^uint64(0)
			}
			st.Rec[op.Clbit] = ref ^ x[q]
			// Only a non-deterministic measurement collapses anything:
			// its deviation phase is replaced by fresh branch coins.
			// Measuring a Z eigenstate leaves the deviation untouched
			// (see the scalar Run).
			if sim.hasH && !sim.ref.Deterministic[k] {
				z[q] = src.Uint64()
			}
		case circuit.KindReset:
			q := op.Qubits[0]
			x[q] = 0
			z[q] = 0
			if sim.hasH {
				z[q] = src.Uint64()
			}
		case circuit.KindBarrier:
			continue
		}
		// Intrinsic depolarizing noise: consume the error positions that
		// fall inside this op's slice of the flattened site stream. The
		// geometric gaps make error positions iid Bernoulli(P) over every
		// (site, lane) bit, and the uniform 3-way type draw completes the
		// X/Y/Z at P/3 channel of the scalar engines.
		if p > 0 {
			base := int64(s.siteBase[i]) << 6
			end := base + int64(len(op.Qubits))<<6
			for nextErr < end {
				lane := uint(nextErr & 63)
				q := op.Qubits[int(nextErr>>6)-s.siteBase[i]]
				switch src.Intn(3) {
				case 0: // X
					x[q] ^= 1 << lane
				case 1: // Y
					x[q] ^= 1 << lane
					z[q] ^= 1 << lane
				default: // Z
					z[q] ^= 1 << lane
				}
				if p >= 1 {
					nextErr++
				} else {
					nextErr += 1 + noise.GeometricSkip(src, s.depInvLog)
				}
			}
		}
		// Radiation reset faults, word-wide: the frame on fired lanes is
		// erased and its X bit set from the recorded reference Z-value;
		// superposed sites first inject the branch operator on a fair
		// per-lane coin (see the scalar Run for the physics).
		if sim.refZ[i] != nil {
			for j, q := range op.Qubits {
				pq := sim.rad.Probs[q]
				if pq <= 0 {
					continue
				}
				fire := src.Bernoulli64(pq)
				if fire == 0 {
					continue
				}
				switch sim.refZ[i][j] {
				case -1: // reference holds |1>, actual pinned to |0>
					x[q] &^= fire
					z[q] &^= fire
					x[q] |= fire
				case 1:
					x[q] &^= fire
					z[q] &^= fire
				case 0:
					coin := fire & src.Uint64()
					br := sim.branch[i][j]
					for _, a := range br.xs {
						x[a] ^= coin
					}
					for _, a := range br.zs {
						z[a] ^= coin
					}
					x[q] &^= fire
					z[q] &^= fire
				}
				if sim.hasH {
					z[q] |= fire & src.Uint64()
				}
			}
		}
	}
}

// BatchDecodeFunc maps one word of packed classical records to the word
// of decoded logical values. Only lanes set in live carry meaningful
// records; a decoder may leave dead lanes arbitrary.
type BatchDecodeFunc func(rec []uint64, live uint64) uint64

// LaneDecode lifts a scalar record decoder onto packed records by
// unpacking each live lane. It is the compatibility path for decoders
// without a word-parallel implementation; the frame propagation is still
// bit-parallel, only the decode runs per lane.
func LaneDecode(decode func(bits []int) int, numClbits int) BatchDecodeFunc {
	return func(rec []uint64, live uint64) uint64 {
		scratch := make([]int, numClbits)
		var out uint64
		for m := live; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m))
			for i := range scratch {
				scratch[i] = int(rec[i]>>lane) & 1
			}
			out |= uint64(decode(scratch)&1) << lane
		}
		return out
	}
}

// batchSplitSalt decorrelates the batched engine's word streams from the
// scalar engines' per-shot streams derived from the same campaign seed.
const batchSplitSalt = 0xb5ad4eceda1ce2a9

// BatchCampaign estimates logical error rates with the bit-parallel
// engine. It honours the sweep.BatchRunner determinism contract at word
// granularity: shot i always lives in lane i%64 of word i/64, and word w
// always consumes the stream split(seed, salt^w), so results are
// invariant under worker count and batch boundaries (word-straddling
// batches re-run the word with disjoint live masks and merge exactly).
// The engine defines its own seed-to-stream mapping: rates are
// statistically equivalent to, but not bit-identical with, the scalar
// engines at the same seed.
type BatchCampaign struct {
	// Sim samples the shot words.
	Sim *BatchSimulator
	// DecodeBatch maps packed records to decoded logical values, e.g.
	// qec.(*Code).DecodeBatch or a LaneDecode adapter.
	DecodeBatch BatchDecodeFunc
	// Expected is the fault-free decoded output.
	Expected int
	// Workers caps parallel word runners; 0 means GOMAXPROCS.
	Workers int
}

// Run executes shots shots deterministically (see RunFrom).
func (c *BatchCampaign) Run(seed uint64, shots int) Result {
	return c.RunFrom(seed, 0, shots)
}

// RunFrom executes the shot range [start, start+shots). Partitioning a
// campaign into ranges — word-aligned or not — merges to exactly the
// result of one Run over the whole range.
func (c *BatchCampaign) RunFrom(seed uint64, start, shots int) Result {
	if shots <= 0 {
		return Result{}
	}
	firstWord := start >> 6
	lastWord := (start + shots - 1) >> 6
	words := lastWord - firstWord + 1
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > words {
		workers = words
	}
	expected := uint64(0)
	if c.Expected&1 == 1 {
		expected = ^uint64(0)
	}
	master := rng.New(seed)
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := c.Sim.NewBatchState()
			local := Result{}
			for word := firstWord + w; word <= lastWord; word += workers {
				live := ^uint64(0)
				if word == firstWord {
					live &= ^uint64(0) << uint(start&63)
				}
				if word == lastWord {
					endLane := uint((start + shots - 1) & 63)
					live &= ^uint64(0) >> (63 - endLane)
				}
				src := master.Split(batchSplitSalt ^ uint64(word))
				c.Sim.RunWord(src, st)
				decoded := c.DecodeBatch(st.Rec, live)
				local.Shots += bits.OnesCount64(live)
				local.Errors += bits.OnesCount64((decoded ^ expected) & live)
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	total := Result{}
	for _, r := range results {
		total.Shots += r.Shots
		total.Errors += r.Errors
	}
	return total
}
