package frame

import (
	"math"
	"math/bits"
	"runtime"
	"sync"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
)

// BatchSimulator is the bit-parallel variant of the frame engine: one
// uint64 word carries the same frame bit across 64 shots ("lanes"), so
// every Clifford gate is a handful of branchless word operations and a
// whole word of shots costs barely more than one scalar shot. The
// validity domain is identical to the scalar Simulator (the two share
// the reference trajectory); only the sampling layout differs:
//
//   - Frame state is stored shot-major as bit-planes x[qubit], z[qubit],
//     each word holding the frame bit of 64 concurrent shots.
//   - Depolarizing noise is sampled by geometric skip-sampling over the
//     flattened (site, lane) bit-stream: the RNG is consulted once per
//     error (plus once per shot-word), not once per op-qubit-lane, so
//     small physical error rates cost almost nothing.
//   - Radiation faults are sampled as Bernoulli bit-words
//     (rng.Bernoulli64), ~8 draws per struck op-qubit for all 64 lanes.
//   - Measurement records are emitted as bit-packed words (one uint64
//     per classical bit), ready for word-parallel decoding
//     (qec.(*Code).DecodeBatch).
type BatchSimulator struct {
	sim *Simulator
	// siteBase[i] is the base index of op i's noise sites in the
	// flattened per-shot noise-site stream (barriers contribute none).
	siteBase []int
	numSites int
	// depInvLog caches 1/ln(1-P) for geometric skip-sampling.
	depInvLog float64
}

// NewBatchSimulator wraps a scalar frame simulator for bit-parallel
// sampling. The two engines share the recorded reference trajectory, so
// building the batch view costs O(ops) and no tableau work.
func NewBatchSimulator(sim *Simulator) *BatchSimulator {
	b := &BatchSimulator{
		sim:      sim,
		siteBase: make([]int, len(sim.circ.Ops)),
	}
	n := 0
	for i, op := range sim.circ.Ops {
		b.siteBase[i] = n
		if op.Kind != circuit.KindBarrier {
			n += len(op.Qubits)
		}
	}
	b.numSites = n
	if p := sim.dep.P; p > 0 && p < 1 {
		b.depInvLog = 1 / math.Log1p(-p)
	}
	return b
}

// NewBatch builds the batched engine directly from a circuit; it is
// NewBatchSimulator(New(...)).
func NewBatch(circ *circuit.Circuit, dep noise.Depolarizing, rad *noise.RadiationEvent, refSeed uint64) *BatchSimulator {
	return NewBatchSimulator(New(circ, dep, rad, refSeed))
}

// Tile geometry: the engine processes W-word tiles, W in {1, 4, 8},
// i.e. 64, 256 or 512 shot lanes per kernel pass. Wider tiles amortise
// the per-op dispatch over more lanes and give the compiler fixed-width
// inner loops; the word→stream mapping is unchanged, so every width
// produces bit-identical results (see BatchCampaign).
const (
	// MaxTileWords is the widest supported tile in 64-lane words.
	MaxTileWords = 8
	// TileShots is the widest tile's lane count — the batch alignment
	// that keeps policy batches tile-shaped at every engine width.
	TileShots = MaxTileWords * 64
)

// TileWidths lists the supported engine widths in lanes, narrowest
// first.
func TileWidths() []int { return []int{64, 256, 512} }

// BatchState is the reusable frame and record state of one shot tile:
// up to 64·w concurrent lanes stored as w-word qubit-major tiles.
type BatchState struct {
	// w is the current tile width in words — the stride of the planes.
	w int
	// nq and nc are the plane heights (qubits, clbits); capW is the
	// allocated tile capacity in words.
	nq, nc, capW int
	// x and z are frame bit-planes: x[q·w+k] holds the X frame bit of
	// qubit q for the 64 lanes of tile word k.
	x, z []uint64
	// Rec is the packed classical record: Rec[c·w+k] holds classical
	// bit c of tile word k's 64 lanes. At width one this is exactly the
	// legacy one-word-per-clbit layout.
	Rec []uint64
}

// NewBatchState allocates single-word (64-lane) state for the
// simulator's circuit.
func (s *BatchSimulator) NewBatchState() *BatchState { return s.NewTileState(1) }

// NewTileState allocates lane state for tiles of up to w words.
func (s *BatchSimulator) NewTileState(w int) *BatchState {
	if w < 1 {
		w = 1
	}
	n := s.sim.circ.NumQubits
	if n == 0 {
		n = 1
	}
	st := &BatchState{nq: n, nc: s.sim.circ.NumClbits}
	st.grow(w)
	st.reshape(1)
	return st
}

// grow reallocates the backing planes for tiles of up to w words.
func (st *BatchState) grow(w int) {
	st.capW = w
	st.x = make([]uint64, st.nq*w)
	st.z = make([]uint64, st.nq*w)
	st.Rec = make([]uint64, st.nc*w)
}

// reshape sets the tile width (growing the planes if needed), reslices
// the views to stride w, and zeroes them for the next tile.
func (st *BatchState) reshape(w int) {
	if w > st.capW {
		st.grow(w)
	}
	st.w = w
	st.x = st.x[: st.nq*w : cap(st.x)]
	st.z = st.z[: st.nq*w : cap(st.z)]
	st.Rec = st.Rec[: st.nc*w : cap(st.Rec)]
	st.Clear()
}

// Width reports the current tile width in words.
func (st *BatchState) Width() int { return st.w }

// Record returns the packed classical bits of one register as a shared
// subslice of the full record — e.g. one stabilization round's syndrome
// words (a qec CRounds register), ready to be XOR-differenced against
// the neighbouring round word-parallel for detection-event extraction.
// At tile widths above one the subslice is the register's tile rows
// (stride Width words per clbit).
func (st *BatchState) Record(r circuit.Register) []uint64 {
	return st.Rec[r.Start*st.w : (r.Start+r.Size)*st.w]
}

// Clear zeroes the state for reuse.
func (st *BatchState) Clear() {
	for i := range st.x {
		st.x[i] = 0
		st.z[i] = 0
	}
	for i := range st.Rec {
		st.Rec[i] = 0
	}
}

// RunWord executes one word of 64 shots into st (cleared first). Every
// lane owns statistically independent noise; all randomness is drawn
// from src, so identical sources reproduce identical words. It is
// RunTile at width one.
func (s *BatchSimulator) RunWord(src *rng.Source, st *BatchState) {
	srcs := [1]*rng.Source{src}
	s.RunTile(srcs[:], st)
}

// RunTile executes one tile of len(srcs) shot words (64·len(srcs)
// lanes) into st, reshaping it to the tile width first. Tile word k
// draws all of its randomness from srcs[k] in exactly the order RunWord
// consumes a single stream, so a w-word tile is bit-for-bit the w
// RunWord calls it replaces — engine width never changes results, only
// how many lanes share one pass over the op list.
func (s *BatchSimulator) RunTile(srcs []*rng.Source, st *BatchState) {
	w := len(srcs)
	st.reshape(w)
	sim := s.sim
	x, z := st.x, st.z
	if sim.hasH {
		// State preparation is a collapse point: every lane of every
		// qubit draws its branch coin (see the package comment).
		for q := 0; q < st.nq; q++ {
			base := q * w
			for k := 0; k < w; k++ {
				z[base+k] = srcs[k].Uint64()
			}
		}
	}
	// nextErr[k] is the absolute position of tile word k's next
	// depolarizing error in the flattened (site, lane) bit-stream of
	// numSites*64 positions.
	p := sim.dep.P
	var nextErr [MaxTileWords]int64
	for k := 0; k < w; k++ {
		switch {
		case p >= 1:
			nextErr[k] = 0
		case p > 0:
			nextErr[k] = noise.GeometricSkip(srcs[k], s.depInvLog)
		default:
			nextErr[k] = 1 << 62
		}
	}
	for i, op := range sim.circ.Ops {
		switch op.Kind {
		case circuit.KindH:
			q := op.Qubits[0] * w
			tileSwap(x[q:q+w], z[q:q+w])
		case circuit.KindS:
			// S: X -> Y (adds a Z component); Z unchanged.
			q := op.Qubits[0] * w
			tileXor(z[q:q+w], x[q:q+w])
		case circuit.KindX, circuit.KindY, circuit.KindZ:
			// Deterministic circuit Paulis are part of the reference.
		case circuit.KindCNOT:
			c, t := op.Qubits[0]*w, op.Qubits[1]*w
			tileXor(x[t:t+w], x[c:c+w])
			tileXor(z[c:c+w], z[t:t+w])
		case circuit.KindCZ:
			a, b := op.Qubits[0]*w, op.Qubits[1]*w
			tileXor(z[b:b+w], x[a:a+w])
			tileXor(z[a:a+w], x[b:b+w])
		case circuit.KindSWAP:
			a, b := op.Qubits[0]*w, op.Qubits[1]*w
			tileSwap(x[a:a+w], x[b:b+w])
			tileSwap(z[a:a+w], z[b:b+w])
		case circuit.KindMeasure:
			q := op.Qubits[0] * w
			mi := sim.ref.MeasIndex[i]
			ref := uint64(0)
			if sim.ref.Record[mi] == 1 {
				ref = ^uint64(0)
			}
			r := op.Clbit * w
			tileFillXor(st.Rec[r:r+w], x[q:q+w], ref)
			// Only a non-deterministic measurement collapses anything:
			// its deviation phase is replaced by fresh branch coins.
			// Measuring a Z eigenstate leaves the deviation untouched
			// (see the scalar Run).
			if sim.hasH && !sim.ref.Deterministic[mi] {
				for k := 0; k < w; k++ {
					z[q+k] = srcs[k].Uint64()
				}
			}
		case circuit.KindReset:
			q := op.Qubits[0] * w
			tileZero(x[q : q+w])
			tileZero(z[q : q+w])
			if sim.hasH {
				for k := 0; k < w; k++ {
					z[q+k] = srcs[k].Uint64()
				}
			}
		case circuit.KindBarrier:
			continue
		}
		// Noise is consumed per tile word so each word's stream sees
		// exactly RunWord's draw order: this op's depolarizing errors,
		// then its radiation coins.
		hasRad := sim.refZ[i] != nil
		if p == 0 && !hasRad {
			continue
		}
		for k := 0; k < w; k++ {
			src := srcs[k]
			// Intrinsic depolarizing noise: consume the error positions
			// that fall inside this op's slice of the flattened site
			// stream. The geometric gaps make error positions iid
			// Bernoulli(P) over every (site, lane) bit, and the uniform
			// 3-way type draw completes the X/Y/Z at P/3 channel of the
			// scalar engines.
			if p > 0 {
				base := int64(s.siteBase[i]) << 6
				end := base + int64(len(op.Qubits))<<6
				ne := nextErr[k]
				for ne < end {
					lane := uint(ne & 63)
					q := op.Qubits[int(ne>>6)-s.siteBase[i]]*w + k
					switch src.Intn(3) {
					case 0: // X
						x[q] ^= 1 << lane
					case 1: // Y
						x[q] ^= 1 << lane
						z[q] ^= 1 << lane
					default: // Z
						z[q] ^= 1 << lane
					}
					if p >= 1 {
						ne++
					} else {
						ne += 1 + noise.GeometricSkip(src, s.depInvLog)
					}
				}
				nextErr[k] = ne
			}
			// Radiation reset faults, word-wide: the frame on fired
			// lanes is erased and its X bit set from the recorded
			// reference Z-value; superposed sites first inject the
			// branch operator on a fair per-lane coin (see the scalar
			// Run for the physics).
			if hasRad {
				for j, qq := range op.Qubits {
					pq := sim.rad.Probs[qq]
					if pq <= 0 {
						continue
					}
					fire := src.Bernoulli64(pq)
					if fire == 0 {
						continue
					}
					q := qq*w + k
					switch sim.refZ[i][j] {
					case -1: // reference holds |1>, actual pinned to |0>
						x[q] &^= fire
						z[q] &^= fire
						x[q] |= fire
					case 1:
						x[q] &^= fire
						z[q] &^= fire
					case 0:
						coin := fire & src.Uint64()
						br := sim.branch[i][j]
						for _, a := range br.xs {
							x[a*w+k] ^= coin
						}
						for _, a := range br.zs {
							z[a*w+k] ^= coin
						}
						x[q] &^= fire
						z[q] &^= fire
					}
					if sim.hasH {
						z[q] |= fire & src.Uint64()
					}
				}
			}
		}
	}
}

// BatchDecodeFunc maps one word of packed classical records to the word
// of decoded logical values. Only lanes set in live carry meaningful
// records; a decoder may leave dead lanes arbitrary.
type BatchDecodeFunc func(rec []uint64, live uint64) uint64

// TileDecodeFunc maps a w-word tile of packed classical records
// (rec[c·w+k] holds classical bit c of tile word k) to per-word decoded
// logical values: out[k] receives word k's decoded word, and only lanes
// set in live[k] carry meaningful records. qec.(*Code).DecodeTile is
// the word-parallel implementation; WordDecodeTile adapts a per-word
// decoder.
type TileDecodeFunc func(rec []uint64, w int, live, out []uint64)

// WordDecodeTile lifts a per-word decoder onto tiles by re-slicing each
// tile word's records into a scratch buffer — the compatibility path
// for BatchDecodeFunc decoders that predate the tile layout.
func WordDecodeTile(decode BatchDecodeFunc, numClbits int) TileDecodeFunc {
	return func(rec []uint64, w int, live, out []uint64) {
		if w == 1 {
			out[0] = decode(rec, live[0])
			return
		}
		scratch := make([]uint64, numClbits)
		for k := 0; k < w; k++ {
			for c := range scratch {
				scratch[c] = rec[c*w+k]
			}
			out[k] = decode(scratch, live[k])
		}
	}
}

// LaneDecode lifts a scalar record decoder onto packed records by
// unpacking each live lane. It is the compatibility path for decoders
// without a word-parallel implementation; the frame propagation is still
// bit-parallel, only the decode runs per lane.
func LaneDecode(decode func(bits []int) int, numClbits int) BatchDecodeFunc {
	return func(rec []uint64, live uint64) uint64 {
		scratch := make([]int, numClbits)
		var out uint64
		for m := live; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m))
			for i := range scratch {
				scratch[i] = int(rec[i]>>lane) & 1
			}
			out |= uint64(decode(scratch)&1) << lane
		}
		return out
	}
}

// LaneDecodeTile is LaneDecode over tiles: each live lane of each tile
// word is unpacked through the scalar decoder.
func LaneDecodeTile(decode func(bits []int) int, numClbits int) TileDecodeFunc {
	return func(rec []uint64, w int, live, out []uint64) {
		scratch := make([]int, numClbits)
		for k := 0; k < w; k++ {
			var o uint64
			for m := live[k]; m != 0; m &= m - 1 {
				lane := uint(bits.TrailingZeros64(m))
				for i := range scratch {
					scratch[i] = int(rec[i*w+k]>>lane) & 1
				}
				o |= uint64(decode(scratch)&1) << lane
			}
			out[k] = o
		}
	}
}

// batchSplitSalt decorrelates the batched engine's word streams from the
// scalar engines' per-shot streams derived from the same campaign seed.
const batchSplitSalt = 0xb5ad4eceda1ce2a9

// BatchCampaign estimates logical error rates with the bit-parallel
// engine. It honours the sweep.BatchRunner determinism contract at word
// granularity: shot i always lives in lane i%64 of word i/64, and word w
// always consumes the stream split(seed, salt^w), so results are
// invariant under worker count, batch boundaries AND engine width
// (word-straddling batches re-run the word with disjoint live masks and
// merge exactly; a tile is just several words sharing one kernel pass,
// each still on its own word stream, grouped on the absolute word grid).
// The engine defines its own seed-to-stream mapping: rates are
// statistically equivalent to, but not bit-identical with, the scalar
// engines at the same seed.
type BatchCampaign struct {
	// Sim samples the shot words.
	Sim *BatchSimulator
	// DecodeTile maps packed record tiles to decoded logical words,
	// e.g. qec.(*Code).DecodeTile or a LaneDecodeTile adapter. When nil
	// the campaign falls back to DecodeBatch at width one.
	DecodeTile TileDecodeFunc
	// DecodeBatch is the legacy per-word decoder, honoured (at width
	// one) when DecodeTile is nil.
	DecodeBatch BatchDecodeFunc
	// Expected is the fault-free decoded output.
	Expected int
	// Workers caps parallel word runners; 0 means GOMAXPROCS.
	Workers int
	// Width is the engine width in lanes (64, 256 or 512); 0 means 64.
	// Width is pure mechanism: it never changes results.
	Width int

	// statePool recycles worker tile states across RunFrom calls, so a
	// campaign advanced chunk by chunk (the sweep engine's shape) pays
	// its state allocation once, not once per chunk.
	statePool sync.Pool
}

// Run executes shots shots deterministically (see RunFrom).
func (c *BatchCampaign) Run(seed uint64, shots int) Result {
	return c.RunFrom(seed, 0, shots)
}

// tileWords resolves the campaign's tile width in words.
func (c *BatchCampaign) tileWords() int {
	tw := c.Width / 64
	if tw < 1 {
		tw = 1
	}
	if tw > MaxTileWords {
		tw = MaxTileWords
	}
	if c.DecodeTile == nil && c.DecodeBatch != nil {
		tw = 1 // per-word decoders predate the tile layout
	}
	return tw
}

// RunFrom executes the shot range [start, start+shots). Partitioning a
// campaign into ranges — word-aligned or not — merges to exactly the
// result of one Run over the whole range.
func (c *BatchCampaign) RunFrom(seed uint64, start, shots int) Result {
	if shots <= 0 {
		return Result{}
	}
	firstWord := start >> 6
	lastWord := (start + shots - 1) >> 6
	tw := c.tileWords()
	// Tiles sit on the absolute word grid, so a tile's word membership —
	// and therefore which words share a kernel pass — is independent of
	// the range being run; edge tiles simply run narrow.
	firstTile := firstWord / tw
	lastTile := lastWord / tw
	tiles := lastTile - firstTile + 1
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tiles {
		workers = tiles
	}
	expected := uint64(0)
	if c.Expected&1 == 1 {
		expected = ^uint64(0)
	}
	master := rng.New(seed)
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, _ := c.statePool.Get().(*BatchState)
			if st == nil {
				st = c.Sim.NewTileState(tw)
			}
			defer c.statePool.Put(st)
			// Per-word RNG streams are pooled: SplitInto re-derives each
			// word's stream into a fixed Source, so the steady-state
			// loop allocates nothing.
			var streams [MaxTileWords]rng.Source
			var srcs [MaxTileWords]*rng.Source
			for k := range srcs {
				srcs[k] = &streams[k]
			}
			var live, out [MaxTileWords]uint64
			local := Result{}
			for tile := firstTile + w; tile <= lastTile; tile += workers {
				w0 := tile * tw
				w1 := w0 + tw - 1
				if w0 < firstWord {
					w0 = firstWord
				}
				if w1 > lastWord {
					w1 = lastWord
				}
				wc := w1 - w0 + 1
				for k := 0; k < wc; k++ {
					word := w0 + k
					lv := ^uint64(0)
					if word == firstWord {
						lv &= ^uint64(0) << uint(start&63)
					}
					if word == lastWord {
						endLane := uint((start + shots - 1) & 63)
						lv &= ^uint64(0) >> (63 - endLane)
					}
					live[k] = lv
					master.SplitInto(batchSplitSalt^uint64(word), &streams[k])
				}
				c.Sim.RunTile(srcs[:wc], st)
				if c.DecodeTile != nil {
					c.DecodeTile(st.Rec, wc, live[:wc], out[:wc])
				} else {
					out[0] = c.DecodeBatch(st.Rec, live[0])
				}
				for k := 0; k < wc; k++ {
					local.Shots += bits.OnesCount64(live[k])
					local.Errors += bits.OnesCount64((out[k] ^ expected) & live[k])
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	total := Result{}
	for _, r := range results {
		total.Shots += r.Shots
		total.Errors += r.Errors
	}
	return total
}
