// Package frame implements Pauli-frame simulation, the fast sampling
// backend used by modern QEC simulators (e.g. Stim): instead of
// evolving a full stabilizer tableau per shot, one noiseless reference
// execution is recorded once, and each noisy shot only propagates the
// Pauli deviation ("frame") caused by injected errors through the
// Clifford circuit. Gates cost O(1) per qubit-word instead of O(n), and
// measurements O(1) instead of O(n²).
//
// Correctness and validity domain:
//
//   - Pauli (depolarizing) noise on any Clifford circuit: exact. The
//     noisy state is always a Pauli times the reference trajectory, so
//     measurement outcomes are the reference outcomes XOR the frame's X
//     component, and every decoding statistic (detection events,
//     decoded logical values, logical parities) is reproduced exactly.
//   - Radiation reset faults at sites where the reference state is a
//     Z eigenstate: exact (the reset deviation is X^[ref=1], which the
//     simulator computes from recorded reference Z-values). The entire
//     repetition-code family satisfies this, so its radiation campaigns
//     are frame-exact.
//   - Radiation reset faults on superposed sites (XXZZ data qubits
//     inside X-plaquette extraction, mx qubits mid-plaquette): the
//     reset projects entangled partners, a nonlocal effect outside the
//     Pauli-frame formalism; the simulator approximates it with a fair
//     coin on the struck qubit, which underestimates correlated damage.
//     Use the tableau engine (package inject) for faithful
//     heavy-radiation XXZZ campaigns; the frame engine remains useful
//     there for fast, conservative sweeps.
//
// Branch-dependent raw bitstrings are pinned to the reference branch
// unless DecohereMeasurements is enabled, which injects a 50% Z frame
// after every measurement to re-randomise dependent outcomes.
package frame

import (
	"fmt"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
	"radqec/internal/stab"
)

// Simulator samples shots of one circuit under depolarizing noise and a
// radiation event, using Pauli-frame propagation.
type Simulator struct {
	circ *circuit.Circuit
	dep  noise.Depolarizing
	rad  *noise.RadiationEvent
	// samp is the immutable skip-sampling template for the depolarizing
	// channel; each shot copies and reseeds it.
	samp noise.SkipSampler
	// ref[k] is the reference outcome of the k-th measurement op.
	ref []int
	// measIndex[i] maps op index to measurement index (-1 otherwise).
	measIndex []int
	// refZ[i][j] is the reference Z-expectation (+1, -1, or 0 for
	// superposed) of op i's j-th qubit right after the op, recorded only
	// where the radiation event can fire.
	refZ [][]int
	// DecohereMeasurements injects a 50% Z frame after each measurement,
	// re-randomising reference-branch-dependent outcomes. Not needed for
	// decoding statistics; see the package comment.
	DecohereMeasurements bool
}

// New builds a frame simulator. The reference execution runs the
// noiseless circuit once on the tableau simulator with a stream derived
// from refSeed; rad may be nil.
func New(circ *circuit.Circuit, dep noise.Depolarizing, rad *noise.RadiationEvent, refSeed uint64) *Simulator {
	if rad == nil {
		rad = noise.NoRadiation(circ.NumQubits)
	}
	if len(rad.Probs) != circ.NumQubits {
		panic(fmt.Sprintf("frame: radiation table covers %d qubits, circuit has %d",
			len(rad.Probs), circ.NumQubits))
	}
	s := &Simulator{
		circ:      circ,
		dep:       dep,
		rad:       rad,
		samp:      dep.Skip(),
		measIndex: make([]int, len(circ.Ops)),
		refZ:      make([][]int, len(circ.Ops)),
	}
	// Record the reference trajectory, including the reference Z-value
	// of every qubit a radiation reset could strike (needed to express
	// the reset fault as a Pauli frame update).
	tab := stab.New(max(circ.NumQubits, 1))
	src := rng.New(refSeed)
	for i, op := range circ.Ops {
		s.measIndex[i] = -1
		switch op.Kind {
		case circuit.KindH:
			tab.H(op.Qubits[0])
		case circuit.KindX:
			tab.X(op.Qubits[0])
		case circuit.KindY:
			tab.Y(op.Qubits[0])
		case circuit.KindZ:
			tab.Z(op.Qubits[0])
		case circuit.KindS:
			tab.S(op.Qubits[0])
		case circuit.KindCNOT:
			tab.CNOT(op.Qubits[0], op.Qubits[1])
		case circuit.KindCZ:
			tab.CZ(op.Qubits[0], op.Qubits[1])
		case circuit.KindSWAP:
			tab.SWAP(op.Qubits[0], op.Qubits[1])
		case circuit.KindMeasure:
			s.measIndex[i] = len(s.ref)
			s.ref = append(s.ref, tab.MeasureZ(op.Qubits[0], src))
		case circuit.KindReset:
			tab.Reset(op.Qubits[0], src)
		}
		if op.Kind != circuit.KindBarrier && s.mayFire(op) {
			vals := make([]int, len(op.Qubits))
			for j, q := range op.Qubits {
				vals[j] = tab.ExpectationZ(q) // +1 |0>, -1 |1>, 0 superposed
			}
			s.refZ[i] = vals
		}
	}
	return s
}

// ExactFor reports whether the frame engines reproduce the tableau
// engine's statistics exactly for ANY fault configuration on the
// circuit: without H or S gates a circuit starting from |0...0> never
// leaves the computational basis, so every measurement is deterministic
// and every radiation reset site is a Z eigenstate (see the validity
// domain in the package comment). The whole repetition-code family
// qualifies on every topology; XXZZ circuits do not (their plaquettes
// need H). Depolarizing-only campaigns are exact regardless — this
// predicate is the conservative test that also covers radiation.
func ExactFor(c *circuit.Circuit) bool {
	for _, op := range c.Ops {
		switch op.Kind {
		case circuit.KindH, circuit.KindS:
			return false
		}
	}
	return true
}

// mayFire reports whether the radiation event can strike any qubit of
// the op (so reference Z-values are only recorded where needed).
func (s *Simulator) mayFire(op circuit.Op) bool {
	for _, q := range op.Qubits {
		if q < len(s.rad.Probs) && s.rad.Probs[q] > 0 {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Frame is the per-shot Pauli deviation state; reusable across shots.
type Frame struct {
	x, z []uint64
}

// NewFrame allocates a frame for n qubits.
func NewFrame(n int) *Frame {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	return &Frame{x: make([]uint64, words), z: make([]uint64, words)}
}

// Clear zeroes the frame for reuse.
func (f *Frame) Clear() {
	for i := range f.x {
		f.x[i] = 0
		f.z[i] = 0
	}
}

func (f *Frame) getX(q int) uint64 { return (f.x[q/64] >> (q % 64)) & 1 }
func (f *Frame) flipX(q int)       { f.x[q/64] ^= 1 << (q % 64) }
func (f *Frame) flipZ(q int)       { f.z[q/64] ^= 1 << (q % 64) }
func (f *Frame) clearQ(q int) {
	mask := ^(uint64(1) << (q % 64))
	f.x[q/64] &= mask
	f.z[q/64] &= mask
}

// swapXZ exchanges the X and Z frame bits of q (Hadamard conjugation).
func (f *Frame) swapXZ(q int) {
	w, b := q/64, uint(q%64)
	xb := (f.x[w] >> b) & 1
	zb := (f.z[w] >> b) & 1
	if xb != zb {
		f.x[w] ^= 1 << b
		f.z[w] ^= 1 << b
	}
}

// Run executes one shot into bits (length NumClbits). The frame is
// cleared first, so frames can be reused across shots.
func (s *Simulator) Run(src *rng.Source, f *Frame, bits []int) {
	f.Clear()
	samp := s.samp
	samp.Reset(src)
	for i, op := range s.circ.Ops {
		switch op.Kind {
		case circuit.KindH:
			f.swapXZ(op.Qubits[0])
		case circuit.KindS:
			// S: X -> Y (adds a Z component); Z unchanged.
			if f.getX(op.Qubits[0]) == 1 {
				f.flipZ(op.Qubits[0])
			}
		case circuit.KindX, circuit.KindY, circuit.KindZ:
			// Deterministic circuit Paulis are part of the reference;
			// they commute with the frame up to global phase.
		case circuit.KindCNOT:
			c, t := op.Qubits[0], op.Qubits[1]
			if f.getX(c) == 1 {
				f.flipX(t)
			}
			if (f.z[t/64]>>(t%64))&1 == 1 {
				f.flipZ(c)
			}
		case circuit.KindCZ:
			a, b := op.Qubits[0], op.Qubits[1]
			if f.getX(a) == 1 {
				f.flipZ(b)
			}
			if f.getX(b) == 1 {
				f.flipZ(a)
			}
		case circuit.KindSWAP:
			a, b := op.Qubits[0], op.Qubits[1]
			xa, xb := f.getX(a), f.getX(b)
			if xa != xb {
				f.flipX(a)
				f.flipX(b)
			}
			za := (f.z[a/64] >> (a % 64)) & 1
			zb := (f.z[b/64] >> (b % 64)) & 1
			if za != zb {
				f.flipZ(a)
				f.flipZ(b)
			}
		case circuit.KindMeasure:
			q := op.Qubits[0]
			bits[op.Clbit] = s.ref[s.measIndex[i]] ^ int(f.getX(q))
			// Measurement collapses the deviation's phase information.
			w, b := q/64, uint(q%64)
			f.z[w] &= ^(uint64(1) << b)
			if s.DecohereMeasurements && src.Bool(0.5) {
				f.flipZ(q)
			}
		case circuit.KindReset:
			// Reset erases any deviation on the qubit.
			f.clearQ(op.Qubits[0])
		case circuit.KindBarrier:
			continue
		}
		// Intrinsic depolarizing noise toggles frame bits.
		if s.dep.P > 0 {
			for _, q := range op.Qubits {
				switch samp.Sample(src) {
				case noise.ErrX:
					f.flipX(q)
				case noise.ErrY:
					f.flipX(q)
					f.flipZ(q)
				case noise.ErrZ:
					f.flipZ(q)
				}
			}
		}
		// Radiation reset faults pin the actual qubit to |0>. Relative
		// to the reference, which holds Z-value v at this site, the
		// pinned state is X^[v=1] times the reference, so the frame is
		// erased and its X bit set from v. Superposed reference sites
		// (v unknown, only on non-CSS-aligned qubits mid-plaquette) are
		// approximated by a fair coin — exact in marginal, slightly
		// decorrelated from entangled partners; the repetition code has
		// no such sites, so its radiation campaigns are frame-exact.
		if s.refZ[i] != nil {
			for j, q := range op.Qubits {
				if !s.rad.Fires(q, src) {
					continue
				}
				f.clearQ(q)
				switch s.refZ[i][j] {
				case -1: // reference holds |1>, actual pinned to |0>
					f.flipX(q)
				case 0: // superposed reference: coin-flip deviation
					if src.Bool(0.5) {
						f.flipX(q)
					}
				}
			}
		}
	}
}
