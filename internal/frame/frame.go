// Package frame implements Pauli-frame simulation, the fast sampling
// backend used by modern QEC simulators (e.g. Stim): instead of
// evolving a full stabilizer tableau per shot, one noiseless reference
// execution is recorded once, and each noisy shot only propagates the
// Pauli deviation ("frame") caused by injected errors through the
// Clifford circuit. Gates cost O(1) per qubit-word instead of O(n), and
// measurements O(1) instead of O(n²).
//
// The engine is universal over the Clifford set: H, S, CX, CZ, SWAP,
// Paulis, measurement and reset are all propagated exactly. Measurement
// sampling follows Stim's reference-record construction — a shot's
// outcome is the reference outcome XOR the frame's X component, and the
// frame's Z component is re-randomised at every collapse point: state
// preparation, each reset, and each measurement whose reference outcome
// is non-deterministic (per-measurement flags recorded by
// stab.RunReference; a deterministic measurement reads a Z eigenstate
// and collapses nothing). Injecting a 50% Z there
// is physically a no-op (the qubit is a Z eigenstate) but decorrelates
// the branch labels of non-deterministic measurements from the
// reference branch, so the sampled records follow the exact joint
// outcome distribution of the tableau engine for Pauli (depolarizing)
// noise on any Clifford circuit. Circuits without H never move Z frame
// bits into X, so the collapse coins are skipped there and the
// computational-basis fast path is untouched.
//
// Validity domain:
//
//   - Pauli (depolarizing) noise on any Clifford circuit: exact, raw
//     bitstrings included.
//   - Radiation reset faults at sites where the reference state is a
//     Z eigenstate: exact (the reset deviation is X^[ref=1], computed
//     from recorded reference Z-values). The repetition family has only
//     such sites, so its radiation campaigns are frame-exact.
//   - Radiation reset faults on superposed sites (XXZZ data qubits
//     inside X-plaquette extraction, mx qubits mid-plaquette): the
//     reset projects entangled partners, a nonlocal effect outside the
//     Pauli-frame formalism. The simulator approximates it at the
//     collapsed-branch level: a fair branch coin conditionally injects
//     the recorded branch operator (a reference stabilizer
//     anti-commuting with Z on the struck site), so entangled partners
//     take correlated damage, and the struck site is then pinned to
//     |0>. The residual error is the difference between the projected
//     and unprojected reference trajectory; RadiationExact reports
//     whether a campaign has any such site, and the tableau engine
//     (package inject) remains the oracle for faithful heavy-radiation
//     XXZZ campaigns.
package frame

import (
	"fmt"

	"radqec/internal/circuit"
	"radqec/internal/noise"
	"radqec/internal/rng"
	"radqec/internal/stab"
)

// branchOp is the sparse branch operator of a superposed radiation
// site: a reference stabilizer anti-commuting with Z on the struck
// qubit, injected into the frame on a fair coin when the reset fires.
type branchOp struct {
	xs, zs []int
}

// Simulator samples shots of one circuit under depolarizing noise and a
// radiation event, using Pauli-frame propagation.
type Simulator struct {
	circ *circuit.Circuit
	dep  noise.Depolarizing
	rad  *noise.RadiationEvent
	// samp is the immutable skip-sampling template for the depolarizing
	// channel; each shot copies and reseeds it.
	samp noise.SkipSampler
	// ref is the recorded noiseless reference execution, including the
	// per-measurement determinism flags.
	ref *stab.Reference
	// refZ[i][j] is the reference Z-expectation (+1, -1, or 0 for
	// superposed) of op i's j-th qubit right after the op, recorded only
	// where the radiation event can fire.
	refZ [][]int
	// branch[i][j] is the branch operator of op i's j-th qubit, recorded
	// only where refZ is 0 (superposed strikeable sites).
	branch [][]branchOp
	// hasH records whether the circuit contains a Hadamard. Only H moves
	// Z frame bits into the X plane, so without one the collapse-point Z
	// coins are unobservable and are skipped entirely.
	hasH bool
	// radExact records whether every strikeable site is a Z eigenstate
	// in the reference (no branch operators recorded).
	radExact bool
}

// New builds a frame simulator. The reference execution runs the
// noiseless circuit once on the tableau simulator with a stream derived
// from refSeed; rad may be nil.
func New(circ *circuit.Circuit, dep noise.Depolarizing, rad *noise.RadiationEvent, refSeed uint64) *Simulator {
	if rad == nil {
		rad = noise.NoRadiation(circ.NumQubits)
	}
	if len(rad.Probs) != circ.NumQubits {
		panic(fmt.Sprintf("frame: radiation table covers %d qubits, circuit has %d",
			len(rad.Probs), circ.NumQubits))
	}
	s := &Simulator{
		circ:     circ,
		dep:      dep,
		rad:      rad,
		samp:     dep.Skip(),
		refZ:     make([][]int, len(circ.Ops)),
		branch:   make([][]branchOp, len(circ.Ops)),
		radExact: true,
	}
	for _, op := range circ.Ops {
		if op.Kind == circuit.KindH {
			s.hasH = true
			break
		}
	}
	// Record the reference trajectory. Wherever a radiation reset could
	// strike, also record the reference Z-value of the struck qubit
	// (needed to express the reset fault as a Pauli frame update) and,
	// on superposed sites, the branch operator that carries the
	// projection's correlated damage to entangled partners.
	s.ref = stab.RunReference(circ, refSeed, func(i int, tab *stab.Tableau) {
		op := circ.Ops[i]
		if !s.mayFire(op) {
			return
		}
		vals := make([]int, len(op.Qubits))
		var ops []branchOp
		for j, q := range op.Qubits {
			vals[j] = tab.ExpectationZ(q) // +1 |0>, -1 |1>, 0 superposed
			if vals[j] == 0 {
				if ops == nil {
					ops = make([]branchOp, len(op.Qubits))
				}
				xs, zs, ok := tab.AnticommutingStabilizer(q)
				if !ok {
					panic("frame: superposed site without branch operator")
				}
				ops[j] = branchOp{xs: xs, zs: zs}
				s.radExact = false
			}
		}
		s.refZ[i] = vals
		s.branch[i] = ops
	})
	return s
}

// Reference returns the recorded noiseless reference execution (shared,
// not a copy): measurement record, determinism flags, op mapping.
func (s *Simulator) Reference() *stab.Reference { return s.ref }

// RadiationExact reports whether this campaign's radiation faults are
// reproduced exactly: every site the event can strike holds a Z
// eigenstate in the reference, so every reset deviation is a plain
// Pauli. Depolarizing noise is always exact; this predicate only
// concerns the radiation channel. The whole repetition family is
// radiation-exact on every topology; XXZZ circuits under spreading
// strikes are not (superposed mid-plaquette sites), and their rates
// carry the documented collapsed-branch approximation.
func (s *Simulator) RadiationExact() bool { return s.radExact }

// mayFire reports whether the radiation event can strike any qubit of
// the op (so reference Z-values are only recorded where needed).
func (s *Simulator) mayFire(op circuit.Op) bool {
	if op.Kind == circuit.KindBarrier {
		return false
	}
	for _, q := range op.Qubits {
		if q < len(s.rad.Probs) && s.rad.Probs[q] > 0 {
			return true
		}
	}
	return false
}

// Frame is the per-shot Pauli deviation state; reusable across shots.
type Frame struct {
	x, z []uint64
}

// NewFrame allocates a frame for n qubits.
func NewFrame(n int) *Frame {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	return &Frame{x: make([]uint64, words), z: make([]uint64, words)}
}

// Clear zeroes the frame for reuse.
func (f *Frame) Clear() {
	for i := range f.x {
		f.x[i] = 0
		f.z[i] = 0
	}
}

func (f *Frame) getX(q int) uint64 { return (f.x[q/64] >> (q % 64)) & 1 }
func (f *Frame) flipX(q int)       { f.x[q/64] ^= 1 << (q % 64) }
func (f *Frame) flipZ(q int)       { f.z[q/64] ^= 1 << (q % 64) }
func (f *Frame) clearQ(q int) {
	mask := ^(uint64(1) << (q % 64))
	f.x[q/64] &= mask
	f.z[q/64] &= mask
}

// swapXZ exchanges the X and Z frame bits of q (Hadamard conjugation).
func (f *Frame) swapXZ(q int) {
	w, b := q/64, uint(q%64)
	xb := (f.x[w] >> b) & 1
	zb := (f.z[w] >> b) & 1
	if xb != zb {
		f.x[w] ^= 1 << b
		f.z[w] ^= 1 << b
	}
}

// collapseZ re-randomises the Z frame bit of q at a collapse point: the
// qubit is a Z eigenstate there, so the injection is physically a no-op
// that decorrelates downstream branch labels from the reference (see
// the package comment). Skipped for circuits without H, where the coin
// could never reach an X plane.
func (s *Simulator) collapseZ(src *rng.Source, f *Frame, q int) {
	if !s.hasH {
		return
	}
	w, b := q/64, uint(q%64)
	f.z[w] &^= 1 << b
	f.z[w] |= (src.Uint64() & 1) << b
}

// Run executes one shot into bits (length NumClbits). The frame is
// cleared first, so frames can be reused across shots.
func (s *Simulator) Run(src *rng.Source, f *Frame, bits []int) {
	f.Clear()
	if s.hasH {
		// State preparation is a collapse point for every qubit.
		for w := range f.z {
			f.z[w] = src.Uint64()
		}
	}
	samp := s.samp
	samp.Reset(src)
	for i, op := range s.circ.Ops {
		switch op.Kind {
		case circuit.KindH:
			f.swapXZ(op.Qubits[0])
		case circuit.KindS:
			// S: X -> Y (adds a Z component); Z unchanged.
			if f.getX(op.Qubits[0]) == 1 {
				f.flipZ(op.Qubits[0])
			}
		case circuit.KindX, circuit.KindY, circuit.KindZ:
			// Deterministic circuit Paulis are part of the reference;
			// they commute with the frame up to global phase.
		case circuit.KindCNOT:
			c, t := op.Qubits[0], op.Qubits[1]
			if f.getX(c) == 1 {
				f.flipX(t)
			}
			if (f.z[t/64]>>(t%64))&1 == 1 {
				f.flipZ(c)
			}
		case circuit.KindCZ:
			a, b := op.Qubits[0], op.Qubits[1]
			if f.getX(a) == 1 {
				f.flipZ(b)
			}
			if f.getX(b) == 1 {
				f.flipZ(a)
			}
		case circuit.KindSWAP:
			a, b := op.Qubits[0], op.Qubits[1]
			xa, xb := f.getX(a), f.getX(b)
			if xa != xb {
				f.flipX(a)
				f.flipX(b)
			}
			za := (f.z[a/64] >> (a % 64)) & 1
			zb := (f.z[b/64] >> (b % 64)) & 1
			if za != zb {
				f.flipZ(a)
				f.flipZ(b)
			}
		case circuit.KindMeasure:
			q := op.Qubits[0]
			k := s.ref.MeasIndex[i]
			bits[op.Clbit] = s.ref.Record[k] ^ int(f.getX(q))
			// Only a non-deterministic measurement collapses anything:
			// measuring a Z eigenstate leaves the state — and therefore
			// the deviation — untouched, so the reference determinism
			// flag decides where the fresh branch coin is injected.
			if !s.ref.Deterministic[k] {
				s.collapseZ(src, f, q)
			}
		case circuit.KindReset:
			// Reset erases any deviation on the qubit, then collapses.
			f.clearQ(op.Qubits[0])
			s.collapseZ(src, f, op.Qubits[0])
		case circuit.KindBarrier:
			continue
		}
		// Intrinsic depolarizing noise toggles frame bits.
		if s.dep.P > 0 {
			for _, q := range op.Qubits {
				switch samp.Sample(src) {
				case noise.ErrX:
					f.flipX(q)
				case noise.ErrY:
					f.flipX(q)
					f.flipZ(q)
				case noise.ErrZ:
					f.flipZ(q)
				}
			}
		}
		// Radiation reset faults pin the actual qubit to |0>. Relative
		// to the reference, which holds Z-value v at this site, the
		// pinned state is X^[v=1] times the reference, so the frame is
		// erased and its X bit set from v. On superposed reference sites
		// (v unknown: non-CSS-aligned qubits mid-plaquette) a fair coin
		// picks the collapse branch and conditionally injects the
		// recorded branch operator, spreading the projection's damage to
		// entangled partners before the struck site is pinned.
		if s.refZ[i] != nil {
			for j, q := range op.Qubits {
				if !s.rad.Fires(q, src) {
					continue
				}
				switch s.refZ[i][j] {
				case -1: // reference holds |1>, actual pinned to |0>
					f.clearQ(q)
					f.flipX(q)
				case 1:
					f.clearQ(q)
				case 0:
					if src.Uint64()&1 == 1 {
						br := s.branch[i][j]
						for _, a := range br.xs {
							f.flipX(a)
						}
						for _, a := range br.zs {
							f.flipZ(a)
						}
					}
					f.clearQ(q)
				}
				s.collapseZ(src, f, q)
			}
		}
	}
}
