//go:build amd64.v3

package frame

// GOAMD64=v3 tile micro-kernels: the widest (8-word, 512-lane) tile
// rows are accessed through array pointers, so each loop is a fixed
// eight-iteration, bounds-check-free pass over contiguous words — the
// shape the v3 codegen turns into straight-line 256-bit loads/stores
// with no gathers. Narrower rows take the portable loop. Semantics are
// identical to tileops.go; the cross-width determinism tests pin that.

// tileXor XORs src into dst (dst ^= src), len(dst) == len(src).
func tileXor(dst, src []uint64) {
	if len(dst) == MaxTileWords && len(src) == MaxTileWords {
		d := (*[MaxTileWords]uint64)(dst)
		s := (*[MaxTileWords]uint64)(src)
		for k := range d {
			d[k] ^= s[k]
		}
		return
	}
	for k := range dst {
		dst[k] ^= src[k]
	}
}

// tileSwap exchanges a and b element-wise.
func tileSwap(a, b []uint64) {
	if len(a) == MaxTileWords && len(b) == MaxTileWords {
		x := (*[MaxTileWords]uint64)(a)
		y := (*[MaxTileWords]uint64)(b)
		for k := range x {
			x[k], y[k] = y[k], x[k]
		}
		return
	}
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// tileZero clears t.
func tileZero(t []uint64) {
	if len(t) == MaxTileWords {
		clear((*[MaxTileWords]uint64)(t)[:])
		return
	}
	for k := range t {
		t[k] = 0
	}
}

// tileFillXor stores ref^src into dst (a measurement's packed record
// row from the reference bit and the X frame plane).
func tileFillXor(dst, src []uint64, ref uint64) {
	if len(dst) == MaxTileWords && len(src) == MaxTileWords {
		d := (*[MaxTileWords]uint64)(dst)
		s := (*[MaxTileWords]uint64)(src)
		for k := range d {
			d[k] = ref ^ s[k]
		}
		return
	}
	for k := range dst {
		dst[k] = ref ^ src[k]
	}
}
