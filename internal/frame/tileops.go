//go:build !amd64.v3

package frame

// Tile micro-kernels: the word-wide inner loops every Clifford gate of
// RunTile reduces to. Each operates on one qubit's tile row (len 1, 4
// or 8 words). This is the portable variant; tileops_amd64v3.go carries
// the GOAMD64=v3 build's fixed-width unrolled twins, which convert the
// hot 8-word rows to array pointers so the inner loops are gather-free
// and bounds-check-free. The two variants are semantically identical —
// the cross-width determinism tests hold under either build.

// tileXor XORs src into dst (dst ^= src), len(dst) == len(src).
func tileXor(dst, src []uint64) {
	for k := range dst {
		dst[k] ^= src[k]
	}
}

// tileSwap exchanges a and b element-wise.
func tileSwap(a, b []uint64) {
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// tileZero clears t.
func tileZero(t []uint64) {
	for k := range t {
		t[k] = 0
	}
}

// tileFillXor stores ref^src into dst (a measurement's packed record
// row from the reference bit and the X frame plane).
func tileFillXor(dst, src []uint64, ref uint64) {
	for k := range dst {
		dst[k] = ref ^ src[k]
	}
}
