// Package rng provides a small, deterministic, allocation-free random
// number generator used throughout the fault-injection campaigns.
//
// The generator is xoshiro256** seeded through SplitMix64. It is not
// cryptographically secure; it is chosen for reproducibility (identical
// streams for identical seeds on every platform) and for cheap stream
// splitting, so that each injection shot can own an independent stream
// and campaigns stay deterministic under any degree of parallelism.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo random number generator.
// The zero value is not usable; construct one with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the state and returns the next SplitMix64 output.
// It is used only to expand seeds into full generator state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield
// uncorrelated streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	// A pathological all-zero state would lock the generator at zero.
	// SplitMix64 cannot produce four zero words from any seed, but
	// Reseed's guard keeps the invariant local and obvious.
	src := new(Source)
	src.Reseed(seed)
	return src
}

// Split derives an independent child stream from the source's current
// state and the given index. Calling Split with distinct indices yields
// distinct, reproducible streams regardless of how many values the
// parent has produced in between.
func (s *Source) Split(index uint64) *Source {
	dst := new(Source)
	s.SplitInto(index, dst)
	return dst
}

// SplitInto is Split without the allocation: it reseeds dst in place
// with exactly the stream Split(index) would return, so hot loops can
// pool a fixed set of Sources and re-derive per-word streams for free.
// Any prior state of dst is overwritten.
func (s *Source) SplitInto(index uint64, dst *Source) {
	// Mix the parent state with the index through SplitMix64 so child
	// streams do not overlap the parent sequence.
	sm := s.s0 ^ (s.s2 << 1) ^ (index * 0xd1342543de82ef95)
	dst.Reseed(splitMix64(&sm) ^ index)
}

// Reseed resets the source in place to the state New(seed) would
// construct, discarding its previous stream.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s3 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard unbiased construction.
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (math.MaxUint64 - un + 1) % un
		for lo < threshold {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Bool returns true with probability p. Probabilities outside [0,1] are
// clamped: p <= 0 never fires, p >= 1 always fires.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Bernoulli64 returns a word of 64 independent Bernoulli(p) bits — bit i
// of the result is 1 with probability p, matching the distribution of 64
// Bool(p) calls. Probabilities are quantised to the same 53-bit grid
// Float64 lives on, so a lane fires exactly when its implicit uniform
// would satisfy Float64() < p.
//
// The sampler compares 64 per-lane uniforms against the fixed-point
// threshold bit-serially from the most significant bit, early-exiting as
// soon as every lane's comparison is decided; the expected cost is ~8
// Uint64 draws per word (0.125 draws per lane) independent of p, an
// 8x saving over one draw per lane.
func (s *Source) Bernoulli64(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	// Fires iff U < p for a 53-bit uniform integer U, i.e. U < ceil(p·2^53).
	const bitsP = 53
	t := uint64(math.Ceil(p * (1 << bitsP)))
	if t >= 1<<bitsP {
		return ^uint64(0)
	}
	var lt uint64    // lanes decided U < t
	eq := ^uint64(0) // lanes still tied with the threshold prefix
	for k := bitsP - 1; k >= 0 && eq != 0; k-- {
		u := s.Uint64()
		if (t>>uint(k))&1 == 1 {
			lt |= eq &^ u // threshold bit 1, lane bit 0: lane is below
			eq &= u
		} else {
			eq &= ^u // threshold bit 0, lane bit 1: lane is above
		}
	}
	return lt
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
