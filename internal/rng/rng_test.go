package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds coincide %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams coincide %d/100 times", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(9).Split(5)
	b := New(9).Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at step %d", i)
		}
	}
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	a := New(3)
	b := New(3)
	_ = a.Split(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split mutated parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(14)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(15)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) fired")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) did not fire")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) fired")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) did not fire")
		}
	}
}

func TestBoolRate(t *testing.T) {
	s := New(16)
	const p, trials = 0.3, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bool(%v) rate = %v", p, rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, rawN uint8) bool {
		n := int(rawN%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(18)
	v := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range v {
		sum += x
	}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	got := 0
	for _, x := range v {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}

func TestBernoulli64Edges(t *testing.T) {
	s := New(1)
	if got := s.Bernoulli64(0); got != 0 {
		t.Fatalf("p=0 word = %x", got)
	}
	if got := s.Bernoulli64(-1); got != 0 {
		t.Fatalf("p<0 word = %x", got)
	}
	if got := s.Bernoulli64(1); got != ^uint64(0) {
		t.Fatalf("p=1 word = %x", got)
	}
	if got := s.Bernoulli64(2); got != ^uint64(0) {
		t.Fatalf("p>1 word = %x", got)
	}
}

func TestBernoulli64Deterministic(t *testing.T) {
	a, b := New(9), New(9)
	for i := 0; i < 100; i++ {
		if a.Bernoulli64(0.3) != b.Bernoulli64(0.3) {
			t.Fatal("identical seeds diverged")
		}
	}
}

func TestBernoulli64Rates(t *testing.T) {
	// Per-lane fire rates must match p within binomial error for a wide
	// range of probabilities, including ones far from dyadic grids.
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 1.0 / 3, 0.5, 0.9} {
		s := New(42)
		const words = 30000
		hits := 0
		for i := 0; i < words; i++ {
			hits += bits.OnesCount64(s.Bernoulli64(p))
		}
		n := float64(words * 64)
		rate := float64(hits) / n
		// 5 sigma of the binomial.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(rate-p) > tol {
			t.Fatalf("p=%v: rate %v off by more than %v", p, rate, tol)
		}
	}
}

func TestBernoulli64LaneIndependence(t *testing.T) {
	// Every lane must fire at the same marginal rate (no positional
	// bias from the bit-serial comparison).
	s := New(7)
	const words = 20000
	const p = 0.3
	var perLane [64]int
	for i := 0; i < words; i++ {
		w := s.Bernoulli64(p)
		for l := 0; l < 64; l++ {
			perLane[l] += int(w>>l) & 1
		}
	}
	tol := 5 * math.Sqrt(p*(1-p)/float64(words))
	for l, hits := range perLane {
		if rate := float64(hits) / words; math.Abs(rate-p) > tol {
			t.Fatalf("lane %d rate %v off target %v", l, rate, p)
		}
	}
}

func BenchmarkBernoulli64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Bernoulli64(0.01)
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	// SplitInto must produce the exact stream Split returns — the batch
	// engine's word↔seed contract depends on the two derivations never
	// diverging — and reusing one destination across indices must not
	// leak state between derivations.
	parent := New(42)
	parent.Uint64() // derive from a non-fresh parent state
	var dst Source
	for _, index := range []uint64{0, 1, 63, 1 << 40, ^uint64(0)} {
		want := parent.Split(index)
		parent.SplitInto(index, &dst)
		if dst != *want {
			t.Fatalf("index %d: SplitInto state %+v != Split state %+v", index, dst, *want)
		}
		for i := 0; i < 16; i++ {
			if got, w := dst.Uint64(), want.Uint64(); got != w {
				t.Fatalf("index %d draw %d: SplitInto %#x != Split %#x", index, i, got, w)
			}
		}
	}
}

func TestSplitIntoAllocFree(t *testing.T) {
	parent := New(1)
	var dst Source
	allocs := testing.AllocsPerRun(100, func() {
		parent.SplitInto(7, &dst)
		_ = dst.Uint64()
	})
	if allocs != 0 {
		t.Fatalf("SplitInto allocates %v per run, want 0", allocs)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	var s Source
	for _, seed := range []uint64{0, 1, 12345, ^uint64(0)} {
		s.Reseed(seed)
		if want := New(seed); s != *want {
			t.Fatalf("seed %d: Reseed state %+v != New state %+v", seed, s, *want)
		}
	}
}
