// Command radqecd is the radqec campaign daemon: it serves every
// experiment of the registry over HTTP, streams sweep points back as
// NDJSON while the shared worker pool produces them, and persists each
// point in a content-addressed on-disk store so identical
// re-submissions — from any client, or from the radqec CLI pointed at
// the same -store directory — replay from disk without re-running the
// engines.
//
// Usage:
//
//	radqecd [flags]
//
// Flags:
//
//	-addr HOST:PORT  listen address (default :8423)
//	-store DIR       result store directory (default radqec-store;
//	                 "" disables persistence)
//	-workers N       shared sweep worker pool size (default GOMAXPROCS);
//	                 all concurrent campaigns are multiplexed fairly
//	                 over this one budget
//	-lru N           decoded results held in memory (default 4096)
//	-controller on|off  default score-driven batch/allocation controller
//	                 for campaigns (default on); a campaign request's
//	                 "controller" field overrides per campaign. Tables
//	                 are byte-identical either way
//	-engine-width W  default batched-engine tile width in lanes: auto
//	                 (default), 64, 256, or 512; a campaign request's
//	                 "engine_width" field overrides per campaign. Width
//	                 never changes results, only throughput
//	-dwell N         default policy batches the controller holds a chunk
//	                 size before re-scoring (default 4)
//	-hysteresis H    default relative score advantage a challenger chunk
//	                 size needs to displace the incumbent (default 0.15)
//	-read-header-timeout D  time allowed to read a request's headers
//	                 (default 10s); bounds slowloris-style half-open
//	                 connections
//	-idle-timeout D  keep-alive connection idle limit (default 2m)
//	-max-header-bytes N  request header size cap (default 1 MiB)
//	-peers H1,H2,... static fabric ring, self included: campaigns shard
//	                 across these nodes by content hash, with results
//	                 byte-identical to a single-node run. Requires
//	                 -store and -self
//	-self HOST:PORT  this node's own address exactly as it appears in
//	                 -peers
//	-trace-sample on|off  default distributed-trace sampling for
//	                 campaigns that don't set "trace_sample" (default
//	                 off); sampled campaigns record spans readable at
//	                 GET /v1/campaigns/{id}/trace. Tracing never changes
//	                 results, only observability
//	-log-format text|json  structured-log rendering (default text)
//	-log-level L     minimum log level: debug, info, warn, or error
//	                 (default info)
//	-pprof           mount net/http/pprof under /debug/pprof/ (default
//	                 off; the profiles expose heap contents)
//
// Endpoints are documented in package server (full API in docs/api.md).
// SIGINT/SIGTERM drain in-flight campaigns, flush the store and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"radqec/internal/control"
	"radqec/internal/core"
	"radqec/internal/fabric"
	"radqec/internal/logsetup"
	"radqec/internal/server"
	"radqec/internal/store"
)

func main() {
	addr := flag.String("addr", ":8423", "listen address")
	storeDir := flag.String("store", "radqec-store", "result store directory (empty disables persistence)")
	workers := flag.Int("workers", 0, "shared sweep worker pool size (0 = GOMAXPROCS)")
	lru := flag.Int("lru", 0, "decoded results held in memory (0 = default)")
	controller := flag.String("controller", "on", "default score-driven batch/allocation controller: on or off")
	engineWidth := flag.String("engine-width", "auto", "default batched-engine tile width in lanes: auto, 64, 256, or 512 (requests may override per campaign)")
	dwell := flag.Int("dwell", 4, "default policy batches the controller holds a chunk size before re-scoring")
	hysteresis := flag.Float64("hysteresis", 0.15, "default relative score advantage needed to displace the incumbent chunk size")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time allowed to read a request's headers")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle limit")
	maxHeaderBytes := flag.Int("max-header-bytes", 1<<20, "request header size cap in bytes")
	peers := flag.String("peers", "", "comma-separated static fabric ring, self included (empty = single node)")
	self := flag.String("self", "", "this node's own address as it appears in -peers")
	traceSample := flag.String("trace-sample", "off", "default distributed-trace sampling for campaigns: on or off (requests may override per campaign)")
	logFormat := flag.String("log-format", "text", "structured-log rendering: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "radqecd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		usageError(fmt.Sprintf("-workers %d out of range (want >= 0; 0 = GOMAXPROCS)", *workers))
	}
	if *lru < 0 {
		usageError(fmt.Sprintf("-lru %d out of range (want >= 0; 0 = default)", *lru))
	}
	if *controller != "on" && *controller != "off" {
		usageError(fmt.Sprintf("-controller %q out of range (want on or off)", *controller))
	}
	if _, err := core.ResolveEngineWidth(*engineWidth); err != nil {
		usageError(fmt.Sprintf("unknown engine width %q (want one of %v)", *engineWidth, core.Widths()))
	}
	if *dwell < 1 {
		usageError(fmt.Sprintf("-dwell %d out of range (want >= 1 policy batches)", *dwell))
	}
	if *hysteresis < 0 || *hysteresis >= 1 {
		usageError(fmt.Sprintf("-hysteresis %g out of range (want 0 <= hysteresis < 1)", *hysteresis))
	}
	if *readHeaderTimeout <= 0 {
		usageError(fmt.Sprintf("-read-header-timeout %v out of range (want > 0)", *readHeaderTimeout))
	}
	if *idleTimeout <= 0 {
		usageError(fmt.Sprintf("-idle-timeout %v out of range (want > 0)", *idleTimeout))
	}
	if *maxHeaderBytes <= 0 {
		usageError(fmt.Sprintf("-max-header-bytes %d out of range (want > 0)", *maxHeaderBytes))
	}
	if *traceSample != "on" && *traceSample != "off" {
		usageError(fmt.Sprintf("-trace-sample %q out of range (want on or off)", *traceSample))
	}
	log, err := logsetup.Init(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		usageError(err.Error())
	}
	var ring []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ring = append(ring, p)
			}
		}
		if *self == "" {
			usageError("-peers requires -self (this node's address as listed in -peers)")
		}
		if !slices.Contains(ring, *self) {
			usageError(fmt.Sprintf("-self %q not in -peers %v", *self, ring))
		}
		if *storeDir == "" {
			usageError("-peers requires -store (fetched peer results land in the store)")
		}
	} else if *self != "" {
		usageError("-self without -peers")
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxCached: *lru})
		if err != nil {
			fatal(err)
		}
		stats := st.Stats()
		log.Info("radqecd: store opened",
			"dir", *storeDir,
			"commits", stats.Commits,
			"checkpoints", stats.Checkpoints,
			"segment_bytes", stats.SegmentBytes)
	} else {
		log.Warn("radqecd: running without a store; every campaign recomputes")
	}

	var ctrl *control.Policy
	if *controller == "on" {
		ctrl = &control.Policy{Enabled: true, Dwell: *dwell, Hysteresis: *hysteresis}
	}
	var coord *fabric.Coordinator
	if len(ring) > 0 {
		var err error
		coord, err = fabric.New(fabric.Options{Self: *self, Peers: ring, Store: st, Logger: log})
		if err != nil {
			fatal(err)
		}
		log.Info("radqecd: fabric ring joined", "nodes", len(coord.Peers()), "self", *self)
	}
	srv := server.New(server.Config{
		Store:       st,
		Workers:     *workers,
		Control:     ctrl,
		Fabric:      coord,
		EngineWidth: *engineWidth,
		TraceSample: *traceSample,
		Logger:      log,
		Pprof:       *pprofOn,
	})
	// No blanket ReadTimeout/WriteTimeout: campaign streams legitimately
	// run for minutes and per-write deadlines already guard them (see
	// server.streamWriteTimeout). The header and idle limits below are
	// what keep half-open or abandoned connections from pinning the
	// daemon.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	// SIGINT/SIGTERM: stop accepting, drain in-flight campaigns (their
	// points keep checkpointing into the store), then flush and close
	// the store so the directory is immediately reusable. A drain can
	// take as long as the longest queued campaign, so a second signal
	// is the escape hatch: flush the store and exit immediately instead
	// of forcing the operator to SIGKILL past the flush path.
	done := make(chan error, 1)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Info("radqecd: draining (signal again to exit now)", "signal", sig.String())
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			done <- httpSrv.Shutdown(ctx)
		}()
		sig = <-sigc
		log.Warn("radqecd: exiting now", "signal", sig.String())
		if st != nil {
			st.Close() // sync + close; in-flight appends finish first
		}
		if n, ok := sig.(syscall.Signal); ok {
			os.Exit(128 + int(n))
		}
		os.Exit(1)
	}()

	log.Info("radqecd: listening", "addr", *addr, "workers", *workers, "trace_sample", *traceSample, "pprof", *pprofOn)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		if st != nil {
			st.Close()
		}
		fatal(err)
	}
	shutdownErr := <-done
	if shutdownErr == nil {
		// Clean drain: every handler returned, so the pool is idle and
		// can be released. After a drain timeout campaigns are still
		// running on the pool — closing it would panic their next sweep
		// — so the pool is left to die with the process instead.
		srv.Close()
	} else {
		log.Error("radqecd: drain incomplete; exiting with campaigns in flight", "error", shutdownErr)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fatal(err)
		}
	}
	if shutdownErr != nil {
		os.Exit(1)
	}
}

// fatal reports an unrecoverable startup or shutdown error. It runs
// only after logsetup.Init installed the default logger, so the record
// lands in the operator's chosen format.
func fatal(err error) {
	slog.Error("radqecd: fatal", "error", err)
	os.Exit(1)
}

// usageError reports a bad flag value and exits with the usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "radqecd: %s\n", msg)
	os.Exit(2)
}
