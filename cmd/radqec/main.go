// Command radqec regenerates the tables behind every figure of the
// paper's evaluation (Figures 3-8) plus the ablation studies.
//
// Usage:
//
//	radqec [flags] <experiment>
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig8summary
// ablation-decoder ablation-ns ablation-layout all
//
// Flags:
//
//	-shots N     shots per measured point (default 2000)
//	-seed N      campaign seed (default 1)
//	-workers N   parallel shot runners (default GOMAXPROCS)
//	-p RATE      intrinsic physical error rate (default 0.01)
//	-ns N        temporal samples of the fault decay (default 10)
//	-csv         emit CSV instead of aligned text
//	-o FILE      write to FILE instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"radqec/internal/exp"
)

type experiment struct {
	name string
	desc string
	run  func(exp.Config) (*exp.Table, error)
}

func experiments() []experiment {
	wrap := func(f func(exp.Config) *exp.Table) func(exp.Config) (*exp.Table, error) {
		return func(c exp.Config) (*exp.Table, error) { return f(c), nil }
	}
	return []experiment{
		{"fig3", "temporal decay T(t) and its step approximation", wrap(exp.Fig3)},
		{"fig4", "spatial decay S(d) over architecture distance", wrap(exp.Fig4)},
		{"fig5", "logical error landscape: noise x radiation", exp.Fig5},
		{"fig6", "criticality by code distance (single erasure)", exp.Fig6},
		{"fig7", "correlated spread vs independent erasures", exp.Fig7},
		{"fig8", "per-qubit criticality across architectures", exp.Fig8},
		{"fig8summary", "architecture comparison summary", exp.Fig8Summary},
		{"ablation-decoder", "blossom vs union-find vs greedy decoding", exp.AblationDecoder},
		{"ablation-ns", "temporal sample count sweep", exp.AblationTemporalSamples},
		{"ablation-layout", "initial layout strategy", exp.AblationLayout},
		{"ablation-rounds", "stabilization round count sweep", exp.AblationRounds},
		{"threshold", "intrinsic-noise baseline by distance (no radiation)", exp.Threshold},
		{"logical", "post-QEC logical-layer fault injection (future work)", exp.LogicalLayer},
	}
}

func main() {
	shots := flag.Int("shots", 2000, "shots per measured point")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "parallel shot runners (0 = GOMAXPROCS)")
	p := flag.Float64("p", 0.01, "intrinsic physical error rate")
	ns := flag.Int("ns", 10, "temporal samples of the fault decay")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outPath := flag.String("o", "", "write output to file instead of stdout")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	cfg := exp.Config{
		Shots:   *shots,
		Seed:    *seed,
		Workers: *workers,
		P:       *p,
		NS:      *ns,
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	var selected []experiment
	for _, e := range experiments() {
		if e.name == name || name == "all" {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "radqec: unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	for _, e := range selected {
		start := time.Now()
		tab, err := e.run(cfg)
		if err != nil {
			fatal(err)
		}
		if *csv {
			tab.WriteCSV(out)
		} else {
			tab.WriteText(out)
			fmt.Fprintf(out, "(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: radqec [flags] <experiment>\n\nexperiments:\n")
	exps := experiments()
	sort.Slice(exps, func(i, j int) bool { return exps[i].name < exps[j].name })
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-18s %s\n\nflags:\n", "all", "run every experiment")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "radqec:", err)
	os.Exit(1)
}
