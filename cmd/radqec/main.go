// Command radqec regenerates the tables behind every figure of the
// paper's evaluation (Figures 3-8) plus the ablation studies.
//
// Usage:
//
//	radqec [flags] <experiment>
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 fig8summary
// ablation-decoder ablation-ns ablation-layout ablation-rounds
// memory threshold logical all
//
// Flags:
//
//	-shots N     shots per measured point (default 2000)
//	-seed N      campaign seed (default 1)
//	-workers N   parallel shot runners (default GOMAXPROCS)
//	-p RATE      intrinsic physical error rate (default 0.01)
//	-ns N        temporal samples of the fault decay (default 10)
//	-rounds N    stabilization rounds per code (default 2, the paper's
//	             protocol; >2 decodes over the multi-round space-time
//	             detector-error model)
//	-engine E    simulation engine: auto (default), tableau, frame, or
//	             batch. auto runs every campaign on the bit-parallel
//	             batched frame engine (universal over the Clifford set;
//	             radiation resets on superposed XXZZ sites use the
//	             collapsed-branch approximation); tableau forces the
//	             exact-oracle stabilizer tableau
//	-decoder D   syndrome decoder: mwpm (default, blossom matching) or
//	             uf (almost-linear union-find); both have word-parallel
//	             twins for the batched engine
//	-ci W        target Wilson 95% half-width; >0 turns on adaptive
//	             shot allocation per point (default off)
//	-maxshots N  adaptive per-point shot cap (0 = worst-case count
//	             guaranteeing -ci at any rate)
//	-cpuprofile F  write a pprof CPU profile of the run to F
//	-memprofile F  write a pprof heap profile after the run to F
//	-csv         emit CSV instead of aligned text
//	-json        stream one JSON record per completed sweep point and
//	             emit each table as a JSON record
//	-o FILE      write to FILE instead of stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"radqec/internal/core"
	"radqec/internal/exp"
	"radqec/internal/sweep"
)

type experiment struct {
	name string
	desc string
	run  func(exp.Config) (*exp.Table, error)
	// xxzzRad marks experiments whose campaigns include radiation
	// strikes on XXZZ circuits — the collapsed-branch approximation
	// domain of the frame engines (see package frame); the stderr
	// notice in main fires only for these. Repetition-only and
	// radiation-free experiments are frame-exact on every engine.
	xxzzRad bool
}

func experiments() []experiment {
	wrap := func(f func(exp.Config) *exp.Table) func(exp.Config) (*exp.Table, error) {
		return func(c exp.Config) (*exp.Table, error) { return f(c), nil }
	}
	return []experiment{
		{"fig3", "temporal decay T(t) and its step approximation", wrap(exp.Fig3), false},
		{"fig4", "spatial decay S(d) over architecture distance", wrap(exp.Fig4), false},
		{"fig5", "logical error landscape: noise x radiation", exp.Fig5, true},
		{"fig6", "criticality by code distance (single erasure)", exp.Fig6, true},
		{"fig7", "correlated spread vs independent erasures", exp.Fig7, true},
		{"fig8", "per-qubit criticality across architectures", exp.Fig8, true},
		{"fig8summary", "architecture comparison summary", exp.Fig8Summary, true},
		{"ablation-decoder", "blossom vs union-find vs greedy decoding", exp.AblationDecoder, true},
		{"ablation-ns", "temporal sample count sweep", exp.AblationTemporalSamples, false},
		{"ablation-layout", "initial layout strategy", exp.AblationLayout, true},
		{"ablation-rounds", "stabilization round count sweep", exp.AblationRounds, false},
		{"memory", "logical error vs rounds at fixed distance (space-time decoding)", exp.Memory, true},
		{"threshold", "intrinsic-noise baseline by distance (no radiation)", exp.Threshold, false},
		{"logical", "post-QEC logical-layer fault injection (future work)", exp.LogicalLayer, true},
	}
}

// pointRecord is the streaming JSON view of one completed sweep point.
type pointRecord struct {
	Type       string  `json:"type"`
	Experiment string  `json:"experiment"`
	Key        string  `json:"key"`
	Shots      int     `json:"shots"`
	Errors     int     `json:"errors"`
	Rate       float64 `json:"rate"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	HalfWidth  float64 `json:"half_width"`
	Batches    int     `json:"batches"`
	Q50        float64 `json:"q50"`
	Q90        float64 `json:"q90"`
	Q99        float64 `json:"q99"`
	CVaR90     float64 `json:"cvar90"`
	Converged  bool    `json:"converged"`
}

// tableRecord is the JSON view of a finished experiment table.
type tableRecord struct {
	Type       string     `json:"type"`
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	ElapsedMS  int64      `json:"elapsed_ms"`
}

func main() {
	shots := flag.Int("shots", 2000, "shots per measured point")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", 0, "parallel shot runners (0 = GOMAXPROCS)")
	p := flag.Float64("p", 0.01, "intrinsic physical error rate")
	ns := flag.Int("ns", 10, "temporal samples of the fault decay")
	engine := flag.String("engine", exp.EngineAuto, "simulation engine: auto, tableau, frame, or batch")
	decoder := flag.String("decoder", exp.DecoderMWPM, "syndrome decoder: mwpm or uf")
	rounds := flag.Int("rounds", 2, "stabilization rounds per code (>= 2; >2 opens the multi-round memory workload)")
	ci := flag.Float64("ci", 0, "target Wilson 95% half-width per point (>0 enables adaptive shots)")
	maxShots := flag.Int("maxshots", 0, "adaptive per-point shot cap (0 = worst-case count for -ci)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the experiment run to this file")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "stream per-point JSON records and emit tables as JSON")
	outPath := flag.String("o", "", "write output to file instead of stdout")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	// Flag values that select named strategies are validated here, with
	// a usage error listing the valid names, so a typo can never reach
	// the panic paths deep in core.NewEngineRunner or the sweep workers.
	if !containsName(exp.Engines(), *engine) {
		usageError(fmt.Sprintf("unknown engine %q (want one of %v)", *engine, exp.Engines()))
	}
	if !containsName(exp.Decoders(), *decoder) {
		usageError(fmt.Sprintf("unknown decoder %q (want one of %v)", *decoder, exp.Decoders()))
	}
	// Numeric flags are validated the same way: a constraint violation
	// is a usage error naming the constraint, never a deep panic or a
	// silently degenerate campaign.
	if *shots < 1 {
		usageError(fmt.Sprintf("-shots %d out of range (want >= 1)", *shots))
	}
	if *p < 0 || *p > 1 {
		usageError(fmt.Sprintf("-p %g out of range (want a probability in [0,1])", *p))
	}
	if *ns < 1 {
		usageError(fmt.Sprintf("-ns %d out of range (want >= 1 temporal samples)", *ns))
	}
	if *rounds < 2 {
		usageError(fmt.Sprintf("-rounds %d out of range (want >= 2 stabilization rounds)", *rounds))
	}
	if *workers < 0 {
		usageError(fmt.Sprintf("-workers %d out of range (want >= 0; 0 = GOMAXPROCS)", *workers))
	}
	if *ci < 0 || *ci >= 0.5 {
		usageError(fmt.Sprintf("-ci %g out of range (want 0 <= ci < 0.5; 0 disables adaptive shots)", *ci))
	}
	if *maxShots < 0 {
		usageError(fmt.Sprintf("-maxshots %d out of range (want >= 0; 0 = worst-case count for -ci)", *maxShots))
	}
	cfg := exp.Config{
		Shots:    *shots,
		Seed:     *seed,
		Workers:  *workers,
		P:        *p,
		NS:       *ns,
		Rounds:   *rounds,
		CI:       *ci,
		MaxShots: *maxShots,
		Engine:   *engine,
		Decoder:  *decoder,
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	var selected []experiment
	for _, e := range experiments() {
		if e.name == name || name == "all" {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "radqec: unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}

	// Profiling hooks for decode-path optimisation work, started only
	// after experiment selection so no usage-error exit can strand an
	// open profile: the CPU profile covers the experiment loop, the
	// heap profile snapshots
	// the end state (after a GC, so it shows live campaign structures,
	// not transient shot buffers). Flushing runs through flushProfiles
	// so fatal's os.Exit cannot leave a truncated CPU profile or skip
	// the heap profile — an errored run is exactly when the profile is
	// wanted.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopCPU := func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		prev := flushProfiles
		flushProfiles = func() {
			stopCPU()
			prev()
		}
	}
	if *memProfile != "" {
		path := *memProfile
		prev := flushProfiles
		flushProfiles = func() {
			prev()
			writeHeapProfile(path)
		}
	}
	defer flushOnce()
	// The frame engines approximate radiation resets on superposed XXZZ
	// sites (collapsed-branch coin; see package frame); say so once on
	// stderr — only when a selected experiment actually enters that
	// domain — so default-flag reproduction runs know the exact oracle.
	if resolved, _ := core.ResolveEngine(*engine); resolved != core.EngineTableau {
		for _, e := range selected {
			if e.xxzzRad {
				fmt.Fprintf(os.Stderr, "radqec: engine %s: radiation resets on superposed XXZZ sites use the collapsed-branch approximation; -engine tableau is the exact oracle\n", resolved)
				break
			}
		}
	}
	enc := json.NewEncoder(out)
	for _, e := range selected {
		if *jsonOut {
			// The sweep engine serialises OnResult calls, so the encoder
			// needs no extra locking.
			expName := e.name
			cfg.OnPoint = func(r sweep.Result) {
				if err := enc.Encode(pointRecord{
					Type:       "point",
					Experiment: expName,
					Key:        r.Key,
					Shots:      r.Shots,
					Errors:     r.Errors,
					Rate:       r.Rate(),
					CILo:       r.CILo,
					CIHi:       r.CIHi,
					HalfWidth:  r.HalfWidth(),
					Batches:    len(r.BatchRates),
					Q50:        r.Tail.Q50,
					Q90:        r.Tail.Q90,
					Q99:        r.Tail.Q99,
					CVaR90:     r.Tail.CVaR90,
					Converged:  r.Converged,
				}); err != nil {
					fatal(err)
				}
			}
		}
		start := time.Now()
		tab, err := e.run(cfg)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			rows := tab.Rows
			if rows == nil {
				rows = [][]string{}
			}
			if err := enc.Encode(tableRecord{
				Type:       "table",
				Experiment: e.name,
				Title:      tab.Title,
				Header:     tab.Header,
				Rows:       rows,
				Notes:      tab.Notes,
				ElapsedMS:  time.Since(start).Milliseconds(),
			}); err != nil {
				fatal(err)
			}
		case *csv:
			tab.WriteCSV(out)
		default:
			tab.WriteText(out)
			fmt.Fprintf(out, "(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: radqec [flags] <experiment>\n\nexperiments:\n")
	exps := experiments()
	sort.Slice(exps, func(i, j int) bool { return exps[i].name < exps[j].name })
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-18s %s\n\nflags:\n", "all", "run every experiment")
	flag.PrintDefaults()
}

// flushProfiles finalises any active profiling; flushOnce guards it so
// the normal defer and an error exit cannot both run it.
var (
	flushProfiles = func() {}
	flushed       bool
)

func flushOnce() {
	if !flushed {
		flushed = true
		flushProfiles()
	}
}

// writeHeapProfile snapshots the heap after a GC. Errors are reported
// but do not recurse into fatal: the profile is best-effort on the way
// out.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radqec:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "radqec:", err)
	}
}

func fatal(err error) {
	flushOnce()
	fmt.Fprintln(os.Stderr, "radqec:", err)
	os.Exit(1)
}

// containsName reports whether names contains v.
func containsName(names []string, v string) bool {
	for _, n := range names {
		if n == v {
			return true
		}
	}
	return false
}

// usageError reports a bad flag value and exits with the usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "radqec: %s\n", msg)
	os.Exit(2)
}
